#include "src/recovery/housekeeping.h"

#include <algorithm>

#include "src/object/flatten.h"

namespace argus {
namespace internal {

class Housekeeper {
 public:
  Housekeeper(CheckpointCapture capture, const StableLog* old_log,
              std::function<std::unique_ptr<StableMedium>()> medium_factory)
      : capture_(std::move(capture)), old_log_(old_log), stage2_next_(capture_.marker) {
    ARGUS_CHECK(old_log != nullptr && medium_factory != nullptr);
    outcome_.new_log = std::make_unique<StableLog>(medium_factory());
  }

  std::uint64_t marker() const { return capture_.marker; }

  // Stage 1 + the checkpoint tail. Reads only the capture and old-log frames
  // at pre-marker addresses, so it is safe against concurrent appends.
  Status StageOne() {
    Status s = capture_.method == HousekeepingMethod::kCompaction ? StageOneCompaction()
                                                                  : StageOneSnapshot();
    if (!s.ok()) {
      return s;
    }
    EmitCheckpointTail();
    // Push the stage-1 prefix to the medium now, while writers are still
    // running: Finish's force then covers only the stage-2 carry-over, so
    // the swap barrier's pause stays bounded by activity since the capture,
    // not by the checkpoint's size.
    return outcome_.new_log->Force();
  }

  // Incremental stage-2 carry-over, callable while the old log is still being
  // appended to: copies the suffix staged since the marker (or since the
  // previous pass) and forces it. Each pass leaves less for the next; the
  // final pass under the swap barrier then covers only the tail staged since
  // the last catch-up. Old-log entries are immutable once staged and the
  // cursor is internally locked, so racing live appends is safe.
  Status CatchUp() {
    for (int pass = 0; pass < 4; ++pass) {
      std::uint64_t before = stats_.stage2_entries_copied;
      Status s = StageTwo({});
      if (!s.ok()) {
        return s;
      }
      if (stats_.stage2_entries_copied == before) {
        break;
      }
      s = outcome_.new_log->Force();
      if (!s.ok()) {
        return s;
      }
    }
    return Status::Ok();
  }

  // Stage 2 + force. Requires the old log's suffix to be frozen.
  Result<HousekeepingOutcome> Finish(const std::function<bool(std::uint64_t)>& stage2_hook) {
    Status s = StageTwo(stage2_hook);
    if (!s.ok()) {
      return s;
    }
    s = outcome_.new_log->Force();
    if (!s.ok()) {
      return s;
    }
    outcome_.new_last_outcome = new_chain_;
    outcome_.new_mt = std::move(new_mt_);
    outcome_.stats = stats_;
    return std::move(outcome_);
  }

 private:
  struct Tracked {
    bool restored = false;  // false == "prepared": base still owed
    bool is_mutex = false;
    LogAddress old_mutex_address = LogAddress::Null();
  };

  // ---- New-log emission ----

  LogAddress AppendData(ObjectKind kind, std::vector<std::byte> value) {
    DataEntry entry;
    entry.kind = kind;
    entry.value = std::move(value);
    ++stats_.new_entries_written;
    return outcome_.new_log->Write(LogEntry(std::move(entry)));
  }

  LogAddress AppendOutcome(LogEntry entry) {
    std::visit(
        [this](auto& e) {
          using T = std::decay_t<decltype(e)>;
          if constexpr (!std::is_same_v<T, DataEntry>) {
            e.prev = new_chain_;
          }
        },
        entry);
    LogAddress addr = outcome_.new_log->Write(entry);
    new_chain_ = addr;
    ++stats_.new_entries_written;
    return addr;
  }

  // Writes the committed_ss entry and then the deferred tentative-state
  // entries (prepared / prepared_data / committing) in old temporal order, so
  // a recovery walk meets tentative versions before their bases.
  void EmitCheckpointTail() {
    CommittedSsEntry css;
    css.objects.reserve(cssl_.size());
    for (const auto& [uid, addr] : cssl_) {
      css.objects.push_back(UidAddress{uid, addr});
    }
    stats_.objects_checkpointed = cssl_.size();
    AppendOutcome(LogEntry(std::move(css)));
    // deferred_ was filled newest-first (backward walks); reverse restores
    // temporal order. The snapshot fills it in arbitrary traversal order,
    // which is fine: its entries are mutually independent.
    for (auto it = deferred_.rbegin(); it != deferred_.rend(); ++it) {
      AppendOutcome(std::move(*it));
    }
    deferred_.clear();
  }

  // ---- Shared pieces ----

  Result<DataEntry> ReadOldData(LogAddress address) {
    // Stage-1 replay reads go through the log's block ReadCache (pinned frame
    // view + zero-copy decode) instead of the locked whole-entry read path:
    // compaction re-reads the same committed pairs the recovery scan touches,
    // so the cache is usually warm, and the view path skips the per-entry
    // LogEntry allocation and the log mutex for durable frames.
    Result<StableLog::FrameView> view = old_log_->ReadFrameView(address);
    if (!view.ok()) {
      return view.status();
    }
    ++stats_.data_entries_read;
    Result<DataEntryView> data = DecodeDataEntryView(view.value().payload());
    if (!data.ok()) {
      if (data.status().code() == ErrorCode::kCorruption) {
        return Status::Corruption("pair points at a non-data entry");
      }
      return data.status();
    }
    DataEntry entry;
    entry.uid = data.value().uid;
    entry.kind = data.value().kind;
    entry.aid = data.value().aid;
    entry.value.assign(data.value().value.begin(), data.value().value.end());
    return entry;
  }

  // The §4.4 latest-version rule for one mutex pair. Copies the version to
  // the new log if it is the newest seen so far (by OLD address). The new
  // data entry lands either in the CSSL (stage 1) or in `into_pairs`
  // (stage 2 prepare lists).
  Status HandleMutexPair(Uid uid, LogAddress old_address, std::vector<std::byte> value,
                         std::vector<UidAddress>* into_pairs) {
    Tracked& t = tracked_[uid];
    t.is_mutex = true;
    if (!t.old_mutex_address.is_null() && old_address <= t.old_mutex_address) {
      return Status::Ok();  // an older version; the newer one is already out
    }
    LogAddress new_addr = AppendData(ObjectKind::kMutex, std::move(value));
    t.old_mutex_address = old_address;
    t.restored = true;
    if (into_pairs != nullptr) {
      into_pairs->push_back(UidAddress{uid, new_addr});
    } else {
      cssl_[uid] = new_addr;
    }
    new_mt_[uid] = new_addr;
    return Status::Ok();
  }

  // Checkpoints one committed atomic version (idempotent per uid).
  void CheckpointAtomic(Uid uid, std::vector<std::byte> value) {
    Tracked& t = tracked_[uid];
    if (t.restored) {
      return;
    }
    LogAddress addr = AppendData(ObjectKind::kAtomic, std::move(value));
    cssl_[uid] = addr;
    t.restored = true;
  }

  // ---- Stage 1: compaction (§5.1.1) ----

  Status StageOneCompaction() {
    LogAddress address = capture_.old_chain_head;
    while (!address.is_null()) {
      Result<LogEntry> entry_or = old_log_->Read(address);
      if (!entry_or.ok()) {
        return entry_or.status();
      }
      ++stats_.old_entries_processed;
      const LogEntry& entry = entry_or.value();

      Status s = Status::Ok();
      if (const auto* committed = std::get_if<CommittedEntry>(&entry)) {
        pt_.emplace(committed->aid, ParticipantState::kCommitted);
      } else if (const auto* aborted = std::get_if<AbortedEntry>(&entry)) {
        pt_.emplace(aborted->aid, ParticipantState::kAborted);
      } else if (const auto* done = std::get_if<DoneEntry>(&entry)) {
        ct_.emplace(done->aid, CoordinatorTableEntry{CoordinatorPhase::kDone, {}});
      } else if (const auto* committing = std::get_if<CommittingEntry>(&entry)) {
        if (ct_.find(committing->aid) == ct_.end()) {
          // Outcome still open: the coordinator must resume after recovery.
          ct_.emplace(committing->aid,
                      CoordinatorTableEntry{CoordinatorPhase::kCommitting,
                                            committing->participants});
          deferred_.push_back(
              LogEntry(CommittingEntry{committing->aid, committing->participants}));
        }
      } else if (const auto* bc = std::get_if<BaseCommittedEntry>(&entry)) {
        CheckpointAtomic(bc->uid, bc->value);
      } else if (const auto* pd = std::get_if<PreparedDataEntry>(&entry)) {
        s = CompactPreparedData(*pd);
      } else if (const auto* prepared = std::get_if<PreparedEntry>(&entry)) {
        s = CompactPrepared(*prepared);
      } else if (const auto* css = std::get_if<CommittedSsEntry>(&entry)) {
        for (const UidAddress& pair : css->objects) {
          s = CompactCommittedPair(pair);
          if (!s.ok()) {
            return s;
          }
        }
      }
      if (!s.ok()) {
        return s;
      }
      address = PrevPointer(entry);
    }
    return Status::Ok();
  }

  Status CompactPreparedData(const PreparedDataEntry& pd) {
    auto it = pt_.find(pd.aid);
    if (it == pt_.end()) {
      // Outcome unknown: the tentative version must survive verbatim.
      if (tracked_.find(pd.uid) == tracked_.end()) {
        tracked_[pd.uid];  // prepared (base owed)
      }
      deferred_.push_back(LogEntry(PreparedDataEntry{pd.uid, pd.value, pd.aid}));
      return Status::Ok();
    }
    if (it->second == ParticipantState::kAborted) {
      return Status::Ok();
    }
    // Committed: this current version is the latest committed version.
    CheckpointAtomic(pd.uid, pd.value);
    return Status::Ok();
  }

  Status CompactCommittedPair(const UidAddress& pair) {
    Result<DataEntry> data = ReadOldData(pair.address);
    if (!data.ok()) {
      return data.status();
    }
    if (data.value().kind == ObjectKind::kAtomic) {
      CheckpointAtomic(pair.uid, std::move(data.value().value));
      return Status::Ok();
    }
    return HandleMutexPair(pair.uid, pair.address, std::move(data.value().value), nullptr);
  }

  Status CompactPrepared(const PreparedEntry& prepared) {
    auto it = pt_.find(prepared.aid);
    if (it != pt_.end() && it->second == ParticipantState::kAborted) {
      // Atomic pairs die with the abort; mutex pairs survive (§2.4.2).
      for (const UidAddress& pair : prepared.objects) {
        Result<DataEntry> data = ReadOldData(pair.address);
        if (!data.ok()) {
          return data.status();
        }
        if (data.value().kind == ObjectKind::kMutex) {
          Status s =
              HandleMutexPair(pair.uid, pair.address, std::move(data.value().value), nullptr);
          if (!s.ok()) {
            return s;
          }
        }
      }
      return Status::Ok();
    }
    if (it != pt_.end() && it->second == ParticipantState::kCommitted) {
      for (const UidAddress& pair : prepared.objects) {
        Status s = CompactCommittedPair(pair);
        if (!s.ok()) {
          return s;
        }
      }
      return Status::Ok();
    }

    // Outcome not known: carry the prepared entry (with re-pointed pairs)
    // into the new log.
    std::vector<UidAddress> new_pairs;
    for (const UidAddress& pair : prepared.objects) {
      Result<DataEntry> data = ReadOldData(pair.address);
      if (!data.ok()) {
        return data.status();
      }
      if (data.value().kind == ObjectKind::kAtomic) {
        Tracked& t = tracked_[pair.uid];  // prepared: base owed
        (void)t;
        LogAddress addr = AppendData(ObjectKind::kAtomic, std::move(data.value().value));
        new_pairs.push_back(UidAddress{pair.uid, addr});
      } else {
        Status s =
            HandleMutexPair(pair.uid, pair.address, std::move(data.value().value), nullptr);
        if (!s.ok()) {
          return s;
        }
      }
    }
    // Unlike §5.1.1, the prepared entry is carried even when its pair list
    // came out empty (a mutex-only action): dropping it would lose the
    // action's prepared state across the checkpoint (DESIGN.md deviation D1).
    deferred_.push_back(LogEntry(PreparedEntry{prepared.aid, std::move(new_pairs)}));
    return Status::Ok();
  }

  // ---- Stage 1: snapshot (§5.2), from the captured heap copy ----

  Status StageOneSnapshot() {
    for (const CheckpointCapture::SnapshotObject& obj : capture_.objects) {
      ++stats_.old_entries_processed;
      if (obj.kind == ObjectKind::kAtomic) {
        CheckpointAtomic(obj.uid, obj.base);
        if (obj.prepared_locker.has_value()) {
          // A prepared, undecided action's tentative version.
          deferred_.push_back(LogEntry(
              PreparedDataEntry{obj.uid, obj.prepared_current, *obj.prepared_locker}));
        }
      } else {
        // The recovery-relevant mutex version is the last PREPARED one,
        // which lives in the old log at the MT address — the volatile value
        // may be newer (modified by an unprepared action).
        auto it = capture_.mt.find(obj.uid);
        if (it == capture_.mt.end()) {
          continue;  // never prepared: stage 2 or the post-swap rewrite covers it
        }
        Result<DataEntry> data = ReadOldData(it->second);
        if (!data.ok()) {
          return data.status();
        }
        Status s = HandleMutexPair(obj.uid, it->second, std::move(data.value().value),
                                   nullptr);
        if (!s.ok()) {
          return s;
        }
      }
    }
    // Preserve the prepared state of every undecided action (deviation D1) —
    // without this, a participant whose prepared action touched only mutex
    // objects would forget it had prepared.
    for (ActionId aid : capture_.pat) {
      deferred_.push_back(LogEntry(PreparedEntry{aid, {}}));
    }
    // Preserve in-flight coordinator state: a committing-but-not-done action
    // must still resend its verdict after a post-checkpoint crash.
    for (const auto& [aid, gids] : capture_.open_coordinators) {
      deferred_.push_back(LogEntry(CommittingEntry{aid, gids}));
    }
    outcome_.new_as = capture_.traversal_as;
    return Status::Ok();
  }

  // ---- Stage 2 (§5.1.1 second stage, shared) ----

  // One pass over the old-log suffix not yet carried over; resumable (the
  // cursor position persists across calls, for CatchUp).
  Status StageTwo(const std::function<bool(std::uint64_t)>& hook) {
    StableLog::ForwardCursor cursor = old_log_->ReadForwardFrom(stage2_next_);
    std::uint64_t copied = 0;
    while (true) {
      Result<std::optional<std::pair<LogAddress, LogEntry>>> next = cursor.Next();
      if (!next.ok()) {
        return next.status();
      }
      if (!next.value().has_value()) {
        stage2_next_ = cursor.offset();
        break;
      }
      const LogEntry& entry = next.value()->second;
      if (std::holds_alternative<DataEntry>(entry)) {
        continue;  // copied on demand through prepare lists
      }
      if (hook && !hook(copied)) {
        return Status::IoError("checkpoint abandoned by stage-2 hook");
      }
      ++copied;
      ++stats_.stage2_entries_copied;

      if (const auto* prepared = std::get_if<PreparedEntry>(&entry)) {
        std::vector<UidAddress> new_pairs;
        for (const UidAddress& pair : prepared->objects) {
          Result<DataEntry> data = ReadOldData(pair.address);
          if (!data.ok()) {
            return data.status();
          }
          if (data.value().kind == ObjectKind::kAtomic) {
            LogAddress addr = AppendData(ObjectKind::kAtomic, std::move(data.value().value));
            new_pairs.push_back(UidAddress{pair.uid, addr});
          } else {
            Status s = HandleMutexPair(pair.uid, pair.address, std::move(data.value().value),
                                       &new_pairs);
            if (!s.ok()) {
              return s;
            }
          }
        }
        AppendOutcome(LogEntry(PreparedEntry{prepared->aid, std::move(new_pairs)}));
      } else if (const auto* committed = std::get_if<CommittedEntry>(&entry)) {
        AppendOutcome(LogEntry(CommittedEntry{committed->aid}));
      } else if (const auto* aborted = std::get_if<AbortedEntry>(&entry)) {
        AppendOutcome(LogEntry(AbortedEntry{aborted->aid}));
      } else if (const auto* committing = std::get_if<CommittingEntry>(&entry)) {
        AppendOutcome(LogEntry(CommittingEntry{committing->aid, committing->participants}));
      } else if (const auto* done = std::get_if<DoneEntry>(&entry)) {
        AppendOutcome(LogEntry(DoneEntry{done->aid}));
      } else if (const auto* bc = std::get_if<BaseCommittedEntry>(&entry)) {
        AppendOutcome(LogEntry(BaseCommittedEntry{bc->uid, bc->value}));
      } else if (const auto* pd = std::get_if<PreparedDataEntry>(&entry)) {
        AppendOutcome(LogEntry(PreparedDataEntry{pd->uid, pd->value, pd->aid}));
      } else {
        return Status::Corruption("committed_ss after the housekeeping marker");
      }
    }
    return Status::Ok();
  }

  CheckpointCapture capture_;
  const StableLog* old_log_;
  HousekeepingOutcome outcome_;
  HousekeepingStats stats_;

  std::unordered_map<Uid, Tracked> tracked_;  // stage-1 OT analogue
  ParticipantTable pt_;
  CoordinatorTable ct_;
  std::map<Uid, LogAddress> cssl_;            // uid → new data entry address
  std::vector<LogEntry> deferred_;            // tentative-state entries
  MutexTable new_mt_;
  LogAddress new_chain_ = LogAddress::Null();
  // Old-log offset the next stage-2 pass resumes from (starts at the marker).
  std::uint64_t stage2_next_ = 0;
};

}  // namespace internal

CheckpointCapture CaptureCheckpoint(HousekeepingMethod method,
                                    const HousekeepingInputs& inputs) {
  ARGUS_CHECK(inputs.old_log != nullptr && inputs.heap != nullptr && inputs.pat != nullptr &&
              inputs.mt != nullptr);
  CheckpointCapture capture;
  capture.method = method;
  // The housekeeping marker: everything at or past this offset is stage-2
  // territory. Captured while staging is excluded, so the marker cleanly
  // separates state reflected in the capture from carried-over activity.
  capture.marker = inputs.old_log->end_offset();
  capture.old_chain_head = inputs.old_chain_head;
  capture.pat = *inputs.pat;
  capture.mt = *inputs.mt;
  if (inputs.open_coordinators != nullptr) {
    capture.open_coordinators = *inputs.open_coordinators;
  }
  if (method == HousekeepingMethod::kSnapshot) {
    AccessibilitySet traversal_as;
    for (RecoverableObject* obj : inputs.heap->TraverseStableState()) {
      traversal_as.insert(obj->uid());
      CheckpointCapture::SnapshotObject snap;
      snap.uid = obj->uid();
      snap.kind = obj->kind();
      if (obj->is_atomic()) {
        snap.base = FlattenValue(obj->base_version(), nullptr);
        std::optional<ActionId> locker = obj->write_locker();
        if (locker.has_value() && capture.pat.find(*locker) != capture.pat.end()) {
          snap.prepared_locker = *locker;
          snap.prepared_current = FlattenValue(obj->current_version(), nullptr);
        }
      }
      capture.objects.push_back(std::move(snap));
    }
    capture.traversal_as = std::move(traversal_as);
  }
  return capture;
}

CheckpointBuilder::CheckpointBuilder(
    CheckpointCapture capture, const StableLog* old_log,
    std::function<std::unique_ptr<StableMedium>()> medium_factory)
    : impl_(std::make_unique<internal::Housekeeper>(std::move(capture), old_log,
                                                    std::move(medium_factory))) {}

CheckpointBuilder::~CheckpointBuilder() = default;

Status CheckpointBuilder::BuildStageOne() { return impl_->StageOne(); }

Status CheckpointBuilder::CatchUp() { return impl_->CatchUp(); }

Result<HousekeepingOutcome> CheckpointBuilder::Finish(
    const std::function<bool(std::uint64_t)>& stage2_hook) {
  return impl_->Finish(stage2_hook);
}

std::uint64_t CheckpointBuilder::marker() const { return impl_->marker(); }

Result<HousekeepingOutcome> RunHousekeeping(HousekeepingMethod method,
                                            const HousekeepingInputs& inputs,
                                            const std::function<void()>& between_stages) {
  CheckpointCapture capture = CaptureCheckpoint(method, inputs);
  CheckpointBuilder builder(std::move(capture), inputs.old_log, inputs.medium_factory);
  Status s = builder.BuildStageOne();
  if (!s.ok()) {
    return s;
  }
  if (between_stages) {
    between_stages();
  }
  return builder.Finish();
}

}  // namespace argus
