// The recovery algorithms: §3.4.4 (simple log, every entry examined) and
// §4.3.3 (hybrid log, backward outcome chain), including the committed_ss
// handling of §5.1.2 and the mutex latest-version rule of §4.4.
//
// Both algorithms reconstruct the guardian's stable state into a fresh heap
// and return the OT/PT/CT tables that the Argus system uses to resume
// participants and coordinators (§2.3 item 6).

#ifndef SRC_RECOVERY_RECOVERY_ALGORITHMS_H_
#define SRC_RECOVERY_RECOVERY_ALGORITHMS_H_

#include "src/log/stable_log.h"
#include "src/object/heap.h"
#include "src/recovery/tables.h"

namespace argus {

struct RecoveryResult {
  ObjectTable ot;
  ParticipantTable pt;
  CoordinatorTable ct;
  MutexTable mt;            // rebuilt per §5.2 (latest prepared mutex versions)
  AccessibilitySet as;      // rebuilt by traversal (§3.4.1 step 4)
  LogAddress last_outcome = LogAddress::Null();  // chain head (hybrid)
  std::uint64_t entries_examined = 0;   // log entries touched
  std::uint64_t data_entries_read = 0;  // data entries dereferenced (hybrid)
};

// Chapter 3: reads the log backward one entry at a time, processing every
// data and outcome entry.
Result<RecoveryResult> RecoverSimpleLog(const StableLog& log, VolatileHeap& heap);

// Chapter 4: walks only the backward chain of outcome entries, dereferencing
// <uid, log address> pairs just when a version must actually be copied.
Result<RecoveryResult> RecoverHybridLog(const StableLog& log, VolatileHeap& heap);

}  // namespace argus

#endif  // SRC_RECOVERY_RECOVERY_ALGORITHMS_H_
