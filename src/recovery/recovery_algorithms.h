// The recovery algorithms: §3.4.4 (simple log, every entry examined) and
// §4.3.3 (hybrid log, backward outcome chain), including the committed_ss
// handling of §5.1.2 and the mutex latest-version rule of §4.4.
//
// Both algorithms reconstruct the guardian's stable state into a fresh heap
// and return the OT/PT/CT tables that the Argus system uses to resume
// participants and coordinators (§2.3 item 6).

#ifndef SRC_RECOVERY_RECOVERY_ALGORITHMS_H_
#define SRC_RECOVERY_RECOVERY_ALGORITHMS_H_

#include "src/log/stable_log.h"
#include "src/object/heap.h"
#include "src/recovery/tables.h"

namespace argus {

struct RecoveryResult {
  ObjectTable ot;
  ParticipantTable pt;
  CoordinatorTable ct;
  MutexTable mt;            // rebuilt per §5.2 (latest prepared mutex versions)
  AccessibilitySet as;      // rebuilt by traversal (§3.4.1 step 4)
  LogAddress last_outcome = LogAddress::Null();  // chain head (hybrid)
  std::uint64_t entries_examined = 0;   // log entries touched
  std::uint64_t data_entries_read = 0;  // data entries dereferenced (hybrid)
};

// Chapter 3: reads the log backward one entry at a time, processing every
// data and outcome entry.
Result<RecoveryResult> RecoverSimpleLog(const StableLog& log, VolatileHeap& heap);

// Tuning for the pipelined hybrid recovery.
struct HybridRecoveryOptions {
  // Data-entry prefetch workers. 0 runs the fully serial algorithm (no pool,
  // no speculation); the default leaves one core for the chain walk.
  std::size_t workers = DefaultRecoveryWorkers();
  // How many outcome entries the chain walk may run ahead of the apply
  // stage. Bounds the memory pinned by speculative fetches.
  std::size_t window = 128;

  static std::size_t DefaultRecoveryWorkers();
};

// Chapter 4: walks only the backward chain of outcome entries, dereferencing
// <uid, log address> pairs just when a version must actually be copied.
//
// The chain walk itself is inherently sequential — each outcome entry holds
// the `prev` pointer to the next (§4.3) — but the walk runs ahead of table
// construction, handing each entry's <uid, log-address> dereferences to a
// small worker pool that prefetches, CRC-checks, and decodes data entries
// concurrently. The apply stage consumes entries strictly in chain order and
// performs every OT/PT/CT/heap mutation itself, so the recovered state is
// bit-identical to the serial algorithm's (the equivalence property test
// pins this).
Result<RecoveryResult> RecoverHybridLog(const StableLog& log, VolatileHeap& heap);
Result<RecoveryResult> RecoverHybridLog(const StableLog& log, VolatileHeap& heap,
                                        const HybridRecoveryOptions& options);

}  // namespace argus

#endif  // SRC_RECOVERY_RECOVERY_ALGORITHMS_H_
