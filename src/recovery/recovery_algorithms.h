// The recovery algorithms: §3.4.4 (simple log, every entry examined) and
// §4.3.3 (hybrid log, backward outcome chain), including the committed_ss
// handling of §5.1.2 and the mutex latest-version rule of §4.4.
//
// Both algorithms reconstruct the guardian's stable state into a fresh heap
// and return the OT/PT/CT tables that the Argus system uses to resume
// participants and coordinators (§2.3 item 6).

#ifndef SRC_RECOVERY_RECOVERY_ALGORITHMS_H_
#define SRC_RECOVERY_RECOVERY_ALGORITHMS_H_

#include "src/log/stable_log.h"
#include "src/object/heap.h"
#include "src/recovery/tables.h"

namespace argus {

struct RecoveryResult {
  ObjectTable ot;
  ParticipantTable pt;
  CoordinatorTable ct;
  MutexTable mt;            // rebuilt per §5.2 (latest prepared mutex versions)
  AccessibilitySet as;      // rebuilt by traversal (§3.4.1 step 4)
  LogAddress last_outcome = LogAddress::Null();  // chain head (hybrid)
  std::uint64_t entries_examined = 0;   // log entries touched
  std::uint64_t data_entries_read = 0;  // data entries dereferenced (hybrid)
};

// Chapter 3: reads the log backward one entry at a time, processing every
// data and outcome entry.
Result<RecoveryResult> RecoverSimpleLog(const StableLog& log, VolatileHeap& heap);

// Tuning for the pipelined hybrid recovery.
struct HybridRecoveryOptions {
  // Data-entry prefetch workers. 0 runs the fully serial algorithm (no pool,
  // no speculation); the default leaves one core for the chain walk.
  std::size_t workers = DefaultRecoveryWorkers();
  // How many outcome entries the chain walk may run ahead of the apply
  // stage. Bounds the memory pinned by speculative fetches.
  std::size_t window = 128;

  static std::size_t DefaultRecoveryWorkers();
};

// Chapter 4: walks only the backward chain of outcome entries, dereferencing
// <uid, log address> pairs just when a version must actually be copied.
//
// The chain walk itself is inherently sequential — each outcome entry holds
// the `prev` pointer to the next (§4.3) — but the walk runs ahead of table
// construction, handing each entry's <uid, log-address> dereferences to a
// small worker pool that prefetches, CRC-checks, and decodes data entries
// concurrently. The apply stage consumes entries strictly in chain order and
// performs every OT/PT/CT/heap mutation itself, so the recovered state is
// bit-identical to the serial algorithm's (the equivalence property test
// pins this).
Result<RecoveryResult> RecoverHybridLog(const StableLog& log, VolatileHeap& heap);
Result<RecoveryResult> RecoverHybridLog(const StableLog& log, VolatileHeap& heap,
                                        const HybridRecoveryOptions& options);

// ---- Sharded recovery (N hybrid logs per guardian) ----

struct ShardedRecoveryOptions {
  // Concurrent shard workers. 0 recovers the shards one after another on the
  // calling thread; W >= 1 runs min(W, shards) worker threads. Both schedules
  // produce bit-identical results (the shard equivalence test pins this).
  std::size_t workers = 0;
};

struct ShardedRecoveryResult {
  // The merged tables: OT is the disjoint union over shards (the shard map
  // routes each uid to exactly one shard), the PT is merged decided-wins, the
  // CT is the union (outcome records live only on an action's home shard).
  // `merged.last_outcome` is shard 0's chain head.
  RecoveryResult merged;
  // Each shard's chain head, for re-priming the writer's per-shard chains.
  std::vector<LogAddress> shard_last_outcomes;
};

// Recovers a guardian whose stable state is partitioned across `shards` logs
// (see src/stable/shard_map.h for the routing). Runs in two phases:
//
//  Phase A (per shard, parallelizable): walk the shard's backward outcome
//  chain, retaining the decoded entries and collecting the shard's PT/CT
//  fragment. No heap access.
//
//  Merge: combine the PT fragments decided-wins. A prepare fragment on shard
//  s says only "aid prepared"; the commit/abort record lives on the action's
//  home shard, and the two-phase commit force protocol (LogWriter) guarantees
//  the decision record is durable only if every shard's prepare fragment is —
//  so a decided state always dominates, and two *conflicting* decisions are
//  corruption.
//
//  Phase B (per shard, parallelizable): apply the retained chain entries in
//  chain order against a context seeded with the merged PT, restoring this
//  shard's objects. Uids are disjoint across shards, so workers share the
//  heap behind a narrow allocation mutex and never touch the same object.
//
// followed by a single global finalize (uid-ref resolution, AS traversal, MT
// rebuild) over the merged tables.
Result<ShardedRecoveryResult> RecoverShardedHybridLog(std::span<StableLog* const> shards,
                                                      VolatileHeap& heap,
                                                      const ShardedRecoveryOptions& options = {});

}  // namespace argus

#endif  // SRC_RECOVERY_RECOVERY_ALGORITHMS_H_
