#include "src/recovery/debug.h"

#include <algorithm>
#include <vector>

namespace argus {
namespace {

// Tables are unordered; sort rows for stable output.
template <typename Map, typename Render>
std::string RenderSorted(const Map& map, const char* header, Render render) {
  std::string out(header);
  out += "\n";
  std::vector<typename Map::const_iterator> rows;
  rows.reserve(map.size());
  for (auto it = map.begin(); it != map.end(); ++it) {
    rows.push_back(it);
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a->first < b->first; });
  for (const auto& it : rows) {
    out += "  " + render(*it) + "\n";
  }
  if (map.empty()) {
    out += "  (empty)\n";
  }
  return out;
}

}  // namespace

std::string DumpParticipantTable(const ParticipantTable& pt) {
  return RenderSorted(pt, "PT", [](const auto& row) {
    return to_string(row.first) + "  " + ParticipantStateName(row.second);
  });
}

std::string DumpCoordinatorTable(const CoordinatorTable& ct) {
  return RenderSorted(ct, "CT", [](const auto& row) {
    std::string line = to_string(row.first) + "  " + CoordinatorPhaseName(row.second.phase);
    if (row.second.phase == CoordinatorPhase::kCommitting) {
      line += " (";
      for (std::size_t i = 0; i < row.second.participants.size(); ++i) {
        if (i > 0) {
          line += ",";
        }
        line += to_string(row.second.participants[i]);
      }
      line += ")";
    }
    return line;
  });
}

std::string DumpObjectTable(const ObjectTable& ot) {
  return RenderSorted(ot, "OT", [](const auto& row) {
    std::string line = to_string(row.first) + "  " +
                       ObjectRecoveryStateName(row.second.state) + "  " +
                       ObjectKindName(row.second.object->kind());
    if (row.second.object->evicted()) {
      // Demoted to a stub: the value lives at the stable address.
      line += "  [stub " + std::to_string(row.second.object->evicted_bytes()) + "B @" +
              to_string(row.second.object->stable_address()) + "]";
      return line;
    }
    if (row.second.object->is_atomic()) {
      line += "  base=" + row.second.object->base_version().ToString();
      if (row.second.object->has_current()) {
        line += "  current=" + row.second.object->current_version().ToString();
        if (row.second.object->write_locker().has_value()) {
          line += " [wlock " + to_string(*row.second.object->write_locker()) + "]";
        }
      }
    } else {
      line += "  value=" + row.second.object->mutex_value().ToString();
      if (!row.second.mutex_address.is_null()) {
        line += " @" + to_string(row.second.mutex_address);
      }
    }
    return line;
  });
}

std::string DumpRecoveryInfo(const RecoveryInfo& info) {
  std::string out = DumpParticipantTable(info.pt);
  out += DumpCoordinatorTable(info.ct);
  out += DumpObjectTable(info.ot);
  out += "entries examined: " + std::to_string(info.entries_examined) +
         ", data entries read: " + std::to_string(info.data_entries_read) + "\n";
  return out;
}

std::string DumpLogStats(const LogStats& stats) {
  auto rate = [](double v) {
    std::string s = std::to_string(v);
    return s.substr(0, s.find('.') + 3);  // two decimals
  };
  std::string out = "LogStats\n";
  out += "  entries_written=" + std::to_string(stats.entries_written) +
         " forces=" + std::to_string(stats.forces) +
         " bytes_forced=" + std::to_string(stats.bytes_forced) +
         " physical_bytes=" + std::to_string(stats.physical_bytes) +
         " entries_per_force=" + rate(stats.entries_per_force()) + "\n";
  out += "  force_requests=" + std::to_string(stats.force_requests) +
         " coalesced_requests=" + std::to_string(stats.coalesced_requests) +
         " max_entries_per_force=" + std::to_string(stats.max_entries_per_force) + "\n";
  out += "  entries_read=" + std::to_string(stats.entries_read) +
         " cache_hits=" + std::to_string(stats.cache_hits) +
         " cache_misses=" + std::to_string(stats.cache_misses) +
         " cache_hit_rate=" + rate(stats.cache_hit_rate()) +
         " cache_bytes_read=" + std::to_string(stats.cache_bytes_read) +
         " readahead_blocks=" + std::to_string(stats.readahead_blocks) + "\n";
  out += "  read_batches=" + std::to_string(stats.read_batches) +
         " batched_reads=" + std::to_string(stats.batched_reads) +
         " pipeline_prefetches=" + std::to_string(stats.pipeline_prefetches) +
         " pipeline_prefetch_hits=" + std::to_string(stats.pipeline_prefetch_hits) +
         " pipeline_sync_reads=" + std::to_string(stats.pipeline_sync_reads) +
         " prefetch_hit_rate=" + rate(stats.prefetch_hit_rate()) + "\n";
  return out;
}

LogStats AggregateLogStats(const std::vector<LogStats>& per_shard) {
  LogStats total;
  for (const LogStats& s : per_shard) {
    total.entries_written += s.entries_written;
    total.forces += s.forces;
    total.bytes_forced += s.bytes_forced;
    total.physical_bytes += s.physical_bytes;
    total.entries_read += s.entries_read;
    total.force_requests += s.force_requests;
    total.coalesced_requests += s.coalesced_requests;
    total.max_entries_per_force = std::max(total.max_entries_per_force, s.max_entries_per_force);
    total.total_force_wait_ns += s.total_force_wait_ns;
    total.cache_hits += s.cache_hits;
    total.cache_misses += s.cache_misses;
    total.cache_bytes_read += s.cache_bytes_read;
    total.readahead_blocks += s.readahead_blocks;
    total.read_batches += s.read_batches;
    total.batched_reads += s.batched_reads;
    total.pipeline_prefetches += s.pipeline_prefetches;
    total.pipeline_prefetch_hits += s.pipeline_prefetch_hits;
    total.pipeline_sync_reads += s.pipeline_sync_reads;
  }
  return total;
}

std::string DumpShardedLogStats(const std::vector<LogStats>& per_shard) {
  std::string out;
  for (std::size_t i = 0; i < per_shard.size(); ++i) {
    out += "shard " + std::to_string(i) + " " + DumpLogStats(per_shard[i]);
  }
  out += "rollup (" + std::to_string(per_shard.size()) + " shards) " +
         DumpLogStats(AggregateLogStats(per_shard));
  return out;
}

namespace {

std::vector<LogStats> SnapshotShards(const std::vector<StableLog*>& logs) {
  std::vector<LogStats> per_shard;
  per_shard.reserve(logs.size());
  for (const StableLog* log : logs) {
    per_shard.push_back(log->StatsSnapshot());
  }
  return per_shard;
}

}  // namespace

LogStats AggregateLogStats(const std::vector<StableLog*>& logs) {
  return AggregateLogStats(SnapshotShards(logs));
}

std::string DumpShardedLogStats(const std::vector<StableLog*>& logs) {
  return DumpShardedLogStats(SnapshotShards(logs));
}

}  // namespace argus
