#include "src/recovery/recovery_algorithms.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/object/flatten.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace argus {
namespace {

// Per-stage recovery telemetry. Wall-clock stage costs go to histograms (the
// before/after ledger for the reserve heuristic and any future table tuning);
// table sizes land in gauges at finalize. Trace events are emitted only from
// the recovering thread — prefetch workers stay silent so seeded runs produce
// identical event sequences regardless of worker count.
struct RecObs {
  obs::Counter* runs;
  obs::Counter* entries_examined;
  obs::Counter* data_entries_read;
  obs::Histogram* find_head_ns;
  obs::Histogram* walk_apply_ns;
  obs::Histogram* finalize_ns;
  obs::Gauge* ot_size;
  obs::Gauge* pt_size;
  obs::Gauge* ct_size;
  obs::Gauge* mt_size;
  obs::Gauge* table_reserve;

  static const RecObs& Get() {
    static const RecObs m{
        obs::GetCounter("recovery.runs"),
        obs::GetCounter("recovery.entries_examined"),
        obs::GetCounter("recovery.data_entries_read"),
        obs::GetHistogram("recovery.find_head_ns"),
        obs::GetHistogram("recovery.walk_apply_ns"),
        obs::GetHistogram("recovery.finalize_ns"),
        obs::GetGauge("recovery.ot_size"),
        obs::GetGauge("recovery.pt_size"),
        obs::GetGauge("recovery.ct_size"),
        obs::GetGauge("recovery.mt_size"),
        obs::GetGauge("recovery.table_reserve"),
    };
    return m;
  }
};

std::uint64_t ElapsedNs(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - since)
                                        .count());
}

// How many entries a log of this size plausibly holds. The divisor is the
// framed size of a minimal outcome entry — an underestimate of the average
// (data entries carry values), so the derived table reservations overshoot
// slightly rather than rehash. Capped so a pathological log cannot demand
// gigabytes of empty buckets.
std::size_t EntryEstimateFromLogSize(const StableLog& log) {
  constexpr std::uint64_t kMinFramedEntryBytes = 48;
  constexpr std::uint64_t kMaxEstimate = std::uint64_t{1} << 22;
  return static_cast<std::size_t>(
      std::min(log.durable_size() / kMinFramedEntryBytes, kMaxEstimate));
}

// Shared mechanics of both recovery algorithms: table updates plus the
// restore-version operations that copy flattened versions into the heap.
class RecoveryContext {
 public:
  explicit RecoveryContext(VolatileHeap& heap) : heap_(heap) {}

  RecoveryResult& result() { return result_; }

  // Sizes the OT/PT hash tables up front from the log-size entry estimate —
  // at 10^6 entries the incremental rehashes were ~25% of the cached walk
  // (ROADMAP). Data entries dominate a log and uids repeat across actions,
  // so half the entry count comfortably over-reserves the OT; the PT gets a
  // quarter (each action contributes at least a prepared and an outcome
  // entry).
  void ReserveTables(std::size_t entry_estimate) {
    result_.ot.reserve(entry_estimate / 2 + 16);
    result_.pt.reserve(entry_estimate / 4 + 16);
    RecObs::Get().table_reserve->Set(static_cast<double>(entry_estimate));
  }

  // ---- Table updates (first-seen wins: the scan runs newest-to-oldest) ----

  void NoteParticipant(ActionId aid, ParticipantState state) {
    result_.pt.emplace(aid, state);
  }

  void NoteCoordinator(ActionId aid, CoordinatorPhase phase, std::vector<GuardianId> gids) {
    result_.ct.emplace(aid, CoordinatorTableEntry{phase, std::move(gids)});
  }

  std::optional<ParticipantState> ParticipantStateOf(ActionId aid) const {
    auto it = result_.pt.find(aid);
    if (it == result_.pt.end()) {
      return std::nullopt;
    }
    return it->second;
  }

  // Parallel shard recovery: workers restore disjoint uid sets into one
  // shared heap, so only the heap's object-map accesses need serializing.
  // Null (the default, serial paths) means no locking at all.
  void SetHeapMutex(std::mutex* mu) { heap_mu_ = mu; }

  // ---- Version restoration ----

  // Gets or materializes the volatile object for `uid`.
  Result<RecoverableObject*> EnsureObject(Uid uid, ObjectKind kind) {
    std::unique_lock<std::mutex> l;
    if (heap_mu_ != nullptr) {
      l = std::unique_lock<std::mutex>(*heap_mu_);
    }
    RecoverableObject* existing = heap_.Get(uid);
    if (existing != nullptr) {
      if (existing->kind() != kind) {
        return Status::Corruption("object kind mismatch for " + to_string(uid));
      }
      return existing;
    }
    return heap_.InstallRecovered(uid, kind);
  }

  // Installs a committed version: the base version of an atomic object or
  // the (current) version of a mutex object. Inserts/updates the OT.
  Status RestoreCommitted(Uid uid, ObjectKind kind, std::span<const std::byte> flat,
                          LogAddress data_address) {
    Result<Value> value = UnflattenValue(flat);
    if (!value.ok()) {
      return value.status();
    }
    Result<RecoverableObject*> obj = EnsureObject(uid, kind);
    if (!obj.ok()) {
      return obj.status();
    }
    obj.value()->RestoreBase(std::move(value).value());
    obj.value()->set_base_restored(true);
    ObjectTableEntry& entry = result_.ot[uid];
    entry.state = ObjectRecoveryState::kRestored;
    entry.object = obj.value();
    entry.base_address = data_address;
    if (kind == ObjectKind::kMutex) {
      entry.mutex_address = data_address;
    }
    return Status::Ok();
  }

  // Installs the tentative version of an atomic object for a prepared but
  // undecided action; the action is re-granted its write lock (§3.4.4 e.ii).
  Status RestorePreparedCurrent(Uid uid, std::span<const std::byte> flat, ActionId aid) {
    Result<Value> value = UnflattenValue(flat);
    if (!value.ok()) {
      return value.status();
    }
    Result<RecoverableObject*> obj = EnsureObject(uid, ObjectKind::kAtomic);
    if (!obj.ok()) {
      return obj.status();
    }
    obj.value()->RestoreCurrentWithLock(std::move(value).value(), aid);
    ObjectTableEntry& entry = result_.ot[uid];
    entry.state = ObjectRecoveryState::kPrepared;
    entry.object = obj.value();
    return Status::Ok();
  }

  // base_committed semantics (§3.4.4 d): supplies the base version if it is
  // still owed; otherwise the entry is stale and ignored. `address` is the
  // frame the value was decoded from (Null when the caller has none) — it
  // primes residency eviction, which must be able to re-read the base.
  Status HandleBaseCommitted(Uid uid, std::span<const std::byte> flat, LogAddress address) {
    auto it = result_.ot.find(uid);
    if (it != result_.ot.end()) {
      if (it->second.state == ObjectRecoveryState::kPrepared) {
        Result<Value> value = UnflattenValue(flat);
        if (!value.ok()) {
          return value.status();
        }
        it->second.object->RestoreBase(std::move(value).value());
        it->second.object->set_base_restored(true);
        it->second.state = ObjectRecoveryState::kRestored;
        it->second.base_address = address;
      }
      return Status::Ok();
    }
    return RestoreCommitted(uid, ObjectKind::kAtomic, flat, address);
  }

  // prepared_data semantics (§3.4.4 e).
  Status HandlePreparedData(const PreparedDataEntry& entry, LogAddress address) {
    std::optional<ParticipantState> state = ParticipantStateOf(entry.aid);
    if (state == ParticipantState::kAborted) {
      return Status::Ok();
    }
    if (state == ParticipantState::kCommitted) {
      // The modifying action committed: this current version is the latest
      // committed version — it plays the base role if still owed.
      return HandleBaseCommitted(entry.uid, AsSpan(entry.value), address);
    }
    // Prepared (seen later in the log) or unknown: the action prepared; the
    // real prepared entry appears earlier in the log.
    if (!state.has_value()) {
      NoteParticipant(entry.aid, ParticipantState::kPrepared);
    }
    if (result_.ot.find(entry.uid) != result_.ot.end()) {
      return Status::Ok();
    }
    return RestorePreparedCurrent(entry.uid, AsSpan(entry.value), entry.aid);
  }

  // ---- Finalization (§3.4.4 steps 3-5) ----

  Status Finalize() {
    // Every OT entry should have received its base by now; an object still in
    // prepared state means the log never supplied its committed version.
    std::uint64_t max_uid = 0;
    for (auto& [uid, entry] : result_.ot) {
      if (entry.state == ObjectRecoveryState::kPrepared) {
        return Status::Corruption("no committed version recovered for " + to_string(uid));
      }
      max_uid = std::max(max_uid, uid.value);
    }

    // Final pass: patch uid placeholders into volatile references.
    auto resolve = [this](Uid uid) -> RecoverableObject* {
      auto it = result_.ot.find(uid);
      if (it != result_.ot.end()) {
        return it->second.object;
      }
      // The root exists even if the log never mentioned it.
      return heap_.Get(uid);
    };
    for (auto& [uid, entry] : result_.ot) {
      RecoverableObject* obj = entry.object;
      Value base = obj->base_version();
      Status s = ResolveUidRefs(base, resolve);
      if (!s.ok()) {
        return s;
      }
      obj->RestoreBase(std::move(base));
      if (obj->is_atomic() && obj->has_current()) {
        std::optional<ActionId> locker = obj->write_locker();
        Value current = obj->current_version();
        s = ResolveUidRefs(current, resolve);
        if (!s.ok()) {
          return s;
        }
        ARGUS_CHECK(locker.has_value());
        obj->RestoreCurrentWithLock(std::move(current), *locker);
      }
    }

    // The stable counter resumes past every uid ever logged (§3.4.4 step 3).
    heap_.ResetUidCounter(max_uid + 1);

    // Rebuild the accessibility set by traversal (§3.4.4 step 4).
    for (Uid uid : heap_.ComputeAccessibleUids()) {
      result_.as.insert(uid);
    }

    // Rebuild the MT (§5.2): latest prepared mutex versions.
    for (const auto& [uid, entry] : result_.ot) {
      if (entry.object->is_mutex() && !entry.mutex_address.is_null()) {
        result_.mt.emplace(uid, entry.mutex_address);
      }
    }
    return Status::Ok();
  }

 private:
  VolatileHeap& heap_;
  std::mutex* heap_mu_ = nullptr;
  RecoveryResult result_;
};

// Handles one simple-log data entry per §3.4.4 step h.
Status HandleSimpleDataEntry(RecoveryContext& ctx, const DataEntry& entry, LogAddress address) {
  std::optional<ParticipantState> state = ctx.ParticipantStateOf(entry.aid);
  if (!state.has_value()) {
    // No outcome entry named this action: it never prepared; its writes are
    // invisible (this also covers early-prepared entries of unprepared
    // actions, §4.4).
    return Status::Ok();
  }
  ObjectTable& ot = ctx.result().ot;
  auto it = ot.find(entry.uid);
  switch (*state) {
    case ParticipantState::kCommitted:
      if (it != ot.end()) {
        if (it->second.state == ObjectRecoveryState::kPrepared &&
            entry.kind == ObjectKind::kAtomic) {
          // This is the latest committed version: the owed base.
          return ctx.HandleBaseCommitted(entry.uid, AsSpan(entry.value), address);
        }
        return Status::Ok();
      }
      return ctx.RestoreCommitted(entry.uid, entry.kind, AsSpan(entry.value), address);
    case ParticipantState::kPrepared:
      if (it != ot.end()) {
        return Status::Ok();
      }
      if (entry.kind == ObjectKind::kAtomic) {
        return ctx.RestorePreparedCurrent(entry.uid, AsSpan(entry.value), entry.aid);
      }
      // Mutex: restored regardless of the eventual outcome (§2.4.2).
      return ctx.RestoreCommitted(entry.uid, entry.kind, AsSpan(entry.value), address);
    case ParticipantState::kAborted:
      if (entry.kind == ObjectKind::kAtomic) {
        return Status::Ok();
      }
      if (it != ot.end()) {
        return Status::Ok();
      }
      // A prepared-then-aborted action's mutex version still holds (§2.4.2).
      return ctx.RestoreCommitted(entry.uid, entry.kind, AsSpan(entry.value), address);
  }
  return Status::Ok();
}

// Times Finalize and publishes the post-recovery table sizes and counter
// mirrors. Shared by every recovery driver.
Status FinalizeWithMetrics(RecoveryContext& ctx) {
  const auto start = std::chrono::steady_clock::now();
  Status s = ctx.Finalize();
  const RecObs& m = RecObs::Get();
  m.finalize_ns->Record(ElapsedNs(start));
  m.runs->Increment();
  m.entries_examined->Add(ctx.result().entries_examined);
  m.data_entries_read->Add(ctx.result().data_entries_read);
  m.ot_size->Set(static_cast<double>(ctx.result().ot.size()));
  m.pt_size->Set(static_cast<double>(ctx.result().pt.size()));
  m.ct_size->Set(static_cast<double>(ctx.result().ct.size()));
  m.mt_size->Set(static_cast<double>(ctx.result().mt.size()));
  return s;
}

}  // namespace

Result<RecoveryResult> RecoverSimpleLog(const StableLog& log, VolatileHeap& heap) {
  obs::TraceSpan span("recovery.run", log.durable_size());
  RecoveryContext ctx(heap);
  ctx.ReserveTables(EntryEstimateFromLogSize(log));
  const auto walk_start = std::chrono::steady_clock::now();

  StableLog::BackwardCursor cursor = log.ReadBackwardFromTop();
  while (true) {
    Result<std::optional<std::pair<LogAddress, LogEntry>>> next = cursor.Next();
    if (!next.ok()) {
      return next.status();
    }
    if (!next.value().has_value()) {
      break;
    }
    ++ctx.result().entries_examined;
    const auto& [address, entry] = *next.value();

    Status s = Status::Ok();
    if (const auto* prepared = std::get_if<PreparedEntry>(&entry)) {
      if (!ctx.ParticipantStateOf(prepared->aid).has_value()) {
        ctx.NoteParticipant(prepared->aid, ParticipantState::kPrepared);
      }
    } else if (const auto* committed = std::get_if<CommittedEntry>(&entry)) {
      ctx.NoteParticipant(committed->aid, ParticipantState::kCommitted);
    } else if (const auto* aborted = std::get_if<AbortedEntry>(&entry)) {
      ctx.NoteParticipant(aborted->aid, ParticipantState::kAborted);
    } else if (const auto* committing = std::get_if<CommittingEntry>(&entry)) {
      ctx.NoteCoordinator(committing->aid, CoordinatorPhase::kCommitting,
                          committing->participants);
    } else if (const auto* done = std::get_if<DoneEntry>(&entry)) {
      ctx.NoteCoordinator(done->aid, CoordinatorPhase::kDone, {});
    } else if (const auto* bc = std::get_if<BaseCommittedEntry>(&entry)) {
      s = ctx.HandleBaseCommitted(bc->uid, AsSpan(bc->value), address);
    } else if (const auto* pd = std::get_if<PreparedDataEntry>(&entry)) {
      s = ctx.HandlePreparedData(*pd, address);
    } else if (const auto* data = std::get_if<DataEntry>(&entry)) {
      s = HandleSimpleDataEntry(ctx, *data, address);
    } else if (std::holds_alternative<CommittedSsEntry>(entry)) {
      // Housekeeping (ch. 5) applies to the hybrid log only; a committed_ss
      // entry in a simple log means the log was written by the wrong mode.
      return Status::Corruption("committed_ss entry in a simple log");
    }
    if (!s.ok()) {
      return s;
    }
  }
  RecObs::Get().walk_apply_ns->Record(ElapsedNs(walk_start));

  Status s = FinalizeWithMetrics(ctx);
  if (!s.ok()) {
    return s;
  }
  obs::Emit("recovery.done", ctx.result().entries_examined, ctx.result().data_entries_read);
  return std::move(ctx.result());
}

namespace {

// A dereferenced data entry handed to the apply stage. `view.value` aliases
// either the pinned frame bytes (`pin`, zero-copy sync path) or the decoded
// entry a prefetch worker produced (`owned`).
struct FetchedData {
  DataEntryView view;
  StableLog::FrameView pin;
  std::optional<DataEntry> owned;
};

// Fetches the data entry a <uid, log-address> pair points at. Implementations
// tick data_entries_read exactly when the serial algorithm would: after a
// successful frame read, before the data-kind check.
using DataFetcher = std::function<Result<FetchedData>(const UidAddress&)>;

// Synchronous fetch through the log's pinned frame views: decodes straight
// out of the cached block, no per-entry heap copy.
Result<FetchedData> FetchViaView(const StableLog& log, RecoveryContext& ctx,
                                 const UidAddress& pair) {
  Result<StableLog::FrameView> frame = log.ReadFrameView(pair.address);
  if (!frame.ok()) {
    return frame.status();
  }
  ++ctx.result().data_entries_read;
  if (!IsDataEntryPayload(frame.value().payload())) {
    // Preserve the serial error surface: a decode failure reports itself, a
    // well-formed non-data entry reports the chain inconsistency.
    Result<LogEntry> entry = DecodeEntry(frame.value().payload());
    if (!entry.ok()) {
      return entry.status();
    }
    return Status::Corruption("prepared pair points at a non-data entry");
  }
  Result<DataEntryView> view = DecodeDataEntryView(frame.value().payload());
  if (!view.ok()) {
    return view.status();
  }
  FetchedData out;
  out.view = view.value();
  out.pin = std::move(frame).value();
  return out;
}

// Wraps a fully decoded entry (from a prefetch worker) as FetchedData.
Result<FetchedData> FetchFromEntry(RecoveryContext& ctx, Result<LogEntry> entry) {
  if (!entry.ok()) {
    return entry.status();
  }
  ++ctx.result().data_entries_read;
  auto* data = std::get_if<DataEntry>(&entry.value());
  if (data == nullptr) {
    return Status::Corruption("prepared pair points at a non-data entry");
  }
  FetchedData out;
  out.owned = std::move(*data);
  out.view = DataEntryView{out.owned->uid, out.owned->kind, out.owned->aid,
                           AsSpan(out.owned->value)};
  return out;
}

// Dereferences and applies one <uid, log address> pair of a hybrid prepared
// (or committed_ss) entry, given the outcome of the covering action.
Status HandleHybridPair(RecoveryContext& ctx, const DataFetcher& fetch, const UidAddress& pair,
                        ParticipantState outcome, ActionId aid) {
  ObjectTable& ot = ctx.result().ot;

  auto it = ot.find(pair.uid);
  if (it != ot.end()) {
    ObjectTableEntry& existing = it->second;
    if (existing.object->is_mutex()) {
      // §4.4: with early prepare, chain order can disagree with write order;
      // only a data entry at a HIGHER address supersedes the installed one.
      if (!existing.mutex_address.is_null() && pair.address > existing.mutex_address) {
        Result<FetchedData> data = fetch(pair);
        if (!data.ok()) {
          return data.status();
        }
        Result<Value> value = UnflattenValue(data.value().view.value);
        if (!value.ok()) {
          return value.status();
        }
        existing.object->RestoreBase(std::move(value).value());
        existing.mutex_address = pair.address;
      }
      return Status::Ok();
    }
    // Atomic, already present.
    if (existing.state == ObjectRecoveryState::kPrepared &&
        outcome == ParticipantState::kCommitted) {
      Result<FetchedData> data = fetch(pair);
      if (!data.ok()) {
        return data.status();
      }
      return ctx.HandleBaseCommitted(pair.uid, data.value().view.value, pair.address);
    }
    return Status::Ok();
  }

  // Not yet in the OT.
  Result<FetchedData> data = fetch(pair);
  if (!data.ok()) {
    return data.status();
  }
  const DataEntryView& d = data.value().view;
  switch (outcome) {
    case ParticipantState::kAborted:
      if (d.kind == ObjectKind::kAtomic) {
        return Status::Ok();
      }
      return ctx.RestoreCommitted(pair.uid, d.kind, d.value, pair.address);
    case ParticipantState::kCommitted:
      return ctx.RestoreCommitted(pair.uid, d.kind, d.value, pair.address);
    case ParticipantState::kPrepared:
      if (d.kind == ObjectKind::kAtomic) {
        return ctx.RestorePreparedCurrent(pair.uid, d.value, aid);
      }
      return ctx.RestoreCommitted(pair.uid, d.kind, d.value, pair.address);
  }
  return Status::Ok();
}

// Applies one chain entry to the recovery tables. This single dispatch is
// shared by the serial and pipelined drivers, so the two cannot diverge
// structurally — only the fetcher differs.
Status ApplyChainEntry(RecoveryContext& ctx, const DataFetcher& fetch, const LogEntry& entry,
                       LogAddress address) {
  Status s = Status::Ok();
  if (const auto* prepared = std::get_if<PreparedEntry>(&entry)) {
    std::optional<ParticipantState> state = ctx.ParticipantStateOf(prepared->aid);
    if (!state.has_value()) {
      ctx.NoteParticipant(prepared->aid, ParticipantState::kPrepared);
      state = ParticipantState::kPrepared;
    }
    for (const UidAddress& pair : prepared->objects) {
      s = HandleHybridPair(ctx, fetch, pair, *state, prepared->aid);
      if (!s.ok()) {
        return s;
      }
    }
  } else if (const auto* committed = std::get_if<CommittedEntry>(&entry)) {
    ctx.NoteParticipant(committed->aid, ParticipantState::kCommitted);
  } else if (const auto* aborted = std::get_if<AbortedEntry>(&entry)) {
    ctx.NoteParticipant(aborted->aid, ParticipantState::kAborted);
  } else if (const auto* committing = std::get_if<CommittingEntry>(&entry)) {
    ctx.NoteCoordinator(committing->aid, CoordinatorPhase::kCommitting,
                        committing->participants);
  } else if (const auto* done = std::get_if<DoneEntry>(&entry)) {
    ctx.NoteCoordinator(done->aid, CoordinatorPhase::kDone, {});
  } else if (const auto* bc = std::get_if<BaseCommittedEntry>(&entry)) {
    s = ctx.HandleBaseCommitted(bc->uid, AsSpan(bc->value), address);
  } else if (const auto* pd = std::get_if<PreparedDataEntry>(&entry)) {
    s = ctx.HandlePreparedData(*pd, address);
  } else if (const auto* css = std::get_if<CommittedSsEntry>(&entry)) {
    // §5.1.2: a combined prepare-and-commit of an anonymous action.
    for (const UidAddress& pair : css->objects) {
      s = HandleHybridPair(ctx, fetch, pair, ParticipantState::kCommitted, ActionId::Invalid());
      if (!s.ok()) {
        return s;
      }
    }
  }
  return s;
}

// Finds the chain head (the newest outcome entry), skipping data entries that
// were forced after it. Ticks entries_examined for every entry touched.
Result<std::optional<LogAddress>> FindChainHead(const StableLog& log, RecoveryContext& ctx) {
  StableLog::BackwardCursor cursor = log.ReadBackwardFromTop();
  while (true) {
    Result<std::optional<std::pair<LogAddress, LogEntry>>> next = cursor.Next();
    if (!next.ok()) {
      return next.status();
    }
    if (!next.value().has_value()) {
      return std::optional<LogAddress>(std::nullopt);
    }
    ++ctx.result().entries_examined;
    if (IsOutcomeEntry(next.value()->second)) {
      return std::optional<LogAddress>(next.value()->first);
    }
  }
}

// A small pool of prefetch workers. Each task batches the data-entry
// addresses of one chain entry through StableLog::ReadMany (ascending-offset
// cache fills) and fulfills one promise per address. All log access from the
// workers goes through the read cache's mutex, which is what makes the
// thread-unsafe simulated media safe to share.
class PrefetchPool {
 public:
  PrefetchPool(const StableLog& log, std::size_t workers) : log_(log) {
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      threads_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~PrefetchPool() {
    {
      std::lock_guard<std::mutex> l(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : threads_) {
      t.join();
    }
  }

  void Submit(std::vector<LogAddress> addresses,
              std::vector<std::promise<Result<LogEntry>>> promises) {
    {
      std::lock_guard<std::mutex> l(mu_);
      tasks_.push_back(Task{std::move(addresses), std::move(promises)});
    }
    cv_.notify_one();
  }

 private:
  struct Task {
    std::vector<LogAddress> addresses;
    std::vector<std::promise<Result<LogEntry>>> promises;
  };

  void WorkerLoop() {
    while (true) {
      Task task;
      {
        std::unique_lock<std::mutex> l(mu_);
        cv_.wait(l, [this] { return stop_ || !tasks_.empty(); });
        if (tasks_.empty()) {
          return;  // stop requested and queue drained
        }
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
      std::vector<Result<LogEntry>> results =
          log_.ReadMany(std::span<const LogAddress>(task.addresses));
      for (std::size_t i = 0; i < results.size(); ++i) {
        task.promises[i].set_value(std::move(results[i]));
      }
    }
  }

  const StableLog& log_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> tasks_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

// One chain entry the walk has read but the apply stage has not yet consumed.
struct WalkedEntry {
  LogEntry entry;
  LogAddress address = LogAddress::Null();  // the frame the entry was read from
};

Result<RecoveryResult> RecoverHybridSerial(const StableLog& log, VolatileHeap& heap) {
  RecoveryContext ctx(heap);
  ctx.ReserveTables(EntryEstimateFromLogSize(log));

  const auto head_start = std::chrono::steady_clock::now();
  Result<std::optional<LogAddress>> head = FindChainHead(log, ctx);
  if (!head.ok()) {
    return head.status();
  }
  RecObs::Get().find_head_ns->Record(ElapsedNs(head_start));
  const auto walk_start = std::chrono::steady_clock::now();

  DataFetcher fetch = [&](const UidAddress& pair) { return FetchViaView(log, ctx, pair); };

  LogAddress address = head.value().value_or(LogAddress::Null());
  ctx.result().last_outcome = address;
  while (!address.is_null()) {
    Result<LogEntry> entry_or = log.Read(address);
    if (!entry_or.ok()) {
      return entry_or.status();
    }
    ++ctx.result().entries_examined;
    const LogEntry& entry = entry_or.value();
    if (!IsOutcomeEntry(entry)) {
      return Status::Corruption("outcome chain points at a data entry");
    }
    Status s = ApplyChainEntry(ctx, fetch, entry, address);
    if (!s.ok()) {
      return s;
    }
    address = PrevPointer(entry);
  }
  RecObs::Get().walk_apply_ns->Record(ElapsedNs(walk_start));

  Status s = FinalizeWithMetrics(ctx);
  if (!s.ok()) {
    return s;
  }
  return std::move(ctx.result());
}

Result<RecoveryResult> RecoverHybridPipelined(const StableLog& log, VolatileHeap& heap,
                                              const HybridRecoveryOptions& options) {
  RecoveryContext ctx(heap);
  const std::size_t entry_estimate = EntryEstimateFromLogSize(log);
  ctx.ReserveTables(entry_estimate);

  const auto head_start = std::chrono::steady_clock::now();
  Result<std::optional<LogAddress>> head = FindChainHead(log, ctx);
  if (!head.ok()) {
    return head.status();
  }
  RecObs::Get().find_head_ns->Record(ElapsedNs(head_start));
  const auto walk_start = std::chrono::steady_clock::now();

  PrefetchPool pool(log, options.workers);

  // Speculative fetches keyed by log offset. The walk submits the FIRST
  // occurrence of each uid (exactly the pairs the apply stage dereferences on
  // well-formed logs); repeat dereferences — the §4.4 mutex supersede and the
  // owed-base re-read — fall back to a synchronous cached read.
  std::unordered_map<std::uint64_t, std::future<Result<LogEntry>>> inflight;
  std::unordered_set<std::uint64_t> seen_uids;
  // The walk's dedup set sees every uid the OT will hold; the in-flight map
  // is bounded by the walk window. Same rehash-avoidance as the OT/PT.
  seen_uids.reserve(entry_estimate / 2 + 16);
  inflight.reserve(options.window * 2);
  std::uint64_t prefetches = 0;
  std::uint64_t prefetch_hits = 0;
  std::uint64_t sync_reads = 0;

  DataFetcher fetch = [&](const UidAddress& pair) -> Result<FetchedData> {
    auto it = inflight.find(pair.address.offset);
    if (it != inflight.end()) {
      Result<LogEntry> entry = it->second.get();
      inflight.erase(it);
      ++prefetch_hits;
      return FetchFromEntry(ctx, std::move(entry));
    }
    ++sync_reads;
    return FetchViaView(log, ctx, pair);
  };

  // The walk runs ahead of the apply stage, bounded by options.window. A walk
  // error is only surfaced after every earlier chain entry has been applied —
  // exactly when the serial algorithm would have hit it.
  std::deque<WalkedEntry> window;
  LogAddress walk_address = head.value().value_or(LogAddress::Null());
  ctx.result().last_outcome = walk_address;
  Status walk_error = Status::Ok();

  auto walk_one = [&]() {
    const LogAddress self_address = walk_address;
    Result<LogEntry> entry_or = log.Read(walk_address);
    if (!entry_or.ok()) {
      walk_error = entry_or.status();
      walk_address = LogAddress::Null();
      return;
    }
    ++ctx.result().entries_examined;
    LogEntry entry = std::move(entry_or).value();
    if (!IsOutcomeEntry(entry)) {
      walk_error = Status::Corruption("outcome chain points at a data entry");
      walk_address = LogAddress::Null();
      return;
    }

    // Collect first-seen data dereferences for speculative fetch.
    std::vector<LogAddress> addresses;
    auto note_pairs = [&](const std::vector<UidAddress>& pairs) {
      for (const UidAddress& pair : pairs) {
        if (seen_uids.insert(pair.uid.value).second) {
          addresses.push_back(pair.address);
        }
      }
    };
    if (const auto* prepared = std::get_if<PreparedEntry>(&entry)) {
      note_pairs(prepared->objects);
    } else if (const auto* css = std::get_if<CommittedSsEntry>(&entry)) {
      note_pairs(css->objects);
    } else if (const auto* bc = std::get_if<BaseCommittedEntry>(&entry)) {
      seen_uids.insert(bc->uid.value);  // installs an OT entry at apply time
    } else if (const auto* pd = std::get_if<PreparedDataEntry>(&entry)) {
      seen_uids.insert(pd->uid.value);
    }
    if (!addresses.empty()) {
      std::vector<std::promise<Result<LogEntry>>> promises(addresses.size());
      for (std::size_t i = 0; i < addresses.size(); ++i) {
        inflight.emplace(addresses[i].offset, promises[i].get_future());
      }
      prefetches += addresses.size();
      pool.Submit(std::move(addresses), std::move(promises));
    }

    walk_address = PrevPointer(entry);
    window.push_back(WalkedEntry{std::move(entry), self_address});
  };

  while (!walk_address.is_null() || !window.empty()) {
    while (!walk_address.is_null() && window.size() < options.window) {
      walk_one();
    }
    if (!window.empty()) {
      Status s = ApplyChainEntry(ctx, fetch, window.front().entry, window.front().address);
      if (!s.ok()) {
        log.RecordPipelineStats(prefetches, prefetch_hits, sync_reads);
        return s;
      }
      window.pop_front();
    }
  }
  log.RecordPipelineStats(prefetches, prefetch_hits, sync_reads);
  RecObs::Get().walk_apply_ns->Record(ElapsedNs(walk_start));
  if (!walk_error.ok()) {
    return walk_error;
  }

  Status s = FinalizeWithMetrics(ctx);
  if (!s.ok()) {
    return s;
  }
  return std::move(ctx.result());
}

}  // namespace

std::size_t HybridRecoveryOptions::DefaultRecoveryWorkers() {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw <= 1) {
    return 0;  // single core: speculation would just preempt the chain walk
  }
  return std::min<std::size_t>(3, hw - 1);
}

Result<RecoveryResult> RecoverHybridLog(const StableLog& log, VolatileHeap& heap) {
  return RecoverHybridLog(log, heap, HybridRecoveryOptions{});
}

Result<RecoveryResult> RecoverHybridLog(const StableLog& log, VolatileHeap& heap,
                                        const HybridRecoveryOptions& options) {
  obs::TraceSpan span("recovery.run", log.durable_size());
  Result<RecoveryResult> result = options.workers == 0
                                      ? RecoverHybridSerial(log, heap)
                                      : RecoverHybridPipelined(log, heap, options);
  if (result.ok()) {
    obs::Emit("recovery.done", result.value().entries_examined,
              result.value().data_entries_read);
  }
  return result;
}

namespace {

// Phase A output for one shard: the retained chain plus this shard's view of
// the participant/coordinator tables.
struct ShardScan {
  Status status = Status::Ok();
  LogAddress head = LogAddress::Null();
  std::vector<WalkedEntry> chain;  // newest -> oldest, outcome entries only
  ParticipantTable pt;          // first-seen fragment (decided entries win)
  CoordinatorTable ct;
  std::uint64_t entries_examined = 0;
  std::uint64_t scan_ns = 0;
};

// Phase A: walk one shard's backward chain, retaining decoded entries and the
// PT/CT fragment. Touches the log only — never the heap.
ShardScan ScanShardChain(const StableLog& log, std::size_t entry_estimate) {
  const auto start = std::chrono::steady_clock::now();
  ShardScan scan;
  scan.pt.reserve(entry_estimate / 4 + 16);

  // Find the chain head (newest outcome entry past any unforced data tail).
  LogAddress address = LogAddress::Null();
  {
    StableLog::BackwardCursor cursor = log.ReadBackwardFromTop();
    while (true) {
      Result<std::optional<std::pair<LogAddress, LogEntry>>> next = cursor.Next();
      if (!next.ok()) {
        scan.status = next.status();
        scan.scan_ns = ElapsedNs(start);
        return scan;
      }
      if (!next.value().has_value()) {
        break;
      }
      ++scan.entries_examined;
      if (IsOutcomeEntry(next.value()->second)) {
        address = next.value()->first;
        break;
      }
    }
  }
  scan.head = address;

  while (!address.is_null()) {
    const LogAddress self_address = address;
    Result<LogEntry> entry_or = log.Read(address);
    if (!entry_or.ok()) {
      scan.status = entry_or.status();
      break;
    }
    ++scan.entries_examined;
    LogEntry entry = std::move(entry_or).value();
    if (!IsOutcomeEntry(entry)) {
      scan.status = Status::Corruption("outcome chain points at a data entry");
      break;
    }
    // First-seen-wins PT fragment, identical emplace discipline to the serial
    // walk: a decision record always appears after (and is therefore walked
    // before) the prepare record it decides.
    if (const auto* prepared = std::get_if<PreparedEntry>(&entry)) {
      scan.pt.emplace(prepared->aid, ParticipantState::kPrepared);
    } else if (const auto* committed = std::get_if<CommittedEntry>(&entry)) {
      scan.pt.emplace(committed->aid, ParticipantState::kCommitted);
    } else if (const auto* aborted = std::get_if<AbortedEntry>(&entry)) {
      scan.pt.emplace(aborted->aid, ParticipantState::kAborted);
    } else if (const auto* committing = std::get_if<CommittingEntry>(&entry)) {
      scan.ct.emplace(committing->aid, CoordinatorTableEntry{CoordinatorPhase::kCommitting,
                                                             committing->participants});
    } else if (const auto* done = std::get_if<DoneEntry>(&entry)) {
      scan.ct.emplace(done->aid, CoordinatorTableEntry{CoordinatorPhase::kDone, {}});
    } else if (const auto* pd = std::get_if<PreparedDataEntry>(&entry)) {
      scan.pt.emplace(pd->aid, ParticipantState::kPrepared);
    }
    address = PrevPointer(entry);
    scan.chain.push_back(WalkedEntry{std::move(entry), self_address});
  }
  scan.scan_ns = ElapsedNs(start);
  return scan;
}

// Runs `task(shard)` for every shard index. workers == 0 runs inline in
// ascending order; otherwise min(workers, shards) threads pull indices from a
// shared counter. Per-shard tasks are independent, so both schedules compute
// the same per-shard outputs.
void ForEachShard(std::size_t shard_count, std::size_t workers,
                  const std::function<void(std::size_t)>& task) {
  if (workers == 0 || shard_count <= 1) {
    for (std::size_t i = 0; i < shard_count; ++i) {
      task(i);
    }
    return;
  }
  std::atomic<std::size_t> next{0};
  auto drain = [&] {
    while (true) {
      std::size_t i = next.fetch_add(1);
      if (i >= shard_count) {
        return;
      }
      task(i);
    }
  };
  std::vector<std::thread> threads;
  std::size_t n = std::min(workers, shard_count);
  threads.reserve(n - 1);
  for (std::size_t t = 1; t < n; ++t) {
    threads.emplace_back(drain);
  }
  drain();
  for (std::thread& t : threads) {
    t.join();
  }
}

// The lowest-index shard error, so serial and parallel schedules surface the
// same failure.
Status FirstShardError(const std::vector<Status>& statuses) {
  for (const Status& s : statuses) {
    if (!s.ok()) {
      return s;
    }
  }
  return Status::Ok();
}

}  // namespace

Result<ShardedRecoveryResult> RecoverShardedHybridLog(std::span<StableLog* const> shards,
                                                      VolatileHeap& heap,
                                                      const ShardedRecoveryOptions& options) {
  ARGUS_CHECK(!shards.empty());
  std::uint64_t total_durable = 0;
  for (StableLog* log : shards) {
    ARGUS_CHECK(log != nullptr);
    total_durable += log->durable_size();
  }
  obs::TraceSpan span("recovery.sharded_run", total_durable);
  const std::size_t n = shards.size();

  // ---- Phase A: per-shard chain scans ----
  std::vector<ShardScan> scans(n);
  ForEachShard(n, options.workers, [&](std::size_t i) {
    scans[i] = ScanShardChain(*shards[i], EntryEstimateFromLogSize(*shards[i]));
  });
  {
    std::vector<Status> statuses;
    statuses.reserve(n);
    for (const ShardScan& scan : scans) {
      statuses.push_back(scan.status);
    }
    if (Status s = FirstShardError(statuses); !s.ok()) {
      return s;
    }
  }

  // ---- Merge the participant/coordinator fragments ----
  ParticipantTable merged_pt;
  CoordinatorTable merged_ct;
  {
    std::size_t pt_estimate = 16;
    for (const ShardScan& scan : scans) {
      pt_estimate += scan.pt.size();
    }
    merged_pt.reserve(pt_estimate);
    for (const ShardScan& scan : scans) {
      for (const auto& [aid, state] : scan.pt) {
        auto [it, inserted] = merged_pt.emplace(aid, state);
        if (inserted || it->second == state) {
          continue;
        }
        // A prepare fragment on one shard is subsumed by the decision record
        // on the action's home shard. Two different decisions cannot both be
        // durable for one action.
        if (it->second == ParticipantState::kPrepared) {
          it->second = state;
        } else if (state != ParticipantState::kPrepared) {
          return Status::Corruption("conflicting outcomes across shards for " + to_string(aid));
        }
      }
      for (const auto& [aid, entry] : scan.ct) {
        merged_ct.emplace(aid, entry);
      }
    }
  }

  // ---- Phase B: per-shard version restoration against the merged PT ----
  std::mutex heap_mu;
  std::vector<std::unique_ptr<RecoveryContext>> contexts(n);
  std::vector<Status> apply_statuses(n, Status::Ok());
  std::vector<std::uint64_t> apply_ns(n, 0);
  const bool parallel = options.workers > 0 && n > 1;
  ForEachShard(n, options.workers, [&](std::size_t i) {
    const auto start = std::chrono::steady_clock::now();
    contexts[i] = std::make_unique<RecoveryContext>(heap);
    RecoveryContext& ctx = *contexts[i];
    if (parallel) {
      ctx.SetHeapMutex(&heap_mu);
    }
    ctx.result().ot.reserve(EntryEstimateFromLogSize(*shards[i]) / 2 + 16);
    ctx.result().pt = merged_pt;
    const StableLog& log = *shards[i];
    DataFetcher fetch = [&](const UidAddress& pair) { return FetchViaView(log, ctx, pair); };
    for (const WalkedEntry& walked : scans[i].chain) {
      Status s = ApplyChainEntry(ctx, fetch, walked.entry, walked.address);
      if (!s.ok()) {
        apply_statuses[i] = std::move(s);
        break;
      }
    }
    apply_ns[i] = ElapsedNs(start);
  });
  if (Status s = FirstShardError(apply_statuses); !s.ok()) {
    return s;
  }

  // Per-shard timings and sizes, published from the driver thread only.
  for (std::size_t i = 0; i < n; ++i) {
    const std::string shard = std::to_string(i);
    obs::GetHistogram(obs::Labeled("recovery.shard.scan_ns", {{"shard", shard}}))
        ->Record(scans[i].scan_ns);
    obs::GetHistogram(obs::Labeled("recovery.shard.apply_ns", {{"shard", shard}}))
        ->Record(apply_ns[i]);
    obs::GetCounter(obs::Labeled("recovery.shard.entries_examined", {{"shard", shard}}))
        ->Add(scans[i].entries_examined);
    obs::GetCounter(obs::Labeled("recovery.shard.data_entries_read", {{"shard", shard}}))
        ->Add(contexts[i]->result().data_entries_read);
  }

  // ---- Merge the shard tables and finalize globally ----
  ShardedRecoveryResult out;
  RecoveryContext final_ctx(heap);
  RecoveryResult& merged = final_ctx.result();
  {
    std::size_t ot_estimate = 16;
    for (const auto& ctx : contexts) {
      ot_estimate += ctx->result().ot.size();
    }
    merged.ot.reserve(ot_estimate);
  }
  merged.pt = std::move(merged_pt);
  merged.ct = std::move(merged_ct);
  for (std::size_t i = 0; i < n; ++i) {
    RecoveryResult& r = contexts[i]->result();
    for (auto& [uid, entry] : r.ot) {
      auto [it, inserted] = merged.ot.emplace(uid, entry);
      if (!inserted) {
        return Status::Corruption("object " + to_string(uid) + " recovered on multiple shards");
      }
    }
    merged.entries_examined += scans[i].entries_examined;
    merged.data_entries_read += r.data_entries_read;
    out.shard_last_outcomes.push_back(scans[i].head);
  }
  merged.last_outcome = out.shard_last_outcomes[0];

  if (Status s = FinalizeWithMetrics(final_ctx); !s.ok()) {
    return s;
  }
  obs::Emit("recovery.sharded_done", merged.entries_examined, merged.data_entries_read, n);
  out.merged = std::move(merged);
  return out;
}

}  // namespace argus
