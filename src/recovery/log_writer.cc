#include "src/recovery/log_writer.h"

#include <algorithm>

#include "src/object/flatten.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace argus {
namespace {

// Steady-state MT dereferences (all writers aggregated). The hit counter
// tracks reads served from an already-validated cache residence — the frames
// §5.2's mutex discipline keeps re-reading.
struct WriterObs {
  obs::Counter* mt_reads;
  obs::Counter* mt_read_hits;
  obs::Gauge* mt_hit_rate;

  static const WriterObs& Get() {
    static const WriterObs m{
        obs::GetCounter("recovery.mt_reads"),
        obs::GetCounter("recovery.mt_read_hits"),
        obs::GetGauge("recovery.mt_hit_rate"),
    };
    return m;
  }
};

// Sets the backward-chain pointer on an outcome entry.
void SetPrev(LogEntry& entry, LogAddress prev) {
  std::visit(
      [prev](auto& e) {
        using T = std::decay_t<decltype(e)>;
        if constexpr (!std::is_same_v<T, DataEntry>) {
          e.prev = prev;
        }
      },
      entry);
}

}  // namespace

LogWriter::LogWriter(LogMode mode, StableLog* log, VolatileHeap* heap)
    : mode_(mode), log_(log), heap_(heap) {
  ARGUS_CHECK(log != nullptr && heap != nullptr);
  // The stable-variables root is accessible by definition.
  as_.insert(Uid::Root());
}

LogAddress LogWriter::WriteOutcome(LogEntry entry) {
  if (mode_ == LogMode::kHybrid) {
    SetPrev(entry, last_outcome_);
  }
  LogAddress addr = log_->Write(entry);
  last_outcome_ = addr;
  ++stats_.outcome_entries;
  return addr;
}

LogAddress LogWriter::WriteDataEntryFor(ActionId aid, RecoverableObject* obj,
                                        std::vector<std::byte> flat) {
  DataEntry entry;
  entry.kind = obj->kind();
  entry.value = std::move(flat);
  if (mode_ == LogMode::kSimple) {
    // Hybrid data entries are anonymous; the prepared entry names them.
    entry.uid = obj->uid();
    entry.aid = aid;
  }
  LogAddress addr = log_->Write(LogEntry(std::move(entry)));
  ++stats_.data_entries;
  PendingAction& pending = pending_[aid];
  pending.pairs[obj->uid()] = addr;
  if (obj->is_mutex()) {
    pending.mutex_pairs[obj->uid()] = addr;
  }
  return addr;
}

Status LogWriter::WriteAccessibleObject(ActionId aid, RecoverableObject* obj,
                                        std::vector<RecoverableObject*>& naos) {
  // Previously accessible: only the current version is copied — the latest
  // committed version already appears in the log (§3.3.3.2).
  const Value& version = obj->is_atomic() ? obj->current_version() : obj->mutex_value();
  std::vector<RecoverableObject*> refs;
  std::vector<std::byte> flat = FlattenValue(version, &refs);
  for (RecoverableObject* ref : refs) {
    if (as_.find(ref->uid()) == as_.end()) {
      naos.push_back(ref);
    }
  }
  WriteDataEntryFor(aid, obj, std::move(flat));
  return Status::Ok();
}

Status LogWriter::WriteNewlyAccessibleObject(ActionId aid, RecoverableObject* obj,
                                             std::vector<RecoverableObject*>& naos) {
  auto queue_refs = [&](const std::vector<RecoverableObject*>& refs) {
    for (RecoverableObject* ref : refs) {
      if (as_.find(ref->uid()) == as_.end()) {
        naos.push_back(ref);
      }
    }
  };

  if (obj->is_mutex()) {
    // §3.3.3.2: a newly accessible mutex object just gets a data entry; its
    // version is restored even if the preparing action later aborts.
    std::vector<RecoverableObject*> refs;
    std::vector<std::byte> flat = FlattenValue(obj->mutex_value(), &refs);
    queue_refs(refs);
    WriteDataEntryFor(aid, obj, std::move(flat));
    return Status::Ok();
  }

  if (obj->HoldsWriteLock(aid)) {
    // The preparing action itself modified the object: its base version must
    // survive an abort (base_committed) and its current version must survive
    // a commit (ordinary data entry).
    std::vector<RecoverableObject*> refs;
    std::vector<std::byte> base_flat = FlattenValue(obj->base_version(), &refs);
    WriteOutcome(LogEntry(BaseCommittedEntry{obj->uid(), std::move(base_flat)}));
    ++stats_.base_committed_entries;
    std::vector<std::byte> cur_flat = FlattenValue(obj->current_version(), &refs);
    queue_refs(refs);
    WriteDataEntryFor(aid, obj, std::move(cur_flat));
    return Status::Ok();
  }

  if (obj->HoldsReadLock(aid)) {
    // Newly created by the preparing action: a single version, written as
    // base_committed so it survives regardless of outcome.
    std::vector<RecoverableObject*> refs;
    std::vector<std::byte> flat = FlattenValue(obj->current_version(), &refs);
    queue_refs(refs);
    WriteOutcome(LogEntry(BaseCommittedEntry{obj->uid(), std::move(flat)}));
    ++stats_.base_committed_entries;
    return Status::Ok();
  }

  std::optional<ActionId> other = obj->write_locker();
  if (other.has_value() && pat_.find(*other) != pat_.end()) {
    // Write-locked by another action that has already PREPARED without this
    // object having been logged (it was inaccessible then). Both versions are
    // needed: base in case that action aborts, current in case it commits.
    std::vector<RecoverableObject*> refs;
    std::vector<std::byte> base_flat = FlattenValue(obj->base_version(), &refs);
    WriteOutcome(LogEntry(BaseCommittedEntry{obj->uid(), std::move(base_flat)}));
    ++stats_.base_committed_entries;
    std::vector<std::byte> cur_flat = FlattenValue(obj->current_version(), &refs);
    queue_refs(refs);
    WriteOutcome(LogEntry(PreparedDataEntry{obj->uid(), std::move(cur_flat), *other}));
    ++stats_.prepared_data_entries;
    return Status::Ok();
  }

  // Unlocked, read-locked by others, or write-locked by an unprepared action:
  // only the base version is durable state.
  std::vector<RecoverableObject*> refs;
  std::vector<std::byte> base_flat = FlattenValue(obj->base_version(), &refs);
  queue_refs(refs);
  WriteOutcome(LogEntry(BaseCommittedEntry{obj->uid(), std::move(base_flat)}));
  ++stats_.base_committed_entries;
  return Status::Ok();
}

Result<ModifiedObjectsSet> LogWriter::WriteObjectsForAction(ActionId aid,
                                                            const ModifiedObjectsSet& mos) {
  std::vector<RecoverableObject*> naos;
  ModifiedObjectsSet leftover;

  for (Uid uid : mos) {
    RecoverableObject* obj = heap_->Get(uid);
    if (obj == nullptr) {
      return Status::InvalidArgument("MOS names unknown object " + to_string(uid));
    }
    if (as_.find(uid) != as_.end()) {
      Status s = WriteAccessibleObject(aid, obj, naos);
      if (!s.ok()) {
        return s;
      }
    } else {
      leftover.insert(uid);
    }
  }

  while (!naos.empty()) {
    RecoverableObject* obj = naos.back();
    naos.pop_back();
    if (as_.find(obj->uid()) != as_.end()) {
      continue;  // became accessible (and was written) via another path
    }
    Status s = WriteNewlyAccessibleObject(aid, obj, naos);
    if (!s.ok()) {
      return s;
    }
    as_.insert(obj->uid());
    leftover.erase(obj->uid());
  }
  return leftover;
}

Status LogWriter::LogGuardianCreation() {
  LogAddress staged;
  {
    std::lock_guard<std::mutex> l(mu_);
    std::vector<std::byte> flat = FlattenValue(heap_->root()->base_version(), nullptr);
    if (mode_ == LogMode::kHybrid) {
      staged = log_->Write(LogEntry(BaseCommittedEntry{Uid::Root(), std::move(flat), last_outcome_}));
      last_outcome_ = staged;
    } else {
      staged = log_->Write(LogEntry(BaseCommittedEntry{Uid::Root(), std::move(flat)}));
    }
    ++stats_.base_committed_entries;
  }
  return WaitDurable(staged);
}

Result<LogAddress> LogWriter::StagePrepare(ActionId aid, const ModifiedObjectsSet& mos) {
  std::lock_guard<std::mutex> l(mu_);
  Result<ModifiedObjectsSet> leftover = WriteObjectsForAction(aid, mos);
  if (!leftover.ok()) {
    return leftover.status();
  }

  PreparedEntry prepared;
  prepared.aid = aid;
  auto it = pending_.find(aid);
  if (mode_ == LogMode::kHybrid && it != pending_.end()) {
    prepared.objects.reserve(it->second.pairs.size());
    for (const auto& [uid, addr] : it->second.pairs) {
      prepared.objects.push_back(UidAddress{uid, addr});
    }
  }
  LogAddress staged = WriteOutcome(LogEntry(std::move(prepared)));

  // PAT/MT are updated at stage time (see the class comment): a concurrent
  // preparer of another action must classify objects against the staging
  // order, not the durable prefix. If the force later fails, the guardian
  // crashes and this volatile state dies with it.
  pat_.insert(aid);
  if (it != pending_.end()) {
    for (const auto& [uid, addr] : it->second.mutex_pairs) {
      mt_[uid] = addr;
    }
    pending_.erase(it);
  }
  // Logged at stage time, before any force: a crash dump showing this event
  // with no matching force batch is an entry that never became durable.
  obs::Emit("log.stage.prepare", aid.sequence, staged.offset);
  return staged;
}

Status LogWriter::Prepare(ActionId aid, const ModifiedObjectsSet& mos) {
  Result<LogAddress> staged = StagePrepare(aid, mos);
  if (!staged.ok()) {
    return staged.status();
  }
  return WaitDurable(staged.value());
}

Result<ModifiedObjectsSet> LogWriter::WriteEntry(ActionId aid, const ModifiedObjectsSet& mos) {
  std::lock_guard<std::mutex> l(mu_);
  return WriteObjectsForAction(aid, mos);
}

Result<LogAddress> LogWriter::StageCommit(ActionId aid) {
  std::lock_guard<std::mutex> l(mu_);
  LogAddress staged = WriteOutcome(LogEntry(CommittedEntry{aid}));
  pat_.erase(aid);
  pending_.erase(aid);
  obs::Emit("log.stage.commit", aid.sequence, staged.offset);
  return staged;
}

Status LogWriter::Commit(ActionId aid) {
  Result<LogAddress> staged = StageCommit(aid);
  if (!staged.ok()) {
    return staged.status();
  }
  return WaitDurable(staged.value());
}

Result<std::optional<LogAddress>> LogWriter::StageAbort(ActionId aid) {
  std::lock_guard<std::mutex> l(mu_);
  // Only a PREPARED action needs an aborted record (§2.2.3: before the
  // prepared record is durable, "all record of that action is lost, and the
  // action will be aborted" — by default). Writing an aborted entry for a
  // never-prepared action would also be wrong for mutex semantics: its
  // early-written mutex data entries must stay invisible to recovery, which
  // they are exactly when no outcome entry names the action.
  std::optional<LogAddress> staged;
  if (pat_.find(aid) != pat_.end()) {
    staged = WriteOutcome(LogEntry(AbortedEntry{aid}));
    pat_.erase(aid);
    obs::Emit("log.stage.abort", aid.sequence, staged->offset);
  }
  pending_.erase(aid);
  return staged;
}

Status LogWriter::Abort(ActionId aid) {
  Result<std::optional<LogAddress>> staged = StageAbort(aid);
  if (!staged.ok()) {
    return staged.status();
  }
  if (!staged.value().has_value()) {
    return Status::Ok();
  }
  return WaitDurable(*staged.value());
}

Status LogWriter::Committing(ActionId aid, std::vector<GuardianId> participants) {
  LogAddress staged;
  {
    std::lock_guard<std::mutex> l(mu_);
    staged = WriteOutcome(LogEntry(CommittingEntry{aid, participants}));
    obs::Emit("log.stage.committing", aid.sequence, staged.offset, participants.size());
    open_coordinators_[aid] = std::move(participants);
  }
  return WaitDurable(staged);
}

Status LogWriter::Done(ActionId aid) {
  LogAddress staged;
  {
    std::lock_guard<std::mutex> l(mu_);
    staged = WriteOutcome(LogEntry(DoneEntry{aid}));
    obs::Emit("log.stage.done", aid.sequence, staged.offset);
    open_coordinators_.erase(aid);
  }
  return WaitDurable(staged);
}

Status LogWriter::WaitDurable(LogAddress address) {
  if (coordinator_ != nullptr) {
    return coordinator_->ForceUpTo(address);
  }
  return log_->Force();
}

Status LogWriter::WaitDurable(LogAddress address, std::uint64_t epoch) {
  if (coordinator_ != nullptr) {
    return coordinator_->ForceUpTo(address, epoch);
  }
  return log_->Force();
}

std::uint64_t LogWriter::durability_epoch() const {
  return coordinator_ != nullptr ? coordinator_->log_epoch() : 0;
}

void LogWriter::TrimAccessibilitySet() {
  std::unordered_set<Uid> reachable = heap_->ComputeAccessibleUids();
  std::lock_guard<std::mutex> l(mu_);
  AccessibilitySet trimmed;
  for (Uid uid : reachable) {
    if (as_.find(uid) != as_.end()) {
      trimmed.insert(uid);
    }
  }
  trimmed.insert(Uid::Root());
  as_ = std::move(trimmed);
}

void LogWriter::RestoreState(AccessibilitySet as, PreparedActionsTable pat, MutexTable mt,
                             LogAddress last_outcome) {
  std::lock_guard<std::mutex> l(mu_);
  as_ = std::move(as);
  as_.insert(Uid::Root());
  pat_ = std::move(pat);
  mt_ = std::move(mt);
  last_outcome_ = last_outcome;
}

void LogWriter::RestoreOpenCoordinators(std::map<ActionId, std::vector<GuardianId>> open) {
  std::lock_guard<std::mutex> l(mu_);
  open_coordinators_ = std::move(open);
}

void LogWriter::RebindLog(StableLog* log) {
  ARGUS_CHECK(log != nullptr);
  std::lock_guard<std::mutex> l(mu_);
  log_ = log;
}

Status LogWriter::RewritePendingAfterLogSwap() {
  std::lock_guard<std::mutex> l(mu_);
  for (auto& [aid, pending] : pending_) {
    std::vector<Uid> uids;
    uids.reserve(pending.pairs.size());
    for (const auto& [uid, addr] : pending.pairs) {
      uids.push_back(uid);
    }
    pending.pairs.clear();
    pending.mutex_pairs.clear();
    std::vector<RecoverableObject*> naos;
    for (Uid uid : uids) {
      RecoverableObject* obj = heap_->Get(uid);
      if (obj == nullptr) {
        return Status::InvalidArgument("pending pair names unknown object " + to_string(uid));
      }
      // These objects were accessible when first written, so they are in the
      // AS and the plain accessible-object path applies.
      Status s = WriteAccessibleObject(aid, obj, naos);
      if (!s.ok()) {
        return s;
      }
    }
    ARGUS_CHECK_MSG(naos.empty(), "rewrite discovered newly accessible objects");
  }
  return Status::Ok();
}

std::vector<ActionId> LogWriter::ActionsWithPendingPairs() const {
  std::lock_guard<std::mutex> l(mu_);
  std::vector<ActionId> out;
  for (const auto& [aid, pending] : pending_) {
    if (!pending.pairs.empty()) {
      out.push_back(aid);
    }
  }
  return out;
}

void LogWriter::DropPendingPairs(ActionId aid) {
  std::lock_guard<std::mutex> l(mu_);
  pending_.erase(aid);
}

LogAddress LogWriter::last_outcome_address() const {
  std::lock_guard<std::mutex> l(mu_);
  return last_outcome_;
}

Result<LogEntry> LogWriter::ReadMutexVersion(Uid uid) const {
  StableLog* log = nullptr;
  LogAddress addr = LogAddress::Null();
  {
    std::lock_guard<std::mutex> l(mu_);
    auto it = mt_.find(uid);
    if (it == mt_.end()) {
      return Status::NotFound("no prepared mutex version for " + to_string(uid));
    }
    addr = it->second;
    log = log_;
  }
  // The frame read runs outside mu_ so concurrent stagers keep going; the
  // cache's own mutex serializes the fetch. `validated` is the hit signal:
  // true means the frame was served from a residence a prior read already
  // CRC-checked — no medium access, no re-validation.
  bool validated = false;
  Result<StableLog::FrameView> view = log->ReadFrameView(addr, &validated);
  const WriterObs& o = WriterObs::Get();
  o.mt_reads->Increment();
  if (validated) {
    o.mt_read_hits->Increment();
  }
  std::uint64_t reads = o.mt_reads->Value();
  if (reads != 0) {
    o.mt_hit_rate->Set(static_cast<double>(o.mt_read_hits->Value()) /
                       static_cast<double>(reads));
  }
  if (!view.ok()) {
    return view.status();
  }
  return DecodeEntry(view.value().payload());
}

}  // namespace argus
