#include "src/recovery/log_writer.h"

#include <algorithm>

#include "src/object/flatten.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/residency/residency_manager.h"

namespace argus {
namespace {

// Steady-state MT dereferences (all writers aggregated). The hit counter
// tracks reads served from an already-validated cache residence — the frames
// §5.2's mutex discipline keeps re-reading.
struct WriterObs {
  obs::Counter* mt_reads;
  obs::Counter* mt_read_hits;
  obs::Gauge* mt_hit_rate;
  obs::Counter* mt_read_batches;   // ReadMutexVersions calls
  obs::Counter* mt_batched_reads;  // uids dereferenced through those calls

  static const WriterObs& Get() {
    static const WriterObs m{
        obs::GetCounter("recovery.mt_reads"),
        obs::GetCounter("recovery.mt_read_hits"),
        obs::GetGauge("recovery.mt_hit_rate"),
        obs::GetCounter("recovery.mt_read_batches"),
        obs::GetCounter("recovery.mt_batched_reads"),
    };
    return m;
  }
};

// Sets the backward-chain pointer on an outcome entry.
void SetPrev(LogEntry& entry, LogAddress prev) {
  std::visit(
      [prev](auto& e) {
        using T = std::decay_t<decltype(e)>;
        if constexpr (!std::is_same_v<T, DataEntry>) {
          e.prev = prev;
        }
      },
      entry);
}

}  // namespace

LogWriter::LogWriter(LogMode mode, StableLog* log, VolatileHeap* heap)
    : mode_(mode), heap_(heap) {
  ARGUS_CHECK(log != nullptr && heap != nullptr);
  shards_.push_back(ShardBinding{log, nullptr, LogAddress::Null()});
  // The stable-variables root is accessible by definition.
  as_.insert(Uid::Root());
}

LogWriter::LogWriter(LogMode mode, std::vector<StableLog*> logs, VolatileHeap* heap,
                     const ShardRouter* router)
    : mode_(mode), heap_(heap), router_(router) {
  ARGUS_CHECK(heap != nullptr && !logs.empty());
  if (logs.size() > 1) {
    ARGUS_CHECK_MSG(mode == LogMode::kHybrid, "sharded logs require the hybrid mode");
    ARGUS_CHECK(router != nullptr && router->num_shards() == logs.size());
  }
  shards_.reserve(logs.size());
  for (StableLog* log : logs) {
    ARGUS_CHECK(log != nullptr);
    shards_.push_back(ShardBinding{log, nullptr, LogAddress::Null()});
  }
  as_.insert(Uid::Root());
}

void LogWriter::AttachCoordinator(FlushCoordinator* coordinator) {
  ARGUS_CHECK(shards_.size() == 1);
  shards_[0].coordinator = coordinator;
}

void LogWriter::AttachCoordinators(std::vector<FlushCoordinator*> coordinators) {
  ARGUS_CHECK(coordinators.size() == shards_.size());
  for (std::size_t i = 0; i < coordinators.size(); ++i) {
    shards_[i].coordinator = coordinators[i];
  }
}

std::uint32_t LogWriter::ShardOfUid(Uid uid) const {
  if (router_ == nullptr || shards_.size() == 1) {
    return 0;
  }
  return router_->ShardOf(uid);
}

std::uint32_t LogWriter::HomeShardOf(ActionId aid) const {
  if (router_ == nullptr || shards_.size() == 1) {
    return 0;
  }
  return router_->HomeShardOf(aid);
}

std::uint64_t LogWriter::EpochOf(std::uint32_t shard) const {
  const ShardBinding& b = shards_[shard];
  return b.coordinator != nullptr ? b.coordinator->log_epoch() : 0;
}

LogAddress LogWriter::WriteOutcome(LogEntry entry, std::uint32_t shard) {
  ShardBinding& b = shards_[shard];
  if (mode_ == LogMode::kHybrid) {
    SetPrev(entry, b.last_outcome);
  }
  LogAddress addr = b.log->Write(entry);
  b.last_outcome = addr;
  ++stats_.outcome_entries;
  return addr;
}

LogAddress LogWriter::WriteDataEntryFor(ActionId aid, RecoverableObject* obj,
                                        std::vector<std::byte> flat) {
  DataEntry entry;
  entry.kind = obj->kind();
  entry.value = std::move(flat);
  if (mode_ == LogMode::kSimple) {
    // Hybrid data entries are anonymous; the prepared entry names them.
    entry.uid = obj->uid();
    entry.aid = aid;
  }
  LogAddress addr = shards_[ShardOfUid(obj->uid())].log->Write(LogEntry(std::move(entry)));
  ++stats_.data_entries;
  PendingAction& pending = pending_[aid];
  pending.pairs[obj->uid()] = addr;
  if (obj->is_mutex()) {
    pending.mutex_pairs[obj->uid()] = addr;
    // The frame holds the live mutex value — the authoritative residency
    // address from the moment it is staged.
    obj->set_stable_address(addr);
  } else {
    // The frame holds the tentative current version; CommitAction promotes
    // it to the stable slot when the version becomes the committed base.
    obj->set_pending_stable_address(addr);
  }
  return addr;
}

Status LogWriter::EnsureResident(RecoverableObject* obj) {
  if (!obj->evicted()) {
    return Status::Ok();
  }
  const LogAddress addr = obj->stable_address();
  ARGUS_CHECK_MSG(!addr.is_null(), "evicted object lost its stable address");
  Result<LogEntry> entry = shards_[ShardOfUid(obj->uid())].log->Read(addr);
  if (!entry.ok()) {
    return entry.status();
  }
  Result<Value> decoded = DecodeStubPayload(entry.value(), obj->uid());
  if (!decoded.ok()) {
    return decoded.status();
  }
  Value v = std::move(decoded.value());
  Status resolved = ResolveUidRefs(v, [this](Uid uid) { return heap_->Get(uid); });
  if (!resolved.ok()) {
    return resolved;
  }
  obj->Materialize(std::move(v));
  return Status::Ok();
}

Status LogWriter::WriteAccessibleObject(ActionId aid, RecoverableObject* obj,
                                        std::vector<RecoverableObject*>& naos) {
  Status rs = EnsureResident(obj);
  if (!rs.ok()) {
    return rs;
  }
  // Previously accessible: only the current version is copied — the latest
  // committed version already appears in the log (§3.3.3.2).
  const Value& version = obj->is_atomic() ? obj->current_version() : obj->mutex_value();
  std::vector<RecoverableObject*> refs;
  std::vector<std::byte> flat = FlattenValue(version, &refs);
  for (RecoverableObject* ref : refs) {
    if (as_.find(ref->uid()) == as_.end()) {
      naos.push_back(ref);
    }
  }
  WriteDataEntryFor(aid, obj, std::move(flat));
  return Status::Ok();
}

Status LogWriter::WriteNewlyAccessibleObject(ActionId aid, RecoverableObject* obj,
                                             std::vector<RecoverableObject*>& naos) {
  Status rs = EnsureResident(obj);
  if (!rs.ok()) {
    return rs;
  }
  // Base/prepared-data entries for an object live on that object's shard, so
  // every shard chain stays self-contained for its uid subset.
  const std::uint32_t shard = ShardOfUid(obj->uid());
  auto queue_refs = [&](const std::vector<RecoverableObject*>& refs) {
    for (RecoverableObject* ref : refs) {
      if (as_.find(ref->uid()) == as_.end()) {
        naos.push_back(ref);
      }
    }
  };

  if (obj->is_mutex()) {
    // §3.3.3.2: a newly accessible mutex object just gets a data entry; its
    // version is restored even if the preparing action later aborts.
    std::vector<RecoverableObject*> refs;
    std::vector<std::byte> flat = FlattenValue(obj->mutex_value(), &refs);
    queue_refs(refs);
    WriteDataEntryFor(aid, obj, std::move(flat));
    return Status::Ok();
  }

  if (obj->HoldsWriteLock(aid)) {
    // The preparing action itself modified the object: its base version must
    // survive an abort (base_committed) and its current version must survive
    // a commit (ordinary data entry).
    std::vector<RecoverableObject*> refs;
    std::vector<std::byte> base_flat = FlattenValue(obj->base_version(), &refs);
    LogAddress bc_addr =
        WriteOutcome(LogEntry(BaseCommittedEntry{obj->uid(), std::move(base_flat)}), shard);
    pending_[aid].chained_marks[shard] = bc_addr;
    obj->set_stable_address(bc_addr);
    ++stats_.base_committed_entries;
    std::vector<std::byte> cur_flat = FlattenValue(obj->current_version(), &refs);
    queue_refs(refs);
    WriteDataEntryFor(aid, obj, std::move(cur_flat));
    return Status::Ok();
  }

  if (obj->HoldsReadLock(aid)) {
    // Newly created by the preparing action: a single version, written as
    // base_committed so it survives regardless of outcome.
    std::vector<RecoverableObject*> refs;
    std::vector<std::byte> flat = FlattenValue(obj->current_version(), &refs);
    queue_refs(refs);
    LogAddress bc_addr =
        WriteOutcome(LogEntry(BaseCommittedEntry{obj->uid(), std::move(flat)}), shard);
    pending_[aid].chained_marks[shard] = bc_addr;
    obj->set_stable_address(bc_addr);
    ++stats_.base_committed_entries;
    return Status::Ok();
  }

  std::optional<ActionId> other = obj->write_locker();
  if (other.has_value() && pat_.find(*other) != pat_.end()) {
    // Write-locked by another action that has already PREPARED without this
    // object having been logged (it was inaccessible then). Both versions are
    // needed: base in case that action aborts, current in case it commits.
    std::vector<RecoverableObject*> refs;
    std::vector<std::byte> base_flat = FlattenValue(obj->base_version(), &refs);
    obj->set_stable_address(
        WriteOutcome(LogEntry(BaseCommittedEntry{obj->uid(), std::move(base_flat)}), shard));
    ++stats_.base_committed_entries;
    std::vector<std::byte> cur_flat = FlattenValue(obj->current_version(), &refs);
    queue_refs(refs);
    LogAddress pd_addr =
        WriteOutcome(LogEntry(PreparedDataEntry{obj->uid(), std::move(cur_flat), *other}), shard);
    pending_[aid].chained_marks[shard] = pd_addr;
    // The prepared entry's current version becomes the base if *other*
    // commits — that action's CommitAction promotes the pending slot.
    obj->set_pending_stable_address(pd_addr);
    ++stats_.prepared_data_entries;
    return Status::Ok();
  }

  // Unlocked, read-locked by others, or write-locked by an unprepared action:
  // only the base version is durable state.
  std::vector<RecoverableObject*> refs;
  std::vector<std::byte> base_flat = FlattenValue(obj->base_version(), &refs);
  queue_refs(refs);
  LogAddress bc_addr =
      WriteOutcome(LogEntry(BaseCommittedEntry{obj->uid(), std::move(base_flat)}), shard);
  pending_[aid].chained_marks[shard] = bc_addr;
  obj->set_stable_address(bc_addr);
  ++stats_.base_committed_entries;
  return Status::Ok();
}

Result<ModifiedObjectsSet> LogWriter::WriteObjectsForAction(ActionId aid,
                                                            const ModifiedObjectsSet& mos) {
  std::vector<RecoverableObject*> naos;
  ModifiedObjectsSet leftover;

  for (Uid uid : mos) {
    RecoverableObject* obj = heap_->Get(uid);
    if (obj == nullptr) {
      return Status::InvalidArgument("MOS names unknown object " + to_string(uid));
    }
    if (as_.find(uid) != as_.end()) {
      Status s = WriteAccessibleObject(aid, obj, naos);
      if (!s.ok()) {
        return s;
      }
    } else {
      leftover.insert(uid);
    }
  }

  while (!naos.empty()) {
    RecoverableObject* obj = naos.back();
    naos.pop_back();
    if (as_.find(obj->uid()) != as_.end()) {
      continue;  // became accessible (and was written) via another path
    }
    Status s = WriteNewlyAccessibleObject(aid, obj, naos);
    if (!s.ok()) {
      return s;
    }
    as_.insert(obj->uid());
    leftover.erase(obj->uid());
  }
  return leftover;
}

Status LogWriter::LogGuardianCreation() {
  StagedOutcome staged;
  {
    std::lock_guard<std::mutex> l(mu_);
    std::vector<std::byte> flat = FlattenValue(heap_->root()->base_version(), nullptr);
    LogAddress addr;
    if (mode_ == LogMode::kHybrid) {
      addr = shards_[0].log->Write(
          LogEntry(BaseCommittedEntry{Uid::Root(), std::move(flat), shards_[0].last_outcome}));
      shards_[0].last_outcome = addr;
    } else {
      addr = shards_[0].log->Write(LogEntry(BaseCommittedEntry{Uid::Root(), std::move(flat)}));
    }
    ++stats_.base_committed_entries;
    staged.marks.push_back(StagedMark{0, addr, EpochOf(0)});
  }
  return WaitDurable(staged);
}

Result<StagedOutcome> LogWriter::StagePrepareSharded(ActionId aid, const ModifiedObjectsSet& mos) {
  std::lock_guard<std::mutex> l(mu_);
  Result<ModifiedObjectsSet> leftover = WriteObjectsForAction(aid, mos);
  if (!leftover.ok()) {
    return leftover.status();
  }

  // One prepared entry per touched shard, each carrying the shard-local pair
  // fragment. Ascending shard order keeps the staging deterministic.
  std::map<std::uint32_t, PreparedEntry> per_shard;
  auto it = pending_.find(aid);
  if (mode_ == LogMode::kHybrid && it != pending_.end()) {
    for (const auto& [uid, addr] : it->second.pairs) {
      PreparedEntry& entry = per_shard[ShardOfUid(uid)];
      entry.aid = aid;
      entry.objects.push_back(UidAddress{uid, addr});
    }
  }
  StagedOutcome out;
  if (per_shard.empty()) {
    // Nothing logged (empty or fully inaccessible MOS): the action still
    // prepares durably, on its home shard.
    PreparedEntry entry;
    entry.aid = aid;
    const std::uint32_t home = HomeShardOf(aid);
    LogAddress addr = WriteOutcome(LogEntry(std::move(entry)), home);
    out.marks.push_back(StagedMark{home, addr, EpochOf(home)});
  } else {
    out.marks.reserve(per_shard.size());
    for (auto& [shard, entry] : per_shard) {
      LogAddress addr = WriteOutcome(LogEntry(std::move(entry)), shard);
      out.marks.push_back(StagedMark{shard, addr, EpochOf(shard)});
    }
  }
  // Shards that received only chained base_committed/prepared_data entries
  // (no data pairs, hence no prepared entry) still carry state this action
  // made accessible. Force them too: the decision record must never become
  // durable while a shard's staged bc/pd tail can be discarded by a crash.
  // A shard whose prepared entry is already marked stages strictly later, so
  // its mark covers the chained entries on that shard.
  it = pending_.find(aid);  // WriteObjectsForAction may have created it
  if (it != pending_.end() && !it->second.chained_marks.empty()) {
    for (const auto& [shard, addr] : it->second.chained_marks) {
      if (per_shard.find(shard) == per_shard.end() &&
          !(per_shard.empty() && shard == HomeShardOf(aid))) {
        out.marks.push_back(StagedMark{shard, addr, EpochOf(shard)});
      }
    }
  }

  // PAT/MT are updated at stage time (see the class comment): a concurrent
  // preparer of another action must classify objects against the staging
  // order, not the durable prefix. If the force later fails, the guardian
  // crashes and this volatile state dies with it.
  pat_.insert(aid);
  if (it != pending_.end()) {
    for (const auto& [uid, addr] : it->second.mutex_pairs) {
      mt_[uid] = addr;
    }
    pending_.erase(it);
  }
  // Logged at stage time, before any force: a crash dump showing this event
  // with no matching force batch is an entry that never became durable.
  obs::Emit("log.stage.prepare", aid.sequence, out.marks.front().address.offset);
  return out;
}

Result<LogAddress> LogWriter::StagePrepare(ActionId aid, const ModifiedObjectsSet& mos) {
  ARGUS_CHECK(shards_.size() == 1);
  Result<StagedOutcome> staged = StagePrepareSharded(aid, mos);
  if (!staged.ok()) {
    return staged.status();
  }
  return staged.value().marks.front().address;
}

Status LogWriter::Prepare(ActionId aid, const ModifiedObjectsSet& mos) {
  Result<StagedOutcome> staged = StagePrepareSharded(aid, mos);
  if (!staged.ok()) {
    return staged.status();
  }
  return WaitDurable(staged.value());
}

Result<ModifiedObjectsSet> LogWriter::WriteEntry(ActionId aid, const ModifiedObjectsSet& mos) {
  std::lock_guard<std::mutex> l(mu_);
  return WriteObjectsForAction(aid, mos);
}

Result<StagedOutcome> LogWriter::StageCommitSharded(ActionId aid) {
  std::lock_guard<std::mutex> l(mu_);
  // The commit record goes to the home shard only. Callers guarantee every
  // prepare mark is already durable (class comment), so a durable commit
  // record implies the whole cross-shard prepare image is durable — recovery
  // restores the action atomically or presumes it aborted.
  const std::uint32_t home = HomeShardOf(aid);
  LogAddress staged = WriteOutcome(LogEntry(CommittedEntry{aid}), home);
  pat_.erase(aid);
  pending_.erase(aid);
  obs::Emit("log.stage.commit", aid.sequence, staged.offset);
  StagedOutcome out;
  out.marks.push_back(StagedMark{home, staged, EpochOf(home)});
  return out;
}

Result<LogAddress> LogWriter::StageCommit(ActionId aid) {
  ARGUS_CHECK(shards_.size() == 1);
  Result<StagedOutcome> staged = StageCommitSharded(aid);
  if (!staged.ok()) {
    return staged.status();
  }
  return staged.value().marks.front().address;
}

Status LogWriter::Commit(ActionId aid) {
  Result<StagedOutcome> staged = StageCommitSharded(aid);
  if (!staged.ok()) {
    return staged.status();
  }
  return WaitDurable(staged.value());
}

Result<StagedOutcome> LogWriter::StageAbortSharded(ActionId aid) {
  std::lock_guard<std::mutex> l(mu_);
  // Only a PREPARED action needs an aborted record (§2.2.3: before the
  // prepared record is durable, "all record of that action is lost, and the
  // action will be aborted" — by default). Writing an aborted entry for a
  // never-prepared action would also be wrong for mutex semantics: its
  // early-written mutex data entries must stay invisible to recovery, which
  // they are exactly when no outcome entry names the action. Like the commit
  // record, the aborted record lives on the home shard only — a prepare
  // fragment with no decision record anywhere is presumed aborted.
  StagedOutcome out;
  if (pat_.find(aid) != pat_.end()) {
    const std::uint32_t home = HomeShardOf(aid);
    LogAddress staged = WriteOutcome(LogEntry(AbortedEntry{aid}), home);
    pat_.erase(aid);
    obs::Emit("log.stage.abort", aid.sequence, staged.offset);
    out.marks.push_back(StagedMark{home, staged, EpochOf(home)});
  }
  pending_.erase(aid);
  return out;
}

Result<std::optional<LogAddress>> LogWriter::StageAbort(ActionId aid) {
  ARGUS_CHECK(shards_.size() == 1);
  Result<StagedOutcome> staged = StageAbortSharded(aid);
  if (!staged.ok()) {
    return staged.status();
  }
  if (staged.value().empty()) {
    return std::optional<LogAddress>(std::nullopt);
  }
  return std::optional<LogAddress>(staged.value().marks.front().address);
}

Status LogWriter::Abort(ActionId aid) {
  Result<StagedOutcome> staged = StageAbortSharded(aid);
  if (!staged.ok()) {
    return staged.status();
  }
  if (staged.value().empty()) {
    return Status::Ok();
  }
  return WaitDurable(staged.value());
}

Status LogWriter::Committing(ActionId aid, std::vector<GuardianId> participants) {
  StagedOutcome staged;
  {
    std::lock_guard<std::mutex> l(mu_);
    const std::uint32_t home = HomeShardOf(aid);
    LogAddress addr = WriteOutcome(LogEntry(CommittingEntry{aid, participants}), home);
    obs::Emit("log.stage.committing", aid.sequence, addr.offset, participants.size());
    open_coordinators_[aid] = std::move(participants);
    staged.marks.push_back(StagedMark{home, addr, EpochOf(home)});
  }
  return WaitDurable(staged);
}

Status LogWriter::Done(ActionId aid) {
  StagedOutcome staged;
  {
    std::lock_guard<std::mutex> l(mu_);
    const std::uint32_t home = HomeShardOf(aid);
    LogAddress addr = WriteOutcome(LogEntry(DoneEntry{aid}), home);
    obs::Emit("log.stage.done", aid.sequence, addr.offset);
    open_coordinators_.erase(aid);
    staged.marks.push_back(StagedMark{home, addr, EpochOf(home)});
  }
  return WaitDurable(staged);
}

Status LogWriter::WaitDurable(const StagedOutcome& staged) {
  for (const StagedMark& mark : staged.marks) {
    const ShardBinding& b = shards_[mark.shard];
    Status s = b.coordinator != nullptr ? b.coordinator->ForceUpTo(mark.address, mark.epoch)
                                        : b.log->Force();
    if (!s.ok()) {
      return s;
    }
  }
  return Status::Ok();
}

Status LogWriter::WaitDurable(LogAddress address) {
  const ShardBinding& b = shards_[0];
  if (b.coordinator != nullptr) {
    return b.coordinator->ForceUpTo(address);
  }
  return b.log->Force();
}

Status LogWriter::WaitDurable(LogAddress address, std::uint64_t epoch) {
  const ShardBinding& b = shards_[0];
  if (b.coordinator != nullptr) {
    return b.coordinator->ForceUpTo(address, epoch);
  }
  return b.log->Force();
}

std::uint64_t LogWriter::durability_epoch() const {
  return shards_[0].coordinator != nullptr ? shards_[0].coordinator->log_epoch() : 0;
}

void LogWriter::TrimAccessibilitySet() {
  std::unordered_set<Uid> reachable = heap_->ComputeAccessibleUids();
  std::lock_guard<std::mutex> l(mu_);
  AccessibilitySet trimmed;
  for (Uid uid : reachable) {
    if (as_.find(uid) != as_.end()) {
      trimmed.insert(uid);
    }
  }
  trimmed.insert(Uid::Root());
  as_ = std::move(trimmed);
}

void LogWriter::RestoreState(AccessibilitySet as, PreparedActionsTable pat, MutexTable mt,
                             LogAddress last_outcome) {
  ARGUS_CHECK(shards_.size() == 1);
  std::lock_guard<std::mutex> l(mu_);
  as_ = std::move(as);
  as_.insert(Uid::Root());
  pat_ = std::move(pat);
  mt_ = std::move(mt);
  shards_[0].last_outcome = last_outcome;
}

void LogWriter::RestoreStateSharded(AccessibilitySet as, PreparedActionsTable pat, MutexTable mt,
                                    std::vector<LogAddress> last_outcomes) {
  ARGUS_CHECK(last_outcomes.size() == shards_.size());
  std::lock_guard<std::mutex> l(mu_);
  as_ = std::move(as);
  as_.insert(Uid::Root());
  pat_ = std::move(pat);
  mt_ = std::move(mt);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i].last_outcome = last_outcomes[i];
  }
}

void LogWriter::RestoreOpenCoordinators(std::map<ActionId, std::vector<GuardianId>> open) {
  std::lock_guard<std::mutex> l(mu_);
  open_coordinators_ = std::move(open);
}

void LogWriter::RebindLog(StableLog* log) {
  ARGUS_CHECK(log != nullptr);
  ARGUS_CHECK(shards_.size() == 1);
  std::lock_guard<std::mutex> l(mu_);
  shards_[0].log = log;
}

Status LogWriter::RewritePendingAfterLogSwap() {
  std::lock_guard<std::mutex> l(mu_);
  for (auto& [aid, pending] : pending_) {
    std::vector<Uid> uids;
    uids.reserve(pending.pairs.size());
    for (const auto& [uid, addr] : pending.pairs) {
      uids.push_back(uid);
    }
    pending.pairs.clear();
    pending.mutex_pairs.clear();
    std::vector<RecoverableObject*> naos;
    for (Uid uid : uids) {
      RecoverableObject* obj = heap_->Get(uid);
      if (obj == nullptr) {
        return Status::InvalidArgument("pending pair names unknown object " + to_string(uid));
      }
      // These objects were accessible when first written, so they are in the
      // AS and the plain accessible-object path applies.
      Status s = WriteAccessibleObject(aid, obj, naos);
      if (!s.ok()) {
        return s;
      }
    }
    ARGUS_CHECK_MSG(naos.empty(), "rewrite discovered newly accessible objects");
  }
  return Status::Ok();
}

std::vector<ActionId> LogWriter::ActionsWithPendingPairs() const {
  std::lock_guard<std::mutex> l(mu_);
  std::vector<ActionId> out;
  for (const auto& [aid, pending] : pending_) {
    if (!pending.pairs.empty()) {
      out.push_back(aid);
    }
  }
  return out;
}

void LogWriter::DropPendingPairs(ActionId aid) {
  std::lock_guard<std::mutex> l(mu_);
  pending_.erase(aid);
}

LogAddress LogWriter::last_outcome_address() const {
  std::lock_guard<std::mutex> l(mu_);
  return shards_[0].last_outcome;
}

std::vector<LogAddress> LogWriter::last_outcome_addresses() const {
  std::lock_guard<std::mutex> l(mu_);
  std::vector<LogAddress> out;
  out.reserve(shards_.size());
  for (const ShardBinding& b : shards_) {
    out.push_back(b.last_outcome);
  }
  return out;
}

Result<LogEntry> LogWriter::ReadMutexVersion(Uid uid) const {
  const StableLog* log = nullptr;
  LogAddress addr = LogAddress::Null();
  {
    std::lock_guard<std::mutex> l(mu_);
    auto it = mt_.find(uid);
    if (it == mt_.end()) {
      return Status::NotFound("no prepared mutex version for " + to_string(uid));
    }
    addr = it->second;
    log = shards_[ShardOfUid(uid)].log;
  }
  // The frame read runs outside mu_ so concurrent stagers keep going; the
  // cache's own mutex serializes the fetch. `validated` is the hit signal:
  // true means the frame was served from a residence a prior read already
  // CRC-checked — no medium access, no re-validation.
  bool validated = false;
  Result<StableLog::FrameView> view = log->ReadFrameView(addr, &validated);
  const WriterObs& o = WriterObs::Get();
  o.mt_reads->Increment();
  if (validated) {
    o.mt_read_hits->Increment();
  }
  std::uint64_t reads = o.mt_reads->Value();
  if (reads != 0) {
    o.mt_hit_rate->Set(static_cast<double>(o.mt_read_hits->Value()) /
                       static_cast<double>(reads));
  }
  if (!view.ok()) {
    return view.status();
  }
  return DecodeEntry(view.value().payload());
}

std::vector<Result<LogEntry>> LogWriter::ReadMutexVersions(std::span<const Uid> uids) const {
  std::vector<Result<LogEntry>> results(uids.size(),
                                        Status::NotFound("no prepared mutex version"));
  // One mu_ acquisition snapshots every address; the reads themselves run
  // outside mu_ (same discipline as ReadMutexVersion) grouped per shard so
  // each shard's batch becomes one ReadMany scatter.
  std::vector<std::vector<LogAddress>> shard_addresses(shards_.size());
  std::vector<std::vector<std::size_t>> shard_slots(shards_.size());
  {
    std::lock_guard<std::mutex> l(mu_);
    for (std::size_t i = 0; i < uids.size(); ++i) {
      auto it = mt_.find(uids[i]);
      if (it == mt_.end()) {
        results[i] = Status::NotFound("no prepared mutex version for " + to_string(uids[i]));
        continue;
      }
      std::uint32_t shard = ShardOfUid(uids[i]);
      shard_addresses[shard].push_back(it->second);
      shard_slots[shard].push_back(i);
    }
  }
  const WriterObs& o = WriterObs::Get();
  o.mt_read_batches->Increment();
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    if (shard_addresses[shard].empty()) {
      continue;
    }
    o.mt_batched_reads->Add(shard_addresses[shard].size());
    std::vector<Result<LogEntry>> got = shards_[shard].log->ReadMany(
        std::span<const LogAddress>(shard_addresses[shard].data(), shard_addresses[shard].size()));
    for (std::size_t j = 0; j < got.size(); ++j) {
      results[shard_slots[shard][j]] = std::move(got[j]);
    }
  }
  return results;
}

}  // namespace argus
