#include "src/recovery/checkpoint_policy.h"

namespace argus {

bool CheckpointPolicy::ShouldHousekeep(const RecoverySystem& rs) const {
  const StableLog& log = rs.log();
  if (config_.log_growth_bytes > 0) {
    std::uint64_t size = log.durable_size();
    if (size >= baseline_bytes_ && size - baseline_bytes_ >= config_.log_growth_bytes) {
      return true;
    }
    if (size < baseline_bytes_) {
      return false;  // stale baseline (log was swapped); caller should Rearm
    }
  }
  if (config_.entries_since_checkpoint > 0) {
    // StatsSnapshot, not stats(): the policy may be polled from a background
    // checkpoint thread while workers append.
    std::uint64_t entries = log.StatsSnapshot().entries_written;
    if (entries >= baseline_entries_ &&
        entries - baseline_entries_ >= config_.entries_since_checkpoint) {
      return true;
    }
  }
  return false;
}

Result<bool> CheckpointPolicy::MaybeHousekeep(RecoverySystem& rs) {
  if (!ShouldHousekeep(rs)) {
    return false;
  }
  Status s = rs.Housekeep(config_.method);
  if (!s.ok()) {
    return s;
  }
  ++checkpoints_;
  Rearm(rs);
  return true;
}

void CheckpointPolicy::Rearm(const RecoverySystem& rs) {
  baseline_bytes_ = rs.log().durable_size();
  baseline_entries_ = rs.log().StatsSnapshot().entries_written;
}

}  // namespace argus
