// The writing algorithms of §3.3 (simple log), §4.2 (hybrid log), and §4.4
// (early prepare).
//
// One LogWriter serves one guardian's log — or, in sharded mode, the
// guardian's N log shards. It owns the writer-side volatile state: the
// accessibility set (AS), the prepared actions table (PAT), the mutex table
// (MT, §5.2), the backward outcome chain head (one per shard), and — for
// actions between early prepare and prepare — the accumulated
// <uid, log address> pairs destined for the prepared entry.
//
// In simple mode, data entries carry uid/aid and outcome entries are not
// chained; in hybrid mode, data entries are anonymous, prepared entries carry
// the map fragment, and every outcome entry links to the previous one.
//
// Sharded mode (hybrid only): a ShardRouter partitions uids across N logs.
// Every entry for an object — data, base_committed, prepared_data, and its
// pair inside a prepared entry — lands on that object's shard, so each
// shard's backward chain is self-contained for its uid subset. An action that
// touched k shards stages k prepared entries (one shard-local pair fragment
// each); its *decision* records (committed/aborted, and the coordinator's
// committing/done) go only to the action's home shard. Cross-shard commit
// atomicity is a protocol obligation on the caller: all prepare marks must be
// durable on their shards BEFORE StageCommitSharded is called, so a durable
// commit record implies every shard's prepare fragment is durable too (the
// blocking Prepare/Commit pair satisfies this by construction; group-commit
// callers must force the prepare marks in between). A commit record lost in a
// crash aborts the action by presumed abort, exactly as with one log.
//
// Concurrency: multiple actions may run Prepare/Commit/Abort in parallel on
// one guardian. Every operation splits into a *stage* step — serialized under
// one internal mutex, which keeps the AS/PAT/MT tables and the backward
// outcome chain consistent with the log's staging order (the §5.2 mutex-table
// discipline) — and a *force* step that waits for durability outside the
// mutex, so concurrent actions coalesce their forces through the attached
// FlushCoordinators (one per shard). The PAT/MT are updated at stage time,
// not at force time: concurrent writers must observe an action as prepared
// the moment its prepared entry enters the staging order (a crash discards
// the staged entry and the table update together, so recovery semantics are
// unchanged). Accessors returning references to the tables assume a quiescent
// writer (recovery, housekeeping, and post-join test inspection).

#ifndef SRC_RECOVERY_LOG_WRITER_H_
#define SRC_RECOVERY_LOG_WRITER_H_

#include <map>
#include <mutex>
#include <span>
#include <vector>

#include "src/log/flush_coordinator.h"
#include "src/log/stable_log.h"
#include "src/object/heap.h"
#include "src/recovery/tables.h"
#include "src/stable/shard_map.h"

namespace argus {

enum class LogMode {
  kSimple,  // chapter 3
  kHybrid,  // chapter 4
};

struct WriterStats {
  std::uint64_t data_entries = 0;
  std::uint64_t base_committed_entries = 0;
  std::uint64_t prepared_data_entries = 0;
  std::uint64_t outcome_entries = 0;
};

// One staged-but-not-yet-durable outcome entry. `epoch` is the shard
// coordinator's log generation at stage time (see WaitDurable).
struct StagedMark {
  std::uint32_t shard = 0;
  LogAddress address = LogAddress::Null();
  std::uint64_t epoch = 0;
};

// Everything one Stage* call staged; durable once WaitDurable(staged) is Ok.
// A prepare that touched k shards carries k marks; commit/abort carry at most
// one (the home shard's).
struct StagedOutcome {
  std::vector<StagedMark> marks;

  bool empty() const { return marks.empty(); }
};

class LogWriter {
 public:
  LogWriter(LogMode mode, StableLog* log, VolatileHeap* heap);

  // Sharded writer: one log per shard, routed by `router` (which must outlive
  // this writer). Requires hybrid mode when logs.size() > 1.
  LogWriter(LogMode mode, std::vector<StableLog*> logs, VolatileHeap* heap,
            const ShardRouter* router);

  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  LogMode mode() const { return mode_; }
  std::uint32_t shard_count() const { return static_cast<std::uint32_t>(shards_.size()); }

  // Routes force waits through `coordinator` (group commit) instead of
  // forcing the log directly. The coordinator must outlive this writer or be
  // detached (nullptr) first. Single-shard form; the vector form attaches one
  // coordinator per shard.
  void AttachCoordinator(FlushCoordinator* coordinator);
  void AttachCoordinators(std::vector<FlushCoordinator*> coordinators);

  // Writes the initial base version of the stable-variables root object.
  // Called once when a guardian is first created (§3.3.3.2: the root "is
  // created with its uid when the guardian itself is first created") — it
  // guarantees recovery always finds a committed root version, even if the
  // first action to touch the root is still undecided at the crash. The root
  // always routes to shard 0.
  Status LogGuardianCreation();

  // prepare(aid, MOS): writes data entries for the accessible objects in the
  // MOS (discovering newly accessible objects along the way, §3.3.3.2),
  // then forces the prepared outcome entries on every touched shard. Objects
  // already early-prepared for `aid` must not be in `mos` again unless
  // re-modified.
  Status Prepare(ActionId aid, const ModifiedObjectsSet& mos);

  // write_entry(aid, MOS) — early prepare (§4.4). Writes data entries for the
  // accessible objects (unforced) and returns the set of objects that were
  // NOT written because they are inaccessible (the caller's new MOS).
  Result<ModifiedObjectsSet> WriteEntry(ActionId aid, const ModifiedObjectsSet& mos);

  // commit(aid)/abort(aid): force the participant outcome entry.
  Status Commit(ActionId aid);
  Status Abort(ActionId aid);

  // committing(aid, gids)/done(aid): force the coordinator outcome entries
  // (home shard in sharded mode).
  Status Committing(ActionId aid, std::vector<GuardianId> participants);
  Status Done(ActionId aid);

  // ---- Stage/force split (group commit) ----
  //
  // The Stage* variants do everything except wait for durability: they write
  // the entries, update the PAT/MT, and return the staged outcome marks. The
  // action is durable only after WaitDurable(staged) returns Ok.
  // Prepare()/Commit()/Abort() above are Stage* + WaitDurable.
  //
  // Sharded callers MUST interleave the force: WaitDurable on the prepare
  // marks before calling StageCommitSharded (see the class comment). The
  // single-address variants below are the historical single-shard API and
  // assert shard_count() == 1.

  Result<StagedOutcome> StagePrepareSharded(ActionId aid, const ModifiedObjectsSet& mos);
  Result<StagedOutcome> StageCommitSharded(ActionId aid);
  // Empty marks when nothing was staged (the action never prepared, §2.2.3).
  Result<StagedOutcome> StageAbortSharded(ActionId aid);
  Status WaitDurable(const StagedOutcome& staged);

  Result<LogAddress> StagePrepare(ActionId aid, const ModifiedObjectsSet& mos);
  Result<LogAddress> StageCommit(ActionId aid);
  // nullopt when nothing was staged (the action never prepared, §2.2.3).
  Result<std::optional<LogAddress>> StageAbort(ActionId aid);

  // Blocks until the entry at `address` (shard 0) is durable — via the
  // coordinator's coalesced flush when one is attached, else a direct log
  // force. Single-shard API.
  Status WaitDurable(LogAddress address);

  // Epoch-checked variant for callers racing an online checkpoint: read
  // durability_epoch() in the same critical section as the Stage* call, then
  // wait outside it. If a log swap happened in between, the entry was staged
  // on the retired log — the swap barrier forced that log before retiring it,
  // so the wait returns Ok immediately. Requires an attached coordinator when
  // swaps can be concurrent (the barrier's drain relies on it).
  Status WaitDurable(LogAddress address, std::uint64_t epoch);

  // The attached shard-0 coordinator's log generation (0 when none). Read
  // under the same external exclusion as staging — see WaitDurable above.
  // Sharded stage calls capture per-shard epochs in their marks instead.
  std::uint64_t durability_epoch() const;

  // §3.3.3.2: trims the AS back to the objects genuinely reachable from the
  // stable variables (intersection semantics).
  void TrimAccessibilitySet();

  const AccessibilitySet& accessibility_set() const { return as_; }
  const PreparedActionsTable& prepared_actions() const { return pat_; }
  const MutexTable& mutex_table() const { return mt_; }

  // Steady-state MT dereference (§5.2): reads back the latest prepared
  // version of mutex object `uid` — the data entry the MT points at — through
  // the owning shard's cached frame-view path, so repeated guardian lookups
  // of the same version never re-fetch or re-CRC the frame once the recovery
  // cache holds it. Safe under concurrent staging (the address is taken under
  // mu_, the read runs outside it). NotFound when no prepared version exists.
  Result<LogEntry> ReadMutexVersion(Uid uid) const;

  // Batched steady-state dereference: snapshots every uid's MT address under
  // one mu_ acquisition, groups the addresses by owning shard, and hands each
  // shard's group to StableLog::ReadMany — on a batched medium the whole
  // group is one scatter submission instead of N serial frame reads. Results
  // come back in input order; a uid with no prepared version yields NotFound
  // in its slot without disturbing the rest of the batch.
  std::vector<Result<LogEntry>> ReadMutexVersions(std::span<const Uid> uids) const;
  // Coordinators between their committing and done records. The snapshot
  // housekeeper re-emits these (the compactor finds them on the old chain).
  const std::map<ActionId, std::vector<GuardianId>>& open_coordinators() const {
    return open_coordinators_;
  }
  void RestoreOpenCoordinators(std::map<ActionId, std::vector<GuardianId>> open);
  const WriterStats& stats() const { return stats_; }
  StableLog& log() { return *shards_[0].log; }
  StableLog& shard_log(std::uint32_t shard) { return *shards_[shard].log; }

  // Re-binding after recovery or housekeeping: install externally
  // reconstructed state. The single-address RestoreState is the single-shard
  // form; the sharded form re-primes every shard's chain head.
  void RestoreState(AccessibilitySet as, PreparedActionsTable pat, MutexTable mt,
                    LogAddress last_outcome);
  void RestoreStateSharded(AccessibilitySet as, PreparedActionsTable pat, MutexTable mt,
                           std::vector<LogAddress> last_outcomes);
  void RebindLog(StableLog* log);

  // Early-prepared-but-unprepared actions (pairs not yet covered by a
  // prepared entry). Housekeeping uses this to rewrite their data entries
  // into the new log.
  std::vector<ActionId> ActionsWithPendingPairs() const;
  void DropPendingPairs(ActionId aid);

  // After a log swap, pending pairs point into the discarded old log.
  // Rewrites every pending action's data entries into the (new) bound log —
  // §5.1.1: "the recovery system ... restarts the writing of the data entries
  // for those actions to the new log when compaction is over."
  Status RewritePendingAfterLogSwap();

  LogAddress last_outcome_address() const;
  std::vector<LogAddress> last_outcome_addresses() const;

 private:
  struct ShardBinding {
    StableLog* log = nullptr;
    FlushCoordinator* coordinator = nullptr;
    LogAddress last_outcome = LogAddress::Null();
  };

  struct PendingAction {
    // uid → address of the latest data entry written for it (hybrid pairs).
    std::map<Uid, LogAddress> pairs;
    // uids of mutex objects among them (for the MT update at prepare).
    std::map<Uid, LogAddress> mutex_pairs;
    // shard → address of the latest chained entry (base_committed /
    // prepared_data) this action staged there. A shard that got only such
    // entries receives no prepared entry, but its staged tail must still be
    // forced before the action's decision record may become durable — a
    // committed action's newly accessible objects would otherwise be lost
    // with the crash-discarded tail. StagePrepareSharded turns each shard
    // not already covered by a prepared-entry mark into an extra force mark.
    std::map<std::uint32_t, LogAddress> chained_marks;
  };

  std::uint32_t ShardOfUid(Uid uid) const;
  std::uint32_t HomeShardOf(ActionId aid) const;
  std::uint64_t EpochOf(std::uint32_t shard) const;

  // Writes data entries (and bc/pd entries for newly accessible objects) for
  // every accessible object in `mos`; returns the inaccessible remainder.
  // Caller holds mu_.
  Result<ModifiedObjectsSet> WriteObjectsForAction(ActionId aid, const ModifiedObjectsSet& mos);

  // Writes the data entry for one accessible object. Caller holds mu_.
  Status WriteAccessibleObject(ActionId aid, RecoverableObject* obj,
                               std::vector<RecoverableObject*>& naos);

  // Rematerializes an evicted object about to be flattened (a re-referenced
  // NAO, or a pending rewrite after a log swap, can reach the writer without
  // passing through a bound ActionContext). Caller holds mu_.
  Status EnsureResident(RecoverableObject* obj);

  // Processes one newly accessible object per §3.3.3.3 step 4. Caller holds mu_.
  Status WriteNewlyAccessibleObject(ActionId aid, RecoverableObject* obj,
                                    std::vector<RecoverableObject*>& naos);

  // Appends an outcome entry to `shard`, maintaining that shard's backward
  // chain in hybrid mode. Caller holds mu_.
  LogAddress WriteOutcome(LogEntry entry, std::uint32_t shard);

  // Caller holds mu_.
  LogAddress WriteDataEntryFor(ActionId aid, RecoverableObject* obj, std::vector<std::byte> flat);

  LogMode mode_;
  VolatileHeap* heap_;
  // Null in single-shard mode (everything routes to shard 0).
  const ShardRouter* router_ = nullptr;
  // Guards every member below plus the staging order of log writes across
  // all shards.
  mutable std::mutex mu_;
  std::vector<ShardBinding> shards_;
  AccessibilitySet as_;
  PreparedActionsTable pat_;
  MutexTable mt_;
  std::map<ActionId, std::vector<GuardianId>> open_coordinators_;
  std::map<ActionId, PendingAction> pending_;
  WriterStats stats_;
};

}  // namespace argus

#endif  // SRC_RECOVERY_LOG_WRITER_H_
