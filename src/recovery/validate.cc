#include "src/recovery/validate.h"

#include <algorithm>
#include <functional>

namespace argus {
namespace {

// Walks a value, reporting uid placeholders and dangling references.
void CheckValue(const Value& value, const VolatileHeap& heap, const std::string& where,
                std::vector<std::string>& out) {
  const Value::Storage& s = value.storage();
  if (const auto* uref = std::get_if<UidRef>(&s)) {
    out.push_back("V1: unresolved uid placeholder " + to_string(uref->uid) + " in " + where);
  } else if (const auto* ref = std::get_if<ObjRef>(&s)) {
    if (ref->target == nullptr) {
      out.push_back("V2: null object reference in " + where);
    } else if (heap.Get(ref->target->uid()) != ref->target) {
      out.push_back("V2: reference in " + where + " points outside the heap");
    }
  } else if (const auto* list = std::get_if<Value::List>(&s)) {
    for (const Value& item : *list) {
      CheckValue(item, heap, where, out);
    }
  } else if (const auto* rec = std::get_if<Value::Record>(&s)) {
    for (const auto& [name, field] : *rec) {
      CheckValue(field, heap, where, out);
    }
  }
}

}  // namespace

std::string ValidationReport::ToString() const {
  if (clean()) {
    return "recovered state: OK\n";
  }
  std::string out = "recovered state: " + std::to_string(violations.size()) + " violations\n";
  for (const std::string& v : violations) {
    out += "  " + v + "\n";
  }
  return out;
}

ValidationReport ValidateRecoveredState(const VolatileHeap& heap, const RecoveryInfo& info) {
  ValidationReport report;
  std::uint64_t max_uid = 0;

  for (const auto& [uid, obj_ptr] : heap) {
    const RecoverableObject& obj = *obj_ptr;
    max_uid = std::max(max_uid, uid.value);
    std::string where = to_string(uid);

    CheckValue(obj.base_version(), heap, where + ".base", report.violations);
    if (obj.is_atomic()) {
      if (obj.has_current()) {
        CheckValue(obj.current_version(), heap, where + ".current", report.violations);
        std::optional<ActionId> locker = obj.write_locker();
        if (!locker.has_value()) {
          report.violations.push_back("V3: " + where + " has a tentative version but no lock");
        } else {
          auto it = info.pt.find(*locker);
          if (it == info.pt.end() || it->second != ParticipantState::kPrepared) {
            report.violations.push_back("V3: " + where + " write-locked by " +
                                        to_string(*locker) + " which is not prepared");
          }
        }
      } else if (obj.write_locker().has_value()) {
        report.violations.push_back("V3: " + where + " write-locked without a tentative version");
      }
    } else if (obj.seized()) {
      report.violations.push_back("V4: mutex " + where + " seized after recovery");
    }
  }

  if (heap.next_uid() <= max_uid) {
    report.violations.push_back("V5: uid counter " + std::to_string(heap.next_uid()) +
                                " not past max recovered uid " + std::to_string(max_uid));
  }

  for (const auto& [uid, entry] : info.ot) {
    if (entry.state != ObjectRecoveryState::kRestored) {
      report.violations.push_back("V6: OT entry " + to_string(uid) + " not restored");
    }
    if (entry.object == nullptr || heap.Get(uid) != entry.object) {
      report.violations.push_back("V6: OT entry " + to_string(uid) +
                                  " does not match the heap");
    }
  }
  return report;
}

}  // namespace argus
