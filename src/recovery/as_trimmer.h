// Incremental accessibility-set trimming (§3.3.3.2).
//
// "If the set grows too large, then the set should be trimmed. The recovery
// system would start up a process in parallel with normal processing at the
// guardian and traverse the recoverable objects accessible from the stable
// variables. ... When the process has completed its task it intersects the
// new set with the old set", the intersection dropping objects that became
// newly accessible during the traversal (they are handled by the
// newly-accessible machinery, so the worst case is one redundant
// base_committed entry later).
//
// This class models the background process as an explicit-stack traversal
// advanced a bounded number of objects per Step call, so ordinary writing can
// interleave between steps exactly as in the thesis.

#ifndef SRC_RECOVERY_AS_TRIMMER_H_
#define SRC_RECOVERY_AS_TRIMMER_H_

#include <vector>

#include "src/recovery/log_writer.h"

namespace argus {

class IncrementalAsTrimmer {
 public:
  IncrementalAsTrimmer(LogWriter* writer, VolatileHeap* heap)
      : writer_(writer), heap_(heap) {
    ARGUS_CHECK(writer != nullptr && heap != nullptr);
  }

  // Begins a traversal from the stable variables.
  void Start();

  // Visits up to `budget` objects. Returns true when the traversal finished
  // this call and the intersection was applied to the writer's AS.
  bool Step(std::size_t budget);

  bool running() const { return running_; }
  std::size_t objects_visited() const { return visited_count_; }

 private:
  LogWriter* writer_;
  VolatileHeap* heap_;
  bool running_ = false;
  std::vector<RecoverableObject*> stack_;
  std::unordered_set<const RecoverableObject*> seen_;
  AccessibilitySet traversed_;
  std::size_t visited_count_ = 0;
};

}  // namespace argus

#endif  // SRC_RECOVERY_AS_TRIMMER_H_
