#include "src/recovery/online_checkpoint.h"

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace argus {

namespace {

// Checkpoint-phase telemetry. The histograms are the registry view of
// CheckpointPauseStats (per-checkpointer stats stay on the instance); the
// counter is the forward-progress signal the checkpoint-race property test
// asserts on. skipped_gap counts polls the fairness floor suppressed.
struct CkptObs {
  obs::Counter* checkpoints;
  obs::Counter* skipped_gap;
  obs::Histogram* capture_ns;
  obs::Histogram* build_ns;
  obs::Histogram* swap_ns;
  obs::Histogram* pause_ns;

  static const CkptObs& Get() {
    static const CkptObs m{
        obs::GetCounter("checkpoint.count"),
        obs::GetCounter("checkpoint.skipped_by_gap"),
        obs::GetHistogram("checkpoint.capture_ns"),
        obs::GetHistogram("checkpoint.build_ns"),
        obs::GetHistogram("checkpoint.swap_ns"),
        obs::GetHistogram("checkpoint.pause_ns"),
    };
    return m;
  }

  void RecordPhases(std::uint64_t capture_ns_v, std::uint64_t build_ns_v,
                    std::uint64_t swap_ns_v, std::uint64_t pause_ns_v) const {
    checkpoints->Increment();
    capture_ns->Record(capture_ns_v);
    build_ns->Record(build_ns_v);
    swap_ns->Record(swap_ns_v);
    pause_ns->Record(pause_ns_v);
  }
};

std::uint64_t ElapsedNs(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - start)
                                        .count());
}

}  // namespace

OnlineCheckpointer::OnlineCheckpointer(RecoverySystem* rs, ExclusiveSection exclusive,
                                       CheckpointMode mode)
    : rs_(rs), exclusive_(std::move(exclusive)), mode_(mode) {
  ARGUS_CHECK(rs_ != nullptr);
  ARGUS_CHECK(exclusive_ != nullptr);
}

Status OnlineCheckpointer::RunOnce(HousekeepingMethod method) {
  std::uint64_t capture_ns = 0;
  std::uint64_t build_ns = 0;
  std::uint64_t swap_ns = 0;
  Status status = Status::Ok();

  if (mode_ == CheckpointMode::kStopTheWorld) {
    // The thesis behaviour: everything inside one pause.
    const auto pause_start = std::chrono::steady_clock::now();
    obs::TraceSpan span("ckpt.stw");
    exclusive_([&] {
      auto t0 = std::chrono::steady_clock::now();
      Result<CheckpointCapture> capture = rs_->CaptureCheckpoint(method);
      capture_ns = ElapsedNs(t0);
      if (!capture.ok()) {
        status = capture.status();
        return;
      }
      t0 = std::chrono::steady_clock::now();
      Result<std::unique_ptr<CheckpointBuilder>> builder =
          rs_->BuildCheckpoint(std::move(capture.value()));
      build_ns = ElapsedNs(t0);
      if (!builder.ok()) {
        status = builder.status();
        return;
      }
      t0 = std::chrono::steady_clock::now();
      status = rs_->CompleteCheckpointSwap(std::move(builder.value()));
      swap_ns = ElapsedNs(t0);
    });
    if (!status.ok()) {
      return status;
    }
    const std::uint64_t pause_ns = ElapsedNs(pause_start);
    CkptObs::Get().RecordPhases(capture_ns, build_ns, swap_ns, pause_ns);
    std::lock_guard<std::mutex> l(stats_mu_);
    ++stats_.checkpoints;
    stats_.capture_ns_total += capture_ns;
    stats_.capture_ns_max = std::max(stats_.capture_ns_max, capture_ns);
    stats_.build_ns_total += build_ns;
    stats_.build_ns_max = std::max(stats_.build_ns_max, build_ns);
    stats_.swap_ns_total += swap_ns;
    stats_.swap_ns_max = std::max(stats_.swap_ns_max, swap_ns);
    stats_.pause_ns_total += pause_ns;
    stats_.pause_ns_max = std::max(stats_.pause_ns_max, pause_ns);
    return Status::Ok();
  }

  // Online: phase 1 under exclusion, phase 2 concurrent, phase 3 under
  // exclusion again.
  Result<CheckpointCapture> capture = Status::Unavailable("capture did not run");
  exclusive_([&] {
    obs::TraceSpan span("ckpt.capture");
    const auto t0 = std::chrono::steady_clock::now();
    capture = rs_->CaptureCheckpoint(method);
    capture_ns = ElapsedNs(t0);
  });
  if (!capture.ok()) {
    return capture.status();
  }

  obs::EmitBegin("ckpt.build");
  const auto build_start = std::chrono::steady_clock::now();
  Result<std::unique_ptr<CheckpointBuilder>> builder =
      rs_->BuildCheckpoint(std::move(capture.value()));
  if (!builder.ok()) {
    build_ns = ElapsedNs(build_start);
    obs::EmitEnd("ckpt.build", 0);
    return builder.status();
  }
  // Carry over (and force) the suffix that accumulated during the build,
  // still concurrently — the barrier below then handles only the residue.
  Status caught_up = builder.value()->CatchUp();
  build_ns = ElapsedNs(build_start);
  obs::EmitEnd("ckpt.build", caught_up.ok() ? 1 : 0);
  if (!caught_up.ok()) {
    return caught_up;
  }

  exclusive_([&] {
    obs::TraceSpan span("ckpt.swap");
    const auto t0 = std::chrono::steady_clock::now();
    status = rs_->CompleteCheckpointSwap(std::move(builder.value()));
    swap_ns = ElapsedNs(t0);
  });
  if (!status.ok()) {
    return status;
  }

  CkptObs::Get().RecordPhases(capture_ns, build_ns, swap_ns, std::max(capture_ns, swap_ns));
  std::lock_guard<std::mutex> l(stats_mu_);
  ++stats_.checkpoints;
  stats_.capture_ns_total += capture_ns;
  stats_.capture_ns_max = std::max(stats_.capture_ns_max, capture_ns);
  stats_.build_ns_total += build_ns;
  stats_.build_ns_max = std::max(stats_.build_ns_max, build_ns);
  stats_.swap_ns_total += swap_ns;
  stats_.swap_ns_max = std::max(stats_.swap_ns_max, swap_ns);
  stats_.pause_ns_total += capture_ns + swap_ns;
  stats_.pause_ns_max = std::max(stats_.pause_ns_max, std::max(capture_ns, swap_ns));
  return Status::Ok();
}

CheckpointPauseStats OnlineCheckpointer::StatsSnapshot() const {
  std::lock_guard<std::mutex> l(stats_mu_);
  return stats_;
}

CheckpointService::CheckpointService(RecoverySystem* rs, CheckpointPolicy* policy,
                                     OnlineCheckpointer::ExclusiveSection exclusive,
                                     CheckpointServiceConfig config)
    : rs_(rs),
      policy_(policy),
      config_(config),
      checkpointer_(rs, std::move(exclusive), config.mode) {
  ARGUS_CHECK(policy_ != nullptr);
}

CheckpointService::~CheckpointService() { Stop(); }

void CheckpointService::Start() {
  std::lock_guard<std::mutex> l(mu_);
  ARGUS_CHECK_MSG(!started_, "checkpoint service started twice");
  started_ = true;
  stop_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void CheckpointService::Stop() {
  {
    std::lock_guard<std::mutex> l(mu_);
    if (!started_) {
      return;
    }
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> l(mu_);
  started_ = false;
}

Status CheckpointService::last_error() const {
  std::lock_guard<std::mutex> l(mu_);
  return last_error_;
}

void CheckpointService::Loop() {
  // The fairness floor (min_checkpoint_gap) is measured from the END of the
  // last successful checkpoint, so the commit path is guaranteed a gap-sized
  // window of uncontended guardian mutex no matter how eager the policy or
  // how long checkpoints take.
  bool have_last = false;
  std::chrono::steady_clock::time_point last_end{};
  for (;;) {
    std::chrono::steady_clock::duration wait = config_.poll_interval;
    if (have_last && config_.min_checkpoint_gap.count() > 0) {
      const auto next_allowed = last_end + config_.min_checkpoint_gap;
      const auto now = std::chrono::steady_clock::now();
      if (next_allowed > now) {
        wait = std::max<std::chrono::steady_clock::duration>(wait, next_allowed - now);
      }
    }
    {
      std::unique_lock<std::mutex> l(mu_);
      cv_.wait_for(l, wait, [this] { return stop_; });
      if (stop_) {
        return;
      }
    }
    if (have_last && config_.min_checkpoint_gap.count() > 0 &&
        std::chrono::steady_clock::now() < last_end + config_.min_checkpoint_gap) {
      CkptObs::Get().skipped_gap->Increment();
      continue;  // spurious wakeup inside the gap
    }
    // Polling the log's counters is safe without the guardian exclusion:
    // durable_size() and StatsSnapshot() lock internally, and only this
    // thread ever swaps the log pointer.
    if (!policy_->ShouldHousekeep(*rs_)) {
      continue;
    }
    Status s = checkpointer_.RunOnce(policy_->method());
    if (!s.ok()) {
      std::lock_guard<std::mutex> l(mu_);
      last_error_ = s;
      return;
    }
    policy_->NoteCheckpointTaken(*rs_);
    have_last = true;
    last_end = std::chrono::steady_clock::now();
  }
}

}  // namespace argus
