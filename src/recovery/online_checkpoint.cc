#include "src/recovery/online_checkpoint.h"

namespace argus {

namespace {

std::uint64_t ElapsedNs(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - start)
                                        .count());
}

}  // namespace

OnlineCheckpointer::OnlineCheckpointer(RecoverySystem* rs, ExclusiveSection exclusive,
                                       CheckpointMode mode)
    : rs_(rs), exclusive_(std::move(exclusive)), mode_(mode) {
  ARGUS_CHECK(rs_ != nullptr);
  ARGUS_CHECK(exclusive_ != nullptr);
}

Status OnlineCheckpointer::RunOnce(HousekeepingMethod method) {
  std::uint64_t capture_ns = 0;
  std::uint64_t build_ns = 0;
  std::uint64_t swap_ns = 0;
  Status status = Status::Ok();

  if (mode_ == CheckpointMode::kStopTheWorld) {
    // The thesis behaviour: everything inside one pause.
    const auto pause_start = std::chrono::steady_clock::now();
    exclusive_([&] {
      auto t0 = std::chrono::steady_clock::now();
      Result<CheckpointCapture> capture = rs_->CaptureCheckpoint(method);
      capture_ns = ElapsedNs(t0);
      if (!capture.ok()) {
        status = capture.status();
        return;
      }
      t0 = std::chrono::steady_clock::now();
      Result<std::unique_ptr<CheckpointBuilder>> builder =
          rs_->BuildCheckpoint(std::move(capture.value()));
      build_ns = ElapsedNs(t0);
      if (!builder.ok()) {
        status = builder.status();
        return;
      }
      t0 = std::chrono::steady_clock::now();
      status = rs_->CompleteCheckpointSwap(std::move(builder.value()));
      swap_ns = ElapsedNs(t0);
    });
    if (!status.ok()) {
      return status;
    }
    const std::uint64_t pause_ns = ElapsedNs(pause_start);
    std::lock_guard<std::mutex> l(stats_mu_);
    ++stats_.checkpoints;
    stats_.capture_ns_total += capture_ns;
    stats_.capture_ns_max = std::max(stats_.capture_ns_max, capture_ns);
    stats_.build_ns_total += build_ns;
    stats_.build_ns_max = std::max(stats_.build_ns_max, build_ns);
    stats_.swap_ns_total += swap_ns;
    stats_.swap_ns_max = std::max(stats_.swap_ns_max, swap_ns);
    stats_.pause_ns_total += pause_ns;
    stats_.pause_ns_max = std::max(stats_.pause_ns_max, pause_ns);
    return Status::Ok();
  }

  // Online: phase 1 under exclusion, phase 2 concurrent, phase 3 under
  // exclusion again.
  Result<CheckpointCapture> capture = Status::Unavailable("capture did not run");
  exclusive_([&] {
    const auto t0 = std::chrono::steady_clock::now();
    capture = rs_->CaptureCheckpoint(method);
    capture_ns = ElapsedNs(t0);
  });
  if (!capture.ok()) {
    return capture.status();
  }

  const auto build_start = std::chrono::steady_clock::now();
  Result<std::unique_ptr<CheckpointBuilder>> builder =
      rs_->BuildCheckpoint(std::move(capture.value()));
  if (!builder.ok()) {
    build_ns = ElapsedNs(build_start);
    return builder.status();
  }
  // Carry over (and force) the suffix that accumulated during the build,
  // still concurrently — the barrier below then handles only the residue.
  Status caught_up = builder.value()->CatchUp();
  build_ns = ElapsedNs(build_start);
  if (!caught_up.ok()) {
    return caught_up;
  }

  exclusive_([&] {
    const auto t0 = std::chrono::steady_clock::now();
    status = rs_->CompleteCheckpointSwap(std::move(builder.value()));
    swap_ns = ElapsedNs(t0);
  });
  if (!status.ok()) {
    return status;
  }

  std::lock_guard<std::mutex> l(stats_mu_);
  ++stats_.checkpoints;
  stats_.capture_ns_total += capture_ns;
  stats_.capture_ns_max = std::max(stats_.capture_ns_max, capture_ns);
  stats_.build_ns_total += build_ns;
  stats_.build_ns_max = std::max(stats_.build_ns_max, build_ns);
  stats_.swap_ns_total += swap_ns;
  stats_.swap_ns_max = std::max(stats_.swap_ns_max, swap_ns);
  stats_.pause_ns_total += capture_ns + swap_ns;
  stats_.pause_ns_max = std::max(stats_.pause_ns_max, std::max(capture_ns, swap_ns));
  return Status::Ok();
}

CheckpointPauseStats OnlineCheckpointer::StatsSnapshot() const {
  std::lock_guard<std::mutex> l(stats_mu_);
  return stats_;
}

CheckpointService::CheckpointService(RecoverySystem* rs, CheckpointPolicy* policy,
                                     OnlineCheckpointer::ExclusiveSection exclusive,
                                     CheckpointServiceConfig config)
    : rs_(rs),
      policy_(policy),
      config_(config),
      checkpointer_(rs, std::move(exclusive), config.mode) {
  ARGUS_CHECK(policy_ != nullptr);
}

CheckpointService::~CheckpointService() { Stop(); }

void CheckpointService::Start() {
  std::lock_guard<std::mutex> l(mu_);
  ARGUS_CHECK_MSG(!started_, "checkpoint service started twice");
  started_ = true;
  stop_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void CheckpointService::Stop() {
  {
    std::lock_guard<std::mutex> l(mu_);
    if (!started_) {
      return;
    }
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> l(mu_);
  started_ = false;
}

Status CheckpointService::last_error() const {
  std::lock_guard<std::mutex> l(mu_);
  return last_error_;
}

void CheckpointService::Loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> l(mu_);
      cv_.wait_for(l, config_.poll_interval, [this] { return stop_; });
      if (stop_) {
        return;
      }
    }
    // Polling the log's counters is safe without the guardian exclusion:
    // durable_size() and StatsSnapshot() lock internally, and only this
    // thread ever swaps the log pointer.
    if (!policy_->ShouldHousekeep(*rs_)) {
      continue;
    }
    Status s = checkpointer_.RunOnce(policy_->method());
    if (!s.ok()) {
      std::lock_guard<std::mutex> l(mu_);
      last_error_ = s;
      return;
    }
    policy_->NoteCheckpointTaken(*rs_);
  }
}

}  // namespace argus
