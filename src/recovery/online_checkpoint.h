// Online housekeeping (§5.1.1, taken off the commit path): the machinery that
// runs the three checkpoint phases around live guardian traffic.
//
// The thesis runs housekeeping as a stop-the-world operation — the guardian
// pauses, both stages run, the log is swapped. Stage 1 is the expensive part
// (it scales with the live set: a full heap traversal for the snapshot
// method, a full backward-chain replay for compaction), yet it only reads
// state that is immutable once the marker is recorded. OnlineCheckpointer
// exploits that: it captures the marker and table copies under a brief
// exclusion (phase 1), builds the stage-1 prefix concurrently with committing
// actions (phase 2), and re-enters exclusion only for the swap barrier
// (phase 3), whose cost is bounded by the activity since the capture.
//
// The caller supplies the exclusion as a callback (ExclusiveSection) because
// the guardian's action path owns the lock — the per-guardian mutex in the
// workload driver, a test's scheduler, or the Argus runtime's action lock.
//
// CheckpointService wraps an OnlineCheckpointer in a background thread that
// polls a CheckpointPolicy, turning housekeeping into a maintenance activity
// the commit path never sees (except for the bounded swap pause).

#ifndef SRC_RECOVERY_ONLINE_CHECKPOINT_H_
#define SRC_RECOVERY_ONLINE_CHECKPOINT_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "src/recovery/checkpoint_policy.h"
#include "src/recovery/recovery_system.h"

namespace argus {

enum class CheckpointMode {
  // All three phases run back to back under one exclusive section — the
  // thesis behaviour, kept as the baseline the benchmark compares against.
  kStopTheWorld,
  // Only phases 1 and 3 run under exclusion; stage 1 builds concurrently.
  kOnline,
};

// Writer-visible pause accounting. `pause` covers only time spent inside the
// caller's exclusive section (what the commit path actually observes);
// `build` is the concurrent phase-2 work (wall time, not a pause, except in
// stop-the-world mode where it happens inside the pause too).
struct CheckpointPauseStats {
  std::uint64_t checkpoints = 0;
  std::uint64_t capture_ns_total = 0;
  std::uint64_t capture_ns_max = 0;
  std::uint64_t build_ns_total = 0;
  std::uint64_t build_ns_max = 0;
  std::uint64_t swap_ns_total = 0;
  std::uint64_t swap_ns_max = 0;
  // Longest single exclusive section: max capture or swap pause in online
  // mode, the whole checkpoint in stop-the-world mode.
  std::uint64_t pause_ns_max = 0;
  std::uint64_t pause_ns_total = 0;
};

class OnlineCheckpointer {
 public:
  // Runs `fn` with the guardian's action path excluded: no thread may mutate
  // the heap or stage log entries while `fn` executes. The callback form lets
  // the owner of that lock decide how (a mutex, a scheduler, a barrier).
  using ExclusiveSection = std::function<void(const std::function<void()>&)>;

  // `rs` must outlive this object. `exclusive` must be re-entrant-safe in the
  // sense that RunOnce may invoke it twice per checkpoint (online mode).
  OnlineCheckpointer(RecoverySystem* rs, ExclusiveSection exclusive, CheckpointMode mode);

  OnlineCheckpointer(const OnlineCheckpointer&) = delete;
  OnlineCheckpointer& operator=(const OnlineCheckpointer&) = delete;

  // Runs one full checkpoint. Online mode requires group commit to be
  // configured on `rs` when any thread waits for durability outside the
  // exclusive section (see LogWriter::WaitDurable's epoch variant).
  Status RunOnce(HousekeepingMethod method);

  CheckpointPauseStats StatsSnapshot() const;

 private:
  RecoverySystem* rs_;
  ExclusiveSection exclusive_;
  CheckpointMode mode_;
  mutable std::mutex stats_mu_;
  CheckpointPauseStats stats_;
};

struct CheckpointServiceConfig {
  CheckpointMode mode = CheckpointMode::kOnline;
  HousekeepingMethod method = HousekeepingMethod::kSnapshot;
  // How often the background thread polls the policy.
  std::chrono::milliseconds poll_interval{1};
  // Fairness floor: minimum time between the end of one checkpoint and the
  // start of the next. An eager policy (entries_since_checkpoint = 0) plus a
  // short poll interval would otherwise re-enter the guardian's exclusive
  // section on every poll and starve the commit path on small hosts — the
  // documented ConcurrentCheckpointWorkloadTest stall. Zero disables the gap.
  std::chrono::milliseconds min_checkpoint_gap{5};
};

// A background thread that checkpoints whenever `policy` says the log has
// grown enough. Start() spawns it; Stop() (or the destructor) joins it. The
// first checkpoint error stops the service and is reported by last_error().
class CheckpointService {
 public:
  // All pointees must outlive the service. `policy` is driven (polled and
  // re-armed) only by the service thread once Start() is called.
  CheckpointService(RecoverySystem* rs, CheckpointPolicy* policy,
                    OnlineCheckpointer::ExclusiveSection exclusive,
                    CheckpointServiceConfig config);
  ~CheckpointService();

  CheckpointService(const CheckpointService&) = delete;
  CheckpointService& operator=(const CheckpointService&) = delete;

  void Start();
  void Stop();

  Status last_error() const;
  CheckpointPauseStats StatsSnapshot() const { return checkpointer_.StatsSnapshot(); }

 private:
  void Loop();

  RecoverySystem* rs_;
  CheckpointPolicy* policy_;
  CheckpointServiceConfig config_;
  OnlineCheckpointer checkpointer_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool started_ = false;
  Status last_error_ = Status::Ok();
  std::thread thread_;
};

}  // namespace argus

#endif  // SRC_RECOVERY_ONLINE_CHECKPOINT_H_
