#include "src/recovery/recovery_system.h"

#include <algorithm>

#include "src/obs/metrics.h"
#include "src/stable/replicated_medium.h"

namespace argus {

void RecoverySystem::StartRepairServices() {
  if (!config_.repair.has_value()) {
    return;
  }
  repair_services_.resize(logs_.size());
  for (std::size_t i = 0; i < logs_.size(); ++i) {
    auto* medium = dynamic_cast<ReplicatedStableMedium*>(&logs_[i]->medium());
    if (medium == nullptr) {
      continue;  // in-memory / file media have nothing to scrub
    }
    repair_services_[i] =
        std::make_unique<ReplicaRepairService>(&medium->store(), *config_.repair);
    repair_services_[i]->Start();
  }
}

void RecoverySystem::StopRepairServices() { repair_services_.clear(); }

void RecoverySystem::InitWriterAndCoordinators() {
  std::vector<StableLog*> raw;
  raw.reserve(logs_.size());
  for (const auto& log : logs_) {
    raw.push_back(log.get());
  }
  writer_ = std::make_unique<LogWriter>(config_.mode, std::move(raw), heap_,
                                        router_.get());
  if (config_.group_commit.has_value()) {
    std::vector<FlushCoordinator*> attached;
    attached.reserve(logs_.size());
    for (const auto& log : logs_) {
      coordinators_.push_back(
          std::make_unique<FlushCoordinator>(log.get(), *config_.group_commit));
      attached.push_back(coordinators_.back().get());
    }
    writer_->AttachCoordinators(std::move(attached));
  }
}

void RecoverySystem::InitResidency() {
  if (config_.residency.mem_budget_bytes == 0) {
    return;
  }
  std::vector<StableLog*> raw;
  raw.reserve(logs_.size());
  for (const auto& log : logs_) {
    raw.push_back(log.get());
  }
  residency_ =
      std::make_unique<ResidencyManager>(heap_, std::move(raw), router_.get(), config_.residency);
}

RecoverySystem::RecoverySystem(RecoverySystemConfig config, VolatileHeap* heap)
    : config_(std::move(config)), heap_(heap) {
  ARGUS_CHECK(heap_ != nullptr);
  ARGUS_CHECK(config_.medium_factory != nullptr);
  ARGUS_CHECK(config_.log_shards >= 1);
  if (config_.log_shards > 1) {
    ARGUS_CHECK_MSG(config_.mode == LogMode::kHybrid, "sharded logs require the hybrid mode");
    // The shard map is durable state in its own right and is written before
    // any shard log exists: recovery must be able to rebuild the routing
    // before it can find anything else.
    shard_map_ = std::make_unique<ShardMapStore>(config_.medium_factory());
    ShardMapRecord record;
    record.version = 0;
    record.num_shards = config_.log_shards;
    record.salt = config_.shard_salt;
    Status s = shard_map_->Put(record);
    ARGUS_CHECK_MSG(s.ok(), "shard map creation write failed");
    router_ = std::make_unique<ShardRouter>(record);
  }
  for (std::uint32_t i = 0; i < config_.log_shards; ++i) {
    logs_.push_back(std::make_unique<StableLog>(config_.medium_factory()));
  }
  InitWriterAndCoordinators();
  // A fresh guardian durably records its (empty) stable-variables root so
  // recovery always has a committed root version to fall back on.
  Status s = writer_->LogGuardianCreation();
  ARGUS_CHECK_MSG(s.ok(), "guardian creation write failed");
  StartRepairServices();
  InitResidency();
}

RecoverySystem::RecoverySystem(RecoverySystemConfig config, VolatileHeap* heap,
                               std::unique_ptr<StableLog> log)
    : RecoverySystem(std::move(config), heap, [&log] {
        SurvivingState surviving;
        surviving.logs.push_back(std::move(log));
        return surviving;
      }()) {}

RecoverySystem::RecoverySystem(RecoverySystemConfig config, VolatileHeap* heap,
                               SurvivingState surviving)
    : config_(std::move(config)),
      heap_(heap),
      logs_(std::move(surviving.logs)),
      shard_map_(std::move(surviving.shard_map)) {
  ARGUS_CHECK(heap_ != nullptr);
  ARGUS_CHECK(config_.medium_factory != nullptr);
  ARGUS_CHECK(!logs_.empty());
  for (const auto& log : logs_) {
    ARGUS_CHECK(log != nullptr);
  }
  if (logs_.size() > 1) {
    ARGUS_CHECK(shard_map_ != nullptr);
    // The routing is durable state: recover it first. A failure here leaves
    // the writer unconstructed; Recover() reports the error and the caller
    // can reclaim the surviving state and retry (e.g. after healing faults).
    Result<ShardMapRecord> record = shard_map_->Recover();
    if (!record.ok()) {
      deferred_error_ = record.status();
      return;
    }
    if (record.value().num_shards != logs_.size()) {
      deferred_error_ = Status::Corruption("shard map names " +
                                           std::to_string(record.value().num_shards) +
                                           " shards but " + std::to_string(logs_.size()) +
                                           " logs survived");
      return;
    }
    router_ = std::make_unique<ShardRouter>(std::move(record).value());
  }
  InitWriterAndCoordinators();
  StartRepairServices();
  InitResidency();
}

Result<RecoveryInfo> RecoverySystem::Recover() {
  if (!deferred_error_.ok()) {
    return deferred_error_;
  }
  for (const auto& log : logs_) {
    Result<std::uint64_t> recovered = log->RecoverAfterCrash();
    if (!recovered.ok()) {
      return recovered.status();
    }
  }

  RecoveryResult r;
  if (logs_.size() > 1) {
    ShardedRecoveryOptions options;
    options.workers = config_.shard_recovery_workers == 0
                          ? logs_.size()
                          : std::min(config_.shard_recovery_workers, logs_.size());
    std::vector<StableLog*> raw;
    raw.reserve(logs_.size());
    for (const auto& log : logs_) {
      raw.push_back(log.get());
    }
    Result<ShardedRecoveryResult> sharded =
        RecoverShardedHybridLog(std::span<StableLog* const>(raw.data(), raw.size()),
                                *heap_, options);
    if (!sharded.ok()) {
      return sharded.status();
    }
    r = std::move(sharded.value().merged);

    PreparedActionsTable pat;
    for (const auto& [aid, state] : r.pt) {
      if (state == ParticipantState::kPrepared) {
        pat.insert(aid);
      }
    }
    writer_->RestoreStateSharded(r.as, std::move(pat), r.mt,
                                 std::move(sharded.value().shard_last_outcomes));
  } else {
    Result<RecoveryResult> result = config_.mode == LogMode::kSimple
                                        ? RecoverSimpleLog(*logs_[0], *heap_)
                                        : RecoverHybridLog(*logs_[0], *heap_);
    if (!result.ok()) {
      return result.status();
    }
    r = std::move(result).value();

    // Prime the writer: the PAT is the prepared subset of the PT.
    PreparedActionsTable pat;
    for (const auto& [aid, state] : r.pt) {
      if (state == ParticipantState::kPrepared) {
        pat.insert(aid);
      }
    }
    writer_->RestoreState(r.as, std::move(pat), r.mt, r.last_outcome);
  }

  std::map<ActionId, std::vector<GuardianId>> open;
  for (const auto& [aid, entry] : r.ct) {
    if (entry.phase == CoordinatorPhase::kCommitting) {
      open[aid] = entry.participants;
    }
  }
  writer_->RestoreOpenCoordinators(std::move(open));

  // Prime residency addresses: any object whose committed base was restored
  // from a durable frame — a pair-addressed data entry or a chained
  // base_committed / prepared_data frame — is immediately eviction-eligible,
  // because the fault path can decode all three frame kinds. Objects whose
  // base arrived without an address stay resident until a later logged write
  // re-addresses them.
  for (const auto& [uid, entry] : r.ot) {
    if (entry.object != nullptr && entry.state == ObjectRecoveryState::kRestored &&
        !entry.base_address.is_null()) {
      entry.object->set_stable_address(entry.base_address);
    }
  }

  RecoveryInfo info;
  info.ot = std::move(r.ot);
  info.pt = std::move(r.pt);
  info.ct = std::move(r.ct);
  info.entries_examined = r.entries_examined;
  info.data_entries_read = r.data_entries_read;
  for (const auto& [aid, state] : info.pt) {
    if (state == ParticipantState::kPrepared) {
      ++info.in_doubt_actions;
    }
  }
  obs::GetCounter("recovery.in_doubt_actions")->Add(info.in_doubt_actions);
  return info;
}

void RecoverySystem::CrashCoordinators() {
  for (const auto& coordinator : coordinators_) {
    coordinator->Crash();
  }
}

std::unique_ptr<StableLog> RecoverySystem::TakeLog() {
  ARGUS_CHECK(logs_.size() == 1);
  StopRepairServices();
  residency_.reset();
  return std::move(logs_[0]);
}

RecoverySystem::SurvivingState RecoverySystem::TakeSurvivingState() {
  StopRepairServices();
  residency_.reset();
  SurvivingState surviving;
  surviving.logs = std::move(logs_);
  surviving.shard_map = std::move(shard_map_);
  return surviving;
}

Status RecoverySystem::Housekeep(HousekeepingMethod method,
                                 const std::function<void()>& between_stages) {
  Result<CheckpointCapture> capture = CaptureCheckpoint(method);
  if (!capture.ok()) {
    return capture.status();
  }
  Result<std::unique_ptr<CheckpointBuilder>> builder =
      BuildCheckpoint(std::move(capture.value()));
  if (!builder.ok()) {
    return builder.status();
  }
  if (between_stages) {
    between_stages();
  }
  return CompleteCheckpointSwap(std::move(builder.value()));
}

Result<CheckpointCapture> RecoverySystem::CaptureCheckpoint(HousekeepingMethod method) {
  if (config_.mode != LogMode::kHybrid) {
    return Status::InvalidArgument("housekeeping requires the hybrid log (chapter 5)");
  }
  if (logs_.size() > 1) {
    return Status::InvalidArgument(
        "housekeeping is not supported with sharded logs (cross-shard swap barrier)");
  }
  if (swap_crash_hook_ && !swap_crash_hook_("capture", 0)) {
    return Status::IoError("injected crash before capture");
  }

  // The capture traverses committed base versions; stubs must be
  // rematerialized first so the snapshot sees real values.
  if (residency_ != nullptr) {
    Status ms = residency_->MaterializeAll();
    if (!ms.ok()) {
      return ms;
    }
  }

  HousekeepingInputs inputs;
  inputs.old_log = logs_[0].get();
  inputs.heap = heap_;
  inputs.pat = &writer_->prepared_actions();
  inputs.mt = &writer_->mutex_table();
  inputs.open_coordinators = &writer_->open_coordinators();
  inputs.old_chain_head = writer_->last_outcome_address();
  inputs.medium_factory = config_.medium_factory;
  return ::argus::CaptureCheckpoint(method, inputs);
}

Result<std::unique_ptr<CheckpointBuilder>> RecoverySystem::BuildCheckpoint(
    CheckpointCapture capture) {
  if (swap_crash_hook_ && !swap_crash_hook_("build", 0)) {
    return Status::IoError("injected crash before build");
  }
  auto builder = std::make_unique<CheckpointBuilder>(std::move(capture), logs_[0].get(),
                                                     config_.medium_factory);
  Status s = builder->BuildStageOne();
  if (!s.ok()) {
    return s;
  }
  return builder;
}

Status RecoverySystem::CompleteCheckpointSwap(std::unique_ptr<CheckpointBuilder> builder) {
  ARGUS_CHECK(builder != nullptr);
  ARGUS_CHECK(logs_.size() == 1);

  // Drain in-flight durability waits and force the old log's staged tail, so
  // (a) the post-marker suffix read by stage 2 is frozen and fully visible,
  // and (b) waiters that staged before the barrier wake against a durable
  // frame instead of a swapped log.
  if (coordinator() != nullptr) {
    Status s = coordinator()->Quiesce();
    if (!s.ok()) {
      return s;
    }
  }
  if (swap_crash_hook_ && !swap_crash_hook_("quiesced", 0)) {
    return Status::IoError("injected crash after quiesce");
  }
  // Any stubs that slipped in between capture and swap point at the old log;
  // materialize them now since all old-log addresses die at the swap.
  if (residency_ != nullptr) {
    Status ms = residency_->MaterializeAll();
    if (!ms.ok()) {
      return ms;
    }
  }

  std::function<bool(std::uint64_t)> stage2_hook;
  if (swap_crash_hook_) {
    stage2_hook = [this](std::uint64_t index) { return swap_crash_hook_("stage2", index); };
  }
  Result<HousekeepingOutcome> outcome = builder->Finish(stage2_hook);
  if (!outcome.ok()) {
    return outcome.status();
  }
  if (swap_crash_hook_ && !swap_crash_hook_("forced", 0)) {
    return Status::IoError("injected crash after new-log force");
  }
  HousekeepingOutcome& hk = outcome.value();

  // The atomic swap: the new log supplants the old. The retired log stays
  // alive one generation so any latent stale access faults loudly. The
  // repair service scrubbing the old medium stops before the swap (its store
  // is about to be retired) and a fresh one adopts the new medium after.
  StopRepairServices();
  retired_log_ = std::move(logs_[0]);
  logs_[0] = std::move(hk.new_log);
  writer_->RebindLog(logs_[0].get());
  if (coordinator() != nullptr) {
    coordinator()->RebindLog(logs_[0].get());
  }
  StartRepairServices();

  // Every stable address recorded so far names a frame of the retired log.
  // Wipe them all; RewritePendingAfterLogSwap below re-installs addresses for
  // pending data, and committed bases become eviction-eligible again the next
  // time an action re-logs them.
  for (const auto& [uid, obj] : *heap_) {
    obj->ClearStableAddresses();
  }
  if (residency_ != nullptr) {
    residency_->RebindLog(0, logs_[0].get());
  }

  AccessibilitySet as = writer_->accessibility_set();
  if (hk.new_as.has_value()) {
    // §5.2: the traversal's AS is intersected with the old AS. Uids that
    // became accessible after the capture may be dropped here — conservative:
    // the next prepare touching them re-writes their committed version.
    AccessibilitySet intersected;
    for (Uid uid : *hk.new_as) {
      if (as.find(uid) != as.end()) {
        intersected.insert(uid);
      }
    }
    as = std::move(intersected);
  }
  // The PAT is the writer's LIVE table: actions that prepared after the
  // capture were carried into the new log by stage 2. The MT is the
  // checkpoint's — stage 2 re-pointed post-capture mutex versions too.
  writer_->RestoreState(std::move(as), writer_->prepared_actions(), std::move(hk.new_mt),
                        hk.new_last_outcome);
  if (swap_crash_hook_ && !swap_crash_hook_("swapped", 0)) {
    return Status::IoError("injected crash after swap");
  }

  // Data entries of not-yet-prepared actions were not carried over; rewrite
  // them from volatile state.
  Status s = writer_->RewritePendingAfterLogSwap();
  if (!s.ok()) {
    return s;
  }
  if (swap_crash_hook_ && !swap_crash_hook_("rewritten", 0)) {
    return Status::IoError("injected crash after pending rewrite");
  }
  return Status::Ok();
}

}  // namespace argus
