#include "src/recovery/recovery_system.h"

#include "src/obs/metrics.h"

namespace argus {

RecoverySystem::RecoverySystem(RecoverySystemConfig config, VolatileHeap* heap)
    : config_(std::move(config)), heap_(heap) {
  ARGUS_CHECK(heap_ != nullptr);
  ARGUS_CHECK(config_.medium_factory != nullptr);
  log_ = std::make_unique<StableLog>(config_.medium_factory());
  writer_ = std::make_unique<LogWriter>(config_.mode, log_.get(), heap_);
  if (config_.group_commit.has_value()) {
    coordinator_ = std::make_unique<FlushCoordinator>(log_.get(), *config_.group_commit);
    writer_->AttachCoordinator(coordinator_.get());
  }
  // A fresh guardian durably records its (empty) stable-variables root so
  // recovery always has a committed root version to fall back on.
  Status s = writer_->LogGuardianCreation();
  ARGUS_CHECK_MSG(s.ok(), "guardian creation write failed");
}

RecoverySystem::RecoverySystem(RecoverySystemConfig config, VolatileHeap* heap,
                               std::unique_ptr<StableLog> log)
    : config_(std::move(config)), heap_(heap), log_(std::move(log)) {
  ARGUS_CHECK(heap_ != nullptr);
  ARGUS_CHECK(config_.medium_factory != nullptr);
  ARGUS_CHECK(log_ != nullptr);
  writer_ = std::make_unique<LogWriter>(config_.mode, log_.get(), heap_);
  if (config_.group_commit.has_value()) {
    coordinator_ = std::make_unique<FlushCoordinator>(log_.get(), *config_.group_commit);
    writer_->AttachCoordinator(coordinator_.get());
  }
}

Result<RecoveryInfo> RecoverySystem::Recover() {
  Result<std::uint64_t> recovered = log_->RecoverAfterCrash();
  if (!recovered.ok()) {
    return recovered.status();
  }

  Result<RecoveryResult> result = config_.mode == LogMode::kSimple
                                      ? RecoverSimpleLog(*log_, *heap_)
                                      : RecoverHybridLog(*log_, *heap_);
  if (!result.ok()) {
    return result.status();
  }
  RecoveryResult& r = result.value();

  // Prime the writer: the PAT is the prepared subset of the PT.
  PreparedActionsTable pat;
  for (const auto& [aid, state] : r.pt) {
    if (state == ParticipantState::kPrepared) {
      pat.insert(aid);
    }
  }
  writer_->RestoreState(r.as, std::move(pat), r.mt, r.last_outcome);
  std::map<ActionId, std::vector<GuardianId>> open;
  for (const auto& [aid, entry] : r.ct) {
    if (entry.phase == CoordinatorPhase::kCommitting) {
      open[aid] = entry.participants;
    }
  }
  writer_->RestoreOpenCoordinators(std::move(open));

  RecoveryInfo info;
  info.ot = std::move(r.ot);
  info.pt = std::move(r.pt);
  info.ct = std::move(r.ct);
  info.entries_examined = r.entries_examined;
  info.data_entries_read = r.data_entries_read;
  for (const auto& [aid, state] : info.pt) {
    if (state == ParticipantState::kPrepared) {
      ++info.in_doubt_actions;
    }
  }
  obs::GetCounter("recovery.in_doubt_actions")->Add(info.in_doubt_actions);
  return info;
}

Status RecoverySystem::Housekeep(HousekeepingMethod method,
                                 const std::function<void()>& between_stages) {
  Result<CheckpointCapture> capture = CaptureCheckpoint(method);
  if (!capture.ok()) {
    return capture.status();
  }
  Result<std::unique_ptr<CheckpointBuilder>> builder =
      BuildCheckpoint(std::move(capture.value()));
  if (!builder.ok()) {
    return builder.status();
  }
  if (between_stages) {
    between_stages();
  }
  return CompleteCheckpointSwap(std::move(builder.value()));
}

Result<CheckpointCapture> RecoverySystem::CaptureCheckpoint(HousekeepingMethod method) {
  if (config_.mode != LogMode::kHybrid) {
    return Status::InvalidArgument("housekeeping requires the hybrid log (chapter 5)");
  }
  if (swap_crash_hook_ && !swap_crash_hook_("capture", 0)) {
    return Status::IoError("injected crash before capture");
  }

  HousekeepingInputs inputs;
  inputs.old_log = log_.get();
  inputs.heap = heap_;
  inputs.pat = &writer_->prepared_actions();
  inputs.mt = &writer_->mutex_table();
  inputs.open_coordinators = &writer_->open_coordinators();
  inputs.old_chain_head = writer_->last_outcome_address();
  inputs.medium_factory = config_.medium_factory;
  return ::argus::CaptureCheckpoint(method, inputs);
}

Result<std::unique_ptr<CheckpointBuilder>> RecoverySystem::BuildCheckpoint(
    CheckpointCapture capture) {
  if (swap_crash_hook_ && !swap_crash_hook_("build", 0)) {
    return Status::IoError("injected crash before build");
  }
  auto builder = std::make_unique<CheckpointBuilder>(std::move(capture), log_.get(),
                                                     config_.medium_factory);
  Status s = builder->BuildStageOne();
  if (!s.ok()) {
    return s;
  }
  return builder;
}

Status RecoverySystem::CompleteCheckpointSwap(std::unique_ptr<CheckpointBuilder> builder) {
  ARGUS_CHECK(builder != nullptr);

  // Drain in-flight durability waits and force the old log's staged tail, so
  // (a) the post-marker suffix read by stage 2 is frozen and fully visible,
  // and (b) waiters that staged before the barrier wake against a durable
  // frame instead of a swapped log.
  if (coordinator_ != nullptr) {
    Status s = coordinator_->Quiesce();
    if (!s.ok()) {
      return s;
    }
  }
  if (swap_crash_hook_ && !swap_crash_hook_("quiesced", 0)) {
    return Status::IoError("injected crash after quiesce");
  }

  std::function<bool(std::uint64_t)> stage2_hook;
  if (swap_crash_hook_) {
    stage2_hook = [this](std::uint64_t index) { return swap_crash_hook_("stage2", index); };
  }
  Result<HousekeepingOutcome> outcome = builder->Finish(stage2_hook);
  if (!outcome.ok()) {
    return outcome.status();
  }
  if (swap_crash_hook_ && !swap_crash_hook_("forced", 0)) {
    return Status::IoError("injected crash after new-log force");
  }
  HousekeepingOutcome& hk = outcome.value();

  // The atomic swap: the new log supplants the old. The retired log stays
  // alive one generation so any latent stale access faults loudly.
  retired_log_ = std::move(log_);
  log_ = std::move(hk.new_log);
  writer_->RebindLog(log_.get());
  if (coordinator_ != nullptr) {
    coordinator_->RebindLog(log_.get());
  }

  AccessibilitySet as = writer_->accessibility_set();
  if (hk.new_as.has_value()) {
    // §5.2: the traversal's AS is intersected with the old AS. Uids that
    // became accessible after the capture may be dropped here — conservative:
    // the next prepare touching them re-writes their committed version.
    AccessibilitySet intersected;
    for (Uid uid : *hk.new_as) {
      if (as.find(uid) != as.end()) {
        intersected.insert(uid);
      }
    }
    as = std::move(intersected);
  }
  // The PAT is the writer's LIVE table: actions that prepared after the
  // capture were carried into the new log by stage 2. The MT is the
  // checkpoint's — stage 2 re-pointed post-capture mutex versions too.
  writer_->RestoreState(std::move(as), writer_->prepared_actions(), std::move(hk.new_mt),
                        hk.new_last_outcome);
  if (swap_crash_hook_ && !swap_crash_hook_("swapped", 0)) {
    return Status::IoError("injected crash after swap");
  }

  // Data entries of not-yet-prepared actions were not carried over; rewrite
  // them from volatile state.
  Status s = writer_->RewritePendingAfterLogSwap();
  if (!s.ok()) {
    return s;
  }
  if (swap_crash_hook_ && !swap_crash_hook_("rewritten", 0)) {
    return Status::IoError("injected crash after pending rewrite");
  }
  return Status::Ok();
}

}  // namespace argus
