#include "src/recovery/as_trimmer.h"

#include "src/object/flatten.h"

namespace argus {

void IncrementalAsTrimmer::Start() {
  running_ = true;
  stack_.clear();
  seen_.clear();
  traversed_.clear();
  visited_count_ = 0;
  RecoverableObject* root = heap_->root();
  stack_.push_back(root);
  seen_.insert(root);
}

bool IncrementalAsTrimmer::Step(std::size_t budget) {
  if (!running_) {
    return false;
  }
  while (budget > 0 && !stack_.empty()) {
    RecoverableObject* obj = stack_.back();
    stack_.pop_back();
    --budget;
    ++visited_count_;
    traversed_.insert(obj->uid());

    std::vector<RecoverableObject*> refs;
    CollectRefs(obj->base_version(), refs);
    if (obj->is_atomic() && obj->has_current()) {
      CollectRefs(obj->current_version(), refs);
    }
    for (RecoverableObject* ref : refs) {
      if (seen_.insert(ref).second) {
        stack_.push_back(ref);
      }
    }
  }
  if (!stack_.empty()) {
    return false;  // more to do; caller may interleave normal writing
  }
  // Traversal complete: AS := traversed ∩ old AS (§3.3.3.2).
  AccessibilitySet intersected;
  const AccessibilitySet& old_as = writer_->accessibility_set();
  for (Uid uid : traversed_) {
    if (old_as.find(uid) != old_as.end()) {
      intersected.insert(uid);
    }
  }
  writer_->RestoreState(std::move(intersected), writer_->prepared_actions(),
                        writer_->mutex_table(), writer_->last_outcome_address());
  running_ = false;
  return true;
}

}  // namespace argus
