// When to run housekeeping (§2.3 item 7: "Whenever the Argus system has
// determined that enough old information has accumulated on stable storage
// ... it calls the housekeeping operation").
//
// The thesis leaves the trigger to the Argus system; this module provides the
// standard policy a deployment would use: checkpoint when the log has grown
// past a byte budget or an outcome-entry budget since the last checkpoint,
// choosing the snapshot method by default (§5.3 concludes it is strictly
// better) with compaction available for heaps too large to traverse in one
// pause.

#ifndef SRC_RECOVERY_CHECKPOINT_POLICY_H_
#define SRC_RECOVERY_CHECKPOINT_POLICY_H_

#include "src/recovery/recovery_system.h"

namespace argus {

struct CheckpointPolicyConfig {
  // Housekeep when the log exceeds this many durable bytes beyond the size
  // right after the previous checkpoint. 0 disables the byte trigger.
  std::uint64_t log_growth_bytes = 64 * 1024;
  // Housekeep when this many entries were written since the last checkpoint.
  // 0 disables the entry trigger.
  std::uint64_t entries_since_checkpoint = 512;
  HousekeepingMethod method = HousekeepingMethod::kSnapshot;
};

class CheckpointPolicy {
 public:
  explicit CheckpointPolicy(CheckpointPolicyConfig config) : config_(config) {}

  // True if the log has accumulated enough since the last checkpoint.
  bool ShouldHousekeep(const RecoverySystem& rs) const;

  // Runs housekeeping if due; returns true if one ran.
  Result<bool> MaybeHousekeep(RecoverySystem& rs);

  // Re-arms the baselines (also called internally after each checkpoint, and
  // needed after a recovery, when log counters restart).
  void Rearm(const RecoverySystem& rs);

  // For callers that run the checkpoint themselves (the online path drives
  // the three phases through OnlineCheckpointer rather than MaybeHousekeep):
  // counts the checkpoint and re-arms against the fresh log.
  void NoteCheckpointTaken(const RecoverySystem& rs) {
    ++checkpoints_;
    Rearm(rs);
  }

  HousekeepingMethod method() const { return config_.method; }
  std::uint64_t checkpoints_taken() const { return checkpoints_; }

 private:
  CheckpointPolicyConfig config_;
  std::uint64_t baseline_bytes_ = 0;
  std::uint64_t baseline_entries_ = 0;
  std::uint64_t checkpoints_ = 0;
};

}  // namespace argus

#endif  // SRC_RECOVERY_CHECKPOINT_POLICY_H_
