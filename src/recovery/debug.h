// Human-readable renderings of the recovery tables, in the layout the thesis
// uses at each scenario's "algorithm's end" (PT / CT / OT columns).

#ifndef SRC_RECOVERY_DEBUG_H_
#define SRC_RECOVERY_DEBUG_H_

#include <string>

#include "src/recovery/recovery_system.h"

namespace argus {

std::string DumpParticipantTable(const ParticipantTable& pt);
std::string DumpCoordinatorTable(const CoordinatorTable& ct);
std::string DumpObjectTable(const ObjectTable& ot);

// All three tables plus the scan statistics.
std::string DumpRecoveryInfo(const RecoveryInfo& info);

// The log's force-side and read-side counters (group commit, read cache,
// recovery pipeline) in the same fixed layout the benches export via --json.
std::string DumpLogStats(const LogStats& stats);

}  // namespace argus

#endif  // SRC_RECOVERY_DEBUG_H_
