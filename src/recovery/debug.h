// Human-readable renderings of the recovery tables, in the layout the thesis
// uses at each scenario's "algorithm's end" (PT / CT / OT columns).

#ifndef SRC_RECOVERY_DEBUG_H_
#define SRC_RECOVERY_DEBUG_H_

#include <string>

#include "src/recovery/recovery_system.h"

namespace argus {

std::string DumpParticipantTable(const ParticipantTable& pt);
std::string DumpCoordinatorTable(const CoordinatorTable& ct);
std::string DumpObjectTable(const ObjectTable& ot);

// All three tables plus the scan statistics.
std::string DumpRecoveryInfo(const RecoveryInfo& info);

// The log's force-side and read-side counters (group commit, read cache,
// recovery pipeline) in the same fixed layout the benches export via --json.
std::string DumpLogStats(const LogStats& stats);

// Sharded-guardian variant: one "shard N" row group per log, followed by a
// rollup row summing the counters (the ratio fields are recomputed over the
// sums, not averaged). A single-element vector degenerates to DumpLogStats
// plus the rollup.
std::string DumpShardedLogStats(const std::vector<LogStats>& per_shard);

// Sums per-shard counters into one LogStats (the rollup DumpShardedLogStats
// prints; also what the benches feed the metrics registry).
LogStats AggregateLogStats(const std::vector<LogStats>& per_shard);

// Log-pointer overloads: snapshot each shard via StableLog::StatsSnapshot()
// — which folds the ReadCache's live hit/miss/readahead counters in — and
// roll those up. Passing `log.stats()` to the vector forms above silently
// reports zero cache traffic (the cache keeps its own counters until a
// snapshot merges them); these overloads exist so fault-path cache
// efficiency is visible in one authoritative place.
LogStats AggregateLogStats(const std::vector<StableLog*>& logs);
std::string DumpShardedLogStats(const std::vector<StableLog*>& logs);

}  // namespace argus

#endif  // SRC_RECOVERY_DEBUG_H_
