// The recovery system facade (§2.3): the interface between the Argus system
// (the guardian runtime) and stable storage.
//
// One RecoverySystem instance serves one guardian incarnation. Its operations
// are exactly those of §2.3:
//   prepare(aid, MOS) · commit(aid) · abort(aid) · committing(aid, gids) ·
//   done(aid) · recovery() · housekeeping()
// plus write_entry(aid, MOS), the early-prepare operation of §4.4.
//
// Ownership across crashes: the StableLog survives; the heap and the
// RecoverySystem are volatile. A restart takes the surviving log
// (TakeLog() from the dead incarnation), builds a fresh heap, constructs a
// new RecoverySystem around both, and calls Recover().

#ifndef SRC_RECOVERY_RECOVERY_SYSTEM_H_
#define SRC_RECOVERY_RECOVERY_SYSTEM_H_

#include <functional>
#include <memory>
#include <optional>

#include "src/recovery/housekeeping.h"
#include "src/recovery/log_writer.h"
#include "src/recovery/recovery_algorithms.h"

namespace argus {

struct RecoverySystemConfig {
  LogMode mode = LogMode::kHybrid;
  // Creates the stable medium for a fresh log (initial creation and each
  // housekeeping swap).
  std::function<std::unique_ptr<StableMedium>()> medium_factory;
  // When set, a FlushCoordinator coalesces concurrent force requests into
  // shared physical flushes (group commit). Without it every Prepare/Commit/
  // Abort forces the log directly, as before.
  std::optional<FlushCoordinatorConfig> group_commit;
};

// What recovery() returns to the Argus system (§2.3 item 6): enough to resume
// participants (PT) and coordinators (CT), plus the object table.
struct RecoveryInfo {
  ObjectTable ot;
  ParticipantTable pt;
  CoordinatorTable ct;
  std::uint64_t entries_examined = 0;
  std::uint64_t data_entries_read = 0;
  // Participant entries recovered in the prepared-but-undecided state: the
  // actions whose outcome this guardian must learn from its coordinator
  // (query / presumed abort) after rejoining the world.
  std::size_t in_doubt_actions = 0;
};

class RecoverySystem {
 public:
  // Fresh guardian: creates an empty log.
  RecoverySystem(RecoverySystemConfig config, VolatileHeap* heap);

  // Restart after a crash: adopts the surviving log. Call Recover() next.
  RecoverySystem(RecoverySystemConfig config, VolatileHeap* heap,
                 std::unique_ptr<StableLog> log);

  RecoverySystem(const RecoverySystem&) = delete;
  RecoverySystem& operator=(const RecoverySystem&) = delete;

  // ---- The §2.3 operations ----

  Status Prepare(ActionId aid, const ModifiedObjectsSet& mos) {
    return writer_->Prepare(aid, mos);
  }
  Result<ModifiedObjectsSet> WriteEntry(ActionId aid, const ModifiedObjectsSet& mos) {
    return writer_->WriteEntry(aid, mos);
  }
  Status Commit(ActionId aid) { return writer_->Commit(aid); }
  Status Abort(ActionId aid) { return writer_->Abort(aid); }
  Status Committing(ActionId aid, std::vector<GuardianId> participants) {
    return writer_->Committing(aid, std::move(participants));
  }
  Status Done(ActionId aid) { return writer_->Done(aid); }

  // ---- Stage/force split (group commit, see LogWriter) ----

  Result<LogAddress> StagePrepare(ActionId aid, const ModifiedObjectsSet& mos) {
    return writer_->StagePrepare(aid, mos);
  }
  Result<LogAddress> StageCommit(ActionId aid) { return writer_->StageCommit(aid); }
  Result<std::optional<LogAddress>> StageAbort(ActionId aid) { return writer_->StageAbort(aid); }
  Status WaitDurable(LogAddress address) { return writer_->WaitDurable(address); }
  // Epoch-checked variant for callers racing an online log swap (see
  // LogWriter::WaitDurable). Read durability_epoch() in the same critical
  // section as the Stage* call, wait outside it.
  Status WaitDurable(LogAddress address, std::uint64_t epoch) {
    return writer_->WaitDurable(address, epoch);
  }
  std::uint64_t durability_epoch() const { return writer_->durability_epoch(); }

  // Restores the guardian's stable state from the log into the heap and
  // primes the writer (AS, PAT, MT, chain head) to continue.
  Result<RecoveryInfo> Recover();

  // Reorganizes the log (§5), stop-the-world: all three checkpoint phases
  // run back to back. `between_stages` models guardian activity concurrent
  // with the checkpoint; it runs against the old log and is carried over by
  // stage 2.
  Status Housekeep(HousekeepingMethod method,
                   const std::function<void()>& between_stages = {});

  // ---- Online housekeeping (three phases; see housekeeping.h) ----
  //
  // Phase 1 and phase 3 must run under an exclusion that blocks both heap
  // mutation and log staging (the same per-guardian lock the application's
  // action path takes); phase 2 runs concurrently with live traffic. Threads
  // that stage under that exclusion but wait for durability outside it must
  // use the epoch-checked WaitDurable so a swap between their stage and wait
  // resolves cleanly — which requires group commit to be configured.

  // Phase 1: records the marker and copies writer tables (+ a flattened heap
  // snapshot for the snapshot method). Brief — no log writes, no forces.
  Result<CheckpointCapture> CaptureCheckpoint(HousekeepingMethod method);

  // Phase 2: builds the new log's stage-1 prefix from the capture. The
  // commit path keeps staging and forcing on the old log meanwhile.
  Result<std::unique_ptr<CheckpointBuilder>> BuildCheckpoint(CheckpointCapture capture);

  // Phase 3, the swap barrier: drains the coordinator, carries over the
  // post-marker suffix (stage 2), forces the new log, swaps it in, and
  // rewrites pending early-prepared data entries. Bounded by activity since
  // the capture, not by the live set.
  Status CompleteCheckpointSwap(std::unique_ptr<CheckpointBuilder> builder);

  // Crash-injection hook for the checkpoint path. Called at named boundary
  // steps — "capture" (before CaptureCheckpoint does any work), "build"
  // (before stage 1 runs), then inside CompleteCheckpointSwap: "quiesced",
  // "stage2" (with the entry index), "forced", "swapped", "rewritten".
  // Returning false abandons the checkpoint at that point with an IoError,
  // leaving the pre-swap log installed for steps before "swapped" and the
  // post-swap log after. Used by the crash-matrix tests and by the concurrent
  // driver's CrashController, whose coherent world-crash needs a mid-flight
  // checkpoint to abandon itself at the next boundary instead of racing the
  // teardown.
  using SwapCrashHook = std::function<bool(const char* step, std::uint64_t index)>;
  void SetSwapCrashHook(SwapCrashHook hook) { swap_crash_hook_ = std::move(hook); }

  // ---- Plumbing ----

  StableLog& log() { return *log_; }
  const StableLog& log() const { return *log_; }
  LogWriter& writer() { return *writer_; }
  VolatileHeap& heap() { return *heap_; }
  LogMode mode() const { return config_.mode; }
  // Null when group commit is not configured.
  FlushCoordinator* coordinator() { return coordinator_.get(); }

  // Crash support: extracts the (stable) log from this incarnation.
  std::unique_ptr<StableLog> TakeLog() { return std::move(log_); }

 private:
  RecoverySystemConfig config_;
  VolatileHeap* heap_;
  std::unique_ptr<StableLog> log_;
  // The previous log, kept alive for one checkpoint generation: epoch-checked
  // waiters that lose the race with a swap never dereference it, but holding
  // it makes a latent stale access a visible bug instead of a use-after-free.
  std::unique_ptr<StableLog> retired_log_;
  std::unique_ptr<FlushCoordinator> coordinator_;
  std::unique_ptr<LogWriter> writer_;
  SwapCrashHook swap_crash_hook_;
};

}  // namespace argus

#endif  // SRC_RECOVERY_RECOVERY_SYSTEM_H_
