// The recovery system facade (§2.3): the interface between the Argus system
// (the guardian runtime) and stable storage.
//
// One RecoverySystem instance serves one guardian incarnation. Its operations
// are exactly those of §2.3:
//   prepare(aid, MOS) · commit(aid) · abort(aid) · committing(aid, gids) ·
//   done(aid) · recovery() · housekeeping()
// plus write_entry(aid, MOS), the early-prepare operation of §4.4.
//
// Ownership across crashes: the StableLog(s) and the shard map survive; the
// heap and the RecoverySystem are volatile. A restart takes the surviving
// state (TakeSurvivingState() from the dead incarnation), builds a fresh
// heap, constructs a new RecoverySystem around both, and calls Recover().
//
// Sharded mode (log_shards > 1, hybrid only): the guardian's stable state is
// partitioned across N logs by a durable shard map (src/stable/shard_map.h),
// recovered before any log is read. Each shard gets its own FlushCoordinator
// force queue when group commit is configured, and recovery runs the
// per-shard parallel algorithm (RecoverShardedHybridLog). Housekeeping /
// checkpointing is not yet supported with shards (it returns InvalidArgument)
// — the swap barrier would need to quiesce every shard epoch at once.

#ifndef SRC_RECOVERY_RECOVERY_SYSTEM_H_
#define SRC_RECOVERY_RECOVERY_SYSTEM_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/recovery/housekeeping.h"
#include "src/recovery/log_writer.h"
#include "src/recovery/recovery_algorithms.h"
#include "src/residency/residency_manager.h"
#include "src/stable/replicated_store.h"
#include "src/stable/shard_map.h"

namespace argus {

struct RecoverySystemConfig {
  LogMode mode = LogMode::kHybrid;
  // Creates the stable medium for a fresh log (initial creation and each
  // housekeeping swap). In sharded mode it is called once per shard, plus
  // once for the shard map's own medium.
  std::function<std::unique_ptr<StableMedium>()> medium_factory;
  // When set, a FlushCoordinator coalesces concurrent force requests into
  // shared physical flushes (group commit). Without it every Prepare/Commit/
  // Abort forces the log directly, as before. Sharded mode creates one
  // coordinator per shard — N independent force queues.
  std::optional<FlushCoordinatorConfig> group_commit;

  // ---- Sharding (hybrid only) ----
  // Number of log shards. 1 is the classic single-log guardian.
  std::uint32_t log_shards = 1;
  // Salt for the shard map's routing hash (fresh guardians only; restarts
  // recover the salt from the durable map).
  std::uint64_t shard_salt = 0;
  // Concurrent shard recovery workers: 0 = one worker per shard.
  std::size_t shard_recovery_workers = 0;

  // ---- Replicated stable storage ----
  // Replica count the medium factory is expected to build (N-way
  // ReplicatedStableMedium). The factory is supplied by the caller, so this
  // is a record of the world shape for drivers and tests, not an input to
  // medium construction — SimWorld::MakeMediumFactory keeps the two in sync.
  std::uint32_t replicas = 2;
  // When set, every log whose medium is a ReplicatedStableMedium gets a
  // ReplicaRepairService (background thread) scrubbing decayed/diverged
  // replica pages concurrently with commits. Services are per-incarnation:
  // started by the constructors, stopped before the logs are surrendered
  // (TakeLog/TakeSurvivingState, checkpoint swap, destruction).
  std::optional<ReplicaRepairConfig> repair;

  // ---- Beyond-RAM residency ----
  // mem_budget_bytes == 0 keeps the classic all-resident heap; > 0 builds a
  // ResidencyManager over the shard logs (see src/residency). The manager is
  // per-incarnation like the writer; callers drive eviction passes through a
  // ResidencyService or directly via residency()->RunEvictionPass().
  ResidencyConfig residency;
};

// What recovery() returns to the Argus system (§2.3 item 6): enough to resume
// participants (PT) and coordinators (CT), plus the object table.
struct RecoveryInfo {
  ObjectTable ot;
  ParticipantTable pt;
  CoordinatorTable ct;
  std::uint64_t entries_examined = 0;
  std::uint64_t data_entries_read = 0;
  // Participant entries recovered in the prepared-but-undecided state: the
  // actions whose outcome this guardian must learn from its coordinator
  // (query / presumed abort) after rejoining the world.
  std::size_t in_doubt_actions = 0;
};

class RecoverySystem {
 public:
  // The stable state that survives a crash: the log shards plus (sharded
  // mode) the shard map store. For a single-shard guardian `shard_map` is
  // null and `logs` has one element.
  struct SurvivingState {
    std::vector<std::unique_ptr<StableLog>> logs;
    std::unique_ptr<ShardMapStore> shard_map;
  };

  // Fresh guardian: creates empty log(s) (and the shard map in sharded mode).
  RecoverySystem(RecoverySystemConfig config, VolatileHeap* heap);

  // Restart after a crash: adopts the surviving single log. Call Recover()
  // next. Single-shard only.
  RecoverySystem(RecoverySystemConfig config, VolatileHeap* heap,
                 std::unique_ptr<StableLog> log);

  // Restart after a crash, any shard count: adopts the surviving state.
  RecoverySystem(RecoverySystemConfig config, VolatileHeap* heap, SurvivingState surviving);

  RecoverySystem(const RecoverySystem&) = delete;
  RecoverySystem& operator=(const RecoverySystem&) = delete;

  // ---- The §2.3 operations ----

  Status Prepare(ActionId aid, const ModifiedObjectsSet& mos) {
    return writer_->Prepare(aid, mos);
  }
  Result<ModifiedObjectsSet> WriteEntry(ActionId aid, const ModifiedObjectsSet& mos) {
    return writer_->WriteEntry(aid, mos);
  }
  Status Commit(ActionId aid) { return writer_->Commit(aid); }
  Status Abort(ActionId aid) { return writer_->Abort(aid); }
  Status Committing(ActionId aid, std::vector<GuardianId> participants) {
    return writer_->Committing(aid, std::move(participants));
  }
  Status Done(ActionId aid) { return writer_->Done(aid); }

  // ---- Stage/force split (group commit, see LogWriter) ----

  Result<LogAddress> StagePrepare(ActionId aid, const ModifiedObjectsSet& mos) {
    return writer_->StagePrepare(aid, mos);
  }
  Result<LogAddress> StageCommit(ActionId aid) { return writer_->StageCommit(aid); }
  Result<std::optional<LogAddress>> StageAbort(ActionId aid) { return writer_->StageAbort(aid); }
  Status WaitDurable(LogAddress address) { return writer_->WaitDurable(address); }
  // Epoch-checked variant for callers racing an online log swap (see
  // LogWriter::WaitDurable). Read durability_epoch() in the same critical
  // section as the Stage* call, wait outside it.
  Status WaitDurable(LogAddress address, std::uint64_t epoch) {
    return writer_->WaitDurable(address, epoch);
  }
  std::uint64_t durability_epoch() const { return writer_->durability_epoch(); }

  // Sharded stage/force: a prepare stages marks on every touched shard; the
  // caller must WaitDurable those marks BEFORE StageCommitSharded (the
  // cross-shard commit atomicity protocol — see LogWriter).
  Result<StagedOutcome> StagePrepareSharded(ActionId aid, const ModifiedObjectsSet& mos) {
    return writer_->StagePrepareSharded(aid, mos);
  }
  Result<StagedOutcome> StageCommitSharded(ActionId aid) {
    return writer_->StageCommitSharded(aid);
  }
  Result<StagedOutcome> StageAbortSharded(ActionId aid) {
    return writer_->StageAbortSharded(aid);
  }
  Status WaitDurable(const StagedOutcome& staged) { return writer_->WaitDurable(staged); }

  // Restores the guardian's stable state from the log(s) into the heap and
  // primes the writer (AS, PAT, MT, chain heads) to continue.
  Result<RecoveryInfo> Recover();

  // Reorganizes the log (§5), stop-the-world: all three checkpoint phases
  // run back to back. `between_stages` models guardian activity concurrent
  // with the checkpoint; it runs against the old log and is carried over by
  // stage 2. InvalidArgument with shards.
  Status Housekeep(HousekeepingMethod method,
                   const std::function<void()>& between_stages = {});

  // ---- Online housekeeping (three phases; see housekeeping.h) ----
  //
  // Phase 1 and phase 3 must run under an exclusion that blocks both heap
  // mutation and log staging (the same per-guardian lock the application's
  // action path takes); phase 2 runs concurrently with live traffic. Threads
  // that stage under that exclusion but wait for durability outside it must
  // use the epoch-checked WaitDurable so a swap between their stage and wait
  // resolves cleanly — which requires group commit to be configured.

  // Phase 1: records the marker and copies writer tables (+ a flattened heap
  // snapshot for the snapshot method). Brief — no log writes, no forces.
  Result<CheckpointCapture> CaptureCheckpoint(HousekeepingMethod method);

  // Phase 2: builds the new log's stage-1 prefix from the capture. The
  // commit path keeps staging and forcing on the old log meanwhile.
  Result<std::unique_ptr<CheckpointBuilder>> BuildCheckpoint(CheckpointCapture capture);

  // Phase 3, the swap barrier: drains the coordinator, carries over the
  // post-marker suffix (stage 2), forces the new log, swaps it in, and
  // rewrites pending early-prepared data entries. Bounded by activity since
  // the capture, not by the live set.
  Status CompleteCheckpointSwap(std::unique_ptr<CheckpointBuilder> builder);

  // Crash-injection hook for the checkpoint path. Called at named boundary
  // steps — "capture" (before CaptureCheckpoint does any work), "build"
  // (before stage 1 runs), then inside CompleteCheckpointSwap: "quiesced",
  // "stage2" (with the entry index), "forced", "swapped", "rewritten".
  // Returning false abandons the checkpoint at that point with an IoError,
  // leaving the pre-swap log installed for steps before "swapped" and the
  // post-swap log after. Used by the crash-matrix tests and by the concurrent
  // driver's CrashController, whose coherent world-crash needs a mid-flight
  // checkpoint to abandon itself at the next boundary instead of racing the
  // teardown.
  using SwapCrashHook = std::function<bool(const char* step, std::uint64_t index)>;
  void SetSwapCrashHook(SwapCrashHook hook) { swap_crash_hook_ = std::move(hook); }

  // ---- Plumbing ----

  StableLog& log() { return *logs_[0]; }
  const StableLog& log() const { return *logs_[0]; }
  std::uint32_t shard_count() const { return static_cast<std::uint32_t>(logs_.size()); }
  StableLog& shard_log(std::uint32_t shard) { return *logs_[shard]; }
  LogWriter& writer() { return *writer_; }
  VolatileHeap& heap() { return *heap_; }
  LogMode mode() const { return config_.mode; }
  // Null when group commit is not configured. The no-arg form is shard 0.
  FlushCoordinator* coordinator() { return coordinators_.empty() ? nullptr : coordinators_[0].get(); }
  FlushCoordinator* coordinator(std::uint32_t shard) {
    return shard < coordinators_.size() ? coordinators_[shard].get() : nullptr;
  }
  // Coherent crash: fail every shard's force queue at once.
  void CrashCoordinators();
  // Null for single-shard guardians.
  ShardMapStore* shard_map() { return shard_map_.get(); }
  const ShardRouter* shard_router() const { return router_.get(); }
  // The background repair service scrubbing shard `shard`'s medium; null when
  // config.repair is unset or that shard's medium is not replicated.
  ReplicaRepairService* repair_service(std::uint32_t shard = 0) {
    return shard < repair_services_.size() ? repair_services_[shard].get() : nullptr;
  }
  // Null unless config.residency.mem_budget_bytes > 0.
  ResidencyManager* residency() { return residency_.get(); }

  // Crash support: extracts the (stable) log from this incarnation.
  // Single-shard only; sharded guardians use TakeSurvivingState().
  std::unique_ptr<StableLog> TakeLog();
  SurvivingState TakeSurvivingState();

 private:
  void InitWriterAndCoordinators();
  // Builds the ResidencyManager over the current logs (no-op when the budget
  // is zero).
  void InitResidency();
  // Spawns one ReplicaRepairService per replicated log medium (no-op unless
  // config_.repair is set) / stops and discards them. Every path that
  // detaches a log from this incarnation must stop first.
  void StartRepairServices();
  void StopRepairServices();

  RecoverySystemConfig config_;
  VolatileHeap* heap_;
  std::vector<std::unique_ptr<StableLog>> logs_;
  // The previous log, kept alive for one checkpoint generation: epoch-checked
  // waiters that lose the race with a swap never dereference it, but holding
  // it makes a latent stale access a visible bug instead of a use-after-free.
  std::unique_ptr<StableLog> retired_log_;
  std::unique_ptr<ShardMapStore> shard_map_;
  std::unique_ptr<ShardRouter> router_;
  std::vector<std::unique_ptr<FlushCoordinator>> coordinators_;
  std::unique_ptr<LogWriter> writer_;
  // Holds raw pointers into logs_; reset before the logs are surrendered.
  std::unique_ptr<ResidencyManager> residency_;
  SwapCrashHook swap_crash_hook_;
  // Set when a sharded restart failed to recover the shard map: the writer is
  // left unconstructed and Recover() reports this instead. The surviving
  // state can still be reclaimed with TakeSurvivingState() for a retry.
  Status deferred_error_ = Status::Ok();
  // Declared last: destroyed (and therefore stopped) before the logs whose
  // media the repair threads touch.
  std::vector<std::unique_ptr<ReplicaRepairService>> repair_services_;
};

}  // namespace argus

#endif  // SRC_RECOVERY_RECOVERY_SYSTEM_H_
