// Housekeeping (chapter 5): checkpointing a guardian's stable state into a
// fresh, smaller log so recovery needs to look at a bounded amount of log.
//
// Both methods run in two stages around a housekeeping marker (§5.1.1):
//
//  Stage 1 builds the checkpoint from everything before the marker:
//   - compaction (§5.1): replays the OLD LOG backward exactly like recovery,
//     writing surviving versions to the new log;
//   - snapshot (§5.2): traverses the VOLATILE stable state from the stable
//     variables, writing data entries for each reachable object (mutex
//     versions are taken from the old log via the MT, because the volatile
//     mutex value may be newer than the last *prepared* version that recovery
//     is required to restore).
//  The checkpointed committed state is linked together by a committed_ss
//  entry (the CSSL). Prepared-but-undecided work survives as prepared /
//  prepared_data / committing entries chained AFTER the committed_ss entry,
//  so recovery sees tentative versions first and bases second, exactly as in
//  an ordinary log.
//
//  Stage 2 copies the outcome entries (and their data entries) written to the
//  old log after the marker. The caller may perform ordinary log activity
//  between the stages — that activity lands after the marker and is carried
//  over by stage 2.
//
// Data entries of actions that have not prepared by swap time are NOT copied;
// the recovery system rewrites them into the new log after the swap
// (LogWriter::RewritePendingAfterLogSwap).

#ifndef SRC_RECOVERY_HOUSEKEEPING_H_
#define SRC_RECOVERY_HOUSEKEEPING_H_

#include <functional>
#include <map>
#include <memory>

#include "src/log/stable_log.h"
#include "src/object/heap.h"
#include "src/recovery/tables.h"

namespace argus {

enum class HousekeepingMethod {
  kCompaction,
  kSnapshot,
};

struct HousekeepingStats {
  std::uint64_t old_entries_processed = 0;  // stage-1 chain/traversal work
  std::uint64_t data_entries_read = 0;      // old data entries dereferenced
  std::uint64_t new_entries_written = 0;
  std::uint64_t objects_checkpointed = 0;   // CSSL size
  std::uint64_t stage2_entries_copied = 0;
};

struct HousekeepingOutcome {
  std::unique_ptr<StableLog> new_log;
  MutexTable new_mt;
  LogAddress new_last_outcome = LogAddress::Null();
  // Snapshot only: the accessibility set discovered during traversal
  // (intersect with the writer's AS per §5.2). Compaction leaves the AS
  // untouched.
  std::optional<AccessibilitySet> new_as;
  HousekeepingStats stats;
};

struct HousekeepingInputs {
  StableLog* old_log = nullptr;
  VolatileHeap* heap = nullptr;
  const PreparedActionsTable* pat = nullptr;
  const MutexTable* mt = nullptr;                   // old MT (snapshot)
  // Coordinators between committing and done (snapshot re-emits them).
  const std::map<ActionId, std::vector<GuardianId>>* open_coordinators = nullptr;
  LogAddress old_chain_head = LogAddress::Null();   // writer's last outcome
  std::function<std::unique_ptr<StableMedium>()> medium_factory;
};

// Runs housekeeping. `between_stages` (may be empty) is invoked after stage 1
// with the old log still live — it models the guardian activity that the
// thesis allows concurrently with the checkpoint; anything it writes to the
// old log is picked up by stage 2.
Result<HousekeepingOutcome> RunHousekeeping(HousekeepingMethod method,
                                            const HousekeepingInputs& inputs,
                                            const std::function<void()>& between_stages);

}  // namespace argus

#endif  // SRC_RECOVERY_HOUSEKEEPING_H_
