// Housekeeping (chapter 5): checkpointing a guardian's stable state into a
// fresh, smaller log so recovery needs to look at a bounded amount of log.
//
// Both methods run in two stages around a housekeeping marker (§5.1.1):
//
//  Stage 1 builds the checkpoint from everything before the marker:
//   - compaction (§5.1): replays the OLD LOG backward exactly like recovery,
//     writing surviving versions to the new log;
//   - snapshot (§5.2): traverses the VOLATILE stable state from the stable
//     variables, writing data entries for each reachable object (mutex
//     versions are taken from the old log via the MT, because the volatile
//     mutex value may be newer than the last *prepared* version that recovery
//     is required to restore).
//  The checkpointed committed state is linked together by a committed_ss
//  entry (the CSSL). Prepared-but-undecided work survives as prepared /
//  prepared_data / committing entries chained AFTER the committed_ss entry,
//  so recovery sees tentative versions first and bases second, exactly as in
//  an ordinary log.
//
//  Stage 2 copies the outcome entries (and their data entries) written to the
//  old log after the marker. The caller may perform ordinary log activity
//  between the stages — that activity lands after the marker and is carried
//  over by stage 2.
//
// Data entries of actions that have not prepared by swap time are NOT copied;
// the recovery system rewrites them into the new log after the swap
// (LogWriter::RewritePendingAfterLogSwap).
//
// Online decomposition. The two-stage design is exposed as three phases so
// the expensive part can run off the commit path (§5.1.1 anticipates this:
// "the guardian may continue processing" between the stages):
//
//   1. CaptureCheckpoint       — under writer exclusion, brief: records the
//      marker and copies the writer tables; for the snapshot method it also
//      flattens the reachable stable state (a consistent copy of the heap).
//   2. CheckpointBuilder::BuildStageOne — concurrent with live staging and
//      forcing on the old log. Reads only the capture plus old-log entries at
//      addresses recorded before the marker (the log is append-only, so those
//      frames are immutable).
//   3. CheckpointBuilder::Finish — under writer exclusion again (the swap
//      barrier): copies post-marker activity and forces the new log. Its cost
//      is O(activity since capture), not O(live set) — that is the whole
//      point of the decomposition.
//
// RunHousekeeping runs all three phases back to back (the stop-the-world
// form used by serial callers).

#ifndef SRC_RECOVERY_HOUSEKEEPING_H_
#define SRC_RECOVERY_HOUSEKEEPING_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/log/stable_log.h"
#include "src/object/heap.h"
#include "src/recovery/tables.h"

namespace argus {

enum class HousekeepingMethod {
  kCompaction,
  kSnapshot,
};

struct HousekeepingStats {
  std::uint64_t old_entries_processed = 0;  // stage-1 chain/traversal work
  std::uint64_t data_entries_read = 0;      // old data entries dereferenced
  std::uint64_t new_entries_written = 0;
  std::uint64_t objects_checkpointed = 0;   // CSSL size
  std::uint64_t stage2_entries_copied = 0;
};

struct HousekeepingOutcome {
  std::unique_ptr<StableLog> new_log;
  MutexTable new_mt;
  LogAddress new_last_outcome = LogAddress::Null();
  // Snapshot only: the accessibility set discovered during traversal
  // (intersect with the writer's AS per §5.2). Compaction leaves the AS
  // untouched.
  std::optional<AccessibilitySet> new_as;
  HousekeepingStats stats;
};

struct HousekeepingInputs {
  StableLog* old_log = nullptr;
  VolatileHeap* heap = nullptr;
  const PreparedActionsTable* pat = nullptr;
  const MutexTable* mt = nullptr;                   // old MT (snapshot)
  // Coordinators between committing and done (snapshot re-emits them).
  const std::map<ActionId, std::vector<GuardianId>>* open_coordinators = nullptr;
  LogAddress old_chain_head = LogAddress::Null();   // writer's last outcome
  std::function<std::unique_ptr<StableMedium>()> medium_factory;
};

// Phase-1 output: everything stage 1 needs, decoupled from the live heap and
// writer tables so they may keep changing while the checkpoint is built.
struct CheckpointCapture {
  HousekeepingMethod method = HousekeepingMethod::kSnapshot;
  std::uint64_t marker = 0;                         // old-log end offset
  LogAddress old_chain_head = LogAddress::Null();
  PreparedActionsTable pat;
  MutexTable mt;
  std::map<ActionId, std::vector<GuardianId>> open_coordinators;

  // Snapshot method only: a flattened copy of the reachable stable state.
  struct SnapshotObject {
    Uid uid;
    ObjectKind kind = ObjectKind::kAtomic;
    std::vector<std::byte> base;              // atomic: flattened base version
    std::optional<ActionId> prepared_locker;  // prepared, undecided writer
    std::vector<std::byte> prepared_current;  // its flattened tentative version
  };
  std::vector<SnapshotObject> objects;
  std::optional<AccessibilitySet> traversal_as;
};

// Phase 1. The caller must exclude heap mutation and log staging for the
// duration of the call (the capture pause). Cost: O(live set) copies for the
// snapshot method, O(tables) for compaction — no log writes, no forces.
CheckpointCapture CaptureCheckpoint(HousekeepingMethod method,
                                    const HousekeepingInputs& inputs);

namespace internal {
class Housekeeper;
}

// Phases 2 and 3 over a capture. Single-owner, single-thread use: one thread
// calls BuildStageOne then Finish; only the timing of other threads' log
// activity relative to those calls is concurrent.
class CheckpointBuilder {
 public:
  CheckpointBuilder(CheckpointCapture capture, const StableLog* old_log,
                    std::function<std::unique_ptr<StableMedium>()> medium_factory);
  ~CheckpointBuilder();

  CheckpointBuilder(const CheckpointBuilder&) = delete;
  CheckpointBuilder& operator=(const CheckpointBuilder&) = delete;

  // Phase 2 (stage 1 + the checkpoint tail). Safe to run while other threads
  // stage and force entries on the old log.
  Status BuildStageOne();

  // Optional phase 2.5: incremental stage-2 passes, also safe against live
  // old-log appends (staged entries are immutable; the read cursor locks
  // internally). Each pass copies and forces the suffix accumulated since the
  // previous one, so the barrier's final pass in Finish covers only the tail
  // staged since the last catch-up — this is what keeps the swap pause
  // proportional to recent activity rather than to build duration.
  Status CatchUp();

  // Phase 3 (stage 2 + force of the new log). The caller must exclude log
  // staging (the swap barrier) so the post-marker suffix is frozen.
  // `stage2_hook`, when set, is invoked before each stage-2 entry copy with
  // the running copy index; returning false abandons the checkpoint with an
  // error (crash-injection tests use this to stop mid-stage-2 — the old log
  // is untouched, so the "crash" lands in the pre-swap state).
  Result<HousekeepingOutcome> Finish(
      const std::function<bool(std::uint64_t)>& stage2_hook = {});

  std::uint64_t marker() const;

 private:
  std::unique_ptr<internal::Housekeeper> impl_;
};

// Runs housekeeping stop-the-world. `between_stages` (may be empty) is
// invoked after stage 1 with the old log still live — it models the guardian
// activity that the thesis allows concurrently with the checkpoint; anything
// it writes to the old log is picked up by stage 2.
Result<HousekeepingOutcome> RunHousekeeping(HousekeepingMethod method,
                                            const HousekeepingInputs& inputs,
                                            const std::function<void()>& between_stages);

}  // namespace argus

#endif  // SRC_RECOVERY_HOUSEKEEPING_H_
