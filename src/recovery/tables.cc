#include "src/recovery/tables.h"

namespace argus {

const char* ParticipantStateName(ParticipantState state) {
  switch (state) {
    case ParticipantState::kPrepared:
      return "prepared";
    case ParticipantState::kCommitted:
      return "committed";
    case ParticipantState::kAborted:
      return "aborted";
  }
  return "?";
}

const char* CoordinatorPhaseName(CoordinatorPhase phase) {
  switch (phase) {
    case CoordinatorPhase::kCommitting:
      return "committing";
    case CoordinatorPhase::kDone:
      return "done";
  }
  return "?";
}

const char* ObjectRecoveryStateName(ObjectRecoveryState state) {
  switch (state) {
    case ObjectRecoveryState::kPrepared:
      return "prepared";
    case ObjectRecoveryState::kRestored:
      return "restored";
  }
  return "?";
}

}  // namespace argus
