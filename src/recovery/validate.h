// Post-recovery invariant validation.
//
// After recovery() returns, the restored heap must satisfy structural
// invariants that the algorithms promise but that no single test asserts
// globally. ValidateRecoveredState checks them all and reports every
// violation:
//
//  V1  no value anywhere still holds a uid placeholder (the §3.4.3 final
//      pass completed);
//  V2  every object reference points at an object that lives in this heap;
//  V3  an object holds a tentative (current) version iff some action holds
//      its write lock, and that action is PREPARED in the PT;
//  V4  no mutex object is seized (possession never survives a crash);
//  V5  the uid counter is past every recovered uid (no reuse, §3.2);
//  V6  every OT entry is in the restored state with a live object.

#ifndef SRC_RECOVERY_VALIDATE_H_
#define SRC_RECOVERY_VALIDATE_H_

#include <string>
#include <vector>

#include "src/object/heap.h"
#include "src/recovery/recovery_system.h"

namespace argus {

struct ValidationReport {
  std::vector<std::string> violations;

  bool clean() const { return violations.empty(); }
  std::string ToString() const;
};

ValidationReport ValidateRecoveredState(const VolatileHeap& heap, const RecoveryInfo& info);

}  // namespace argus

#endif  // SRC_RECOVERY_VALIDATE_H_
