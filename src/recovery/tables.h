// The bookkeeping tables of chapters 3-5.
//
//  OT  — object table: uid → object recovery state + volatile object. The
//        state `prepared` means "the tentative (current) version has been
//        restored; the latest committed version is still owed as base".
//        For mutex objects the OT also remembers the log address of the data
//        entry that supplied the restored version, implementing the
//        latest-version rule of §4.4.
//  PT  — participant action table: aid → prepared | committed | aborted.
//  CT  — coordinator action table: aid → committing(gids) | done.
//  AS  — accessibility set: uids known accessible from the stable variables.
//  PAT — prepared actions table: aids that are prepared and undecided.
//  MT  — mutex table (§5.2): uid → log address of the latest prepared
//        version of each mutex object, maintained across normal operation
//        for the snapshot housekeeper.

#ifndef SRC_RECOVERY_TABLES_H_
#define SRC_RECOVERY_TABLES_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/ids.h"
#include "src/object/recoverable_object.h"

namespace argus {

enum class ObjectRecoveryState {
  kPrepared,  // current version restored; base still owed
  kRestored,  // fully restored
};

struct ObjectTableEntry {
  ObjectRecoveryState state = ObjectRecoveryState::kRestored;
  RecoverableObject* object = nullptr;
  // For mutex objects: address of the data entry whose version is installed.
  LogAddress mutex_address = LogAddress::Null();
  // Address of the data entry that supplied the committed base version, when
  // recovery restored it from a directly-addressed frame. Primes the
  // residency subsystem's stable-address slot so recovered objects are
  // immediately eviction-eligible. Null when the base came from an entry
  // recovery does not re-address (e.g. a chained base_committed walk).
  LogAddress base_address = LogAddress::Null();
};

using ObjectTable = std::unordered_map<Uid, ObjectTableEntry>;

enum class ParticipantState {
  kPrepared,
  kCommitted,
  kAborted,
};

using ParticipantTable = std::unordered_map<ActionId, ParticipantState>;

enum class CoordinatorPhase {
  kCommitting,
  kDone,
};

struct CoordinatorTableEntry {
  CoordinatorPhase phase = CoordinatorPhase::kCommitting;
  std::vector<GuardianId> participants;  // meaningful while committing
};

using CoordinatorTable = std::unordered_map<ActionId, CoordinatorTableEntry>;

using AccessibilitySet = std::unordered_set<Uid>;
using PreparedActionsTable = std::unordered_set<ActionId>;
using MutexTable = std::unordered_map<Uid, LogAddress>;

const char* ParticipantStateName(ParticipantState state);
const char* CoordinatorPhaseName(CoordinatorPhase phase);
const char* ObjectRecoveryStateName(ObjectRecoveryState state);

}  // namespace argus

#endif  // SRC_RECOVERY_TABLES_H_
