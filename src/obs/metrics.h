// Process-wide metrics registry: cheap thread-safe counters, gauges, and
// fixed-bucket latency histograms, registered by name (with optional labels)
// and exportable as one JSON snapshot.
//
// Design rules, in tension and resolved in this order:
//  1. Hot paths stay hot. A Counter::Add is one relaxed atomic add behind one
//     relaxed flag load; handles are resolved once (registry mutex) and cached
//     by the instrumented site, so steady state never touches a map or lock.
//  2. Snapshots are advisory. Counters tick with relaxed ordering, so a JSON
//     snapshot taken while writers run is a consistent-enough view for
//     dashboards and benches, not a linearizable cut. Tests that assert exact
//     values quiesce the writers first (join threads), as they already do for
//     the per-instance stats structs.
//  3. Handles are immortal. The registry never deallocates a metric, so a
//     cached Counter* outlives every instrumented object; re-registering the
//     same name returns the same handle.
//
// Two disable paths (the ≤5% bench_log_ops budget):
//  - runtime: SetEnabled(false) turns Add/Set/Record into a flag test;
//  - compile time: -DARGUS_OBS_DISABLED compiles the bodies out entirely
//    (cmake -DARGUS_OBS=OFF).

#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>

namespace argus::obs {

namespace detail {
// Single global switch for every metric and trace emission point.
extern std::atomic<bool> g_enabled;
}  // namespace detail

inline bool Enabled() {
#ifdef ARGUS_OBS_DISABLED
  return false;
#else
  return detail::g_enabled.load(std::memory_order_relaxed);
#endif
}

// Runtime toggle. Disabling does not clear accumulated values; it stops new
// ones. Returns the previous state (benches flip it around a hot loop).
bool SetEnabled(bool enabled);

// A monotone event count.
class Counter {
 public:
  void Add(std::uint64_t delta) {
#ifndef ARGUS_OBS_DISABLED
    if (Enabled()) {
      value_.fetch_add(delta, std::memory_order_relaxed);
    }
#else
    (void)delta;
#endif
  }
  void Increment() { Add(1); }
  std::uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// A point-in-time double (sizes, rates, ratios). Last write wins.
class Gauge {
 public:
  void Set(double value) {
#ifndef ARGUS_OBS_DISABLED
    if (Enabled()) {
      value_.store(value, std::memory_order_relaxed);
    }
#else
    (void)value;
#endif
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// A fixed-bucket histogram on power-of-two boundaries: bucket 0 counts value
// 0, bucket i counts [2^(i-1), 2^i). 48 buckets cover [0, 2^47) — enough for
// any nanosecond latency (≈39 h) or batch size this system produces; larger
// values clamp into the last bucket. Recording is wait-free (two relaxed adds
// plus a CAS-free max update); percentiles are bucket upper bounds, which is
// the right fidelity for a registry snapshot — benches that need exact order
// statistics keep their sample vectors and feed this as a mirror.
class Histogram {
 public:
  static constexpr int kBuckets = 48;

  void Record(std::uint64_t value) {
#ifndef ARGUS_OBS_DISABLED
    if (!Enabled()) {
      return;
    }
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen && !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
    }
#else
    (void)value;
#endif
  }

  std::uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t Max() const { return max_.load(std::memory_order_relaxed); }
  std::uint64_t BucketCount(int index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }

  // Upper bound of the bucket holding the p-th percentile sample (p in
  // [0, 100]); 0 when empty.
  std::uint64_t ApproxPercentile(double p) const;

  // Inclusive upper bound of bucket `index` (0 for bucket 0).
  static std::uint64_t BucketUpperBound(int index);

  void Reset();

 private:
  static int BucketIndex(std::uint64_t value);

  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

// Formats "name{k1=v1,k2=v2}" — the registry's labeling convention. Metrics
// with different labels are distinct entries under the same base name.
std::string Labeled(std::string_view name,
                    std::initializer_list<std::pair<std::string_view, std::string_view>> labels);

// The process-wide registry. Lookup is by full (labeled) name; the maps are
// ordered so JSON snapshots are deterministic.
class Registry {
 public:
  static Registry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  // One JSON object: {"schema":"argus.metrics.v1","counters":{...},
  // "gauges":{...},"histograms":{name:{count,sum,max,p50,p99,p999,
  // buckets:[[upper,count],...]}}}. Zero-valued counters/gauges and empty
  // histograms are included — a registered name is part of the contract.
  std::string ToJson() const;

  // Zeroes every registered metric (handles stay valid). Benches call this
  // between phases so per-phase snapshots do not bleed into each other.
  void ResetAll();

 private:
  Registry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Shorthands for the global registry (resolve once, cache the pointer).
inline Counter* GetCounter(const std::string& name) {
  return Registry::Global().GetCounter(name);
}
inline Gauge* GetGauge(const std::string& name) { return Registry::Global().GetGauge(name); }
inline Histogram* GetHistogram(const std::string& name) {
  return Registry::Global().GetHistogram(name);
}

}  // namespace argus::obs

#endif  // SRC_OBS_METRICS_H_
