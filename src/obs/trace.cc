#include "src/obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <memory>
#include <mutex>

#include "src/common/result.h"

namespace argus::obs {

namespace {

// One thread's ring. Slots are relaxed atomics so a best-effort cross-thread
// snapshot of a live ring is memory-safe (possibly torn) instead of UB; the
// owning thread is the only writer, so its own view is always exact.
struct Ring {
  struct Slot {
    std::atomic<const char*> name{nullptr};
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint8_t> kind{0};
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
    std::atomic<std::uint64_t> c{0};
  };

  std::uint32_t tid = 0;
  std::uint64_t next_seq = 0;  // owner-thread only
  std::atomic<std::uint64_t> head{0};
  std::atomic<bool> retired{false};  // owner thread exited
  Slot slots[kFlightRecorderCapacity];

  void Append(const char* name, EventKind kind, std::uint64_t a, std::uint64_t b,
              std::uint64_t c, std::uint64_t seq) {
    std::uint64_t h = head.load(std::memory_order_relaxed);
    Slot& s = slots[h % kFlightRecorderCapacity];
    s.name.store(name, std::memory_order_relaxed);
    s.seq.store(seq, std::memory_order_relaxed);
    s.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
    s.a.store(a, std::memory_order_relaxed);
    s.b.store(b, std::memory_order_relaxed);
    s.c.store(c, std::memory_order_relaxed);
    head.store(h + 1, std::memory_order_release);
  }

  void SnapshotInto(std::vector<TraceEvent>& out) const {
    std::uint64_t h = head.load(std::memory_order_acquire);
    std::uint64_t n = std::min<std::uint64_t>(h, kFlightRecorderCapacity);
    for (std::uint64_t i = h - n; i < h; ++i) {
      const Slot& s = slots[i % kFlightRecorderCapacity];
      TraceEvent e;
      e.name = s.name.load(std::memory_order_relaxed);
      e.seq = s.seq.load(std::memory_order_relaxed);
      e.tid = tid;
      e.kind = static_cast<EventKind>(s.kind.load(std::memory_order_relaxed));
      e.a = s.a.load(std::memory_order_relaxed);
      e.b = s.b.load(std::memory_order_relaxed);
      e.c = s.c.load(std::memory_order_relaxed);
      if (e.name != nullptr) {
        out.push_back(e);
      }
    }
  }

  void Clear() {
    for (Slot& s : slots) {
      s.name.store(nullptr, std::memory_order_relaxed);
    }
    head.store(0, std::memory_order_relaxed);
    next_seq = 0;
  }
};

struct RingRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<Ring>> rings;  // kept past thread exit for dumps
  std::uint32_t next_tid = 0;
};

RingRegistry& Rings() {
  static RingRegistry* r = new RingRegistry();
  return *r;
}

void CheckFailureDump() {
  std::fputs(DumpFlightRecorders().c_str(), stderr);
  std::fflush(stderr);
}

// Marks the ring retired when its thread exits (the registry keeps the ring
// itself alive for post-mortem dumps).
struct ThreadRingHandle {
  std::shared_ptr<Ring> ring;
  ~ThreadRingHandle() {
    if (ring) {
      ring->retired.store(true, std::memory_order_release);
    }
  }
};

Ring* ThisThreadRing() {
  thread_local ThreadRingHandle handle;
  if (!handle.ring) {
    auto ring = std::make_shared<Ring>();
    RingRegistry& reg = Rings();
    {
      std::lock_guard<std::mutex> l(reg.mu);
      ring->tid = reg.next_tid++;
      reg.rings.push_back(ring);
    }
    // Fatal errors anywhere in the process should come with event history;
    // install once, as soon as any thread traces.
    static std::once_flag hook_once;
    std::call_once(hook_once, [] { SetCheckFailureHook(&CheckFailureDump); });
    handle.ring = std::move(ring);
  }
  return handle.ring.get();
}

struct SinkState {
  std::mutex mu;
  TraceSink sink = nullptr;
  void* ctx = nullptr;
};

SinkState& Sink() {
  static SinkState* s = new SinkState();
  return *s;
}

std::atomic<bool> g_sink_active{false};

void EmitImpl(const char* name, EventKind kind, std::uint64_t a, std::uint64_t b,
              std::uint64_t c) {
  if (!Enabled()) {
    return;
  }
  Ring* ring = ThisThreadRing();
  std::uint64_t seq = ring->next_seq++;
  ring->Append(name, kind, a, b, c, seq);
  if (g_sink_active.load(std::memory_order_acquire)) {
    TraceEvent e{name, seq, ring->tid, kind, a, b, c};
    SinkState& s = Sink();
    std::lock_guard<std::mutex> l(s.mu);
    if (s.sink != nullptr) {
      s.sink(s.ctx, e);
    }
  }
}

}  // namespace

std::string FormatEvent(const TraceEvent& e) {
  char buf[160];
  const char* kind = e.kind == EventKind::kBegin ? "B" : e.kind == EventKind::kEnd ? "E" : "I";
  std::snprintf(buf, sizeof(buf),
                "t%" PRIu32 " #%" PRIu64 " %s %s a=%" PRIu64 " b=%" PRIu64 " c=%" PRIu64,
                e.tid, e.seq, kind, e.name != nullptr ? e.name : "?", e.a, e.b, e.c);
  return buf;
}

void Emit(const char* name, std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  EmitImpl(name, EventKind::kInstant, a, b, c);
}

void EmitBegin(const char* name, std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  EmitImpl(name, EventKind::kBegin, a, b, c);
}

void EmitEnd(const char* name, std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  EmitImpl(name, EventKind::kEnd, a, b, c);
}

std::vector<TraceEvent> SnapshotFlightRecorders() {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    RingRegistry& reg = Rings();
    std::lock_guard<std::mutex> l(reg.mu);
    rings = reg.rings;
  }
  std::sort(rings.begin(), rings.end(),
            [](const auto& x, const auto& y) { return x->tid < y->tid; });
  std::vector<TraceEvent> out;
  for (const auto& ring : rings) {
    ring->SnapshotInto(out);
  }
  return out;
}

std::string DumpFlightRecorders() {
  std::vector<TraceEvent> events = SnapshotFlightRecorders();
  std::uint32_t threads = 0;
  {
    RingRegistry& reg = Rings();
    std::lock_guard<std::mutex> l(reg.mu);
    threads = static_cast<std::uint32_t>(reg.rings.size());
  }
  std::string out = "=== flight recorder (" + std::to_string(threads) + " threads) ===\n";
  std::uint32_t current_tid = 0;
  bool first = true;
  for (const TraceEvent& e : events) {
    if (first || e.tid != current_tid) {
      out += "--- thread " + std::to_string(e.tid) + " ---\n";
      current_tid = e.tid;
      first = false;
    }
    out += FormatEvent(e);
    out += '\n';
  }
  return out;
}

void DumpFlightRecordersTo(std::FILE* out) {
  std::fputs(DumpFlightRecorders().c_str(), out);
  std::fflush(out);
}

void ResetTraceForTest() {
  RingRegistry& reg = Rings();
  std::lock_guard<std::mutex> l(reg.mu);
  std::erase_if(reg.rings,
                [](const auto& ring) { return ring->retired.load(std::memory_order_acquire); });
  for (auto& ring : reg.rings) {
    ring->Clear();
  }
  // Surviving rings keep their tids; fresh threads continue just past them so
  // a re-run hands out the same dense tids as the first run did.
  std::uint32_t max_tid = 0;
  for (const auto& ring : reg.rings) {
    max_tid = std::max(max_tid, ring->tid + 1);
  }
  reg.next_tid = max_tid;
}

void SetTraceSink(TraceSink sink, void* ctx) {
  SinkState& s = Sink();
  std::lock_guard<std::mutex> l(s.mu);
  s.sink = sink;
  s.ctx = ctx;
  g_sink_active.store(sink != nullptr, std::memory_order_release);
}

}  // namespace argus::obs
