#include "src/obs/metrics.h"

#include <bit>
#include <cinttypes>
#include <cstdio>

namespace argus::obs {

namespace detail {
std::atomic<bool> g_enabled{true};
}  // namespace detail

bool SetEnabled(bool enabled) {
  return detail::g_enabled.exchange(enabled, std::memory_order_relaxed);
}

int Histogram::BucketIndex(std::uint64_t value) {
  int index = static_cast<int>(std::bit_width(value));  // 0 for value 0, else floor(log2)+1
  return index < kBuckets ? index : kBuckets - 1;
}

std::uint64_t Histogram::BucketUpperBound(int index) {
  if (index <= 0) {
    return 0;
  }
  return (std::uint64_t{1} << index) - 1;
}

std::uint64_t Histogram::ApproxPercentile(double p) const {
  std::uint64_t total = Count();
  if (total == 0) {
    return 0;
  }
  double rank = (p / 100.0) * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += BucketCount(i);
    if (static_cast<double>(seen) >= rank) {
      return BucketUpperBound(i);
    }
  }
  return Max();
}

void Histogram::Reset() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

std::string Labeled(std::string_view name,
                    std::initializer_list<std::pair<std::string_view, std::string_view>> labels) {
  std::string out(name);
  if (labels.size() == 0) {
    return out;
  }
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += k;
    out += '=';
    out += v;
  }
  out += '}';
  return out;
}

Registry& Registry::Global() {
  // Leaked on purpose: cached handles in instrumented objects (including
  // other function-local statics) must stay valid through process teardown.
  static Registry* instance = new Registry();
  return *instance;
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> l(mu_);
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> l(mu_);
  auto& slot = gauges_[name];
  if (!slot) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> l(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>();
  }
  return slot.get();
}

namespace {

void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void AppendU64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void AppendDouble(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

}  // namespace

std::string Registry::ToJson() const {
  std::lock_guard<std::mutex> l(mu_);
  std::string out = "{\"schema\":\"argus.metrics.v1\",\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) {
      out += ',';
    }
    first = false;
    AppendJsonString(out, name);
    out += ':';
    AppendU64(out, c->Value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) {
      out += ',';
    }
    first = false;
    AppendJsonString(out, name);
    out += ':';
    AppendDouble(out, g->Value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) {
      out += ',';
    }
    first = false;
    AppendJsonString(out, name);
    out += ":{\"count\":";
    AppendU64(out, h->Count());
    out += ",\"sum\":";
    AppendU64(out, h->Sum());
    out += ",\"max\":";
    AppendU64(out, h->Max());
    out += ",\"p50\":";
    AppendU64(out, h->ApproxPercentile(50.0));
    out += ",\"p99\":";
    AppendU64(out, h->ApproxPercentile(99.0));
    out += ",\"p999\":";
    AppendU64(out, h->ApproxPercentile(99.9));
    out += ",\"buckets\":[";
    bool first_bucket = true;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      std::uint64_t n = h->BucketCount(i);
      if (n == 0) {
        continue;
      }
      if (!first_bucket) {
        out += ',';
      }
      first_bucket = false;
      out += '[';
      AppendU64(out, Histogram::BucketUpperBound(i));
      out += ',';
      AppendU64(out, n);
      out += ']';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

void Registry::ResetAll() {
  std::lock_guard<std::mutex> l(mu_);
  for (auto& [name, c] : counters_) {
    c->Reset();
  }
  for (auto& [name, g] : gauges_) {
    g->Reset();
  }
  for (auto& [name, h] : histograms_) {
    h->Reset();
  }
}

}  // namespace argus::obs
