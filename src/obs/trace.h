// Trace events with logical timestamps, and the per-thread flight recorder.
//
// Events carry NO wall-clock time. Each event is stamped with (tid, seq):
// `tid` is a small dense index assigned in ring-registration order and `seq`
// is that thread's monotone event counter. Two runs of the same seeded
// workload therefore emit byte-identical event sequences — wall-clock cost
// lives in registry histograms (src/obs/metrics.h), never in the trace.
// Durations in a trace are *intervals between logical events*, which is what
// crash forensics needs: not "how long", but "in what order, with what state".
//
// The flight recorder keeps the last kCapacity events per thread in a lock-
// free single-writer ring. Dumps happen at three moments:
//  - on a coherent crash (the workload driver's crash executor snapshots all
//    rings while workers are parked at the rendezvous);
//  - on a fatal ARGUS_CHECK failure (a hook installed into CheckFailed);
//  - on property-test failure (tests/test_support.h
//    ScopedFlightRecorderDumpOnFailure).
//
// Concurrency contract: Append is called only by the ring's owning thread.
// Snapshot from another thread is exact when the owner is quiescent (parked,
// joined, or dead) and best-effort — torn but memory-safe, via relaxed
// atomics — when racing a live owner (the fatal-error path).
//
// Event payloads (a, b, c) are raw u64s whose meaning is per event name; the
// catalog lives in DESIGN.md "Observability". Names must be string literals
// with static storage duration — the ring stores the pointer.

#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/obs/metrics.h"  // Enabled()

namespace argus::obs {

enum class EventKind : std::uint8_t {
  kInstant = 0,
  kBegin = 1,
  kEnd = 2,
};

struct TraceEvent {
  const char* name = nullptr;  // static string literal
  std::uint64_t seq = 0;       // per-thread logical timestamp
  std::uint32_t tid = 0;       // dense thread index (registration order)
  EventKind kind = EventKind::kInstant;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
};

// "t<tid> #<seq> I|B|E <name> a=<a> b=<b> c=<c>" — the dump line format.
std::string FormatEvent(const TraceEvent& e);

// Emit one event on the calling thread's ring (and the test sink, if set).
// No-ops when obs is disabled. `name` must be a static literal.
void Emit(const char* name, std::uint64_t a = 0, std::uint64_t b = 0, std::uint64_t c = 0);
void EmitBegin(const char* name, std::uint64_t a = 0, std::uint64_t b = 0, std::uint64_t c = 0);
void EmitEnd(const char* name, std::uint64_t a = 0, std::uint64_t b = 0, std::uint64_t c = 0);

// RAII begin/end pair. The end event repeats `a` so dumps pair up without
// a matching stack.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, std::uint64_t a = 0, std::uint64_t b = 0)
      : name_(name), a_(a) {
    EmitBegin(name, a, b);
  }
  ~TraceSpan() { EmitEnd(name_, a_); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  std::uint64_t a_;
};

// ---- Flight recorder ----

// Events kept per thread. Sized to hold a few dozen commit lifecycles — the
// window the reconciler needs to see every staged-but-undurable entry of the
// crashing batch.
inline constexpr std::size_t kFlightRecorderCapacity = 512;

// Snapshot of every registered ring, oldest event first within each thread,
// threads in tid order. Exact when owners are quiescent (see header comment).
std::vector<TraceEvent> SnapshotFlightRecorders();

// The standard dump: FormatEvent per line, one block per thread, prefixed
// with "=== flight recorder (N threads) ===".
std::string DumpFlightRecorders();
void DumpFlightRecordersTo(std::FILE* out);

// Clears every ring and resets the logical clock so a subsequent run emits
// the same (tid, seq) stamps as a fresh process: retired rings (dead threads)
// are unregistered, surviving rings are emptied with their seq reset to 0,
// and the next fresh thread gets tid = live ring count. Call only while no
// other thread is emitting (between runs).
void ResetTraceForTest();

// Test sink: receives every event as emitted, before ring insertion. Serial
// (single-threaded) workloads use it to capture complete sequences that
// outgrow the ring. Invoked under an internal mutex; keep it cheap and do not
// emit events from inside it. Pass nullptr to clear.
using TraceSink = void (*)(void* ctx, const TraceEvent& event);
void SetTraceSink(TraceSink sink, void* ctx);

}  // namespace argus::obs

#endif  // SRC_OBS_TRACE_H_
