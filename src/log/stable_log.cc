#include "src/log/stable_log.h"

#include "src/obs/metrics.h"

#include <algorithm>
#include <cstring>

#include "src/common/crc32.h"

namespace argus {

namespace {

// Global log-layer aggregates, mirrored from the per-instance LogStats at the
// same tick sites. force.batch_entries is the group-commit coalescing shape;
// force.wait_ns is what an action pays from "durability requested" to
// "durable" (leaders and followers both).
struct LogObs {
  obs::Counter* entries_staged;
  obs::Counter* forces;
  obs::Counter* bytes_forced;
  obs::Counter* entries_read;
  obs::Counter* force_requests;
  obs::Counter* coalesced_requests;
  obs::Histogram* batch_entries;
  obs::Histogram* force_wait_ns;

  static const LogObs& Get() {
    static const LogObs m{
        obs::GetCounter("log.entries_staged"),
        obs::GetCounter("log.forces"),
        obs::GetCounter("log.bytes_forced"),
        obs::GetCounter("log.entries_read"),
        obs::GetCounter("log.force.requests"),
        obs::GetCounter("log.force.coalesced"),
        obs::GetHistogram("log.force.batch_entries"),
        obs::GetHistogram("log.force.wait_ns"),
    };
    return m;
  }
};

}  // namespace
namespace {

std::uint32_t LoadU32(std::span<const std::byte> bytes) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  return v;
}

void StoreU32(std::uint32_t v, std::vector<std::byte>& out) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(std::byte{static_cast<std::uint8_t>(v >> (8 * i))});
  }
}

}  // namespace

StableLog::StableLog(std::unique_ptr<StableMedium> medium, ReadCache::Config cache_config)
    : medium_(std::move(medium)), cache_(medium_.get(), cache_config) {
  ARGUS_CHECK(medium_ != nullptr);
  if (medium_->durable_size() > 0) {
    // Resuming an existing log (e.g. file-backed): derive the top.
    Result<std::uint64_t> r = RecoverAfterCrash();
    ARGUS_CHECK_MSG(r.ok(), "existing log unreadable");
  }
}

LogAddress StableLog::Write(const LogEntry& entry) {
  std::lock_guard<std::mutex> l(mu_);
  return WriteLocked(entry);
}

LogAddress StableLog::WriteLocked(const LogEntry& entry) {
  std::vector<std::byte> payload = EncodeEntry(entry);
  std::uint64_t offset = medium_->durable_size() + staged_.size();

  StoreU32(static_cast<std::uint32_t>(payload.size()), staged_);
  staged_.insert(staged_.end(), payload.begin(), payload.end());
  StoreU32(Crc32(AsSpan(payload)), staged_);
  StoreU32(static_cast<std::uint32_t>(payload.size()), staged_);

  ++stats_.entries_written;
  LogObs::Get().entries_staged->Increment();
  ++staged_entry_count_;
  last_staged_ = LogAddress{offset};
  return LogAddress{offset};
}

Result<LogAddress> StableLog::ForceWrite(const LogEntry& entry) {
  std::lock_guard<std::mutex> l(mu_);
  LogAddress addr = WriteLocked(entry);
  Status s = ForceLocked();
  if (!s.ok()) {
    return s;
  }
  return addr;
}

Status StableLog::Force() {
  std::lock_guard<std::mutex> l(mu_);
  return ForceLocked();
}

Status StableLog::ForceLocked() {
  if (staged_.empty()) {
    return Status::Ok();
  }
  Status s = cache_.AppendThrough(AsSpan(staged_));
  if (!s.ok()) {
    return s;
  }
  stats_.bytes_forced += staged_.size();
  ++stats_.forces;
  stats_.max_entries_per_force = std::max(stats_.max_entries_per_force, staged_entry_count_);
  LogObs::Get().forces->Increment();
  LogObs::Get().bytes_forced->Add(staged_.size());
  LogObs::Get().batch_entries->Record(staged_entry_count_);
  staged_.clear();
  staged_entry_count_ = 0;
  last_forced_ = last_staged_;
  return Status::Ok();
}

Result<LogEntry> StableLog::Read(LogAddress address) const {
  Result<FrameView> view = ReadFrameView(address);
  if (!view.ok()) {
    return view.status();
  }
  return DecodeEntry(view.value().payload());
}

Result<StableLog::FrameView> StableLog::ReadFrameView(LogAddress address) const {
  return ReadFrameView(address, nullptr);
}

Result<StableLog::FrameView> StableLog::ReadFrameView(LogAddress address,
                                                      bool* cache_validated) const {
  std::uint64_t durable = 0;
  std::uint64_t total = 0;
  {
    std::lock_guard<std::mutex> l(mu_);
    ++stats_.entries_read;
    durable = medium_->durable_size();
    total = durable + staged_.size();
  }
  LogObs::Get().entries_read->Increment();
  return ReadFrameViewAt(address.offset, durable, total, cache_validated);
}

Result<StableLog::FrameView> StableLog::ReadFrameViewAt(std::uint64_t offset,
                                                        std::uint64_t durable,
                                                        std::uint64_t total,
                                                        bool* cache_validated) const {
  if (cache_validated != nullptr) {
    *cache_validated = false;
  }
  if (offset + kFrameOverhead > total) {
    return Status::NotFound("log address beyond end");
  }
  if (offset + kFrameOverhead > durable) {
    // The frame touches the staged tail: take the locked stitched path and
    // re-materialize the payload as an owned view.
    std::lock_guard<std::mutex> l(mu_);
    Result<LogEntry> entry = ReadFrameAt(offset, nullptr);
    if (!entry.ok()) {
      return entry.status();
    }
    FrameView view;
    view.view_ = ReadCache::View::FromOwned(EncodeEntry(entry.value()));
    view.payload_ = view.view_.bytes();
    return view;
  }

  // One cache access covers the header and, nearly always, the whole frame;
  // the memo flag comes back under the same lock that produced the view.
  bool validated = false;
  Result<ReadCache::View> probe =
      cache_.ReadProbe(offset, 4, kFrameProbeLen, durable, &validated);
  if (!probe.ok()) {
    return probe.status();
  }
  std::uint32_t len = LoadU32(probe.value().bytes());
  if (offset + kFrameOverhead + len > total) {
    return Status::Corruption("frame length exceeds log extent");
  }
  if (offset + kFrameOverhead + len > durable) {
    // Frame straddles the durable/staged boundary; locked path as above.
    std::lock_guard<std::mutex> l(mu_);
    Result<LogEntry> entry = ReadFrameAt(offset, nullptr);
    if (!entry.ok()) {
      return entry.status();
    }
    FrameView view;
    view.view_ = ReadCache::View::FromOwned(EncodeEntry(entry.value()));
    view.payload_ = view.view_.bytes();
    return view;
  }

  const std::uint64_t frame_len = kFrameOverhead + len;
  ReadCache::View frame_view;
  if (probe.value().bytes().size() >= frame_len) {
    frame_view = std::move(probe).value();
  } else {
    // Oversized frame or probe clipped at a block edge (or pass-through
    // header read with the cache disabled): fetch the exact frame.
    Result<ReadCache::View> frame = cache_.Read(offset, frame_len, durable);
    if (!frame.ok()) {
      return frame.status();
    }
    validated = cache_.IsValidated(offset);
    frame_view = std::move(frame).value();
  }
  std::span<const std::byte> bytes = frame_view.bytes().first(frame_len);
  if (cache_validated != nullptr) {
    *cache_validated = validated;
  }
  if (!validated) {
    std::span<const std::byte> payload = bytes.subspan(4, len);
    std::uint32_t crc = LoadU32(bytes.subspan(4 + len, 4));
    std::uint32_t trailer_len = LoadU32(bytes.subspan(4 + len + 4, 4));
    if (trailer_len != len) {
      return Status::Corruption("frame trailer length mismatch");
    }
    if (crc != Crc32(payload)) {
      return Status::Corruption("frame crc mismatch");
    }
    cache_.MarkValidated(offset, frame_len, frame_view);
  }
  FrameView view;
  view.view_ = std::move(frame_view);
  view.payload_ = view.view_.bytes().subspan(4, len);
  return view;
}

std::vector<Result<LogEntry>> StableLog::ReadMany(std::span<const LogAddress> addresses) const {
  if (!addresses.empty()) {
    // Hand the whole batch's frame-probe ranges to the cache as one scatter
    // prefetch (no-op unless Config::batch_prefetch). The recovery pipeline's
    // worker pool calls ReadMany off the apply thread, so on a batched medium
    // this is where decode/CRC work overlaps in-flight disk I/O.
    std::uint64_t durable;
    {
      std::lock_guard<std::mutex> l(mu_);
      durable = medium_->durable_size();
    }
    std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
    ranges.reserve(addresses.size());
    for (const LogAddress& address : addresses) {
      ranges.emplace_back(address.offset, kFrameProbeLen);
    }
    cache_.Prefetch(std::span<const std::pair<std::uint64_t, std::uint64_t>>(ranges.data(),
                                                                             ranges.size()),
                    durable);
  }
  std::vector<std::size_t> order(addresses.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return addresses[a].offset < addresses[b].offset;
  });
  std::vector<Result<LogEntry>> results(addresses.size(),
                                        Status::NotFound("log address beyond end"));
  for (std::size_t i : order) {
    results[i] = Read(addresses[i]);
  }
  {
    std::lock_guard<std::mutex> l(mu_);
    ++stats_.read_batches;
    stats_.batched_reads += addresses.size();
  }
  return results;
}

std::optional<LogAddress> StableLog::GetTop() const {
  std::lock_guard<std::mutex> l(mu_);
  return last_forced_;
}

std::uint64_t StableLog::end_offset() const {
  std::lock_guard<std::mutex> l(mu_);
  return medium_->durable_size() + staged_.size();
}

std::uint64_t StableLog::staged_bytes() const {
  std::lock_guard<std::mutex> l(mu_);
  return staged_.size();
}

std::uint64_t StableLog::staged_entries() const {
  std::lock_guard<std::mutex> l(mu_);
  return staged_entry_count_;
}

bool StableLog::empty() const {
  std::lock_guard<std::mutex> l(mu_);
  return !last_forced_.has_value();
}

std::uint64_t StableLog::durable_size() const {
  std::lock_guard<std::mutex> l(mu_);
  return medium_->durable_size();
}

LogStats StableLog::StatsSnapshot() const {
  LogStats out;
  {
    // The medium is only ever touched under mu_ (appends in ForceLocked,
    // durable_size()); the counter read must follow the same discipline.
    std::lock_guard<std::mutex> l(mu_);
    out = stats_;
    out.physical_bytes = medium_->physical_bytes_written();
  }
  ReadCache::Stats cs = cache_.StatsSnapshot();
  out.cache_hits = cs.hits;
  out.cache_misses = cs.misses;
  out.cache_bytes_read = cs.bytes_from_medium;
  out.readahead_blocks = cs.readahead_blocks;
  return out;
}

void StableLog::RecordPipelineStats(std::uint64_t prefetches, std::uint64_t prefetch_hits,
                                    std::uint64_t sync_reads) const {
  std::lock_guard<std::mutex> l(mu_);
  stats_.pipeline_prefetches += prefetches;
  stats_.pipeline_prefetch_hits += prefetch_hits;
  stats_.pipeline_sync_reads += sync_reads;
  obs::GetCounter("recovery.pipeline.prefetches")->Add(prefetches);
  obs::GetCounter("recovery.pipeline.prefetch_hits")->Add(prefetch_hits);
  obs::GetCounter("recovery.pipeline.sync_reads")->Add(sync_reads);
}

void StableLog::RecordForceRequest(bool coalesced, std::uint64_t wait_ns) {
  std::lock_guard<std::mutex> l(mu_);
  ++stats_.force_requests;
  if (coalesced) {
    ++stats_.coalesced_requests;
    LogObs::Get().coalesced_requests->Increment();
  }
  stats_.total_force_wait_ns += wait_ns;
  LogObs::Get().force_requests->Increment();
  LogObs::Get().force_wait_ns->Record(wait_ns);
}

Result<LogEntry> StableLog::ReadFrameAt(std::uint64_t offset, std::optional<std::uint64_t>* prev,
                                        std::uint64_t* next) const {
  std::uint64_t total = medium_->durable_size() + staged_.size();
  if (offset + kFrameOverhead > total) {
    return Status::NotFound("log address beyond end");
  }

  // Reads `len` raw bytes at `at`, stitching durable medium and staged tail.
  // Durable bytes come through the cache (mu_ -> cache mutex lock order).
  auto read_raw = [&](std::uint64_t at, std::uint64_t len) -> Result<std::vector<std::byte>> {
    std::uint64_t durable = medium_->durable_size();
    if (at + len <= durable) {
      Result<ReadCache::View> v = cache_.Read(at, len, durable);
      if (!v.ok()) {
        return v.status();
      }
      std::span<const std::byte> b = v.value().bytes();
      return std::vector<std::byte>(b.begin(), b.end());
    }
    if (at >= durable) {
      if (at - durable + len > staged_.size()) {
        return Status::NotFound("read past staged tail");
      }
      return std::vector<std::byte>(
          staged_.begin() + static_cast<std::ptrdiff_t>(at - durable),
          staged_.begin() + static_cast<std::ptrdiff_t>(at - durable + len));
    }
    // Straddles the durable / staged boundary.
    Result<ReadCache::View> head = cache_.Read(at, durable - at, durable);
    if (!head.ok()) {
      return head.status();
    }
    std::uint64_t rest = len - (durable - at);
    if (rest > staged_.size()) {
      return Status::NotFound("read past staged tail");
    }
    std::span<const std::byte> hb = head.value().bytes();
    std::vector<std::byte> out(hb.begin(), hb.end());
    out.insert(out.end(), staged_.begin(), staged_.begin() + static_cast<std::ptrdiff_t>(rest));
    return out;
  };

  Result<std::vector<std::byte>> header = read_raw(offset, 4);
  if (!header.ok()) {
    return header.status();
  }
  std::uint32_t len = LoadU32(AsSpan(header.value()));
  if (offset + kFrameOverhead + len > total) {
    return Status::Corruption("frame length exceeds log extent");
  }
  Result<std::vector<std::byte>> body = read_raw(offset + 4, static_cast<std::uint64_t>(len) + 8);
  if (!body.ok()) {
    return body.status();
  }
  std::span<const std::byte> payload(body.value().data(), len);
  std::uint32_t crc = LoadU32(std::span<const std::byte>(body.value().data() + len, 4));
  std::uint32_t trailer_len = LoadU32(std::span<const std::byte>(body.value().data() + len + 4, 4));
  if (trailer_len != len) {
    return Status::Corruption("frame trailer length mismatch");
  }
  if (crc != Crc32(payload)) {
    return Status::Corruption("frame crc mismatch");
  }

  if (next != nullptr) {
    *next = offset + kFrameOverhead + len;
  }
  if (prev != nullptr) {
    if (offset == 0) {
      *prev = std::nullopt;
    } else {
      Result<std::vector<std::byte>> ptrail = read_raw(offset - 4, 4);
      if (!ptrail.ok()) {
        return ptrail.status();
      }
      std::uint32_t plen = LoadU32(AsSpan(ptrail.value()));
      if (offset < kFrameOverhead + plen) {
        return Status::Corruption("previous frame trailer out of range");
      }
      *prev = offset - kFrameOverhead - plen;
    }
  }
  return DecodeEntry(payload);
}

Result<LogEntry> StableLog::ReadFrameForCursor(std::uint64_t offset,
                                               std::optional<std::uint64_t>* prev,
                                               std::uint64_t* next) const {
  std::lock_guard<std::mutex> l(mu_);
  Result<LogEntry> entry = ReadFrameAt(offset, prev, next);
  if (entry.ok()) {
    ++stats_.entries_read;
  }
  return entry;
}

Result<std::optional<std::pair<LogAddress, LogEntry>>> StableLog::BackwardCursor::Next() {
  if (!next_.has_value()) {
    return std::optional<std::pair<LogAddress, LogEntry>>(std::nullopt);
  }
  std::optional<std::uint64_t> prev;
  Result<LogEntry> entry = log_->ReadFrameForCursor(next_->offset, &prev, nullptr);
  if (!entry.ok()) {
    return entry.status();
  }
  LogAddress at = *next_;
  next_ = prev.has_value() ? std::optional<LogAddress>(LogAddress{*prev}) : std::nullopt;
  return std::optional<std::pair<LogAddress, LogEntry>>(
      std::make_pair(at, std::move(entry).value()));
}

Result<std::optional<std::pair<LogAddress, LogEntry>>> StableLog::ForwardCursor::Next() {
  if (next_ + kFrameOverhead > log_->end_offset()) {
    return std::optional<std::pair<LogAddress, LogEntry>>(std::nullopt);
  }
  std::uint64_t after = 0;
  Result<LogEntry> entry = log_->ReadFrameForCursor(next_, nullptr, &after);
  if (!entry.ok()) {
    return entry.status();
  }
  LogAddress at{next_};
  next_ = after;
  return std::optional<std::pair<LogAddress, LogEntry>>(
      std::make_pair(at, std::move(entry).value()));
}

Result<std::uint64_t> StableLog::RecoverAfterCrash() {
  std::lock_guard<std::mutex> l(mu_);
  staged_.clear();
  staged_entry_count_ = 0;
  last_forced_ = std::nullopt;
  last_staged_ = std::nullopt;

  Status s = medium_->RecoverAfterCrash();
  if (!s.ok()) {
    return s;
  }
  // The medium may have repaired pages (re-duplexing); never serve pre-crash
  // cached bytes, and never let the cache mask decay a fresh CarefulRead
  // would report.
  cache_.Clear();

  // Scan frames forward to find the last intact entry. On atomic media the
  // scan always ends exactly at durable_size; on a plain file a torn final
  // frame is detected by CRC and logically truncated. The ascending frame
  // reads make the cache prefetch ahead of the scan.
  std::uint64_t offset = 0;
  std::uint64_t durable = medium_->durable_size();
  std::uint64_t count = 0;
  while (offset + kFrameOverhead <= durable) {
    std::uint64_t next = 0;
    Result<LogEntry> entry = ReadFrameAt(offset, nullptr, &next);
    if (!entry.ok()) {
      if (entry.status().code() == ErrorCode::kCorruption) {
        break;  // torn tail: log ends at the previous frame
      }
      return entry.status();
    }
    last_forced_ = LogAddress{offset};
    offset = next;
    ++count;
  }
  last_staged_ = last_forced_;
  return count;
}

}  // namespace argus
