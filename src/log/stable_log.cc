#include "src/log/stable_log.h"

#include <algorithm>
#include <cstring>

#include "src/common/crc32.h"

namespace argus {
namespace {

std::uint32_t LoadU32(std::span<const std::byte> bytes) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  return v;
}

void StoreU32(std::uint32_t v, std::vector<std::byte>& out) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(std::byte{static_cast<std::uint8_t>(v >> (8 * i))});
  }
}

}  // namespace

StableLog::StableLog(std::unique_ptr<StableMedium> medium) : medium_(std::move(medium)) {
  ARGUS_CHECK(medium_ != nullptr);
  if (medium_->durable_size() > 0) {
    // Resuming an existing log (e.g. file-backed): derive the top.
    Result<std::uint64_t> r = RecoverAfterCrash();
    ARGUS_CHECK_MSG(r.ok(), "existing log unreadable");
  }
}

LogAddress StableLog::Write(const LogEntry& entry) {
  std::lock_guard<std::mutex> l(mu_);
  return WriteLocked(entry);
}

LogAddress StableLog::WriteLocked(const LogEntry& entry) {
  std::vector<std::byte> payload = EncodeEntry(entry);
  std::uint64_t offset = medium_->durable_size() + staged_.size();

  StoreU32(static_cast<std::uint32_t>(payload.size()), staged_);
  staged_.insert(staged_.end(), payload.begin(), payload.end());
  StoreU32(Crc32(AsSpan(payload)), staged_);
  StoreU32(static_cast<std::uint32_t>(payload.size()), staged_);

  ++stats_.entries_written;
  ++staged_entry_count_;
  last_staged_ = LogAddress{offset};
  return LogAddress{offset};
}

Result<LogAddress> StableLog::ForceWrite(const LogEntry& entry) {
  std::lock_guard<std::mutex> l(mu_);
  LogAddress addr = WriteLocked(entry);
  Status s = ForceLocked();
  if (!s.ok()) {
    return s;
  }
  return addr;
}

Status StableLog::Force() {
  std::lock_guard<std::mutex> l(mu_);
  return ForceLocked();
}

Status StableLog::ForceLocked() {
  if (staged_.empty()) {
    return Status::Ok();
  }
  Status s = medium_->Append(AsSpan(staged_));
  if (!s.ok()) {
    return s;
  }
  stats_.bytes_forced += staged_.size();
  ++stats_.forces;
  stats_.max_entries_per_force = std::max(stats_.max_entries_per_force, staged_entry_count_);
  staged_.clear();
  staged_entry_count_ = 0;
  last_forced_ = last_staged_;
  return Status::Ok();
}

Result<LogEntry> StableLog::Read(LogAddress address) const {
  std::lock_guard<std::mutex> l(mu_);
  ++stats_.entries_read;
  return ReadFrameAt(address.offset, nullptr);
}

std::optional<LogAddress> StableLog::GetTop() const {
  std::lock_guard<std::mutex> l(mu_);
  return last_forced_;
}

std::uint64_t StableLog::end_offset() const {
  std::lock_guard<std::mutex> l(mu_);
  return medium_->durable_size() + staged_.size();
}

std::uint64_t StableLog::staged_bytes() const {
  std::lock_guard<std::mutex> l(mu_);
  return staged_.size();
}

std::uint64_t StableLog::staged_entries() const {
  std::lock_guard<std::mutex> l(mu_);
  return staged_entry_count_;
}

bool StableLog::empty() const {
  std::lock_guard<std::mutex> l(mu_);
  return !last_forced_.has_value();
}

std::uint64_t StableLog::durable_size() const {
  std::lock_guard<std::mutex> l(mu_);
  return medium_->durable_size();
}

LogStats StableLog::StatsSnapshot() const {
  std::lock_guard<std::mutex> l(mu_);
  return stats_;
}

void StableLog::RecordForceRequest(bool coalesced, std::uint64_t wait_ns) {
  std::lock_guard<std::mutex> l(mu_);
  ++stats_.force_requests;
  if (coalesced) {
    ++stats_.coalesced_requests;
  }
  stats_.total_force_wait_ns += wait_ns;
}

Result<LogEntry> StableLog::ReadFrameAt(std::uint64_t offset, std::optional<std::uint64_t>* prev,
                                        std::uint64_t* next) const {
  std::uint64_t total = medium_->durable_size() + staged_.size();
  if (offset + kFrameOverhead > total) {
    return Status::NotFound("log address beyond end");
  }

  // Reads `len` raw bytes at `at`, stitching durable medium and staged tail.
  auto read_raw = [&](std::uint64_t at, std::uint64_t len) -> Result<std::vector<std::byte>> {
    std::uint64_t durable = medium_->durable_size();
    if (at + len <= durable) {
      return medium_->Read(at, len);
    }
    if (at >= durable) {
      if (at - durable + len > staged_.size()) {
        return Status::NotFound("read past staged tail");
      }
      return std::vector<std::byte>(
          staged_.begin() + static_cast<std::ptrdiff_t>(at - durable),
          staged_.begin() + static_cast<std::ptrdiff_t>(at - durable + len));
    }
    // Straddles the durable / staged boundary.
    Result<std::vector<std::byte>> head = medium_->Read(at, durable - at);
    if (!head.ok()) {
      return head.status();
    }
    std::uint64_t rest = len - (durable - at);
    if (rest > staged_.size()) {
      return Status::NotFound("read past staged tail");
    }
    std::vector<std::byte> out = std::move(head.value());
    out.insert(out.end(), staged_.begin(), staged_.begin() + static_cast<std::ptrdiff_t>(rest));
    return out;
  };

  Result<std::vector<std::byte>> header = read_raw(offset, 4);
  if (!header.ok()) {
    return header.status();
  }
  std::uint32_t len = LoadU32(AsSpan(header.value()));
  if (offset + kFrameOverhead + len > total) {
    return Status::Corruption("frame length exceeds log extent");
  }
  Result<std::vector<std::byte>> body = read_raw(offset + 4, static_cast<std::uint64_t>(len) + 8);
  if (!body.ok()) {
    return body.status();
  }
  std::span<const std::byte> payload(body.value().data(), len);
  std::uint32_t crc = LoadU32(std::span<const std::byte>(body.value().data() + len, 4));
  std::uint32_t trailer_len = LoadU32(std::span<const std::byte>(body.value().data() + len + 4, 4));
  if (trailer_len != len) {
    return Status::Corruption("frame trailer length mismatch");
  }
  if (crc != Crc32(payload)) {
    return Status::Corruption("frame crc mismatch");
  }

  if (next != nullptr) {
    *next = offset + kFrameOverhead + len;
  }
  if (prev != nullptr) {
    if (offset == 0) {
      *prev = std::nullopt;
    } else {
      Result<std::vector<std::byte>> ptrail = read_raw(offset - 4, 4);
      if (!ptrail.ok()) {
        return ptrail.status();
      }
      std::uint32_t plen = LoadU32(AsSpan(ptrail.value()));
      if (offset < kFrameOverhead + plen) {
        return Status::Corruption("previous frame trailer out of range");
      }
      *prev = offset - kFrameOverhead - plen;
    }
  }
  return DecodeEntry(payload);
}

Result<LogEntry> StableLog::ReadFrameForCursor(std::uint64_t offset,
                                               std::optional<std::uint64_t>* prev,
                                               std::uint64_t* next) const {
  std::lock_guard<std::mutex> l(mu_);
  Result<LogEntry> entry = ReadFrameAt(offset, prev, next);
  if (entry.ok()) {
    ++stats_.entries_read;
  }
  return entry;
}

Result<std::optional<std::pair<LogAddress, LogEntry>>> StableLog::BackwardCursor::Next() {
  if (!next_.has_value()) {
    return std::optional<std::pair<LogAddress, LogEntry>>(std::nullopt);
  }
  std::optional<std::uint64_t> prev;
  Result<LogEntry> entry = log_->ReadFrameForCursor(next_->offset, &prev, nullptr);
  if (!entry.ok()) {
    return entry.status();
  }
  LogAddress at = *next_;
  next_ = prev.has_value() ? std::optional<LogAddress>(LogAddress{*prev}) : std::nullopt;
  return std::optional<std::pair<LogAddress, LogEntry>>(
      std::make_pair(at, std::move(entry).value()));
}

Result<std::optional<std::pair<LogAddress, LogEntry>>> StableLog::ForwardCursor::Next() {
  if (next_ + kFrameOverhead > log_->end_offset()) {
    return std::optional<std::pair<LogAddress, LogEntry>>(std::nullopt);
  }
  std::uint64_t after = 0;
  Result<LogEntry> entry = log_->ReadFrameForCursor(next_, nullptr, &after);
  if (!entry.ok()) {
    return entry.status();
  }
  LogAddress at{next_};
  next_ = after;
  return std::optional<std::pair<LogAddress, LogEntry>>(
      std::make_pair(at, std::move(entry).value()));
}

Result<std::uint64_t> StableLog::RecoverAfterCrash() {
  std::lock_guard<std::mutex> l(mu_);
  staged_.clear();
  staged_entry_count_ = 0;
  last_forced_ = std::nullopt;
  last_staged_ = std::nullopt;

  Status s = medium_->RecoverAfterCrash();
  if (!s.ok()) {
    return s;
  }

  // Scan frames forward to find the last intact entry. On atomic media the
  // scan always ends exactly at durable_size; on a plain file a torn final
  // frame is detected by CRC and logically truncated.
  std::uint64_t offset = 0;
  std::uint64_t durable = medium_->durable_size();
  std::uint64_t count = 0;
  while (offset + kFrameOverhead <= durable) {
    Result<LogEntry> entry = ReadFrameAt(offset, nullptr);
    if (!entry.ok()) {
      if (entry.status().code() == ErrorCode::kCorruption) {
        break;  // torn tail: log ends at the previous frame
      }
      return entry.status();
    }
    Result<std::vector<std::byte>> header = medium_->Read(offset, 4);
    if (!header.ok()) {
      return header.status();
    }
    std::uint32_t len = LoadU32(AsSpan(header.value()));
    last_forced_ = LogAddress{offset};
    offset += kFrameOverhead + len;
    ++count;
  }
  last_staged_ = last_forced_;
  return count;
}

}  // namespace argus
