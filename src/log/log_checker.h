// Log integrity checker (fsck for stable logs).
//
// Verifies the structural invariants a well-formed log must satisfy, beyond
// the per-frame CRCs the StableLog itself enforces:
//
//  - every entry decodes, and forward/backward iteration agree;
//  - the backward outcome chain is well-formed: prev pointers strictly
//    decrease, land on outcome entries, and reach the beginning;
//  - every <uid, log address> pair in prepared / committed_ss entries points
//    at a DATA entry at a lower address;
//  - committed/aborted entries refer to actions with a prepared entry (or
//    prepared_data evidence) somewhere in the log;
//  - at most one terminal outcome (committed XOR aborted) per action, and
//    done implies committing.
//
// The checker is read-only and reports all problems it finds, not just the
// first — a maintenance tool, not a recovery path.

#ifndef SRC_LOG_LOG_CHECKER_H_
#define SRC_LOG_LOG_CHECKER_H_

#include <string>
#include <vector>

#include "src/log/stable_log.h"

namespace argus {

struct LogCheckReport {
  std::uint64_t entries = 0;
  std::uint64_t outcome_entries = 0;
  std::uint64_t data_entries = 0;
  std::uint64_t chain_length = 0;
  std::vector<std::string> problems;

  bool clean() const { return problems.empty(); }
  std::string ToString() const;
};

// `hybrid` selects the chain/pair checks (they do not apply to simple logs).
Result<LogCheckReport> CheckLog(const StableLog& log, bool hybrid);

}  // namespace argus

#endif  // SRC_LOG_LOG_CHECKER_H_
