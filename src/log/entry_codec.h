// Wire format for log entries.
//
// Payload layout: [kind u8][kind-specific fields]. Uids, aids and addresses
// use their invalid/null sentinel encodings when absent, so the simple-log
// and hybrid-log shapes of the same entry kind share one format.

#ifndef SRC_LOG_ENTRY_CODEC_H_
#define SRC_LOG_ENTRY_CODEC_H_

#include "src/common/codec.h"
#include "src/log/log_entry.h"

namespace argus {

std::vector<std::byte> EncodeEntry(const LogEntry& entry);
Result<LogEntry> DecodeEntry(std::span<const std::byte> payload);

// Zero-copy decode of a data entry: `value` aliases `payload`, so the caller
// must keep the frame bytes alive (recovery pins them via StableLog frame
// views) for as long as the view is used. Non-data payloads decode to
// kCorruption, mirroring the full DecodeEntry's per-kind validation.
struct DataEntryView {
  Uid uid;
  ObjectKind kind;
  ActionId aid;
  std::span<const std::byte> value;
};
Result<DataEntryView> DecodeDataEntryView(std::span<const std::byte> payload);

// True when `payload` is a data-entry payload (cheap one-byte kind probe).
bool IsDataEntryPayload(std::span<const std::byte> payload);

}  // namespace argus

#endif  // SRC_LOG_ENTRY_CODEC_H_
