#include "src/log/flush_coordinator.h"

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace argus {

namespace {

struct CoordinatorObs {
  obs::Histogram* leader_wait_ns;    // elected leaders: linger + medium append
  obs::Histogram* follower_wait_ns;  // coalesced requests: blocked on a leader
  obs::Histogram* batch_requests;    // pending requests a leader's flush served

  static const CoordinatorObs& Get() {
    static const CoordinatorObs m{
        obs::GetHistogram("log.force.leader_wait_ns"),
        obs::GetHistogram("log.force.follower_wait_ns"),
        obs::GetHistogram("log.force.batch_requests"),
    };
    return m;
  }
};

}  // namespace

FlushCoordinator::FlushCoordinator(StableLog* log, FlushCoordinatorConfig config)
    : log_(log), config_(config) {
  ARGUS_CHECK(log != nullptr);
}

Result<LogAddress> FlushCoordinator::ForceWrite(const LogEntry& entry) {
  LogAddress addr = log_->Write(entry);
  Status s = ForceOffset(addr.offset, std::nullopt);
  if (!s.ok()) {
    return s;
  }
  return addr;
}

Status FlushCoordinator::ForceUpTo(LogAddress address) {
  return ForceOffset(address.offset, std::nullopt);
}

Status FlushCoordinator::ForceUpTo(LogAddress address, std::uint64_t epoch) {
  return ForceOffset(address.offset, epoch);
}

Status FlushCoordinator::Force() {
  std::uint64_t end = log_->end_offset();
  if (end == 0) {
    return Status::Ok();
  }
  // The last staged byte is at end-1; durable_size() > end-1 once flushed.
  return ForceOffset(end - 1, std::nullopt);
}

Status FlushCoordinator::Quiesce() {
  Status s = Force();
  if (!s.ok()) {
    return s;
  }
  std::unique_lock<std::mutex> l(mu_);
  // Only requests for pre-barrier entries can still be in flight (the caller
  // excludes staging); the Force above covered all of them, so each wakes,
  // finds its frame durable, and leaves. New arrivals in this window pass
  // through without blocking for the same reason.
  cv_.wait(l, [this] { return pending_requests_ == 0 && !flush_in_progress_; });
  return Status::Ok();
}

Status FlushCoordinator::ForceOffset(std::uint64_t offset, std::optional<std::uint64_t> epoch) {
  const auto start = std::chrono::steady_clock::now();
  bool led_flush = false;
  Status out = Status::Ok();
  StableLog* log = nullptr;
  {
    std::unique_lock<std::mutex> l(mu_);
    if (epoch.has_value() && *epoch != epoch_) {
      // The address belongs to a retired log generation. The swap barrier's
      // Quiesce forced that log's whole tail before the rebind, so the frame
      // is durable; waiting against the new log's offsets would be wrong
      // (a compacted log restarts at offset 0).
      return Status::Ok();
    }
    log = log_;
    ++pending_requests_;
    cv_.notify_all();  // a lingering leader may now have a full batch
    while (log_->durable_size() <= offset) {
      if (crashed_) {
        // The guardian died under us. The frame is not durable (the loop
        // condition just said so) and never will be on this incarnation —
        // the staged tail is about to be discarded. Report the in-doubt
        // outcome instead of leading a flush on a dead guardian's behalf.
        out = Status::Crashed("guardian crashed while awaiting durability");
        break;
      }
      if (flush_in_progress_) {
        cv_.wait(l);
        continue;
      }
      // Leader election: flush on behalf of every pending request — forcing
      // one entry flushes all older staged entries (§3.1).
      led_flush = true;
      flush_in_progress_ = true;
      if (config_.batch_window.count() > 0 && pending_requests_ < config_.max_batch) {
        cv_.wait_for(l, config_.batch_window,
                     [this] { return pending_requests_ >= config_.max_batch || crashed_; });
      }
      if (crashed_) {  // crash arrived while lingering: abandon the flush
        flush_in_progress_ = false;
        cv_.notify_all();
        out = Status::Crashed("guardian crashed while awaiting durability");
        break;
      }
      std::uint64_t batch = pending_requests_;
      obs::EmitBegin("log.force.batch", batch, offset);
      l.unlock();  // stagers may proceed while the medium append runs
      Status s = log_->Force();
      l.lock();
      CoordinatorObs::Get().batch_requests->Record(batch);
      obs::EmitEnd("log.force.batch", batch, s.ok() ? 1 : 0);
      flush_in_progress_ = false;
      cv_.notify_all();
      if (!s.ok()) {
        out = s;
        break;
      }
      if (log_->durable_size() <= offset && log_->staged_bytes() == 0) {
        // Misuse guard: the target frame was never staged on this log.
        out = Status::InvalidArgument("force target beyond staged extent");
        break;
      }
    }
    --pending_requests_;
    if (pending_requests_ == 0) {
      cv_.notify_all();  // wake a Quiesce waiting for the drain
    }
  }
  const auto wait = std::chrono::steady_clock::now() - start;
  const std::uint64_t wait_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(wait).count());
  log->RecordForceRequest(!led_flush, wait_ns);
  if (led_flush) {
    CoordinatorObs::Get().leader_wait_ns->Record(wait_ns);
  } else {
    CoordinatorObs::Get().follower_wait_ns->Record(wait_ns);
  }
  return out;
}

void FlushCoordinator::Crash() {
  std::lock_guard<std::mutex> l(mu_);
  crashed_ = true;
  cv_.notify_all();
}

bool FlushCoordinator::crashed() const {
  std::lock_guard<std::mutex> l(mu_);
  return crashed_;
}

void FlushCoordinator::RebindLog(StableLog* log) {
  ARGUS_CHECK(log != nullptr);
  std::lock_guard<std::mutex> l(mu_);
  ARGUS_CHECK_MSG(!flush_in_progress_ && pending_requests_ == 0,
                  "log swap under a live flush");
  log_ = log;
  ++epoch_;
}

std::uint64_t FlushCoordinator::log_epoch() const {
  std::lock_guard<std::mutex> l(mu_);
  return epoch_;
}

}  // namespace argus
