#include "src/log/flush_coordinator.h"

namespace argus {

FlushCoordinator::FlushCoordinator(StableLog* log, FlushCoordinatorConfig config)
    : log_(log), config_(config) {
  ARGUS_CHECK(log != nullptr);
}

Result<LogAddress> FlushCoordinator::ForceWrite(const LogEntry& entry) {
  LogAddress addr = log_->Write(entry);
  Status s = ForceOffset(addr.offset);
  if (!s.ok()) {
    return s;
  }
  return addr;
}

Status FlushCoordinator::ForceUpTo(LogAddress address) { return ForceOffset(address.offset); }

Status FlushCoordinator::Force() {
  std::uint64_t end = log_->end_offset();
  if (end == 0) {
    return Status::Ok();
  }
  // The last staged byte is at end-1; durable_size() > end-1 once flushed.
  return ForceOffset(end - 1);
}

Status FlushCoordinator::ForceOffset(std::uint64_t offset) {
  const auto start = std::chrono::steady_clock::now();
  bool led_flush = false;
  Status out = Status::Ok();
  StableLog* log = nullptr;
  {
    std::unique_lock<std::mutex> l(mu_);
    log = log_;
    ++pending_requests_;
    cv_.notify_all();  // a lingering leader may now have a full batch
    while (log_->durable_size() <= offset) {
      if (flush_in_progress_) {
        cv_.wait(l);
        continue;
      }
      // Leader election: flush on behalf of every pending request — forcing
      // one entry flushes all older staged entries (§3.1).
      led_flush = true;
      flush_in_progress_ = true;
      if (config_.batch_window.count() > 0 && pending_requests_ < config_.max_batch) {
        cv_.wait_for(l, config_.batch_window,
                     [this] { return pending_requests_ >= config_.max_batch; });
      }
      l.unlock();  // stagers may proceed while the medium append runs
      Status s = log_->Force();
      l.lock();
      flush_in_progress_ = false;
      cv_.notify_all();
      if (!s.ok()) {
        out = s;
        break;
      }
      if (log_->durable_size() <= offset && log_->staged_bytes() == 0) {
        // Misuse guard: the target frame was never staged on this log.
        out = Status::InvalidArgument("force target beyond staged extent");
        break;
      }
    }
    --pending_requests_;
  }
  const auto wait = std::chrono::steady_clock::now() - start;
  log->RecordForceRequest(
      !led_flush, static_cast<std::uint64_t>(
                      std::chrono::duration_cast<std::chrono::nanoseconds>(wait).count()));
  return out;
}

void FlushCoordinator::RebindLog(StableLog* log) {
  ARGUS_CHECK(log != nullptr);
  std::lock_guard<std::mutex> l(mu_);
  ARGUS_CHECK_MSG(!flush_in_progress_ && pending_requests_ == 0,
                  "log swap under a live flush");
  log_ = log;
}

}  // namespace argus
