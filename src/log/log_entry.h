// Log entry types.
//
// Figure 3-1 (simple log) and Figure 4-1 (hybrid log) define the entry
// vocabulary. One C++ type covers both organizations:
//
//  - In the simple log, a DataEntry carries the object uid, object type,
//    flattened value, and preparing aid; outcome entries carry no log
//    pointers.
//  - In the hybrid log, DataEntries carry only the object type and value
//    (uid and aid live in the prepared entry's <uid, log address> list), every
//    outcome entry carries `prev`, the address of the previous outcome entry
//    (the backward outcome chain), and PreparedEntries carry the map fragment.
//
// Unused fields are left at their invalid/null defaults; the codec writes
// presence bits so both shapes share one wire format.

#ifndef SRC_LOG_LOG_ENTRY_H_
#define SRC_LOG_LOG_ENTRY_H_

#include <string>
#include <variant>
#include <vector>

#include "src/common/ids.h"
#include "src/common/object_kind.h"

namespace argus {

// A <uid, log address> pair: one fragment of the shadowing scheme's map,
// carried by hybrid prepared entries and by committed_ss entries.
struct UidAddress {
  Uid uid;
  LogAddress address;

  friend bool operator==(const UidAddress&, const UidAddress&) = default;
};

// The flattened state of one recoverable object (§3.3.3.1).
struct DataEntry {
  Uid uid = Uid::Invalid();          // simple log only
  ObjectKind kind = ObjectKind::kAtomic;
  ActionId aid = ActionId::Invalid();  // simple log only
  std::vector<std::byte> value;      // flattened object version

  friend bool operator==(const DataEntry&, const DataEntry&) = default;
};

// Participant outcome: the action wrote all its data entries and is prepared.
struct PreparedEntry {
  ActionId aid;
  std::vector<UidAddress> objects;   // hybrid log only: map fragment
  LogAddress prev = LogAddress::Null();

  friend bool operator==(const PreparedEntry&, const PreparedEntry&) = default;
};

// Participant outcome: the coordinator said commit.
struct CommittedEntry {
  ActionId aid;
  LogAddress prev = LogAddress::Null();

  friend bool operator==(const CommittedEntry&, const CommittedEntry&) = default;
};

// Participant outcome: the coordinator said abort.
struct AbortedEntry {
  ActionId aid;
  LogAddress prev = LogAddress::Null();

  friend bool operator==(const AbortedEntry&, const AbortedEntry&) = default;
};

// Coordinator outcome: all participants prepared; the action is committed.
struct CommittingEntry {
  ActionId aid;
  std::vector<GuardianId> participants;
  LogAddress prev = LogAddress::Null();

  friend bool operator==(const CommittingEntry&, const CommittingEntry&) = default;
};

// Coordinator outcome: all participants acknowledged commit; 2PC is over.
struct DoneEntry {
  ActionId aid;
  LogAddress prev = LogAddress::Null();

  friend bool operator==(const DoneEntry&, const DoneEntry&) = default;
};

// Special outcome entry (§3.3.3.2): the base version of a newly accessible
// atomic object, recoverable regardless of the fate of the action that made
// it accessible. "Like writing the data entry plus prepared plus committed."
struct BaseCommittedEntry {
  Uid uid;
  std::vector<std::byte> value;      // flattened base version
  LogAddress prev = LogAddress::Null();

  friend bool operator==(const BaseCommittedEntry&, const BaseCommittedEntry&) = default;
};

// Special outcome entry (§3.3.3.2): the current version of a newly accessible
// atomic object that is write-locked by some *other, prepared* action.
struct PreparedDataEntry {
  Uid uid;
  std::vector<std::byte> value;      // flattened current version
  ActionId aid;                      // the prepared modifying action
  LogAddress prev = LogAddress::Null();

  friend bool operator==(const PreparedDataEntry&, const PreparedDataEntry&) = default;
};

// Housekeeping entry (ch. 5): links the data entries of the checkpointed
// committed stable state; treated on recovery as a combined prepare+commit of
// an anonymous action.
struct CommittedSsEntry {
  std::vector<UidAddress> objects;   // the CSSL
  LogAddress prev = LogAddress::Null();

  friend bool operator==(const CommittedSsEntry&, const CommittedSsEntry&) = default;
};

using LogEntry = std::variant<DataEntry, PreparedEntry, CommittedEntry, AbortedEntry,
                              CommittingEntry, DoneEntry, BaseCommittedEntry, PreparedDataEntry,
                              CommittedSsEntry>;

// True for every entry kind except DataEntry. Recovery walks outcome entries;
// data entries are only dereferenced through addresses.
bool IsOutcomeEntry(const LogEntry& entry);

// The backward-chain pointer of an outcome entry (Null for data entries and
// for simple-log entries, which have no chain).
LogAddress PrevPointer(const LogEntry& entry);

// Human-readable one-line rendering, used by the log inspector example.
std::string DescribeEntry(const LogEntry& entry);

}  // namespace argus

#endif  // SRC_LOG_LOG_ENTRY_H_
