#include "src/log/log_checker.h"

#include <map>
#include <set>
#include <unordered_map>

namespace argus {
namespace {

struct ActionEvidence {
  bool prepared = false;
  bool committed = false;
  bool aborted = false;
  bool committing = false;
  bool done = false;
};

}  // namespace

std::string LogCheckReport::ToString() const {
  std::string out = "log check: " + std::to_string(entries) + " entries (" +
                    std::to_string(outcome_entries) + " outcome, " +
                    std::to_string(data_entries) + " data), chain length " +
                    std::to_string(chain_length) + "\n";
  if (clean()) {
    out += "  OK\n";
    return out;
  }
  for (const std::string& problem : problems) {
    out += "  PROBLEM: " + problem + "\n";
  }
  return out;
}

Result<LogCheckReport> CheckLog(const StableLog& log, bool hybrid) {
  LogCheckReport report;
  std::map<std::uint64_t, LogEntry> by_offset;
  std::unordered_map<ActionId, ActionEvidence> actions;

  // Pass 1: forward decode of every entry.
  {
    StableLog::ForwardCursor cursor = log.ReadForwardFrom(0);
    while (true) {
      Result<std::optional<std::pair<LogAddress, LogEntry>>> next = cursor.Next();
      if (!next.ok()) {
        report.problems.push_back("forward scan failed at entry " +
                                  std::to_string(report.entries) + ": " +
                                  next.status().ToString());
        break;
      }
      if (!next.value().has_value()) {
        break;
      }
      const auto& [addr, entry] = *next.value();
      ++report.entries;
      if (IsOutcomeEntry(entry)) {
        ++report.outcome_entries;
      } else {
        ++report.data_entries;
      }
      by_offset.emplace(addr.offset, entry);

      if (const auto* prepared = std::get_if<PreparedEntry>(&entry)) {
        actions[prepared->aid].prepared = true;
      } else if (const auto* committed = std::get_if<CommittedEntry>(&entry)) {
        actions[committed->aid].committed = true;
      } else if (const auto* aborted = std::get_if<AbortedEntry>(&entry)) {
        actions[aborted->aid].aborted = true;
      } else if (const auto* committing = std::get_if<CommittingEntry>(&entry)) {
        actions[committing->aid].committing = true;
      } else if (const auto* done = std::get_if<DoneEntry>(&entry)) {
        actions[done->aid].done = true;
      } else if (const auto* pd = std::get_if<PreparedDataEntry>(&entry)) {
        actions[pd->aid].prepared = true;  // evidence the action prepared
      }
    }
  }

  // Pass 2: backward physical iteration must visit the same entries.
  {
    std::uint64_t backward_count = 0;
    StableLog::BackwardCursor cursor = log.ReadBackwardFromTop();
    while (true) {
      Result<std::optional<std::pair<LogAddress, LogEntry>>> next = cursor.Next();
      if (!next.ok()) {
        report.problems.push_back("backward scan failed: " + next.status().ToString());
        break;
      }
      if (!next.value().has_value()) {
        break;
      }
      ++backward_count;
      auto it = by_offset.find(next.value()->first.offset);
      if (it == by_offset.end()) {
        report.problems.push_back("backward scan found entry at " +
                                  to_string(next.value()->first) +
                                  " that forward scan missed");
      } else if (!(it->second == next.value()->second)) {
        report.problems.push_back("forward/backward disagree at " +
                                  to_string(next.value()->first));
      }
    }
    // Backward iterates only the durable part; forward also sees staged.
    if (backward_count > report.entries) {
      report.problems.push_back("backward scan saw more entries than forward scan");
    }
  }

  // Pass 3: per-action outcome sanity.
  for (const auto& [aid, evidence] : actions) {
    if (evidence.committed && evidence.aborted) {
      report.problems.push_back("action " + to_string(aid) + " both committed and aborted");
    }
    if ((evidence.committed || evidence.aborted) && !evidence.prepared) {
      report.problems.push_back("action " + to_string(aid) +
                                " has a terminal outcome but never prepared");
    }
    if (evidence.done && !evidence.committing) {
      report.problems.push_back("action " + to_string(aid) + " done without committing");
    }
  }

  if (!hybrid) {
    return report;
  }

  // Pass 4 (hybrid): chain well-formedness.
  {
    // Chain head: last outcome entry by offset.
    std::optional<std::uint64_t> head;
    for (const auto& [offset, entry] : by_offset) {
      if (IsOutcomeEntry(entry)) {
        head = offset;
      }
    }
    std::set<std::uint64_t> visited;
    std::optional<std::uint64_t> at = head;
    std::uint64_t previous = std::numeric_limits<std::uint64_t>::max();
    while (at.has_value()) {
      if (!visited.insert(*at).second) {
        report.problems.push_back("chain cycle at offset " + std::to_string(*at));
        break;
      }
      if (*at >= previous) {
        report.problems.push_back("chain pointer does not decrease at offset " +
                                  std::to_string(*at));
        break;
      }
      previous = *at;
      auto it = by_offset.find(*at);
      if (it == by_offset.end()) {
        report.problems.push_back("chain points at missing entry offset " +
                                  std::to_string(*at));
        break;
      }
      if (!IsOutcomeEntry(it->second)) {
        report.problems.push_back("chain points at a data entry at offset " +
                                  std::to_string(*at));
        break;
      }
      ++report.chain_length;

      // Pair targets must be earlier data entries.
      auto check_pairs = [&](const std::vector<UidAddress>& pairs, const char* kind) {
        for (const UidAddress& pair : pairs) {
          auto target = by_offset.find(pair.address.offset);
          if (target == by_offset.end()) {
            report.problems.push_back(std::string(kind) + " pair for " + to_string(pair.uid) +
                                      " points at missing offset " +
                                      std::to_string(pair.address.offset));
          } else if (!std::holds_alternative<DataEntry>(target->second)) {
            report.problems.push_back(std::string(kind) + " pair for " + to_string(pair.uid) +
                                      " points at a non-data entry");
          } else if (pair.address.offset >= it->first) {
            report.problems.push_back(std::string(kind) + " pair for " + to_string(pair.uid) +
                                      " points forward");
          }
        }
      };
      if (const auto* prepared = std::get_if<PreparedEntry>(&it->second)) {
        check_pairs(prepared->objects, "prepared");
      } else if (const auto* css = std::get_if<CommittedSsEntry>(&it->second)) {
        check_pairs(css->objects, "committed_ss");
      }

      LogAddress prev = PrevPointer(it->second);
      at = prev.is_null() ? std::nullopt : std::optional<std::uint64_t>(prev.offset);
    }

    // Every outcome entry must be ON the chain (no orphans) — staged entries
    // excluded, since their covering force has not happened yet.
    for (const auto& [offset, entry] : by_offset) {
      if (IsOutcomeEntry(entry) && offset < log.durable_size() &&
          visited.find(offset) == visited.end()) {
        report.problems.push_back("outcome entry at offset " + std::to_string(offset) +
                                  " is not reachable from the chain head");
      }
    }
  }
  return report;
}

}  // namespace argus
