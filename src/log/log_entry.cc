#include "src/log/log_entry.h"

namespace argus {
namespace {

struct PrevVisitor {
  LogAddress operator()(const DataEntry&) const { return LogAddress::Null(); }
  LogAddress operator()(const PreparedEntry& e) const { return e.prev; }
  LogAddress operator()(const CommittedEntry& e) const { return e.prev; }
  LogAddress operator()(const AbortedEntry& e) const { return e.prev; }
  LogAddress operator()(const CommittingEntry& e) const { return e.prev; }
  LogAddress operator()(const DoneEntry& e) const { return e.prev; }
  LogAddress operator()(const BaseCommittedEntry& e) const { return e.prev; }
  LogAddress operator()(const PreparedDataEntry& e) const { return e.prev; }
  LogAddress operator()(const CommittedSsEntry& e) const { return e.prev; }
};

std::string DescribeUidAddresses(const std::vector<UidAddress>& pairs) {
  std::string out = "[";
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += "<" + to_string(pairs[i].uid) + "," + to_string(pairs[i].address) + ">";
  }
  out += "]";
  return out;
}

struct DescribeVisitor {
  std::string operator()(const DataEntry& e) const {
    std::string out = "data{";
    if (e.uid.valid()) {
      out += to_string(e.uid) + ", ";
    }
    out += ObjectKindName(e.kind);
    out += ", " + std::to_string(e.value.size()) + "B";
    if (e.aid.valid()) {
      out += ", " + to_string(e.aid);
    }
    return out + "}";
  }
  std::string operator()(const PreparedEntry& e) const {
    std::string out = "prepared{" + to_string(e.aid);
    if (!e.objects.empty()) {
      out += ", " + DescribeUidAddresses(e.objects);
    }
    return out + "}";
  }
  std::string operator()(const CommittedEntry& e) const {
    return "committed{" + to_string(e.aid) + "}";
  }
  std::string operator()(const AbortedEntry& e) const {
    return "aborted{" + to_string(e.aid) + "}";
  }
  std::string operator()(const CommittingEntry& e) const {
    std::string out = "committing{" + to_string(e.aid) + ", gids=[";
    for (std::size_t i = 0; i < e.participants.size(); ++i) {
      if (i > 0) {
        out += ",";
      }
      out += to_string(e.participants[i]);
    }
    return out + "]}";
  }
  std::string operator()(const DoneEntry& e) const { return "done{" + to_string(e.aid) + "}"; }
  std::string operator()(const BaseCommittedEntry& e) const {
    return "base_committed{" + to_string(e.uid) + ", " + std::to_string(e.value.size()) + "B}";
  }
  std::string operator()(const PreparedDataEntry& e) const {
    return "prepared_data{" + to_string(e.uid) + ", " + std::to_string(e.value.size()) + "B, " +
           to_string(e.aid) + "}";
  }
  std::string operator()(const CommittedSsEntry& e) const {
    return "committed_ss{" + DescribeUidAddresses(e.objects) + "}";
  }
};

}  // namespace

bool IsOutcomeEntry(const LogEntry& entry) {
  return !std::holds_alternative<DataEntry>(entry);
}

LogAddress PrevPointer(const LogEntry& entry) { return std::visit(PrevVisitor{}, entry); }

std::string DescribeEntry(const LogEntry& entry) { return std::visit(DescribeVisitor{}, entry); }

}  // namespace argus
