// The stable log abstraction of §3.1.
//
// Operations (after [Raible 83] as quoted in the thesis):
//   write        — stage an entry; it may not be durable yet
//   force_write  — stage an entry and durably flush it *and every older
//                  staged entry*
//   read         — fetch the entry at a log address
//   read_backward— iterate entries backward from an address
//   get_top      — address of the last entry that was forced
//
// Entries are framed [len u32][payload][crc u32][len u32]; the trailing
// length makes backward physical iteration possible, and the CRC rejects torn
// frames on media that are not inherently atomic (plain files).
//
// A crash (Guardian restart) discards the staged tail — exactly the
// volatility the outcome-entry protocol is designed around. After a crash,
// RecoverAfterCrash() re-derives the durable top by scanning frames forward.
//
// Thread-safety: every public operation is internally synchronized by one
// coarse mutex, so N actions may stage and read concurrently. Force() holds
// the mutex across the medium append — concurrent writers briefly block
// during a physical flush, which is what makes "force one entry ⇒ every
// older staged entry is durable" trivially true under concurrency. Callers
// who want their forces *coalesced* (one physical append serving many
// concurrent force_writes) go through the FlushCoordinator in
// src/log/flush_coordinator.h rather than calling Force() from every thread.
// RecoverAfterCrash() and the accessors returning references still assume a
// quiescent log (recovery and housekeeping are single-threaded phases).

#ifndef SRC_LOG_STABLE_LOG_H_
#define SRC_LOG_STABLE_LOG_H_

#include <memory>
#include <mutex>
#include <optional>

#include "src/log/entry_codec.h"
#include "src/log/log_entry.h"
#include "src/stable/stable_medium.h"

namespace argus {

struct LogStats {
  std::uint64_t entries_written = 0;
  std::uint64_t forces = 0;               // physical medium appends
  std::uint64_t bytes_forced = 0;
  std::uint64_t entries_read = 0;

  // Group-commit accounting (fed by StableLog::Force and by the
  // FlushCoordinator when one is layered on top).
  std::uint64_t force_requests = 0;       // logical force calls by actions
  std::uint64_t coalesced_requests = 0;   // requests served by another
                                          // thread's physical flush
  std::uint64_t max_entries_per_force = 0;
  std::uint64_t total_force_wait_ns = 0;  // time actions spent waiting for
                                          // their entry to become durable

  double entries_per_force() const {
    return forces == 0 ? 0.0
                       : static_cast<double>(entries_written) / static_cast<double>(forces);
  }
};

class StableLog {
 public:
  explicit StableLog(std::unique_ptr<StableMedium> medium);

  StableLog(const StableLog&) = delete;
  StableLog& operator=(const StableLog&) = delete;

  // Stages `entry` and returns its (future) address. The entry becomes
  // durable at the next Force()/ForceWrite().
  LogAddress Write(const LogEntry& entry);

  // Stages `entry` then durably flushes the whole staged tail.
  Result<LogAddress> ForceWrite(const LogEntry& entry);

  // Durably flushes the staged tail (group commit).
  Status Force();

  // Reads the entry at `address`. Staged (not yet forced) entries are
  // readable too — housekeeping reads behind the writer within one run.
  Result<LogEntry> Read(LogAddress address) const;

  // Address of the last *forced* entry, or nullopt if the log is empty.
  // Monotone under concurrency: forces only ever advance the top.
  std::optional<LogAddress> GetTop() const;

  // Walks entries backward: Read(address), then step to the physically
  // preceding entry. Next() yields entries until the beginning of the log.
  class BackwardCursor {
   public:
    BackwardCursor(const StableLog* log, std::optional<LogAddress> start)
        : log_(log), next_(start) {}

    // nullopt at the beginning of the log; a Status on a broken frame.
    Result<std::optional<std::pair<LogAddress, LogEntry>>> Next();

   private:
    const StableLog* log_;
    std::optional<LogAddress> next_;
  };

  BackwardCursor ReadBackwardFrom(LogAddress address) const {
    return BackwardCursor(this, address);
  }
  BackwardCursor ReadBackwardFromTop() const { return BackwardCursor(this, GetTop()); }

  // Walks entries forward from a byte offset (used by housekeeping stage 2 to
  // copy activity that arrived after the housekeeping marker). Iterates
  // through staged (unforced) entries as well.
  class ForwardCursor {
   public:
    ForwardCursor(const StableLog* log, std::uint64_t offset) : log_(log), next_(offset) {}

    // nullopt at the end of the log.
    Result<std::optional<std::pair<LogAddress, LogEntry>>> Next();

    // The offset the next Next() will read from. After Next() returns
    // nullopt this is the end of the log as of that call — a later cursor
    // started here resumes cleanly past everything already read (stage 2's
    // incremental catch-up passes rely on this).
    std::uint64_t offset() const { return next_; }

   private:
    const StableLog* log_;
    std::uint64_t next_;
  };

  ForwardCursor ReadForwardFrom(std::uint64_t offset) const { return ForwardCursor(this, offset); }

  // End offset of everything written so far (forced or staged).
  std::uint64_t end_offset() const;

  // Bytes / entries staged but not yet forced.
  std::uint64_t staged_bytes() const;
  std::uint64_t staged_entries() const;

  // Discards the staged tail (what a crash does to volatile state) and
  // re-derives the durable top from the medium. Returns the number of durable
  // entries found.
  Result<std::uint64_t> RecoverAfterCrash();

  // True if nothing has ever been forced.
  bool empty() const;

  std::uint64_t durable_size() const;

  // Reference accessor for single-threaded phases (tests, recovery); use
  // StatsSnapshot() when other threads may be writing.
  const LogStats& stats() const { return stats_; }
  LogStats StatsSnapshot() const;

  // Group-commit bookkeeping hook for the FlushCoordinator: one logical force
  // request finished after `wait_ns`; `coalesced` when it was satisfied by a
  // flush some other thread led.
  void RecordForceRequest(bool coalesced, std::uint64_t wait_ns);

  StableMedium& medium() { return *medium_; }

 private:
  static constexpr std::uint64_t kFrameOverhead = 12;  // len + crc + len

  LogAddress WriteLocked(const LogEntry& entry);
  Status ForceLocked();

  // Reads the raw frame that starts at `offset`; also returns the offset of
  // the frame that physically precedes it (nullopt if first) and/or the
  // offset just past this frame. Caller holds mu_.
  Result<LogEntry> ReadFrameAt(std::uint64_t offset, std::optional<std::uint64_t>* prev,
                               std::uint64_t* next = nullptr) const;

  // Locked frame read for the cursors (also ticks entries_read).
  Result<LogEntry> ReadFrameForCursor(std::uint64_t offset, std::optional<std::uint64_t>* prev,
                                      std::uint64_t* next) const;

  mutable std::mutex mu_;
  std::unique_ptr<StableMedium> medium_;
  std::vector<std::byte> staged_;          // encoded frames not yet forced
  std::uint64_t staged_entry_count_ = 0;
  std::optional<LogAddress> last_forced_;  // top
  std::optional<LogAddress> last_staged_;  // last written (forced or not)
  mutable LogStats stats_;                 // read counters tick in const reads
};

}  // namespace argus

#endif  // SRC_LOG_STABLE_LOG_H_
