// The stable log abstraction of §3.1.
//
// Operations (after [Raible 83] as quoted in the thesis):
//   write        — stage an entry; it may not be durable yet
//   force_write  — stage an entry and durably flush it *and every older
//                  staged entry*
//   read         — fetch the entry at a log address
//   read_backward— iterate entries backward from an address
//   get_top      — address of the last entry that was forced
//
// Entries are framed [len u32][payload][crc u32][len u32]; the trailing
// length makes backward physical iteration possible, and the CRC rejects torn
// frames on media that are not inherently atomic (plain files).
//
// A crash (Guardian restart) discards the staged tail — exactly the
// volatility the outcome-entry protocol is designed around. After a crash,
// RecoverAfterCrash() re-derives the durable top by scanning frames forward.
//
// Thread-safety: every public operation is internally synchronized by one
// coarse mutex, so N actions may stage and read concurrently. Force() holds
// the mutex across the medium append — concurrent writers briefly block
// during a physical flush, which is what makes "force one entry ⇒ every
// older staged entry is durable" trivially true under concurrency. Callers
// who want their forces *coalesced* (one physical append serving many
// concurrent force_writes) go through the FlushCoordinator in
// src/log/flush_coordinator.h rather than calling Force() from every thread.
// RecoverAfterCrash() and the accessors returning references still assume a
// quiescent log (recovery and housekeeping are single-threaded phases).
//
// Reads of durable bytes go through a block ReadCache (src/stable/read_cache)
// whose mutex is the single funnel for all medium access; ReadFrameView /
// ReadMany serve concurrent readers (the pipelined recovery's worker pool)
// without holding the log mutex for the medium fetch, CRC check, or decode.

#ifndef SRC_LOG_STABLE_LOG_H_
#define SRC_LOG_STABLE_LOG_H_

#include <memory>
#include <mutex>
#include <optional>

#include "src/log/entry_codec.h"
#include "src/log/log_entry.h"
#include "src/stable/read_cache.h"
#include "src/stable/stable_medium.h"

namespace argus {

struct LogStats {
  std::uint64_t entries_written = 0;
  std::uint64_t forces = 0;               // physical medium appends
  std::uint64_t bytes_forced = 0;
  std::uint64_t physical_bytes = 0;       // bytes the medium physically wrote,
                                          // summed over all N replicas (merged
                                          // in by StatsSnapshot; write
                                          // amplification = physical_bytes /
                                          // bytes_forced)
  std::uint64_t entries_read = 0;

  // Group-commit accounting (fed by StableLog::Force and by the
  // FlushCoordinator when one is layered on top).
  std::uint64_t force_requests = 0;       // logical force calls by actions
  std::uint64_t coalesced_requests = 0;   // requests served by another
                                          // thread's physical flush
  std::uint64_t max_entries_per_force = 0;
  std::uint64_t total_force_wait_ns = 0;  // time actions spent waiting for
                                          // their entry to become durable

  // Read-side accounting. The cache counters are merged in by
  // StatsSnapshot() from the ReadCache; the pipeline counters are fed by the
  // pipelined hybrid recovery via RecordPipelineStats().
  std::uint64_t cache_hits = 0;           // reads served from cached blocks
  std::uint64_t cache_misses = 0;         // reads that touched the medium
  std::uint64_t cache_bytes_read = 0;     // bytes fetched from the medium
  std::uint64_t readahead_blocks = 0;     // blocks fetched ahead of a scan
  std::uint64_t read_batches = 0;         // ReadMany calls
  std::uint64_t batched_reads = 0;        // entries fetched via ReadMany
  std::uint64_t pipeline_prefetches = 0;  // data entries fetched speculatively
  std::uint64_t pipeline_prefetch_hits = 0;  // speculative fetches consumed
  std::uint64_t pipeline_sync_reads = 0;  // apply-phase synchronous fallbacks

  double entries_per_force() const {
    return forces == 0 ? 0.0
                       : static_cast<double>(entries_written) / static_cast<double>(forces);
  }
  double cache_hit_rate() const {
    std::uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) / static_cast<double>(total);
  }
  // Worker utilization: fraction of speculative fetches the chain walk
  // actually consumed (1.0 = every prefetch did useful work).
  double prefetch_hit_rate() const {
    return pipeline_prefetches == 0
               ? 0.0
               : static_cast<double>(pipeline_prefetch_hits) /
                     static_cast<double>(pipeline_prefetches);
  }
};

class StableLog {
 public:
  explicit StableLog(std::unique_ptr<StableMedium> medium,
                     ReadCache::Config cache_config = ReadCache::Config());

  StableLog(const StableLog&) = delete;
  StableLog& operator=(const StableLog&) = delete;

  // Stages `entry` and returns its (future) address. The entry becomes
  // durable at the next Force()/ForceWrite().
  LogAddress Write(const LogEntry& entry);

  // Stages `entry` then durably flushes the whole staged tail.
  Result<LogAddress> ForceWrite(const LogEntry& entry);

  // Durably flushes the staged tail (group commit).
  Status Force();

  // Reads the entry at `address`. Staged (not yet forced) entries are
  // readable too — housekeeping reads behind the writer within one run.
  Result<LogEntry> Read(LogAddress address) const;

  // A validated frame's payload pinned in the read cache: repeat reads of a
  // cached frame are zero-copy, and recovery decodes straight out of the
  // pinned bytes (DecodeDataEntryView) instead of per-entry heap copies.
  // Valid past eviction, Clear, and log destruction.
  class FrameView {
   public:
    FrameView() = default;
    std::span<const std::byte> payload() const { return payload_; }

   private:
    friend class StableLog;
    ReadCache::View view_;
    std::span<const std::byte> payload_;
  };

  // Reads the frame at `address` as a pinned view. Safe to call from many
  // threads concurrently (the recovery worker pool does): durable frames go
  // through the read cache without holding the log mutex, frames touching
  // the staged tail fall back to a locked stitched read.
  Result<FrameView> ReadFrameView(LogAddress address) const;

  // As above, additionally reporting whether the frame was served from an
  // already-validated cache residence (a repeat read that skipped the medium
  // and the CRC check). Steady-state table dereferences use this as their
  // cache-hit signal; staged-tail and pass-through reads report false.
  Result<FrameView> ReadFrameView(LogAddress address, bool* cache_validated) const;

  // Batched form of Read for the recovery pipeline: fetches every address,
  // processing them in ascending offset order for cache-fill locality, and
  // returns results in input order.
  std::vector<Result<LogEntry>> ReadMany(std::span<const LogAddress> addresses) const;

  // Address of the last *forced* entry, or nullopt if the log is empty.
  // Monotone under concurrency: forces only ever advance the top.
  std::optional<LogAddress> GetTop() const;

  // Walks entries backward: Read(address), then step to the physically
  // preceding entry. Next() yields entries until the beginning of the log.
  class BackwardCursor {
   public:
    BackwardCursor(const StableLog* log, std::optional<LogAddress> start)
        : log_(log), next_(start) {}

    // nullopt at the beginning of the log; a Status on a broken frame.
    Result<std::optional<std::pair<LogAddress, LogEntry>>> Next();

   private:
    const StableLog* log_;
    std::optional<LogAddress> next_;
  };

  BackwardCursor ReadBackwardFrom(LogAddress address) const {
    return BackwardCursor(this, address);
  }
  BackwardCursor ReadBackwardFromTop() const { return BackwardCursor(this, GetTop()); }

  // Walks entries forward from a byte offset (used by housekeeping stage 2 to
  // copy activity that arrived after the housekeeping marker). Iterates
  // through staged (unforced) entries as well.
  class ForwardCursor {
   public:
    ForwardCursor(const StableLog* log, std::uint64_t offset) : log_(log), next_(offset) {}

    // nullopt at the end of the log.
    Result<std::optional<std::pair<LogAddress, LogEntry>>> Next();

    // The offset the next Next() will read from. After Next() returns
    // nullopt this is the end of the log as of that call — a later cursor
    // started here resumes cleanly past everything already read (stage 2's
    // incremental catch-up passes rely on this).
    std::uint64_t offset() const { return next_; }

   private:
    const StableLog* log_;
    std::uint64_t next_;
  };

  ForwardCursor ReadForwardFrom(std::uint64_t offset) const { return ForwardCursor(this, offset); }

  // End offset of everything written so far (forced or staged).
  std::uint64_t end_offset() const;

  // Bytes / entries staged but not yet forced.
  std::uint64_t staged_bytes() const;
  std::uint64_t staged_entries() const;

  // Discards the staged tail (what a crash does to volatile state) and
  // re-derives the durable top from the medium. Returns the number of durable
  // entries found.
  Result<std::uint64_t> RecoverAfterCrash();

  // True if nothing has ever been forced.
  bool empty() const;

  std::uint64_t durable_size() const;

  // Reference accessor for single-threaded phases (tests, recovery); use
  // StatsSnapshot() when other threads may be writing.
  const LogStats& stats() const { return stats_; }
  LogStats StatsSnapshot() const;

  // Group-commit bookkeeping hook for the FlushCoordinator: one logical force
  // request finished after `wait_ns`; `coalesced` when it was satisfied by a
  // flush some other thread led.
  void RecordForceRequest(bool coalesced, std::uint64_t wait_ns);

  // Pipelined-recovery bookkeeping hook (see RecoverHybridLog): `prefetches`
  // data entries were fetched speculatively by workers, `prefetch_hits` of
  // them were consumed by the apply phase, `sync_reads` had to be read
  // synchronously because no prefetch covered them.
  void RecordPipelineStats(std::uint64_t prefetches, std::uint64_t prefetch_hits,
                           std::uint64_t sync_reads) const;

  StableMedium& medium() { return *medium_; }

  // The block cache under every durable read. Benchmarks toggle it to
  // measure the uncached path; recovery clears it on RecoverAfterCrash so a
  // restart never trusts pre-crash bytes.
  ReadCache& read_cache() const { return cache_; }

 private:
  static constexpr std::uint64_t kFrameOverhead = 12;  // len + crc + len
  // ReadFrameViewAt's single-probe size: covers the header plus the whole
  // frame for typical entries, so a frame read is usually one cache access.
  static constexpr std::uint64_t kFrameProbeLen = 256;

  LogAddress WriteLocked(const LogEntry& entry);
  Status ForceLocked();

  // Reads the raw frame that starts at `offset`; also returns the offset of
  // the frame that physically precedes it (nullopt if first) and/or the
  // offset just past this frame. Caller holds mu_ (durable bytes still go
  // through the cache; mu_ -> cache mutex is the fixed lock order).
  Result<LogEntry> ReadFrameAt(std::uint64_t offset, std::optional<std::uint64_t>* prev,
                               std::uint64_t* next = nullptr) const;

  // Locked frame read for the cursors (also ticks entries_read).
  Result<LogEntry> ReadFrameForCursor(std::uint64_t offset, std::optional<std::uint64_t>* prev,
                                      std::uint64_t* next) const;

  // Lock-free frame read against a consistent (durable, total) snapshot;
  // the workhorse of ReadFrameView. Validates trailer + CRC once per cache
  // residence (ReadCache's frame memo).
  Result<FrameView> ReadFrameViewAt(std::uint64_t offset, std::uint64_t durable,
                                    std::uint64_t total, bool* cache_validated = nullptr) const;

  mutable std::mutex mu_;
  std::unique_ptr<StableMedium> medium_;
  mutable ReadCache cache_;                // all durable reads + appends funnel here
  std::vector<std::byte> staged_;          // encoded frames not yet forced
  std::uint64_t staged_entry_count_ = 0;
  std::optional<LogAddress> last_forced_;  // top
  std::optional<LogAddress> last_staged_;  // last written (forced or not)
  mutable LogStats stats_;                 // read counters tick in const reads
};

}  // namespace argus

#endif  // SRC_LOG_STABLE_LOG_H_
