// The stable log abstraction of §3.1.
//
// Operations (after [Raible 83] as quoted in the thesis):
//   write        — stage an entry; it may not be durable yet
//   force_write  — stage an entry and durably flush it *and every older
//                  staged entry*
//   read         — fetch the entry at a log address
//   read_backward— iterate entries backward from an address
//   get_top      — address of the last entry that was forced
//
// Entries are framed [len u32][payload][crc u32][len u32]; the trailing
// length makes backward physical iteration possible, and the CRC rejects torn
// frames on media that are not inherently atomic (plain files).
//
// A crash (Guardian restart) discards the staged tail — exactly the
// volatility the outcome-entry protocol is designed around. After a crash,
// RecoverAfterCrash() re-derives the durable top by scanning frames forward.

#ifndef SRC_LOG_STABLE_LOG_H_
#define SRC_LOG_STABLE_LOG_H_

#include <memory>
#include <optional>

#include "src/log/entry_codec.h"
#include "src/log/log_entry.h"
#include "src/stable/stable_medium.h"

namespace argus {

struct LogStats {
  std::uint64_t entries_written = 0;
  std::uint64_t forces = 0;
  std::uint64_t bytes_forced = 0;
  std::uint64_t entries_read = 0;
};

class StableLog {
 public:
  explicit StableLog(std::unique_ptr<StableMedium> medium);

  StableLog(const StableLog&) = delete;
  StableLog& operator=(const StableLog&) = delete;

  // Stages `entry` and returns its (future) address. The entry becomes
  // durable at the next Force()/ForceWrite().
  LogAddress Write(const LogEntry& entry);

  // Stages `entry` then durably flushes the whole staged tail.
  Result<LogAddress> ForceWrite(const LogEntry& entry);

  // Durably flushes the staged tail (group commit).
  Status Force();

  // Reads the entry at `address`. Staged (not yet forced) entries are
  // readable too — housekeeping reads behind the writer within one run.
  Result<LogEntry> Read(LogAddress address) const;

  // Address of the last *forced* entry, or nullopt if the log is empty.
  std::optional<LogAddress> GetTop() const;

  // Walks entries backward: Read(address), then step to the physically
  // preceding entry. Next() yields entries until the beginning of the log.
  class BackwardCursor {
   public:
    BackwardCursor(const StableLog* log, std::optional<LogAddress> start)
        : log_(log), next_(start) {}

    // nullopt at the beginning of the log; a Status on a broken frame.
    Result<std::optional<std::pair<LogAddress, LogEntry>>> Next();

   private:
    const StableLog* log_;
    std::optional<LogAddress> next_;
  };

  BackwardCursor ReadBackwardFrom(LogAddress address) const {
    return BackwardCursor(this, address);
  }
  BackwardCursor ReadBackwardFromTop() const { return BackwardCursor(this, GetTop()); }

  // Walks entries forward from a byte offset (used by housekeeping stage 2 to
  // copy activity that arrived after the housekeeping marker). Iterates
  // through staged (unforced) entries as well.
  class ForwardCursor {
   public:
    ForwardCursor(const StableLog* log, std::uint64_t offset) : log_(log), next_(offset) {}

    // nullopt at the end of the log.
    Result<std::optional<std::pair<LogAddress, LogEntry>>> Next();

   private:
    const StableLog* log_;
    std::uint64_t next_;
  };

  ForwardCursor ReadForwardFrom(std::uint64_t offset) const { return ForwardCursor(this, offset); }

  // End offset of everything written so far (forced or staged).
  std::uint64_t end_offset() const { return medium_->durable_size() + staged_.size(); }

  // Discards the staged tail (what a crash does to volatile state) and
  // re-derives the durable top from the medium. Returns the number of durable
  // entries found.
  Result<std::uint64_t> RecoverAfterCrash();

  // True if nothing has ever been forced.
  bool empty() const { return !last_forced_.has_value(); }

  std::uint64_t durable_size() const { return medium_->durable_size(); }
  const LogStats& stats() const { return stats_; }
  StableMedium& medium() { return *medium_; }

 private:
  static constexpr std::uint64_t kFrameOverhead = 12;  // len + crc + len

  // Reads the raw frame that starts at `offset`; also returns the offset of
  // the frame that physically precedes it (nullopt if first) and/or the
  // offset just past this frame.
  Result<LogEntry> ReadFrameAt(std::uint64_t offset, std::optional<std::uint64_t>* prev,
                               std::uint64_t* next = nullptr) const;

  std::unique_ptr<StableMedium> medium_;
  std::vector<std::byte> staged_;          // encoded frames not yet forced
  std::optional<LogAddress> last_forced_;  // top
  std::optional<LogAddress> last_staged_;  // last written (forced or not)
  mutable LogStats stats_;                 // read counters tick in const reads
};

}  // namespace argus

#endif  // SRC_LOG_STABLE_LOG_H_
