// Group-commit flush coordinator.
//
// §3.1 defines force_write so that forcing one entry durably flushes *every*
// older staged entry. That contract is exactly what makes group commit sound:
// when N actions want their outcome entries durable at roughly the same time,
// one physical flush of the staged tail serves all N. This class turns the
// contract into a concurrency structure (leader/follower, after the group
// commit of LogBase and of classic commercial logging systems):
//
//   - every thread stages its entry itself (StableLog::Write is thread-safe
//     and assigns the address immediately, which the writer needs for the
//     backward outcome chain), then calls ForceUpTo(address);
//   - the first thread to find no flush in progress becomes the *leader*. It
//     may linger for `batch_window` to let more threads stage and join, then
//     performs ONE StableLog::Force covering the whole staged tail;
//   - every other thread is a *follower*: it blocks until a flush that covers
//     its address completes. A follower never touches the medium.
//
// Crash equivalence: a coalesced force is a single medium append, so a crash
// anywhere inside it is indistinguishable from a crash before the batch (the
// superblock/torn-tail machinery below discards the partial append). Group
// commit therefore changes throughput, never the set of legal recovery
// outcomes — the crash-matrix tests verify this step by step.

#ifndef SRC_LOG_FLUSH_COORDINATOR_H_
#define SRC_LOG_FLUSH_COORDINATOR_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "src/log/stable_log.h"

namespace argus {

struct FlushCoordinatorConfig {
  // How long a leader lingers for followers to stage their entries before
  // flushing. Zero flushes immediately (coalescing then only happens when
  // followers arrive while a flush is already running).
  std::chrono::microseconds batch_window{0};
  // The leader stops lingering early once this many force requests are
  // pending.
  std::size_t max_batch = 32;
};

class FlushCoordinator {
 public:
  explicit FlushCoordinator(StableLog* log, FlushCoordinatorConfig config = {});

  FlushCoordinator(const FlushCoordinator&) = delete;
  FlushCoordinator& operator=(const FlushCoordinator&) = delete;

  // Stages `entry` and blocks until it is durable (joining or leading a
  // coalesced flush).
  Result<LogAddress> ForceWrite(const LogEntry& entry);

  // Blocks until the entry at `address` (staged by the caller) is durable.
  Status ForceUpTo(LogAddress address);

  // Epoch-checked variant for callers that stage under an external exclusion
  // that also covers log swaps (the online checkpointer's swap barrier). The
  // caller reads log_epoch() in the same critical section as its Stage* call;
  // if a swap happened in between, the address names a frame of the RETIRED
  // log — which Quiesce() already made durable — so the wait returns Ok
  // immediately instead of misinterpreting the offset against the new log.
  Status ForceUpTo(LogAddress address, std::uint64_t epoch);

  // Durably flushes everything staged so far (leader/follower group commit).
  Status Force();

  // The swap barrier's drain: forces the bound log's whole staged tail and
  // then blocks until no force request is in flight. The caller must already
  // exclude *staging* (no new entries can appear); requests from entries
  // staged before the barrier may still arrive during the drain — they find
  // their frames durable and pass straight through. After Quiesce returns
  // with staging still excluded, RebindLog's quiescence precondition holds.
  Status Quiesce();

  // After a housekeeping log swap the coordinator must follow the writer to
  // the new log. Requires quiescence (no concurrent force requests), which
  // Quiesce() establishes under the swap barrier. Advances the log epoch.
  void RebindLog(StableLog* log);

  // Crash wakeup: marks this coordinator's guardian as crashed and wakes every
  // blocked force request. Waiters whose frame is already durable still return
  // Ok (the entry genuinely survived); everyone else — current and future —
  // returns kCrashed instead of flushing, so no thread deadlocks against a
  // log whose staged tail is about to be discarded, and no thread leads a new
  // physical flush on a dead guardian's behalf. There is deliberately no
  // "revive": a restart builds a fresh coordinator for the new incarnation.
  // A flush leader already inside the medium append finishes it (a coalesced
  // force is one atomic append; see the crash-equivalence note above) and its
  // followers whose frames that append covered return Ok.
  void Crash();

  // True once Crash() was called.
  bool crashed() const;

  // Monotone counter identifying the bound log's generation; bumped by every
  // RebindLog. Read it while holding the same exclusion as the Stage* call
  // whose address will be waited on.
  std::uint64_t log_epoch() const;

  const FlushCoordinatorConfig& config() const { return config_; }

 private:
  // Waits until durable_size() exceeds `offset` — i.e. the frame starting at
  // `offset` has been appended to the medium. `epoch` of nullopt means "the
  // current log, whatever it is" (legacy single-log callers).
  Status ForceOffset(std::uint64_t offset, std::optional<std::uint64_t> epoch);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  StableLog* log_;
  FlushCoordinatorConfig config_;
  bool flush_in_progress_ = false;
  bool crashed_ = false;
  std::size_t pending_requests_ = 0;
  std::uint64_t epoch_ = 0;
};

}  // namespace argus

#endif  // SRC_LOG_FLUSH_COORDINATOR_H_
