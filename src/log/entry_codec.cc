#include "src/log/entry_codec.h"

namespace argus {
namespace {

enum class WireKind : std::uint8_t {
  kData = 1,
  kPrepared = 2,
  kCommitted = 3,
  kAborted = 4,
  kCommitting = 5,
  kDone = 6,
  kBaseCommitted = 7,
  kPreparedData = 8,
  kCommittedSs = 9,
};

void PutUidAddresses(ByteWriter& w, const std::vector<UidAddress>& pairs) {
  w.PutVarint(pairs.size());
  for (const UidAddress& p : pairs) {
    w.PutUid(p.uid);
    w.PutLogAddress(p.address);
  }
}

Result<std::vector<UidAddress>> ReadUidAddresses(ByteReader& r) {
  Result<std::uint64_t> n = r.ReadVarint();
  if (!n.ok()) {
    return n.status();
  }
  if (n.value() > (1u << 24)) {
    return Status::Corruption("absurd uid-address list length");
  }
  std::vector<UidAddress> out;
  out.reserve(n.value());
  for (std::uint64_t i = 0; i < n.value(); ++i) {
    Result<Uid> uid = r.ReadUid();
    if (!uid.ok()) {
      return uid.status();
    }
    Result<LogAddress> addr = r.ReadLogAddress();
    if (!addr.ok()) {
      return addr.status();
    }
    out.push_back(UidAddress{uid.value(), addr.value()});
  }
  return out;
}

struct EncodeVisitor {
  ByteWriter& w;

  void operator()(const DataEntry& e) const {
    w.PutU8(static_cast<std::uint8_t>(WireKind::kData));
    w.PutUid(e.uid);
    w.PutU8(static_cast<std::uint8_t>(e.kind));
    w.PutActionId(e.aid);
    w.PutBlob(AsSpan(e.value));
  }
  void operator()(const PreparedEntry& e) const {
    w.PutU8(static_cast<std::uint8_t>(WireKind::kPrepared));
    w.PutActionId(e.aid);
    PutUidAddresses(w, e.objects);
    w.PutLogAddress(e.prev);
  }
  void operator()(const CommittedEntry& e) const {
    w.PutU8(static_cast<std::uint8_t>(WireKind::kCommitted));
    w.PutActionId(e.aid);
    w.PutLogAddress(e.prev);
  }
  void operator()(const AbortedEntry& e) const {
    w.PutU8(static_cast<std::uint8_t>(WireKind::kAborted));
    w.PutActionId(e.aid);
    w.PutLogAddress(e.prev);
  }
  void operator()(const CommittingEntry& e) const {
    w.PutU8(static_cast<std::uint8_t>(WireKind::kCommitting));
    w.PutActionId(e.aid);
    w.PutVarint(e.participants.size());
    for (GuardianId gid : e.participants) {
      w.PutGuardianId(gid);
    }
    w.PutLogAddress(e.prev);
  }
  void operator()(const DoneEntry& e) const {
    w.PutU8(static_cast<std::uint8_t>(WireKind::kDone));
    w.PutActionId(e.aid);
    w.PutLogAddress(e.prev);
  }
  void operator()(const BaseCommittedEntry& e) const {
    w.PutU8(static_cast<std::uint8_t>(WireKind::kBaseCommitted));
    w.PutUid(e.uid);
    w.PutBlob(AsSpan(e.value));
    w.PutLogAddress(e.prev);
  }
  void operator()(const PreparedDataEntry& e) const {
    w.PutU8(static_cast<std::uint8_t>(WireKind::kPreparedData));
    w.PutUid(e.uid);
    w.PutBlob(AsSpan(e.value));
    w.PutActionId(e.aid);
    w.PutLogAddress(e.prev);
  }
  void operator()(const CommittedSsEntry& e) const {
    w.PutU8(static_cast<std::uint8_t>(WireKind::kCommittedSs));
    PutUidAddresses(w, e.objects);
    w.PutLogAddress(e.prev);
  }
};

// Reads a field or propagates its status out of the enclosing function.
#define READ_OR_RETURN(var, expr)      \
  auto var##_result = (expr);          \
  if (!var##_result.ok()) {            \
    return var##_result.status();      \
  }                                    \
  auto var = std::move(var##_result).value()

Result<LogEntry> DecodeData(ByteReader& r) {
  READ_OR_RETURN(uid, r.ReadUid());
  READ_OR_RETURN(kind, r.ReadU8());
  if (kind > 1) {
    return Status::Corruption("bad object kind");
  }
  READ_OR_RETURN(aid, r.ReadActionId());
  READ_OR_RETURN(value, r.ReadBlob());
  return LogEntry(DataEntry{uid, static_cast<ObjectKind>(kind), aid, std::move(value)});
}

Result<LogEntry> DecodePrepared(ByteReader& r) {
  READ_OR_RETURN(aid, r.ReadActionId());
  READ_OR_RETURN(objects, ReadUidAddresses(r));
  READ_OR_RETURN(prev, r.ReadLogAddress());
  return LogEntry(PreparedEntry{aid, std::move(objects), prev});
}

Result<LogEntry> DecodeCommitted(ByteReader& r) {
  READ_OR_RETURN(aid, r.ReadActionId());
  READ_OR_RETURN(prev, r.ReadLogAddress());
  return LogEntry(CommittedEntry{aid, prev});
}

Result<LogEntry> DecodeAborted(ByteReader& r) {
  READ_OR_RETURN(aid, r.ReadActionId());
  READ_OR_RETURN(prev, r.ReadLogAddress());
  return LogEntry(AbortedEntry{aid, prev});
}

Result<LogEntry> DecodeCommitting(ByteReader& r) {
  READ_OR_RETURN(aid, r.ReadActionId());
  READ_OR_RETURN(count, r.ReadVarint());
  if (count > (1u << 20)) {
    return Status::Corruption("absurd participant count");
  }
  std::vector<GuardianId> gids;
  gids.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    READ_OR_RETURN(gid, r.ReadGuardianId());
    gids.push_back(gid);
  }
  READ_OR_RETURN(prev, r.ReadLogAddress());
  return LogEntry(CommittingEntry{aid, std::move(gids), prev});
}

Result<LogEntry> DecodeDone(ByteReader& r) {
  READ_OR_RETURN(aid, r.ReadActionId());
  READ_OR_RETURN(prev, r.ReadLogAddress());
  return LogEntry(DoneEntry{aid, prev});
}

Result<LogEntry> DecodeBaseCommitted(ByteReader& r) {
  READ_OR_RETURN(uid, r.ReadUid());
  READ_OR_RETURN(value, r.ReadBlob());
  READ_OR_RETURN(prev, r.ReadLogAddress());
  return LogEntry(BaseCommittedEntry{uid, std::move(value), prev});
}

Result<LogEntry> DecodePreparedData(ByteReader& r) {
  READ_OR_RETURN(uid, r.ReadUid());
  READ_OR_RETURN(value, r.ReadBlob());
  READ_OR_RETURN(aid, r.ReadActionId());
  READ_OR_RETURN(prev, r.ReadLogAddress());
  return LogEntry(PreparedDataEntry{uid, std::move(value), aid, prev});
}

Result<LogEntry> DecodeCommittedSs(ByteReader& r) {
  READ_OR_RETURN(objects, ReadUidAddresses(r));
  READ_OR_RETURN(prev, r.ReadLogAddress());
  return LogEntry(CommittedSsEntry{std::move(objects), prev});
}

}  // namespace

std::vector<std::byte> EncodeEntry(const LogEntry& entry) {
  ByteWriter w;
  std::visit(EncodeVisitor{w}, entry);
  return w.TakeBytes();
}

Result<DataEntryView> DecodeDataEntryView(std::span<const std::byte> payload) {
  ByteReader r(payload);
  READ_OR_RETURN(wire_kind, r.ReadU8());
  if (static_cast<WireKind>(wire_kind) != WireKind::kData) {
    return Status::Corruption("not a data entry");
  }
  READ_OR_RETURN(uid, r.ReadUid());
  READ_OR_RETURN(kind, r.ReadU8());
  if (kind > 1) {
    return Status::Corruption("bad object kind");
  }
  READ_OR_RETURN(aid, r.ReadActionId());
  READ_OR_RETURN(value, r.ReadBlobView());
  return DataEntryView{uid, static_cast<ObjectKind>(kind), aid, value};
}

bool IsDataEntryPayload(std::span<const std::byte> payload) {
  return !payload.empty() &&
         static_cast<WireKind>(payload.front()) == WireKind::kData;
}

Result<LogEntry> DecodeEntry(std::span<const std::byte> payload) {
  ByteReader r(payload);
  READ_OR_RETURN(kind, r.ReadU8());
  switch (static_cast<WireKind>(kind)) {
    case WireKind::kData:
      return DecodeData(r);
    case WireKind::kPrepared:
      return DecodePrepared(r);
    case WireKind::kCommitted:
      return DecodeCommitted(r);
    case WireKind::kAborted:
      return DecodeAborted(r);
    case WireKind::kCommitting:
      return DecodeCommitting(r);
    case WireKind::kDone:
      return DecodeDone(r);
    case WireKind::kBaseCommitted:
      return DecodeBaseCommitted(r);
    case WireKind::kPreparedData:
      return DecodePreparedData(r);
    case WireKind::kCommittedSs:
      return DecodeCommittedSs(r);
  }
  return Status::Corruption("unknown entry kind");
}

}  // namespace argus
