#include "src/tpc/crash_controller.h"

namespace argus {

CrashController::CrashController(std::size_t workers, std::function<Status()> crash_world,
                                 std::function<void()> on_crash_requested)
    : registered_(workers),
      crash_world_(std::move(crash_world)),
      on_crash_requested_(std::move(on_crash_requested)) {
  ARGUS_CHECK(workers > 0);
  ARGUS_CHECK(crash_world_ != nullptr);
}

Status CrashController::Poll() {
  if (!armed_.load(std::memory_order_acquire)) {
    return Status::Ok();
  }
  std::unique_lock<std::mutex> l(mu_);
  if (!pending_) {
    // armed_ without a pending crash means a prior crash_world failed; the
    // storm is over and every caller gets the sticky error.
    return sticky_error_;
  }
  return ParkLocked(l);
}

Status CrashController::RequestCrash() {
  std::unique_lock<std::mutex> l(mu_);
  if (!sticky_error_.ok()) {
    return sticky_error_;
  }
  if (!pending_) {
    pending_ = true;
    armed_.store(true, std::memory_order_release);
    if (on_crash_requested_) {
      // Wake threads blocked inside WaitDurable (they park via the kCrashed
      // return path). Runs under mu_; the callback only flips flags and
      // notifies other condvars, it never waits on a worker.
      on_crash_requested_();
    }
    cv_.notify_all();
  }
  return ParkLocked(l);
}

Status CrashController::RequestEvent(std::function<Status()> event,
                                     const std::function<void()>& on_requested) {
  ARGUS_CHECK(event != nullptr);
  std::unique_lock<std::mutex> l(mu_);
  if (!sticky_error_.ok()) {
    return sticky_error_;
  }
  if (!pending_) {
    pending_ = true;
    pending_event_ = std::move(event);
    armed_.store(true, std::memory_order_release);
    if (on_requested) {
      on_requested();
    }
    cv_.notify_all();
  }
  // else: a crash/event is already in flight; `event` is dropped and this
  // thread parks through the pending one like any Poll() caller.
  return ParkLocked(l);
}

void CrashController::Deregister() {
  std::lock_guard<std::mutex> l(mu_);
  ARGUS_CHECK(registered_ > 0);
  --registered_;
  // A pending crash may have been waiting for this thread to park; with it
  // gone the barrier may now be complete for the remaining parked workers.
  cv_.notify_all();
}

std::uint64_t CrashController::crashes() const {
  std::lock_guard<std::mutex> l(mu_);
  return crashes_;
}

std::uint64_t CrashController::events() const {
  std::lock_guard<std::mutex> l(mu_);
  return events_;
}

Status CrashController::ParkLocked(std::unique_lock<std::mutex>& l) {
  const std::uint64_t gen = generation_;
  ++parked_;
  cv_.notify_all();  // the barrier may be complete now
  for (;;) {
    if (generation_ != gen) {
      // Another thread executed the crash. parked_ was reset wholesale when
      // the generation turned over (NOT decremented per-thread on exit): a
      // stale waiter that has not yet woken must not be counted as parked for
      // the *next* crash, or a new barrier could complete while it is about
      // to resume traffic — racing the next executor.
      return sticky_error_;
    }
    if (pending_ && parked_ == registered_ && !executing_) {
      break;  // this thread observed the complete barrier first: elected
    }
    cv_.wait(l);
  }
  executing_ = true;
  const bool is_event = pending_event_ != nullptr;
  std::function<Status()> todo = is_event ? std::move(pending_event_) : crash_world_;
  pending_event_ = nullptr;
  l.unlock();
  Status s = todo();
  l.lock();
  executing_ = false;
  pending_ = false;
  ++generation_;
  parked_ = 0;
  if (s.ok()) {
    if (is_event) {
      ++events_;
    } else {
      ++crashes_;
    }
    armed_.store(false, std::memory_order_release);
  } else {
    // Leave armed_ set so Poll's fast path keeps routing into the slow path,
    // where the sticky error ends every worker's loop.
    sticky_error_ = s;
  }
  cv_.notify_all();
  return sticky_error_;
}

}  // namespace argus
