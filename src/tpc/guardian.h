// A guardian: the logical node of the Argus model (§2.1).
//
// Owns a volatile heap, per-action contexts, and a recovery system over a
// surviving stable log. Plays both two-phase-commit roles (§2.2): coordinator
// for the top-level actions it starts, participant for actions that did work
// here. Crash() destroys all volatile state (heap, contexts, coordinator
// jobs) but keeps the stable log; Restart() rebuilds the guardian from the
// log via the recovery system and resumes in-flight protocol work
// (re-sending commits for `committing` coordinator entries, querying
// coordinators for `prepared` participant entries).

#ifndef SRC_TPC_GUARDIAN_H_
#define SRC_TPC_GUARDIAN_H_

#include <map>
#include <memory>
#include <set>
#include <string>

#include "src/object/action_context.h"
#include "src/recovery/checkpoint_policy.h"
#include "src/recovery/recovery_system.h"
#include "src/tpc/network.h"

namespace argus {

// Tick-based protocol timeouts, driven by the harness clock (SimWorld ticks
// once per OnTick round; see SimWorld::PumpWithTime). 0 disables a timeout.
struct GuardianTimeoutConfig {
  // A coordinator job still in the prepare phase after this many ticks gives
  // up and aborts unilaterally (§2.2.1: a participant is unreachable). The
  // absence of a committing record then IS the abort — the presumed-abort
  // verdict every late query will receive.
  std::uint64_t prepare_timeout = 0;
  // A prepared participant re-queries its coordinator every this many ticks
  // (the periodic retry of §2.2.2) until the outcome arrives.
  std::uint64_t query_retry_interval = 0;
};

class Guardian {
 public:
  Guardian(GuardianId gid, RecoverySystemConfig config, SimNetwork* network);

  Guardian(const Guardian&) = delete;
  Guardian& operator=(const Guardian&) = delete;

  GuardianId gid() const { return gid_; }
  bool crashed() const { return crashed_; }
  VolatileHeap& heap() { return *heap_; }
  RecoverySystem& recovery() { return *recovery_; }

  // ---- Action API (handler-side) ----

  // Starts a top-level action coordinated by this guardian.
  ActionId BeginTopAction();

  // The per-guardian context of an action (created on first use — "the
  // action ran here", making this guardian a participant).
  ActionContext& ContextFor(ActionId aid);
  bool HasContext(ActionId aid) const { return contexts_.find(aid) != contexts_.end(); }

  // Stable variables: named bindings in the root object (§3.3.3.2).
  Status SetStableVariable(ActionId aid, const std::string& name, RecoverableObject* obj);
  // Looks a stable variable up through the acting action's view.
  Result<RecoverableObject*> GetStableVariable(ActionId aid, const std::string& name);
  // The committed binding (no locks; for post-recovery inspection).
  RecoverableObject* CommittedStableVariable(const std::string& name) const;

  // Early prepare (§4.4): pushes the action's current MOS to the log ahead of
  // the prepare message; the inaccessible remainder returns to the MOS.
  Status EarlyPrepare(ActionId aid);

  // ---- Two-phase commit ----

  // Registers `participant` as having done work for `aid` (a handler call
  // spread the action there). The coordinator includes itself automatically
  // when it has local work.
  void EnlistParticipant(ActionId aid, GuardianId participant);

  // Coordinator: start two-phase commit for `aid`. Drive with SimWorld pumps.
  Status RequestCommit(ActionId aid);

  // Coordinator: unilateral abort (e.g. a participant is unreachable,
  // §2.2.1). A no-op once the committing record is written — past the commit
  // point the coordinator MUST commit (§2.2.3).
  void AbortTopAction(ActionId aid);

  // Re-sends outcome queries for every locally prepared, undecided action
  // (the periodic retry a participant performs while waiting for its
  // coordinator, §2.2.2).
  void RequeryOutstanding();

  // ---- Timeouts ----

  void ConfigureTimeouts(const GuardianTimeoutConfig& config) { timeouts_ = config; }

  // Advances this guardian's protocol clock to `now` and fires due timeouts:
  // stuck coordinator jobs abort (presumed abort for everyone who prepared),
  // prepared participants re-query. Driven by SimWorld::PumpWithTime.
  void OnTick(std::uint64_t now);

  // True while a configured timeout still has undecided work to watch — the
  // reason PumpWithTime keeps ticking an otherwise idle network.
  bool HasTimeoutWork() const;

  // Participant/local: abort an action that has not prepared here.
  void AbortLocal(ActionId aid);

  void HandleMessage(const Message& message);

  enum class ActionFate { kUnknown, kInProgress, kCommitted, kAborted };
  ActionFate FateOf(ActionId aid) const;
  // True once the coordinator has written its done record.
  bool TwoPhaseDone(ActionId aid) const;

  // ---- Crash / restart ----

  void Crash();
  Result<RecoveryInfo> Restart();

  // Housekeeping passthrough.
  Status Housekeep(HousekeepingMethod method,
                   const std::function<void()>& between_stages = {}) {
    return recovery_->Housekeep(method, between_stages);
  }

  // Attaches an automatic checkpoint policy (§2.3 item 7: the Argus system
  // decides when "enough old information has accumulated").
  void ConfigureMaintenance(const CheckpointPolicyConfig& config);

  // Runs due maintenance; returns true if a checkpoint was taken. Call it
  // from the application's idle loop (the workload driver does).
  Result<bool> MaintenanceTick();

  // Messages dropped because this guardian was down.
  std::uint64_t messages_dropped_while_crashed() const { return dropped_while_crashed_; }

 private:
  struct CoordinatorJob {
    enum class Phase { kPreparing, kCommitting, kDone, kAborted };
    Phase phase = Phase::kPreparing;
    std::vector<GuardianId> participants;
    std::set<GuardianId> awaiting;
    std::uint64_t started_at = 0;  // clock tick of RequestCommit
  };

  void Send(GuardianId to, MessageType type, ActionId aid, bool positive = false);

  // Participant-side handlers.
  void OnPrepare(const Message& m);
  void OnCommitDecision(ActionId aid, GuardianId coordinator);
  void OnAbortDecision(ActionId aid);

  // Coordinator-side handlers.
  void OnPrepareAck(const Message& m);
  void OnCommitAck(const Message& m);
  void OnQuery(const Message& m);

  GuardianId gid_;
  RecoverySystemConfig config_;
  SimNetwork* network_;
  bool crashed_ = false;

  std::unique_ptr<VolatileHeap> heap_;
  std::unique_ptr<RecoverySystem> recovery_;
  RecoverySystem::SurvivingState surviving_;  // held only while crashed

  std::map<ActionId, ActionContext> contexts_;
  std::map<ActionId, CoordinatorJob> jobs_;
  std::map<ActionId, std::set<GuardianId>> enlisted_;
  std::map<ActionId, ParticipantState> local_outcomes_;
  // Tick of the last outcome query per locally prepared, undecided action;
  // entries appear at prepare (or recovery) and leave with the decision.
  std::map<ActionId, std::uint64_t> prepared_at_;
  GuardianTimeoutConfig timeouts_;
  std::uint64_t clock_ = 0;  // last tick observed; survives Crash()
  std::optional<CheckpointPolicy> maintenance_;
  std::uint64_t next_action_sequence_ = 1;
  std::uint64_t dropped_while_crashed_ = 0;
};

}  // namespace argus

#endif  // SRC_TPC_GUARDIAN_H_
