// The simulation driver: a set of guardians on one deterministic network.
//
// SimWorld owns the guardians and pumps the network. Handler calls that
// spread an action to another guardian are modeled by RunAt, which creates
// the per-guardian action context and enlists the participant with the
// coordinator. A full top-level action — begin, body, two-phase commit — is
// RunTopAction.

#ifndef SRC_TPC_SIM_WORLD_H_
#define SRC_TPC_SIM_WORLD_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/stable/duplexed_medium.h"
#include "src/tpc/guardian.h"

namespace argus {

enum class MediumKind {
  kInMemory,    // fast; used for algorithm-level tests and benches
  kDuplexed,    // full Lampson-Sturgis stack, 2x write amplification
  kReplicated,  // N-way replicated careful storage (SimWorldConfig::replicas)
};

struct SimWorldConfig {
  std::size_t guardian_count = 1;
  LogMode mode = LogMode::kHybrid;
  MediumKind medium = MediumKind::kInMemory;
  std::uint64_t seed = 1;
  // When set, every guardian's recovery system runs a group-commit flush
  // coordinator with this configuration.
  std::optional<FlushCoordinatorConfig> group_commit;
  // Protocol timeouts applied to every guardian (0 = disabled). Timeouts only
  // fire under PumpWithTime, which ticks guardians between deliveries.
  GuardianTimeoutConfig timeouts;
  // Log shards per guardian (hybrid mode only; 1 = classic single log). The
  // routing salt is derived from the world seed so distinct worlds exercise
  // distinct uid→shard placements.
  std::uint32_t log_shards = 1;
  // Concurrent shard recovery workers per guardian (0 = one per shard).
  std::size_t shard_recovery_workers = 0;
  // Replica count for MediumKind::kReplicated (kDuplexed is pinned at 2).
  std::uint32_t replicas = 3;
  // When set, every guardian runs a ReplicaRepairService per replicated log
  // medium, healing decay concurrently with commits (see replicated_store.h).
  std::optional<ReplicaRepairConfig> repair;
  // Per-guardian memory budget for the residency subsystem (0 = unlimited,
  // residency disabled). When set, cold committed objects are demoted to
  // log-address stubs once resident bytes cross the high watermark.
  std::uint64_t mem_budget_bytes = 0;
};

class SimWorld {
 public:
  explicit SimWorld(const SimWorldConfig& config);

  Guardian& guardian(GuardianId gid) { return *guardians_.at(gid.value); }
  Guardian& guardian(std::uint32_t index) { return *guardians_.at(index); }
  std::size_t guardian_count() const { return guardians_.size(); }
  SimNetwork& network() { return network_; }

  // Delivers one message; false when the network is idle.
  bool Step();

  // Delivers messages until the network is idle (or `max_steps` deliveries).
  // Returns the number delivered.
  std::size_t Pump(std::size_t max_steps = 100000);

  // One timeout round: pumps the network dry, then advances the protocol
  // clock one tick and fires every live guardian's due timeouts.
  void Tick();

  // Pumps with timeouts: alternates Pump and Tick until neither the network
  // nor any guardian's timeout machinery has work left (or `max_ticks`
  // rounds — a bound against a permanently partitioned in-doubt participant
  // re-querying forever). Returns total messages delivered.
  std::size_t PumpWithTime(std::size_t max_ticks = 64);

  // Runs `body` at `target` within action `aid` and enlists the target with
  // the coordinator.
  Status RunAt(ActionId aid, GuardianId target,
               const std::function<Status(Guardian&, ActionContext&)>& body);

  // Begins a top action at `coordinator`, runs `body`, requests commit, and
  // pumps to completion. Returns the coordinator's view of the fate.
  Result<Guardian::ActionFate> RunTopAction(
      GuardianId coordinator,
      const std::function<Status(SimWorld&, ActionId)>& body);

 private:
  SimNetwork network_;
  std::vector<std::unique_ptr<Guardian>> guardians_;
  std::uint64_t clock_ = 0;  // protocol ticks (Tick calls), not deliveries
};

// Builds a medium factory for the given kind; `seed` feeds fault simulation
// and `replicas` only applies to MediumKind::kReplicated.
std::function<std::unique_ptr<StableMedium>()> MakeMediumFactory(MediumKind kind,
                                                                 std::uint64_t seed,
                                                                 std::uint32_t replicas = 2);

}  // namespace argus

#endif  // SRC_TPC_SIM_WORLD_H_
