// Deterministic simulated network.
//
// Messages enqueue FIFO and are delivered one at a time by the driver loop
// (SimWorld::Pump). Fault injection: per-message drop probability and
// partitions (a partitioned guardian neither sends nor receives). All
// randomness comes from a seeded Rng, so any failure is replayable.

#ifndef SRC_TPC_NETWORK_H_
#define SRC_TPC_NETWORK_H_

#include <deque>
#include <optional>
#include <unordered_set>

#include "src/common/rng.h"
#include "src/tpc/messages.h"

namespace argus {

struct NetworkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
};

class SimNetwork {
 public:
  explicit SimNetwork(std::uint64_t seed = 0) : rng_(seed) {}

  void Send(const Message& message);

  // Pops the next deliverable message; nullopt when the queue is empty.
  std::optional<Message> NextDelivery();

  bool idle() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

  void set_drop_probability(double p) { drop_probability_ = p; }
  // When enabled, NextDelivery picks a uniformly random queued message
  // instead of the oldest — models arbitrary network reordering.
  void set_reorder(bool reorder) { reorder_ = reorder; }

  // Probability that a sent message is enqueued twice (at-least-once
  // delivery); receivers must be idempotent.
  void set_duplicate_probability(double p) { duplicate_probability_ = p; }

  // Deterministic-exploration hook: pops the index-th queued message
  // (for the exhaustive interleaving tests). nullopt if out of range.
  std::optional<Message> DeliverAt(std::size_t index);
  void Partition(GuardianId gid) { partitioned_.insert(gid); }
  void Heal(GuardianId gid) { partitioned_.erase(gid); }
  bool IsPartitioned(GuardianId gid) const {
    return partitioned_.find(gid) != partitioned_.end();
  }

  const NetworkStats& stats() const { return stats_; }

 private:
  std::deque<Message> queue_;
  std::unordered_set<GuardianId> partitioned_;
  double drop_probability_ = 0.0;
  double duplicate_probability_ = 0.0;
  bool reorder_ = false;
  Rng rng_;
  NetworkStats stats_;
};

}  // namespace argus

#endif  // SRC_TPC_NETWORK_H_
