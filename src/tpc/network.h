// Deterministic simulated network.
//
// Messages enqueue with a logical delivery time and are delivered one at a
// time by the driver loop (SimWorld::Pump). Fault injection:
//  - per-message drop probability;
//  - partitions, node-level (a partitioned guardian neither sends nor
//    receives — both edges are cut) or per directed edge;
//  - per-edge delay storms: messages on a stormed edge are held for a seeded
//    number of delivery ticks, so later traffic overtakes them (a delayed
//    prepare can arrive after the commit that followed it).
// All randomness comes from a seeded Rng, so any failure is replayable.
//
// Time is a logical tick counter: each successful delivery advances it by
// one, and when every queued message is still held by a delay the clock
// skips forward to the earliest release — the network never stalls idle.

#ifndef SRC_TPC_NETWORK_H_
#define SRC_TPC_NETWORK_H_

#include <deque>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "src/common/rng.h"
#include "src/tpc/messages.h"

namespace argus {

struct NetworkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t delayed = 0;  // enqueued with a future delivery tick
};

class SimNetwork {
 public:
  explicit SimNetwork(std::uint64_t seed = 0) : rng_(seed) {}

  void Send(const Message& message);

  // Pops the next deliverable message; nullopt when the queue is empty.
  // Delivery order is (release tick, send order); a message whose endpoint is
  // partitioned at delivery time is dropped.
  std::optional<Message> NextDelivery();

  bool idle() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }
  std::uint64_t now() const { return now_; }

  void set_drop_probability(double p) { drop_probability_ = p; }
  // When enabled, NextDelivery picks a uniformly random *released* queued
  // message instead of the oldest — models arbitrary network reordering.
  void set_reorder(bool reorder) { reorder_ = reorder; }

  // Probability that a sent message is enqueued twice (at-least-once
  // delivery); receivers must be idempotent.
  void set_duplicate_probability(double p) { duplicate_probability_ = p; }

  // Deterministic-exploration hook: pops the index-th queued message in send
  // order, ignoring delays (for the exhaustive interleaving tests). nullopt
  // if out of range.
  std::optional<Message> DeliverAt(std::size_t index);

  // ---- Partitions ----

  // Node partition: cuts BOTH edges — the guardian neither sends nor
  // receives, and messages already in flight toward or from it are dropped
  // at delivery time.
  void Partition(GuardianId gid) { partitioned_.insert(gid); }
  void Heal(GuardianId gid) { partitioned_.erase(gid); }
  bool IsPartitioned(GuardianId gid) const {
    return partitioned_.find(gid) != partitioned_.end();
  }

  // Directed-edge partition: only from→to traffic is cut.
  void PartitionEdge(GuardianId from, GuardianId to) {
    partitioned_edges_.insert(EdgeKey(from, to));
  }
  void HealEdge(GuardianId from, GuardianId to) {
    partitioned_edges_.erase(EdgeKey(from, to));
  }
  // Lifts every node and edge partition.
  void HealAll() {
    partitioned_.clear();
    partitioned_edges_.clear();
  }

  // True when a from→to message would be cut by any active partition.
  // Loopback is exempt: a partition cuts the wire, not the guardian's own
  // message queue — a partitioned coordinator can still deliver its
  // self-addressed abort and release its local locks.
  bool Blocked(GuardianId from, GuardianId to) const {
    if (from == to) {
      return false;
    }
    return IsPartitioned(from) || IsPartitioned(to) ||
           partitioned_edges_.find(EdgeKey(from, to)) != partitioned_edges_.end();
  }

  // ---- Delay storms ----

  // Every message sent on from→to is held for a seeded delay in
  // [min_delay, max_delay] ticks. Overrides the global delay range.
  void SetEdgeDelay(GuardianId from, GuardianId to, std::uint64_t min_delay,
                    std::uint64_t max_delay);
  void ClearEdgeDelay(GuardianId from, GuardianId to) {
    edge_delays_.erase(EdgeKey(from, to));
  }
  // Delay applied to every edge without a per-edge override.
  void SetGlobalDelay(std::uint64_t min_delay, std::uint64_t max_delay) {
    global_delay_ = DelayRange{min_delay, max_delay};
  }
  void ClearDelays() {
    edge_delays_.clear();
    global_delay_ = DelayRange{};
  }

  const NetworkStats& stats() const { return stats_; }

 private:
  struct DelayRange {
    std::uint64_t min_delay = 0;
    std::uint64_t max_delay = 0;
  };
  struct Envelope {
    Message message;
    std::uint64_t release_at = 0;  // logical tick the message becomes ripe
    std::uint64_t seq = 0;         // send order, the FIFO tie-break
  };

  static std::uint64_t EdgeKey(GuardianId from, GuardianId to) {
    return (static_cast<std::uint64_t>(from.value) << 32) | to.value;
  }

  std::uint64_t SampleDelay(const Message& message);
  void Enqueue(const Message& message);
  void DropAtDelivery(const Message& m);

  std::deque<Envelope> queue_;
  std::unordered_set<GuardianId> partitioned_;
  std::unordered_set<std::uint64_t> partitioned_edges_;
  std::unordered_map<std::uint64_t, DelayRange> edge_delays_;
  DelayRange global_delay_;
  double drop_probability_ = 0.0;
  double duplicate_probability_ = 0.0;
  bool reorder_ = false;
  std::uint64_t now_ = 0;
  std::uint64_t next_seq_ = 0;
  Rng rng_;
  NetworkStats stats_;
};

}  // namespace argus

#endif  // SRC_TPC_NETWORK_H_
