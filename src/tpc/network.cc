#include "src/tpc/network.h"

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace argus {

namespace {

// All networks aggregated (mirrors NetworkStats at the same tick sites).
struct NetObs {
  obs::Counter* sent;
  obs::Counter* delivered;
  obs::Counter* dropped;

  static const NetObs& Get() {
    static const NetObs m{
        obs::GetCounter("tpc.net.sent"),
        obs::GetCounter("tpc.net.delivered"),
        obs::GetCounter("tpc.net.dropped"),
    };
    return m;
  }
};

// Trace payload: (from, to, message type) — enough to read a 2PC hop
// sequence off a flight-recorder dump.
std::uint64_t TraceHop(const Message& m) {
  return (static_cast<std::uint64_t>(m.from.value) << 32) | m.to.value;
}

}  // namespace

void SimNetwork::Send(const Message& message) {
  ++stats_.sent;
  NetObs::Get().sent->Increment();
  obs::Emit("tpc.send", TraceHop(message), static_cast<std::uint64_t>(message.type),
            message.aid.sequence);
  if (IsPartitioned(message.from) || IsPartitioned(message.to)) {
    ++stats_.dropped;
    NetObs::Get().dropped->Increment();
    obs::Emit("tpc.drop", TraceHop(message), static_cast<std::uint64_t>(message.type),
              message.aid.sequence);
    return;
  }
  if (rng_.NextBool(drop_probability_)) {
    ++stats_.dropped;
    NetObs::Get().dropped->Increment();
    obs::Emit("tpc.drop", TraceHop(message), static_cast<std::uint64_t>(message.type),
              message.aid.sequence);
    return;
  }
  queue_.push_back(message);
  if (rng_.NextBool(duplicate_probability_)) {
    queue_.push_back(message);
  }
}

std::optional<Message> SimNetwork::DeliverAt(std::size_t index) {
  if (index >= queue_.size()) {
    return std::nullopt;
  }
  Message m = queue_[index];
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(index));
  if (IsPartitioned(m.to)) {
    ++stats_.dropped;
    NetObs::Get().dropped->Increment();
    obs::Emit("tpc.drop", TraceHop(m), static_cast<std::uint64_t>(m.type), m.aid.sequence);
    return std::nullopt;
  }
  ++stats_.delivered;
  NetObs::Get().delivered->Increment();
  obs::Emit("tpc.deliver", TraceHop(m), static_cast<std::uint64_t>(m.type), m.aid.sequence);
  return m;
}

std::optional<Message> SimNetwork::NextDelivery() {
  while (!queue_.empty()) {
    std::size_t pick = reorder_ ? rng_.NextBelow(queue_.size()) : 0;
    Message m = queue_[pick];
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pick));
    if (IsPartitioned(m.to)) {
      ++stats_.dropped;
      NetObs::Get().dropped->Increment();
      obs::Emit("tpc.drop", TraceHop(m), static_cast<std::uint64_t>(m.type), m.aid.sequence);
      continue;  // receiver unreachable at delivery time
    }
    ++stats_.delivered;
    NetObs::Get().delivered->Increment();
    obs::Emit("tpc.deliver", TraceHop(m), static_cast<std::uint64_t>(m.type), m.aid.sequence);
    return m;
  }
  return std::nullopt;
}

}  // namespace argus
