#include "src/tpc/network.h"

namespace argus {

void SimNetwork::Send(const Message& message) {
  ++stats_.sent;
  if (IsPartitioned(message.from) || IsPartitioned(message.to)) {
    ++stats_.dropped;
    return;
  }
  if (rng_.NextBool(drop_probability_)) {
    ++stats_.dropped;
    return;
  }
  queue_.push_back(message);
  if (rng_.NextBool(duplicate_probability_)) {
    queue_.push_back(message);
  }
}

std::optional<Message> SimNetwork::DeliverAt(std::size_t index) {
  if (index >= queue_.size()) {
    return std::nullopt;
  }
  Message m = queue_[index];
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(index));
  if (IsPartitioned(m.to)) {
    ++stats_.dropped;
    return std::nullopt;
  }
  ++stats_.delivered;
  return m;
}

std::optional<Message> SimNetwork::NextDelivery() {
  while (!queue_.empty()) {
    std::size_t pick = reorder_ ? rng_.NextBelow(queue_.size()) : 0;
    Message m = queue_[pick];
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pick));
    if (IsPartitioned(m.to)) {
      ++stats_.dropped;
      continue;  // receiver unreachable at delivery time
    }
    ++stats_.delivered;
    return m;
  }
  return std::nullopt;
}

}  // namespace argus
