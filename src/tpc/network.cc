#include "src/tpc/network.h"

#include <algorithm>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace argus {

namespace {

// All networks aggregated (mirrors NetworkStats at the same tick sites).
struct NetObs {
  obs::Counter* sent;
  obs::Counter* delivered;
  obs::Counter* dropped;
  obs::Counter* delayed;

  static const NetObs& Get() {
    static const NetObs m{
        obs::GetCounter("tpc.net.sent"),
        obs::GetCounter("tpc.net.delivered"),
        obs::GetCounter("tpc.net.dropped"),
        obs::GetCounter("tpc.net.delayed"),
    };
    return m;
  }
};

// Trace payload: (from, to, message type) — enough to read a 2PC hop
// sequence off a flight-recorder dump.
std::uint64_t TraceHop(const Message& m) {
  return (static_cast<std::uint64_t>(m.from.value) << 32) | m.to.value;
}

}  // namespace

void SimNetwork::SetEdgeDelay(GuardianId from, GuardianId to, std::uint64_t min_delay,
                              std::uint64_t max_delay) {
  edge_delays_[EdgeKey(from, to)] = DelayRange{min_delay, std::max(min_delay, max_delay)};
}

std::uint64_t SimNetwork::SampleDelay(const Message& message) {
  const DelayRange* range = &global_delay_;
  auto it = edge_delays_.find(EdgeKey(message.from, message.to));
  if (it != edge_delays_.end()) {
    range = &it->second;
  }
  if (range->max_delay == 0) {
    return 0;
  }
  return range->min_delay + rng_.NextBelow(range->max_delay - range->min_delay + 1);
}

void SimNetwork::Enqueue(const Message& message) {
  std::uint64_t delay = SampleDelay(message);
  if (delay > 0) {
    ++stats_.delayed;
    NetObs::Get().delayed->Increment();
    obs::Emit("tpc.net.delay", TraceHop(message), static_cast<std::uint64_t>(message.type),
              delay);
  }
  queue_.push_back(Envelope{message, now_ + delay, next_seq_++});
}

void SimNetwork::Send(const Message& message) {
  ++stats_.sent;
  NetObs::Get().sent->Increment();
  obs::Emit("tpc.send", TraceHop(message), static_cast<std::uint64_t>(message.type),
            message.aid.sequence);
  if (Blocked(message.from, message.to)) {
    ++stats_.dropped;
    NetObs::Get().dropped->Increment();
    obs::Emit("tpc.drop", TraceHop(message), static_cast<std::uint64_t>(message.type),
              message.aid.sequence);
    return;
  }
  if (rng_.NextBool(drop_probability_)) {
    ++stats_.dropped;
    NetObs::Get().dropped->Increment();
    obs::Emit("tpc.drop", TraceHop(message), static_cast<std::uint64_t>(message.type),
              message.aid.sequence);
    return;
  }
  Enqueue(message);
  if (rng_.NextBool(duplicate_probability_)) {
    Enqueue(message);
  }
}

void SimNetwork::DropAtDelivery(const Message& m) {
  ++stats_.dropped;
  NetObs::Get().dropped->Increment();
  obs::Emit("tpc.drop", TraceHop(m), static_cast<std::uint64_t>(m.type), m.aid.sequence);
}

std::optional<Message> SimNetwork::DeliverAt(std::size_t index) {
  if (index >= queue_.size()) {
    return std::nullopt;
  }
  // The deque is in send order (append-only, order-preserving erase); delays
  // are ignored — the exhaustive interleaving tests pick arrival orders
  // explicitly, so a held message is fair game.
  Message m = queue_[index].message;
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(index));
  if (Blocked(m.from, m.to)) {
    DropAtDelivery(m);
    return std::nullopt;
  }
  ++stats_.delivered;
  NetObs::Get().delivered->Increment();
  obs::Emit("tpc.deliver", TraceHop(m), static_cast<std::uint64_t>(m.type), m.aid.sequence);
  return m;
}

std::optional<Message> SimNetwork::NextDelivery() {
  while (!queue_.empty()) {
    // Release tick first, send order second: undelayed traffic stays FIFO,
    // and a held message is overtaken by everything sent while it sleeps.
    std::size_t pick = 0;
    std::uint64_t earliest = queue_[0].release_at;
    for (std::size_t i = 1; i < queue_.size(); ++i) {
      const Envelope& e = queue_[i];
      if (e.release_at < earliest ||
          (e.release_at == earliest && e.seq < queue_[pick].seq)) {
        pick = i;
        earliest = e.release_at;
      }
    }
    if (earliest > now_) {
      // Everything still held: the clock skips to the earliest release so an
      // otherwise-idle network never wedges behind a delay storm.
      now_ = earliest;
    }
    if (reorder_) {
      // Uniform pick among the released messages.
      std::vector<std::size_t> ripe;
      for (std::size_t i = 0; i < queue_.size(); ++i) {
        if (queue_[i].release_at <= now_) {
          ripe.push_back(i);
        }
      }
      pick = ripe[rng_.NextBelow(ripe.size())];
    }
    Message m = queue_[pick].message;
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pick));
    ++now_;
    if (Blocked(m.from, m.to)) {
      DropAtDelivery(m);
      continue;  // an endpoint is unreachable at delivery time
    }
    ++stats_.delivered;
    NetObs::Get().delivered->Increment();
    obs::Emit("tpc.deliver", TraceHop(m), static_cast<std::uint64_t>(m.type), m.aid.sequence);
    return m;
  }
  return std::nullopt;
}

}  // namespace argus
