#include "src/tpc/workload.h"

#include <algorithm>
#include <cstring>
#include <set>
#include <thread>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/residency/residency_service.h"

namespace argus {

namespace {

struct WorkloadObs {
  obs::Counter* attempted;
  obs::Counter* committed;
  obs::Counter* aborted;
  obs::Counter* in_doubt;
  obs::Counter* partial_crashes;
  obs::Counter* partial_recoveries;

  static const WorkloadObs& Get() {
    static const WorkloadObs m{
        obs::GetCounter("workload.attempted"),
        obs::GetCounter("workload.committed"),
        obs::GetCounter("workload.aborted"),
        obs::GetCounter("workload.in_doubt"),
        obs::GetCounter("workload.partial_crashes"),
        obs::GetCounter("workload.partial_recoveries"),
    };
    return m;
  }
};

}  // namespace

WorkloadDriver::WorkloadDriver(SimWorld* world, WorkloadConfig config)
    : world_(world), config_(config), rng_(config.seed) {
  ARGUS_CHECK(world != nullptr);
  model_.resize(world->guardian_count());
  live_committed_ = std::make_unique<std::atomic<std::uint64_t>[]>(world->guardian_count());
  live_crashed_ = std::make_unique<std::atomic<bool>[]>(world->guardian_count());
  live_resident_bytes_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(world->guardian_count());
  for (std::size_t g = 0; g < world->guardian_count(); ++g) {
    live_committed_[g].store(0, std::memory_order_relaxed);
    live_crashed_[g].store(false, std::memory_order_relaxed);
    live_resident_bytes_[g].store(0, std::memory_order_relaxed);
  }
  if (config_.checkpoint.has_value()) {
    policies_.reserve(world->guardian_count());
    for (std::size_t i = 0; i < world->guardian_count(); ++i) {
      policies_.emplace_back(*config_.checkpoint);
    }
  }
}

std::vector<WorkloadDriver::LiveGuardianStats> WorkloadDriver::SnapshotLiveStats() const {
  std::vector<LiveGuardianStats> out(world_->guardian_count());
  for (std::size_t g = 0; g < out.size(); ++g) {
    out[g].committed = live_committed_[g].load(std::memory_order_relaxed);
    out[g].crashed = live_crashed_[g].load(std::memory_order_relaxed);
    out[g].resident_bytes = live_resident_bytes_[g].load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<std::uint32_t> WorkloadDriver::PickVictims(Rng& rng) const {
  const std::size_t n = world_->guardian_count();
  ARGUS_CHECK(n >= 2);
  std::size_t count = 1 + rng.NextBelow(n - 1);  // 1..n-1: survivors nonempty
  std::vector<std::uint32_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) {
    pool[i] = static_cast<std::uint32_t>(i);
  }
  for (std::size_t i = 0; i < count; ++i) {  // partial Fisher-Yates
    std::size_t j = i + rng.NextBelow(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(count);
  return pool;
}

Status WorkloadDriver::Setup() {
  for (std::uint32_t g = 0; g < world_->guardian_count(); ++g) {
    Result<Guardian::ActionFate> fate =
        world_->RunTopAction(GuardianId{g}, [&](SimWorld& w, ActionId aid) -> Status {
          return w.RunAt(aid, GuardianId{g}, [&](Guardian& guard, ActionContext& ctx) {
            for (std::size_t i = 0; i < config_.objects_per_guardian; ++i) {
              RecoverableObject* obj = ctx.CreateAtomic(guard.heap(), Value::Int(0));
              Status s = guard.SetStableVariable(aid, SlotName(i), obj);
              if (!s.ok()) {
                return s;
              }
            }
            return Status::Ok();
          });
        });
    if (!fate.ok()) {
      return fate.status();
    }
    if (fate.value() != Guardian::ActionFate::kCommitted) {
      return Status::IoError("setup action did not commit");
    }
    for (std::size_t i = 0; i < config_.objects_per_guardian; ++i) {
      model_[g][i] = 0;
    }
  }
  return Status::Ok();
}

Status WorkloadDriver::RunOneAction() {
  ++stats_.attempted;
  WorkloadObs::Get().attempted->Increment();

  // Choose 1..max_participants distinct alive guardians.
  std::size_t participant_count =
      1 + rng_.NextBelow(std::min(config_.max_participants, world_->guardian_count()));
  std::vector<std::uint32_t> participants;
  for (std::size_t tries = 0; tries < 16 && participants.size() < participant_count; ++tries) {
    std::uint32_t g = static_cast<std::uint32_t>(rng_.NextBelow(world_->guardian_count()));
    if (!world_->guardian(g).crashed() &&
        std::find(participants.begin(), participants.end(), g) == participants.end()) {
      participants.push_back(g);
    }
  }
  if (participants.empty()) {
    return Status::Ok();  // everyone is down right now
  }
  GuardianId coordinator{participants[0]};

  // Staged mutations, applied to the model only on commit.
  std::vector<std::tuple<std::uint32_t, std::size_t, std::int64_t>> staged;
  bool request_abort = rng_.NextBool(config_.abort_probability);

  Guardian& coord = world_->guardian(coordinator);
  ActionId aid = coord.BeginTopAction();
  obs::EmitBegin("workload.action", aid.sequence, participants.size(), coordinator.value);
  bool blocked = false;
  for (std::uint32_t g : participants) {
    std::size_t slot = rng_.NextBelow(config_.objects_per_guardian);
    std::int64_t value = static_cast<std::int64_t>(rng_.NextBelow(100000));
    Status s = world_->RunAt(aid, GuardianId{g}, [&](Guardian& guard, ActionContext& ctx) {
      Result<RecoverableObject*> obj = guard.GetStableVariable(aid, SlotName(slot));
      if (!obj.ok()) {
        return obj.status();
      }
      return ctx.UpdateObject(obj.value(), [value](Value& v) { v = Value::Int(value); });
    });
    if (!s.ok()) {
      blocked = true;  // lock conflict or guardian down
      break;
    }
    staged.emplace_back(g, slot, value);
    if (rng_.NextBool(config_.early_prepare_probability)) {
      Status ep = world_->guardian(g).EarlyPrepare(aid);
      if (!ep.ok()) {
        return ep;
      }
    }
  }

  if (blocked || request_abort) {
    coord.AbortTopAction(aid);
    world_->Pump();
    ++stats_.aborted;
    WorkloadObs::Get().aborted->Increment();
    obs::EmitEnd("workload.action", aid.sequence, 0);
    return Status::Ok();
  }

  Status s = coord.RequestCommit(aid);
  if (!s.ok()) {
    return s;
  }

  // Maybe crash a participant mid-protocol.
  if (rng_.NextBool(config_.crash_probability)) {
    std::uint64_t steps = rng_.NextBelow(4);
    for (std::uint64_t i = 0; i < steps; ++i) {
      world_->Step();
    }
    std::uint32_t victim = participants[rng_.NextBelow(participants.size())];
    world_->guardian(victim).Crash();
    ++stats_.crashes;
    world_->Pump();
    // If the coordinator itself died, nothing more to drive now; restart
    // everyone so the protocol can settle.
    Result<RecoveryInfo> info = world_->guardian(victim).Restart();
    if (!info.ok()) {
      return info.status();
    }
    world_->Pump();
    if (victim != coordinator.value) {
      // The coordinator may still be waiting for the victim's prepare: let it
      // give up if the action has not reached the commit point.
      coord.AbortTopAction(aid);
      world_->guardian(victim).RequeryOutstanding();
    }
    world_->Pump();
  } else {
    world_->Pump();
  }

  Guardian::ActionFate fate = coord.FateOf(aid);
  obs::EmitEnd("workload.action", aid.sequence,
               fate == Guardian::ActionFate::kCommitted ? 1 : 0);
  if (fate == Guardian::ActionFate::kCommitted) {
    ++stats_.committed;
    WorkloadObs::Get().committed->Increment();
    live_total_committed_.fetch_add(1, std::memory_order_relaxed);
    std::set<std::uint32_t> touched;
    for (const auto& [g, slot, value] : staged) {
      model_[g][slot] = value;
      touched.insert(g);
    }
    for (std::uint32_t g : touched) {
      live_committed_[g].fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    ++stats_.aborted;
    WorkloadObs::Get().aborted->Increment();
  }

  // Per-guardian checkpoint policies.
  if (!policies_.empty()) {
    for (std::uint32_t g = 0; g < world_->guardian_count(); ++g) {
      if (world_->guardian(g).crashed()) {
        continue;
      }
      Result<bool> ran = policies_[g].MaybeHousekeep(world_->guardian(g).recovery());
      if (!ran.ok()) {
        return ran.status();
      }
      if (ran.value()) {
        ++stats_.checkpoints;
      }
    }
  }
  // Serial residency: shed memory pressure inline between actions (the
  // concurrent driver uses background ResidencyService threads instead).
  if (config_.mem_budget_bytes > 0) {
    for (std::uint32_t g = 0; g < world_->guardian_count(); ++g) {
      if (world_->guardian(g).crashed()) {
        continue;
      }
      ResidencyManager* rm = world_->guardian(g).recovery().residency();
      if (rm != nullptr) {
        rm->RunEvictionPass();
        live_resident_bytes_[g].store(rm->resident_bytes(), std::memory_order_relaxed);
      }
    }
  }
  return Status::Ok();
}

Status WorkloadDriver::Run(std::size_t actions) {
  if (config_.checkpoint.has_value()) {
    for (std::uint32_t g = 0; g < world_->guardian_count(); ++g) {
      if (world_->guardian(g).recovery().shard_count() > 1) {
        return Status::InvalidArgument(
            "checkpointing is not supported with sharded logs (housekeeping "
            "needs a cross-shard swap barrier)");
      }
    }
  }
  if (config_.threads >= 1) {
    return RunConcurrent(actions);
  }
  for (std::size_t i = 0; i < actions; ++i) {
    Status s = RunOneAction();
    if (!s.ok()) {
      return s;
    }
  }
  world_->Pump();
  return Status::Ok();
}

Status WorkloadDriver::RunOneConcurrentAction(Rng& rng,
                                              std::vector<std::mutex>& guardian_mutexes,
                                              WorkloadStats& local, bool journal) {
  ++local.attempted;
  WorkloadObs::Get().attempted->Increment();
  // Pick among the guardians that are up: during a partial-world outage the
  // victims' volatile side (heap, recovery system) is gone, and traffic must
  // flow to the survivors — that flow is the liveness property under test.
  std::vector<std::uint32_t> alive;
  alive.reserve(world_->guardian_count());
  for (std::uint32_t i = 0; i < world_->guardian_count(); ++i) {
    if (!live_crashed_[i].load(std::memory_order_relaxed)) {
      alive.push_back(i);
    }
  }
  if (alive.empty()) {
    return Status::Ok();  // everyone is down right now; skip the slot
  }
  std::uint32_t g = alive[rng.NextBelow(alive.size())];
  Status s = RunOnGuardian(rng, g, guardian_mutexes[g], local, journal);
  if (!s.ok()) {
    return Status(s.code(), "guardian " + std::to_string(g) + ": " + s.message());
  }
  return s;
}

Status WorkloadDriver::RunOnGuardian(Rng& rng, std::uint32_t g, std::mutex& guardian_mutex,
                                     WorkloadStats& local, bool journal) {
  Guardian& guard = world_->guardian(g);
  ActionId aid{GuardianId{g},
               next_concurrent_sequence_.fetch_add(1, std::memory_order_relaxed)};
  ActionContext ctx(aid);
  ResidencyManager* residency = guard.recovery().residency();
  if (residency != nullptr) {
    ctx.BindResidency(residency);
    // Live gauge sample; the atomic read needs no lock, and sampling once per
    // action keeps SnapshotLiveStats at most one action stale.
    live_resident_bytes_[g].store(residency->resident_bytes(), std::memory_order_relaxed);
  }
  bool request_abort = rng.NextBool(config_.abort_probability);
  const auto action_start = std::chrono::steady_clock::now();

  if (guard.recovery().shard_count() > 1) {
    // Sharded flow: two critical sections. The prepare stages marks on every
    // touched shard and MUST be durable before the commit record is staged on
    // the home shard (the cross-shard atomicity protocol — see LogWriter), so
    // the prepare force cannot be folded into the commit's wait.
    StagedOutcome prepare_staged;
    std::vector<std::pair<std::size_t, std::int64_t>> staged;
    {
      std::lock_guard<std::mutex> l(guardian_mutex);
      for (std::size_t w = 0; w < config_.writes_per_participant; ++w) {
        std::size_t slot = rng.NextBelow(config_.objects_per_guardian);
        // Globally unique values: the relaxed oracle identifies surviving
        // records by the value a recovered slot holds.
        std::int64_t value = next_unique_value_.fetch_add(1, std::memory_order_relaxed);
        RecoverableObject* obj = guard.CommittedStableVariable(SlotName(slot));
        if (obj == nullptr) {
          return Status::Corruption("guardian " + std::to_string(g) + " lost " + SlotName(slot));
        }
        Status s = ctx.WriteObject(obj, Value::Int(value));
        if (!s.ok()) {
          continue;  // self-conflict on a duplicate slot; skip
        }
        staged.emplace_back(slot, value);
      }
      if (request_abort || staged.empty()) {
        ctx.AbortVolatile(guard.heap());
        ++local.aborted;
        WorkloadObs::Get().aborted->Increment();
        return Status::Ok();
      }
      if (rng.NextBool(config_.early_prepare_probability)) {
        Result<ModifiedObjectsSet> leftover = guard.recovery().WriteEntry(aid, ctx.TakeMos());
        if (!leftover.ok()) {
          return leftover.status();
        }
        ctx.AddToMos(leftover.value());
      }
      Result<StagedOutcome> prepared = guard.recovery().StagePrepareSharded(aid, ctx.TakeMos());
      if (!prepared.ok()) {
        return prepared.status();
      }
      prepare_staged = std::move(prepared.value());
    }
    // Prepare-durability barrier, outside the mutex: concurrent actions on
    // the same guardian coalesce their per-shard forces here. A kCrashed wake
    // leaves the action prepared-but-undecided — presumed abort resolves it
    // at recovery; nothing was journaled or volatile-committed.
    Status prepare_durable = guard.recovery().WaitDurable(prepare_staged);
    if (!prepare_durable.ok()) {
      return prepare_durable;
    }
    StagedOutcome commit_staged;
    CommittedRecord* record = nullptr;
    {
      std::lock_guard<std::mutex> l(guardian_mutex);
      Result<StagedOutcome> committed = guard.recovery().StageCommitSharded(aid);
      if (!committed.ok()) {
        return committed.status();
      }
      commit_staged = std::move(committed.value());
      obs::Emit("commit.stage", aid.sequence, commit_staged.marks.front().address.offset, g);
      ctx.CommitVolatile(guard.heap());
      for (const auto& [slot, value] : staged) {
        model_[g][slot] = value;
      }
      if (journal) {
        journal_[g].emplace_back();
        record = &journal_[g].back();
        record->writes = std::move(staged);
      }
      ++local.committed;
      WorkloadObs::Get().committed->Increment();
      live_committed_[g].fetch_add(1, std::memory_order_relaxed);
      live_total_committed_.fetch_add(1, std::memory_order_relaxed);
    }
    Status durable = guard.recovery().WaitDurable(commit_staged);
    if (durable.ok()) {
      obs::Emit("commit.durable", aid.sequence, commit_staged.marks.front().address.offset, g);
      if (record != nullptr) {
        record->durable.store(true, std::memory_order_release);
      }
      if (config_.commit_latency_ns) {
        config_.commit_latency_ns(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - action_start)
                .count()));
      }
    }
    return durable;
  }

  LogAddress commit_address = LogAddress::Null();
  std::uint64_t durability_epoch = 0;
  CommittedRecord* record = nullptr;
  {
    // The per-guardian mutex serializes volatile state (heap versions, locks,
    // model) and log STAGING; durability is awaited outside, so concurrent
    // actions on one guardian coalesce their forces.
    std::lock_guard<std::mutex> l(guardian_mutex);
    std::vector<std::pair<std::size_t, std::int64_t>> staged;
    for (std::size_t w = 0; w < config_.writes_per_participant; ++w) {
      std::size_t slot = rng.NextBelow(config_.objects_per_guardian);
      std::int64_t value = static_cast<std::int64_t>(rng.NextBelow(100000));
      RecoverableObject* obj = guard.CommittedStableVariable(SlotName(slot));
      if (obj == nullptr) {
        return Status::Corruption("guardian " + std::to_string(g) + " lost " + SlotName(slot));
      }
      Status s = ctx.WriteObject(obj, Value::Int(value));
      if (!s.ok()) {
        continue;  // self-conflict on a duplicate slot; skip
      }
      staged.emplace_back(slot, value);
    }
    if (request_abort || staged.empty()) {
      // Never prepared: no log writes, the volatile rollback is the abort.
      ctx.AbortVolatile(guard.heap());
      ++local.aborted;
      WorkloadObs::Get().aborted->Increment();
      return Status::Ok();
    }
    if (rng.NextBool(config_.early_prepare_probability)) {
      Result<ModifiedObjectsSet> leftover = guard.recovery().WriteEntry(aid, ctx.TakeMos());
      if (!leftover.ok()) {
        return leftover.status();
      }
      ctx.AddToMos(leftover.value());
    }
    Result<LogAddress> prepared = guard.recovery().StagePrepare(aid, ctx.TakeMos());
    if (!prepared.ok()) {
      return prepared.status();
    }
    Result<LogAddress> committed = guard.recovery().StageCommit(aid);
    if (!committed.ok()) {
      return committed.status();
    }
    commit_address = committed.value();
    // The window the flight recorder exists for: between this event and a
    // matching commit.durable, the commit entry is staged but not durable —
    // a coherent crash in that window makes the action in-doubt.
    obs::Emit("commit.stage", aid.sequence, commit_address.offset, g);
    // Read the log generation in the SAME critical section as the staging:
    // if an online checkpoint swaps the log between our unlock and the wait
    // below, the epoch mismatch tells the coordinator our address is from
    // the retired (already-forced) log.
    durability_epoch = guard.recovery().durability_epoch();
    // Volatile commit and model update stay under the guardian mutex, so the
    // model's order equals the log's staging order. Forcing the commit entry
    // below also forces the prepare (§3.1), and a crash before the force
    // loses both — single-guardian actions need no intermediate force.
    ctx.CommitVolatile(guard.heap());
    for (const auto& [slot, value] : staged) {
      model_[g][slot] = value;
    }
    if (journal) {
      // Journal the commit in the same critical section as the staging, so
      // the journal order IS the log's staging order — the property the
      // durable-prefix reconciliation rests on.
      journal_[g].emplace_back();
      record = &journal_[g].back();
      record->writes = std::move(staged);
    }
    ++local.committed;
    WorkloadObs::Get().committed->Increment();
    live_committed_[g].fetch_add(1, std::memory_order_relaxed);
    live_total_committed_.fetch_add(1, std::memory_order_relaxed);
  }
  // The coalescing point: many actions block here on one physical flush.
  Status durable = guard.recovery().WaitDurable(commit_address, durability_epoch);
  if (durable.ok()) {
    obs::Emit("commit.durable", aid.sequence, commit_address.offset, g);
  }
  if (durable.ok() && record != nullptr) {
    record->durable.store(true, std::memory_order_release);
  }
  if (durable.ok() && config_.commit_latency_ns) {
    config_.commit_latency_ns(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                             action_start)
            .count()));
  }
  return durable;
}

Status WorkloadDriver::RunConcurrent(std::size_t actions) {
  const std::size_t guardian_count = world_->guardian_count();
  const bool partials_enabled = config_.partial_crash_probability > 0.0;
  const bool crashes_enabled = config_.crash_probability > 0.0 || partials_enabled;
  std::vector<std::mutex> guardian_mutexes(guardian_count);
  std::mutex merge_mu;
  Status first_error = Status::Ok();

  if (partials_enabled && guardian_count < 2) {
    return Status::InvalidArgument(
        "partial_crash_probability needs >= 2 guardians: a partial crash kills a proper "
        "subset and asserts the survivors keep committing");
  }
  if (config_.recovery_faults.has_value()) {
    if (config_.crash_probability <= 0.0) {
      return Status::InvalidArgument(
          "recovery_faults only fire during post-crash recovery; set crash_probability > 0");
    }
    for (std::uint32_t g = 0; g < guardian_count; ++g) {
      RecoverySystem& rs = world_->guardian(g).recovery();
      for (std::uint32_t sh = 0; sh < rs.shard_count(); ++sh) {
        if (dynamic_cast<ReplicatedStableMedium*>(&rs.shard_log(sh).medium()) == nullptr) {
          return Status::InvalidArgument(
              "recovery_faults requires a replicated medium (kDuplexed/kReplicated: faults "
              "are injected at the simulated-disk layer under the replicated store)");
        }
      }
    }
  }
  if (config_.checkpoint.has_value()) {
    for (std::uint32_t g = 0; g < guardian_count; ++g) {
      if (world_->guardian(g).recovery().coordinator() == nullptr) {
        return Status::InvalidArgument(
            "concurrent checkpointing requires group commit: workers wait for "
            "durability outside the staging mutex, and only the coordinator's "
            "epoch check resolves waits that race a log swap");
      }
    }
  }
  if (config_.mem_budget_bytes > 0) {
    for (std::uint32_t g = 0; g < guardian_count; ++g) {
      if (world_->guardian(g).recovery().residency() == nullptr) {
        return Status::InvalidArgument(
            "mem_budget_bytes is set on the workload but guardian " + std::to_string(g) +
            " has no residency manager; set SimWorldConfig::mem_budget_bytes too");
      }
    }
  }

  // One checkpoint service per guardian: its exclusive section is the same
  // per-guardian mutex the workers stage under, so capture and swap see a
  // quiescent heap/writer while stage 1 builds against live traffic. Services
  // are torn down and rebuilt around every coherent crash (their
  // RecoverySystem pointer dies with the incarnation), so each gets a slot
  // with an `abandoned` marker its crash hook sets when it stands down.
  struct ServiceSlot {
    std::unique_ptr<CheckpointService> service;
    std::shared_ptr<std::atomic<bool>> abandoned = std::make_shared<std::atomic<bool>>(false);
  };
  std::vector<ServiceSlot> services(config_.checkpoint.has_value() ? guardian_count : 0);

  // Background eviction: one ResidencyService per guardian when the budget is
  // set, sharing the guardian's staging mutex as its exclusive section. A
  // service holds a raw ResidencyManager pointer that dies with the
  // guardian's recovery system, so every crash event stops the affected
  // services first and restarts them on the fresh incarnation.
  std::vector<std::unique_ptr<ResidencyService>> residency_services(
      config_.mem_budget_bytes > 0 ? guardian_count : 0);
  auto start_residency = [&](std::uint32_t g) {
    if (residency_services.empty()) {
      return;
    }
    ResidencyManager* rm = world_->guardian(g).recovery().residency();
    if (rm == nullptr) {
      return;
    }
    ResidencyServiceConfig svc;
    svc.poll_interval = config_.residency_poll_interval;
    auto exclusive = [&guardian_mutexes, g](const std::function<void()>& fn) {
      std::lock_guard<std::mutex> l(guardian_mutexes[g]);
      fn();
    };
    residency_services[g] = std::make_unique<ResidencyService>(rm, exclusive, svc);
    residency_services[g]->Start();
  };
  auto stop_residency = [&](std::uint32_t g) {
    if (residency_services.empty() || residency_services[g] == nullptr) {
      return;
    }
    residency_services[g]->Stop();
    residency_services[g].reset();
  };

  std::unique_ptr<CrashController> controller;

  // A mid-flight checkpoint must abandon itself at its next boundary once a
  // crash is pending — except past the swap, where backing out would lose the
  // pending-pair rewrite; those last steps are quick and touch no worker.
  auto install_crash_hook = [&](std::uint32_t g) {
    CrashController* c = controller.get();
    std::shared_ptr<std::atomic<bool>> abandoned = services[g].abandoned;
    world_->guardian(g).recovery().SetSwapCrashHook(
        [c, abandoned](const char* step, std::uint64_t) {
          if (!c->crash_pending()) {
            return true;
          }
          if (std::strcmp(step, "swapped") == 0 || std::strcmp(step, "rewritten") == 0) {
            return true;
          }
          abandoned->store(true, std::memory_order_relaxed);
          return false;
        });
  };
  auto start_service = [&](std::uint32_t g) {
    CheckpointServiceConfig svc;
    svc.mode = config_.checkpoint_mode;
    svc.method = config_.checkpoint->method;
    svc.poll_interval = config_.checkpoint_poll_interval;
    svc.min_checkpoint_gap = config_.checkpoint_min_gap;
    auto exclusive = [&guardian_mutexes, g](const std::function<void()>& fn) {
      std::lock_guard<std::mutex> l(guardian_mutexes[g]);
      fn();
    };
    services[g].service = std::make_unique<CheckpointService>(
        &world_->guardian(g).recovery(), &policies_[g], exclusive, svc);
    services[g].service->Start();
  };
  // Stops a service, folds its pause accounting into the driver totals, and
  // classifies its terminal error: standing down for a coherent crash (a
  // drain that woke kCrashed on the crashed coordinator, or a hook-abandoned
  // checkpoint) is a clean exit, anything else is a real failure.
  auto absorb_service = [&](std::uint32_t g) -> Status {
    ServiceSlot& slot = services[g];
    if (slot.service == nullptr) {
      return Status::Ok();
    }
    slot.service->Stop();
    CheckpointPauseStats ps = slot.service->StatsSnapshot();
    stats_.checkpoints += ps.checkpoints;
    checkpoint_pauses_.checkpoints += ps.checkpoints;
    checkpoint_pauses_.capture_ns_total += ps.capture_ns_total;
    checkpoint_pauses_.capture_ns_max =
        std::max(checkpoint_pauses_.capture_ns_max, ps.capture_ns_max);
    checkpoint_pauses_.build_ns_total += ps.build_ns_total;
    checkpoint_pauses_.build_ns_max = std::max(checkpoint_pauses_.build_ns_max, ps.build_ns_max);
    checkpoint_pauses_.swap_ns_total += ps.swap_ns_total;
    checkpoint_pauses_.swap_ns_max = std::max(checkpoint_pauses_.swap_ns_max, ps.swap_ns_max);
    checkpoint_pauses_.pause_ns_total += ps.pause_ns_total;
    checkpoint_pauses_.pause_ns_max =
        std::max(checkpoint_pauses_.pause_ns_max, ps.pause_ns_max);
    Status err = slot.service->last_error();
    slot.service.reset();
    bool stood_down = slot.abandoned->exchange(false, std::memory_order_relaxed);
    if (!err.ok() && (err.code() == ErrorCode::kCrashed || stood_down)) {
      return Status::Ok();
    }
    return err;
  };

  // The coherent world crash, run by the controller's elected executor while
  // every worker thread is parked — single-threaded ownership of the world.
  auto crash_world = [&]() -> Status {
    // 0. Capture the flight recorders first, while every worker is parked at
    //    the rendezvous and before any crash/recovery event overwrites the
    //    ring windows — this dump is the forensic record of what each thread
    //    was doing when the world died (staged-but-undurable commits show as
    //    commit.stage events with no matching commit.durable).
    last_crash_dump_ = obs::DumpFlightRecorders();
    // 1. Checkpoint and residency services first: their RecoverySystem /
    //    ResidencyManager pointers are about to dangle. A service
    //    mid-checkpoint stands down at its next boundary (hook) or wakes
    //    kCrashed from the swap barrier's drain.
    for (std::uint32_t g = 0; g < guardian_count; ++g) {
      stop_residency(g);
      if (!services.empty()) {
        Status s = absorb_service(g);
        if (!s.ok()) {
          return Status(s.code(),
                        "checkpoint service, guardian " + std::to_string(g) + ": " + s.message());
        }
      }
    }
    // 2. Arm recovery-time media faults on every replica except the last
    //    (the highest-index replica stays intact, so the quorum careful read
    //    + fallback + re-duplexing deterministically succeed at any N —
    //    the N=2 shape of this is the historical "disk A decays, B stays
    //    healthy"). Guardians already down in a partial outage have no live
    //    recovery system to reach the medium through; their recovery reads
    //    simply run unfaulted.
    if (config_.recovery_faults.has_value()) {
      for (std::uint32_t g = 0; g < guardian_count; ++g) {
        if (world_->guardian(g).crashed()) {
          continue;
        }
        RecoverySystem& rs = world_->guardian(g).recovery();
        for (std::uint32_t sh = 0; sh < rs.shard_count(); ++sh) {
          auto* medium = dynamic_cast<ReplicatedStableMedium*>(&rs.shard_log(sh).medium());
          ARGUS_CHECK(medium != nullptr);  // validated before the storm
          ReplicatedStore& store = medium->store();
          for (std::uint32_t r = 0; r + 1 < store.replica_count(); ++r) {
            store.SetReplicaFaultPlan(r, *config_.recovery_faults);
          }
        }
      }
    }
    // 3. The crash: every guardian's volatile state dies at one instant; the
    //    staged log tails die with it. A full crash landing mid-outage
    //    subsumes the partial one: the victims are already down and their
    //    outage ends with everyone else's restart below.
    for (std::uint32_t g = 0; g < guardian_count; ++g) {
      if (!world_->guardian(g).crashed()) {
        world_->guardian(g).Crash();
      }
    }
    // 4. Full recovery, reading through the armed faults.
    for (std::uint32_t g = 0; g < guardian_count; ++g) {
      Result<RecoveryInfo> info = world_->guardian(g).Restart();
      if (!info.ok()) {
        return Status(info.status().code(), "recovery of guardian " + std::to_string(g) + ": " +
                                                info.status().message());
      }
    }
    if (config_.recovery_faults.has_value()) {
      for (std::uint32_t g = 0; g < guardian_count; ++g) {
        RecoverySystem& rs = world_->guardian(g).recovery();
        for (std::uint32_t sh = 0; sh < rs.shard_count(); ++sh) {
          auto* medium = dynamic_cast<ReplicatedStableMedium*>(&rs.shard_log(sh).medium());
          ARGUS_CHECK(medium != nullptr);
          ReplicatedStore& store = medium->store();
          for (std::uint32_t r = 0; r < store.replica_count(); ++r) {
            store.SetReplicaFaultPlan(r, DiskFaultPlan{});
          }
        }
      }
    }
    // The full restart ended any partial outage in flight.
    if (outage_active_.load(std::memory_order_relaxed)) {
      for (std::uint32_t v : outage_victims_) {
        if (config_.partition_during_outage) {
          world_->network().Heal(GuardianId{v});
        }
        live_crashed_[v].store(false, std::memory_order_relaxed);
      }
      outage_victims_.clear();
      outage_active_.store(false, std::memory_order_release);
    }
    // 5. Settle in-doubt prepared actions: Restart re-queried their (local)
    //    coordinators; presumed abort resolves anything undecided.
    world_->Pump();
    // 6. Reconcile every per-thread oracle with the durable prefix.
    for (std::uint32_t g = 0; g < guardian_count; ++g) {
      Status s = ReconcileOneGuardian(g);
      if (!s.ok()) {
        return s;
      }
    }
    // 7. Resume maintenance against the fresh incarnations.
    for (std::uint32_t g = 0; g < guardian_count; ++g) {
      if (!policies_.empty()) {
        policies_[g].Rearm(world_->guardian(g).recovery());
      }
      if (!services.empty()) {
        install_crash_hook(g);
        start_service(g);
      }
      start_residency(g);
    }
    return Status::Ok();
  };

  // Wakes every thread blocked inside WaitDurable: their guardian is now
  // (logically) dead, so they unblock with kCrashed and park like everyone
  // else instead of deadlocking against a flush that will never come.
  auto on_crash_requested = [&] {
    for (std::uint32_t g = 0; g < guardian_count; ++g) {
      if (world_->guardian(g).crashed()) {
        continue;  // already down in a partial outage: no coordinator to wake
      }
      // Sharded guardians have one force queue per shard; fail them all.
      world_->guardian(g).recovery().CrashCoordinators();
    }
  };

  // Partial-world crash: kills only `victims`, run by the elected executor
  // while every worker is parked. Survivors' volatile state, journals, and
  // flush coordinators are untouched — their traffic resumes the moment the
  // barrier releases, which is exactly what the liveness assertion measures.
  auto partial_crash_event = [&](const std::vector<std::uint32_t>& victims) -> Status {
    ARGUS_CHECK(!outage_active_.load(std::memory_order_relaxed));
    for (std::uint32_t v : victims) {
      stop_residency(v);
      if (!services.empty()) {
        Status s = absorb_service(v);
        if (!s.ok()) {
          return Status(s.code(), "checkpoint service, guardian " + std::to_string(v) +
                                      ": " + s.message());
        }
      }
      world_->guardian(v).Crash();
      live_crashed_[v].store(true, std::memory_order_relaxed);
      live_resident_bytes_[v].store(0, std::memory_order_relaxed);
      if (config_.partition_during_outage) {
        world_->network().Partition(GuardianId{v});
      }
      obs::Emit("workload.partial_crash", v, victims.size(),
                live_total_committed_.load(std::memory_order_relaxed));
    }
    // Forensic record: every parked worker's ring as of the instant the
    // subset died. A commit staged on a victim but never durability-confirmed
    // shows as a commit.stage (c = victim guardian) with no matching
    // commit.durable, and the workload.partial_crash markers just emitted
    // name the victims — taken after the crash loop so the dump is
    // self-describing (only the executor's own ring gains those few events).
    last_crash_dump_ = obs::DumpFlightRecorders();
    outage_victims_ = victims;
    outage_baseline_.store(live_total_committed_.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    outage_active_.store(true, std::memory_order_release);
    ++stats_.partial_crashes;
    WorkloadObs::Get().partial_crashes->Increment();
    return Status::Ok();
  };

  // Wakes only the victims' durability waiters; survivors' waiters complete
  // naturally (a waiter elected flush leader flushes synchronously), then
  // park at their next Poll — the barrier completes either way.
  auto on_partial_requested = [&](const std::vector<std::uint32_t>& victims) {
    for (std::uint32_t v : victims) {
      world_->guardian(v).recovery().CrashCoordinators();
    }
  };

  // Recovers the dead subset: heal the partition, restart each victim through
  // full recovery, reconcile it against its journal's durable prefix, and
  // hold every survivor to a FULL-replay reconcile (nothing it committed may
  // have vanished — it never crashed). Asserts the liveness floor.
  auto partial_recover_event = [&]() -> Status {
    ARGUS_CHECK(outage_active_.load(std::memory_order_relaxed));
    const std::uint64_t growth = live_total_committed_.load(std::memory_order_relaxed) -
                                 outage_baseline_.load(std::memory_order_relaxed);
    if (growth < config_.min_survivor_commits) {
      return Status::Corruption(
          "survivor liveness violated: only " + std::to_string(growth) +
          " commits during the outage, floor is " +
          std::to_string(config_.min_survivor_commits));
    }
    // Survivors get a full-replay reconcile below, which reads committed base
    // versions without the staging mutex — their eviction threads must be
    // quiet first (every service restarts once the event is done).
    for (std::uint32_t g = 0; g < guardian_count; ++g) {
      stop_residency(g);
    }
    for (std::uint32_t v : outage_victims_) {
      if (config_.partition_during_outage) {
        world_->network().Heal(GuardianId{v});
      }
      Result<RecoveryInfo> info = world_->guardian(v).Restart();
      if (!info.ok()) {
        return Status(info.status().code(), "partial recovery of guardian " +
                                                std::to_string(v) + ": " +
                                                info.status().message());
      }
      Status s = ReconcileOneGuardian(v);
      if (!s.ok()) {
        return s;
      }
      live_crashed_[v].store(false, std::memory_order_relaxed);
      obs::Emit("workload.partial_recover", v, info.value().in_doubt_actions, growth);
    }
    for (std::uint32_t g = 0; g < guardian_count; ++g) {
      if (std::find(outage_victims_.begin(), outage_victims_.end(), g) !=
          outage_victims_.end()) {
        continue;
      }
      Status s = ReconcileOneGuardian(g, /*require_full_replay=*/true);
      if (!s.ok()) {
        return Status(s.code(), "survivor " + std::to_string(g) + ": " + s.message());
      }
    }
    // Resume maintenance on the fresh victim incarnations.
    for (std::uint32_t v : outage_victims_) {
      if (!policies_.empty()) {
        policies_[v].Rearm(world_->guardian(v).recovery());
      }
      if (!services.empty()) {
        install_crash_hook(v);
        start_service(v);
      }
    }
    for (std::uint32_t g = 0; g < guardian_count; ++g) {
      start_residency(g);  // everyone is alive again
    }
    outage_victims_.clear();
    outage_active_.store(false, std::memory_order_release);
    ++stats_.partial_recoveries;
    stats_.min_outage_survivor_commits =
        std::min(stats_.min_outage_survivor_commits, growth);
    WorkloadObs::Get().partial_recoveries->Increment();
    return Status::Ok();
  };

  if (crashes_enabled) {
    journal_.clear();
    journal_.resize(guardian_count);
    crash_base_.assign(guardian_count, {});
    for (std::uint32_t g = 0; g < guardian_count; ++g) {
      crash_base_[g].assign(config_.objects_per_guardian, 0);
      for (const auto& [slot, value] : model_[g]) {
        if (slot < config_.objects_per_guardian) {
          crash_base_[g][slot] = value;
        }
      }
    }
    controller = std::make_unique<CrashController>(config_.threads, crash_world,
                                                   on_crash_requested);
  }

  if (!services.empty()) {
    for (std::uint32_t g = 0; g < guardian_count; ++g) {
      if (controller != nullptr) {
        install_crash_hook(g);
      }
      start_service(g);
    }
  }

  stats_.per_thread_failures.assign(config_.threads, 0);
  std::vector<std::thread> workers;
  workers.reserve(config_.threads);
  for (std::size_t t = 0; t < config_.threads; ++t) {
    std::size_t quota = actions / config_.threads + (t < actions % config_.threads ? 1 : 0);
    workers.emplace_back([this, t, quota, &guardian_mutexes, &merge_mu, &first_error,
                          &controller, &partial_crash_event, &partial_recover_event,
                          &on_partial_requested] {
      Rng rng(config_.seed + 0x9e3779b97f4a7c15ull * (t + 1));
      WorkloadStats local;
      std::uint64_t failures = 0;
      Status status = Status::Ok();
      for (std::size_t i = 0; i < quota; ++i) {
        if (controller != nullptr) {
          // Preemption point: park here if the world is crashing.
          status = controller->Poll();
          if (!status.ok()) {
            break;
          }
          if (rng.NextBool(config_.crash_probability)) {
            status = controller->RequestCrash();
            if (!status.ok()) {
              break;
            }
          }
          if (config_.partial_crash_probability > 0.0) {
            // The outage flag only flips inside a barrier event, which needs
            // THIS thread parked — so the value read here cannot go stale
            // between the check and the request. A request that loses the
            // race to another pending event is simply dropped (the closure
            // never runs) and this thread parks through the winner.
            if (!outage_active_.load(std::memory_order_acquire) &&
                rng.NextBool(config_.partial_crash_probability)) {
              std::vector<std::uint32_t> victims = PickVictims(rng);
              status = controller->RequestEvent(
                  [&partial_crash_event, victims] { return partial_crash_event(victims); },
                  [&on_partial_requested, &victims] { on_partial_requested(victims); });
              if (!status.ok()) {
                break;
              }
            } else if (outage_active_.load(std::memory_order_acquire) &&
                       live_total_committed_.load(std::memory_order_relaxed) -
                               outage_baseline_.load(std::memory_order_relaxed) >=
                           config_.min_survivor_commits &&
                       rng.NextBool(config_.partial_recover_probability)) {
              status = controller->RequestEvent(partial_recover_event);
              if (!status.ok()) {
                break;
              }
            }
          }
        }
        status = RunOneConcurrentAction(rng, guardian_mutexes, local, controller != nullptr);
        if (!status.ok()) {
          ++failures;
          if (status.code() == ErrorCode::kCrashed) {
            // The action's durability wait was cut short by a coherent
            // crash: in doubt, not an error. Reconciliation decides its fate;
            // the next Poll() parks this thread through the recovery.
            ++local.in_doubt;
            WorkloadObs::Get().in_doubt->Increment();
            status = Status::Ok();
            continue;
          }
          status = Status(status.code(), "thread " + std::to_string(t) + ", action #" +
                                             std::to_string(i) + ": " + status.message());
          break;
        }
      }
      if (controller != nullptr) {
        controller->Deregister();
      }
      std::lock_guard<std::mutex> l(merge_mu);
      stats_.attempted += local.attempted;
      stats_.committed += local.committed;
      stats_.aborted += local.aborted;
      stats_.in_doubt += local.in_doubt;
      stats_.per_thread_failures[t] = failures;
      if (!status.ok() && first_error.ok()) {
        first_error = status;
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  if (controller != nullptr) {
    stats_.crashes += controller->crashes();
  }
  // A storm that ends mid-outage: bring the dead subset back up and reconcile
  // it so the post-run checks see a whole world. Not counted as a recovery —
  // no worker requested it, and the liveness floor may legitimately not have
  // been reached before the quotas ran out.
  if (outage_active_.load(std::memory_order_relaxed)) {
    for (std::uint32_t v : outage_victims_) {
      if (config_.partition_during_outage) {
        world_->network().Heal(GuardianId{v});
      }
      Result<RecoveryInfo> info = world_->guardian(v).Restart();
      if (!info.ok()) {
        if (first_error.ok()) {
          first_error = Status(info.status().code(), "teardown recovery of guardian " +
                                                         std::to_string(v) + ": " +
                                                         info.status().message());
        }
        continue;
      }
      Status s = ReconcileOneGuardian(v);
      if (!s.ok() && first_error.ok()) {
        first_error = s;
      }
      live_crashed_[v].store(false, std::memory_order_relaxed);
    }
    outage_victims_.clear();
    outage_active_.store(false, std::memory_order_relaxed);
  }
  for (std::uint32_t g = 0; g < guardian_count; ++g) {
    stop_residency(g);
    if (!services.empty()) {
      Status s = absorb_service(g);
      if (first_error.ok() && !s.ok()) {
        first_error = Status(s.code(), "checkpoint service, guardian " + std::to_string(g) +
                                           ": " + s.message());
      }
    }
    if (controller != nullptr && !world_->guardian(g).crashed()) {
      // The hook closes over the controller, which dies with this frame.
      world_->guardian(g).recovery().SetSwapCrashHook(nullptr);
    }
  }
  return first_error;
}

Status WorkloadDriver::ReconcileOneGuardian(std::uint32_t g, bool require_full_replay) {
  Guardian& guard = world_->guardian(g);
  // The oracle reads committed base versions directly; rematerialize any
  // stubs first (a crashed guardian recovers fully resident, but a survivor
  // may have evicted mid-outage).
  if (ResidencyManager* rm = guard.recovery().residency(); rm != nullptr) {
    Status ms = rm->MaterializeAll();
    if (!ms.ok()) {
      return Status(ms.code(),
                    "guardian " + std::to_string(g) + " rematerialize: " + ms.message());
    }
  }
  if (!require_full_replay && guard.recovery().shard_count() > 1) {
    // N independent force queues: durability is not prefix-closed across
    // shards, so the crashed-guardian check is set-based, not prefix-based.
    // (Survivors lost nothing and still take the exact full-replay path.)
    return ReconcileOneGuardianSharded(g);
  }
  std::vector<Value> recovered;
  recovered.reserve(config_.objects_per_guardian);
  for (std::size_t slot = 0; slot < config_.objects_per_guardian; ++slot) {
    RecoverableObject* obj = guard.CommittedStableVariable(SlotName(slot));
    if (obj == nullptr) {
      return Status::Corruption("guardian " + std::to_string(g) + " lost " + SlotName(slot) +
                                " across the crash");
    }
    recovered.push_back(obj->base_version());
  }

  std::deque<CommittedRecord>& journal = journal_[g];
  // Every durable-confirmed record must be inside the accepted prefix. A
  // survivor (never crashed) must replay to its FULL journal: its volatile
  // state holds everything it ever committed.
  std::size_t min_prefix = 0;
  if (require_full_replay) {
    min_prefix = journal.size();
  } else {
    for (std::size_t i = 0; i < journal.size(); ++i) {
      if (journal[i].durable.load(std::memory_order_acquire)) {
        min_prefix = i + 1;
      }
    }
  }

  std::vector<std::int64_t> state = crash_base_[g];
  auto matches = [&] {
    for (std::size_t slot = 0; slot < state.size(); ++slot) {
      if (!(Value::Int(state[slot]) == recovered[slot])) {
        return false;
      }
    }
    return true;
  };
  std::optional<std::size_t> accepted;
  std::optional<std::size_t> first_match;
  for (std::size_t p = 0;; ++p) {
    if (matches()) {
      if (!first_match.has_value()) {
        first_match = p;
      }
      if (p >= min_prefix) {
        accepted = p;
        break;
      }
    }
    if (p == journal.size()) {
      break;
    }
    for (const auto& [slot, value] : journal[p].writes) {
      state[slot] = value;
    }
  }
  if (!accepted.has_value()) {
    if (require_full_replay && first_match.has_value()) {
      return Status::Corruption(
          "guardian " + std::to_string(g) + ": survivor state equals journal prefix " +
          std::to_string(*first_match) + " of " + std::to_string(journal.size()) +
          " — a commit vanished without a crash");
    }
    if (first_match.has_value()) {
      return Status::Corruption(
          "guardian " + std::to_string(g) + ": recovered state equals journal prefix " +
          std::to_string(*first_match) + " but a durably-confirmed commit sits at index " +
          std::to_string(min_prefix - 1) + " — committed work was lost");
    }
    return Status::Corruption("guardian " + std::to_string(g) +
                              ": recovered state matches no prefix of the " +
                              std::to_string(journal.size()) +
                              "-record commit journal — a partial or invented action survived");
  }
  // `state` is the replay at the accepted prefix, which the recovered world
  // equals; the in-doubt tail vanished with the staged log. Rebase the
  // oracle so post-recovery traffic verifies against reality.
  crash_base_[g] = state;
  for (std::size_t slot = 0; slot < state.size(); ++slot) {
    model_[g][slot] = state[slot];
  }
  journal.clear();
  return Status::Ok();
}

Status WorkloadDriver::ReconcileOneGuardianSharded(std::uint32_t g) {
  Guardian& guard = world_->guardian(g);
  const std::size_t slots = config_.objects_per_guardian;
  std::deque<CommittedRecord>& journal = journal_[g];

  // Identify, per slot, which journal record produced the recovered value.
  // Values are globally unique, so the match is unambiguous: -1 means the
  // slot still holds its pre-storm base value.
  std::vector<std::int64_t> recovered_value(slots);
  std::vector<std::ptrdiff_t> origin(slots, -1);
  for (std::size_t slot = 0; slot < slots; ++slot) {
    RecoverableObject* obj = guard.CommittedStableVariable(SlotName(slot));
    if (obj == nullptr) {
      return Status::Corruption("guardian " + std::to_string(g) + " lost " + SlotName(slot) +
                                " across the crash");
    }
    const Value& v = obj->base_version();
    bool identified = v == Value::Int(crash_base_[g][slot]);
    recovered_value[slot] = crash_base_[g][slot];
    if (!identified) {
      for (std::size_t p = journal.size(); p-- > 0 && !identified;) {
        for (const auto& [s, value] : journal[p].writes) {
          if (s == slot && v == Value::Int(value)) {
            origin[slot] = static_cast<std::ptrdiff_t>(p);
            recovered_value[slot] = value;
            identified = true;
            break;
          }
        }
      }
    }
    if (!identified) {
      return Status::Corruption("guardian " + std::to_string(g) + " " + SlotName(slot) + " = " +
                                v.ToString() +
                                " matches neither the base state nor any journaled commit — "
                                "an invented or partial value survived");
    }
  }

  // Zero lost committed work: a durable-confirmed record's write may only be
  // superseded by a LATER surviving record's write to the same slot.
  for (std::size_t p = 0; p < journal.size(); ++p) {
    if (!journal[p].durable.load(std::memory_order_acquire)) {
      continue;
    }
    for (const auto& [slot, value] : journal[p].writes) {
      if (origin[slot] < static_cast<std::ptrdiff_t>(p)) {
        return Status::Corruption(
            "guardian " + std::to_string(g) + " " + SlotName(slot) +
            ": durably-confirmed commit (journal record " + std::to_string(p) +
            ") was lost — the slot recovered an older value");
      }
    }
  }

  // Atomicity: a record identified as surviving via ANY slot must account for
  // every slot it wrote — each must resolve to this record or a newer one.
  for (std::size_t slot = 0; slot < slots; ++slot) {
    if (origin[slot] < 0) {
      continue;
    }
    const CommittedRecord& rec = journal[static_cast<std::size_t>(origin[slot])];
    for (const auto& [s, value] : rec.writes) {
      if (origin[s] < origin[slot]) {
        return Status::Corruption(
            "guardian " + std::to_string(g) + ": journal record " +
            std::to_string(origin[slot]) + " survived partially — " + SlotName(s) +
            " recovered an older value (atomicity violated)");
      }
    }
  }

  // Rebase the oracle on the recovered state.
  for (std::size_t slot = 0; slot < slots; ++slot) {
    crash_base_[g][slot] = recovered_value[slot];
    model_[g][slot] = recovered_value[slot];
  }
  journal.clear();
  return Status::Ok();
}

Result<std::size_t> WorkloadDriver::VerifyAfterCrash() {
  // Settle in-flight work first: any still-undecided coordinator gives up.
  world_->Pump();
  for (std::uint32_t g = 0; g < world_->guardian_count(); ++g) {
    if (world_->guardian(g).crashed()) {
      Result<RecoveryInfo> info = world_->guardian(g).Restart();
      if (!info.ok()) {
        return info.status();
      }
    }
  }
  world_->Pump();

  // Full-world crash and recovery.
  for (std::uint32_t g = 0; g < world_->guardian_count(); ++g) {
    world_->guardian(g).Crash();
  }
  for (std::uint32_t g = 0; g < world_->guardian_count(); ++g) {
    Result<RecoveryInfo> info = world_->guardian(g).Restart();
    if (!info.ok()) {
      return info.status();
    }
  }
  world_->Pump();

  std::size_t checked = 0;
  for (std::uint32_t g = 0; g < world_->guardian_count(); ++g) {
    for (const auto& [slot, expected] : model_[g]) {
      RecoverableObject* obj =
          world_->guardian(g).CommittedStableVariable(SlotName(slot));
      if (obj == nullptr) {
        return Status::Corruption("guardian " + std::to_string(g) + " lost " +
                                  SlotName(slot));
      }
      // In-flight prepared actions may still hold tentative versions; the
      // COMMITTED (base) state must match the model exactly.
      if (!(obj->base_version() == Value::Int(expected))) {
        return Status::Corruption(
            "guardian " + std::to_string(g) + " " + SlotName(slot) + " = " +
            obj->base_version().ToString() + ", model says " + std::to_string(expected));
      }
      ++checked;
    }
  }
  return checked;
}

}  // namespace argus
