#include "src/tpc/workload.h"

#include <algorithm>
#include <thread>

namespace argus {

WorkloadDriver::WorkloadDriver(SimWorld* world, WorkloadConfig config)
    : world_(world), config_(config), rng_(config.seed) {
  ARGUS_CHECK(world != nullptr);
  model_.resize(world->guardian_count());
  if (config_.checkpoint.has_value()) {
    policies_.reserve(world->guardian_count());
    for (std::size_t i = 0; i < world->guardian_count(); ++i) {
      policies_.emplace_back(*config_.checkpoint);
    }
  }
}

Status WorkloadDriver::Setup() {
  for (std::uint32_t g = 0; g < world_->guardian_count(); ++g) {
    Result<Guardian::ActionFate> fate =
        world_->RunTopAction(GuardianId{g}, [&](SimWorld& w, ActionId aid) -> Status {
          return w.RunAt(aid, GuardianId{g}, [&](Guardian& guard, ActionContext& ctx) {
            for (std::size_t i = 0; i < config_.objects_per_guardian; ++i) {
              RecoverableObject* obj = ctx.CreateAtomic(guard.heap(), Value::Int(0));
              Status s = guard.SetStableVariable(aid, SlotName(i), obj);
              if (!s.ok()) {
                return s;
              }
            }
            return Status::Ok();
          });
        });
    if (!fate.ok()) {
      return fate.status();
    }
    if (fate.value() != Guardian::ActionFate::kCommitted) {
      return Status::IoError("setup action did not commit");
    }
    for (std::size_t i = 0; i < config_.objects_per_guardian; ++i) {
      model_[g][i] = 0;
    }
  }
  return Status::Ok();
}

Status WorkloadDriver::RunOneAction() {
  ++stats_.attempted;

  // Choose 1..max_participants distinct alive guardians.
  std::size_t participant_count =
      1 + rng_.NextBelow(std::min(config_.max_participants, world_->guardian_count()));
  std::vector<std::uint32_t> participants;
  for (std::size_t tries = 0; tries < 16 && participants.size() < participant_count; ++tries) {
    std::uint32_t g = static_cast<std::uint32_t>(rng_.NextBelow(world_->guardian_count()));
    if (!world_->guardian(g).crashed() &&
        std::find(participants.begin(), participants.end(), g) == participants.end()) {
      participants.push_back(g);
    }
  }
  if (participants.empty()) {
    return Status::Ok();  // everyone is down right now
  }
  GuardianId coordinator{participants[0]};

  // Staged mutations, applied to the model only on commit.
  std::vector<std::tuple<std::uint32_t, std::size_t, std::int64_t>> staged;
  bool request_abort = rng_.NextBool(config_.abort_probability);

  Guardian& coord = world_->guardian(coordinator);
  ActionId aid = coord.BeginTopAction();
  bool blocked = false;
  for (std::uint32_t g : participants) {
    std::size_t slot = rng_.NextBelow(config_.objects_per_guardian);
    std::int64_t value = static_cast<std::int64_t>(rng_.NextBelow(100000));
    Status s = world_->RunAt(aid, GuardianId{g}, [&](Guardian& guard, ActionContext& ctx) {
      Result<RecoverableObject*> obj = guard.GetStableVariable(aid, SlotName(slot));
      if (!obj.ok()) {
        return obj.status();
      }
      return ctx.UpdateObject(obj.value(), [value](Value& v) { v = Value::Int(value); });
    });
    if (!s.ok()) {
      blocked = true;  // lock conflict or guardian down
      break;
    }
    staged.emplace_back(g, slot, value);
    if (rng_.NextBool(config_.early_prepare_probability)) {
      Status ep = world_->guardian(g).EarlyPrepare(aid);
      if (!ep.ok()) {
        return ep;
      }
    }
  }

  if (blocked || request_abort) {
    coord.AbortTopAction(aid);
    world_->Pump();
    ++stats_.aborted;
    return Status::Ok();
  }

  Status s = coord.RequestCommit(aid);
  if (!s.ok()) {
    return s;
  }

  // Maybe crash a participant mid-protocol.
  if (rng_.NextBool(config_.crash_probability)) {
    std::uint64_t steps = rng_.NextBelow(4);
    for (std::uint64_t i = 0; i < steps; ++i) {
      world_->Step();
    }
    std::uint32_t victim = participants[rng_.NextBelow(participants.size())];
    world_->guardian(victim).Crash();
    ++stats_.crashes;
    world_->Pump();
    // If the coordinator itself died, nothing more to drive now; restart
    // everyone so the protocol can settle.
    Result<RecoveryInfo> info = world_->guardian(victim).Restart();
    if (!info.ok()) {
      return info.status();
    }
    world_->Pump();
    if (victim != coordinator.value) {
      // The coordinator may still be waiting for the victim's prepare: let it
      // give up if the action has not reached the commit point.
      coord.AbortTopAction(aid);
      world_->guardian(victim).RequeryOutstanding();
    }
    world_->Pump();
  } else {
    world_->Pump();
  }

  Guardian::ActionFate fate = coord.FateOf(aid);
  if (fate == Guardian::ActionFate::kCommitted) {
    ++stats_.committed;
    for (const auto& [g, slot, value] : staged) {
      model_[g][slot] = value;
    }
  } else {
    ++stats_.aborted;
  }

  // Per-guardian checkpoint policies.
  if (!policies_.empty()) {
    for (std::uint32_t g = 0; g < world_->guardian_count(); ++g) {
      if (world_->guardian(g).crashed()) {
        continue;
      }
      Result<bool> ran = policies_[g].MaybeHousekeep(world_->guardian(g).recovery());
      if (!ran.ok()) {
        return ran.status();
      }
      if (ran.value()) {
        ++stats_.checkpoints;
      }
    }
  }
  return Status::Ok();
}

Status WorkloadDriver::Run(std::size_t actions) {
  if (config_.threads >= 1) {
    return RunConcurrent(actions);
  }
  for (std::size_t i = 0; i < actions; ++i) {
    Status s = RunOneAction();
    if (!s.ok()) {
      return s;
    }
  }
  world_->Pump();
  return Status::Ok();
}

Status WorkloadDriver::RunOneConcurrentAction(Rng& rng,
                                              std::vector<std::mutex>& guardian_mutexes,
                                              WorkloadStats& local) {
  ++local.attempted;
  std::uint32_t g = static_cast<std::uint32_t>(rng.NextBelow(world_->guardian_count()));
  Guardian& guard = world_->guardian(g);
  ActionId aid{GuardianId{g},
               next_concurrent_sequence_.fetch_add(1, std::memory_order_relaxed)};
  ActionContext ctx(aid);
  bool request_abort = rng.NextBool(config_.abort_probability);
  LogAddress commit_address = LogAddress::Null();
  std::uint64_t durability_epoch = 0;
  const auto action_start = std::chrono::steady_clock::now();
  {
    // The per-guardian mutex serializes volatile state (heap versions, locks,
    // model) and log STAGING; durability is awaited outside, so concurrent
    // actions on one guardian coalesce their forces.
    std::lock_guard<std::mutex> l(guardian_mutexes[g]);
    std::vector<std::pair<std::size_t, std::int64_t>> staged;
    for (std::size_t w = 0; w < config_.writes_per_participant; ++w) {
      std::size_t slot = rng.NextBelow(config_.objects_per_guardian);
      std::int64_t value = static_cast<std::int64_t>(rng.NextBelow(100000));
      RecoverableObject* obj = guard.CommittedStableVariable(SlotName(slot));
      if (obj == nullptr) {
        return Status::Corruption("guardian " + std::to_string(g) + " lost " + SlotName(slot));
      }
      Status s = ctx.WriteObject(obj, Value::Int(value));
      if (!s.ok()) {
        continue;  // self-conflict on a duplicate slot; skip
      }
      staged.emplace_back(slot, value);
    }
    if (request_abort || staged.empty()) {
      // Never prepared: no log writes, the volatile rollback is the abort.
      ctx.AbortVolatile(guard.heap());
      ++local.aborted;
      return Status::Ok();
    }
    if (rng.NextBool(config_.early_prepare_probability)) {
      Result<ModifiedObjectsSet> leftover = guard.recovery().WriteEntry(aid, ctx.TakeMos());
      if (!leftover.ok()) {
        return leftover.status();
      }
      ctx.AddToMos(leftover.value());
    }
    Result<LogAddress> prepared = guard.recovery().StagePrepare(aid, ctx.TakeMos());
    if (!prepared.ok()) {
      return prepared.status();
    }
    Result<LogAddress> committed = guard.recovery().StageCommit(aid);
    if (!committed.ok()) {
      return committed.status();
    }
    commit_address = committed.value();
    // Read the log generation in the SAME critical section as the staging:
    // if an online checkpoint swaps the log between our unlock and the wait
    // below, the epoch mismatch tells the coordinator our address is from
    // the retired (already-forced) log.
    durability_epoch = guard.recovery().durability_epoch();
    // Volatile commit and model update stay under the guardian mutex, so the
    // model's order equals the log's staging order. Forcing the commit entry
    // below also forces the prepare (§3.1), and a crash before the force
    // loses both — single-guardian actions need no intermediate force.
    ctx.CommitVolatile(guard.heap());
    for (const auto& [slot, value] : staged) {
      model_[g][slot] = value;
    }
    ++local.committed;
  }
  // The coalescing point: many actions block here on one physical flush.
  Status durable = guard.recovery().WaitDurable(commit_address, durability_epoch);
  if (durable.ok() && config_.commit_latency_ns) {
    config_.commit_latency_ns(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                             action_start)
            .count()));
  }
  return durable;
}

Status WorkloadDriver::RunConcurrent(std::size_t actions) {
  if (config_.crash_probability > 0.0) {
    return Status::InvalidArgument("concurrent workload does not inject crashes");
  }
  std::vector<std::mutex> guardian_mutexes(world_->guardian_count());
  std::mutex merge_mu;
  Status first_error = Status::Ok();

  // One checkpoint service per guardian: its exclusive section is the same
  // per-guardian mutex the workers stage under, so capture and swap see a
  // quiescent heap/writer while stage 1 builds against live traffic.
  std::vector<std::unique_ptr<CheckpointService>> services;
  if (config_.checkpoint.has_value()) {
    for (std::uint32_t g = 0; g < world_->guardian_count(); ++g) {
      if (world_->guardian(g).recovery().coordinator() == nullptr) {
        return Status::InvalidArgument(
            "concurrent checkpointing requires group commit: workers wait for "
            "durability outside the staging mutex, and only the coordinator's "
            "epoch check resolves waits that race a log swap");
      }
    }
    CheckpointServiceConfig svc;
    svc.mode = config_.checkpoint_mode;
    svc.method = config_.checkpoint->method;
    svc.poll_interval = config_.checkpoint_poll_interval;
    for (std::uint32_t g = 0; g < world_->guardian_count(); ++g) {
      auto exclusive = [&guardian_mutexes, g](const std::function<void()>& fn) {
        std::lock_guard<std::mutex> l(guardian_mutexes[g]);
        fn();
      };
      services.push_back(std::make_unique<CheckpointService>(
          &world_->guardian(g).recovery(), &policies_[g], exclusive, svc));
    }
    for (auto& s : services) {
      s->Start();
    }
  }

  std::vector<std::thread> workers;
  workers.reserve(config_.threads);
  for (std::size_t t = 0; t < config_.threads; ++t) {
    std::size_t quota = actions / config_.threads + (t < actions % config_.threads ? 1 : 0);
    workers.emplace_back([this, t, quota, &guardian_mutexes, &merge_mu, &first_error] {
      Rng rng(config_.seed + 0x9e3779b97f4a7c15ull * (t + 1));
      WorkloadStats local;
      Status status = Status::Ok();
      for (std::size_t i = 0; i < quota; ++i) {
        status = RunOneConcurrentAction(rng, guardian_mutexes, local);
        if (!status.ok()) {
          break;
        }
      }
      std::lock_guard<std::mutex> l(merge_mu);
      stats_.attempted += local.attempted;
      stats_.committed += local.committed;
      stats_.aborted += local.aborted;
      if (!status.ok() && first_error.ok()) {
        first_error = status;
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  for (auto& s : services) {
    s->Stop();
    CheckpointPauseStats ps = s->StatsSnapshot();
    stats_.checkpoints += ps.checkpoints;
    checkpoint_pauses_.checkpoints += ps.checkpoints;
    checkpoint_pauses_.capture_ns_total += ps.capture_ns_total;
    checkpoint_pauses_.capture_ns_max =
        std::max(checkpoint_pauses_.capture_ns_max, ps.capture_ns_max);
    checkpoint_pauses_.build_ns_total += ps.build_ns_total;
    checkpoint_pauses_.build_ns_max = std::max(checkpoint_pauses_.build_ns_max, ps.build_ns_max);
    checkpoint_pauses_.swap_ns_total += ps.swap_ns_total;
    checkpoint_pauses_.swap_ns_max = std::max(checkpoint_pauses_.swap_ns_max, ps.swap_ns_max);
    checkpoint_pauses_.pause_ns_total += ps.pause_ns_total;
    checkpoint_pauses_.pause_ns_max =
        std::max(checkpoint_pauses_.pause_ns_max, ps.pause_ns_max);
    if (first_error.ok() && !s->last_error().ok()) {
      first_error = s->last_error();
    }
  }
  return first_error;
}

Result<std::size_t> WorkloadDriver::VerifyAfterCrash() {
  // Settle in-flight work first: any still-undecided coordinator gives up.
  world_->Pump();
  for (std::uint32_t g = 0; g < world_->guardian_count(); ++g) {
    if (world_->guardian(g).crashed()) {
      Result<RecoveryInfo> info = world_->guardian(g).Restart();
      if (!info.ok()) {
        return info.status();
      }
    }
  }
  world_->Pump();

  // Full-world crash and recovery.
  for (std::uint32_t g = 0; g < world_->guardian_count(); ++g) {
    world_->guardian(g).Crash();
  }
  for (std::uint32_t g = 0; g < world_->guardian_count(); ++g) {
    Result<RecoveryInfo> info = world_->guardian(g).Restart();
    if (!info.ok()) {
      return info.status();
    }
  }
  world_->Pump();

  std::size_t checked = 0;
  for (std::uint32_t g = 0; g < world_->guardian_count(); ++g) {
    for (const auto& [slot, expected] : model_[g]) {
      RecoverableObject* obj =
          world_->guardian(g).CommittedStableVariable(SlotName(slot));
      if (obj == nullptr) {
        return Status::Corruption("guardian " + std::to_string(g) + " lost " +
                                  SlotName(slot));
      }
      // In-flight prepared actions may still hold tentative versions; the
      // COMMITTED (base) state must match the model exactly.
      if (!(obj->base_version() == Value::Int(expected))) {
        return Status::Corruption(
            "guardian " + std::to_string(g) + " " + SlotName(slot) + " = " +
            obj->base_version().ToString() + ", model says " + std::to_string(expected));
      }
      ++checked;
    }
  }
  return checked;
}

}  // namespace argus
