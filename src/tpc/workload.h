// A reusable mixed-workload driver over a SimWorld.
//
// Generates the banking-style workload the thesis's introduction motivates:
// distributed top-level actions touching a few objects at 1..k guardians,
// with configurable abort probability, early-prepare probability, crash
// probability, and automatic checkpointing. Used by the stress tests and the
// workload benchmark; it also maintains a model of the committed state so
// callers can verify the recovered world.

#ifndef SRC_TPC_WORKLOAD_H_
#define SRC_TPC_WORKLOAD_H_

#include <atomic>
#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "src/recovery/checkpoint_policy.h"
#include "src/recovery/online_checkpoint.h"
#include "src/tpc/crash_controller.h"
#include "src/tpc/sim_world.h"

namespace argus {

struct WorkloadConfig {
  std::uint64_t seed = 1;
  std::size_t objects_per_guardian = 8;
  std::size_t max_participants = 2;      // guardians touched per action
  std::size_t writes_per_participant = 2;
  double abort_probability = 0.05;       // client-requested aborts
  double early_prepare_probability = 0.0;
  // Per-action chance of a crash. Serial driver: one guardian crashes
  // mid-protocol and restarts. Concurrent driver: the whole world crashes
  // coherently at that worker's next preemption point (see CrashController),
  // restarts through full recovery, and every per-thread oracle is reconciled
  // against the durable prefix before traffic resumes.
  double crash_probability = 0.0;
  // Concurrent driver only: media faults armed on every replica except the
  // highest-index one of every guardian's replicated store for the duration
  // of post-crash recovery (cleared once the world is back up), exercising
  // quorum careful-read fallback and re-duplexing under recovery reads. The
  // last replica stays healthy, so recovery always has an intact copy — at
  // N=2 this is the historical "disk A decays, B stays healthy". Requires a
  // replicated medium (kDuplexed/kReplicated) and crash_probability > 0.
  std::optional<DiskFaultPlan> recovery_faults;
  // If set, each guardian housekeeps when its policy fires. In the serial
  // driver the policy runs inline between actions (stop-the-world); in the
  // concurrent driver a per-guardian CheckpointService thread runs it
  // according to `checkpoint_mode`, racing the worker threads.
  std::optional<CheckpointPolicyConfig> checkpoint;
  // How the concurrent driver's checkpoint service pauses writers: kOnline
  // pauses only for capture and the swap barrier; kStopTheWorld holds the
  // guardian mutex across the whole checkpoint (the baseline to beat).
  CheckpointMode checkpoint_mode = CheckpointMode::kOnline;
  std::chrono::milliseconds checkpoint_poll_interval{1};
  // Fairness floor between checkpoints, forwarded to every guardian's
  // CheckpointService (see CheckpointServiceConfig::min_checkpoint_gap).
  std::chrono::milliseconds checkpoint_min_gap{5};
  // ---- Partial-world outages (concurrent driver only) ----
  //
  // Per-action chance that a worker requests a partial-world crash: a random
  // subset of 1..N-1 guardians dies at the controller's rendezvous while the
  // survivors keep committing. Requires >= 2 guardians.
  double partial_crash_probability = 0.0;
  // Per-action chance, while an outage is active AND the survivor-liveness
  // floor has been met, that a worker requests the recover event: partitions
  // heal, the dead subset restarts through recovery, and every victim is
  // reconciled against its journal's durable prefix.
  double partial_recover_probability = 0.0;
  // Also network-Partition() the victims for the outage's duration (healed by
  // the recover event): messages toward the dead subset drop instead of
  // queueing, as §2.2.1 assumes.
  bool partition_during_outage = false;
  // Survivor-liveness floor: the recover event refuses to run (and asserts,
  // if somehow reached) until the world-wide committed count has grown by at
  // least this much since the outage began. This is the liveness property:
  // a partial crash must not stop the survivors from committing.
  std::uint64_t min_survivor_commits = 1;
  // 0 (default) runs the serial, network-driven driver. >= 1 switches Run()
  // to the concurrent driver: that many OS threads issue single-guardian
  // actions in parallel, staging under a per-guardian mutex and waiting for
  // durability outside it (the group-commit coalescing point). Concurrent
  // mode ignores max_participants (every action stays on one guardian — the
  // simulated network is single-threaded). Checkpointing IS supported
  // concurrently, but requires group commit on every guardian: workers wait
  // for durability outside the staging mutex, and only the coordinator's
  // epoch check resolves waits that race a log swap.
  std::size_t threads = 0;
  // When set, called once per committed action in the concurrent driver with
  // the action's end-to-end latency (stage through durable) in nanoseconds.
  // Invoked concurrently from worker threads — must be thread-safe.
  std::function<void(std::uint64_t)> commit_latency_ns;
  // ---- Residency (beyond-RAM object store) ----
  //
  // Per-guardian memory budget. Must match SimWorldConfig::mem_budget_bytes
  // (the recovery systems own the ResidencyManagers; the driver cannot
  // retrofit one). When > 0 the concurrent driver runs one ResidencyService
  // per guardian (exclusive section = the guardian's staging mutex), the
  // serial driver runs an inline eviction pass between actions, and
  // SnapshotLiveStats reports per-guardian resident bytes.
  std::uint64_t mem_budget_bytes = 0;
  // Poll cadence of the background ResidencyService threads.
  std::chrono::milliseconds residency_poll_interval{1};
};

struct WorkloadStats {
  std::uint64_t attempted = 0;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t crashes = 0;
  std::uint64_t checkpoints = 0;
  // Concurrent actions whose durability wait was interrupted by a coherent
  // crash (kCrashed): the outcome is legal either way, and the post-crash
  // reconciliation — not the worker — decides whether the action survived.
  std::uint64_t in_doubt = 0;
  // Concurrent mode: per worker thread, how many of its actions ended in a
  // non-Ok status (in-doubt outcomes included). Sized `threads` by Run().
  std::vector<std::uint64_t> per_thread_failures;
  // Partial-world outages completed (crash side / recover side). A storm that
  // ends mid-outage recovers the victims at teardown without counting a
  // recovery, so these can differ by one.
  std::uint64_t partial_crashes = 0;
  std::uint64_t partial_recoveries = 0;
  // Minimum survivor commit growth observed across recovered outages — the
  // liveness witness. ~0 until the first recover event runs.
  std::uint64_t min_outage_survivor_commits = ~std::uint64_t{0};
};

class WorkloadDriver {
 public:
  WorkloadDriver(SimWorld* world, WorkloadConfig config);

  // Creates the per-guardian object populations ("slot0".."slotN").
  Status Setup();

  // Runs `actions` top-level actions (plus injected crashes/restarts).
  Status Run(std::size_t actions);

  // Compares every guardian's committed stable state against the model.
  // Crashes and restarts all guardians first, so the check goes through
  // recovery. Returns the number of objects checked.
  Result<std::size_t> VerifyAfterCrash();

  const WorkloadStats& stats() const { return stats_; }

  // ---- Mid-run observation (thread-safe) ----

  // A point-in-time view of one guardian while a concurrent Run() is in
  // flight: volatile commits that touched it so far, and whether it is
  // currently down in a partial-world outage.
  struct LiveGuardianStats {
    std::uint64_t committed = 0;
    bool crashed = false;
    // Last sampled residency gauge (0 when residency is disabled or the
    // guardian is down). Sampled by workers after each action, so a snapshot
    // lags live eviction by at most one action.
    std::uint64_t resident_bytes = 0;
  };

  // Snapshot of every guardian's live stats. Safe to call from any thread at
  // any time (the liveness assertions and the stress tests poll it mid-run);
  // counters are monotone, so two snapshots bracket the commits in between.
  std::vector<LiveGuardianStats> SnapshotLiveStats() const;

  // World-wide volatile commits so far (the sum of the per-guardian
  // counters, maintained separately so the liveness floor is one load).
  std::uint64_t live_committed_total() const {
    return live_total_committed_.load(std::memory_order_relaxed);
  }

  // Aggregated checkpoint pause accounting across guardians (concurrent
  // driver only; totals summed, maxima taken across services).
  const CheckpointPauseStats& checkpoint_pauses() const { return checkpoint_pauses_; }

  // Flight-recorder dump captured by the crash executor at the most recent
  // coherent crash, while every worker was parked at the rendezvous — the
  // per-thread event windows as of the instant the world died. Empty when no
  // crash has fired (or obs is disabled).
  const std::string& last_crash_dump() const { return last_crash_dump_; }

 private:
  std::string SlotName(std::size_t i) const { return "slot" + std::to_string(i); }

  // Runs one action; updates the model on commit.
  Status RunOneAction();

  // Concurrent mode (config_.threads >= 1).
  Status RunConcurrent(std::size_t actions);
  Status RunOneConcurrentAction(Rng& rng, std::vector<std::mutex>& guardian_mutexes,
                                WorkloadStats& local, bool journal);
  // The action body, once a guardian is picked (errors come back bare; the
  // caller attaches the guardian/thread/ordinal context).
  Status RunOnGuardian(Rng& rng, std::uint32_t g, std::mutex& guardian_mutex,
                       WorkloadStats& local, bool journal);

  // ---- Crash-storm oracle (concurrent driver; see DESIGN.md) ----

  // One volatile commit, journaled in log staging order. Workers keep a
  // pointer to their record across releasing the staging mutex and set
  // `durable` after WaitDurable returns Ok; the crash executor reads the
  // journal only while every worker is parked at the controller's barrier
  // (which is also the happens-before edge that makes the plain-field reads
  // race-free — `durable` is atomic because it is written outside any lock).
  struct CommittedRecord {
    std::vector<std::pair<std::size_t, std::int64_t>> writes;  // slot → value
    std::atomic<bool> durable{false};
  };

  // Durable-prefix reconciliation for one guardian after a coherent crash:
  // the recovered committed state must equal the replay of some prefix of the
  // journal (atomicity: records are all-or-nothing units), and that prefix
  // must cover every durable-confirmed record (zero lost committed work).
  // In-doubt records beyond the prefix simply vanished with the staged tail.
  // On success, rebases crash_base_/model_ on the recovered state and clears
  // the journal.
  //
  // `require_full_replay` is the survivor variant: a guardian that did NOT
  // crash must match the replay of its ENTIRE journal — no record may have
  // vanished. Used by the partial-recover event on every survivor.
  Status ReconcileOneGuardian(std::uint32_t g, bool require_full_replay = false);

  // The sharded-log variant of the crashed-guardian oracle. With N force
  // queues the durable frontier is per-shard, so the surviving records are a
  // SUBSET of the journal, not a prefix. Journal values are globally unique
  // (see next_unique_value_), so each recovered slot identifies the record
  // that produced it; the checks are then (1) no invented values, (2) every
  // durable-confirmed record's writes survive unless overwritten by a LATER
  // surviving record, and (3) atomicity — a record identified by any slot
  // must account for every slot it wrote. Survivors still use the exact
  // full-replay check in ReconcileOneGuardian.
  Status ReconcileOneGuardianSharded(std::uint32_t g);

  // Picks 1..N-1 distinct victims for a partial-world crash.
  std::vector<std::uint32_t> PickVictims(Rng& rng) const;

  SimWorld* world_;
  WorkloadConfig config_;
  Rng rng_;
  WorkloadStats stats_;
  // model_[guardian][slot] = committed value
  std::vector<std::map<std::size_t, std::int64_t>> model_;
  std::vector<CheckpointPolicy> policies_;
  CheckpointPauseStats checkpoint_pauses_;
  // Per-guardian journal of volatile commits since the last reconciliation
  // point (deque: stable element addresses while workers append).
  std::vector<std::deque<CommittedRecord>> journal_;
  // Committed state at the last reconciliation point — the replay base.
  std::vector<std::vector<std::int64_t>> crash_base_;
  // Concurrent-mode action sequences: above Setup's per-guardian sequences,
  // and persistent across Run() calls so an ActionId is never reused.
  std::atomic<std::uint64_t> next_concurrent_sequence_{std::uint64_t{1} << 20};
  // Sharded-mode write values: globally unique (a shared monotone counter)
  // instead of random, so the relaxed oracle can identify which journal
  // record produced a recovered slot value.
  std::atomic<std::int64_t> next_unique_value_{1};
  std::string last_crash_dump_;  // written only by the crash executor

  // ---- Partial-world outage state ----
  //
  // The atomics are read by running workers and by SnapshotLiveStats callers;
  // they are written either by workers (the counters) or by the elected event
  // executor while every worker is parked (the outage state — the barrier
  // mutex is the happens-before edge). outage_victims_ is executor/teardown
  // only and needs no synchronization.
  std::unique_ptr<std::atomic<std::uint64_t>[]> live_committed_;  // per guardian
  std::unique_ptr<std::atomic<bool>[]> live_crashed_;             // per guardian
  std::unique_ptr<std::atomic<std::uint64_t>[]> live_resident_bytes_;  // per guardian
  std::atomic<std::uint64_t> live_total_committed_{0};
  std::atomic<bool> outage_active_{false};
  std::atomic<std::uint64_t> outage_baseline_{0};  // total commits at outage start
  std::vector<std::uint32_t> outage_victims_;
};

}  // namespace argus

#endif  // SRC_TPC_WORKLOAD_H_
