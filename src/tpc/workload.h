// A reusable mixed-workload driver over a SimWorld.
//
// Generates the banking-style workload the thesis's introduction motivates:
// distributed top-level actions touching a few objects at 1..k guardians,
// with configurable abort probability, early-prepare probability, crash
// probability, and automatic checkpointing. Used by the stress tests and the
// workload benchmark; it also maintains a model of the committed state so
// callers can verify the recovered world.

#ifndef SRC_TPC_WORKLOAD_H_
#define SRC_TPC_WORKLOAD_H_

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>

#include "src/recovery/checkpoint_policy.h"
#include "src/recovery/online_checkpoint.h"
#include "src/tpc/sim_world.h"

namespace argus {

struct WorkloadConfig {
  std::uint64_t seed = 1;
  std::size_t objects_per_guardian = 8;
  std::size_t max_participants = 2;      // guardians touched per action
  std::size_t writes_per_participant = 2;
  double abort_probability = 0.05;       // client-requested aborts
  double early_prepare_probability = 0.0;
  double crash_probability = 0.0;        // per-action chance a guardian crashes
  // If set, each guardian housekeeps when its policy fires. In the serial
  // driver the policy runs inline between actions (stop-the-world); in the
  // concurrent driver a per-guardian CheckpointService thread runs it
  // according to `checkpoint_mode`, racing the worker threads.
  std::optional<CheckpointPolicyConfig> checkpoint;
  // How the concurrent driver's checkpoint service pauses writers: kOnline
  // pauses only for capture and the swap barrier; kStopTheWorld holds the
  // guardian mutex across the whole checkpoint (the baseline to beat).
  CheckpointMode checkpoint_mode = CheckpointMode::kOnline;
  std::chrono::milliseconds checkpoint_poll_interval{1};
  // 0 (default) runs the serial, network-driven driver. >= 1 switches Run()
  // to the concurrent driver: that many OS threads issue single-guardian
  // actions in parallel, staging under a per-guardian mutex and waiting for
  // durability outside it (the group-commit coalescing point). Concurrent
  // mode still rejects crash injection (ROADMAP: crash injection in
  // concurrent mode), and ignores max_participants (every action stays on
  // one guardian — the simulated network is single-threaded). Checkpointing
  // IS supported concurrently, but requires group commit on every guardian:
  // workers wait for durability outside the staging mutex, and only the
  // coordinator's epoch check resolves waits that race a log swap.
  std::size_t threads = 0;
  // When set, called once per committed action in the concurrent driver with
  // the action's end-to-end latency (stage through durable) in nanoseconds.
  // Invoked concurrently from worker threads — must be thread-safe.
  std::function<void(std::uint64_t)> commit_latency_ns;
};

struct WorkloadStats {
  std::uint64_t attempted = 0;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t crashes = 0;
  std::uint64_t checkpoints = 0;
};

class WorkloadDriver {
 public:
  WorkloadDriver(SimWorld* world, WorkloadConfig config);

  // Creates the per-guardian object populations ("slot0".."slotN").
  Status Setup();

  // Runs `actions` top-level actions (plus injected crashes/restarts).
  Status Run(std::size_t actions);

  // Compares every guardian's committed stable state against the model.
  // Crashes and restarts all guardians first, so the check goes through
  // recovery. Returns the number of objects checked.
  Result<std::size_t> VerifyAfterCrash();

  const WorkloadStats& stats() const { return stats_; }

  // Aggregated checkpoint pause accounting across guardians (concurrent
  // driver only; totals summed, maxima taken across services).
  const CheckpointPauseStats& checkpoint_pauses() const { return checkpoint_pauses_; }

 private:
  std::string SlotName(std::size_t i) const { return "slot" + std::to_string(i); }

  // Runs one action; updates the model on commit.
  Status RunOneAction();

  // Concurrent mode (config_.threads > 1).
  Status RunConcurrent(std::size_t actions);
  Status RunOneConcurrentAction(Rng& rng, std::vector<std::mutex>& guardian_mutexes,
                                WorkloadStats& local);

  SimWorld* world_;
  WorkloadConfig config_;
  Rng rng_;
  WorkloadStats stats_;
  // model_[guardian][slot] = committed value
  std::vector<std::map<std::size_t, std::int64_t>> model_;
  std::vector<CheckpointPolicy> policies_;
  CheckpointPauseStats checkpoint_pauses_;
  // Concurrent-mode action sequences: above Setup's per-guardian sequences,
  // and persistent across Run() calls so an ActionId is never reused.
  std::atomic<std::uint64_t> next_concurrent_sequence_{std::uint64_t{1} << 20};
};

}  // namespace argus

#endif  // SRC_TPC_WORKLOAD_H_
