#include "src/tpc/guardian.h"

#include <algorithm>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace argus {

namespace {

struct GuardianObs {
  obs::Counter* commit_points;  // committing records written (the 2PC commit point)
  obs::Counter* aborts;         // coordinator-side abort verdicts
  obs::Counter* crashes;
  obs::Counter* restarts;
  obs::Counter* timeouts;         // coordinator gave up preparing (tick timeout)
  obs::Counter* presumed_aborts;  // abort verdicts derived from a missing
                                  // committing record (§2.2.3), not an
                                  // explicit decision
  obs::Counter* query_retries;    // periodic participant re-queries (§2.2.2)

  static const GuardianObs& Get() {
    static const GuardianObs m{
        obs::GetCounter("tpc.commit_points"),
        obs::GetCounter("tpc.aborts"),
        obs::GetCounter("tpc.crashes"),
        obs::GetCounter("tpc.restarts"),
        obs::GetCounter("tpc.timeouts"),
        obs::GetCounter("tpc.presumed_aborts"),
        obs::GetCounter("tpc.query_retries"),
    };
    return m;
  }
};

}  // namespace

Guardian::Guardian(GuardianId gid, RecoverySystemConfig config, SimNetwork* network)
    : gid_(gid), config_(std::move(config)), network_(network) {
  ARGUS_CHECK(network_ != nullptr);
  heap_ = std::make_unique<VolatileHeap>();
  recovery_ = std::make_unique<RecoverySystem>(config_, heap_.get());
}

ActionId Guardian::BeginTopAction() {
  ARGUS_CHECK(!crashed_);
  ActionId aid{gid_, next_action_sequence_++};
  enlisted_[aid];  // participants accumulate as the action spreads
  return aid;
}

ActionContext& Guardian::ContextFor(ActionId aid) {
  ARGUS_CHECK(!crashed_);
  auto it = contexts_.find(aid);
  if (it == contexts_.end()) {
    it = contexts_.emplace(aid, ActionContext(aid)).first;
    it->second.BindResidency(recovery_->residency());
  }
  return it->second;
}

Status Guardian::SetStableVariable(ActionId aid, const std::string& name,
                                   RecoverableObject* obj) {
  ActionContext& ctx = ContextFor(aid);
  return ctx.UpdateObject(heap_->root(), [&](Value& record) {
    record.as_record()[name] = Value::Ref(obj);
  });
}

Result<RecoverableObject*> Guardian::GetStableVariable(ActionId aid, const std::string& name) {
  ActionContext& ctx = ContextFor(aid);
  Result<Value> root = ctx.ReadObject(heap_->root());
  if (!root.ok()) {
    return root.status();
  }
  const Value::Record& record = root.value().as_record();
  auto it = record.find(name);
  if (it == record.end() || !it->second.is_ref()) {
    return Status::NotFound("no stable variable " + name);
  }
  return it->second.as_ref();
}

RecoverableObject* Guardian::CommittedStableVariable(const std::string& name) const {
  if (crashed_) {
    return nullptr;
  }
  const Value& root = heap_->root()->base_version();
  if (!root.is_record()) {
    return nullptr;
  }
  auto it = root.as_record().find(name);
  if (it == root.as_record().end() || !it->second.is_ref()) {
    return nullptr;
  }
  return it->second.as_ref();
}

Status Guardian::EarlyPrepare(ActionId aid) {
  ActionContext& ctx = ContextFor(aid);
  Result<ModifiedObjectsSet> leftover = recovery_->WriteEntry(aid, ctx.TakeMos());
  if (!leftover.ok()) {
    return leftover.status();
  }
  // Objects that were inaccessible stay in the MOS; they may become
  // accessible later or be (not) written at prepare time (§4.4).
  ctx.AddToMos(leftover.value());
  return Status::Ok();
}

void Guardian::EnlistParticipant(ActionId aid, GuardianId participant) {
  enlisted_[aid].insert(participant);
}

void Guardian::Send(GuardianId to, MessageType type, ActionId aid, bool positive) {
  network_->Send(Message{gid_, to, type, aid, positive});
}

Status Guardian::RequestCommit(ActionId aid) {
  ARGUS_CHECK(!crashed_);
  ARGUS_CHECK_MSG(aid.coordinator == gid_, "RequestCommit at a non-coordinator");
  std::set<GuardianId> participants = enlisted_[aid];
  if (HasContext(aid)) {
    participants.insert(gid_);  // the coordinator is also a participant
  }

  CoordinatorJob job;
  job.participants.assign(participants.begin(), participants.end());
  job.awaiting = participants;

  if (participants.empty()) {
    // Nothing was modified anywhere; the action commits vacuously with no
    // stable writes.
    job.phase = CoordinatorJob::Phase::kDone;
    local_outcomes_[aid] = ParticipantState::kCommitted;
    jobs_[aid] = std::move(job);
    return Status::Ok();
  }

  job.started_at = clock_;
  jobs_[aid] = std::move(job);
  obs::EmitBegin("tpc.2pc", aid.sequence, participants.size(), gid_.value);
  for (GuardianId p : participants) {
    Send(p, MessageType::kPrepare, aid);
  }
  return Status::Ok();
}

void Guardian::AbortTopAction(ActionId aid) {
  ARGUS_CHECK(!crashed_);
  auto it = jobs_.find(aid);
  if (it != jobs_.end() && (it->second.phase == CoordinatorJob::Phase::kCommitting ||
                            it->second.phase == CoordinatorJob::Phase::kDone)) {
    return;  // past the commit point; the verdict is commit
  }
  // The coordinator writes nothing for an abort: after a crash the absence of
  // a committing record IS the abort (§2.2.3).
  std::set<GuardianId> targets = enlisted_[aid];
  if (HasContext(aid)) {
    targets.insert(gid_);
  }
  if (it != jobs_.end()) {
    it->second.phase = CoordinatorJob::Phase::kAborted;
  } else {
    CoordinatorJob job;
    job.phase = CoordinatorJob::Phase::kAborted;
    jobs_[aid] = std::move(job);
  }
  local_outcomes_[aid] = ParticipantState::kAborted;
  for (GuardianId p : targets) {
    Send(p, MessageType::kAbort, aid);
  }
}

void Guardian::AbortLocal(ActionId aid) {
  ARGUS_CHECK(!crashed_);
  auto it = contexts_.find(aid);
  if (it != contexts_.end()) {
    // rs.Abort writes an aborted entry only if the action had prepared.
    Status s = recovery_->Abort(aid);
    ARGUS_CHECK_MSG(s.ok(), "abort log write failed");
    it->second.AbortVolatile(*heap_);
    contexts_.erase(it);
  }
  local_outcomes_[aid] = ParticipantState::kAborted;
}

void Guardian::RequeryOutstanding() {
  ARGUS_CHECK(!crashed_);
  for (const auto& [aid, state] : local_outcomes_) {
    if (state == ParticipantState::kPrepared) {
      GuardianObs::Get().query_retries->Increment();
      Send(aid.coordinator, MessageType::kQuery, aid);
      prepared_at_[aid] = clock_;
    }
  }
}

void Guardian::OnTick(std::uint64_t now) {
  if (crashed_) {
    return;
  }
  clock_ = now;
  if (timeouts_.prepare_timeout > 0) {
    // Coordinator timeout: a job still gathering prepare-acks after the
    // deadline presumes a participant is unreachable and aborts. No abort
    // record is written — the missing committing record is the verdict, and
    // late queries resolve against it (§2.2.3).
    std::vector<ActionId> expired;
    for (const auto& [aid, job] : jobs_) {
      if (job.phase == CoordinatorJob::Phase::kPreparing &&
          now - job.started_at >= timeouts_.prepare_timeout) {
        expired.push_back(aid);
      }
    }
    for (ActionId aid : expired) {
      GuardianObs::Get().timeouts->Increment();
      obs::Emit("tpc.timeout", aid.sequence, now, gid_.value);
      AbortTopAction(aid);
    }
  }
  if (timeouts_.query_retry_interval > 0) {
    for (auto& [aid, last_query] : prepared_at_) {
      if (now - last_query >= timeouts_.query_retry_interval) {
        GuardianObs::Get().query_retries->Increment();
        Send(aid.coordinator, MessageType::kQuery, aid);
        last_query = now;
      }
    }
  }
}

bool Guardian::HasTimeoutWork() const {
  if (crashed_) {
    return false;
  }
  if (timeouts_.query_retry_interval > 0 && !prepared_at_.empty()) {
    return true;
  }
  if (timeouts_.prepare_timeout > 0) {
    for (const auto& [aid, job] : jobs_) {
      if (job.phase == CoordinatorJob::Phase::kPreparing) {
        return true;
      }
    }
  }
  return false;
}

void Guardian::HandleMessage(const Message& message) {
  if (crashed_) {
    ++dropped_while_crashed_;
    return;
  }
  switch (message.type) {
    case MessageType::kPrepare:
      OnPrepare(message);
      return;
    case MessageType::kPrepareAck:
      OnPrepareAck(message);
      return;
    case MessageType::kCommit:
      OnCommitDecision(message.aid, message.from);
      return;
    case MessageType::kCommitAck:
      OnCommitAck(message);
      return;
    case MessageType::kAbort:
      OnAbortDecision(message.aid);
      return;
    case MessageType::kQuery:
      OnQuery(message);
      return;
    case MessageType::kQueryReply:
      if (message.positive) {
        OnCommitDecision(message.aid, message.from);
      } else {
        OnAbortDecision(message.aid);
      }
      return;
  }
}

void Guardian::OnPrepare(const Message& m) {
  ActionId aid = m.aid;
  auto outcome = local_outcomes_.find(aid);
  if (outcome != local_outcomes_.end()) {
    // Already resolved here (e.g. duplicate prepare): answer from history.
    Send(m.from, MessageType::kPrepareAck, aid,
         outcome->second != ParticipantState::kAborted);
    return;
  }
  auto it = contexts_.find(aid);
  if (it == contexts_.end()) {
    // "If the action is unknown at the participant (because it never ran
    // there, was aborted locally, or was wiped out by a crash), then the
    // participant replies aborted" (§2.2.2).
    Send(m.from, MessageType::kPrepareAck, aid, false);
    return;
  }
  Status s = recovery_->Prepare(aid, it->second.TakeMos());
  if (!s.ok()) {
    Send(m.from, MessageType::kPrepareAck, aid, false);
    return;
  }
  local_outcomes_[aid] = ParticipantState::kPrepared;
  prepared_at_[aid] = clock_;
  Send(m.from, MessageType::kPrepareAck, aid, true);
}

void Guardian::OnCommitDecision(ActionId aid, GuardianId coordinator) {
  auto outcome = local_outcomes_.find(aid);
  if (outcome != local_outcomes_.end() && outcome->second == ParticipantState::kCommitted) {
    Send(coordinator, MessageType::kCommitAck, aid);  // idempotent re-ack
    return;
  }
  // A commit for a locally-aborted action means the two sides diverged —
  // that must never happen (the coordinator's verdict is terminal); refuse
  // to compound the damage by writing a contradictory record.
  ARGUS_CHECK_MSG(outcome == local_outcomes_.end() ||
                      outcome->second != ParticipantState::kAborted,
                  "commit received for an action this participant aborted");
  Status s = recovery_->Commit(aid);
  ARGUS_CHECK_MSG(s.ok(), "commit log write failed");
  auto it = contexts_.find(aid);
  if (it != contexts_.end()) {
    it->second.CommitVolatile(*heap_);
    contexts_.erase(it);
  }
  local_outcomes_[aid] = ParticipantState::kCommitted;
  prepared_at_.erase(aid);
  Send(coordinator, MessageType::kCommitAck, aid);
}

void Guardian::OnAbortDecision(ActionId aid) {
  auto outcome = local_outcomes_.find(aid);
  // An abort for a committed action means the two sides diverged (the
  // coordinator's verdict is terminal) — never paper over it.
  ARGUS_CHECK_MSG(outcome == local_outcomes_.end() ||
                      outcome->second != ParticipantState::kCommitted,
                  "abort received for an action this participant committed");
  // Idempotent by construction: Abort only logs for still-prepared actions,
  // and the context cleanup runs whether or not the outcome was already
  // recorded (AbortTopAction records the outcome before the self-addressed
  // abort message arrives — the locks must still be released here).
  Status s = recovery_->Abort(aid);
  ARGUS_CHECK_MSG(s.ok(), "abort log write failed");
  auto it = contexts_.find(aid);
  if (it != contexts_.end()) {
    it->second.AbortVolatile(*heap_);
    contexts_.erase(it);
  }
  local_outcomes_[aid] = ParticipantState::kAborted;
  prepared_at_.erase(aid);
}

void Guardian::OnPrepareAck(const Message& m) {
  auto it = jobs_.find(m.aid);
  if (it == jobs_.end()) {
    // Coordinator forgot the action (crash before committing): the default
    // outcome is abort; queries will tell the participant so.
    return;
  }
  CoordinatorJob& job = it->second;
  if (job.phase != CoordinatorJob::Phase::kPreparing) {
    return;
  }
  if (!m.positive) {
    job.phase = CoordinatorJob::Phase::kAborted;
    local_outcomes_[m.aid] = ParticipantState::kAborted;
    GuardianObs::Get().aborts->Increment();
    obs::EmitEnd("tpc.2pc", m.aid.sequence, 0, gid_.value);
    for (GuardianId p : job.participants) {
      Send(p, MessageType::kAbort, m.aid);
    }
    return;
  }
  job.awaiting.erase(m.from);
  if (!job.awaiting.empty()) {
    return;
  }
  // Everyone prepared: write the committing record — the commit point.
  Status s = recovery_->Committing(m.aid, job.participants);
  ARGUS_CHECK_MSG(s.ok(), "committing log write failed");
  GuardianObs::Get().commit_points->Increment();
  obs::Emit("tpc.commit_point", m.aid.sequence, job.participants.size(), gid_.value);
  job.phase = CoordinatorJob::Phase::kCommitting;
  job.awaiting.insert(job.participants.begin(), job.participants.end());
  for (GuardianId p : job.participants) {
    Send(p, MessageType::kCommit, m.aid);
  }
}

void Guardian::OnCommitAck(const Message& m) {
  auto it = jobs_.find(m.aid);
  if (it == jobs_.end()) {
    return;
  }
  CoordinatorJob& job = it->second;
  if (job.phase != CoordinatorJob::Phase::kCommitting) {
    return;
  }
  job.awaiting.erase(m.from);
  if (!job.awaiting.empty()) {
    return;
  }
  Status s = recovery_->Done(m.aid);
  ARGUS_CHECK_MSG(s.ok(), "done log write failed");
  job.phase = CoordinatorJob::Phase::kDone;
  obs::EmitEnd("tpc.2pc", m.aid.sequence, 1, gid_.value);
}

void Guardian::OnQuery(const Message& m) {
  auto it = jobs_.find(m.aid);
  if (it != jobs_.end() && it->second.phase == CoordinatorJob::Phase::kPreparing) {
    // The outcome is UNDECIDED: stay silent. Replying abort here would race
    // the decision — a participant whose prepared-ack is still in flight
    // could be told to abort moments before the coordinator commits. The
    // participant re-queries later (§2.2.2: it "can query the coordinator").
    return;
  }
  bool committed = it != jobs_.end() && (it->second.phase == CoordinatorJob::Phase::kCommitting ||
                                         it->second.phase == CoordinatorJob::Phase::kDone);
  if (it == jobs_.end()) {
    // No job at all: the coordinator crashed before the committing record
    // (or never heard of the action). The absence IS the abort — this reply
    // is the presumed-abort verdict of §2.2.3, not a recorded decision.
    GuardianObs::Get().presumed_aborts->Increment();
    obs::Emit("tpc.presumed_abort", m.aid.sequence, m.from.value, gid_.value);
  }
  Send(m.from, MessageType::kQueryReply, m.aid, committed);
  if (committed && it->second.phase == CoordinatorJob::Phase::kCommitting) {
    // The reply doubles as the commit decision; expect an ack.
    it->second.awaiting.insert(m.from);
  }
}

Guardian::ActionFate Guardian::FateOf(ActionId aid) const {
  auto outcome = local_outcomes_.find(aid);
  if (outcome != local_outcomes_.end()) {
    switch (outcome->second) {
      case ParticipantState::kCommitted:
        return ActionFate::kCommitted;
      case ParticipantState::kAborted:
        return ActionFate::kAborted;
      case ParticipantState::kPrepared:
        return ActionFate::kInProgress;
    }
  }
  auto it = jobs_.find(aid);
  if (it != jobs_.end()) {
    switch (it->second.phase) {
      case CoordinatorJob::Phase::kDone:
      case CoordinatorJob::Phase::kCommitting:
        return ActionFate::kCommitted;
      case CoordinatorJob::Phase::kAborted:
        return ActionFate::kAborted;
      case CoordinatorJob::Phase::kPreparing:
        return ActionFate::kInProgress;
    }
  }
  if (contexts_.find(aid) != contexts_.end()) {
    return ActionFate::kInProgress;
  }
  return ActionFate::kUnknown;
}

bool Guardian::TwoPhaseDone(ActionId aid) const {
  auto it = jobs_.find(aid);
  return it != jobs_.end() && it->second.phase == CoordinatorJob::Phase::kDone;
}

void Guardian::ConfigureMaintenance(const CheckpointPolicyConfig& config) {
  maintenance_.emplace(config);
  if (!crashed_) {
    maintenance_->Rearm(*recovery_);
  }
}

Result<bool> Guardian::MaintenanceTick() {
  if (crashed_ || !maintenance_.has_value()) {
    return false;
  }
  return maintenance_->MaybeHousekeep(*recovery_);
}

void Guardian::Crash() {
  ARGUS_CHECK(!crashed_);
  GuardianObs::Get().crashes->Increment();
  obs::Emit("tpc.crash", gid_.value);
  recovery_->CrashCoordinators();
  surviving_ = recovery_->TakeSurvivingState();
  recovery_.reset();
  heap_.reset();
  contexts_.clear();
  jobs_.clear();
  enlisted_.clear();
  local_outcomes_.clear();
  prepared_at_.clear();
  crashed_ = true;
}

Result<RecoveryInfo> Guardian::Restart() {
  ARGUS_CHECK(crashed_);
  GuardianObs::Get().restarts->Increment();
  obs::TraceSpan span("tpc.restart", gid_.value);
  heap_ = std::make_unique<VolatileHeap>();
  recovery_ = std::make_unique<RecoverySystem>(config_, heap_.get(), std::move(surviving_));
  Result<RecoveryInfo> info = recovery_->Recover();
  if (!info.ok()) {
    // A failed recovery (e.g. a still-faulted disk) must not strand the
    // stable state inside the dead incarnation: reclaim it so a later
    // Restart() — after the fault heals — gets another try.
    surviving_ = recovery_->TakeSurvivingState();
    recovery_.reset();
    heap_.reset();
    return info;
  }
  crashed_ = false;
  // The forensic marker of a rejoin: how many in-doubt participants this
  // incarnation woke up with (they query below, then retry on ticks).
  obs::Emit("tpc.rejoin", gid_.value, info.value().in_doubt_actions);
  if (maintenance_.has_value()) {
    maintenance_->Rearm(*recovery_);  // log counters restarted with the incarnation
  }

  // Resume participants: prepared actions get a context holding their
  // write-locked objects and ask their coordinator for the verdict.
  for (const auto& [aid, state] : info.value().pt) {
    local_outcomes_[aid] = state;
    if (state != ParticipantState::kPrepared) {
      continue;
    }
    ActionContext& ctx = ContextFor(aid);
    for (const auto& [uid, entry] : info.value().ot) {
      if (entry.object->is_atomic() && entry.object->write_locker() == aid) {
        ctx.AdoptTouched(uid);
      }
    }
    Send(aid.coordinator, MessageType::kQuery, aid);
    // The rejoin query may be cut down by a partition or land on a still-dead
    // coordinator; the stamp arms the periodic re-query until the verdict.
    prepared_at_[aid] = clock_;
  }

  // Resume coordinators: a committing action re-sends its verdict; a done
  // action is finished.
  for (const auto& [aid, entry] : info.value().ct) {
    CoordinatorJob job;
    job.participants = entry.participants;
    if (entry.phase == CoordinatorPhase::kDone) {
      job.phase = CoordinatorJob::Phase::kDone;
      local_outcomes_[aid] = ParticipantState::kCommitted;
    } else {
      job.phase = CoordinatorJob::Phase::kCommitting;
      job.awaiting.insert(entry.participants.begin(), entry.participants.end());
      for (GuardianId p : entry.participants) {
        Send(p, MessageType::kCommit, aid);
      }
    }
    jobs_[aid] = std::move(job);
  }
  return info;
}

}  // namespace argus
