// Messages of the two-phase commit protocol (§2.2).

#ifndef SRC_TPC_MESSAGES_H_
#define SRC_TPC_MESSAGES_H_

#include <string>

#include "src/common/ids.h"

namespace argus {

enum class MessageType : std::uint8_t {
  kPrepare,      // coordinator → participant: "prepare for action A to commit"
  kPrepareAck,   // participant → coordinator: prepared (positive) or aborted
  kCommit,       // coordinator → participant: commit A
  kCommitAck,    // participant → coordinator: committed
  kAbort,        // coordinator → participant: abort A
  kQuery,        // participant → coordinator: what happened to A?
  kQueryReply,   // coordinator → participant: commit (positive) or abort
};

struct Message {
  GuardianId from;
  GuardianId to;
  MessageType type = MessageType::kPrepare;
  ActionId aid;
  bool positive = false;  // kPrepareAck: prepared; kQueryReply: commit

  std::string ToString() const;
};

const char* MessageTypeName(MessageType type);

}  // namespace argus

#endif  // SRC_TPC_MESSAGES_H_
