#include "src/tpc/messages.h"

namespace argus {

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kPrepare:
      return "prepare";
    case MessageType::kPrepareAck:
      return "prepare_ack";
    case MessageType::kCommit:
      return "commit";
    case MessageType::kCommitAck:
      return "commit_ack";
    case MessageType::kAbort:
      return "abort";
    case MessageType::kQuery:
      return "query";
    case MessageType::kQueryReply:
      return "query_reply";
  }
  return "?";
}

std::string Message::ToString() const {
  std::string out = MessageTypeName(type);
  out += "(" + to_string(aid) + ") " + to_string(from) + "->" + to_string(to);
  if (type == MessageType::kPrepareAck || type == MessageType::kQueryReply) {
    out += positive ? " [yes]" : " [no]";
  }
  return out;
}

}  // namespace argus
