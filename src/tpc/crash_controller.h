// Crash-coherence protocol for the concurrent workload driver.
//
// The thesis's central claim is that a guardian may crash at ANY instant and
// recover its stable state from the log (§3.4, §4.1). The serial driver has
// always injected crashes; under real OS threads the problem is harder: a
// "crash" must hit every thread of the world at one coherent instant, while
// workers are parked at known-safe preemption points — otherwise the test
// harness itself races the teardown (threads touching a FlushCoordinator or
// StableLog mid-destruction), and any failure says nothing about the
// recovery algorithms.
//
// CrashController is that instant-maker: a rendezvous barrier over the worker
// threads plus a crash state machine.
//
//   - Workers call Poll() at every safe preemption point (between actions,
//     i.e. before any staging for the next one). Normally it is one relaxed
//     atomic load. When a crash is pending the worker parks.
//   - A worker whose seeded rng decides to crash the world calls
//     RequestCrash(): the controller flips to pending, runs the
//     `on_crash_requested` callback (the driver uses it to Crash() every
//     guardian's FlushCoordinator, so threads blocked inside WaitDurable wake
//     with kCrashed instead of deadlocking — the third preemption point), and
//     the requester parks like everyone else.
//   - When every *registered* worker is parked, exactly one parked thread is
//     elected executor and runs the `crash_world` callback single-threadedly:
//     stop checkpoint services, crash all guardians (discarding staged log
//     tails), restart them through full recovery, reconcile oracles. The
//     other workers stay parked throughout, so the executor owns the world.
//   - The executor then releases the barrier and everyone resumes traffic.
//
// Workers that finish their action quota call Deregister() so the barrier
// does not wait for them forever; a deregistration while a crash is pending
// re-evaluates the "all parked" condition, which is why election is by
// predicate (first thread to observe the complete barrier) rather than by
// arrival order.
//
// A failed crash_world (recovery refused, reconciliation mismatch) becomes
// the controller's sticky error: the storm ends, every parked and future
// caller gets the error, and the driver surfaces it with context.

#ifndef SRC_TPC_CRASH_CONTROLLER_H_
#define SRC_TPC_CRASH_CONTROLLER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>

#include "src/common/result.h"

namespace argus {

class CrashController {
 public:
  // `workers`: the number of threads that will Poll()/RequestCrash() and must
  // eventually Deregister(). `crash_world`: executed by the elected executor
  // while every registered worker is parked; brings the world down and back
  // up. `on_crash_requested`: invoked once per crash, by the requesting
  // thread, before it parks — must only do wakeups (no blocking on workers).
  CrashController(std::size_t workers, std::function<Status()> crash_world,
                  std::function<void()> on_crash_requested = {});

  CrashController(const CrashController&) = delete;
  CrashController& operator=(const CrashController&) = delete;

  // Preemption-point check-in. Returns immediately when no crash is pending;
  // parks through the crash/recovery otherwise. Returns the storm's sticky
  // error (Ok unless a crash_world failed).
  Status Poll();

  // The caller's rng decided to crash the world. Initiates a crash (or joins
  // one already pending) and parks through it. Same return as Poll().
  Status RequestCrash();

  // Generalized rendezvous: runs `event` instead of `crash_world` under the
  // same all-parked barrier — the executor owns the world while it runs. Used
  // for partial-world events (crash a guardian subset, recover it) that must
  // not race in-flight actions but should not tear the whole world down.
  //
  // `on_requested` plays the role of `on_crash_requested` for this event (e.g.
  // crash only the victims' FlushCoordinators); it may be empty. If a crash or
  // another event is already pending, `event` is DROPPED — the caller simply
  // parks through the pending one (the closure never runs, so its state
  // updates never happen; safe to just retry on a later roll).
  Status RequestEvent(std::function<Status()> event,
                      const std::function<void()>& on_requested = {});

  // Completed RequestEvent barriers so far (full crashes counted separately).
  std::uint64_t events() const;

  // The calling worker is leaving the action loop for good; the barrier stops
  // counting it. A pending crash proceeds once the remaining workers park.
  void Deregister();

  // True while a crash is pending or in progress. Checkpoint swap-crash hooks
  // return !crash_pending() so a mid-flight checkpoint abandons itself at the
  // next capture/build/swap boundary instead of racing the teardown.
  bool crash_pending() const { return armed_.load(std::memory_order_acquire); }

  // Completed world crashes so far.
  std::uint64_t crashes() const;

 private:
  // Parks until the pending crash completes; the first thread to observe the
  // full barrier executes it. Caller holds `l`.
  Status ParkLocked(std::unique_lock<std::mutex>& l);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::size_t registered_;
  std::size_t parked_ = 0;
  bool pending_ = false;    // a crash was requested and has not completed
  bool executing_ = false;  // an executor is inside crash_world
  std::uint64_t generation_ = 0;  // bumped when a crash completes
  std::uint64_t crashes_ = 0;
  std::uint64_t events_ = 0;
  Status sticky_error_ = Status::Ok();
  std::function<Status()> crash_world_;
  std::function<void()> on_crash_requested_;
  // Set while the pending rendezvous is a custom event; the executor runs it
  // instead of crash_world_ and clears it.
  std::function<Status()> pending_event_;
  // Fast path for Poll(): true iff pending_ or a sticky error is set.
  std::atomic<bool> armed_{false};
};

}  // namespace argus

#endif  // SRC_TPC_CRASH_CONTROLLER_H_
