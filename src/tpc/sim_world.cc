#include "src/tpc/sim_world.h"

namespace argus {

std::function<std::unique_ptr<StableMedium>()> MakeMediumFactory(MediumKind kind,
                                                                 std::uint64_t seed,
                                                                 std::uint32_t replicas) {
  switch (kind) {
    case MediumKind::kInMemory:
      return [] { return std::make_unique<InMemoryStableMedium>(); };
    case MediumKind::kDuplexed:
      return [seed] { return std::make_unique<DuplexedStableMedium>(seed); };
    case MediumKind::kReplicated:
      return [seed, replicas] {
        return std::make_unique<ReplicatedStableMedium>(replicas, seed);
      };
  }
  ARGUS_CHECK_MSG(false, "unknown medium kind");
  return {};
}

SimWorld::SimWorld(const SimWorldConfig& config) : network_(config.seed) {
  guardians_.reserve(config.guardian_count);
  for (std::uint32_t i = 0; i < config.guardian_count; ++i) {
    RecoverySystemConfig rs_config;
    rs_config.mode = config.mode;
    std::uint32_t replicas = config.medium == MediumKind::kReplicated ? config.replicas : 2;
    rs_config.medium_factory = MakeMediumFactory(config.medium, config.seed + i, replicas);
    rs_config.group_commit = config.group_commit;
    rs_config.log_shards = config.log_shards;
    rs_config.shard_salt = config.seed * 0x9e3779b97f4a7c15ull + i;
    rs_config.shard_recovery_workers = config.shard_recovery_workers;
    rs_config.replicas = replicas;
    rs_config.repair = config.repair;
    rs_config.residency.mem_budget_bytes = config.mem_budget_bytes;
    guardians_.push_back(std::make_unique<Guardian>(GuardianId{i}, rs_config, &network_));
    guardians_.back()->ConfigureTimeouts(config.timeouts);
  }
}

bool SimWorld::Step() {
  std::optional<Message> m = network_.NextDelivery();
  if (!m.has_value()) {
    return false;
  }
  guardian(m->to).HandleMessage(*m);
  return true;
}

std::size_t SimWorld::Pump(std::size_t max_steps) {
  std::size_t delivered = 0;
  while (delivered < max_steps && Step()) {
    ++delivered;
  }
  return delivered;
}

void SimWorld::Tick() {
  Pump();
  ++clock_;
  for (auto& g : guardians_) {
    if (!g->crashed()) {
      g->OnTick(clock_);
    }
  }
}

std::size_t SimWorld::PumpWithTime(std::size_t max_ticks) {
  std::size_t delivered = Pump();
  for (std::size_t round = 0; round < max_ticks; ++round) {
    bool timeout_work = false;
    for (auto& g : guardians_) {
      if (!g->crashed() && g->HasTimeoutWork()) {
        timeout_work = true;
        break;
      }
    }
    if (network_.idle() && !timeout_work) {
      break;
    }
    Tick();
    delivered += Pump();
  }
  return delivered;
}

Status SimWorld::RunAt(ActionId aid, GuardianId target,
                       const std::function<Status(Guardian&, ActionContext&)>& body) {
  Guardian& g = guardian(target);
  if (g.crashed()) {
    return Status::Unavailable("guardian " + to_string(target) + " is down");
  }
  ActionContext& ctx = g.ContextFor(aid);
  Status s = body(g, ctx);
  if (!s.ok()) {
    return s;
  }
  guardian(aid.coordinator).EnlistParticipant(aid, target);
  return Status::Ok();
}

Result<Guardian::ActionFate> SimWorld::RunTopAction(
    GuardianId coordinator, const std::function<Status(SimWorld&, ActionId)>& body) {
  Guardian& g = guardian(coordinator);
  ActionId aid = g.BeginTopAction();
  Status s = body(*this, aid);
  if (!s.ok()) {
    g.AbortTopAction(aid);
    Pump();
    return Guardian::ActionFate::kAborted;
  }
  s = g.RequestCommit(aid);
  if (!s.ok()) {
    return s;
  }
  Pump();
  return g.FateOf(aid);
}

}  // namespace argus
