#include "src/common/crc32.h"

#include <array>

namespace argus {
namespace {

constexpr std::uint32_t kPoly = 0xedb88320u;

constexpr std::array<std::uint32_t, 256> MakeTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = MakeTable();

}  // namespace

std::uint32_t Crc32Update(std::uint32_t state, std::span<const std::byte> data) {
  for (std::byte b : data) {
    state = kTable[(state ^ static_cast<std::uint8_t>(b)) & 0xff] ^ (state >> 8);
  }
  return state;
}

std::uint32_t Crc32(std::span<const std::byte> data) {
  return Crc32Finish(Crc32Update(kCrc32Init, data));
}

}  // namespace argus
