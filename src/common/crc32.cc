#include "src/common/crc32.h"

#include <array>
#include <atomic>
#include <cstddef>

namespace argus {
namespace {

constexpr std::uint32_t kPoly = 0xedb88320u;

// Slice-by-8: table[0] is the classic byte-at-a-time table; table[k][b] is the
// CRC contribution of byte b positioned k bytes before the end of an
// 8-byte-aligned chunk. The inner loop then folds 8 input bytes with 8
// independent lookups instead of 8 serially dependent ones.
constexpr std::array<std::array<std::uint32_t, 256>, 8> MakeTables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    tables[0][i] = c;
  }
  for (std::size_t t = 1; t < 8; ++t) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = tables[t - 1][i];
      tables[t][i] = tables[0][c & 0xff] ^ (c >> 8);
    }
  }
  return tables;
}

constexpr std::array<std::array<std::uint32_t, 256>, 8> kTables = MakeTables();

// Endian-safe little-endian 32-bit load; compiles to a single mov on x86.
inline std::uint32_t LoadLe32(const std::byte* p) {
  return static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[0])) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[1])) << 8) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[2])) << 16) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[3])) << 24);
}

std::atomic<Crc32Impl> g_impl{Crc32Impl::kSliceBy8};

}  // namespace

void SetCrc32Impl(Crc32Impl impl) { g_impl.store(impl, std::memory_order_relaxed); }

Crc32Impl GetCrc32Impl() { return g_impl.load(std::memory_order_relaxed); }

std::uint32_t Crc32Update(std::uint32_t state, std::span<const std::byte> data) {
  const std::byte* p = data.data();
  std::size_t n = data.size();
  if (g_impl.load(std::memory_order_relaxed) == Crc32Impl::kByteTable) {
    while (n > 0) {
      state = kTables[0][(state ^ static_cast<std::uint8_t>(*p)) & 0xff] ^ (state >> 8);
      ++p;
      --n;
    }
    return state;
  }
  while (n >= 8) {
    std::uint32_t lo = LoadLe32(p) ^ state;
    std::uint32_t hi = LoadLe32(p + 4);
    state = kTables[7][lo & 0xff] ^ kTables[6][(lo >> 8) & 0xff] ^
            kTables[5][(lo >> 16) & 0xff] ^ kTables[4][lo >> 24] ^
            kTables[3][hi & 0xff] ^ kTables[2][(hi >> 8) & 0xff] ^
            kTables[1][(hi >> 16) & 0xff] ^ kTables[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    state = kTables[0][(state ^ static_cast<std::uint8_t>(*p)) & 0xff] ^ (state >> 8);
    ++p;
    --n;
  }
  return state;
}

std::uint32_t Crc32(std::span<const std::byte> data) {
  return Crc32Finish(Crc32Update(kCrc32Init, data));
}

}  // namespace argus
