#include "src/common/crc32.h"

#include <array>
#include <atomic>
#include <cstddef>

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#define ARGUS_CRC32_X86_PCLMUL 1
#include <emmintrin.h>
#include <smmintrin.h>
#include <wmmintrin.h>
#elif defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)
#define ARGUS_CRC32_ARM 1
#include <arm_acle.h>
#endif

namespace argus {
namespace {

constexpr std::uint32_t kPoly = 0xedb88320u;

// Slice-by-8: table[0] is the classic byte-at-a-time table; table[k][b] is the
// CRC contribution of byte b positioned k bytes before the end of an
// 8-byte-aligned chunk. The inner loop then folds 8 input bytes with 8
// independent lookups instead of 8 serially dependent ones.
constexpr std::array<std::array<std::uint32_t, 256>, 8> MakeTables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    tables[0][i] = c;
  }
  for (std::size_t t = 1; t < 8; ++t) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = tables[t - 1][i];
      tables[t][i] = tables[0][c & 0xff] ^ (c >> 8);
    }
  }
  return tables;
}

constexpr std::array<std::array<std::uint32_t, 256>, 8> kTables = MakeTables();

// Endian-safe little-endian 32-bit load; compiles to a single mov on x86.
inline std::uint32_t LoadLe32(const std::byte* p) {
  return static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[0])) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[1])) << 8) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[2])) << 16) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[3])) << 24);
}

std::uint32_t UpdateSliceBy8(std::uint32_t state, const std::byte* p, std::size_t n) {
  while (n >= 8) {
    std::uint32_t lo = LoadLe32(p) ^ state;
    std::uint32_t hi = LoadLe32(p + 4);
    state = kTables[7][lo & 0xff] ^ kTables[6][(lo >> 8) & 0xff] ^
            kTables[5][(lo >> 16) & 0xff] ^ kTables[4][lo >> 24] ^
            kTables[3][hi & 0xff] ^ kTables[2][(hi >> 8) & 0xff] ^
            kTables[1][(hi >> 16) & 0xff] ^ kTables[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    state = kTables[0][(state ^ static_cast<std::uint8_t>(*p)) & 0xff] ^ (state >> 8);
    ++p;
    --n;
  }
  return state;
}

#if defined(ARGUS_CRC32_X86_PCLMUL)

// Reflected-domain carry-less-multiply folding after Gopal et al., "Fast CRC
// Computation for Generic Polynomials Using PCLMULQDQ" (and the zlib variant
// of it). Requires n >= 64 and n % 16 == 0; head/tail run through slice-by-8.
// The SSE4.2 CRC32 instruction is *not* usable here: it implements CRC-32C
// (Castagnoli), not the IEEE 802.3 polynomial this log format is pinned to.
__attribute__((target("pclmul,sse4.1"))) std::uint32_t UpdatePclmul(
    std::uint32_t state, const std::byte* buf, std::size_t len) {
  // Bit-reflected fold/reduce constants for the IEEE polynomial:
  // k1 = x^(4*128+32) mod P, k2 = x^(4*128-32) mod P (fold across 64 bytes),
  // k3 = x^(128+32) mod P, k4 = x^(128-32) mod P (fold across 16 bytes),
  // k5 = x^64 mod P, then Barrett reduction with mu and P'.
  alignas(16) static const std::uint64_t k1k2[2] = {0x0154442bd4, 0x01c6e41596};
  alignas(16) static const std::uint64_t k3k4[2] = {0x01751997d0, 0x00ccaa009e};
  alignas(16) static const std::uint64_t k5k0[2] = {0x0163cd6124, 0x0000000000};
  alignas(16) static const std::uint64_t poly[2] = {0x01db710641, 0x01f7011641};

  __m128i x0, x1, x2, x3, x4, x5, x6, x7, x8, y5, y6, y7, y8;

  x1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x00));
  x2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x10));
  x3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x20));
  x4 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x30));

  x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(static_cast<int>(state)));
  x0 = _mm_load_si128(reinterpret_cast<const __m128i*>(k1k2));

  buf += 64;
  len -= 64;

  // Fold 64 bytes at a time across four independent accumulators.
  while (len >= 64) {
    x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
    x6 = _mm_clmulepi64_si128(x2, x0, 0x00);
    x7 = _mm_clmulepi64_si128(x3, x0, 0x00);
    x8 = _mm_clmulepi64_si128(x4, x0, 0x00);

    x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
    x2 = _mm_clmulepi64_si128(x2, x0, 0x11);
    x3 = _mm_clmulepi64_si128(x3, x0, 0x11);
    x4 = _mm_clmulepi64_si128(x4, x0, 0x11);

    y5 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x00));
    y6 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x10));
    y7 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x20));
    y8 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x30));

    x1 = _mm_xor_si128(_mm_xor_si128(x1, x5), y5);
    x2 = _mm_xor_si128(_mm_xor_si128(x2, x6), y6);
    x3 = _mm_xor_si128(_mm_xor_si128(x3, x7), y7);
    x4 = _mm_xor_si128(_mm_xor_si128(x4, x8), y8);

    buf += 64;
    len -= 64;
  }

  // Fold the four accumulators down to one.
  x0 = _mm_load_si128(reinterpret_cast<const __m128i*>(k3k4));

  x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x2), x5);

  x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x3), x5);

  x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x4), x5);

  // Fold any remaining 16-byte blocks.
  while (len >= 16) {
    x2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf));
    x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
    x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, x2), x5);
    buf += 16;
    len -= 16;
  }

  // 128 -> 64 bits.
  x2 = _mm_clmulepi64_si128(x1, x0, 0x10);
  x3 = _mm_setr_epi32(~0, 0, ~0, 0);
  x1 = _mm_srli_si128(x1, 8);
  x1 = _mm_xor_si128(x1, x2);

  x0 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(k5k0));

  x2 = _mm_srli_si128(x1, 4);
  x1 = _mm_and_si128(x1, x3);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_xor_si128(x1, x2);

  // Barrett reduction 64 -> 32 bits.
  x0 = _mm_load_si128(reinterpret_cast<const __m128i*>(poly));

  x2 = _mm_and_si128(x1, x3);
  x2 = _mm_clmulepi64_si128(x2, x0, 0x10);
  x2 = _mm_and_si128(x2, x3);
  x2 = _mm_clmulepi64_si128(x2, x0, 0x00);
  x1 = _mm_xor_si128(x1, x2);

  return static_cast<std::uint32_t>(_mm_extract_epi32(x1, 1));
}

bool DetectHardwareCrc32() {
  return __builtin_cpu_supports("pclmul") && __builtin_cpu_supports("sse4.1");
}

std::uint32_t UpdateHardware(std::uint32_t state, const std::byte* p, std::size_t n) {
  // The folding kernel wants at least 64 bytes and a multiple of 16; slice-by-8
  // covers the tail. Small inputs go straight to slice-by-8.
  if (n >= 64) {
    std::size_t folded = n & ~static_cast<std::size_t>(15);
    state = UpdatePclmul(state, p, folded);
    p += folded;
    n -= folded;
  }
  return UpdateSliceBy8(state, p, n);
}

#elif defined(ARGUS_CRC32_ARM)

bool DetectHardwareCrc32() { return true; }

std::uint32_t UpdateHardware(std::uint32_t state, const std::byte* p, std::size_t n) {
  while (n >= 8) {
    std::uint64_t v;
    __builtin_memcpy(&v, p, 8);
    state = __crc32d(state, v);
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    state = __crc32b(state, static_cast<std::uint8_t>(*p));
    ++p;
    --n;
  }
  return state;
}

#else

bool DetectHardwareCrc32() { return false; }

std::uint32_t UpdateHardware(std::uint32_t state, const std::byte* p, std::size_t n) {
  return UpdateSliceBy8(state, p, n);
}

#endif

Crc32Impl DefaultImpl() {
  return Crc32HardwareAvailable() ? Crc32Impl::kHardware : Crc32Impl::kSliceBy8;
}

std::atomic<Crc32Impl>& ImplSlot() {
  static std::atomic<Crc32Impl> impl{DefaultImpl()};
  return impl;
}

}  // namespace

bool Crc32HardwareAvailable() {
  static const bool available = DetectHardwareCrc32();
  return available;
}

void SetCrc32Impl(Crc32Impl impl) { ImplSlot().store(impl, std::memory_order_relaxed); }

Crc32Impl GetCrc32Impl() { return ImplSlot().load(std::memory_order_relaxed); }

std::uint32_t Crc32Update(std::uint32_t state, std::span<const std::byte> data) {
  const std::byte* p = data.data();
  std::size_t n = data.size();
  switch (ImplSlot().load(std::memory_order_relaxed)) {
    case Crc32Impl::kByteTable:
      while (n > 0) {
        state = kTables[0][(state ^ static_cast<std::uint8_t>(*p)) & 0xff] ^ (state >> 8);
        ++p;
        --n;
      }
      return state;
    case Crc32Impl::kHardware:
      if (Crc32HardwareAvailable()) {
        return UpdateHardware(state, p, n);
      }
      return UpdateSliceBy8(state, p, n);
    case Crc32Impl::kSliceBy8:
    default:
      return UpdateSliceBy8(state, p, n);
  }
}

std::uint32_t Crc32(std::span<const std::byte> data) {
  return Crc32Finish(Crc32Update(kCrc32Init, data));
}

}  // namespace argus
