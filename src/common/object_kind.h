// The two flavors of recoverable object (§2.4): built-in atomic objects
// (versioned, read/write-locked) and mutex objects (single current version,
// seize/release possession).

#ifndef SRC_COMMON_OBJECT_KIND_H_
#define SRC_COMMON_OBJECT_KIND_H_

#include <cstdint>

namespace argus {

enum class ObjectKind : std::uint8_t {
  kAtomic = 0,
  kMutex = 1,
};

inline const char* ObjectKindName(ObjectKind kind) {
  return kind == ObjectKind::kAtomic ? "atomic" : "mutex";
}

}  // namespace argus

#endif  // SRC_COMMON_OBJECT_KIND_H_
