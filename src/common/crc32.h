// CRC-32 (IEEE 802.3 polynomial, reflected) used to detect torn or decayed
// frames in the stable log and in the duplexed page store.

#ifndef SRC_COMMON_CRC32_H_
#define SRC_COMMON_CRC32_H_

#include <cstdint>
#include <span>

namespace argus {

std::uint32_t Crc32(std::span<const std::byte> data);

// Incremental form: feed `Crc32Update` with kCrc32Init, finish with
// `Crc32Finish`.
inline constexpr std::uint32_t kCrc32Init = 0xffffffffu;
std::uint32_t Crc32Update(std::uint32_t state, std::span<const std::byte> data);
inline std::uint32_t Crc32Finish(std::uint32_t state) { return state ^ 0xffffffffu; }

// Runtime implementation selection (zlib-style dispatch). All implementations
// produce identical CRC values; kByteTable is the classic one-table
// byte-at-a-time loop, kept so benchmarks can measure the read stack as it
// behaved before slicing. kHardware uses carry-less multiply folding
// (PCLMULQDQ) on x86 or the ARMv8 CRC32 instructions where the CPU has them,
// with slice-by-8 handling the head/tail bytes; selecting it on a machine
// without the instructions silently computes via slice-by-8 instead. The
// default is kHardware when available, else kSliceBy8.
enum class Crc32Impl { kSliceBy8, kByteTable, kHardware };
void SetCrc32Impl(Crc32Impl impl);
Crc32Impl GetCrc32Impl();

// True when this CPU can run the kHardware path (checked once at startup).
bool Crc32HardwareAvailable();

}  // namespace argus

#endif  // SRC_COMMON_CRC32_H_
