// Deterministic pseudo-random source (xoshiro256**). All simulation layers
// (fault injection, network scheduling, workload generation) draw from seeded
// instances of this generator so every run is replayable from its seed.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>

#include "src/common/result.h"

namespace argus {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t NextU64();

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t NextInRange(std::uint64_t lo, std::uint64_t hi);

  // True with probability p (clamped to [0,1]).
  bool NextBool(double p);

  // Uniform double in [0, 1).
  double NextDouble();

 private:
  std::uint64_t state_[4];
};

}  // namespace argus

#endif  // SRC_COMMON_RNG_H_
