#include "src/common/rng.h"

namespace argus {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& lane : state_) {
    lane = SplitMix64(s);
  }
}

std::uint64_t Rng::NextU64() {
  std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  ARGUS_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  std::uint64_t threshold = (0 - bound) % bound;
  while (true) {
    std::uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

std::uint64_t Rng::NextInRange(std::uint64_t lo, std::uint64_t hi) {
  ARGUS_CHECK(lo <= hi);
  return lo + NextBelow(hi - lo + 1);
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

}  // namespace argus
