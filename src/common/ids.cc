#include "src/common/ids.h"

namespace argus {

std::string to_string(GuardianId id) { return "G" + std::to_string(id.value); }

std::string to_string(Uid uid) {
  if (!uid.valid()) {
    return "O<invalid>";
  }
  return "O" + std::to_string(uid.value);
}

std::string to_string(ActionId aid) {
  if (!aid.valid()) {
    return "T<invalid>";
  }
  return "T" + std::to_string(aid.sequence) + "@" + to_string(aid.coordinator);
}

std::string to_string(LogAddress addr) {
  if (addr.is_null()) {
    return "L<null>";
  }
  return "L" + std::to_string(addr.offset);
}

}  // namespace argus
