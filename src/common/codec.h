// Bounded binary encoder / decoder used for log-entry payloads and flattened
// object values. Integers are little-endian fixed width or LEB128 varints;
// every read is bounds-checked so a corrupt frame can never run off the end.

#ifndef SRC_COMMON_CODEC_H_
#define SRC_COMMON_CODEC_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/ids.h"
#include "src/common/result.h"

namespace argus {

class ByteWriter {
 public:
  ByteWriter() = default;

  void PutU8(std::uint8_t v) { buffer_.push_back(std::byte{v}); }
  void PutU32(std::uint32_t v);
  void PutU64(std::uint64_t v);
  void PutVarint(std::uint64_t v);
  void PutBytes(std::span<const std::byte> bytes);
  // Length-prefixed byte string.
  void PutBlob(std::span<const std::byte> bytes);
  void PutString(std::string_view s);

  void PutUid(Uid uid) { PutU64(uid.value); }
  void PutActionId(ActionId aid) {
    PutU32(aid.coordinator.value);
    PutU64(aid.sequence);
  }
  void PutGuardianId(GuardianId gid) { PutU32(gid.value); }
  void PutLogAddress(LogAddress addr) { PutU64(addr.offset); }

  const std::vector<std::byte>& bytes() const { return buffer_; }
  std::vector<std::byte> TakeBytes() { return std::move(buffer_); }
  std::size_t size() const { return buffer_.size(); }

 private:
  std::vector<std::byte> buffer_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  Result<std::uint8_t> ReadU8();
  Result<std::uint32_t> ReadU32();
  Result<std::uint64_t> ReadU64();
  Result<std::uint64_t> ReadVarint();
  Result<std::vector<std::byte>> ReadBlob();
  // Zero-copy form of ReadBlob: a subspan of the reader's underlying buffer.
  // Only valid while that buffer lives (recovery pins cached log blocks).
  Result<std::span<const std::byte>> ReadBlobView();
  Result<std::string> ReadString();

  Result<Uid> ReadUid();
  Result<ActionId> ReadActionId();
  Result<GuardianId> ReadGuardianId();
  Result<LogAddress> ReadLogAddress();

  std::size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return pos_ == data_.size(); }

 private:
  bool Have(std::size_t n) const { return data_.size() - pos_ >= n; }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

// Convenience: byte span over a vector.
inline std::span<const std::byte> AsSpan(const std::vector<std::byte>& v) {
  return std::span<const std::byte>(v.data(), v.size());
}

}  // namespace argus

#endif  // SRC_COMMON_CODEC_H_
