#include "src/common/codec.h"

namespace argus {

void ByteWriter::PutU32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(std::byte{static_cast<std::uint8_t>(v >> (8 * i))});
  }
}

void ByteWriter::PutU64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(std::byte{static_cast<std::uint8_t>(v >> (8 * i))});
  }
}

void ByteWriter::PutVarint(std::uint64_t v) {
  while (v >= 0x80) {
    buffer_.push_back(std::byte{static_cast<std::uint8_t>((v & 0x7f) | 0x80)});
    v >>= 7;
  }
  buffer_.push_back(std::byte{static_cast<std::uint8_t>(v)});
}

void ByteWriter::PutBytes(std::span<const std::byte> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::PutBlob(std::span<const std::byte> bytes) {
  PutVarint(bytes.size());
  PutBytes(bytes);
}

void ByteWriter::PutString(std::string_view s) {
  PutVarint(s.size());
  for (char c : s) {
    buffer_.push_back(std::byte{static_cast<std::uint8_t>(c)});
  }
}

Result<std::uint8_t> ByteReader::ReadU8() {
  if (!Have(1)) {
    return Status::Corruption("truncated u8");
  }
  return static_cast<std::uint8_t>(data_[pos_++]);
}

Result<std::uint32_t> ByteReader::ReadU32() {
  if (!Have(4)) {
    return Status::Corruption("truncated u32");
  }
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data_[pos_ + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<std::uint64_t> ByteReader::ReadU64() {
  if (!Have(8)) {
    return Status::Corruption("truncated u64");
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data_[pos_ + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<std::uint64_t> ByteReader::ReadVarint() {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (!Have(1)) {
      return Status::Corruption("truncated varint");
    }
    if (shift >= 64) {
      return Status::Corruption("varint overflow");
    }
    std::uint8_t b = static_cast<std::uint8_t>(data_[pos_++]);
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      break;
    }
    shift += 7;
  }
  return v;
}

Result<std::vector<std::byte>> ByteReader::ReadBlob() {
  Result<std::uint64_t> len = ReadVarint();
  if (!len.ok()) {
    return len.status();
  }
  if (!Have(len.value())) {
    return Status::Corruption("truncated blob");
  }
  std::vector<std::byte> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                             data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len.value()));
  pos_ += len.value();
  return out;
}

Result<std::span<const std::byte>> ByteReader::ReadBlobView() {
  Result<std::uint64_t> len = ReadVarint();
  if (!len.ok()) {
    return len.status();
  }
  if (!Have(len.value())) {
    return Status::Corruption("truncated blob");
  }
  std::span<const std::byte> out = data_.subspan(pos_, len.value());
  pos_ += len.value();
  return out;
}

Result<std::string> ByteReader::ReadString() {
  Result<std::uint64_t> len = ReadVarint();
  if (!len.ok()) {
    return len.status();
  }
  if (!Have(len.value())) {
    return Status::Corruption("truncated string");
  }
  std::string out;
  out.reserve(len.value());
  for (std::uint64_t i = 0; i < len.value(); ++i) {
    out.push_back(static_cast<char>(static_cast<std::uint8_t>(data_[pos_ + i])));
  }
  pos_ += len.value();
  return out;
}

Result<Uid> ByteReader::ReadUid() {
  Result<std::uint64_t> v = ReadU64();
  if (!v.ok()) {
    return v.status();
  }
  return Uid{v.value()};
}

Result<ActionId> ByteReader::ReadActionId() {
  Result<std::uint32_t> g = ReadU32();
  if (!g.ok()) {
    return g.status();
  }
  Result<std::uint64_t> seq = ReadU64();
  if (!seq.ok()) {
    return seq.status();
  }
  return ActionId{GuardianId{g.value()}, seq.value()};
}

Result<GuardianId> ByteReader::ReadGuardianId() {
  Result<std::uint32_t> g = ReadU32();
  if (!g.ok()) {
    return g.status();
  }
  return GuardianId{g.value()};
}

Result<LogAddress> ByteReader::ReadLogAddress() {
  Result<std::uint64_t> v = ReadU64();
  if (!v.ok()) {
    return v.status();
  }
  return LogAddress{v.value()};
}

}  // namespace argus
