#include "src/common/result.h"

namespace argus {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kCorruption:
      return "CORRUPTION";
    case ErrorCode::kIoError:
      return "IO_ERROR";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kUnavailable:
      return "UNAVAILABLE";
    case ErrorCode::kCrashed:
      return "CRASHED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = ErrorCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

void CheckFailed(const char* file, int line, const char* expr, const char* msg) {
  std::fprintf(stderr, "ARGUS_CHECK failed at %s:%d: %s (%s)\n", file, line, expr, msg);
  std::abort();
}

}  // namespace argus
