#include "src/common/result.h"

#include <atomic>

namespace argus {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kCorruption:
      return "CORRUPTION";
    case ErrorCode::kIoError:
      return "IO_ERROR";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kUnavailable:
      return "UNAVAILABLE";
    case ErrorCode::kCrashed:
      return "CRASHED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = ErrorCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

namespace {
std::atomic<CheckFailureHook> g_check_failure_hook{nullptr};
}  // namespace

void SetCheckFailureHook(CheckFailureHook hook) {
  g_check_failure_hook.store(hook, std::memory_order_release);
}

void CheckFailed(const char* file, int line, const char* expr, const char* msg) {
  std::fprintf(stderr, "ARGUS_CHECK failed at %s:%d: %s (%s)\n", file, line, expr, msg);
  if (CheckFailureHook hook = g_check_failure_hook.load(std::memory_order_acquire)) {
    hook();
  }
  std::abort();
}

}  // namespace argus
