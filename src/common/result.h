// Minimal status / result types for storage-layer errors.
//
// Storage operations can fail for environmental reasons (simulated media
// faults, corrupt frames, truncated logs); those paths return Status/Result.
// Violations of internal invariants are programming errors and use ARGUS_CHECK.

#ifndef SRC_COMMON_RESULT_H_
#define SRC_COMMON_RESULT_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace argus {

enum class ErrorCode {
  kOk = 0,
  kNotFound,        // no such entry / address out of range
  kCorruption,      // checksum mismatch or malformed frame
  kIoError,         // the simulated or real device refused the operation
  kInvalidArgument, // caller misuse detectable at the storage boundary
  kUnavailable,     // device offline / crashed mid-operation
  kCrashed,         // the guardian crashed while the caller was waiting; the
                    // awaited effect is in doubt (it may or may not be durable)
};

const char* ErrorCodeName(ErrorCode code);

class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string msg) { return Status(ErrorCode::kNotFound, std::move(msg)); }
  static Status Corruption(std::string msg) {
    return Status(ErrorCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) { return Status(ErrorCode::kIoError, std::move(msg)); }
  static Status InvalidArgument(std::string msg) {
    return Status(ErrorCode::kInvalidArgument, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(ErrorCode::kUnavailable, std::move(msg));
  }
  static Status Crashed(std::string msg) { return Status(ErrorCode::kCrashed, std::move(msg)); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }
  std::string ToString() const;

 private:
  ErrorCode code_;
  std::string message_;
};

// A value-or-status holder. `value()` may only be called when `ok()`.
template <typename T>
class Result {
 public:
  Result(T value) : state_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : state_(std::move(status)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(state_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) {
      return kOk;
    }
    return std::get<Status>(state_);
  }

  T& value() & { return std::get<T>(state_); }
  const T& value() const& { return std::get<T>(state_); }
  T&& value() && { return std::get<T>(std::move(state_)); }

  T value_or(T fallback) const {
    if (ok()) {
      return value();
    }
    return fallback;
  }

 private:
  std::variant<T, Status> state_;
};

[[noreturn]] void CheckFailed(const char* file, int line, const char* expr, const char* msg);

// Runs just before CheckFailed aborts — the observability layer installs a
// flight-recorder dump here so fatal invariant failures come with event
// history. The hook must not throw and must tolerate being called from any
// thread. Last installer wins.
using CheckFailureHook = void (*)();
void SetCheckFailureHook(CheckFailureHook hook);

}  // namespace argus

// Invariant check: aborts with a message on violation. Always on — recovery
// code must never continue past a broken invariant, that is how logs get eaten.
#define ARGUS_CHECK(expr)                                               \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::argus::CheckFailed(__FILE__, __LINE__, #expr, "check failed"); \
    }                                                                   \
  } while (0)

#define ARGUS_CHECK_MSG(expr, msg)                           \
  do {                                                       \
    if (!(expr)) {                                           \
      ::argus::CheckFailed(__FILE__, __LINE__, #expr, msg); \
    }                                                        \
  } while (0)

#endif  // SRC_COMMON_RESULT_H_
