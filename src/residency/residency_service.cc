#include "src/residency/residency_service.h"

namespace argus {

ResidencyService::ResidencyService(ResidencyManager* manager, ExclusiveSection exclusive,
                                   ResidencyServiceConfig config)
    : manager_(manager), exclusive_(std::move(exclusive)), config_(config) {
  ARGUS_CHECK(manager_ != nullptr && exclusive_ != nullptr);
}

ResidencyService::~ResidencyService() { Stop(); }

void ResidencyService::Start() {
  std::lock_guard<std::mutex> l(mu_);
  ARGUS_CHECK_MSG(!started_, "residency service started twice");
  started_ = true;
  stop_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void ResidencyService::Stop() {
  {
    std::lock_guard<std::mutex> l(mu_);
    if (!started_) {
      return;
    }
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> l(mu_);
  started_ = false;
}

std::uint64_t ResidencyService::evictions() const {
  std::lock_guard<std::mutex> l(mu_);
  return evictions_;
}

void ResidencyService::Loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> l(mu_);
      cv_.wait_for(l, config_.poll_interval, [this] { return stop_; });
      if (stop_) {
        return;
      }
    }
    std::uint64_t evicted = 0;
    exclusive_([&] { evicted = manager_->RunEvictionPass(); });
    if (evicted > 0) {
      std::lock_guard<std::mutex> l(mu_);
      evictions_ += evicted;
    }
  }
}

}  // namespace argus
