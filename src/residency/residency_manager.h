// Beyond-RAM object store: the residency subsystem.
//
// The paper keeps every guardian object in the volatile heap and uses the
// stable log only for recovery. The ResidencyManager inverts that: RAM is a
// cache over the log. It tracks approximate bytes resident in the
// VolatileHeap against a configurable budget, runs second-chance (clock)
// eviction over committed base versions when the budget's high watermark is
// crossed, and demotes a cold object by replacing its in-heap Value with a
// compact stub <uid, log-address, size> — the address the writer/recovery
// already surfaced on the object (RecoverableObject::stable_address). A touch
// of an evicted object faults it back through the batched validated read path
// (StableLog::ReadMany into the ReadCache), with a best-effort Prefetch of
// log-adjacent stubs.
//
// Eligibility. Only quiet durable state is ever demoted: the object must be
// committed (no tentative version), unlocked/unseized, unpinned (no in-flight
// action touched it), fully restored, and its stable address must point below
// the owning shard's durable size — forces land on frame boundaries, so an
// address below durable_size() names a wholly durable frame the ReadCache can
// serve. The root object (stable variables) is never demoted.
//
// Thread-safety: the manager is externally serialized — every call
// (FaultIn from a bound ActionContext, RunEvictionPass from the
// ResidencyService's exclusive section, MaterializeAll from checkpoint
// capture) runs under the same per-guardian exclusion the caller already
// holds for heap access. resident_bytes() alone is safe to read concurrently
// (it is an atomic; live dashboards poll it).

#ifndef SRC_RESIDENCY_RESIDENCY_MANAGER_H_
#define SRC_RESIDENCY_RESIDENCY_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "src/log/stable_log.h"
#include "src/object/heap.h"
#include "src/object/residency_hooks.h"
#include "src/stable/shard_map.h"

namespace argus {

struct ResidencyConfig {
  // 0 disables residency entirely: nothing is ever evicted (the paper's
  // all-resident behavior).
  std::uint64_t mem_budget_bytes = 0;
  // An eviction pass starts demoting when resident bytes exceed
  // high_watermark * budget and stops once they drop below low_watermark *
  // budget (hysteresis keeps passes from thrashing at the boundary).
  double high_watermark = 0.90;
  double low_watermark = 0.70;
  // Cap on demotions per pass; 0 = until the low watermark is reached.
  std::uint64_t max_evictions_per_pass = 0;
  // On a fault, prefetch up to this many log-adjacent evicted stubs per
  // shard into the ReadCache (best effort; 0 disables).
  std::uint32_t prefetch_neighbors = 2;
};

struct ResidencyStats {
  std::uint64_t resident_bytes = 0;
  std::uint64_t evictions = 0;
  std::uint64_t faults = 0;         // objects rematerialized
  std::uint64_t fault_batches = 0;  // per-shard ReadMany submissions
  std::uint64_t fault_reads = 0;    // frames fetched by those submissions
  std::uint64_t pinned_skips = 0;   // clock visits refused by pin/lock state
  std::uint64_t eviction_passes = 0;
  std::uint64_t prefetch_ranges = 0;
};

// Decodes the payload of a frame an evicted object's stub points at: the
// flattened value inside a DataEntry, BaseCommittedEntry, or
// PreparedDataEntry (the three entry kinds whose address ever lands in a
// stable-address slot). References come back as UidRef placeholders.
Result<Value> DecodeStubPayload(const LogEntry& entry, Uid expected);

class ResidencyManager : public ResidencyPager {
 public:
  // `logs[shard]` must be the guardian's shard logs in router order; `router`
  // may be null for single-shard guardians. Both must outlive the manager
  // (RebindLog re-points a shard after a checkpoint swap).
  ResidencyManager(VolatileHeap* heap, std::vector<StableLog*> logs,
                   const ShardRouter* router, ResidencyConfig config);

  // ---- ResidencyPager ----
  Status FaultIn(RecoverableObject* object) override;
  Status FaultInBatch(std::span<RecoverableObject* const> objects) override;

  // One clock pass: recomputes resident bytes from the heap, and if the high
  // watermark is crossed, sweeps the uid-ordered ring demoting eligible
  // objects (second chance: a set reference bit buys one more lap) until the
  // low watermark or the per-pass cap. Returns the number of evictions.
  std::uint64_t RunEvictionPass();

  // Rematerializes every evicted object (checkpoint capture and swap need the
  // whole heap resident; so does a reconciler about to read base versions).
  Status MaterializeAll();

  // A checkpoint swap retired the old log; the caller has already
  // materialized everything and wiped the per-object addresses.
  void RebindLog(std::uint32_t shard, StableLog* log);

  std::uint64_t resident_bytes() const {
    return resident_bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t high_watermark_bytes() const {
    return static_cast<std::uint64_t>(static_cast<double>(config_.mem_budget_bytes) *
                                      config_.high_watermark);
  }
  std::uint64_t low_watermark_bytes() const {
    return static_cast<std::uint64_t>(static_cast<double>(config_.mem_budget_bytes) *
                                      config_.low_watermark);
  }
  bool enabled() const { return config_.mem_budget_bytes > 0; }
  const ResidencyConfig& config() const { return config_; }
  const ResidencyStats& stats() const { return stats_; }

 private:
  std::uint32_t ShardOfUid(Uid uid) const;
  bool EvictionEligible(const RecoverableObject& obj,
                        const std::vector<std::uint64_t>& durable_sizes) const;
  // Sums ApproxBytes over every resident version in the heap and refreshes
  // the atomic + gauge.
  std::uint64_t RecomputeResidentBytes();
  // Best-effort ReadCache prefetch of up to prefetch_neighbors evicted stubs
  // on each side of the faulted batch's offset envelope on `shard`.
  void PrefetchNeighbors(std::uint32_t shard, std::uint64_t lo_offset,
                         std::uint64_t hi_offset, std::uint64_t durable_size);

  VolatileHeap* heap_;
  std::vector<StableLog*> logs_;
  const ShardRouter* router_;
  ResidencyConfig config_;

  // Clock hand: the uid the next sweep resumes at (ring is the uid-sorted
  // object list, rebuilt per pass so creations/deletions need no upkeep).
  Uid clock_hand_ = Uid::Root();
  // Per-shard offset → uid of currently-evicted stubs, for neighbor
  // prefetch. Entries whose object was rematerialized behind the manager's
  // back (LogWriter::EnsureResident) are dropped lazily on lookup.
  std::vector<std::map<std::uint64_t, Uid>> evicted_index_;

  std::atomic<std::uint64_t> resident_bytes_{0};
  ResidencyStats stats_;
};

}  // namespace argus

#endif  // SRC_RESIDENCY_RESIDENCY_MANAGER_H_
