#include "src/residency/residency_manager.h"

#include <algorithm>
#include <chrono>

#include "src/object/flatten.h"
#include "src/obs/metrics.h"

namespace argus {
namespace {

// Frames are block-cached; a short range is enough to pull a neighbor stub's
// leading blocks in with the demand batch.
constexpr std::uint64_t kPrefetchSpan = 512;

struct ResidencyObs {
  obs::Gauge* resident_bytes;
  obs::Counter* evictions;
  obs::Counter* faults;
  obs::Counter* fault_batches;
  obs::Counter* fault_reads;
  obs::Counter* pinned_skips;
  obs::Counter* eviction_passes;
  obs::Counter* prefetch_ranges;
  obs::Histogram* fault_ns;

  static const ResidencyObs& Get() {
    static const ResidencyObs m{
        obs::GetGauge("residency.resident_bytes"),
        obs::GetCounter("residency.evictions"),
        obs::GetCounter("residency.faults"),
        obs::GetCounter("residency.fault_batches"),
        obs::GetCounter("residency.fault_reads"),
        obs::GetCounter("residency.pinned_skips"),
        obs::GetCounter("residency.eviction_passes"),
        obs::GetCounter("residency.prefetch_ranges"),
        obs::GetHistogram("residency.fault_ns"),
    };
    return m;
  }
};

}  // namespace

Result<Value> DecodeStubPayload(const LogEntry& entry, Uid expected) {
  if (const auto* data = std::get_if<DataEntry>(&entry)) {
    // Hybrid data entries are anonymous; simple-log ones carry the uid.
    if (data->uid != Uid::Invalid() && data->uid != expected) {
      return Status::Corruption("stub frame names a different object");
    }
    return UnflattenValue(data->value);
  }
  if (const auto* bc = std::get_if<BaseCommittedEntry>(&entry)) {
    if (bc->uid != expected) {
      return Status::Corruption("stub frame names a different object");
    }
    return UnflattenValue(bc->value);
  }
  if (const auto* pd = std::get_if<PreparedDataEntry>(&entry)) {
    if (pd->uid != expected) {
      return Status::Corruption("stub frame names a different object");
    }
    return UnflattenValue(pd->value);
  }
  return Status::Corruption("stub address points at a non-data entry");
}

ResidencyManager::ResidencyManager(VolatileHeap* heap, std::vector<StableLog*> logs,
                                   const ShardRouter* router, ResidencyConfig config)
    : heap_(heap), logs_(std::move(logs)), router_(router), config_(config) {
  ARGUS_CHECK(heap_ != nullptr && !logs_.empty());
  for (StableLog* log : logs_) {
    ARGUS_CHECK(log != nullptr);
  }
  evicted_index_.resize(logs_.size());
}

std::uint32_t ResidencyManager::ShardOfUid(Uid uid) const {
  if (router_ == nullptr || logs_.size() == 1) {
    return 0;
  }
  return router_->ShardOf(uid);
}

std::uint64_t ResidencyManager::RecomputeResidentBytes() {
  std::uint64_t total = 0;
  for (const auto& [uid, obj] : *heap_) {
    if (!obj->evicted()) {
      total += obj->base_version().ApproxBytes();
    }
    if (obj->is_atomic() && obj->has_current()) {
      total += obj->current_version().ApproxBytes();
    }
  }
  resident_bytes_.store(total, std::memory_order_relaxed);
  stats_.resident_bytes = total;
  ResidencyObs::Get().resident_bytes->Set(static_cast<double>(total));
  return total;
}

bool ResidencyManager::EvictionEligible(const RecoverableObject& obj,
                                        const std::vector<std::uint64_t>& durable_sizes) const {
  if (obj.uid() == Uid::Root() || obj.evicted() || !obj.base_restored()) {
    return false;
  }
  if (obj.pin_count() > 0) {
    return false;
  }
  if (obj.is_atomic() && (obj.locked() || obj.has_current())) {
    return false;
  }
  if (obj.is_mutex() && obj.seized()) {
    return false;
  }
  LogAddress addr = obj.stable_address();
  if (addr.is_null()) {
    return false;
  }
  // Forces land on frame boundaries, so an address below the durable size
  // names a wholly durable frame — readable through the cache after a crash.
  return addr.offset < durable_sizes[ShardOfUid(obj.uid())];
}

std::uint64_t ResidencyManager::RunEvictionPass() {
  if (!enabled()) {
    return 0;
  }
  const ResidencyObs& o = ResidencyObs::Get();
  std::uint64_t resident = RecomputeResidentBytes();
  ++stats_.eviction_passes;
  o.eviction_passes->Increment();
  if (resident <= high_watermark_bytes()) {
    return 0;
  }

  std::vector<std::uint64_t> durable_sizes;
  durable_sizes.reserve(logs_.size());
  for (StableLog* log : logs_) {
    durable_sizes.push_back(log->durable_size());
  }

  // The ring is the uid-sorted object list, rebuilt per pass — creations and
  // recoveries need no incremental upkeep, and the order is deterministic.
  std::vector<Uid> ring;
  ring.reserve(heap_->object_count());
  for (const auto& [uid, obj] : *heap_) {
    if (uid != Uid::Root()) {
      ring.push_back(uid);
    }
  }
  std::sort(ring.begin(), ring.end());
  if (ring.empty()) {
    return 0;
  }

  std::size_t pos =
      static_cast<std::size_t>(std::lower_bound(ring.begin(), ring.end(), clock_hand_) -
                               ring.begin()) %
      ring.size();
  const std::uint64_t target = low_watermark_bytes();
  const std::size_t max_steps = ring.size() * 2;  // second chance: at most two laps
  std::uint64_t evicted_count = 0;

  for (std::size_t step = 0; step < max_steps && resident > target; ++step) {
    RecoverableObject* obj = heap_->Get(ring[pos]);
    pos = (pos + 1) % ring.size();
    if (obj == nullptr || obj->evicted()) {
      continue;
    }
    if (!EvictionEligible(*obj, durable_sizes)) {
      if (obj->pin_count() > 0 || (obj->is_atomic() && obj->locked()) ||
          (obj->is_mutex() && obj->seized())) {
        ++stats_.pinned_skips;
        o.pinned_skips->Increment();
      }
      continue;
    }
    if (obj->TestAndClearReferenced()) {
      continue;  // second chance: survives this lap
    }

    const std::uint64_t bytes = obj->base_version().ApproxBytes();
    std::vector<RecoverableObject*> refs;
    CollectRefs(obj->base_version(), refs);
    std::vector<Uid> ref_uids;
    ref_uids.reserve(refs.size());
    for (RecoverableObject* ref : refs) {
      ref_uids.push_back(ref->uid());
    }
    const LogAddress addr = obj->stable_address();
    obj->Evict(bytes, std::move(ref_uids));
    evicted_index_[ShardOfUid(obj->uid())][addr.offset] = obj->uid();
    resident -= std::min(resident, bytes);
    ++evicted_count;
    ++stats_.evictions;
    o.evictions->Increment();
    if (config_.max_evictions_per_pass != 0 &&
        evicted_count >= config_.max_evictions_per_pass) {
      break;
    }
  }

  clock_hand_ = ring[pos];
  resident_bytes_.store(resident, std::memory_order_relaxed);
  stats_.resident_bytes = resident;
  o.resident_bytes->Set(static_cast<double>(resident));
  return evicted_count;
}

void ResidencyManager::PrefetchNeighbors(std::uint32_t shard, std::uint64_t lo_offset,
                                         std::uint64_t hi_offset, std::uint64_t durable_size) {
  std::map<std::uint64_t, Uid>& index = evicted_index_[shard];
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
  auto live_stub = [&](std::map<std::uint64_t, Uid>::iterator it) {
    RecoverableObject* neighbor = heap_->Get(it->second);
    return neighbor != nullptr && neighbor->evicted() &&
           neighbor->stable_address().offset == it->first;
  };
  // Chain-adjacent stubs sit on both sides of the faulted frames: scan up to
  // prefetch_neighbors in each direction from the batch envelope. Stale
  // entries (rematerialized behind our back, e.g. LogWriter::EnsureResident)
  // are dropped as they are met.
  std::size_t taken = 0;
  auto it = index.upper_bound(hi_offset);
  while (it != index.end() && taken < config_.prefetch_neighbors) {
    if (!live_stub(it)) {
      it = index.erase(it);
      continue;
    }
    ranges.emplace_back(it->first, kPrefetchSpan);
    ++taken;
    ++it;
  }
  taken = 0;
  it = index.lower_bound(lo_offset);
  while (it != index.begin() && taken < config_.prefetch_neighbors) {
    --it;
    if (!live_stub(it)) {
      // erase returns the element after the erased one; the next --it steps
      // onto the element below it, continuing the backward walk.
      it = index.erase(it);
      continue;
    }
    ranges.emplace_back(it->first, kPrefetchSpan);
    ++taken;
  }
  if (!ranges.empty()) {
    logs_[shard]->read_cache().Prefetch(ranges, durable_size);
    stats_.prefetch_ranges += ranges.size();
    ResidencyObs::Get().prefetch_ranges->Add(ranges.size());
  }
}

Status ResidencyManager::FaultIn(RecoverableObject* object) {
  RecoverableObject* one[] = {object};
  return FaultInBatch(one);
}

Status ResidencyManager::FaultInBatch(std::span<RecoverableObject* const> objects) {
  std::vector<RecoverableObject*> targets;
  for (RecoverableObject* obj : objects) {
    if (obj != nullptr && obj->evicted() &&
        std::find(targets.begin(), targets.end(), obj) == targets.end()) {
      targets.push_back(obj);
    }
  }
  if (targets.empty()) {
    return Status::Ok();
  }
  const ResidencyObs& o = ResidencyObs::Get();
  const auto start = std::chrono::steady_clock::now();

  // Group addresses by owning shard; one ReadMany (one scatter submission on
  // a batched medium) rematerializes a shard's whole group.
  std::vector<std::vector<LogAddress>> shard_addresses(logs_.size());
  std::vector<std::vector<RecoverableObject*>> shard_targets(logs_.size());
  for (RecoverableObject* obj : targets) {
    const LogAddress addr = obj->stable_address();
    ARGUS_CHECK_MSG(!addr.is_null(), "evicted object lost its stable address");
    const std::uint32_t shard = ShardOfUid(obj->uid());
    shard_addresses[shard].push_back(addr);
    shard_targets[shard].push_back(obj);
  }

  for (std::uint32_t shard = 0; shard < logs_.size(); ++shard) {
    const std::vector<LogAddress>& addrs = shard_addresses[shard];
    if (addrs.empty()) {
      continue;
    }
    if (config_.prefetch_neighbors > 0) {
      std::uint64_t lowest = addrs.front().offset;
      std::uint64_t highest = addrs.front().offset;
      for (LogAddress addr : addrs) {
        lowest = std::min(lowest, addr.offset);
        highest = std::max(highest, addr.offset);
      }
      PrefetchNeighbors(shard, lowest, highest, logs_[shard]->durable_size());
    }
    std::vector<Result<LogEntry>> entries = logs_[shard]->ReadMany(addrs);
    ++stats_.fault_batches;
    o.fault_batches->Increment();
    stats_.fault_reads += addrs.size();
    o.fault_reads->Add(addrs.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
      RecoverableObject* obj = shard_targets[shard][i];
      if (!entries[i].ok()) {
        return entries[i].status();
      }
      Result<Value> decoded = DecodeStubPayload(entries[i].value(), obj->uid());
      if (!decoded.ok()) {
        return decoded.status();
      }
      Value v = std::move(decoded.value());
      Status resolved = ResolveUidRefs(v, [this](Uid uid) { return heap_->Get(uid); });
      if (!resolved.ok()) {
        return resolved;
      }
      const std::uint64_t bytes = v.ApproxBytes();
      evicted_index_[shard].erase(obj->stable_address().offset);
      obj->Materialize(std::move(v));
      resident_bytes_.fetch_add(bytes, std::memory_order_relaxed);
      ++stats_.faults;
      o.faults->Increment();
    }
  }

  stats_.resident_bytes = resident_bytes_.load(std::memory_order_relaxed);
  o.resident_bytes->Set(static_cast<double>(stats_.resident_bytes));
  o.fault_ns->Record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           start)
          .count()));
  return Status::Ok();
}

Status ResidencyManager::MaterializeAll() {
  std::vector<RecoverableObject*> evicted;
  for (const auto& [uid, obj] : *heap_) {
    if (obj->evicted()) {
      evicted.push_back(obj.get());
    }
  }
  if (evicted.empty()) {
    return Status::Ok();
  }
  return FaultInBatch(evicted);
}

void ResidencyManager::RebindLog(std::uint32_t shard, StableLog* log) {
  ARGUS_CHECK(shard < logs_.size() && log != nullptr);
  // The swap protocol materialized everything before retiring the old log,
  // so no stub can still point into it.
  ARGUS_CHECK_MSG(evicted_index_[shard].empty(), "rebinding a shard with live stubs");
  logs_[shard] = log;
}

}  // namespace argus
