// Background eviction, modeled on CheckpointService / ReplicaRepairService:
// a thread that periodically runs one clock pass over the guardian's heap
// inside the caller-supplied exclusive section (the same per-guardian lock
// the action path holds), so memory pressure is shed as a maintenance
// activity the commit path only sees as a bounded pause.

#ifndef SRC_RESIDENCY_RESIDENCY_SERVICE_H_
#define SRC_RESIDENCY_RESIDENCY_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "src/residency/residency_manager.h"

namespace argus {

struct ResidencyServiceConfig {
  // How often the background thread checks the watermark.
  std::chrono::milliseconds poll_interval{1};
};

class ResidencyService {
 public:
  // Runs `fn` with the guardian's action path excluded (see
  // OnlineCheckpointer::ExclusiveSection — same contract).
  using ExclusiveSection = std::function<void(const std::function<void()>&)>;

  // `manager` must outlive the service.
  ResidencyService(ResidencyManager* manager, ExclusiveSection exclusive,
                   ResidencyServiceConfig config);
  ~ResidencyService();

  ResidencyService(const ResidencyService&) = delete;
  ResidencyService& operator=(const ResidencyService&) = delete;

  void Start();
  void Stop();

  // Total objects demoted by this service's passes.
  std::uint64_t evictions() const;

 private:
  void Loop();

  ResidencyManager* manager_;
  ExclusiveSection exclusive_;
  ResidencyServiceConfig config_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool started_ = false;
  std::uint64_t evictions_ = 0;
  std::thread thread_;
};

}  // namespace argus

#endif  // SRC_RESIDENCY_RESIDENCY_SERVICE_H_
