// The incremental copying (flattening) algorithm of §2.4.3 / §3.3.3.1.
//
// Flatten linearizes one object version: regular sub-objects are copied
// inline; references to recoverable objects are replaced with their uids.
// The traversal also reports every recoverable object it touched, which is
// how the writing algorithm discovers newly accessible objects (§3.3.3.2).
//
// Unflatten reverses the copy, materializing uid placeholders (UidRef) for
// references; ResolveUidRefs is the final recovery pass (§3.4.3) that patches
// placeholders into real pointers.

#ifndef SRC_OBJECT_FLATTEN_H_
#define SRC_OBJECT_FLATTEN_H_

#include <functional>
#include <vector>

#include "src/common/codec.h"
#include "src/object/value.h"

namespace argus {

// Flattens `value`. Every recoverable object referenced (directly or through
// regular sub-objects) is appended to `referenced` if non-null.
std::vector<std::byte> FlattenValue(const Value& value,
                                    std::vector<RecoverableObject*>* referenced);

// Reconstructs a value; references come back as UidRef placeholders.
Result<Value> UnflattenValue(std::span<const std::byte> bytes);

// Replaces every UidRef in `value` using `resolve`. If `resolve` returns
// nullptr for some uid the pass fails with kCorruption — the log referenced
// an object it never wrote.
Status ResolveUidRefs(Value& value,
                      const std::function<RecoverableObject*(Uid)>& resolve);

// Collects the recoverable objects directly referenced by `value` (without
// flattening). Used by stable-state traversals (AS rebuild, snapshot).
void CollectRefs(const Value& value, std::vector<RecoverableObject*>& out);

}  // namespace argus

#endif  // SRC_OBJECT_FLATTEN_H_
