// Nested subactions (§2.1: "an action called a top-level action starts at
// one guardian and can spread to other guardians, spawning subactions by
// means of handler calls").
//
// The recovery system never sees subactions: all subaction modifications are
// made to volatile copies, and only the TOP-LEVEL action's effects reach
// stable storage at two-phase commit (§2.2). A subaction therefore runs
// inside its top action's lock family and keeps a volatile undo log:
//
//  - commit: the subaction's writes simply remain in the top action's
//    tentative versions and MOS (they will commit or abort with the top);
//  - abort: the subaction's atomic writes are rolled back to the tentative
//    values that were current when it began, objects it newly created are
//    forgotten from the MOS, and — per the mutex semantics of §2.4.2 —
//    its mutex mutations are NOT undone.
//
// Subactions nest; each level keeps its own undo frame. Commit is RELATIVE
// (as in Argus): a committed inner subaction's undo records are propagated to
// the enclosing open scope, so aborting the encloser still unwinds them; only
// when the outermost scope commits do the changes become plain top-action
// tentative state.

#ifndef SRC_OBJECT_SUBACTION_H_
#define SRC_OBJECT_SUBACTION_H_

#include <optional>

#include "src/object/action_context.h"

namespace argus {

class SubactionScope {
 public:
  // Opens a subaction of the top action whose context is `parent`. For a
  // nested subaction, pass the enclosing scope so a relative commit hands its
  // undo frame upward.
  SubactionScope(ActionContext* parent, VolatileHeap* heap,
                 SubactionScope* enclosing = nullptr)
      : parent_(parent), heap_(heap), enclosing_(enclosing) {
    ARGUS_CHECK(parent != nullptr && heap != nullptr);
    if (enclosing != nullptr) {
      ARGUS_CHECK_MSG(enclosing->open_, "enclosing subaction already finished");
    }
  }

  ~SubactionScope() {
    // An un-finished scope aborts — mirrors Argus: a handler call whose
    // reply is lost aborts its subaction.
    if (open_) {
      Abort();
    }
  }

  SubactionScope(const SubactionScope&) = delete;
  SubactionScope& operator=(const SubactionScope&) = delete;

  // ---- The action operations, with undo capture ----

  Result<Value> ReadObject(RecoverableObject* obj) { return parent_->ReadObject(obj); }

  Status WriteObject(RecoverableObject* obj, Value v);
  Status UpdateObject(RecoverableObject* obj, const std::function<void(Value&)>& edit);
  Status MutateMutex(RecoverableObject* obj, const std::function<void(Value&)>& edit);
  RecoverableObject* CreateAtomic(Value initial);

  // Commits relative to the encloser: effects remain, but the undo frame is
  // handed to the enclosing open scope (if any), which can still unwind them.
  void Commit();

  // Rolls atomic writes back to the versions seen at Begin time; forgets
  // created objects from the MOS. Mutex mutations stand (§2.4.2).
  void Abort();

  bool open() const { return open_; }

 private:
  struct UndoRecord {
    RecoverableObject* object;
    // The tentative value before this subaction's first write; nullopt means
    // the object was not in the parent's MOS before (so an abort removes it
    // from the MOS again — but the write lock stays with the family).
    std::optional<Value> previous_tentative;
    bool was_in_mos;
  };

  void CaptureUndo(RecoverableObject* obj);

  ActionContext* parent_;
  VolatileHeap* heap_;
  SubactionScope* enclosing_;
  bool open_ = true;
  std::vector<UndoRecord> undo_;           // newest last
  std::vector<RecoverableObject*> created_;
};

}  // namespace argus

#endif  // SRC_OBJECT_SUBACTION_H_
