#include "src/object/heap.h"

namespace argus {

VolatileHeap::VolatileHeap() {
  auto root = std::make_unique<RecoverableObject>(ObjectKind::kAtomic, Uid::Root(),
                                                  Value::OfRecord({}));
  root_ = root.get();
  objects_.emplace(Uid::Root(), std::move(root));
}

RecoverableObject* VolatileHeap::CreateAtomic(ActionId creator, Value initial) {
  Uid uid{next_uid_++};
  auto obj = std::make_unique<RecoverableObject>(ObjectKind::kAtomic, uid, std::move(initial));
  RecoverableObject* ptr = obj.get();
  objects_.emplace(uid, std::move(obj));
  Status s = ptr->AcquireReadLock(creator);
  ARGUS_CHECK_MSG(s.ok(), "fresh object cannot be lock-conflicted");
  return ptr;
}

RecoverableObject* VolatileHeap::CreateMutex(Value initial) {
  Uid uid{next_uid_++};
  auto obj = std::make_unique<RecoverableObject>(ObjectKind::kMutex, uid, std::move(initial));
  RecoverableObject* ptr = obj.get();
  objects_.emplace(uid, std::move(obj));
  return ptr;
}

RecoverableObject* VolatileHeap::Get(Uid uid) const {
  auto it = objects_.find(uid);
  if (it == objects_.end()) {
    return nullptr;
  }
  return it->second.get();
}

RecoverableObject* VolatileHeap::InstallRecovered(Uid uid, ObjectKind kind) {
  ARGUS_CHECK_MSG(objects_.find(uid) == objects_.end(), "recovered uid already present");
  auto obj = std::make_unique<RecoverableObject>(kind, uid, Value::Nil());
  obj->set_base_restored(false);
  RecoverableObject* ptr = obj.get();
  objects_.emplace(uid, std::move(obj));
  if (uid == Uid::Root()) {
    root_ = ptr;
  }
  if (uid.value >= next_uid_) {
    next_uid_ = uid.value + 1;
  }
  return ptr;
}

std::vector<RecoverableObject*> VolatileHeap::TraverseStableState() const {
  std::vector<RecoverableObject*> order;
  std::unordered_set<const RecoverableObject*> seen;
  std::vector<RecoverableObject*> stack{root_};
  seen.insert(root_);
  while (!stack.empty()) {
    RecoverableObject* obj = stack.back();
    stack.pop_back();
    order.push_back(obj);
    std::vector<RecoverableObject*> refs;
    if (obj->evicted()) {
      // The payload is out on the log, but the stub remembers the uids it
      // referenced — the reachability walk does not rematerialize anything.
      for (Uid ref_uid : obj->stub_refs()) {
        if (RecoverableObject* target = Get(ref_uid); target != nullptr) {
          refs.push_back(target);
        }
      }
    } else {
      CollectRefs(obj->base_version(), refs);
    }
    if (obj->is_atomic() && obj->has_current()) {
      CollectRefs(obj->current_version(), refs);
    }
    for (RecoverableObject* ref : refs) {
      if (seen.insert(ref).second) {
        stack.push_back(ref);
      }
    }
  }
  return order;
}

std::unordered_set<Uid> VolatileHeap::ComputeAccessibleUids() const {
  std::unordered_set<Uid> uids;
  for (RecoverableObject* obj : TraverseStableState()) {
    uids.insert(obj->uid());
  }
  return uids;
}

}  // namespace argus
