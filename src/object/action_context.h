// Per-action volatile bookkeeping at one guardian.
//
// The Argus runtime (not the recovery system) tracks, for each action, which
// objects it locked or created and which it modified — the latter is the MOS
// passed to prepare/write_entry (§2.3). ActionContext also applies the
// volatile side of commit/abort: installing or discarding tentative versions
// and releasing locks.

#ifndef SRC_OBJECT_ACTION_CONTEXT_H_
#define SRC_OBJECT_ACTION_CONTEXT_H_

#include <functional>

#include "src/object/heap.h"
#include "src/object/residency_hooks.h"

namespace argus {

class ActionContext {
 public:
  explicit ActionContext(ActionId aid) : aid_(aid) {}

  ActionId aid() const { return aid_; }

  // Acquires a read lock and returns the version this action sees.
  Result<Value> ReadObject(RecoverableObject* obj);

  // Acquires the write lock and replaces the tentative version.
  Status WriteObject(RecoverableObject* obj, Value v);

  // Acquires the write lock and edits the tentative version in place.
  Status UpdateObject(RecoverableObject* obj, const std::function<void(Value&)>& edit);

  // Seizes the mutex, applies `edit` to its value, releases. Records the
  // object in the MOS.
  Status MutateMutex(RecoverableObject* obj, const std::function<void(Value&)>& edit);

  // Creates an atomic object (creator holds a read lock, §2.4.1).
  RecoverableObject* CreateAtomic(VolatileHeap& heap, Value initial);

  // Creates a mutex object and records it as modified so it reaches the log.
  RecoverableObject* CreateMutex(VolatileHeap& heap, Value initial);

  const ModifiedObjectsSet& mos() const { return mos_; }
  ModifiedObjectsSet TakeMos() {
    ModifiedObjectsSet out = std::move(mos_);
    mos_.clear();
    return out;
  }
  // Re-adds objects (e.g. the inaccessible remainder returned by an early
  // prepare, §4.4).
  void AddToMos(const ModifiedObjectsSet& uids) { mos_.insert(uids.begin(), uids.end()); }

  // Subaction-abort support: retracts a write that was rolled back.
  void RemoveFromMos(Uid uid) { mos_.erase(uid); }
  bool InMos(Uid uid) const { return mos_.find(uid) != mos_.end(); }

  // Applies the volatile side of commit/abort: version install/discard plus
  // lock release on every object this action touched.
  void CommitVolatile(VolatileHeap& heap);
  void AbortVolatile(VolatileHeap& heap);

  // Restart support: re-associates an object with this action (used when a
  // recovered prepared action's write-locked objects are rediscovered from
  // the object table). Adopted objects are not pinned (they are write-locked,
  // hence never eviction-eligible); Unpin saturates at zero to match.
  void AdoptTouched(Uid uid) { touched_.insert(uid); }

  // Binds the residency pager so evicted objects fault back in on first
  // touch. Unbound contexts (the default) never meet evicted objects.
  void BindResidency(ResidencyPager* pager) { pager_ = pager; }

 private:
  // Rematerializes `obj` if it was evicted; called before any lock state is
  // created on it.
  Status FaultIfEvicted(RecoverableObject* obj);
  // First-touch bookkeeping: pin + clock reference bit.
  void Touch(RecoverableObject* obj);

  ActionId aid_;
  ModifiedObjectsSet mos_;      // modified objects (argument to prepare)
  std::set<Uid> touched_;       // everything locked or created (for release)
  ResidencyPager* pager_ = nullptr;
};

}  // namespace argus

#endif  // SRC_OBJECT_ACTION_CONTEXT_H_
