#include "src/object/recoverable_object.h"

#include <algorithm>

namespace argus {

Status RecoverableObject::AcquireReadLock(ActionId aid) {
  ARGUS_CHECK_MSG(is_atomic(), "read locks apply to atomic objects");
  if (write_locker_.has_value() && *write_locker_ != aid) {
    return Status::Unavailable("write-locked by another action");
  }
  if (!HoldsReadLock(aid) && write_locker_ != aid) {
    read_lockers_.push_back(aid);
  }
  return Status::Ok();
}

Status RecoverableObject::AcquireWriteLock(ActionId aid) {
  ARGUS_CHECK_MSG(is_atomic(), "write locks apply to atomic objects");
  if (write_locker_.has_value()) {
    if (*write_locker_ == aid) {
      return Status::Ok();
    }
    return Status::Unavailable("write-locked by another action");
  }
  for (ActionId reader : read_lockers_) {
    if (reader != aid) {
      return Status::Unavailable("read-locked by another action");
    }
  }
  // Upgrade: drop our own read lock, take the write lock.
  ARGUS_CHECK_MSG(!evicted_, "write-locking an evicted object (fault it in first)");
  std::erase(read_lockers_, aid);
  write_locker_ = aid;
  current_ = base_;
  return Status::Ok();
}

bool RecoverableObject::HoldsReadLock(ActionId aid) const {
  return std::find(read_lockers_.begin(), read_lockers_.end(), aid) != read_lockers_.end();
}

Value& RecoverableObject::MutableCurrent(ActionId aid) {
  ARGUS_CHECK_MSG(HoldsWriteLock(aid), "mutating without the write lock");
  return *current_;
}

void RecoverableObject::CommitAction(ActionId aid) {
  if (write_locker_ == aid) {
    base_ = std::move(*current_);
    current_.reset();
    write_locker_.reset();
    // The frame logged for the tentative version now describes the committed
    // base; promote it so a later eviction stubs to the right payload. When
    // the action wrote nothing new (read-modify that never logged), the
    // pending slot is Null and the stale base address is discarded with it.
    stable_address_ = pending_stable_address_;
    pending_stable_address_ = LogAddress::Null();
  }
  std::erase(read_lockers_, aid);
}

void RecoverableObject::AbortAction(ActionId aid) {
  if (write_locker_ == aid) {
    current_.reset();
    write_locker_.reset();
    pending_stable_address_ = LogAddress::Null();
  }
  std::erase(read_lockers_, aid);
}

Status RecoverableObject::Seize(ActionId aid) {
  ARGUS_CHECK_MSG(is_mutex(), "seize applies to mutex objects");
  if (seizer_.has_value() && *seizer_ != aid) {
    return Status::Unavailable("mutex seized by another action");
  }
  seizer_ = aid;
  return Status::Ok();
}

void RecoverableObject::Release(ActionId aid) {
  ARGUS_CHECK_MSG(is_mutex(), "release applies to mutex objects");
  if (seizer_ == aid) {
    seizer_.reset();
  }
}

Value& RecoverableObject::MutableValue(ActionId aid) {
  ARGUS_CHECK_MSG(is_mutex(), "MutableValue applies to mutex objects");
  ARGUS_CHECK_MSG(seizer_ == aid, "mutating a mutex without possession");
  ARGUS_CHECK_MSG(!evicted_, "mutating an evicted mutex (fault it in first)");
  // The in-place edit diverges from whatever frame was last logged; the
  // address becomes authoritative again when the writer logs the new value.
  stable_address_ = LogAddress::Null();
  return base_;
}

void RecoverableObject::Evict(std::size_t approx_bytes, std::vector<Uid> refs) {
  ARGUS_CHECK_MSG(!evicted_, "double eviction");
  ARGUS_CHECK_MSG(!current_.has_value(), "evicting an object with a tentative version");
  ARGUS_CHECK_MSG(pin_count_ == 0, "evicting a pinned object");
  ARGUS_CHECK_MSG(!stable_address_.is_null(), "evicting without a stable address");
  base_ = Value::Nil();
  evicted_ = true;
  evicted_bytes_ = approx_bytes;
  stub_refs_ = std::move(refs);
}

void RecoverableObject::Materialize(Value v) {
  ARGUS_CHECK_MSG(evicted_, "materializing a resident object");
  base_ = std::move(v);
  evicted_ = false;
  evicted_bytes_ = 0;
  stub_refs_.clear();
  stub_refs_.shrink_to_fit();
}

void RecoverableObject::RestoreCurrentWithLock(Value v, ActionId aid) {
  ARGUS_CHECK_MSG(is_atomic(), "current versions apply to atomic objects");
  current_ = std::move(v);
  write_locker_ = aid;
}

}  // namespace argus
