#include "src/object/recoverable_object.h"

#include <algorithm>

namespace argus {

Status RecoverableObject::AcquireReadLock(ActionId aid) {
  ARGUS_CHECK_MSG(is_atomic(), "read locks apply to atomic objects");
  if (write_locker_.has_value() && *write_locker_ != aid) {
    return Status::Unavailable("write-locked by another action");
  }
  if (!HoldsReadLock(aid) && write_locker_ != aid) {
    read_lockers_.push_back(aid);
  }
  return Status::Ok();
}

Status RecoverableObject::AcquireWriteLock(ActionId aid) {
  ARGUS_CHECK_MSG(is_atomic(), "write locks apply to atomic objects");
  if (write_locker_.has_value()) {
    if (*write_locker_ == aid) {
      return Status::Ok();
    }
    return Status::Unavailable("write-locked by another action");
  }
  for (ActionId reader : read_lockers_) {
    if (reader != aid) {
      return Status::Unavailable("read-locked by another action");
    }
  }
  // Upgrade: drop our own read lock, take the write lock.
  std::erase(read_lockers_, aid);
  write_locker_ = aid;
  current_ = base_;
  return Status::Ok();
}

bool RecoverableObject::HoldsReadLock(ActionId aid) const {
  return std::find(read_lockers_.begin(), read_lockers_.end(), aid) != read_lockers_.end();
}

Value& RecoverableObject::MutableCurrent(ActionId aid) {
  ARGUS_CHECK_MSG(HoldsWriteLock(aid), "mutating without the write lock");
  return *current_;
}

void RecoverableObject::CommitAction(ActionId aid) {
  if (write_locker_ == aid) {
    base_ = std::move(*current_);
    current_.reset();
    write_locker_.reset();
  }
  std::erase(read_lockers_, aid);
}

void RecoverableObject::AbortAction(ActionId aid) {
  if (write_locker_ == aid) {
    current_.reset();
    write_locker_.reset();
  }
  std::erase(read_lockers_, aid);
}

Status RecoverableObject::Seize(ActionId aid) {
  ARGUS_CHECK_MSG(is_mutex(), "seize applies to mutex objects");
  if (seizer_.has_value() && *seizer_ != aid) {
    return Status::Unavailable("mutex seized by another action");
  }
  seizer_ = aid;
  return Status::Ok();
}

void RecoverableObject::Release(ActionId aid) {
  ARGUS_CHECK_MSG(is_mutex(), "release applies to mutex objects");
  if (seizer_ == aid) {
    seizer_.reset();
  }
}

Value& RecoverableObject::MutableValue(ActionId aid) {
  ARGUS_CHECK_MSG(is_mutex(), "MutableValue applies to mutex objects");
  ARGUS_CHECK_MSG(seizer_ == aid, "mutating a mutex without possession");
  return base_;
}

void RecoverableObject::RestoreCurrentWithLock(Value v, ActionId aid) {
  ARGUS_CHECK_MSG(is_atomic(), "current versions apply to atomic objects");
  current_ = std::move(v);
  write_locker_ = aid;
}

}  // namespace argus
