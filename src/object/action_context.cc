#include "src/object/action_context.h"

namespace argus {

Result<Value> ActionContext::ReadObject(RecoverableObject* obj) {
  ARGUS_CHECK(obj != nullptr);
  Status s = obj->AcquireReadLock(aid_);
  if (!s.ok()) {
    return s;
  }
  touched_.insert(obj->uid());
  return obj->current_version();
}

Status ActionContext::WriteObject(RecoverableObject* obj, Value v) {
  ARGUS_CHECK(obj != nullptr);
  Status s = obj->AcquireWriteLock(aid_);
  if (!s.ok()) {
    return s;
  }
  touched_.insert(obj->uid());
  obj->MutableCurrent(aid_) = std::move(v);
  mos_.insert(obj->uid());
  return Status::Ok();
}

Status ActionContext::UpdateObject(RecoverableObject* obj,
                                   const std::function<void(Value&)>& edit) {
  ARGUS_CHECK(obj != nullptr);
  Status s = obj->AcquireWriteLock(aid_);
  if (!s.ok()) {
    return s;
  }
  touched_.insert(obj->uid());
  edit(obj->MutableCurrent(aid_));
  mos_.insert(obj->uid());
  return Status::Ok();
}

Status ActionContext::MutateMutex(RecoverableObject* obj,
                                  const std::function<void(Value&)>& edit) {
  ARGUS_CHECK(obj != nullptr);
  Status s = obj->Seize(aid_);
  if (!s.ok()) {
    return s;
  }
  edit(obj->MutableValue(aid_));
  obj->Release(aid_);
  touched_.insert(obj->uid());
  mos_.insert(obj->uid());
  return Status::Ok();
}

RecoverableObject* ActionContext::CreateAtomic(VolatileHeap& heap, Value initial) {
  RecoverableObject* obj = heap.CreateAtomic(aid_, std::move(initial));
  touched_.insert(obj->uid());
  return obj;
}

RecoverableObject* ActionContext::CreateMutex(VolatileHeap& heap, Value initial) {
  RecoverableObject* obj = heap.CreateMutex(std::move(initial));
  touched_.insert(obj->uid());
  mos_.insert(obj->uid());
  return obj;
}

void ActionContext::CommitVolatile(VolatileHeap& heap) {
  for (Uid uid : touched_) {
    RecoverableObject* obj = heap.Get(uid);
    if (obj != nullptr && obj->is_atomic()) {
      obj->CommitAction(aid_);
    }
  }
  touched_.clear();
  mos_.clear();
}

void ActionContext::AbortVolatile(VolatileHeap& heap) {
  for (Uid uid : touched_) {
    RecoverableObject* obj = heap.Get(uid);
    if (obj != nullptr && obj->is_atomic()) {
      obj->AbortAction(aid_);
    }
  }
  touched_.clear();
  mos_.clear();
}

}  // namespace argus
