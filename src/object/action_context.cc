#include "src/object/action_context.h"

namespace argus {

Status ActionContext::FaultIfEvicted(RecoverableObject* obj) {
  if (obj->evicted() && pager_ != nullptr) {
    return pager_->FaultIn(obj);
  }
  return Status::Ok();
}

void ActionContext::Touch(RecoverableObject* obj) {
  if (touched_.insert(obj->uid()).second) {
    obj->Pin();
  }
  obj->MarkReferenced();
}

Result<Value> ActionContext::ReadObject(RecoverableObject* obj) {
  ARGUS_CHECK(obj != nullptr);
  Status fs = FaultIfEvicted(obj);
  if (!fs.ok()) {
    return fs;
  }
  Status s = obj->AcquireReadLock(aid_);
  if (!s.ok()) {
    return s;
  }
  Touch(obj);
  return obj->current_version();
}

Status ActionContext::WriteObject(RecoverableObject* obj, Value v) {
  ARGUS_CHECK(obj != nullptr);
  Status fs = FaultIfEvicted(obj);
  if (!fs.ok()) {
    return fs;
  }
  Status s = obj->AcquireWriteLock(aid_);
  if (!s.ok()) {
    return s;
  }
  Touch(obj);
  obj->MutableCurrent(aid_) = std::move(v);
  mos_.insert(obj->uid());
  return Status::Ok();
}

Status ActionContext::UpdateObject(RecoverableObject* obj,
                                   const std::function<void(Value&)>& edit) {
  ARGUS_CHECK(obj != nullptr);
  Status fs = FaultIfEvicted(obj);
  if (!fs.ok()) {
    return fs;
  }
  Status s = obj->AcquireWriteLock(aid_);
  if (!s.ok()) {
    return s;
  }
  Touch(obj);
  edit(obj->MutableCurrent(aid_));
  mos_.insert(obj->uid());
  return Status::Ok();
}

Status ActionContext::MutateMutex(RecoverableObject* obj,
                                  const std::function<void(Value&)>& edit) {
  ARGUS_CHECK(obj != nullptr);
  Status fs = FaultIfEvicted(obj);
  if (!fs.ok()) {
    return fs;
  }
  Status s = obj->Seize(aid_);
  if (!s.ok()) {
    return s;
  }
  edit(obj->MutableValue(aid_));
  obj->Release(aid_);
  Touch(obj);
  mos_.insert(obj->uid());
  return Status::Ok();
}

RecoverableObject* ActionContext::CreateAtomic(VolatileHeap& heap, Value initial) {
  RecoverableObject* obj = heap.CreateAtomic(aid_, std::move(initial));
  Touch(obj);
  return obj;
}

RecoverableObject* ActionContext::CreateMutex(VolatileHeap& heap, Value initial) {
  RecoverableObject* obj = heap.CreateMutex(std::move(initial));
  Touch(obj);
  mos_.insert(obj->uid());
  return obj;
}

void ActionContext::CommitVolatile(VolatileHeap& heap) {
  for (Uid uid : touched_) {
    RecoverableObject* obj = heap.Get(uid);
    if (obj == nullptr) {
      continue;
    }
    if (obj->is_atomic()) {
      obj->CommitAction(aid_);
    }
    obj->Unpin();
  }
  touched_.clear();
  mos_.clear();
}

void ActionContext::AbortVolatile(VolatileHeap& heap) {
  for (Uid uid : touched_) {
    RecoverableObject* obj = heap.Get(uid);
    if (obj == nullptr) {
      continue;
    }
    if (obj->is_atomic()) {
      obj->AbortAction(aid_);
    }
    obj->Unpin();
  }
  touched_.clear();
  mos_.clear();
}

}  // namespace argus
