// Recoverable objects (§2.4): the units written to stable storage.
//
// Built-in atomic objects carry a base (committed) version plus, while some
// action holds the write lock, a current (tentative) version. Commit installs
// the current version as the new base; abort discards it. Mutex objects have
// a single current version and a seize/release possession lock; their new
// state survives once the modifying action *prepares*, even if it later
// aborts (§2.4.2).
//
// Lock acquisition returns kUnavailable on conflict; the runtime decides
// whether to wait or abort. The simulation is single-threaded, so there is
// no blocking here.

#ifndef SRC_OBJECT_RECOVERABLE_OBJECT_H_
#define SRC_OBJECT_RECOVERABLE_OBJECT_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/ids.h"
#include "src/common/object_kind.h"
#include "src/common/result.h"
#include "src/object/value.h"

namespace argus {

class RecoverableObject {
 public:
  RecoverableObject(ObjectKind kind, Uid uid, Value initial)
      : kind_(kind), uid_(uid), base_(std::move(initial)) {}

  ObjectKind kind() const { return kind_; }
  Uid uid() const { return uid_; }
  bool is_atomic() const { return kind_ == ObjectKind::kAtomic; }
  bool is_mutex() const { return kind_ == ObjectKind::kMutex; }

  // ---- Atomic object protocol ----

  Status AcquireReadLock(ActionId aid);
  // Creates the current version (a copy of base) on first acquisition.
  Status AcquireWriteLock(ActionId aid);
  bool HoldsReadLock(ActionId aid) const;
  bool HoldsWriteLock(ActionId aid) const { return write_locker_ == aid; }
  std::optional<ActionId> write_locker() const { return write_locker_; }
  bool locked() const { return write_locker_.has_value() || !read_lockers_.empty(); }

  // The committed version. Must be resident — callers fault evicted objects
  // back in (through the bound ResidencyPager) before dereferencing.
  const Value& base_version() const {
    ARGUS_CHECK_MSG(!evicted_, "dereferencing an evicted object's base version");
    return base_;
  }
  // The tentative version if one exists, else the base.
  const Value& current_version() const { return current_ ? *current_ : base_version(); }
  bool has_current() const { return current_.has_value(); }

  // Mutable access to the tentative version; requires the write lock.
  Value& MutableCurrent(ActionId aid);

  // Installs the tentative version (if `aid` held the write lock) and drops
  // all of `aid`'s locks.
  void CommitAction(ActionId aid);
  // Discards the tentative version (if `aid` held the write lock) and drops
  // all of `aid`'s locks.
  void AbortAction(ActionId aid);

  // ---- Mutex object protocol ----

  Status Seize(ActionId aid);
  void Release(ActionId aid);
  bool seized() const { return seizer_.has_value(); }
  // Mutable access to the single (current) version; requires possession.
  Value& MutableValue(ActionId aid);
  const Value& mutex_value() const {
    ARGUS_CHECK_MSG(!evicted_, "dereferencing an evicted mutex object's value");
    return base_;
  }

  // ---- Recovery-time restoration (bypasses locking) ----

  // Sets the committed/base version (atomic) or the current version (mutex).
  void RestoreBase(Value v) { base_ = std::move(v); }
  // Sets a tentative version and grants `aid` the write lock (atomic only),
  // reproducing the pre-crash prepared-but-undecided situation.
  void RestoreCurrentWithLock(Value v, ActionId aid);
  bool base_restored() const { return base_restored_; }
  void set_base_restored(bool restored) { base_restored_ = restored; }

  // ---- Residency (src/residency) ----
  //
  // A cold committed object can be *evicted*: its base version is replaced by
  // a compact stub <uid, stable_address_, evicted_bytes_> and rematerialized
  // on first touch by decoding the durable log frame at that address. The
  // address slots are maintained by the log writer (stage time), recovery
  // (OT priming), and CommitAction (pending → stable promotion), so the stub
  // always names a frame whose payload equals the committed base version.

  // Durable frame whose data payload equals the committed base (atomic) or
  // the live value (mutex). Null when unknown (the object was never logged,
  // or the log was swapped out from under the address).
  LogAddress stable_address() const { return stable_address_; }
  void set_stable_address(LogAddress addr) { stable_address_ = addr; }
  // Atomic only: frame holding the tentative current version. CommitAction
  // promotes it into stable_address_; AbortAction discards it.
  LogAddress pending_stable_address() const { return pending_stable_address_; }
  void set_pending_stable_address(LogAddress addr) { pending_stable_address_ = addr; }
  // Checkpoint swap retires the old log; every address into it is wiped.
  void ClearStableAddresses() {
    stable_address_ = LogAddress::Null();
    pending_stable_address_ = LogAddress::Null();
  }

  bool evicted() const { return evicted_; }
  std::size_t evicted_bytes() const { return evicted_bytes_; }
  // Uids the evicted value referenced — kept so stable-state traversal still
  // sees the object graph without rematerializing the payload.
  const std::vector<Uid>& stub_refs() const { return stub_refs_; }

  // Demotes the object: drops the base version, keeping only the stub. The
  // caller has checked eligibility (committed, unlocked, unpinned, durable
  // address known).
  void Evict(std::size_t approx_bytes, std::vector<Uid> refs);
  // Reinstalls a rematerialized base version (pointers already resolved).
  void Materialize(Value v);

  // Pin: objects touched by an in-flight action are never evicted. Saturating
  // on unpin — recovery adopts touched sets without pinning them.
  void Pin() { ++pin_count_; }
  void Unpin() {
    if (pin_count_ > 0) {
      --pin_count_;
    }
  }
  std::uint32_t pin_count() const { return pin_count_; }

  // Second-chance (clock) reference bit, set on every touch.
  void MarkReferenced() { ref_bit_ = true; }
  bool TestAndClearReferenced() {
    bool was = ref_bit_;
    ref_bit_ = false;
    return was;
  }

 private:
  ObjectKind kind_;
  Uid uid_;
  Value base_;                   // atomic: committed version; mutex: the version
  std::optional<Value> current_; // atomic only: tentative version
  std::optional<ActionId> write_locker_;
  std::vector<ActionId> read_lockers_;
  std::optional<ActionId> seizer_;
  bool base_restored_ = true;    // recovery bookkeeping

  // Residency state (see the section above).
  LogAddress stable_address_ = LogAddress::Null();
  LogAddress pending_stable_address_ = LogAddress::Null();
  bool evicted_ = false;
  bool ref_bit_ = false;
  std::uint32_t pin_count_ = 0;
  std::size_t evicted_bytes_ = 0;
  std::vector<Uid> stub_refs_;
};

}  // namespace argus

#endif  // SRC_OBJECT_RECOVERABLE_OBJECT_H_
