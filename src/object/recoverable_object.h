// Recoverable objects (§2.4): the units written to stable storage.
//
// Built-in atomic objects carry a base (committed) version plus, while some
// action holds the write lock, a current (tentative) version. Commit installs
// the current version as the new base; abort discards it. Mutex objects have
// a single current version and a seize/release possession lock; their new
// state survives once the modifying action *prepares*, even if it later
// aborts (§2.4.2).
//
// Lock acquisition returns kUnavailable on conflict; the runtime decides
// whether to wait or abort. The simulation is single-threaded, so there is
// no blocking here.

#ifndef SRC_OBJECT_RECOVERABLE_OBJECT_H_
#define SRC_OBJECT_RECOVERABLE_OBJECT_H_

#include <optional>
#include <vector>

#include "src/common/ids.h"
#include "src/common/object_kind.h"
#include "src/common/result.h"
#include "src/object/value.h"

namespace argus {

class RecoverableObject {
 public:
  RecoverableObject(ObjectKind kind, Uid uid, Value initial)
      : kind_(kind), uid_(uid), base_(std::move(initial)) {}

  ObjectKind kind() const { return kind_; }
  Uid uid() const { return uid_; }
  bool is_atomic() const { return kind_ == ObjectKind::kAtomic; }
  bool is_mutex() const { return kind_ == ObjectKind::kMutex; }

  // ---- Atomic object protocol ----

  Status AcquireReadLock(ActionId aid);
  // Creates the current version (a copy of base) on first acquisition.
  Status AcquireWriteLock(ActionId aid);
  bool HoldsReadLock(ActionId aid) const;
  bool HoldsWriteLock(ActionId aid) const { return write_locker_ == aid; }
  std::optional<ActionId> write_locker() const { return write_locker_; }
  bool locked() const { return write_locker_.has_value() || !read_lockers_.empty(); }

  // The committed version.
  const Value& base_version() const { return base_; }
  // The tentative version if one exists, else the base.
  const Value& current_version() const { return current_ ? *current_ : base_; }
  bool has_current() const { return current_.has_value(); }

  // Mutable access to the tentative version; requires the write lock.
  Value& MutableCurrent(ActionId aid);

  // Installs the tentative version (if `aid` held the write lock) and drops
  // all of `aid`'s locks.
  void CommitAction(ActionId aid);
  // Discards the tentative version (if `aid` held the write lock) and drops
  // all of `aid`'s locks.
  void AbortAction(ActionId aid);

  // ---- Mutex object protocol ----

  Status Seize(ActionId aid);
  void Release(ActionId aid);
  bool seized() const { return seizer_.has_value(); }
  // Mutable access to the single (current) version; requires possession.
  Value& MutableValue(ActionId aid);
  const Value& mutex_value() const { return base_; }

  // ---- Recovery-time restoration (bypasses locking) ----

  // Sets the committed/base version (atomic) or the current version (mutex).
  void RestoreBase(Value v) { base_ = std::move(v); }
  // Sets a tentative version and grants `aid` the write lock (atomic only),
  // reproducing the pre-crash prepared-but-undecided situation.
  void RestoreCurrentWithLock(Value v, ActionId aid);
  bool base_restored() const { return base_restored_; }
  void set_base_restored(bool restored) { base_restored_ = restored; }

 private:
  ObjectKind kind_;
  Uid uid_;
  Value base_;                   // atomic: committed version; mutex: the version
  std::optional<Value> current_; // atomic only: tentative version
  std::optional<ActionId> write_locker_;
  std::vector<ActionId> read_lockers_;
  std::optional<ActionId> seizer_;
  bool base_restored_ = true;    // recovery bookkeeping
};

}  // namespace argus

#endif  // SRC_OBJECT_RECOVERABLE_OBJECT_H_
