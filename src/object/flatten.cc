#include "src/object/flatten.h"

#include "src/object/recoverable_object.h"

namespace argus {
namespace {

enum class Tag : std::uint8_t {
  kNil = 0,
  kInt = 1,
  kStr = 2,
  kList = 3,
  kRecord = 4,
  kRef = 5,  // uid of a recoverable object
};

void FlattenInto(const Value& value, ByteWriter& w,
                 std::vector<RecoverableObject*>* referenced) {
  const Value::Storage& s = value.storage();
  if (std::holds_alternative<std::monostate>(s)) {
    w.PutU8(static_cast<std::uint8_t>(Tag::kNil));
  } else if (const auto* i = std::get_if<std::int64_t>(&s)) {
    w.PutU8(static_cast<std::uint8_t>(Tag::kInt));
    w.PutU64(static_cast<std::uint64_t>(*i));
  } else if (const auto* str = std::get_if<std::string>(&s)) {
    w.PutU8(static_cast<std::uint8_t>(Tag::kStr));
    w.PutString(*str);
  } else if (const auto* list = std::get_if<Value::List>(&s)) {
    w.PutU8(static_cast<std::uint8_t>(Tag::kList));
    w.PutVarint(list->size());
    for (const Value& item : *list) {
      FlattenInto(item, w, referenced);
    }
  } else if (const auto* rec = std::get_if<Value::Record>(&s)) {
    w.PutU8(static_cast<std::uint8_t>(Tag::kRecord));
    w.PutVarint(rec->size());
    for (const auto& [name, field] : *rec) {
      w.PutString(name);
      FlattenInto(field, w, referenced);
    }
  } else if (const auto* ref = std::get_if<ObjRef>(&s)) {
    ARGUS_CHECK_MSG(ref->target != nullptr, "flattening a null object reference");
    ARGUS_CHECK_MSG(ref->target->uid().valid(), "referenced object has no uid");
    w.PutU8(static_cast<std::uint8_t>(Tag::kRef));
    w.PutUid(ref->target->uid());
    if (referenced != nullptr) {
      referenced->push_back(ref->target);
    }
  } else if (const auto* uref = std::get_if<UidRef>(&s)) {
    // Re-flattening an unresolved value: keep the uid.
    w.PutU8(static_cast<std::uint8_t>(Tag::kRef));
    w.PutUid(uref->uid);
  }
}

Result<Value> UnflattenFrom(ByteReader& r, int depth) {
  if (depth > 256) {
    return Status::Corruption("value nesting too deep");
  }
  Result<std::uint8_t> tag = r.ReadU8();
  if (!tag.ok()) {
    return tag.status();
  }
  switch (static_cast<Tag>(tag.value())) {
    case Tag::kNil:
      return Value::Nil();
    case Tag::kInt: {
      Result<std::uint64_t> v = r.ReadU64();
      if (!v.ok()) {
        return v.status();
      }
      return Value::Int(static_cast<std::int64_t>(v.value()));
    }
    case Tag::kStr: {
      Result<std::string> s = r.ReadString();
      if (!s.ok()) {
        return s.status();
      }
      return Value::Str(std::move(s).value());
    }
    case Tag::kList: {
      Result<std::uint64_t> n = r.ReadVarint();
      if (!n.ok()) {
        return n.status();
      }
      if (n.value() > (1u << 24)) {
        return Status::Corruption("absurd list length");
      }
      Value::List items;
      items.reserve(n.value());
      for (std::uint64_t i = 0; i < n.value(); ++i) {
        Result<Value> item = UnflattenFrom(r, depth + 1);
        if (!item.ok()) {
          return item.status();
        }
        items.push_back(std::move(item).value());
      }
      return Value::OfList(std::move(items));
    }
    case Tag::kRecord: {
      Result<std::uint64_t> n = r.ReadVarint();
      if (!n.ok()) {
        return n.status();
      }
      if (n.value() > (1u << 24)) {
        return Status::Corruption("absurd record size");
      }
      Value::Record fields;
      for (std::uint64_t i = 0; i < n.value(); ++i) {
        Result<std::string> name = r.ReadString();
        if (!name.ok()) {
          return name.status();
        }
        Result<Value> field = UnflattenFrom(r, depth + 1);
        if (!field.ok()) {
          return field.status();
        }
        fields.emplace(std::move(name).value(), std::move(field).value());
      }
      return Value::OfRecord(std::move(fields));
    }
    case Tag::kRef: {
      Result<Uid> uid = r.ReadUid();
      if (!uid.ok()) {
        return uid.status();
      }
      return Value::OfUid(uid.value());
    }
  }
  return Status::Corruption("unknown value tag");
}

}  // namespace

std::vector<std::byte> FlattenValue(const Value& value,
                                    std::vector<RecoverableObject*>* referenced) {
  ByteWriter w;
  FlattenInto(value, w, referenced);
  return w.TakeBytes();
}

Result<Value> UnflattenValue(std::span<const std::byte> bytes) {
  ByteReader r(bytes);
  Result<Value> v = UnflattenFrom(r, 0);
  if (!v.ok()) {
    return v;
  }
  if (!r.at_end()) {
    return Status::Corruption("trailing bytes after value");
  }
  return v;
}

Status ResolveUidRefs(Value& value,
                      const std::function<RecoverableObject*(Uid)>& resolve) {
  Value::Storage& s = value.storage();
  if (auto* uref = std::get_if<UidRef>(&s)) {
    RecoverableObject* target = resolve(uref->uid);
    if (target == nullptr) {
      return Status::Corruption("dangling uid reference " + to_string(uref->uid));
    }
    s = ObjRef{target};
    return Status::Ok();
  }
  if (auto* list = std::get_if<Value::List>(&s)) {
    for (Value& item : *list) {
      Status st = ResolveUidRefs(item, resolve);
      if (!st.ok()) {
        return st;
      }
    }
  } else if (auto* rec = std::get_if<Value::Record>(&s)) {
    for (auto& [name, field] : *rec) {
      Status st = ResolveUidRefs(field, resolve);
      if (!st.ok()) {
        return st;
      }
    }
  }
  return Status::Ok();
}

void CollectRefs(const Value& value, std::vector<RecoverableObject*>& out) {
  const Value::Storage& s = value.storage();
  if (const auto* ref = std::get_if<ObjRef>(&s)) {
    if (ref->target != nullptr) {
      out.push_back(ref->target);
    }
  } else if (const auto* list = std::get_if<Value::List>(&s)) {
    for (const Value& item : *list) {
      CollectRefs(item, out);
    }
  } else if (const auto* rec = std::get_if<Value::Record>(&s)) {
    for (const auto& [name, field] : *rec) {
      CollectRefs(field, out);
    }
  }
}

}  // namespace argus
