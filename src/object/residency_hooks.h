// The seam between the object layer and the residency subsystem.
//
// ActionContext and the heap know when an evicted object is about to be
// touched, but the machinery that rematerializes one (batched frame reads
// through the stable log's ReadCache) lives above the object layer in
// src/residency. ResidencyPager is the upcall interface: the guardian binds
// its ResidencyManager into every ActionContext, and a touch of an evicted
// object faults it back in before any lock state is created.

#ifndef SRC_OBJECT_RESIDENCY_HOOKS_H_
#define SRC_OBJECT_RESIDENCY_HOOKS_H_

#include <span>

#include "src/common/result.h"

namespace argus {

class RecoverableObject;

class ResidencyPager {
 public:
  virtual ~ResidencyPager() = default;

  // Rematerializes one evicted object. No-op (Ok) if it is already resident.
  virtual Status FaultIn(RecoverableObject* object) = 0;

  // Rematerializes many evicted objects with one batched read per log shard.
  // Already-resident entries are skipped.
  virtual Status FaultInBatch(std::span<RecoverableObject* const> objects) = 0;
};

}  // namespace argus

#endif  // SRC_OBJECT_RESIDENCY_HOOKS_H_
