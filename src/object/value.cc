#include "src/object/value.h"

#include "src/object/recoverable_object.h"

namespace argus {

std::string Value::ToString() const {
  if (is_nil()) {
    return "nil";
  }
  if (is_int()) {
    return std::to_string(as_int());
  }
  if (is_str()) {
    return "\"" + as_str() + "\"";
  }
  if (is_list()) {
    std::string out = "[";
    for (std::size_t i = 0; i < as_list().size(); ++i) {
      if (i > 0) {
        out += ", ";
      }
      out += as_list()[i].ToString();
    }
    return out + "]";
  }
  if (is_record()) {
    std::string out = "{";
    bool first = true;
    for (const auto& [name, field] : as_record()) {
      if (!first) {
        out += ", ";
      }
      first = false;
      out += name + ": " + field.ToString();
    }
    return out + "}";
  }
  if (is_ref()) {
    RecoverableObject* target = as_ref();
    if (target == nullptr) {
      return "ref(null)";
    }
    return "ref(" + to_string(target->uid()) + ")";
  }
  return "uid(" + to_string(as_uid_ref()) + ")";
}

std::size_t Value::ApproxBytes() const {
  std::size_t bytes = sizeof(Value);
  if (is_str()) {
    // Heap characters beyond the SSO buffer; capacity is implementation
    // noise, so count size().
    if (as_str().size() > sizeof(std::string)) {
      bytes += as_str().size();
    }
  } else if (is_list()) {
    for (const Value& item : as_list()) {
      bytes += item.ApproxBytes();
    }
  } else if (is_record()) {
    // Each map node carries left/right/parent pointers + color + the pair;
    // ~32 bytes of node overhead per entry plus the key's characters.
    constexpr std::size_t kNodeOverhead = 32;
    for (const auto& [name, field] : as_record()) {
      bytes += kNodeOverhead + name.size() + field.ApproxBytes();
    }
  }
  return bytes;
}

}  // namespace argus
