// The volatile heap of one guardian.
//
// Owns every recoverable object at the guardian, keyed by uid, plus the
// stable-variables root object: a single recoverable object with the
// predefined uid 0 whose record value maps stable variable names to object
// references (§3.3.3.2). The heap also owns the stable uid counter; after a
// crash the counter is reset to one past the largest recovered uid (§3.4.4
// step 3), which is safe because the recovery system has seen every uid that
// was ever assigned and logged.
//
// A guardian crash destroys the whole heap — that is the definition of
// volatile state.

#ifndef SRC_OBJECT_HEAP_H_
#define SRC_OBJECT_HEAP_H_

#include <memory>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/object/flatten.h"
#include "src/object/recoverable_object.h"

namespace argus {

// The Modified Objects Set handed to prepare/write_entry (§2.3): the uids of
// objects modified by an action. (Newly created objects need not be listed;
// they are discovered through the newly-accessible-object mechanism,
// §3.3.3.2.)
using ModifiedObjectsSet = std::set<Uid>;

class VolatileHeap {
 public:
  // A fresh heap with an empty stable-variables root (uid 0).
  VolatileHeap();

  VolatileHeap(const VolatileHeap&) = delete;
  VolatileHeap& operator=(const VolatileHeap&) = delete;

  // Creates an atomic object; the creating action holds a read lock on it
  // (§2.4.1) so no other action can modify it before the creator completes.
  RecoverableObject* CreateAtomic(ActionId creator, Value initial);

  // Creates a mutex object.
  RecoverableObject* CreateMutex(Value initial);

  RecoverableObject* Get(Uid uid) const;
  RecoverableObject* root() const { return root_; }

  // Recovery: materializes an (empty) object shell for `uid`; versions are
  // filled in by the recovery algorithm. The shell starts with no versions
  // restored.
  RecoverableObject* InstallRecovered(Uid uid, ObjectKind kind);

  void ResetUidCounter(std::uint64_t next) { next_uid_ = next; }
  std::uint64_t next_uid() const { return next_uid_; }

  // Walks the graph from the stable variables, following both committed and
  // tentative versions, and returns every reachable recoverable object.
  std::vector<RecoverableObject*> TraverseStableState() const;

  // The uids of the objects returned by TraverseStableState.
  std::unordered_set<Uid> ComputeAccessibleUids() const;

  std::size_t object_count() const { return objects_.size(); }

  // Iteration support (tests, snapshot).
  auto begin() const { return objects_.begin(); }
  auto end() const { return objects_.end(); }

 private:
  std::unordered_map<Uid, std::unique_ptr<RecoverableObject>> objects_;
  RecoverableObject* root_ = nullptr;
  std::uint64_t next_uid_ = 1;  // 0 is the root
};

}  // namespace argus

#endif  // SRC_OBJECT_HEAP_H_
