// The data model for object state.
//
// In Argus terms (§2.4, §3.3.3.1) an object's data portion is an arbitrary
// graph of regular (non-recoverable) objects plus references to other
// recoverable objects. Value models the regular part — integers, strings,
// sequences, string-keyed records — and two kinds of reference:
//
//  - ObjRef: a volatile-memory reference to a recoverable object (a heap
//    pointer). This is what live guardian state holds.
//  - UidRef: a uid placeholder, produced when a flattened value is read back
//    from the log. The recovery algorithm's final pass (§3.4.3) resolves
//    every UidRef into an ObjRef via the object table.

#ifndef SRC_OBJECT_VALUE_H_
#define SRC_OBJECT_VALUE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "src/common/ids.h"
#include "src/common/result.h"

namespace argus {

class RecoverableObject;

// Volatile reference to a recoverable object.
struct ObjRef {
  RecoverableObject* target = nullptr;

  friend bool operator==(const ObjRef&, const ObjRef&) = default;
};

// Uid placeholder used during recovery, before pointers are patched.
struct UidRef {
  Uid uid;

  friend bool operator==(const UidRef&, const UidRef&) = default;
};

class Value {
 public:
  using List = std::vector<Value>;
  using Record = std::map<std::string, Value>;
  using Storage =
      std::variant<std::monostate, std::int64_t, std::string, List, Record, ObjRef, UidRef>;

  Value() = default;
  explicit Value(Storage storage) : storage_(std::move(storage)) {}

  static Value Nil() { return Value(); }
  static Value Int(std::int64_t v) { return Value(Storage(v)); }
  static Value Str(std::string s) { return Value(Storage(std::move(s))); }
  static Value OfList(List items) { return Value(Storage(std::move(items))); }
  static Value OfRecord(Record fields) { return Value(Storage(std::move(fields))); }
  static Value Ref(RecoverableObject* target) { return Value(Storage(ObjRef{target})); }
  static Value OfUid(Uid uid) { return Value(Storage(UidRef{uid})); }

  bool is_nil() const { return std::holds_alternative<std::monostate>(storage_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(storage_); }
  bool is_str() const { return std::holds_alternative<std::string>(storage_); }
  bool is_list() const { return std::holds_alternative<List>(storage_); }
  bool is_record() const { return std::holds_alternative<Record>(storage_); }
  bool is_ref() const { return std::holds_alternative<ObjRef>(storage_); }
  bool is_uid_ref() const { return std::holds_alternative<UidRef>(storage_); }

  std::int64_t as_int() const { return std::get<std::int64_t>(storage_); }
  const std::string& as_str() const { return std::get<std::string>(storage_); }
  const List& as_list() const { return std::get<List>(storage_); }
  List& as_list() { return std::get<List>(storage_); }
  const Record& as_record() const { return std::get<Record>(storage_); }
  Record& as_record() { return std::get<Record>(storage_); }
  RecoverableObject* as_ref() const { return std::get<ObjRef>(storage_).target; }
  Uid as_uid_ref() const { return std::get<UidRef>(storage_).uid; }

  Storage& storage() { return storage_; }
  const Storage& storage() const { return storage_; }

  friend bool operator==(const Value&, const Value&) = default;

  std::string ToString() const;

  // Approximate in-memory footprint: the Value itself plus owned payload
  // (string characters, list slots, record nodes + keys), recursively. An
  // estimate, not an exact malloc census — the residency manager uses it for
  // budget accounting, where consistency matters more than precision.
  std::size_t ApproxBytes() const;

 private:
  Storage storage_;
};

}  // namespace argus

#endif  // SRC_OBJECT_VALUE_H_
