#include "src/object/subaction.h"

#include <algorithm>

namespace argus {

void SubactionScope::CaptureUndo(RecoverableObject* obj) {
  for (const UndoRecord& record : undo_) {
    if (record.object == obj) {
      return;  // first write in this scope already captured the pre-state
    }
  }
  UndoRecord record;
  record.object = obj;
  record.previous_tentative = obj->current_version();  // base if no tentative yet
  record.was_in_mos = parent_->InMos(obj->uid());
  undo_.push_back(std::move(record));
}

Status SubactionScope::WriteObject(RecoverableObject* obj, Value v) {
  ARGUS_CHECK(open_);
  ARGUS_CHECK(obj != nullptr);
  if (obj->is_atomic()) {
    CaptureUndo(obj);
  }
  return parent_->WriteObject(obj, std::move(v));
}

Status SubactionScope::UpdateObject(RecoverableObject* obj,
                                    const std::function<void(Value&)>& edit) {
  ARGUS_CHECK(open_);
  ARGUS_CHECK(obj != nullptr);
  if (obj->is_atomic()) {
    CaptureUndo(obj);
  }
  return parent_->UpdateObject(obj, edit);
}

Status SubactionScope::MutateMutex(RecoverableObject* obj,
                                   const std::function<void(Value&)>& edit) {
  ARGUS_CHECK(open_);
  // No undo: mutex mutations survive subaction abort (§2.4.2 semantics carry
  // down — possession, not versioning, is the mutex discipline).
  return parent_->MutateMutex(obj, edit);
}

RecoverableObject* SubactionScope::CreateAtomic(Value initial) {
  ARGUS_CHECK(open_);
  RecoverableObject* obj = parent_->CreateAtomic(*heap_, std::move(initial));
  created_.push_back(obj);
  return obj;
}

void SubactionScope::Commit() {
  ARGUS_CHECK(open_);
  open_ = false;
  if (enclosing_ != nullptr && enclosing_->open_) {
    // Relative commit: the encloser inherits this frame. For objects the
    // encloser already captured, its (older) pre-state wins; otherwise this
    // scope's record carries the right pre-state for the encloser too.
    for (UndoRecord& record : undo_) {
      bool known = false;
      for (const UndoRecord& existing : enclosing_->undo_) {
        if (existing.object == record.object) {
          known = true;
          break;
        }
      }
      if (!known) {
        enclosing_->undo_.push_back(std::move(record));
      }
    }
    enclosing_->created_.insert(enclosing_->created_.end(), created_.begin(), created_.end());
  }
  undo_.clear();
  created_.clear();
}

void SubactionScope::Abort() {
  ARGUS_CHECK(open_);
  open_ = false;
  // Newest-first so nested effects unwind in order.
  for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
    RecoverableObject* obj = it->object;
    // The family's write lock is still held; restore the tentative value
    // that was current when this scope started.
    Status s = obj->AcquireWriteLock(parent_->aid());
    ARGUS_CHECK_MSG(s.ok(), "family lock vanished during subaction");
    obj->MutableCurrent(parent_->aid()) = std::move(*it->previous_tentative);
    if (!it->was_in_mos) {
      parent_->RemoveFromMos(obj->uid());
    }
  }
  for (RecoverableObject* obj : created_) {
    // Created objects become garbage; they must not reach the log.
    parent_->RemoveFromMos(obj->uid());
  }
  undo_.clear();
  created_.clear();
}

}  // namespace argus
