// Lampson-Sturgis "careful" disk operations.
//
// CarefulRead retries a read a bounded number of times, so transient faults
// are masked; a persistent CRC mismatch is reported as corruption (the page
// has decayed or a write was torn). CarefulWrite writes and then reads back
// until the page verifies. These are the building blocks from which the
// duplexed (stable) store derives its atomicity.

#ifndef SRC_STABLE_CAREFUL_DISK_H_
#define SRC_STABLE_CAREFUL_DISK_H_

#include <memory>

#include "src/stable/simulated_disk.h"

namespace argus {

class CarefulDisk {
 public:
  // Does not take ownership of `disk`; the duplexed store owns the disks.
  explicit CarefulDisk(SimulatedDisk* disk, int max_retries = 4)
      : disk_(disk), max_retries_(max_retries) {
    ARGUS_CHECK(disk != nullptr);
  }

  // Retries through transient faults. Returns kCorruption only if the page is
  // genuinely bad (every attempt CRC-fails), kNotFound if never written.
  Result<std::vector<std::byte>> CarefulRead(std::size_t page_index);

  // CarefulRead without the allocation: retries into `out` (>= kDiskPageSize).
  Status CarefulReadInto(std::size_t page_index, std::span<std::byte> out);

  // Write-then-verify. Returns kUnavailable if the underlying write crashed
  // (the caller machine is gone; recovery will observe a possibly-bad page).
  Status CarefulWrite(std::size_t page_index, std::span<const std::byte> data);

  SimulatedDisk* disk() { return disk_; }

 private:
  SimulatedDisk* disk_;
  int max_retries_;
};

}  // namespace argus

#endif  // SRC_STABLE_CAREFUL_DISK_H_
