#include "src/stable/io_uring_engine.h"

#if defined(ARGUS_IO_URING) && defined(__linux__)

#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <vector>

namespace argus {

namespace {

int SysIoUringSetup(unsigned entries, io_uring_params* params) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, params));
}

int SysIoUringEnter(int ring_fd, unsigned to_submit, unsigned min_complete, unsigned flags) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_enter, ring_fd, to_submit, min_complete, flags, nullptr, 0));
}

// Finishes a read the kernel completed short (or not at all) with plain
// pread, so every request is all-or-nothing from the caller's view.
Status FinishWithPread(int fd, const ReadRequest& request, std::size_t already) {
  std::size_t got = already;
  while (got < request.out.size()) {
    ssize_t n = ::pread(fd, request.out.data() + got, request.out.size() - got,
                        static_cast<off_t>(request.offset + got));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::IoError(std::string("pread: ") + std::strerror(errno));
    }
    if (n == 0) {
      return Status::IoError("unexpected EOF");
    }
    got += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

// The three mmap'd regions of a ring plus the derived pointers into them.
// Offsets come from io_uring_params; the single-mmap feature (kernel >= 5.4)
// lets the SQ and CQ share one mapping.
struct IoUringEngine::Rings {
  unsigned sq_entry_count = 0;
  unsigned cq_entry_count = 0;

  void* sq_ring = MAP_FAILED;
  std::size_t sq_ring_size = 0;
  void* cq_ring = MAP_FAILED;
  std::size_t cq_ring_size = 0;
  io_uring_sqe* sqes = static_cast<io_uring_sqe*>(MAP_FAILED);
  std::size_t sqes_size = 0;
  bool single_mmap = false;

  // SQ pointers.
  std::atomic<unsigned>* sq_head = nullptr;
  std::atomic<unsigned>* sq_tail = nullptr;
  unsigned sq_mask = 0;
  unsigned* sq_array = nullptr;

  // CQ pointers.
  std::atomic<unsigned>* cq_head = nullptr;
  std::atomic<unsigned>* cq_tail = nullptr;
  unsigned cq_mask = 0;
  io_uring_cqe* cqes = nullptr;

  ~Rings() {
    if (sqes != MAP_FAILED) {
      ::munmap(sqes, sqes_size);
    }
    if (sq_ring != MAP_FAILED) {
      ::munmap(sq_ring, sq_ring_size);
    }
    if (!single_mmap && cq_ring != MAP_FAILED) {
      ::munmap(cq_ring, cq_ring_size);
    }
  }
};

std::unique_ptr<IoUringEngine> IoUringEngine::TryCreate(unsigned entries) {
  io_uring_params params{};
  int ring_fd = SysIoUringSetup(entries, &params);
  if (ring_fd < 0) {
    return nullptr;  // ENOSYS / EPERM / EMFILE: caller uses the sync fallback
  }

  auto rings = std::make_unique<Rings>();
  rings->sq_entry_count = params.sq_entries;
  rings->cq_entry_count = params.cq_entries;
  rings->single_mmap = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;

  rings->sq_ring_size = params.sq_off.array + params.sq_entries * sizeof(unsigned);
  rings->cq_ring_size = params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
  if (rings->single_mmap) {
    rings->sq_ring_size = rings->cq_ring_size = std::max(rings->sq_ring_size, rings->cq_ring_size);
  }
  rings->sq_ring = ::mmap(nullptr, rings->sq_ring_size, PROT_READ | PROT_WRITE,
                          MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_SQ_RING);
  if (rings->sq_ring == MAP_FAILED) {
    ::close(ring_fd);
    return nullptr;
  }
  if (rings->single_mmap) {
    rings->cq_ring = rings->sq_ring;
  } else {
    rings->cq_ring = ::mmap(nullptr, rings->cq_ring_size, PROT_READ | PROT_WRITE,
                            MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_CQ_RING);
    if (rings->cq_ring == MAP_FAILED) {
      ::close(ring_fd);
      return nullptr;
    }
  }
  rings->sqes_size = params.sq_entries * sizeof(io_uring_sqe);
  rings->sqes = static_cast<io_uring_sqe*>(::mmap(nullptr, rings->sqes_size,
                                                  PROT_READ | PROT_WRITE,
                                                  MAP_SHARED | MAP_POPULATE, ring_fd,
                                                  IORING_OFF_SQES));
  if (rings->sqes == MAP_FAILED) {
    ::close(ring_fd);
    return nullptr;
  }

  auto* sq_base = static_cast<char*>(rings->sq_ring);
  rings->sq_head = reinterpret_cast<std::atomic<unsigned>*>(sq_base + params.sq_off.head);
  rings->sq_tail = reinterpret_cast<std::atomic<unsigned>*>(sq_base + params.sq_off.tail);
  rings->sq_mask = *reinterpret_cast<unsigned*>(sq_base + params.sq_off.ring_mask);
  rings->sq_array = reinterpret_cast<unsigned*>(sq_base + params.sq_off.array);

  auto* cq_base = static_cast<char*>(rings->cq_ring);
  rings->cq_head = reinterpret_cast<std::atomic<unsigned>*>(cq_base + params.cq_off.head);
  rings->cq_tail = reinterpret_cast<std::atomic<unsigned>*>(cq_base + params.cq_off.tail);
  rings->cq_mask = *reinterpret_cast<unsigned*>(cq_base + params.cq_off.ring_mask);
  rings->cqes = reinterpret_cast<io_uring_cqe*>(cq_base + params.cq_off.cqes);

  return std::unique_ptr<IoUringEngine>(new IoUringEngine(ring_fd, std::move(rings)));
}

IoUringEngine::IoUringEngine(int ring_fd, std::unique_ptr<Rings> rings)
    : ring_fd_(ring_fd), rings_(std::move(rings)) {}

IoUringEngine::~IoUringEngine() {
  rings_.reset();  // unmap before closing the ring fd
  if (ring_fd_ >= 0) {
    ::close(ring_fd_);
  }
}

Status IoUringEngine::SubmitAndWait(int fd, std::span<ReadRequest> requests) {
  Rings& r = *rings_;
  Status first = Status::Ok();
  std::size_t submitted = 0;
  // Which requests have an authoritative status (a CQE was reaped for them).
  // On an enter failure everything still false gets stamped with the error, so
  // no request leaves here with a stale Ok over an unfilled buffer.
  std::vector<bool> reaped(requests.size(), false);
  while (submitted < requests.size()) {
    // One wave: as many SQEs as the ring holds. user_data carries the request
    // index so completions (which arrive in any order) land on the right
    // segment.
    std::size_t wave = std::min<std::size_t>(requests.size() - submitted, r.sq_entry_count);
    unsigned tail = r.sq_tail->load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < wave; ++i) {
      std::size_t index = submitted + i;
      unsigned slot = (tail + static_cast<unsigned>(i)) & r.sq_mask;
      io_uring_sqe& sqe = r.sqes[slot];
      std::memset(&sqe, 0, sizeof(sqe));
      sqe.opcode = IORING_OP_READ;
      sqe.fd = fd;
      sqe.addr = reinterpret_cast<std::uint64_t>(requests[index].out.data());
      sqe.len = static_cast<std::uint32_t>(requests[index].out.size());
      sqe.off = requests[index].offset;
      sqe.user_data = index;
      r.sq_array[slot] = slot;
    }
    r.sq_tail->store(tail + static_cast<unsigned>(wave), std::memory_order_release);

    unsigned to_submit = static_cast<unsigned>(wave);
    unsigned completed = 0;
    while (completed < wave) {
      int n = SysIoUringEnter(ring_fd_, to_submit, static_cast<unsigned>(wave) - completed,
                              IORING_ENTER_GETEVENTS);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        Status err = Status::IoError(std::string("io_uring_enter: ") + std::strerror(errno));
        for (std::size_t i = 0; i < requests.size(); ++i) {
          if (!reaped[i]) {
            requests[i].status = err;
          }
        }
        return err;
      }
      to_submit -= static_cast<unsigned>(n);

      // Drain whatever completions are visible.
      unsigned head = r.cq_head->load(std::memory_order_relaxed);
      unsigned cq_tail = r.cq_tail->load(std::memory_order_acquire);
      while (head != cq_tail) {
        const io_uring_cqe& cqe = r.cqes[head & r.cq_mask];
        std::size_t index = static_cast<std::size_t>(cqe.user_data);
        ReadRequest& request = requests[index];
        if (cqe.res < 0) {
          request.status =
              Status::IoError(std::string("io_uring read: ") + std::strerror(-cqe.res));
        } else if (static_cast<std::size_t>(cqe.res) < request.out.size()) {
          request.status = FinishWithPread(fd, request, static_cast<std::size_t>(cqe.res));
        } else {
          request.status = Status::Ok();
        }
        reaped[index] = true;
        ++head;
        ++completed;
      }
      r.cq_head->store(head, std::memory_order_release);
    }
    submitted += wave;
  }
  for (const ReadRequest& request : requests) {
    if (!request.status.ok()) {
      first = request.status;
      break;
    }
  }
  return first;
}

}  // namespace argus

#else  // !ARGUS_IO_URING || !__linux__

namespace argus {

// Stub for builds without io_uring (ARGUS_IO_URING=OFF or non-Linux): the
// engine is never available and FileStableMedium always takes the preadv
// fallback. Keeping one translation unit either way means the fallback path
// is compiled and tested in every configuration.
std::unique_ptr<IoUringEngine> IoUringEngine::TryCreate(unsigned) { return nullptr; }

IoUringEngine::~IoUringEngine() = default;

Status IoUringEngine::SubmitAndWait(int, std::span<ReadRequest>) {
  return Status::Unavailable("io_uring engine compiled out");
}

struct IoUringEngine::Rings {};

IoUringEngine::IoUringEngine(int ring_fd, std::unique_ptr<Rings> rings)
    : ring_fd_(ring_fd), rings_(std::move(rings)) {}

}  // namespace argus

#endif
