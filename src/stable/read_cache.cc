#include "src/stable/read_cache.h"

#include <algorithm>
#include <utility>

#include "src/obs/metrics.h"

namespace argus {

namespace {

// All caches aggregated; per-cache numbers stay in Stats. Gauge updates are
// amortized (every 64 events) — the rate is a dashboard value, not a ledger.
struct CacheObs {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* bytes_from_medium;
  obs::Counter* readahead_blocks;
  obs::Gauge* hit_rate;

  static const CacheObs& Get() {
    static const CacheObs m{
        obs::GetCounter("stable.cache.hits"),
        obs::GetCounter("stable.cache.misses"),
        obs::GetCounter("stable.cache.bytes_from_medium"),
        obs::GetCounter("stable.cache.readahead_blocks"),
        obs::GetGauge("stable.cache.hit_rate"),
    };
    return m;
  }

  void UpdateRate() const {
    std::uint64_t h = hits->Value();
    std::uint64_t total = h + misses->Value();
    if (total != 0 && total % 64 == 0) {
      hit_rate->Set(static_cast<double>(h) / static_cast<double>(total));
    }
  }
};

}  // namespace

Result<ReadCache::View> ReadCache::Read(std::uint64_t offset, std::uint64_t len,
                                        std::uint64_t durable_limit) {
  if (offset + len > durable_limit) {
    return Status::NotFound("read past durable extent");
  }
  std::lock_guard<std::mutex> l(mu_);
  if (len == 0) {
    return View();
  }
  if (!config_.enabled) {
    ++stats_.misses;
    stats_.bytes_from_medium += len;
    CacheObs::Get().misses->Increment();
    CacheObs::Get().bytes_from_medium->Add(len);
    std::vector<std::byte> raw(len);
    Status s = medium_->ReadInto(offset, std::span<std::byte>(raw.data(), raw.size()));
    if (!s.ok()) {
      return s;
    }
    return View::FromOwned(std::move(raw));
  }
  return ReadRangeLocked(offset, len, durable_limit);
}

Result<ReadCache::View> ReadCache::ReadProbe(std::uint64_t offset, std::uint64_t min_len,
                                             std::uint64_t max_len, std::uint64_t durable_limit,
                                             bool* validated) {
  *validated = false;
  if (offset + min_len > durable_limit) {
    return Status::NotFound("read past durable extent");
  }
  std::lock_guard<std::mutex> l(mu_);
  if (!config_.enabled) {
    ++stats_.misses;
    stats_.bytes_from_medium += min_len;
    CacheObs::Get().misses->Increment();
    CacheObs::Get().bytes_from_medium->Add(min_len);
    std::vector<std::byte> raw(min_len);
    Status s = medium_->ReadInto(offset, std::span<std::byte>(raw.data(), raw.size()));
    if (!s.ok()) {
      return s;
    }
    return View::FromOwned(std::move(raw));
  }
  std::uint64_t len = std::min(max_len, durable_limit - offset);
  // Stay within one block when that still covers min_len: the view keeps a
  // stable single-block pin, which is what MarkValidated can memo.
  std::uint64_t block_end = (offset / config_.block_size + 1) * config_.block_size;
  if (block_end - offset >= min_len) {
    len = std::min(len, block_end - offset);
  }
  Result<View> view = ReadRangeLocked(offset, len, durable_limit);
  if (view.ok()) {
    *validated = IsValidatedLocked(offset);
  }
  return view;
}

Result<ReadCache::View> ReadCache::ReadRangeLocked(std::uint64_t offset, std::uint64_t len,
                                                   std::uint64_t durable_limit) {
  const std::uint64_t bs = config_.block_size;
  const std::uint64_t first = offset / bs;
  const std::uint64_t last = (offset + len - 1) / bs;

  if (first == last) {
    // Single-block fast path: one hash lookup serves the common probe hit.
    auto it = blocks_.find(first);
    if (it != blocks_.end() && it->second.data->size() >= offset + len - first * bs) {
      ++stats_.hits;
      CacheObs::Get().hits->Increment();
      CacheObs::Get().UpdateRate();
      TouchLocked(it->second, first);
      View v;
      v.pin_ = it->second.data;
      v.bytes_ = std::span<const std::byte>(it->second.data->data() + (offset - first * bs), len);
      return v;
    }
  }

  // Find the run of blocks that are missing or too short for this read.
  bool miss = false;
  std::uint64_t fill_first = 0;
  std::uint64_t fill_last = 0;
  for (std::uint64_t b = first; b <= last; ++b) {
    auto it = blocks_.find(b);
    std::uint64_t need_end = std::min(offset + len, (b + 1) * bs) - b * bs;
    if (it != blocks_.end() && it->second.data->size() >= need_end) {
      continue;
    }
    if (!miss) {
      miss = true;
      fill_first = b;
    }
    fill_last = b;
  }

  if (miss) {
    ++stats_.misses;
    CacheObs::Get().misses->Increment();
    Status s = FillRangeLocked(fill_first, fill_last, durable_limit, fill_first, fill_last);
    if (!s.ok()) {
      return s;
    }
  } else {
    ++stats_.hits;
    CacheObs::Get().hits->Increment();
  }
  CacheObs::Get().UpdateRate();

  if (first == last) {
    Block& block = blocks_.at(first);
    TouchLocked(block, first);
    View v;
    v.pin_ = block.data;
    v.bytes_ = std::span<const std::byte>(block.data->data() + (offset - first * bs), len);
    return v;
  }

  std::vector<std::byte> owned;
  owned.reserve(len);
  for (std::uint64_t b = first; b <= last; ++b) {
    Block& block = blocks_.at(b);
    TouchLocked(block, b);
    std::uint64_t begin = (b == first) ? offset - b * bs : 0;
    std::uint64_t end = std::min(offset + len, (b + 1) * bs) - b * bs;
    owned.insert(owned.end(), block.data->begin() + static_cast<std::ptrdiff_t>(begin),
                 block.data->begin() + static_cast<std::ptrdiff_t>(end));
  }
  return View::FromOwned(std::move(owned));
}

Status ReadCache::FillRangeLocked(std::uint64_t first_block, std::uint64_t last_block,
                                  std::uint64_t durable_limit, std::uint64_t demand_first,
                                  std::uint64_t demand_last) {
  const std::uint64_t bs = config_.block_size;
  const std::uint64_t ra = config_.readahead_blocks;

  // Extend the fill in the direction the scan is moving: a backward chain
  // walk touches descending adjacent blocks, a forward crash scan ascending
  // ones. Read-ahead only triggers on adjacency so random access pays
  // nothing.
  if (config_.enabled && ra > 0 && have_last_fill_) {
    if (last_block + 1 == last_fill_first_) {
      first_block = (first_block > ra) ? first_block - ra : 0;
    } else if (last_fill_last_ + 1 == first_block) {
      last_block += ra;
    }
  }
  // Clamp to the durable extent.
  std::uint64_t start = first_block * bs;
  std::uint64_t end = std::min((last_block + 1) * bs, durable_limit);
  if (start >= end) {
    return Status::NotFound("read past durable extent");
  }
  last_block = (end - 1) / bs;

  // One scatter submission for the whole run. Each block's bytes land
  // directly in its cache buffer — no staging copy — and a batched medium
  // (preadv/io_uring) services the run in one or a few syscalls. The default
  // SubmitReads executes segments sequentially in submission order, so
  // simulated media see the exact read sequence the old per-block loop
  // issued.
  const std::size_t count = static_cast<std::size_t>(last_block - first_block + 1);
  std::vector<std::shared_ptr<std::vector<std::byte>>> buffers(count);
  std::vector<ReadRequest> requests(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t b = first_block + i;
    std::uint64_t size = std::min(end, (b + 1) * bs) - b * bs;
    buffers[i] = std::make_shared<std::vector<std::byte>>(size);
    requests[i].offset = b * bs;
    requests[i].out = std::span<std::byte>(buffers[i]->data(), size);
  }
  Status batch = medium_->SubmitReads(std::span<ReadRequest>(requests.data(), requests.size()));
  if (!batch.ok() && std::all_of(requests.begin(), requests.end(),
                                 [](const ReadRequest& r) { return r.status.ok(); })) {
    // A medium violating the per-request contract (batch failed, every status
    // Ok) must not get its unfilled buffers cached.
    return batch;
  }

  // Install ascending up to the first failed segment, then surface that
  // segment's status — the cache ends up in the same state the serial loop
  // left it in: blocks before the failure cached, the rest untouched.
  for (std::size_t i = 0; i < count; ++i) {
    if (!requests[i].status.ok()) {
      return requests[i].status;
    }
    std::uint64_t b = first_block + i;
    std::uint64_t size = requests[i].out.size();
    stats_.bytes_from_medium += size;
    CacheObs::Get().bytes_from_medium->Add(size);
    auto [it, inserted] = blocks_.try_emplace(b);
    if (inserted) {
      lru_.push_front(b);
      it->second.lru_it = lru_.begin();
    } else {
      TouchLocked(it->second, b);
    }
    it->second.data = std::move(buffers[i]);
    // The bytes under any previously validated frame here may differ now.
    it->second.validated_frames.clear();
    if (b < demand_first || b > demand_last) {
      ++stats_.readahead_blocks;
      CacheObs::Get().readahead_blocks->Increment();
    }
  }
  have_last_fill_ = true;
  last_fill_first_ = first_block;
  last_fill_last_ = last_block;
  while (blocks_.size() > config_.max_blocks) {
    EvictLocked();
  }
  return Status::Ok();
}

void ReadCache::Prefetch(std::span<const std::pair<std::uint64_t, std::uint64_t>> ranges,
                         std::uint64_t durable_limit) {
  std::lock_guard<std::mutex> l(mu_);
  if (!config_.enabled || !config_.batch_prefetch || ranges.empty()) {
    return;
  }
  const std::uint64_t bs = config_.block_size;

  // Covering blocks of all ranges, deduplicated and ascending so a batched
  // medium sees one monotone scatter (adjacent blocks coalesce into runs).
  std::vector<std::uint64_t> wanted;
  for (const auto& [offset, len] : ranges) {
    if (len == 0 || offset >= durable_limit) {
      continue;
    }
    std::uint64_t end = std::min(offset + len, durable_limit);
    for (std::uint64_t b = offset / bs; b <= (end - 1) / bs; ++b) {
      wanted.push_back(b);
    }
  }
  std::sort(wanted.begin(), wanted.end());
  wanted.erase(std::unique(wanted.begin(), wanted.end()), wanted.end());

  std::vector<std::uint64_t> missing;
  for (std::uint64_t b : wanted) {
    std::uint64_t size = std::min((b + 1) * bs, durable_limit) - b * bs;
    auto it = blocks_.find(b);
    if (it == blocks_.end() || it->second.data->size() < size) {
      missing.push_back(b);
    }
  }
  if (missing.empty()) {
    return;
  }

  std::vector<std::shared_ptr<std::vector<std::byte>>> buffers(missing.size());
  std::vector<ReadRequest> requests(missing.size());
  for (std::size_t i = 0; i < missing.size(); ++i) {
    std::uint64_t b = missing[i];
    std::uint64_t size = std::min((b + 1) * bs, durable_limit) - b * bs;
    buffers[i] = std::make_shared<std::vector<std::byte>>(size);
    requests[i].offset = b * bs;
    requests[i].out = std::span<std::byte>(buffers[i]->data(), size);
  }
  Status batch = medium_->SubmitReads(std::span<ReadRequest>(requests.data(), requests.size()));
  if (!batch.ok() && std::all_of(requests.begin(), requests.end(),
                                 [](const ReadRequest& r) { return r.status.ok(); })) {
    return;  // contract-violating medium: don't cache buffers it never filled
  }

  for (std::size_t i = 0; i < missing.size(); ++i) {
    if (!requests[i].status.ok()) {
      continue;  // demand read re-surfaces this at the serial-equivalent point
    }
    std::uint64_t b = missing[i];
    stats_.bytes_from_medium += requests[i].out.size();
    CacheObs::Get().bytes_from_medium->Add(requests[i].out.size());
    auto [it, inserted] = blocks_.try_emplace(b);
    if (inserted) {
      lru_.push_front(b);
      it->second.lru_it = lru_.begin();
    } else {
      TouchLocked(it->second, b);
    }
    it->second.data = std::move(buffers[i]);
    it->second.validated_frames.clear();
  }
  while (blocks_.size() > config_.max_blocks) {
    EvictLocked();
  }
}

Status ReadCache::AppendThrough(std::span<const std::byte> data) {
  std::lock_guard<std::mutex> l(mu_);
  Status s = medium_->Append(data);
  if (!s.ok()) {
    // The medium may hold a torn suffix; drop everything rather than reason
    // about which trailing blocks are affected.
    ClearLocked();
  }
  return s;
}

bool ReadCache::IsValidated(std::uint64_t frame_offset) const {
  std::lock_guard<std::mutex> l(mu_);
  return IsValidatedLocked(frame_offset);
}

bool ReadCache::IsValidatedLocked(std::uint64_t frame_offset) const {
  auto it = blocks_.find(frame_offset / config_.block_size);
  if (it == blocks_.end()) {
    return false;
  }
  const std::vector<std::uint64_t>& frames = it->second.validated_frames;
  return std::find(frames.begin(), frames.end(), frame_offset) != frames.end();
}

void ReadCache::MarkValidated(std::uint64_t frame_offset, std::uint64_t frame_len,
                              const View& view) {
  (void)frame_len;  // the memo is per-block; a memoized frame never spans blocks
  std::lock_guard<std::mutex> l(mu_);
  if (!config_.enabled || view.pin_ == nullptr) {
    return;  // stitched or pass-through view: no stable block identity to memo
  }
  // Only memo if the validated bytes are still the cached bytes — the block
  // may have been refilled between the read and this call.
  auto it = blocks_.find(frame_offset / config_.block_size);
  if (it == blocks_.end() || it->second.data != view.pin_) {
    return;
  }
  std::vector<std::uint64_t>& frames = it->second.validated_frames;
  if (std::find(frames.begin(), frames.end(), frame_offset) == frames.end()) {
    frames.push_back(frame_offset);
  }
}

void ReadCache::TouchLocked(Block& block, std::uint64_t index) {
  (void)index;
  if (block.lru_it != lru_.begin()) {
    // Relink the existing node — no allocation, iterator stays valid.
    lru_.splice(lru_.begin(), lru_, block.lru_it);
  }
}

void ReadCache::EvictLocked() {
  if (lru_.empty()) {
    return;
  }
  std::uint64_t victim = lru_.back();
  lru_.pop_back();
  blocks_.erase(victim);  // drops the block's validated-frame memo with it
}

void ReadCache::SetEnabled(bool enabled) {
  std::lock_guard<std::mutex> l(mu_);
  if (config_.enabled != enabled) {
    config_.enabled = enabled;
    ClearLocked();
  }
}

bool ReadCache::enabled() const {
  std::lock_guard<std::mutex> l(mu_);
  return config_.enabled;
}

void ReadCache::Clear() {
  std::lock_guard<std::mutex> l(mu_);
  ClearLocked();
}

void ReadCache::ClearLocked() {
  blocks_.clear();
  lru_.clear();
  have_last_fill_ = false;
}

ReadCache::Stats ReadCache::StatsSnapshot() const {
  std::lock_guard<std::mutex> l(mu_);
  return stats_;
}

}  // namespace argus
