// A simulated page-addressed disk with injectable faults.
//
// The thesis assumes "atomic stable storage" built the Lampson-Sturgis way
// (§1.1): conventional disks whose writes are NOT atomic — a crash in the
// middle of a write may leave the page garbage — plus spontaneous decay.
// This module supplies exactly that unreliable substrate so that the careful /
// duplexed layers above it can *derive* atomic stable storage, and so tests
// can prove they do.

#ifndef SRC_STABLE_SIMULATED_DISK_H_
#define SRC_STABLE_SIMULATED_DISK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "src/common/crc32.h"
#include "src/common/result.h"
#include "src/common/rng.h"

namespace argus {

inline constexpr std::size_t kDiskPageSize = 256;

struct DiskPage {
  std::vector<std::byte> data;  // exactly kDiskPageSize once written
  std::uint32_t stored_crc = 0; // what the platter holds; may disagree with data
  bool ever_written = false;

  bool IntactCrc() const {
    return ever_written && stored_crc == Crc32(std::span<const std::byte>(data.data(), data.size()));
  }
};

// Fault plan for one simulated disk. Counters tick per operation.
struct DiskFaultPlan {
  // If >= 0: the i-th write (0-based, counting from plan installation) is torn:
  // only a prefix lands and the CRC is garbage; the write returns kUnavailable.
  std::int64_t tear_write_at = -1;
  // Probability that any given write is torn.
  double tear_probability = 0.0;
  // Probability that a page decays (CRC becomes bad) when it is read.
  double decay_on_read_probability = 0.0;
  // Probability that a read transiently fails (returns kIoError) but the page
  // is fine; a retry may succeed. Models dust on the heads.
  double transient_read_error_probability = 0.0;
};

class SimulatedDisk {
 public:
  // `seed` drives probabilistic faults; deterministic given the op sequence.
  explicit SimulatedDisk(std::size_t page_count, std::uint64_t seed = 0);

  std::size_t page_count() const { return pages_.size(); }

  // Grows the disk to at least `n` pages (simulation convenience).
  void EnsurePageCount(std::size_t n) {
    if (pages_.size() < n) {
      pages_.resize(n);
    }
  }

  // Reads a page. Returns kCorruption if the stored CRC disagrees with the
  // data (torn write or decay), kIoError on transient faults.
  Result<std::vector<std::byte>> ReadPage(std::size_t page_index);

  // ReadPage without the allocation: copies the page into `out` (which must
  // hold at least kDiskPageSize bytes). Identical fault semantics and rng
  // stream — bulk readers (cache fills) use this to skip per-page vectors.
  Status ReadPageInto(std::size_t page_index, std::span<std::byte> out);

  // Writes a full page. Not atomic: a torn write leaves the page corrupt and
  // returns kUnavailable (the machine "crashed" mid-write).
  Status WritePage(std::size_t page_index, std::span<const std::byte> data);

  void set_fault_plan(const DiskFaultPlan& plan) {
    fault_plan_ = plan;
    writes_since_plan_ = 0;
  }
  const DiskFaultPlan& fault_plan() const { return fault_plan_; }

  // Forcibly corrupts a page (test hook for decay).
  void CorruptPage(std::size_t page_index);

  // True if the page would fail a CRC check right now.
  bool PageIsBad(std::size_t page_index) const;

  // Raw platter peek: no fault rng roll, no read counted. Repair-convergence
  // oracles use this to inspect replica state without perturbing the
  // deterministic fault stream a real read would advance.
  const DiskPage& PeekPage(std::size_t page_index) const {
    ARGUS_CHECK(page_index < pages_.size());
    return pages_[page_index];
  }

  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }

 private:
  // Shared fault path of the two read forms: bounds, transient-fault, decay,
  // and CRC checks, rolling the fault rng exactly once per read.
  Result<const DiskPage*> CheckedPage(std::size_t page_index);

  std::vector<DiskPage> pages_;
  DiskFaultPlan fault_plan_;
  std::int64_t writes_since_plan_ = 0;
  Rng rng_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace argus

#endif  // SRC_STABLE_SIMULATED_DISK_H_
