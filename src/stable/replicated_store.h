// N-way replicated atomic page store with online background repair.
//
// Generalizes the Lampson-Sturgis duplexed pair (§1.1 of the thesis): every
// logical page is represented by N physical pages on disks with independent
// failure modes. Writes update the replicas in fixed index order, so a crash
// anywhere in the chain leaves a prefix holding the new value and a suffix
// holding the old one — at least one intact replica either way. Quorum
// careful reads probe the replicas in the same fixed order and take the first
// CRC-valid copy, which is therefore the newest intact value; replicas that
// had to be skipped over (decay, torn write) are marked dirty so the online
// repair loop can heal them without waiting for a restart.
//
// Two repair flavours, deliberately distinct:
//  - Repair() is the crash-time pass the duplexed store always had: heal
//    corrupt or diverged replicas from the newest intact copy, report a page
//    lost on every replica as corruption. Its N=2 behaviour is operation-for-
//    operation identical to the historical DuplexedStore::Repair.
//  - RepairPage()/ScrubRange() are the online pass (RADON-style repairable
//    atomic object): same healing, page-granular locking so commits interleave
//    between pages, and additionally fills replicas that never received a page
//    at all — which is exactly what re-silvering a freshly attached blank
//    replica needs, so replica replacement rides the same scrub machinery.
//
// ReplicaRepairService wraps the online pass in a background thread (modeled
// on CheckpointService): each pass drains the dirty-page queue, advances an
// in-flight re-silver, and scrubs the next window of the full page range.
//
// Thread safety: every public operation serializes on one internal mutex, so
// the store is shareable between the commit path and the repair thread. With
// no repair thread running, a single-threaded caller sees exactly the same
// disk-operation (and fault-rng) sequence as the historical duplexed store.

#ifndef SRC_STABLE_REPLICATED_STORE_H_
#define SRC_STABLE_REPLICATED_STORE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "src/stable/careful_disk.h"
#include "src/stable/simulated_disk.h"

namespace argus {

class ReplicatedStore {
 public:
  // Replica i's disk is seeded `seed * 2 + 1 + i`, so the N=2 configuration
  // reproduces the historical duplexed pair (seed*2+1, seed*2+2) bit for bit.
  ReplicatedStore(std::size_t page_count, std::uint32_t replicas, std::uint64_t seed = 0);

  std::size_t page_count() const;
  std::uint32_t replica_count() const;
  void EnsurePageCount(std::size_t n);

  // Atomic logical write: careful-writes every replica in index order. After
  // a crash at any point, AtomicRead returns either the old value or the new
  // value, never garbage.
  Status AtomicWrite(std::size_t page_index, std::span<const std::byte> data);

  // Quorum careful read: probes replicas in index order, first CRC-valid copy
  // wins (the newest intact value, because writes go in the same order). A
  // replica skipped over because of confirmed decay is marked dirty for the
  // online repair loop. kNotFound if no replica was ever written.
  Result<std::vector<std::byte>> AtomicRead(std::size_t page_index);

  // AtomicRead without the allocation: fills `out` (>= kDiskPageSize).
  Status AtomicReadInto(std::size_t page_index, std::span<std::byte> out);

  // Crash-time pass: for every page whose replicas disagree (torn write on a
  // prefix or decay), copies the newest intact replica over the bad ones.
  // Never-written replicas are left alone (nothing to re-duplex — the online
  // pass handles those). Returns pages repaired; corruption if some page is
  // CRC-bad on every replica.
  Result<std::size_t> Repair();

  // Online heal of one page under the store mutex: corrupt and diverged
  // replicas are rewritten from the newest intact copy, and replicas missing
  // the page entirely (blank after ReplaceReplica/AttachReplica, or a write
  // chain torn before first reaching them) are filled too. Returns replica
  // copies written (0 = page already converged). Corruption if the page is
  // CRC-bad on every replica that holds it.
  Result<std::size_t> RepairPage(std::size_t page_index);

  // Online scrub of [begin, end): RepairPage per page, releasing the mutex
  // between pages so commits interleave. Pages lost on every replica are
  // counted (stable.repair.pages_lost) but do not stop the scan — the scrub
  // must keep healing what is healable. Returns replica copies written.
  Result<std::size_t> ScrubRange(std::size_t begin, std::size_t end);

  // ---- Dirty-page queue (read path -> repair loop) ----

  void MarkDirty(std::size_t page_index);
  std::vector<std::size_t> TakeDirtyPages();
  std::size_t dirty_pages() const;

  // ---- Whole-disk loss and re-silvering ----

  // Replaces replica `replica`'s disk with a fresh blank one (whole-disk
  // loss). The replica immediately participates in write-all again; its
  // historical pages read as never-written until the repair loop (or an
  // explicit ScrubRange) re-silvers them from the peers.
  void ReplaceReplica(std::uint32_t replica, std::uint64_t seed);

  // Attaches one more blank replica at the end of the probe order (N grows
  // by one). Returns the new replica's index.
  std::uint32_t AttachReplica(std::uint64_t seed);

  // True while a replaced/attached replica has not yet been re-silvered end
  // to end. ReplicaRepairService polls this to prioritize the re-silver scan.
  bool resilver_pending() const;
  // Marks the in-flight re-silver complete (the repair service calls this
  // after a full-range scrub with the silvering replica attached).
  void FinishResilver();

  // ---- Fault-plan plumbing (thread-safe variant of disk(i).set_fault_plan)
  // Storm tests arm and clear decay plans mid-run; going through the store
  // mutex keeps that race-free against concurrent committers and the repair
  // thread.
  void SetReplicaFaultPlan(std::uint32_t replica, const DiskFaultPlan& plan);

  // ---- Convergence oracle (test/property hook) ----
  //
  // Non-perturbing check (no fault rng rolls): every page must be CRC-intact
  // on every replica that holds it, all held copies byte-identical, and —
  // once no re-silver is pending — held by either every replica or none.
  // Returns pages checked.
  Result<std::size_t> VerifyConverged() const;

  // ---- Accessors ----

  // Test hooks. The references are only stable until the next AttachReplica/
  // ReplaceReplica; mutating fault plans through them is only safe while the
  // store is otherwise quiescent (use SetReplicaFaultPlan mid-run).
  SimulatedDisk& disk(std::uint32_t replica);
  SimulatedDisk& disk_a() { return disk(0); }
  SimulatedDisk& disk_b() { return disk(1); }

  // Physical page writes summed over all N replicas.
  std::uint64_t physical_writes() const;

 private:
  struct Replica {
    std::unique_ptr<SimulatedDisk> disk;
    std::unique_ptr<CarefulDisk> careful;
    bool silvering = false;  // blank attach/replace not yet re-silvered
  };

  // Online heal of one page; caller holds mu_.
  Result<std::size_t> RepairPageLocked(std::size_t page_index);

  mutable std::mutex mu_;
  std::size_t page_count_;
  std::uint64_t seed_;
  std::vector<Replica> replicas_;
  std::set<std::size_t> dirty_;
  bool resilver_pending_ = false;
};

// ---------------------------------------------------------------------------
// Background repair
// ---------------------------------------------------------------------------

struct ReplicaRepairConfig {
  // How often the repair thread wakes when there is nothing dirty.
  std::chrono::milliseconds poll_interval{1};
  // Pages scrubbed per pass of the rolling full-range scan (0 disables the
  // background scan; the pass then only drains the dirty queue).
  std::size_t scrub_pages_per_pass = 64;
};

struct ReplicaRepairStats {
  std::uint64_t passes = 0;
  std::uint64_t dirty_pages_drained = 0;
  std::uint64_t pages_scrubbed = 0;
  std::uint64_t copies_written = 0;
  std::uint64_t resilvers_completed = 0;
};

// A background thread that heals a ReplicatedStore while commits continue:
// each pass drains the dirty-page queue fed by quorum-read fallbacks, then
// either advances an in-flight re-silver or scrubs the next window of the
// rolling full-range scan. The first hard error stops nothing — scrub
// continues past lost pages — but is retained for last_error().
class ReplicaRepairService {
 public:
  // `store` must outlive the service.
  ReplicaRepairService(ReplicatedStore* store, ReplicaRepairConfig config);
  ~ReplicaRepairService();

  ReplicaRepairService(const ReplicaRepairService&) = delete;
  ReplicaRepairService& operator=(const ReplicaRepairService&) = delete;

  void Start();
  void Stop();

  // One repair pass, runnable inline for deterministic tests (also the body
  // the background thread loops). Safe to call while the thread runs.
  Status RunPass();

  ReplicaRepairStats StatsSnapshot() const;
  Status last_error() const;

 private:
  void Loop();

  ReplicatedStore* store_;
  ReplicaRepairConfig config_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool started_ = false;
  Status last_error_ = Status::Ok();
  ReplicaRepairStats stats_;
  std::size_t scrub_cursor_ = 0;
  std::size_t resilver_cursor_ = 0;
  std::thread thread_;
};

}  // namespace argus

#endif  // SRC_STABLE_REPLICATED_STORE_H_
