#include "src/stable/replicated_store.h"

#include <algorithm>

#include "src/common/codec.h"
#include "src/obs/metrics.h"

namespace argus {

namespace {

struct ReplicatedObs {
  obs::Counter* repaired_pages;   // copies healed by crash-time Repair()
  obs::Counter* fallback_reads;   // quorum reads that fell past replica 0

  static const ReplicatedObs& Get() {
    static const ReplicatedObs m{
        obs::GetCounter("stable.replicated.repaired_pages"),
        obs::GetCounter("stable.replicated.fallback_reads"),
    };
    return m;
  }
};

struct RepairObs {
  obs::Counter* scans;            // repair passes started (service RunPass)
  obs::Counter* pages_repaired;   // corrupt/unreadable copies healed online
  obs::Counter* divergent_found;  // intact-but-stale copies overwritten
  obs::Counter* resilver_pages;   // blank copies filled on a silvering replica
  obs::Counter* pages_lost;       // pages CRC-bad on every replica (scrub skips)
  obs::Histogram* pass_ns;        // wall time per repair pass

  static const RepairObs& Get() {
    static const RepairObs m{
        obs::GetCounter("stable.repair.scans"),
        obs::GetCounter("stable.repair.pages_repaired"),
        obs::GetCounter("stable.repair.divergent_found"),
        obs::GetCounter("stable.repair.resilver_pages"),
        obs::GetCounter("stable.repair.pages_lost"),
        obs::GetHistogram("stable.repair.pass_ns"),
    };
    return m;
  }
};

}  // namespace

ReplicatedStore::ReplicatedStore(std::size_t page_count, std::uint32_t replicas,
                                 std::uint64_t seed)
    : page_count_(page_count), seed_(seed) {
  ARGUS_CHECK_MSG(replicas >= 1, "a replicated store needs at least one replica");
  replicas_.reserve(replicas);
  for (std::uint32_t i = 0; i < replicas; ++i) {
    Replica r;
    r.disk = std::make_unique<SimulatedDisk>(page_count, seed * 2 + 1 + i);
    r.careful = std::make_unique<CarefulDisk>(r.disk.get());
    replicas_.push_back(std::move(r));
  }
}

std::size_t ReplicatedStore::page_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return page_count_;
}

std::uint32_t ReplicatedStore::replica_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::uint32_t>(replicas_.size());
}

void ReplicatedStore::EnsurePageCount(std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  if (page_count_ < n) {
    page_count_ = n;
    for (Replica& r : replicas_) {
      r.disk->EnsurePageCount(n);
    }
  }
}

Status ReplicatedStore::AtomicWrite(std::size_t page_index, std::span<const std::byte> data) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    Status s = replicas_[i].careful->CarefulWrite(page_index, data);
    if (!s.ok()) {
      // A crash mid-chain leaves replicas [0, i) holding the new value and
      // [i, N) the old one — the quorum read's fixed probe order makes the
      // prefix win, so the logical page is the new value iff i > 0, the old
      // value iff i == 0, never garbage. Report the crash upward.
      return s;
    }
  }
  return Status::Ok();
}

Result<std::vector<std::byte>> ReplicatedStore::AtomicRead(std::size_t page_index) {
  std::lock_guard<std::mutex> lock(mu_);
  bool any_non_notfound = false;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    Result<std::vector<std::byte>> r = replicas_[i].careful->CarefulRead(page_index);
    if (r.ok()) {
      if (i > 0) {
        ReplicatedObs::Get().fallback_reads->Increment();
        // Some replica ahead of the winner is behind or broken: queue the
        // page for the online repair loop.
        dirty_.insert(page_index);
      }
      return r;
    }
    if (r.status().code() != ErrorCode::kNotFound) {
      any_non_notfound = true;
    }
  }
  if (!any_non_notfound) {
    return Status::NotFound("page never written");
  }
  dirty_.insert(page_index);
  return Status::Corruption("all replicas unreadable");
}

Status ReplicatedStore::AtomicReadInto(std::size_t page_index, std::span<std::byte> out) {
  std::lock_guard<std::mutex> lock(mu_);
  bool any_non_notfound = false;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    Status s = replicas_[i].careful->CarefulReadInto(page_index, out);
    if (s.ok()) {
      if (i > 0) {
        ReplicatedObs::Get().fallback_reads->Increment();
        dirty_.insert(page_index);
      }
      return s;
    }
    if (s.code() != ErrorCode::kNotFound) {
      any_non_notfound = true;
    }
  }
  if (!any_non_notfound) {
    return Status::NotFound("page never written");
  }
  dirty_.insert(page_index);
  return Status::Corruption("all replicas unreadable");
}

Result<std::size_t> ReplicatedStore::Repair() {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t repaired = 0;
  std::vector<Result<std::vector<std::byte>>> reads;
  for (std::size_t page = 0; page < page_count_; ++page) {
    reads.clear();
    for (Replica& r : replicas_) {
      reads.push_back(r.careful->CarefulRead(page));
    }
    std::size_t winner = replicas_.size();
    for (std::size_t i = 0; i < reads.size(); ++i) {
      if (reads[i].ok()) {
        winner = i;
        break;
      }
    }
    if (winner == replicas_.size()) {
      bool all_corrupt = true;
      for (const Result<std::vector<std::byte>>& r : reads) {
        if (r.status().code() != ErrorCode::kCorruption) {
          all_corrupt = false;
          break;
        }
      }
      if (all_corrupt) {
        return Status::Corruption("page lost on all replicas");
      }
      // Never written everywhere, or still transiently unreadable somewhere:
      // nothing this pass can decide. (Matches the historical duplexed
      // behaviour — only confirmed decay on every replica is fatal.)
      continue;
    }
    const std::vector<std::byte>& value = reads[winner].value();
    for (std::size_t j = 0; j < reads.size(); ++j) {
      if (j == winner) {
        continue;
      }
      bool heal = false;
      if (reads[j].ok()) {
        heal = !std::equal(value.begin(), value.end(), reads[j].value().begin());
      } else if (reads[j].status().code() == ErrorCode::kCorruption) {
        heal = true;
      }
      // kNotFound (write chain never reached replica j) and kIoError
      // (transient) are left for the online pass — exactly what the duplexed
      // store's crash-time repair did.
      if (heal) {
        Status s = replicas_[j].careful->CarefulWrite(page, AsSpan(value));
        if (!s.ok()) {
          return s;
        }
        ++repaired;
      }
    }
  }
  ReplicatedObs::Get().repaired_pages->Add(repaired);
  return repaired;
}

Result<std::size_t> ReplicatedStore::RepairPage(std::size_t page_index) {
  std::lock_guard<std::mutex> lock(mu_);
  return RepairPageLocked(page_index);
}

Result<std::size_t> ReplicatedStore::RepairPageLocked(std::size_t page_index) {
  std::vector<Result<std::vector<std::byte>>> reads;
  reads.reserve(replicas_.size());
  for (Replica& r : replicas_) {
    reads.push_back(r.careful->CarefulRead(page_index));
  }
  std::size_t winner = replicas_.size();
  for (std::size_t i = 0; i < reads.size(); ++i) {
    if (reads[i].ok()) {
      winner = i;
      break;
    }
  }
  if (winner == replicas_.size()) {
    bool all_notfound = true;
    bool any_transient = false;
    for (const Result<std::vector<std::byte>>& r : reads) {
      if (r.status().code() != ErrorCode::kNotFound) {
        all_notfound = false;
      }
      if (r.status().code() == ErrorCode::kIoError) {
        any_transient = true;
      }
    }
    if (all_notfound) {
      return static_cast<std::size_t>(0);  // never written: converged by vacuity
    }
    if (any_transient) {
      // A transient storm may be hiding an intact copy; report it so the
      // repair service retries the page on a later pass instead of declaring
      // it lost.
      return Status::IoError("replicas transiently unreadable");
    }
    return Status::Corruption("page lost on all replicas");
  }

  const std::vector<std::byte>& value = reads[winner].value();
  const RepairObs& obs = RepairObs::Get();
  std::size_t healed = 0;
  for (std::size_t j = 0; j < reads.size(); ++j) {
    if (j == winner) {
      continue;
    }
    bool heal = false;
    if (reads[j].ok()) {
      if (!std::equal(value.begin(), value.end(), reads[j].value().begin())) {
        obs.divergent_found->Increment();
        heal = true;
      }
    } else if (reads[j].status().code() == ErrorCode::kNotFound) {
      // Unlike the crash-time pass, the online pass fills never-written
      // copies: this is the re-silver path for a blank replacement replica,
      // and the catch-up path for a write chain torn before reaching j.
      heal = true;
    } else {
      // kCorruption (confirmed decay) and kIoError (retries exhausted): both
      // get rewritten from the winner.
      heal = true;
    }
    if (!heal) {
      continue;
    }
    Status s = replicas_[j].careful->CarefulWrite(page_index, AsSpan(value));
    if (!s.ok()) {
      // Partial heal: re-queue the page so a later pass finishes the job.
      dirty_.insert(page_index);
      return s;
    }
    ++healed;
    if (!reads[j].ok() && reads[j].status().code() == ErrorCode::kNotFound &&
        replicas_[j].silvering) {
      obs.resilver_pages->Increment();
    } else {
      obs.pages_repaired->Increment();
    }
  }
  return healed;
}

Result<std::size_t> ReplicatedStore::ScrubRange(std::size_t begin, std::size_t end) {
  std::size_t healed = 0;
  Status first_error = Status::Ok();
  for (std::size_t page = begin; page < end; ++page) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (page >= page_count_) {
        break;
      }
      Result<std::size_t> r = RepairPageLocked(page);
      if (r.ok()) {
        healed += r.value();
      } else {
        if (r.status().code() == ErrorCode::kCorruption) {
          RepairObs::Get().pages_lost->Increment();
        }
        if (first_error.ok()) {
          first_error = r.status();
        }
      }
    }
    // Mutex released between pages: commits and quorum reads interleave with
    // a long scrub at page granularity.
  }
  if (!first_error.ok()) {
    return first_error;
  }
  return healed;
}

void ReplicatedStore::MarkDirty(std::size_t page_index) {
  std::lock_guard<std::mutex> lock(mu_);
  dirty_.insert(page_index);
}

std::vector<std::size_t> ReplicatedStore::TakeDirtyPages() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::size_t> out(dirty_.begin(), dirty_.end());
  dirty_.clear();
  return out;
}

std::size_t ReplicatedStore::dirty_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dirty_.size();
}

void ReplicatedStore::ReplaceReplica(std::uint32_t replica, std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  ARGUS_CHECK(replica < replicas_.size());
  Replica& r = replicas_[replica];
  r.disk = std::make_unique<SimulatedDisk>(page_count_, seed);
  r.careful = std::make_unique<CarefulDisk>(r.disk.get());
  r.silvering = true;
  resilver_pending_ = true;
}

std::uint32_t ReplicatedStore::AttachReplica(std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  Replica r;
  r.disk = std::make_unique<SimulatedDisk>(page_count_, seed);
  r.careful = std::make_unique<CarefulDisk>(r.disk.get());
  r.silvering = true;
  replicas_.push_back(std::move(r));
  resilver_pending_ = true;
  return static_cast<std::uint32_t>(replicas_.size() - 1);
}

bool ReplicatedStore::resilver_pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resilver_pending_;
}

void ReplicatedStore::FinishResilver() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Replica& r : replicas_) {
    r.silvering = false;
  }
  resilver_pending_ = false;
}

void ReplicatedStore::SetReplicaFaultPlan(std::uint32_t replica, const DiskFaultPlan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  ARGUS_CHECK(replica < replicas_.size());
  replicas_[replica].disk->set_fault_plan(plan);
}

Result<std::size_t> ReplicatedStore::VerifyConverged() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t page = 0; page < page_count_; ++page) {
    const DiskPage* reference = nullptr;
    std::size_t holders = 0;
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      const DiskPage& p = replicas_[i].disk->PeekPage(page);
      if (!p.ever_written) {
        continue;
      }
      ++holders;
      if (!p.IntactCrc()) {
        return Status::Corruption("replica " + std::to_string(i) + " page " +
                                  std::to_string(page) + " crc-bad after repair");
      }
      if (reference == nullptr) {
        reference = &p;
      } else if (!std::equal(reference->data.begin(), reference->data.end(), p.data.begin())) {
        return Status::Corruption("replica " + std::to_string(i) + " diverges on page " +
                                  std::to_string(page));
      }
    }
    if (!resilver_pending_ && holders != 0 && holders != replicas_.size()) {
      return Status::Corruption("page " + std::to_string(page) + " held by " +
                                std::to_string(holders) + "/" +
                                std::to_string(replicas_.size()) + " replicas");
    }
  }
  return page_count_;
}

SimulatedDisk& ReplicatedStore::disk(std::uint32_t replica) {
  std::lock_guard<std::mutex> lock(mu_);
  ARGUS_CHECK(replica < replicas_.size());
  return *replicas_[replica].disk;
}

std::uint64_t ReplicatedStore::physical_writes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const Replica& r : replicas_) {
    total += r.disk->writes();
  }
  return total;
}

// ---------------------------------------------------------------------------
// ReplicaRepairService
// ---------------------------------------------------------------------------

ReplicaRepairService::ReplicaRepairService(ReplicatedStore* store, ReplicaRepairConfig config)
    : store_(store), config_(config) {
  ARGUS_CHECK(store != nullptr);
}

ReplicaRepairService::~ReplicaRepairService() { Stop(); }

void ReplicaRepairService::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) {
    return;
  }
  stop_ = false;
  started_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void ReplicaRepairService::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) {
      return;
    }
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
}

Status ReplicaRepairService::RunPass() {
  const RepairObs& obs = RepairObs::Get();
  obs.scans->Increment();
  auto started = std::chrono::steady_clock::now();
  Status pass_error = Status::Ok();

  // 1. Drain the dirty queue fed by quorum-read fallbacks: pages known to
  //    have a lagging or broken replica get healed first.
  std::vector<std::size_t> dirty = store_->TakeDirtyPages();
  std::size_t drained = 0;
  std::size_t copies = 0;
  for (std::size_t page : dirty) {
    Result<std::size_t> r = store_->RepairPage(page);
    ++drained;
    if (r.ok()) {
      copies += r.value();
    } else {
      if (r.status().code() == ErrorCode::kCorruption) {
        obs.pages_lost->Increment();
      }
      if (pass_error.ok()) {
        pass_error = r.status();
      }
    }
  }

  // 2. Advance either the re-silver scan (priority: a blank replica is one
  //    whole-disk failure away from data loss) or the rolling background
  //    scrub. Both are windows of the same ScrubRange machinery.
  std::size_t scrubbed = 0;
  std::uint64_t resilvers_done = 0;
  if (config_.scrub_pages_per_pass > 0) {
    std::size_t pages = store_->page_count();
    if (store_->resilver_pending()) {
      std::size_t begin;
      {
        std::lock_guard<std::mutex> lock(mu_);
        begin = resilver_cursor_;
      }
      std::size_t end = std::min(pages, begin + config_.scrub_pages_per_pass);
      Result<std::size_t> r = store_->ScrubRange(begin, end);
      scrubbed = end - begin;
      if (r.ok()) {
        copies += r.value();
      } else if (pass_error.ok()) {
        pass_error = r.status();
      }
      std::lock_guard<std::mutex> lock(mu_);
      resilver_cursor_ = end;
      if (end >= pages) {
        // Full range covered with the silvering replica attached: every page
        // the peers held has been copied (writes that landed meanwhile went
        // to all replicas directly).
        store_->FinishResilver();
        resilver_cursor_ = 0;
        ++resilvers_done;
      }
    } else {
      std::size_t begin;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (scrub_cursor_ >= pages) {
          scrub_cursor_ = 0;
        }
        begin = scrub_cursor_;
      }
      std::size_t end = std::min(pages, begin + config_.scrub_pages_per_pass);
      Result<std::size_t> r = store_->ScrubRange(begin, end);
      scrubbed = end - begin;
      if (r.ok()) {
        copies += r.value();
      } else if (pass_error.ok()) {
        pass_error = r.status();
      }
      std::lock_guard<std::mutex> lock(mu_);
      scrub_cursor_ = end >= pages ? 0 : end;
    }
  }

  auto elapsed = std::chrono::steady_clock::now() - started;
  obs.pass_ns->Record(
      static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.passes;
  stats_.dirty_pages_drained += drained;
  stats_.pages_scrubbed += scrubbed;
  stats_.copies_written += copies;
  stats_.resilvers_completed += resilvers_done;
  if (!pass_error.ok()) {
    last_error_ = pass_error;
  }
  return pass_error;
}

void ReplicaRepairService::Loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, config_.poll_interval, [this] { return stop_; });
      if (stop_) {
        return;
      }
    }
    // Errors are retained in last_error_ but never stop the loop: a page
    // lost this pass may be healable next pass (transient storm), and the
    // rest of the range still deserves scrubbing either way.
    RunPass();
  }
}

ReplicaRepairStats ReplicaRepairService::StatsSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Status ReplicaRepairService::last_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_error_;
}

}  // namespace argus
