#include "src/stable/careful_disk.h"

#include <algorithm>

#include "src/obs/metrics.h"

namespace argus {

namespace {

// Careful-protocol visibility: without these, retries are silently absorbed
// and repair effectiveness (how much decay the careful layer masks vs. how
// much escalates to the replicated layer) is unmeasurable.
struct CarefulObs {
  obs::Counter* retries;         // extra attempts beyond the first, any op
  obs::Counter* decay_detected;  // reads that confirmed corruption (all
                                 // attempts CRC-failed)

  static const CarefulObs& Get() {
    static const CarefulObs m{
        obs::GetCounter("stable.careful.retries"),
        obs::GetCounter("stable.careful.decay_detected"),
    };
    return m;
  }
};

}  // namespace

Result<std::vector<std::byte>> CarefulDisk::CarefulRead(std::size_t page_index) {
  Status last = Status::Ok();
  for (int attempt = 0; attempt <= max_retries_; ++attempt) {
    if (attempt > 0) {
      CarefulObs::Get().retries->Increment();
    }
    Result<std::vector<std::byte>> r = disk_->ReadPage(page_index);
    if (r.ok()) {
      return r;
    }
    last = r.status();
    if (last.code() == ErrorCode::kNotFound || last.code() == ErrorCode::kInvalidArgument) {
      return last;  // retrying cannot help
    }
    // kIoError (transient) and kCorruption both get retried: a transient
    // fault may clear, and corruption is re-confirmed before being reported.
  }
  if (last.code() == ErrorCode::kCorruption) {
    CarefulObs::Get().decay_detected->Increment();
  }
  return last;
}

Status CarefulDisk::CarefulReadInto(std::size_t page_index, std::span<std::byte> out) {
  Status last = Status::Ok();
  for (int attempt = 0; attempt <= max_retries_; ++attempt) {
    if (attempt > 0) {
      CarefulObs::Get().retries->Increment();
    }
    Status r = disk_->ReadPageInto(page_index, out);
    if (r.ok()) {
      return r;
    }
    last = r;
    if (last.code() == ErrorCode::kNotFound || last.code() == ErrorCode::kInvalidArgument) {
      return last;  // retrying cannot help
    }
  }
  if (last.code() == ErrorCode::kCorruption) {
    CarefulObs::Get().decay_detected->Increment();
  }
  return last;
}

Status CarefulDisk::CarefulWrite(std::size_t page_index, std::span<const std::byte> data) {
  Status last = Status::Ok();
  for (int attempt = 0; attempt <= max_retries_; ++attempt) {
    if (attempt > 0) {
      CarefulObs::Get().retries->Increment();
    }
    Status w = disk_->WritePage(page_index, data);
    if (w.code() == ErrorCode::kUnavailable || w.code() == ErrorCode::kInvalidArgument) {
      return w;  // machine crashed mid-write, or caller bug
    }
    Result<std::vector<std::byte>> verify = disk_->ReadPage(page_index);
    if (verify.ok() && std::equal(verify.value().begin(), verify.value().end(), data.begin())) {
      return Status::Ok();
    }
    last = verify.ok() ? Status::IoError("read-back mismatch") : verify.status();
  }
  return last;
}

}  // namespace argus
