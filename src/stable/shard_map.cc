#include "src/stable/shard_map.h"

#include <array>

#include "src/common/codec.h"
#include "src/common/crc32.h"

namespace argus {
namespace {

constexpr std::uint32_t kShardMapMagic = 0x504d5341u;  // "ASMP" little-endian
constexpr std::uint32_t kShardMapFormat = 1;

// splitmix64 finalizer: cheap, well-mixed, and stable across platforms (we
// must not depend on std::hash, whose value is implementation-defined).
std::uint64_t Mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

}  // namespace

std::vector<std::byte> EncodeShardMapRecord(const ShardMapRecord& record) {
  ByteWriter w;
  w.PutU32(kShardMapMagic);
  w.PutU32(kShardMapFormat);
  w.PutU64(record.version);
  w.PutU32(record.num_shards);
  w.PutU64(record.salt);
  w.PutVarint(record.overrides.size());
  for (const auto& [uid, shard] : record.overrides) {
    w.PutUid(uid);
    w.PutU32(shard);
  }
  w.PutU32(Crc32(AsSpan(w.bytes())));
  return w.TakeBytes();
}

Result<ShardMapRecord> DecodeShardMapRecord(std::span<const std::byte> payload) {
  if (payload.size() < 4) {
    return Status::Corruption("shard map record too short");
  }
  std::uint32_t expect = Crc32(payload.subspan(0, payload.size() - 4));
  ByteReader tail(payload.subspan(payload.size() - 4));
  Result<std::uint32_t> stored = tail.ReadU32();
  if (!stored.ok() || stored.value() != expect) {
    return Status::Corruption("shard map record crc mismatch");
  }
  ByteReader r(payload.subspan(0, payload.size() - 4));
  Result<std::uint32_t> magic = r.ReadU32();
  if (!magic.ok() || magic.value() != kShardMapMagic) {
    return Status::Corruption("shard map record bad magic");
  }
  Result<std::uint32_t> format = r.ReadU32();
  if (!format.ok() || format.value() != kShardMapFormat) {
    return Status::Corruption("shard map record unknown format");
  }
  ShardMapRecord record;
  Result<std::uint64_t> version = r.ReadU64();
  Result<std::uint32_t> shards = r.ReadU32();
  Result<std::uint64_t> salt = r.ReadU64();
  if (!version.ok() || !shards.ok() || !salt.ok()) {
    return Status::Corruption("shard map record truncated header");
  }
  record.version = version.value();
  record.num_shards = shards.value();
  record.salt = salt.value();
  if (record.num_shards == 0) {
    return Status::Corruption("shard map record with zero shards");
  }
  Result<std::uint64_t> count = r.ReadVarint();
  if (!count.ok()) {
    return Status::Corruption("shard map record truncated override count");
  }
  record.overrides.reserve(count.value());
  for (std::uint64_t i = 0; i < count.value(); ++i) {
    Result<Uid> uid = r.ReadUid();
    Result<std::uint32_t> shard = r.ReadU32();
    if (!uid.ok() || !shard.ok()) {
      return Status::Corruption("shard map record truncated override");
    }
    if (shard.value() >= record.num_shards) {
      return Status::Corruption("shard map override targets nonexistent shard");
    }
    record.overrides.emplace_back(uid.value(), shard.value());
  }
  if (!r.at_end()) {
    return Status::Corruption("shard map record trailing bytes");
  }
  return record;
}

ShardRouter::ShardRouter(ShardMapRecord record) : record_(std::move(record)) {
  overrides_.reserve(record_.overrides.size());
  for (const auto& [uid, shard] : record_.overrides) {
    overrides_[uid] = shard;
  }
}

std::uint32_t ShardRouter::ShardOf(Uid uid) const {
  if (uid == Uid::Root()) {
    return 0;
  }
  if (auto it = overrides_.find(uid); it != overrides_.end()) {
    return it->second;
  }
  return static_cast<std::uint32_t>(Mix64(uid.value ^ record_.salt) % record_.num_shards);
}

std::uint32_t ShardRouter::HomeShardOf(ActionId aid) const {
  std::uint64_t key = aid.sequence * 0x9e3779b97f4a7c15ull ^
                      (static_cast<std::uint64_t>(aid.coordinator.value) << 32) ^ record_.salt;
  return static_cast<std::uint32_t>(Mix64(key) % record_.num_shards);
}

ShardMapStore::ShardMapStore(std::unique_ptr<StableMedium> medium)
    : medium_(std::move(medium)) {}

Status ShardMapStore::Put(const ShardMapRecord& record) {
  std::vector<std::byte> payload = EncodeShardMapRecord(record);
  ByteWriter frame;
  frame.PutU32(static_cast<std::uint32_t>(payload.size()));
  frame.PutBytes(AsSpan(payload));
  return medium_->Append(AsSpan(frame.bytes()));
}

Result<ShardMapRecord> ShardMapStore::Recover() {
  if (Status s = medium_->RecoverAfterCrash(); !s.ok()) {
    return s;
  }
  const std::uint64_t end = medium_->durable_size();
  std::uint64_t offset = 0;
  Result<ShardMapRecord> newest = Status::NotFound("no intact shard map record");
  // Forward scan over [len][payload] frames; stop at the first frame that is
  // torn or does not decode — everything before it still counts.
  std::vector<std::byte> payload;
  while (offset + 4 <= end) {
    std::array<std::byte, 4> len_bytes;
    if (!medium_->ReadInto(offset, std::span<std::byte>(len_bytes.data(), len_bytes.size()))
             .ok()) {
      break;
    }
    ByteReader lr(std::span<const std::byte>(len_bytes.data(), len_bytes.size()));
    std::uint32_t len = lr.ReadU32().value();
    if (len == 0 || offset + 4 + len > end) {
      break;
    }
    payload.resize(len);  // reused across frames: the scan allocates once
    if (!medium_->ReadInto(offset + 4, std::span<std::byte>(payload.data(), payload.size()))
             .ok()) {
      break;
    }
    Result<ShardMapRecord> record = DecodeShardMapRecord(AsSpan(payload));
    if (!record.ok()) {
      break;
    }
    if (!newest.ok() || record.value().version >= newest.value().version) {
      newest = std::move(record);
    }
    offset += 4 + len;
  }
  return newest;
}

}  // namespace argus
