// Duplexed atomic page store (Lampson & Sturgis 1979, as sketched in §1.1 of
// the thesis): the historical two-replica configuration, now the N=2 case of
// ReplicatedStore. Writes update replica A then replica B; a crash between
// the two leaves at least one intact replica. Reads prefer A and fall back to
// B; the crash-time repair pass re-duplexes any page whose replicas disagree.
// The generalized store keeps all of that bit-identical at N=2 (same disk
// seeds, same careful-read/write sequences, same fault-rng stream) and adds
// quorum reads, online repair, and re-silvering for N>=2 — see
// replicated_store.h.

#ifndef SRC_STABLE_DUPLEXED_STORE_H_
#define SRC_STABLE_DUPLEXED_STORE_H_

#include "src/stable/replicated_store.h"

namespace argus {

class DuplexedStore : public ReplicatedStore {
 public:
  DuplexedStore(std::size_t page_count, std::uint64_t seed = 0)
      : ReplicatedStore(page_count, /*replicas=*/2, seed) {}
};

}  // namespace argus

#endif  // SRC_STABLE_DUPLEXED_STORE_H_
