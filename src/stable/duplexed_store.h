// Duplexed atomic page store (Lampson & Sturgis 1979, as sketched in §1.1 of
// the thesis): every logical page is represented by two physical pages on
// disks with independent failure modes. Writes update replica A then replica
// B; a crash between the two leaves at least one intact replica. Reads prefer
// A and fall back to B; a repair pass re-duplexes any page whose replicas
// disagree, restoring the invariant that both replicas hold the last
// successfully written value.

#ifndef SRC_STABLE_DUPLEXED_STORE_H_
#define SRC_STABLE_DUPLEXED_STORE_H_

#include <memory>

#include "src/stable/careful_disk.h"
#include "src/stable/simulated_disk.h"

namespace argus {

class DuplexedStore {
 public:
  DuplexedStore(std::size_t page_count, std::uint64_t seed = 0);

  std::size_t page_count() const { return page_count_; }

  void EnsurePageCount(std::size_t n) {
    if (page_count_ < n) {
      page_count_ = n;
      disk_a_->EnsurePageCount(n);
      disk_b_->EnsurePageCount(n);
    }
  }

  // Atomic logical write: after a crash at any point, AtomicRead returns
  // either the old value or the new value, never garbage.
  Status AtomicWrite(std::size_t page_index, std::span<const std::byte> data);

  // Returns the most recently *completed* write (or the in-flight value if
  // the first replica landed). kNotFound if never written.
  Result<std::vector<std::byte>> AtomicRead(std::size_t page_index);

  // AtomicRead without the allocation: fills `out` (>= kDiskPageSize).
  Status AtomicReadInto(std::size_t page_index, std::span<std::byte> out);

  // Recovery-time pass: for every page whose replicas disagree (torn write on
  // one side or decay), copies the intact replica over the bad one. Call after
  // a crash, before resuming service. Returns pages repaired.
  Result<std::size_t> Repair();

  // Test hooks.
  SimulatedDisk& disk_a() { return *disk_a_; }
  SimulatedDisk& disk_b() { return *disk_b_; }

  std::uint64_t physical_writes() const { return disk_a_->writes() + disk_b_->writes(); }

 private:
  std::size_t page_count_;
  std::unique_ptr<SimulatedDisk> disk_a_;
  std::unique_ptr<SimulatedDisk> disk_b_;
  CarefulDisk careful_a_;
  CarefulDisk careful_b_;
};

}  // namespace argus

#endif  // SRC_STABLE_DUPLEXED_STORE_H_
