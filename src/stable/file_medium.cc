#include "src/stable/file_medium.h"

#include <fcntl.h>
#include <limits.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>

#include "src/obs/metrics.h"
#include "src/stable/io_uring_engine.h"

namespace argus {

namespace {

// Syscall-amortization ledger for the file backend: preadv_calls vs
// batched_blocks is the coalescing ratio, batch_ns the per-SubmitReads
// latency distribution the E15 bench snapshots, fsyncs the force count.
struct FileObs {
  obs::Counter* preads;
  obs::Counter* preadv_calls;
  obs::Counter* uring_batches;
  obs::Counter* batched_blocks;
  obs::Counter* fsyncs;
  obs::Histogram* batch_ns;

  static const FileObs& Get() {
    static const FileObs m{
        obs::GetCounter("stable.file.preads"),
        obs::GetCounter("stable.file.preadv_calls"),
        obs::GetCounter("stable.file.uring_batches"),
        obs::GetCounter("stable.file.batched_blocks"),
        obs::GetCounter("stable.file.fsyncs"),
        obs::GetHistogram("stable.file.batch_ns"),
    };
    return m;
  }
};

Status PreadFully(int fd, std::uint64_t offset, std::span<std::byte> out) {
  std::size_t got = 0;
  while (got < out.size()) {
    ssize_t n = ::pread(fd, out.data() + got, out.size() - got,
                        static_cast<off_t>(offset + got));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::IoError(std::string("pread: ") + std::strerror(errno));
    }
    if (n == 0) {
      return Status::IoError("unexpected EOF");
    }
    got += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

Result<std::unique_ptr<FileStableMedium>> FileStableMedium::Open(const std::string& path,
                                                                 BatchMode mode) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    int err = errno;
    ::close(fd);
    return Status::IoError("fstat " + path + ": " + std::strerror(err));
  }
  std::unique_ptr<FileStableMedium> medium(
      new FileStableMedium(fd, static_cast<std::uint64_t>(st.st_size)));
  medium->mode_ = mode;
  if (mode == BatchMode::kAuto || mode == BatchMode::kIoUring) {
    // Runtime probe: sandboxes and old kernels refuse io_uring_setup, in
    // which case SubmitReads silently takes the preadv path.
    medium->uring_ = IoUringEngine::TryCreate();
  }
  return medium;
}

FileStableMedium::FileStableMedium(int fd, std::uint64_t size)
    : fd_(fd), durable_size_(size) {}

FileStableMedium::~FileStableMedium() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Status FileStableMedium::Append(std::span<const std::byte> data) {
  std::size_t done = 0;
  while (done < data.size()) {
    ssize_t n = ::write(fd_, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::IoError(std::string("write: ") + std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
  if (::fdatasync(fd_) != 0) {
    return Status::IoError(std::string("fdatasync: ") + std::strerror(errno));
  }
  FileObs::Get().fsyncs->Increment();
  durable_size_ += data.size();
  physical_bytes_ += data.size();
  return Status::Ok();
}

Result<std::vector<std::byte>> FileStableMedium::Read(std::uint64_t offset, std::uint64_t len) {
  std::vector<std::byte> out(len);
  Status s = ReadInto(offset, std::span<std::byte>(out.data(), out.size()));
  if (!s.ok()) {
    return s;
  }
  return out;
}

Status FileStableMedium::ReadInto(std::uint64_t offset, std::span<std::byte> out) {
  if (offset + out.size() > durable_size_) {
    return Status::NotFound("read past durable extent");
  }
  FileObs::Get().preads->Increment();
  return PreadFully(fd_, offset, out);
}

Status FileStableMedium::SubmitReads(std::span<ReadRequest> requests) {
  // Bounds-check every segment up front so the batch never reads past the
  // durable extent (the kernel would happily serve bytes of a torn tail).
  Status first = Status::Ok();
  for (ReadRequest& request : requests) {
    if (request.offset + request.out.size() > durable_size_) {
      request.status = Status::NotFound("read past durable extent");
      if (first.ok()) {
        first = request.status;
      }
    } else {
      request.status = Status::Ok();
    }
  }
  if (!first.ok()) {
    // Mixed batches are a caller bug; fail fast rather than partially read.
    // The in-bounds siblings were never attempted, so they must not keep Ok —
    // callers trust per-request statuses and would install unfilled buffers.
    for (ReadRequest& request : requests) {
      if (request.status.ok()) {
        request.status = Status::Unavailable("batch not attempted");
      }
    }
    return first;
  }
  if (requests.empty()) {
    return Status::Ok();
  }

  // The uring SQ/CQ pointers and the mode/obs bookkeeping below are not safe
  // for concurrent submitters; serialize whole batches (ReadInto stays
  // lock-free — plain pread is reentrant).
  std::lock_guard<std::mutex> l(submit_mu_);
  const auto start = std::chrono::steady_clock::now();
  if (mode_ == BatchMode::kSerial) {
    for (ReadRequest& request : requests) {
      request.status = ReadInto(request.offset, request.out);
      if (!request.status.ok() && first.ok()) {
        first = request.status;
      }
    }
  } else if (uring_ != nullptr && mode_ != BatchMode::kPreadv) {
    FileObs::Get().uring_batches->Increment();
    FileObs::Get().batched_blocks->Add(requests.size());
    first = uring_->SubmitAndWait(fd_, requests);
  } else {
    first = SubmitPreadv(requests);
  }
  FileObs::Get().batch_ns->Record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           start)
          .count()));
  return first;
}

Status FileStableMedium::SubmitPreadv(std::span<ReadRequest> requests) {
  // Coalesce byte-adjacent segments (the cache submits fills in ascending
  // block order, so a demand+readahead run is one contiguous extent) into a
  // single preadv each; discontinuities start a new vectored call.
  FileObs::Get().batched_blocks->Add(requests.size());
  Status first = Status::Ok();
  std::size_t run_start = 0;
  while (run_start < requests.size()) {
    std::size_t run_end = run_start + 1;
    std::uint64_t next_offset = requests[run_start].offset + requests[run_start].out.size();
    while (run_end < requests.size() && requests[run_end].offset == next_offset &&
           run_end - run_start < static_cast<std::size_t>(IOV_MAX)) {
      next_offset += requests[run_end].out.size();
      ++run_end;
    }

    std::size_t count = run_end - run_start;
    iovec iov_stack[16];
    std::vector<iovec> iov_heap;
    iovec* iov = iov_stack;
    if (count > 16) {
      iov_heap.resize(count);
      iov = iov_heap.data();
    }
    std::uint64_t run_bytes = 0;
    for (std::size_t i = 0; i < count; ++i) {
      iov[i].iov_base = requests[run_start + i].out.data();
      iov[i].iov_len = requests[run_start + i].out.size();
      run_bytes += requests[run_start + i].out.size();
    }
    FileObs::Get().preadv_calls->Increment();

    std::uint64_t done = 0;
    Status run_status = Status::Ok();
    std::uint64_t base = requests[run_start].offset;
    std::size_t iov_index = 0;
    while (done < run_bytes) {
      ssize_t n = ::preadv(fd_, iov + iov_index, static_cast<int>(count - iov_index),
                           static_cast<off_t>(base + done));
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        run_status = Status::IoError(std::string("preadv: ") + std::strerror(errno));
        break;
      }
      if (n == 0) {
        run_status = Status::IoError("unexpected EOF");
        break;
      }
      done += static_cast<std::uint64_t>(n);
      // Advance the iovec window past fully consumed segments (short preadv:
      // resume mid-run without re-reading).
      std::uint64_t consumed = static_cast<std::uint64_t>(n);
      while (consumed > 0 && iov_index < count) {
        if (consumed >= iov[iov_index].iov_len) {
          consumed -= iov[iov_index].iov_len;
          ++iov_index;
        } else {
          iov[iov_index].iov_base = static_cast<char*>(iov[iov_index].iov_base) + consumed;
          iov[iov_index].iov_len -= consumed;
          consumed = 0;
        }
      }
    }
    // Segments wholly consumed before a mid-run failure keep Ok — the same
    // state the serial loop would have left — so the cache still installs the
    // prefix that really was read.
    std::uint64_t seg_end = 0;
    for (std::size_t i = run_start; i < run_end; ++i) {
      seg_end += requests[i].out.size();
      requests[i].status = (run_status.ok() || seg_end <= done) ? Status::Ok() : run_status;
    }
    if (!run_status.ok() && first.ok()) {
      first = run_status;
    }
    run_start = run_end;
  }
  return first;
}

}  // namespace argus
