#include "src/stable/file_medium.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>

namespace argus {

Result<std::unique_ptr<FileStableMedium>> FileStableMedium::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    int err = errno;
    ::close(fd);
    return Status::IoError("fstat " + path + ": " + std::strerror(err));
  }
  return std::unique_ptr<FileStableMedium>(
      new FileStableMedium(fd, static_cast<std::uint64_t>(st.st_size)));
}

FileStableMedium::~FileStableMedium() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Status FileStableMedium::Append(std::span<const std::byte> data) {
  std::size_t done = 0;
  while (done < data.size()) {
    ssize_t n = ::write(fd_, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::IoError(std::string("write: ") + std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
  if (::fdatasync(fd_) != 0) {
    return Status::IoError(std::string("fdatasync: ") + std::strerror(errno));
  }
  durable_size_ += data.size();
  physical_bytes_ += data.size();
  return Status::Ok();
}

Result<std::vector<std::byte>> FileStableMedium::Read(std::uint64_t offset, std::uint64_t len) {
  if (offset + len > durable_size_) {
    return Status::NotFound("read past durable extent");
  }
  std::vector<std::byte> out(len);
  std::size_t got = 0;
  while (got < len) {
    ssize_t n = ::pread(fd_, out.data() + got, len - got,
                        static_cast<off_t>(offset + got));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::IoError(std::string("pread: ") + std::strerror(errno));
    }
    if (n == 0) {
      return Status::IoError("unexpected EOF");
    }
    got += static_cast<std::size_t>(n);
  }
  return out;
}

}  // namespace argus
