// A StableMedium decorator that charges a fixed wall-clock latency per read
// call, modeling a device where every media access pays a seek/rotation cost.
//
// Benchmarks use this to make recovery I/O-bound the way a real disk-backed
// restart is: with per-shard recovery, N workers overlap their device waits,
// which is exactly the effect the shard-scaling experiment (E14) measures.
// Correctness tests never use this type.

#ifndef SRC_STABLE_LATENCY_MEDIUM_H_
#define SRC_STABLE_LATENCY_MEDIUM_H_

#include <chrono>
#include <memory>
#include <thread>
#include <utility>

#include "src/stable/stable_medium.h"

namespace argus {

class LatencyStableMedium final : public StableMedium {
 public:
  // How SubmitReads charges the modeled device cost. kPerRequest (default)
  // sleeps once per segment — exactly what the equivalent ReadInto sequence
  // paid before batching existed, so seeded benches (E14's latency-charged
  // shard scaling) are bit-identical whether or not the cache batches its
  // fills. kPerBatch sleeps once per SubmitReads call, modeling a device
  // whose scatter submission costs one seek regardless of segment count —
  // the simulated stand-in for the E15 io_uring/preadv amortization.
  enum class BatchCharge { kPerRequest, kPerBatch };

  LatencyStableMedium(std::unique_ptr<StableMedium> inner,
                      std::chrono::nanoseconds read_latency,
                      std::chrono::nanoseconds append_latency = std::chrono::nanoseconds{0},
                      BatchCharge batch_charge = BatchCharge::kPerRequest)
      : inner_(std::move(inner)),
        read_latency_(read_latency),
        append_latency_(append_latency),
        batch_charge_(batch_charge) {}

  Status Append(std::span<const std::byte> data) override {
    if (append_latency_.count() > 0) {
      std::this_thread::sleep_for(append_latency_);
    }
    return inner_->Append(data);
  }

  Result<std::vector<std::byte>> Read(std::uint64_t offset, std::uint64_t len) override {
    if (read_latency_.count() > 0) {
      std::this_thread::sleep_for(read_latency_);
    }
    return inner_->Read(offset, len);
  }

  Status ReadInto(std::uint64_t offset, std::span<std::byte> out) override {
    if (read_latency_.count() > 0) {
      std::this_thread::sleep_for(read_latency_);
    }
    return inner_->ReadInto(offset, out);
  }

  Status SubmitReads(std::span<ReadRequest> requests) override {
    if (read_latency_.count() > 0 && !requests.empty()) {
      if (batch_charge_ == BatchCharge::kPerBatch) {
        std::this_thread::sleep_for(read_latency_);
      } else {
        std::this_thread::sleep_for(read_latency_ * static_cast<std::int64_t>(requests.size()));
      }
    }
    return inner_->SubmitReads(requests);
  }

  std::uint64_t durable_size() const override { return inner_->durable_size(); }
  Status RecoverAfterCrash() override { return inner_->RecoverAfterCrash(); }
  std::uint64_t physical_bytes_written() const override {
    return inner_->physical_bytes_written();
  }

  StableMedium& inner() { return *inner_; }

 private:
  std::unique_ptr<StableMedium> inner_;
  std::chrono::nanoseconds read_latency_;
  std::chrono::nanoseconds append_latency_;
  BatchCharge batch_charge_;
};

}  // namespace argus

#endif  // SRC_STABLE_LATENCY_MEDIUM_H_
