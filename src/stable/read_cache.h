// Block read cache with chain/sequential read-ahead over a StableMedium.
//
// Recovery reads the log backward (outcome chain) and forward (crash scan),
// and the duplexed medium pays a per-256-byte-page CarefulRead for every
// virtual Read call. This layer turns those into block-granular fills that
// are cached, prefetched in the direction the scan is moving, and served as
// zero-copy `std::span` views pinned by shared ownership — so a frame's bytes
// are fetched from the medium once and validated once per residence.
//
// Concurrency: the simulated media are NOT thread-safe (SimulatedDisk rolls
// its fault rng and mutates pages on decay-reads; DuplexedStableMedium tracks
// durable_length_). The cache's mutex is therefore the single funnel for ALL
// medium access — fills, and appends via AppendThrough — which is what makes
// the pipelined recovery workers safe. Returned views hold shared_ptr pins
// and stay valid after eviction, refill, Clear, or cache destruction.
//
// Caching never weakens fault detection: a block fill is a plain medium read,
// so a persistently decayed page surfaces the same kCorruption CarefulRead
// would report, and StableLog clears the cache on RecoverAfterCrash so a
// restart always re-reads the medium.
//
// Sharded guardians: each log shard owns its own StableLog and therefore its
// own ReadCache INSTANCE over its own medium — the cache is strictly
// per-medium and must never be shared across shards. The mutex-as-funnel
// contract above is per-instance: it serializes access to ONE thread-unsafe
// medium. N shard recovery workers reading N media in parallel are safe
// precisely because no two workers ever touch the same cache/medium pair;
// sharing one cache across media would both break the funnel (two media
// mutated under one lock is fine, but one medium reached from two caches is
// not) and alias block offsets between unrelated logs.

#ifndef SRC_STABLE_READ_CACHE_H_
#define SRC_STABLE_READ_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/stable/stable_medium.h"

namespace argus {

class ReadCache {
 public:
  struct Config {
    bool enabled = true;
    std::uint64_t block_size = 4096;
    std::size_t max_blocks = 4096;      // 16 MiB of cache at the default block size
    std::size_t readahead_blocks = 8;   // extra blocks fetched ahead of a moving scan
    // Allows Prefetch() to issue scatter fills (StableLog::ReadMany drives it
    // for the recovery pipeline's speculative fetches). Off by default: wide
    // prefetch changes the cache's hit/miss/bytes counter stream, and the
    // simulated-media benches (E11/E14) are pinned to the serial-equivalent
    // stream. File-backed setups (E15) turn it on to hand preadv/io_uring
    // multi-block scatters.
    bool batch_prefetch = false;
  };

  struct Stats {
    std::uint64_t hits = 0;              // reads served entirely from cached blocks
    std::uint64_t misses = 0;            // reads that had to fill at least one block
    std::uint64_t bytes_from_medium = 0; // bytes fetched from the medium (incl. read-ahead)
    std::uint64_t readahead_blocks = 0;  // blocks fetched speculatively, not on demand
  };

  // Immutable bytes pinned for the caller: either a zero-copy subspan of one
  // cached block (shared ownership keeps it alive past eviction) or an owned
  // buffer for ranges stitched across blocks. Move-only.
  class View {
   public:
    View() = default;
    View(View&&) noexcept = default;
    View& operator=(View&&) noexcept = default;
    View(const View&) = delete;
    View& operator=(const View&) = delete;

    std::span<const std::byte> bytes() const { return bytes_; }

    static View FromOwned(std::vector<std::byte> owned) {
      View v;
      v.owned_ = std::move(owned);
      v.bytes_ = std::span<const std::byte>(v.owned_.data(), v.owned_.size());
      return v;
    }

   private:
    friend class ReadCache;
    std::shared_ptr<const std::vector<std::byte>> pin_;  // set for single-block hits
    std::vector<std::byte> owned_;                       // set for stitched ranges
    std::span<const std::byte> bytes_;
  };

  explicit ReadCache(StableMedium* medium) : medium_(medium) {}
  ReadCache(StableMedium* medium, Config config) : medium_(medium), config_(config) {}

  // Reads [offset, offset+len) of the medium, which must lie within
  // `durable_limit` (the caller's snapshot of the durable extent). Fills
  // missing blocks with one medium read, extended by read-ahead when the
  // request continues an ascending or descending scan.
  Result<View> Read(std::uint64_t offset, std::uint64_t len, std::uint64_t durable_limit);

  // Single-access frame probe for the log layer: returns a view starting at
  // `offset` of at least `min_len` bytes (NotFound otherwise) and up to
  // `max_len`, clamped to `durable_limit` and — when that still satisfies
  // min_len — to the end of the block containing `offset`, so the common
  // case is one mutex round yielding a zero-copy pin that covers the whole
  // frame. `*validated` reports, under the same lock that produced the view,
  // whether a MarkValidated frame starts exactly at `offset`. With the cache
  // disabled the probe degrades to a pass-through read of min_len bytes.
  Result<View> ReadProbe(std::uint64_t offset, std::uint64_t min_len, std::uint64_t max_len,
                         std::uint64_t durable_limit, bool* validated);

  // Best-effort scatter prefetch: fills, in one SubmitReads batch, every
  // missing block covering the given [offset, offset+len) ranges (clamped to
  // `durable_limit`). Blocks whose segment succeeded are installed even when
  // another segment failed; failures themselves are swallowed — the demand
  // read that follows re-surfaces them at exactly the point the serial path
  // would have. No-op when the cache is disabled. Counts installed bytes in
  // bytes_from_medium but neither hits nor misses: the demand reads that
  // motivated the prefetch do their own accounting.
  void Prefetch(std::span<const std::pair<std::uint64_t, std::uint64_t>> ranges,
                std::uint64_t durable_limit);

  // Appends through to the medium. Serialized on the cache mutex so appends
  // and fills never race on a thread-unsafe medium. Cached blocks stay valid:
  // the medium is append-only, so existing bytes never change — a partial
  // trailing block is simply refilled when a longer read needs it. On failure
  // the cache is cleared (the medium may hold a torn suffix).
  Status AppendThrough(std::span<const std::byte> data);

  // Frame-validation memo: lets the log layer CRC-check a frame once per
  // cache residence. Memo entries live inside the block that holds the frame
  // (MarkValidated only records frames whose view is a still-current single-
  // block pin, so a memoized frame never spans blocks); a refill or eviction
  // replaces/drops the block and its memo together, so a memo hit always
  // refers to the exact bytes that were validated. Stitched views are simply
  // re-validated on their (rare) repeat reads.
  bool IsValidated(std::uint64_t frame_offset) const;
  void MarkValidated(std::uint64_t frame_offset, std::uint64_t frame_len, const View& view);

  // Toggling drops all cached blocks and memo entries; `false` degrades Read
  // to a pass-through (used by benchmarks to measure the uncached path).
  void SetEnabled(bool enabled);
  bool enabled() const;

  // Drops all cached blocks and memo entries. Outstanding views stay valid.
  void Clear();

  Stats StatsSnapshot() const;

 private:
  struct Block {
    std::shared_ptr<const std::vector<std::byte>> data;  // size may be < block_size at tail
    std::list<std::uint64_t>::iterator lru_it;
    // Start offsets of frames validated against `data` (a few dozen per
    // block; linear scans beat a global ordered map). Reset on refill.
    std::vector<std::uint64_t> validated_frames;
  };

  // All private helpers require mu_ held.
  Result<View> ReadRangeLocked(std::uint64_t offset, std::uint64_t len,
                               std::uint64_t durable_limit);
  Status FillRangeLocked(std::uint64_t first_block, std::uint64_t last_block,
                         std::uint64_t durable_limit, std::uint64_t demand_first,
                         std::uint64_t demand_last);
  bool IsValidatedLocked(std::uint64_t frame_offset) const;
  void TouchLocked(Block& block, std::uint64_t index);
  void EvictLocked();
  void ClearLocked();

  StableMedium* medium_;
  Config config_;

  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, Block> blocks_;
  std::list<std::uint64_t> lru_;  // front = most recently used block index
  // Last filled block run, for scan-direction detection.
  bool have_last_fill_ = false;
  std::uint64_t last_fill_first_ = 0;
  std::uint64_t last_fill_last_ = 0;
  Stats stats_;
};

}  // namespace argus

#endif  // SRC_STABLE_READ_CACHE_H_
