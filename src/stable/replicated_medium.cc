#include "src/stable/replicated_medium.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "src/common/codec.h"
#include "src/obs/metrics.h"

namespace argus {

namespace {

// Batch-shape ledger for the replicated backend: batched_bytes / read_batches
// is the mean scatter width the cache achieves over careful-storage pages.
struct ReplicatedMediumObs {
  obs::Counter* read_batches;
  obs::Counter* batched_bytes;

  static const ReplicatedMediumObs& Get() {
    static const ReplicatedMediumObs m{
        obs::GetCounter("stable.replicated.read_batches"),
        obs::GetCounter("stable.replicated.batched_bytes"),
    };
    return m;
  }
};

}  // namespace

ReplicatedStableMedium::ReplicatedStableMedium(std::uint32_t replicas, std::uint64_t seed)
    : store_(16, replicas, seed) {
  Status s = WriteSuperblock();
  ARGUS_CHECK_MSG(s.ok() || s.code() == ErrorCode::kUnavailable, "superblock init failed");
}

Status ReplicatedStableMedium::WriteSuperblock() {
  ByteWriter w;
  w.PutU64(durable_length_);
  w.PutU64(++epoch_);
  std::vector<std::byte> page(kDiskPageSize, std::byte{0});
  std::memcpy(page.data(), w.bytes().data(), w.bytes().size());
  return store_.AtomicWrite(0, std::span<const std::byte>(page.data(), page.size()));
}

Status ReplicatedStableMedium::ReadSuperblock() {
  std::array<std::byte, kDiskPageSize> page;
  Status s = store_.AtomicReadInto(0, std::span<std::byte>(page.data(), page.size()));
  if (!s.ok()) {
    return s;
  }
  ByteReader r(std::span<const std::byte>(page.data(), page.size()));
  Result<std::uint64_t> len = r.ReadU64();
  if (!len.ok()) {
    return len.status();
  }
  Result<std::uint64_t> epoch = r.ReadU64();
  if (!epoch.ok()) {
    return epoch.status();
  }
  durable_length_ = len.value();
  epoch_ = epoch.value();
  return Status::Ok();
}

Status ReplicatedStableMedium::Append(std::span<const std::byte> data) {
  std::uint64_t offset = durable_length_;
  std::uint64_t end = offset + data.size();
  std::size_t last_page = 1 + static_cast<std::size_t>((end == 0 ? 0 : end - 1) / kDataPerPage);
  store_.EnsurePageCount(last_page + 1);

  std::size_t consumed = 0;
  while (consumed < data.size()) {
    std::uint64_t abs = offset + consumed;
    std::size_t page_index = 1 + static_cast<std::size_t>(abs / kDataPerPage);
    std::size_t in_page = static_cast<std::size_t>(abs % kDataPerPage);
    std::size_t chunk = std::min(data.size() - consumed, kDataPerPage - in_page);

    std::array<std::byte, kDiskPageSize> page{};
    if (in_page != 0) {
      // Partial tail page: preserve the existing durable prefix. kNotFound
      // means the page was never written — keep the zero fill.
      Status existing =
          store_.AtomicReadInto(page_index, std::span<std::byte>(page.data(), page.size()));
      if (!existing.ok() && existing.code() != ErrorCode::kNotFound) {
        return existing;
      }
      if (!existing.ok()) {
        page.fill(std::byte{0});
      }
    }
    std::copy(data.begin() + static_cast<std::ptrdiff_t>(consumed),
              data.begin() + static_cast<std::ptrdiff_t>(consumed + chunk),
              page.begin() + static_cast<std::ptrdiff_t>(in_page));
    Status w = store_.AtomicWrite(page_index, std::span<const std::byte>(page.data(), page.size()));
    if (!w.ok()) {
      return w;
    }
    consumed += chunk;
  }

  durable_length_ = end;
  Status sb = WriteSuperblock();
  if (!sb.ok()) {
    // Superblock update did not complete: the append is not durable.
    durable_length_ = offset;
    return sb;
  }
  return Status::Ok();
}

Result<std::vector<std::byte>> ReplicatedStableMedium::Read(std::uint64_t offset,
                                                            std::uint64_t len) {
  std::vector<std::byte> out(len);
  Status s = ReadInto(offset, std::span<std::byte>(out.data(), out.size()));
  if (!s.ok()) {
    return s;
  }
  return out;
}

Status ReplicatedStableMedium::ReadInto(std::uint64_t offset, std::span<std::byte> out) {
  const std::uint64_t len = out.size();
  if (offset + len > durable_length_) {
    return Status::NotFound("read past durable extent");
  }
  // Bulk path: page-aligned chunks land straight in the output buffer;
  // partial head/tail pages go through a stack bounce buffer. Multi-page
  // reads (the read cache's block fills) pay no per-page allocation.
  std::array<std::byte, kDiskPageSize> bounce;
  std::uint64_t got = 0;
  while (got < len) {
    std::uint64_t abs = offset + got;
    std::size_t page_index = 1 + static_cast<std::size_t>(abs / kDataPerPage);
    std::size_t in_page = static_cast<std::size_t>(abs % kDataPerPage);
    std::uint64_t chunk = std::min<std::uint64_t>(len - got, kDataPerPage - in_page);
    if (chunk == kDataPerPage) {
      Status s = store_.AtomicReadInto(
          page_index, std::span<std::byte>(out.data() + got, kDataPerPage));
      if (!s.ok()) {
        return s;
      }
    } else {
      Status s = store_.AtomicReadInto(page_index,
                                       std::span<std::byte>(bounce.data(), bounce.size()));
      if (!s.ok()) {
        return s;
      }
      std::memcpy(out.data() + got, bounce.data() + in_page, static_cast<std::size_t>(chunk));
    }
    got += chunk;
  }
  return Status::Ok();
}

Status ReplicatedStableMedium::SubmitReads(std::span<ReadRequest> requests) {
  // Careful storage has no scatter primitive: each segment runs the full
  // quorum careful-read protocol (replica 0, then the rest on checksum
  // failure) on its own, so one decayed page degrades exactly one segment —
  // never the batch. The attempt-all loop matches the base-class contract;
  // the counters make the batch shape visible to benches.
  ReplicatedMediumObs::Get().read_batches->Increment();
  Status first = Status::Ok();
  for (ReadRequest& request : requests) {
    ReplicatedMediumObs::Get().batched_bytes->Add(request.out.size());
    request.status = ReadInto(request.offset, request.out);
    if (!request.status.ok() && first.ok()) {
      first = request.status;
    }
  }
  return first;
}

Status ReplicatedStableMedium::RecoverAfterCrash() {
  Result<std::size_t> repaired = store_.Repair();
  if (!repaired.ok()) {
    return repaired.status();
  }
  return ReadSuperblock();
}

}  // namespace argus
