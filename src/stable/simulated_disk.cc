#include "src/stable/simulated_disk.h"

#include <algorithm>

#include "src/obs/metrics.h"

namespace argus {

namespace {

// Process-wide media counters (all disks aggregated); per-disk counts stay on
// the instance (reads()/writes()). Handles resolve once.
struct DiskObs {
  obs::Counter* reads;
  obs::Counter* writes;
  obs::Counter* fault_tear;
  obs::Counter* fault_decay;
  obs::Counter* fault_transient;

  static const DiskObs& Get() {
    static const DiskObs m{
        obs::GetCounter("stable.disk.reads"),
        obs::GetCounter("stable.disk.writes"),
        obs::GetCounter("stable.disk.faults.tear"),
        obs::GetCounter("stable.disk.faults.decay"),
        obs::GetCounter("stable.disk.faults.transient"),
    };
    return m;
  }
};

}  // namespace

SimulatedDisk::SimulatedDisk(std::size_t page_count, std::uint64_t seed)
    : pages_(page_count), rng_(seed ^ 0xd1b54a32d192ed03ull) {}

Result<const DiskPage*> SimulatedDisk::CheckedPage(std::size_t page_index) {
  if (page_index >= pages_.size()) {
    return Status::InvalidArgument("page index out of range");
  }
  ++reads_;
  DiskObs::Get().reads->Increment();
  DiskPage& page = pages_[page_index];
  if (!page.ever_written) {
    return Status::NotFound("page never written");
  }
  if (rng_.NextBool(fault_plan_.transient_read_error_probability)) {
    DiskObs::Get().fault_transient->Increment();
    return Status::IoError("transient read fault");
  }
  if (rng_.NextBool(fault_plan_.decay_on_read_probability)) {
    DiskObs::Get().fault_decay->Increment();
    CorruptPage(page_index);
  }
  if (!page.IntactCrc()) {
    return Status::Corruption("page crc mismatch");
  }
  return static_cast<const DiskPage*>(&page);
}

Result<std::vector<std::byte>> SimulatedDisk::ReadPage(std::size_t page_index) {
  Result<const DiskPage*> page = CheckedPage(page_index);
  if (!page.ok()) {
    return page.status();
  }
  return page.value()->data;
}

Status SimulatedDisk::ReadPageInto(std::size_t page_index, std::span<std::byte> out) {
  ARGUS_CHECK(out.size() >= kDiskPageSize);
  Result<const DiskPage*> page = CheckedPage(page_index);
  if (!page.ok()) {
    return page.status();
  }
  std::copy(page.value()->data.begin(), page.value()->data.end(), out.begin());
  return Status::Ok();
}

Status SimulatedDisk::WritePage(std::size_t page_index, std::span<const std::byte> data) {
  if (page_index >= pages_.size()) {
    return Status::InvalidArgument("page index out of range");
  }
  if (data.size() != kDiskPageSize) {
    return Status::InvalidArgument("partial page write");
  }
  bool torn = (fault_plan_.tear_write_at >= 0 && writes_since_plan_ == fault_plan_.tear_write_at) ||
              rng_.NextBool(fault_plan_.tear_probability);
  ++writes_since_plan_;
  ++writes_;
  DiskObs::Get().writes->Increment();
  DiskPage& page = pages_[page_index];
  page.ever_written = true;
  if (torn) {
    DiskObs::Get().fault_tear->Increment();
    // A prefix lands; the CRC on the platter is stale/garbage.
    std::size_t landed = kDiskPageSize / 2;
    page.data.assign(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(landed));
    page.data.resize(kDiskPageSize, std::byte{0xee});
    page.stored_crc = 0xdeadbeef;
    return Status::Unavailable("crash during page write");
  }
  page.data.assign(data.begin(), data.end());
  page.stored_crc = Crc32(data);
  return Status::Ok();
}

void SimulatedDisk::CorruptPage(std::size_t page_index) {
  ARGUS_CHECK(page_index < pages_.size());
  DiskPage& page = pages_[page_index];
  page.ever_written = true;
  page.data.resize(kDiskPageSize, std::byte{0});
  page.data[0] ^= std::byte{0xff};
  page.stored_crc ^= 0x1;
}

bool SimulatedDisk::PageIsBad(std::size_t page_index) const {
  ARGUS_CHECK(page_index < pages_.size());
  const DiskPage& page = pages_[page_index];
  return page.ever_written && !page.IntactCrc();
}

}  // namespace argus
