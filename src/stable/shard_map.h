// The shard map: the small piece of durable state that is recovered *first*
// when a guardian's stable state is partitioned across N log shards.
//
// Routing must be stable across crashes — a version written to shard 2 must be
// looked for on shard 2 after restart — so the routing parameters (shard
// count, hash salt, and any explicit uid pinnings) live in their own tiny
// durable store, separate from the logs they route to. The store is
// append-only and versioned: updating the map appends a new record, recovery
// scans forward and adopts the newest intact record, and a torn or decayed
// tail record falls back to the previous version (the same
// newest-intact-prefix discipline the stable log itself uses).

#ifndef SRC_STABLE_SHARD_MAP_H_
#define SRC_STABLE_SHARD_MAP_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/ids.h"
#include "src/common/result.h"
#include "src/stable/stable_medium.h"

namespace argus {

// One version of the routing function. `overrides` pins individual uids to a
// shard regardless of the hash (reserved for future rebalancing; empty today).
struct ShardMapRecord {
  std::uint64_t version = 0;
  std::uint32_t num_shards = 1;
  std::uint64_t salt = 0;
  std::vector<std::pair<Uid, std::uint32_t>> overrides;

  friend bool operator==(const ShardMapRecord&, const ShardMapRecord&) = default;
};

// Codec for a single record. The encoding is self-checking: magic, format
// version, body, then a CRC32 over everything before it.
std::vector<std::byte> EncodeShardMapRecord(const ShardMapRecord& record);
Result<ShardMapRecord> DecodeShardMapRecord(std::span<const std::byte> payload);

// Pure routing over one ShardMapRecord. Uid::Root() always routes to shard 0
// so the stable-variables root (and with it a fresh guardian's first entries)
// has a well-known home. Actions also get a deterministic "home" shard, which
// is where their outcome records go.
class ShardRouter {
 public:
  explicit ShardRouter(ShardMapRecord record);

  std::uint32_t ShardOf(Uid uid) const;
  std::uint32_t HomeShardOf(ActionId aid) const;
  std::uint32_t num_shards() const { return record_.num_shards; }
  const ShardMapRecord& record() const { return record_; }

 private:
  ShardMapRecord record_;
  std::unordered_map<Uid, std::uint32_t> overrides_;
};

// Durable, versioned storage for ShardMapRecords on its own StableMedium.
// Append-only: Put() frames and appends one record; Recover() re-reads the
// medium and returns the newest record that decodes cleanly. Not thread-safe;
// callers serialize (the map only changes at guardian creation today).
class ShardMapStore {
 public:
  explicit ShardMapStore(std::unique_ptr<StableMedium> medium);

  Status Put(const ShardMapRecord& record);

  // Runs the medium's crash recovery, then scans all frames from the start
  // and returns the newest intact record. NotFound if no record survives.
  Result<ShardMapRecord> Recover();

  StableMedium& medium() { return *medium_; }

 private:
  std::unique_ptr<StableMedium> medium_;
};

}  // namespace argus

#endif  // SRC_STABLE_SHARD_MAP_H_
