// A minimal io_uring wrapper for batched file reads, written against the raw
// kernel ABI (linux/io_uring.h + three syscalls) so no userspace library is
// required. One engine owns one ring; FileStableMedium drives it from
// SubmitReads: every segment of a scatter batch becomes one IORING_OP_READ
// SQE, the whole batch is submitted with a single io_uring_enter, and
// completions are polled off the CQ ring. The kernel services the reads in
// parallel, which is what lets recovery's decode/CRC work overlap in-flight
// disk I/O.
//
// Environments matter: containers and older kernels may refuse io_uring_setup
// (ENOSYS, EPERM under seccomp). TryCreate returns nullptr in that case and
// the caller falls back to the preadv path — the ARGUS_IO_URING=OFF build
// compiles this translation unit down to that stub unconditionally.

#ifndef SRC_STABLE_IO_URING_ENGINE_H_
#define SRC_STABLE_IO_URING_ENGINE_H_

#include <memory>
#include <span>

#include "src/common/result.h"
#include "src/stable/stable_medium.h"

namespace argus {

class IoUringEngine {
 public:
  // Builds a ring with at least `entries` submission slots. Returns nullptr
  // when the kernel (or the sandbox) does not support io_uring — callers must
  // treat that as "use the synchronous fallback", never as an error.
  static std::unique_ptr<IoUringEngine> TryCreate(unsigned entries = 64);

  ~IoUringEngine();

  IoUringEngine(const IoUringEngine&) = delete;
  IoUringEngine& operator=(const IoUringEngine&) = delete;

  // Submits one read per request against `fd` and blocks until every
  // completion has been reaped. Batches larger than the ring are chained in
  // ring-sized waves. Per-request statuses are written in place; short
  // completions are finished synchronously with pread so a request's `out` is
  // either fully filled or carries a non-Ok status. Returns the first
  // (lowest-index) failure.
  Status SubmitAndWait(int fd, std::span<ReadRequest> requests);

 private:
  struct Rings;  // mmap'd SQ/CQ geometry; hidden so the header stays ABI-free

  explicit IoUringEngine(int ring_fd, std::unique_ptr<Rings> rings);

  int ring_fd_ = -1;
  std::unique_ptr<Rings> rings_;
};

}  // namespace argus

#endif  // SRC_STABLE_IO_URING_ENGINE_H_
