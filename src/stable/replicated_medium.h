// StableMedium over a ReplicatedStore.
//
// Layout: logical page 0 is the superblock: [durable_length u64][epoch u64],
// padded to the page size. Data bytes live on pages 1..N at
// page = 1 + offset / kDataPerPage. An Append writes the affected data pages
// (read-modify-write for the partial tail page), then atomically updates the
// superblock. A crash before the superblock update leaves the old durable
// length — the half-written tail is simply not part of the log, which is
// exactly the "write is atomic: completely written or not written at all"
// property of §1.1.
//
// The replica count is a constructor knob: N=2 is the historical
// Lampson-Sturgis duplexed pair (see DuplexedStableMedium in
// duplexed_medium.h, now a shim over this class), N>=3 buys decay tolerance
// proportional to N-1 and makes whole-disk replacement survivable via the
// store's online re-silver path.

#ifndef SRC_STABLE_REPLICATED_MEDIUM_H_
#define SRC_STABLE_REPLICATED_MEDIUM_H_

#include <memory>

#include "src/stable/replicated_store.h"
#include "src/stable/stable_medium.h"

namespace argus {

class ReplicatedStableMedium : public StableMedium {
 public:
  explicit ReplicatedStableMedium(std::uint32_t replicas, std::uint64_t seed = 0);

  Status Append(std::span<const std::byte> data) override;
  Result<std::vector<std::byte>> Read(std::uint64_t offset, std::uint64_t len) override;
  Status ReadInto(std::uint64_t offset, std::span<std::byte> out) override;
  Status SubmitReads(std::span<ReadRequest> requests) override;
  std::uint64_t durable_size() const override { return durable_length_; }
  Status RecoverAfterCrash() override;
  std::uint64_t physical_bytes_written() const override {
    return store_.physical_writes() * kDiskPageSize;
  }

  ReplicatedStore& store() { return store_; }

 private:
  static constexpr std::size_t kDataPerPage = kDiskPageSize;

  Status WriteSuperblock();
  Status ReadSuperblock();

  ReplicatedStore store_;
  std::uint64_t durable_length_ = 0;
  std::uint64_t epoch_ = 0;
};

}  // namespace argus

#endif  // SRC_STABLE_REPLICATED_MEDIUM_H_
