// The durable byte store underneath a stable log.
//
// A StableMedium is an append-only sequence of bytes with the property that
// once Append returns Ok, the appended bytes survive node crashes. The stable
// log layer (src/log) implements the write/force_write buffering of §3.1 on
// top of this: `write` only stages entries in volatile memory; `force_write`
// turns them into one Append call.
//
// Three implementations:
//  - InMemoryStableMedium: a byte vector; "durable" within the simulation
//    (survives Guardian::Crash, which only discards volatile state). Fast path
//    for tests and algorithm benchmarks.
//  - DuplexedStableMedium: bytes striped over a DuplexedStore with an
//    atomically updated superblock holding the durable length. Gives the
//    realistic 2x write amplification of §1.1 and survives torn writes.
//  - FileStableMedium: a real file with fsync; the "straightforward
//    file-backed log" deployment path.

#ifndef SRC_STABLE_STABLE_MEDIUM_H_
#define SRC_STABLE_STABLE_MEDIUM_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/result.h"

namespace argus {

// One segment of a scatter-gather batch read (see StableMedium::SubmitReads).
// The caller owns `out`; `status` is the per-segment completion, written by
// the medium when the batch executes.
struct ReadRequest {
  std::uint64_t offset = 0;
  std::span<std::byte> out;
  Status status = Status::Ok();
};

class StableMedium {
 public:
  virtual ~StableMedium() = default;

  // Durably appends `data` at the current end of the medium.
  virtual Status Append(std::span<const std::byte> data) = 0;

  // Reads `len` bytes starting at `offset`; the range must lie within the
  // durable extent.
  virtual Result<std::vector<std::byte>> Read(std::uint64_t offset, std::uint64_t len) = 0;

  // Allocation-free variant: fills `out` from `offset`. Bulk readers (the
  // block cache's fills) use this so a medium read lands directly in the
  // destination buffer. Default falls back to Read + copy.
  virtual Status ReadInto(std::uint64_t offset, std::span<std::byte> out) {
    Result<std::vector<std::byte>> r = Read(offset, out.size());
    if (!r.ok()) {
      return r.status();
    }
    std::copy(r.value().begin(), r.value().end(), out.begin());
    return Status::Ok();
  }

  // Scatter-gather batch read: the submission-queue shape of the read path.
  // Each request completes independently through its `status`; the return
  // value is the first (lowest-index) failure, Ok when every segment
  // succeeded. On return, every request's `status` is authoritative: Ok means
  // its buffer was fully read, and any request an implementation skipped or
  // abandoned (a batch-level failure, a rejected mixed batch) carries a
  // non-Ok status — a request must never keep a stale Ok over an unfilled
  // buffer.
  //
  // The default executes requests synchronously in submission order, so
  // deterministic media (simulated disks roll a fault rng once per read)
  // behave bit-identically to the equivalent ReadInto sequence. Overrides may
  // reorder or parallelize the physical I/O (preadv coalescing, io_uring
  // submission + completion polling) but must keep the per-request completion
  // contract so callers can fall back segment by segment, not per batch.
  virtual Status SubmitReads(std::span<ReadRequest> requests) {
    Status first = Status::Ok();
    for (ReadRequest& request : requests) {
      request.status = ReadInto(request.offset, request.out);
      if (!request.status.ok() && first.ok()) {
        first = request.status;
      }
    }
    return first;
  }

  // Number of durably stored bytes.
  virtual std::uint64_t durable_size() const = 0;

  // Crash-recovery hook (e.g. re-duplex pages). Default: nothing to do.
  virtual Status RecoverAfterCrash() { return Status::Ok(); }

  // Total bytes physically written (for write-amplification measurements).
  virtual std::uint64_t physical_bytes_written() const = 0;
};

class InMemoryStableMedium final : public StableMedium {
 public:
  Status Append(std::span<const std::byte> data) override {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
    physical_bytes_ += data.size();
    return Status::Ok();
  }

  Result<std::vector<std::byte>> Read(std::uint64_t offset, std::uint64_t len) override {
    if (offset + len > bytes_.size()) {
      return Status::NotFound("read past durable extent");
    }
    return std::vector<std::byte>(
        bytes_.begin() + static_cast<std::ptrdiff_t>(offset),
        bytes_.begin() + static_cast<std::ptrdiff_t>(offset + len));
  }

  Status ReadInto(std::uint64_t offset, std::span<std::byte> out) override {
    if (offset + out.size() > bytes_.size()) {
      return Status::NotFound("read past durable extent");
    }
    std::copy(bytes_.begin() + static_cast<std::ptrdiff_t>(offset),
              bytes_.begin() + static_cast<std::ptrdiff_t>(offset + out.size()), out.begin());
    return Status::Ok();
  }

  std::uint64_t durable_size() const override { return bytes_.size(); }
  std::uint64_t physical_bytes_written() const override { return physical_bytes_; }

 private:
  std::vector<std::byte> bytes_;
  std::uint64_t physical_bytes_ = 0;
};

}  // namespace argus

#endif  // SRC_STABLE_STABLE_MEDIUM_H_
