#include "src/stable/duplexed_store.h"

#include <algorithm>

#include "src/common/codec.h"
#include "src/obs/metrics.h"

namespace argus {

namespace {

struct DuplexObs {
  obs::Counter* repairs;        // pages re-duplexed by Repair()
  obs::Counter* replica_reads;  // reads that fell through to replica B

  static const DuplexObs& Get() {
    static const DuplexObs m{
        obs::GetCounter("stable.duplex.repaired_pages"),
        obs::GetCounter("stable.duplex.replica_b_reads"),
    };
    return m;
  }
};

}  // namespace

DuplexedStore::DuplexedStore(std::size_t page_count, std::uint64_t seed)
    : page_count_(page_count),
      disk_a_(std::make_unique<SimulatedDisk>(page_count, seed * 2 + 1)),
      disk_b_(std::make_unique<SimulatedDisk>(page_count, seed * 2 + 2)),
      careful_a_(disk_a_.get()),
      careful_b_(disk_b_.get()) {}

Status DuplexedStore::AtomicWrite(std::size_t page_index, std::span<const std::byte> data) {
  Status a = careful_a_.CarefulWrite(page_index, data);
  if (!a.ok()) {
    // If the machine crashed mid-write on A, B still has the old value; the
    // logical page is unchanged. Report the crash upward.
    return a;
  }
  Status b = careful_b_.CarefulWrite(page_index, data);
  if (!b.ok()) {
    // A already holds the new value; a crash here is fine (read prefers A,
    // and Repair() will re-duplex). Still reported so the caller knows the
    // machine went down.
    return b;
  }
  return Status::Ok();
}

Result<std::vector<std::byte>> DuplexedStore::AtomicRead(std::size_t page_index) {
  Result<std::vector<std::byte>> a = careful_a_.CarefulRead(page_index);
  if (a.ok()) {
    return a;
  }
  Result<std::vector<std::byte>> b = careful_b_.CarefulRead(page_index);
  if (b.ok()) {
    DuplexObs::Get().replica_reads->Increment();
    return b;
  }
  if (a.status().code() == ErrorCode::kNotFound && b.status().code() == ErrorCode::kNotFound) {
    return Status::NotFound("page never written");
  }
  return Status::Corruption("both replicas unreadable");
}

Status DuplexedStore::AtomicReadInto(std::size_t page_index, std::span<std::byte> out) {
  Status a = careful_a_.CarefulReadInto(page_index, out);
  if (a.ok()) {
    return a;
  }
  Status b = careful_b_.CarefulReadInto(page_index, out);
  if (b.ok()) {
    DuplexObs::Get().replica_reads->Increment();
    return b;
  }
  if (a.code() == ErrorCode::kNotFound && b.code() == ErrorCode::kNotFound) {
    return Status::NotFound("page never written");
  }
  return Status::Corruption("both replicas unreadable");
}

Result<std::size_t> DuplexedStore::Repair() {
  std::size_t repaired = 0;
  for (std::size_t i = 0; i < page_count_; ++i) {
    Result<std::vector<std::byte>> a = careful_a_.CarefulRead(i);
    Result<std::vector<std::byte>> b = careful_b_.CarefulRead(i);
    if (a.ok() && b.ok()) {
      if (!std::equal(a.value().begin(), a.value().end(), b.value().begin())) {
        // A write completed on A but not B: A is the newer value.
        Status s = careful_b_.CarefulWrite(i, AsSpan(a.value()));
        if (!s.ok()) {
          return s;
        }
        ++repaired;
      }
      continue;
    }
    if (a.ok() && b.status().code() == ErrorCode::kCorruption) {
      Status s = careful_b_.CarefulWrite(i, AsSpan(a.value()));
      if (!s.ok()) {
        return s;
      }
      ++repaired;
    } else if (b.ok() && a.status().code() == ErrorCode::kCorruption) {
      Status s = careful_a_.CarefulWrite(i, AsSpan(b.value()));
      if (!s.ok()) {
        return s;
      }
      ++repaired;
    } else if (!a.ok() && !b.ok() && a.status().code() == ErrorCode::kCorruption &&
               b.status().code() == ErrorCode::kCorruption) {
      return Status::Corruption("page lost on both replicas");
    }
    // not-found on both: never written, nothing to do.
  }
  DuplexObs::Get().repairs->Add(repaired);
  return repaired;
}

}  // namespace argus
