// File-backed StableMedium: appends go to a regular file and are made durable
// with fdatasync. This is the deployment path for running the recovery system
// against a real filesystem; crash simulation in tests uses the in-memory and
// duplexed media instead (a real file cannot be "un-written").

#ifndef SRC_STABLE_FILE_MEDIUM_H_
#define SRC_STABLE_FILE_MEDIUM_H_

#include <memory>
#include <string>

#include "src/stable/stable_medium.h"

namespace argus {

class FileStableMedium final : public StableMedium {
 public:
  // Opens (creating if needed) the file at `path`. Existing contents become
  // the durable extent, so re-opening a log file resumes it.
  static Result<std::unique_ptr<FileStableMedium>> Open(const std::string& path);

  ~FileStableMedium() override;

  FileStableMedium(const FileStableMedium&) = delete;
  FileStableMedium& operator=(const FileStableMedium&) = delete;

  Status Append(std::span<const std::byte> data) override;
  Result<std::vector<std::byte>> Read(std::uint64_t offset, std::uint64_t len) override;
  std::uint64_t durable_size() const override { return durable_size_; }
  std::uint64_t physical_bytes_written() const override { return physical_bytes_; }

 private:
  FileStableMedium(int fd, std::uint64_t size) : fd_(fd), durable_size_(size) {}

  int fd_;
  std::uint64_t durable_size_;
  std::uint64_t physical_bytes_ = 0;
};

}  // namespace argus

#endif  // SRC_STABLE_FILE_MEDIUM_H_
