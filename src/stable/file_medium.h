// File-backed StableMedium: appends go to a regular file and are made durable
// with fdatasync. This is the deployment path for running the recovery system
// against a real filesystem; crash simulation in tests uses the in-memory and
// duplexed media instead (a real file cannot be "un-written").
//
// Reads come in three gears, visible in the stable.file.* counters:
//  - ReadInto: one pread per call (the per-page baseline).
//  - SubmitReads with kPreadv: adjacent segments of a batch are coalesced
//    into iovec runs, one preadv syscall per contiguous run.
//  - SubmitReads with kIoUring (Linux, runtime-detected): the whole batch is
//    submitted to an io_uring in one io_uring_enter and completions are
//    polled, so the kernel overlaps the segment reads.
// kAuto picks io_uring when the kernel/sandbox allows it, else preadv. The
// ARGUS_IO_URING=OFF build compiles the engine down to a stub, so kAuto and
// kIoUring degrade to preadv — the fallback path stays compiled and tested.

#ifndef SRC_STABLE_FILE_MEDIUM_H_
#define SRC_STABLE_FILE_MEDIUM_H_

#include <memory>
#include <mutex>
#include <string>

#include "src/stable/stable_medium.h"

namespace argus {

class IoUringEngine;

class FileStableMedium final : public StableMedium {
 public:
  enum class BatchMode {
    kAuto,     // io_uring when available at runtime, else preadv
    kPreadv,   // vectored synchronous batches
    kIoUring,  // io_uring or bust (degrades to preadv when unavailable)
    kSerial,   // one pread per segment — the unbatched baseline, for benches
  };

  // Opens (creating if needed) the file at `path`. Existing contents become
  // the durable extent, so re-opening a log file resumes it.
  static Result<std::unique_ptr<FileStableMedium>> Open(const std::string& path,
                                                        BatchMode mode = BatchMode::kAuto);

  ~FileStableMedium() override;

  FileStableMedium(const FileStableMedium&) = delete;
  FileStableMedium& operator=(const FileStableMedium&) = delete;

  Status Append(std::span<const std::byte> data) override;
  Result<std::vector<std::byte>> Read(std::uint64_t offset, std::uint64_t len) override;
  Status ReadInto(std::uint64_t offset, std::span<std::byte> out) override;
  // Thread-safe: batches from concurrent callers are serialized on an internal
  // mutex (the io_uring SQ/CQ is single-submitter). ReadInto stays lock-free.
  Status SubmitReads(std::span<ReadRequest> requests) override;
  std::uint64_t durable_size() const override { return durable_size_; }
  std::uint64_t physical_bytes_written() const override { return physical_bytes_; }

  // True when SubmitReads is actually driving an io_uring (kAuto/kIoUring and
  // the runtime probe succeeded). Benches use this to label their matrix.
  bool io_uring_active() const { return uring_ != nullptr; }

 private:
  FileStableMedium(int fd, std::uint64_t size);  // out-of-line: uring_ needs the full type

  Status SubmitPreadv(std::span<ReadRequest> requests);

  int fd_;
  std::mutex submit_mu_;  // serializes SubmitReads batches (uring is single-submitter)
  std::uint64_t durable_size_;
  std::uint64_t physical_bytes_ = 0;
  BatchMode mode_ = BatchMode::kAuto;
  std::unique_ptr<IoUringEngine> uring_;
};

}  // namespace argus

#endif  // SRC_STABLE_FILE_MEDIUM_H_
