// The historical duplexed StableMedium: the N=2 configuration of
// ReplicatedStableMedium (see replicated_medium.h for the superblock layout
// and append/read protocol). Kept as a distinct type so existing call sites
// and factories read naturally; it adds nothing beyond pinning the replica
// count to the Lampson-Sturgis pair.

#ifndef SRC_STABLE_DUPLEXED_MEDIUM_H_
#define SRC_STABLE_DUPLEXED_MEDIUM_H_

#include "src/stable/duplexed_store.h"
#include "src/stable/replicated_medium.h"

namespace argus {

class DuplexedStableMedium final : public ReplicatedStableMedium {
 public:
  explicit DuplexedStableMedium(std::uint64_t seed = 0)
      : ReplicatedStableMedium(/*replicas=*/2, seed) {}
};

}  // namespace argus

#endif  // SRC_STABLE_DUPLEXED_MEDIUM_H_
