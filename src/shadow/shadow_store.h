// The pure shadowing baseline of §1.2.1.
//
// Storage is a pointer to a map associating object uids with the stable
// addresses of their current versions. An action's new versions are written
// without overwriting the shadowed versions; commit writes a NEW COPY OF THE
// WHOLE MAP and switches the map pointer in one atomic step. Because the map
// is rewritten at every commit, writing cost grows with the total number of
// objects — the disadvantage the thesis cites — while recovery only reads the
// map and the versions it points at, which is why recovery is fast.
//
// Distribution support (two-phase commit) adds the intentions records the
// thesis describes: prepare appends the new versions plus an intentions
// record; the map carries the list of in-doubt actions so a restarted
// participant still knows it is prepared.
//
// Object versions are opaque byte strings here: the baseline is compared with
// the log organizations at the storage layer, where both move flattened
// bytes.

#ifndef SRC_SHADOW_SHADOW_STORE_H_
#define SRC_SHADOW_SHADOW_STORE_H_

#include <map>
#include <memory>
#include <optional>

#include "src/common/codec.h"
#include "src/common/ids.h"
#include "src/stable/stable_medium.h"

namespace argus {

struct ShadowStats {
  std::uint64_t versions_written = 0;
  std::uint64_t maps_written = 0;
  std::uint64_t map_bytes_written = 0;
  std::uint64_t forces = 0;
};

class ShadowStore {
 public:
  explicit ShadowStore(std::unique_ptr<StableMedium> medium);

  // Writes the new versions and an intentions record, durably. After this
  // returns the participant is prepared for `aid`.
  Status Prepare(ActionId aid,
                 const std::vector<std::pair<Uid, std::vector<std::byte>>>& versions);

  // Installs `aid`'s intentions into the map, rewrites the whole map, and
  // atomically switches the map pointer (the commit point).
  Status Commit(ActionId aid);

  // Discards `aid`'s intentions (also a map rewrite, to clear the in-doubt
  // entry).
  Status Abort(ActionId aid);

  // Reads the current version of an object through the map.
  Result<std::vector<std::byte>> ReadObject(Uid uid) const;

  // Restores the map and in-doubt set after a crash. Returns the number of
  // objects in the map. Everything not reachable from the map pointer is
  // garbage.
  Result<std::size_t> Recover();

  // In-doubt (prepared, undecided) actions.
  std::vector<ActionId> InDoubtActions() const;

  std::size_t object_count() const { return map_.size(); }
  const ShadowStats& stats() const { return stats_; }
  std::uint64_t bytes_on_medium() const { return medium_->durable_size(); }

 private:
  struct Intent {
    std::map<Uid, std::uint64_t> versions;  // uid → version record offset
  };

  Status WriteMapAndSwitch();
  Result<std::uint64_t> AppendRecord(std::span<const std::byte> payload);

  std::unique_ptr<StableMedium> medium_;
  // The volatile mirror of the durable map (rebuilt by Recover()).
  std::map<Uid, std::uint64_t> map_;
  std::map<ActionId, Intent> in_doubt_;
  // Simulates the atomically updatable stable map pointer. In a real system
  // this is one duplexed cell; a crash never tears it.
  std::optional<std::uint64_t> map_pointer_;
  ShadowStats stats_;
};

}  // namespace argus

#endif  // SRC_SHADOW_SHADOW_STORE_H_
