#include "src/shadow/shadow_store.h"

#include <array>

namespace argus {
namespace {

enum class RecordType : std::uint8_t {
  kVersion = 1,
  kMap = 2,
};

}  // namespace

ShadowStore::ShadowStore(std::unique_ptr<StableMedium> medium) : medium_(std::move(medium)) {
  ARGUS_CHECK(medium_ != nullptr);
}

Result<std::uint64_t> ShadowStore::AppendRecord(std::span<const std::byte> payload) {
  std::uint64_t offset = medium_->durable_size();
  ByteWriter frame;
  frame.PutU32(static_cast<std::uint32_t>(payload.size()));
  frame.PutBytes(payload);
  Status s = medium_->Append(AsSpan(frame.bytes()));
  if (!s.ok()) {
    return s;
  }
  ++stats_.forces;
  return offset;
}

Status ShadowStore::Prepare(ActionId aid,
                            const std::vector<std::pair<Uid, std::vector<std::byte>>>& versions) {
  Intent intent;
  for (const auto& [uid, bytes] : versions) {
    ByteWriter w;
    w.PutU8(static_cast<std::uint8_t>(RecordType::kVersion));
    w.PutUid(uid);
    w.PutBlob(AsSpan(bytes));
    Result<std::uint64_t> offset = AppendRecord(AsSpan(w.bytes()));
    if (!offset.ok()) {
      return offset.status();
    }
    intent.versions[uid] = offset.value();
    ++stats_.versions_written;
  }
  in_doubt_[aid] = std::move(intent);
  // The prepared state must survive a crash: rewrite the map with the new
  // in-doubt entry. (This is the distribution tax of the shadowing scheme —
  // the thesis notes a log is also required once data is distributed.)
  return WriteMapAndSwitch();
}

Status ShadowStore::Commit(ActionId aid) {
  auto it = in_doubt_.find(aid);
  if (it != in_doubt_.end()) {
    for (const auto& [uid, offset] : it->second.versions) {
      map_[uid] = offset;
    }
    in_doubt_.erase(it);
  }
  return WriteMapAndSwitch();
}

Status ShadowStore::Abort(ActionId aid) {
  if (in_doubt_.erase(aid) == 0) {
    return Status::Ok();  // nothing durable to undo
  }
  return WriteMapAndSwitch();
}

Status ShadowStore::WriteMapAndSwitch() {
  ByteWriter w;
  w.PutU8(static_cast<std::uint8_t>(RecordType::kMap));
  w.PutVarint(map_.size());
  for (const auto& [uid, offset] : map_) {
    w.PutUid(uid);
    w.PutU64(offset);
  }
  w.PutVarint(in_doubt_.size());
  for (const auto& [aid, intent] : in_doubt_) {
    w.PutActionId(aid);
    w.PutVarint(intent.versions.size());
    for (const auto& [uid, offset] : intent.versions) {
      w.PutUid(uid);
      w.PutU64(offset);
    }
  }
  stats_.map_bytes_written += w.size();
  Result<std::uint64_t> offset = AppendRecord(AsSpan(w.bytes()));
  if (!offset.ok()) {
    return offset.status();
  }
  ++stats_.maps_written;
  // The atomic pointer switch: the commit point.
  map_pointer_ = offset.value();
  return Status::Ok();
}

Result<std::vector<std::byte>> ShadowStore::ReadObject(Uid uid) const {
  auto it = map_.find(uid);
  if (it == map_.end()) {
    return Status::NotFound("no such object " + to_string(uid));
  }
  std::array<std::byte, 4> header;
  Status hs = medium_->ReadInto(it->second, std::span<std::byte>(header.data(), header.size()));
  if (!hs.ok()) {
    return hs;
  }
  ByteReader hr(std::span<const std::byte>(header.data(), header.size()));
  Result<std::uint32_t> len = hr.ReadU32();
  if (!len.ok()) {
    return len.status();
  }
  std::vector<std::byte> payload(len.value());
  Status ps = medium_->ReadInto(it->second + 4,
                                std::span<std::byte>(payload.data(), payload.size()));
  if (!ps.ok()) {
    return ps;
  }
  ByteReader r(AsSpan(payload));
  Result<std::uint8_t> type = r.ReadU8();
  if (!type.ok()) {
    return type.status();
  }
  if (static_cast<RecordType>(type.value()) != RecordType::kVersion) {
    return Status::Corruption("map points at a non-version record");
  }
  Result<Uid> stored = r.ReadUid();
  if (!stored.ok()) {
    return stored.status();
  }
  if (stored.value() != uid) {
    return Status::Corruption("version record uid mismatch");
  }
  return r.ReadBlob();
}

Result<std::size_t> ShadowStore::Recover() {
  map_.clear();
  in_doubt_.clear();
  if (!map_pointer_.has_value()) {
    return std::size_t{0};  // nothing ever committed or prepared
  }
  std::array<std::byte, 4> header;
  Status hs = medium_->ReadInto(*map_pointer_, std::span<std::byte>(header.data(), header.size()));
  if (!hs.ok()) {
    return hs;
  }
  ByteReader hr(std::span<const std::byte>(header.data(), header.size()));
  Result<std::uint32_t> len = hr.ReadU32();
  if (!len.ok()) {
    return len.status();
  }
  std::vector<std::byte> payload(len.value());
  Status ps = medium_->ReadInto(*map_pointer_ + 4,
                                std::span<std::byte>(payload.data(), payload.size()));
  if (!ps.ok()) {
    return ps;
  }
  ByteReader r(AsSpan(payload));
  Result<std::uint8_t> type = r.ReadU8();
  if (!type.ok()) {
    return type.status();
  }
  if (static_cast<RecordType>(type.value()) != RecordType::kMap) {
    return Status::Corruption("map pointer does not reference a map record");
  }
  Result<std::uint64_t> count = r.ReadVarint();
  if (!count.ok()) {
    return count.status();
  }
  for (std::uint64_t i = 0; i < count.value(); ++i) {
    Result<Uid> uid = r.ReadUid();
    if (!uid.ok()) {
      return uid.status();
    }
    Result<std::uint64_t> offset = r.ReadU64();
    if (!offset.ok()) {
      return offset.status();
    }
    map_[uid.value()] = offset.value();
  }
  Result<std::uint64_t> doubt_count = r.ReadVarint();
  if (!doubt_count.ok()) {
    return doubt_count.status();
  }
  for (std::uint64_t i = 0; i < doubt_count.value(); ++i) {
    Result<ActionId> aid = r.ReadActionId();
    if (!aid.ok()) {
      return aid.status();
    }
    Result<std::uint64_t> n = r.ReadVarint();
    if (!n.ok()) {
      return n.status();
    }
    Intent intent;
    for (std::uint64_t k = 0; k < n.value(); ++k) {
      Result<Uid> uid = r.ReadUid();
      if (!uid.ok()) {
        return uid.status();
      }
      Result<std::uint64_t> offset = r.ReadU64();
      if (!offset.ok()) {
        return offset.status();
      }
      intent.versions[uid.value()] = offset.value();
    }
    in_doubt_[aid.value()] = std::move(intent);
  }
  return map_.size();
}

std::vector<ActionId> ShadowStore::InDoubtActions() const {
  std::vector<ActionId> out;
  out.reserve(in_doubt_.size());
  for (const auto& [aid, intent] : in_doubt_) {
    out.push_back(aid);
  }
  return out;
}

}  // namespace argus
