// Unit tests for CRC32 and the deterministic RNG.

#include <gtest/gtest.h>

#include "src/common/crc32.h"
#include "src/common/ids.h"
#include "src/common/rng.h"

namespace argus {
namespace {

std::vector<std::byte> AsBytes(const std::string& s) {
  std::vector<std::byte> out;
  for (char c : s) {
    out.push_back(std::byte{static_cast<unsigned char>(c)});
  }
  return out;
}

TEST(Crc32, KnownVector) {
  // CRC-32/ISO-HDLC of "123456789" is 0xCBF43926.
  std::vector<std::byte> data = AsBytes("123456789");
  EXPECT_EQ(Crc32(std::span<const std::byte>(data.data(), data.size())), 0xcbf43926u);
}

TEST(Crc32, EmptyInput) {
  EXPECT_EQ(Crc32({}), 0u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  std::vector<std::byte> data = AsBytes("the hybrid log organization");
  std::span<const std::byte> all(data.data(), data.size());
  std::uint32_t one_shot = Crc32(all);
  std::uint32_t state = kCrc32Init;
  state = Crc32Update(state, all.subspan(0, 10));
  state = Crc32Update(state, all.subspan(10));
  EXPECT_EQ(Crc32Finish(state), one_shot);
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::vector<std::byte> data = AsBytes("stable storage");
  std::uint32_t before = Crc32(std::span<const std::byte>(data.data(), data.size()));
  data[3] ^= std::byte{0x01};
  std::uint32_t after = Crc32(std::span<const std::byte>(data.data(), data.size()));
  EXPECT_NE(before, after);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(10), 10u);
  }
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    std::uint64_t v = rng.NextInRange(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextBoolExtremes) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Ids, ToStringForms) {
  EXPECT_EQ(to_string(Uid{5}), "O5");
  EXPECT_EQ(to_string(Uid::Invalid()), "O<invalid>");
  EXPECT_EQ(to_string(GuardianId{2}), "G2");
  EXPECT_EQ(to_string(ActionId{GuardianId{1}, 9}), "T9@G1");
  EXPECT_EQ(to_string(LogAddress{12}), "L12");
  EXPECT_EQ(to_string(LogAddress::Null()), "L<null>");
}

TEST(Ids, Ordering) {
  EXPECT_LT(Uid{1}, Uid{2});
  EXPECT_LT(LogAddress{5}, LogAddress{6});
  EXPECT_TRUE(LogAddress{5} < LogAddress::Null());  // null is the max sentinel
}

}  // namespace
}  // namespace argus
