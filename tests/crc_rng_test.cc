// Unit tests for CRC32 and the deterministic RNG.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <vector>

#include "src/common/crc32.h"
#include "src/common/ids.h"
#include "src/common/rng.h"

namespace argus {
namespace {

std::vector<std::byte> AsBytes(const std::string& s) {
  std::vector<std::byte> out;
  for (char c : s) {
    out.push_back(std::byte{static_cast<unsigned char>(c)});
  }
  return out;
}

TEST(Crc32, KnownVector) {
  // CRC-32/ISO-HDLC of "123456789" is 0xCBF43926.
  std::vector<std::byte> data = AsBytes("123456789");
  EXPECT_EQ(Crc32(std::span<const std::byte>(data.data(), data.size())), 0xcbf43926u);
}

TEST(Crc32, EmptyInput) {
  EXPECT_EQ(Crc32({}), 0u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  std::vector<std::byte> data = AsBytes("the hybrid log organization");
  std::span<const std::byte> all(data.data(), data.size());
  std::uint32_t one_shot = Crc32(all);
  std::uint32_t state = kCrc32Init;
  state = Crc32Update(state, all.subspan(0, 10));
  state = Crc32Update(state, all.subspan(10));
  EXPECT_EQ(Crc32Finish(state), one_shot);
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::vector<std::byte> data = AsBytes("stable storage");
  std::uint32_t before = Crc32(std::span<const std::byte>(data.data(), data.size()));
  data[3] ^= std::byte{0x01};
  std::uint32_t after = Crc32(std::span<const std::byte>(data.data(), data.size()));
  EXPECT_NE(before, after);
}

// Reference byte-at-a-time loop with the single classic table; the production
// slice-by-8 kernel must be bit-identical to it for every input, or the frame
// wire format silently changes and old logs stop recovering.
std::uint32_t ScalarCrc32Update(std::uint32_t state, std::span<const std::byte> data) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  for (std::byte b : data) {
    state = table[(state ^ static_cast<std::uint8_t>(b)) & 0xff] ^ (state >> 8);
  }
  return state;
}

TEST(Crc32, SliceBy8MatchesScalarOnMultiMegabyteRandomBuffer) {
  Rng rng(0x5eedc4c);
  std::vector<std::byte> data(3 * 1024 * 1024 + 7);  // odd tail exercises the byte loop
  for (std::byte& b : data) {
    b = std::byte{static_cast<unsigned char>(rng.NextU64() & 0xff)};
  }
  std::span<const std::byte> all(data.data(), data.size());
  EXPECT_EQ(Crc32(all), Crc32Finish(ScalarCrc32Update(kCrc32Init, all)));
}

TEST(Crc32, SliceBy8MatchesScalarAtEveryAlignmentAndShortLength) {
  Rng rng(99);
  std::vector<std::byte> data(256);
  for (std::byte& b : data) {
    b = std::byte{static_cast<unsigned char>(rng.NextU64() & 0xff)};
  }
  for (std::size_t offset = 0; offset < 16; ++offset) {
    for (std::size_t len = 0; len < 32; ++len) {
      std::span<const std::byte> s(data.data() + offset, len);
      EXPECT_EQ(Crc32(s), Crc32Finish(ScalarCrc32Update(kCrc32Init, s)))
          << "offset=" << offset << " len=" << len;
    }
  }
}

TEST(Crc32, IncrementalChunkingInvariance) {
  Rng rng(1234);
  std::vector<std::byte> data(4096 + 3);
  for (std::byte& b : data) {
    b = std::byte{static_cast<unsigned char>(rng.NextU64() & 0xff)};
  }
  std::span<const std::byte> all(data.data(), data.size());
  std::uint32_t one_shot = Crc32(all);
  for (std::size_t chunk : {1u, 3u, 7u, 8u, 13u, 64u, 1000u}) {
    std::uint32_t state = kCrc32Init;
    for (std::size_t i = 0; i < all.size(); i += chunk) {
      state = Crc32Update(state, all.subspan(i, std::min(chunk, all.size() - i)));
    }
    EXPECT_EQ(Crc32Finish(state), one_shot) << "chunk=" << chunk;
  }
}

// Flips the active implementation for one scope; every test leaves the
// process-wide default untouched.
class ScopedCrc32Impl {
 public:
  explicit ScopedCrc32Impl(Crc32Impl impl) : saved_(GetCrc32Impl()) { SetCrc32Impl(impl); }
  ~ScopedCrc32Impl() { SetCrc32Impl(saved_); }

 private:
  Crc32Impl saved_;
};

TEST(Crc32Hardware, KnownVectorUnderEveryImpl) {
  std::vector<std::byte> data = AsBytes("123456789");
  std::span<const std::byte> all(data.data(), data.size());
  for (Crc32Impl impl : {Crc32Impl::kSliceBy8, Crc32Impl::kByteTable, Crc32Impl::kHardware}) {
    ScopedCrc32Impl scoped(impl);
    EXPECT_EQ(Crc32(all), 0xcbf43926u) << "impl=" << static_cast<int>(impl);
  }
}

TEST(Crc32Hardware, MatchesSliceBy8OnRandomBuffers) {
  // The hardware path folds 64-byte blocks and hands head/tail bytes to
  // slice-by-8, so cover lengths around all those boundaries. On machines
  // without the instructions kHardware silently runs slice-by-8 — the
  // equality below then holds trivially, which is exactly the contract.
  Rng rng(0xc4c);
  for (std::size_t len : {0u, 1u, 7u, 8u, 63u, 64u, 65u, 127u, 128u, 191u, 256u, 4096u, 65537u}) {
    std::vector<std::byte> data(len + 1);
    for (std::byte& b : data) {
      b = std::byte{static_cast<unsigned char>(rng.NextU64() & 0xff)};
    }
    for (std::size_t offset = 0; offset < (len == 0 ? 1u : 2u); ++offset) {
      std::span<const std::byte> s(data.data() + offset, len);
      std::uint32_t sw;
      std::uint32_t hw;
      {
        ScopedCrc32Impl scoped(Crc32Impl::kSliceBy8);
        sw = Crc32(s);
      }
      {
        ScopedCrc32Impl scoped(Crc32Impl::kHardware);
        hw = Crc32(s);
      }
      EXPECT_EQ(sw, hw) << "len=" << len << " offset=" << offset;
    }
  }
}

TEST(Crc32Hardware, IncrementalMatchesOneShot) {
  ScopedCrc32Impl scoped(Crc32Impl::kHardware);
  Rng rng(77);
  std::vector<std::byte> data(1000);
  for (std::byte& b : data) {
    b = std::byte{static_cast<unsigned char>(rng.NextU64() & 0xff)};
  }
  std::span<const std::byte> all(data.data(), data.size());
  std::uint32_t one_shot = Crc32(all);
  std::uint32_t state = kCrc32Init;
  for (std::size_t i = 0; i < all.size(); i += 130) {
    state = Crc32Update(state, all.subspan(i, std::min<std::size_t>(130, all.size() - i)));
  }
  EXPECT_EQ(Crc32Finish(state), one_shot);
}

TEST(Crc32Hardware, AvailabilityIsStableAndDefaultIsConsistent) {
  // The probe must answer the same thing every time (it is cached), and the
  // process default must be kHardware exactly when the CPU supports it.
  const bool available = Crc32HardwareAvailable();
  EXPECT_EQ(Crc32HardwareAvailable(), available);
  // The default impl was chosen before any test flipped it; both test
  // fixtures above restore it, so it still reflects startup state.
  Crc32Impl def = GetCrc32Impl();
  if (available) {
    EXPECT_EQ(def, Crc32Impl::kHardware);
  } else {
    EXPECT_EQ(def, Crc32Impl::kSliceBy8);
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(10), 10u);
  }
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    std::uint64_t v = rng.NextInRange(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextBoolExtremes) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Ids, ToStringForms) {
  EXPECT_EQ(to_string(Uid{5}), "O5");
  EXPECT_EQ(to_string(Uid::Invalid()), "O<invalid>");
  EXPECT_EQ(to_string(GuardianId{2}), "G2");
  EXPECT_EQ(to_string(ActionId{GuardianId{1}, 9}), "T9@G1");
  EXPECT_EQ(to_string(LogAddress{12}), "L12");
  EXPECT_EQ(to_string(LogAddress::Null()), "L<null>");
}

TEST(Ids, Ordering) {
  EXPECT_LT(Uid{1}, Uid{2});
  EXPECT_LT(LogAddress{5}, LogAddress{6});
  EXPECT_TRUE(LogAddress{5} < LogAddress::Null());  // null is the max sentinel
}

}  // namespace
}  // namespace argus
