// Tests for the residency subsystem: clock eviction of committed base
// versions to log-address stubs, fault-in through the batched read path,
// pinning by in-flight actions, and the interplay with recovery and
// checkpointing. See src/residency/residency_manager.h.

#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/recovery/debug.h"
#include "src/residency/residency_manager.h"
#include "src/residency/residency_service.h"
#include "tests/test_support.h"

namespace argus {
namespace {

// A payload big enough that a handful of objects dwarfs a ~1KB budget.
Value BigPayload(char fill, std::size_t n = 2048) { return Value::Str(std::string(n, fill)); }

RecoverySystemConfig ResidencyConfigWith(std::uint64_t budget) {
  RecoverySystemConfig config = MemConfig(LogMode::kHybrid);
  config.residency.mem_budget_bytes = budget;
  return config;
}

TEST(Residency, DisabledWhenBudgetIsZero) {
  StorageHarness h(MemConfig(LogMode::kHybrid));
  EXPECT_EQ(h.rs().residency(), nullptr);
}

TEST(Residency, EvictAndFaultRoundTrip) {
  StorageHarness h(ResidencyConfigWith(1024));
  ResidencyManager* rm = h.rs().residency();
  ASSERT_NE(rm, nullptr);

  ActionId a1 = Aid(1);
  RecoverableObject* obj = h.ctx(a1).CreateAtomic(h.heap(), BigPayload('a'));
  ASSERT_TRUE(h.BindStable(a1, "x", obj).ok());
  ASSERT_TRUE(h.PrepareAndCommit(a1).ok());

  ASSERT_GT(rm->RunEvictionPass(), 0u);
  EXPECT_TRUE(obj->evicted());
  EXPECT_GE(rm->stats().evictions, 1u);
  EXPECT_LT(rm->resident_bytes(), 2048u) << "the 2KB payload should be gone";

  // First touch through a bound context faults the value back in.
  ActionId a2 = Aid(2);
  h.ctx(a2).BindResidency(rm);
  Result<Value> v = h.ctx(a2).ReadObject(obj);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v.value(), BigPayload('a'));
  EXPECT_FALSE(obj->evicted());
  EXPECT_GE(rm->stats().faults, 1u);
  EXPECT_GE(rm->stats().fault_batches, 1u);
  h.ctx(a2).AbortVolatile(h.heap());
}

TEST(Residency, LockedAndPinnedObjectsAreSkipped) {
  StorageHarness h(ResidencyConfigWith(512));
  ResidencyManager* rm = h.rs().residency();
  ASSERT_NE(rm, nullptr);

  ActionId a1 = Aid(1);
  RecoverableObject* obj = h.ctx(a1).CreateAtomic(h.heap(), BigPayload('b'));
  ASSERT_TRUE(h.BindStable(a1, "x", obj).ok());
  ASSERT_TRUE(h.PrepareAndCommit(a1).ok());

  // A write lock (and the pin the touch installed) blocks demotion.
  ActionId a2 = Aid(2);
  h.ctx(a2).BindResidency(rm);
  ASSERT_TRUE(h.ctx(a2).WriteObject(obj, BigPayload('c')).ok());
  std::uint64_t skips_before = rm->stats().pinned_skips;
  rm->RunEvictionPass();
  EXPECT_FALSE(obj->evicted());
  EXPECT_GT(rm->stats().pinned_skips, skips_before);

  // Abort releases lock and pin; the object becomes evictable again.
  h.ctx(a2).AbortVolatile(h.heap());
  ASSERT_GT(rm->RunEvictionPass(), 0u);
  EXPECT_TRUE(obj->evicted());
}

TEST(Residency, PassConvergesBelowHighWatermark) {
  StorageHarness h(ResidencyConfigWith(4096));
  ResidencyManager* rm = h.rs().residency();
  ASSERT_NE(rm, nullptr);

  // 16 x 2KB objects: working set ~8x the budget.
  ActionId a1 = Aid(1);
  for (int i = 0; i < 16; ++i) {
    RecoverableObject* obj =
        h.ctx(a1).CreateAtomic(h.heap(), BigPayload(static_cast<char>('a' + i)));
    ASSERT_TRUE(h.BindStable(a1, "slot" + std::to_string(i), obj).ok());
  }
  ASSERT_TRUE(h.PrepareAndCommit(a1).ok());

  ASSERT_GT(rm->RunEvictionPass(), 0u);
  EXPECT_LE(rm->resident_bytes(), rm->high_watermark_bytes());
  EXPECT_GE(rm->stats().eviction_passes, 1u);

  // Every slot still reads back correctly through faults.
  ActionId a2 = Aid(2);
  h.ctx(a2).BindResidency(rm);
  for (int i = 0; i < 16; ++i) {
    RecoverableObject* obj = h.StableVar("slot" + std::to_string(i));
    ASSERT_NE(obj, nullptr) << i;
    Result<Value> v = h.ctx(a2).ReadObject(obj);
    ASSERT_TRUE(v.ok()) << i << ": " << v.status().ToString();
    EXPECT_EQ(v.value(), BigPayload(static_cast<char>('a' + i))) << i;
  }
  h.ctx(a2).AbortVolatile(h.heap());
}

TEST(Residency, SecondChanceSparesRecentlyReferencedObjects) {
  RecoverySystemConfig config = ResidencyConfigWith(256);  // permanent pressure
  config.residency.max_evictions_per_pass = 1;
  StorageHarness h(config);
  ResidencyManager* rm = h.rs().residency();
  ASSERT_NE(rm, nullptr);

  ActionId a1 = Aid(1);
  RecoverableObject* hot = h.ctx(a1).CreateAtomic(h.heap(), BigPayload('h', 512));
  RecoverableObject* cold = h.ctx(a1).CreateAtomic(h.heap(), BigPayload('c', 512));
  ASSERT_TRUE(h.BindStable(a1, "hot", hot).ok());
  ASSERT_TRUE(h.BindStable(a1, "cold", cold).ok());
  ASSERT_TRUE(h.PrepareAndCommit(a1).ok());

  // The creating action referenced both, so the first pass burns both bits
  // on lap one and second-laps into the lowest uid (`hot`).
  ASSERT_EQ(rm->RunEvictionPass(), 1u);
  EXPECT_TRUE(hot->evicted());
  EXPECT_FALSE(cold->evicted());

  // Fault `hot` back: the read marks it referenced; `cold`'s bit stays clear.
  ActionId a2 = Aid(2);
  h.ctx(a2).BindResidency(rm);
  ASSERT_TRUE(h.ctx(a2).ReadObject(hot).ok());
  h.ctx(a2).AbortVolatile(h.heap());

  // The set bit buys the recently-read object a lap — the clock demotes the
  // unreferenced one instead.
  ASSERT_EQ(rm->RunEvictionPass(), 1u);
  EXPECT_TRUE(cold->evicted());
  EXPECT_FALSE(hot->evicted());

  // The spared object's bit was consumed; the next pass takes it.
  ASSERT_EQ(rm->RunEvictionPass(), 1u);
  EXPECT_TRUE(hot->evicted());
}

TEST(Residency, MutexObjectsEvictAndRefault) {
  StorageHarness h(ResidencyConfigWith(1024));
  ResidencyManager* rm = h.rs().residency();
  ASSERT_NE(rm, nullptr);

  ActionId a1 = Aid(1);
  RecoverableObject* mtx = h.ctx(a1).CreateMutex(h.heap(), BigPayload('m'));
  ASSERT_TRUE(h.BindStable(a1, "m", mtx).ok());
  ASSERT_TRUE(h.PrepareAndCommit(a1).ok());

  ASSERT_GT(rm->RunEvictionPass(), 0u);
  EXPECT_TRUE(mtx->evicted());

  ActionId a2 = Aid(2);
  h.ctx(a2).BindResidency(rm);
  Value seen;
  ASSERT_TRUE(h.ctx(a2).MutateMutex(mtx, [&](Value& v) { seen = v; }).ok());
  EXPECT_EQ(seen, BigPayload('m'));
  EXPECT_FALSE(mtx->evicted());
  h.ctx(a2).AbortVolatile(h.heap());
}

TEST(Residency, StubsKeepTheReferenceGraphTraversable) {
  StorageHarness h(ResidencyConfigWith(1024));
  ResidencyManager* rm = h.rs().residency();
  ASSERT_NE(rm, nullptr);

  ActionId a1 = Aid(1);
  RecoverableObject* inner = h.ctx(a1).CreateAtomic(h.heap(), BigPayload('i'));
  RecoverableObject* outer = h.ctx(a1).CreateAtomic(
      h.heap(), Value::OfList({Value::Str("pad"), Value::Ref(inner)}));
  ASSERT_TRUE(h.BindStable(a1, "outer", outer).ok());
  ASSERT_TRUE(h.PrepareAndCommit(a1).ok());

  ASSERT_GT(rm->RunEvictionPass(), 0u);
  EXPECT_TRUE(inner->evicted() || outer->evicted());

  // Accessibility traversal must see through stubs: both objects stay
  // reachable from the stable variables even while demoted.
  std::unordered_set<Uid> accessible = h.heap().ComputeAccessibleUids();
  EXPECT_GT(accessible.count(outer->uid()), 0u);
  EXPECT_GT(accessible.count(inner->uid()), 0u);
}

TEST(Residency, BatchFaultReadsEveryStubInOneSubmission) {
  StorageHarness h(ResidencyConfigWith(1024));
  ResidencyManager* rm = h.rs().residency();
  ASSERT_NE(rm, nullptr);

  ActionId a1 = Aid(1);
  std::vector<RecoverableObject*> objs;
  for (int i = 0; i < 8; ++i) {
    objs.push_back(
        h.ctx(a1).CreateAtomic(h.heap(), BigPayload(static_cast<char>('a' + i), 1024)));
    ASSERT_TRUE(h.BindStable(a1, "slot" + std::to_string(i), objs.back()).ok());
  }
  ASSERT_TRUE(h.PrepareAndCommit(a1).ok());
  ASSERT_GT(rm->RunEvictionPass(), 0u);
  std::uint64_t stubbed = 0;
  for (RecoverableObject* obj : objs) {
    stubbed += obj->evicted() ? 1u : 0u;
  }
  ASSERT_GT(stubbed, 1u) << "need several stubs to exercise batching";

  std::uint64_t batches_before = rm->stats().fault_batches;
  std::uint64_t faults_before = rm->stats().faults;
  std::uint64_t reads_before = rm->stats().fault_reads;
  ASSERT_TRUE(rm->MaterializeAll().ok());

  // Single shard: every stub comes back through ONE ReadMany submission, one
  // frame per object — no per-object round trips, no read amplification.
  EXPECT_EQ(rm->stats().faults - faults_before, stubbed);
  EXPECT_EQ(rm->stats().fault_batches - batches_before, 1u);
  EXPECT_EQ(rm->stats().fault_reads - reads_before, stubbed);
  for (RecoverableObject* obj : objs) {
    EXPECT_FALSE(obj->evicted());
  }
}

TEST(Residency, FaultPathTrafficShowsInSnapshotRollupOnly) {
  StorageHarness h(ResidencyConfigWith(1024));
  ResidencyManager* rm = h.rs().residency();
  ASSERT_NE(rm, nullptr);

  ActionId a1 = Aid(1);
  for (int i = 0; i < 4; ++i) {
    RecoverableObject* obj =
        h.ctx(a1).CreateAtomic(h.heap(), BigPayload(static_cast<char>('a' + i), 1024));
    ASSERT_TRUE(h.BindStable(a1, "slot" + std::to_string(i), obj).ok());
  }
  ASSERT_TRUE(h.PrepareAndCommit(a1).ok());
  ASSERT_GT(rm->RunEvictionPass(), 0u);
  ASSERT_TRUE(rm->MaterializeAll().ok());

  // The raw stats() reference never folds the ReadCache's counters in; the
  // log-pointer rollup overload snapshots each shard and must see the fault
  // traffic. This is the gap DumpShardedLogStats exists to close.
  StableLog& log = h.rs().log();
  LogStats unmerged = log.stats();
  LogStats merged = AggregateLogStats(std::vector<StableLog*>{&log});
  EXPECT_EQ(unmerged.cache_hits + unmerged.cache_misses, 0u)
      << "stats() merging cache counters would make the snapshot overload moot";
  EXPECT_GT(merged.cache_hits + merged.cache_misses, 0u);
  EXPECT_GE(merged.read_batches, 1u);
  std::string dump = DumpShardedLogStats(std::vector<StableLog*>{&log});
  EXPECT_NE(dump.find("rollup (1 shards)"), std::string::npos);
}

TEST(Residency, RecoveryPrimesStableAddressesForEviction) {
  StorageHarness h(ResidencyConfigWith(1024));

  ActionId a1 = Aid(1);
  RecoverableObject* obj = h.ctx(a1).CreateAtomic(h.heap(), BigPayload('r'));
  ASSERT_TRUE(h.BindStable(a1, "x", obj).ok());
  ASSERT_TRUE(h.PrepareAndCommit(a1).ok());

  ASSERT_TRUE(h.CrashAndRecover().ok());
  ResidencyManager* rm = h.rs().residency();
  ASSERT_NE(rm, nullptr);

  // The recovered object was restored from a durable frame (here the chained
  // base_committed entry of its creating action), so it must be demotable
  // without ever being re-logged.
  ASSERT_GT(rm->RunEvictionPass(), 0u);
  RecoverableObject* recovered = h.StableVar("x");
  ASSERT_NE(recovered, nullptr);
  EXPECT_TRUE(recovered->evicted());

  ActionId a2 = Aid(2);
  h.ctx(a2).BindResidency(rm);
  Result<Value> v = h.ctx(a2).ReadObject(recovered);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v.value(), BigPayload('r'));
  h.ctx(a2).AbortVolatile(h.heap());
}

TEST(Residency, CheckpointMaterializesStubsAndSurvivesTheSwap) {
  StorageHarness h(ResidencyConfigWith(1024));
  ResidencyManager* rm = h.rs().residency();
  ASSERT_NE(rm, nullptr);

  ActionId a1 = Aid(1);
  RecoverableObject* obj = h.ctx(a1).CreateAtomic(h.heap(), BigPayload('k'));
  ASSERT_TRUE(h.BindStable(a1, "x", obj).ok());
  ASSERT_TRUE(h.PrepareAndCommit(a1).ok());
  ASSERT_GT(rm->RunEvictionPass(), 0u);
  ASSERT_TRUE(obj->evicted());

  // The checkpoint must rematerialize the stub (old-log addresses die at the
  // swap) and the swapped world keeps working.
  ASSERT_TRUE(h.rs().Housekeep(HousekeepingMethod::kSnapshot).ok());
  EXPECT_FALSE(obj->evicted());
  EXPECT_EQ(obj->base_version(), BigPayload('k'));

  // Immediately after the swap nothing carries a stable address, so a pass
  // demotes nothing...
  EXPECT_EQ(rm->RunEvictionPass(), 0u);
  EXPECT_FALSE(obj->evicted());

  // ...but the next committed write re-addresses the object on the new log
  // and eviction resumes.
  ActionId a2 = Aid(2);
  h.ctx(a2).BindResidency(rm);
  ASSERT_TRUE(h.ctx(a2).WriteObject(obj, BigPayload('K')).ok());
  ASSERT_TRUE(h.PrepareAndCommit(a2).ok());
  ASSERT_GT(rm->RunEvictionPass(), 0u);
  EXPECT_TRUE(obj->evicted());

  ActionId a3 = Aid(3);
  h.ctx(a3).BindResidency(rm);
  Result<Value> v = h.ctx(a3).ReadObject(obj);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v.value(), BigPayload('K'));
  h.ctx(a3).AbortVolatile(h.heap());
}

TEST(Residency, PrefetchPullsLogNeighborsIntoTheCache) {
  StorageHarness h(ResidencyConfigWith(1024));
  ResidencyManager* rm = h.rs().residency();
  ASSERT_NE(rm, nullptr);

  // Commit several objects in one action: their frames are log-adjacent.
  ActionId a1 = Aid(1);
  std::vector<RecoverableObject*> objs;
  for (int i = 0; i < 6; ++i) {
    objs.push_back(
        h.ctx(a1).CreateAtomic(h.heap(), BigPayload(static_cast<char>('a' + i), 1024)));
    ASSERT_TRUE(h.BindStable(a1, "slot" + std::to_string(i), objs.back()).ok());
  }
  ASSERT_TRUE(h.PrepareAndCommit(a1).ok());
  ASSERT_GT(rm->RunEvictionPass(), 0u);

  // Fault the lowest-uid stub — its log neighbors are also evicted, so the
  // manager should queue a best-effort prefetch of their frames.
  ActionId a2 = Aid(2);
  h.ctx(a2).BindResidency(rm);
  std::size_t victim = 0;
  while (victim < objs.size() && !objs[victim]->evicted()) {
    ++victim;
  }
  ASSERT_LT(victim, objs.size()) << "expected at least one evicted slot";
  ASSERT_TRUE(h.ctx(a2).ReadObject(objs[victim]).ok());
  EXPECT_GE(rm->stats().prefetch_ranges, 1u);
  h.ctx(a2).AbortVolatile(h.heap());
}

TEST(Residency, BackgroundServiceShedsPressure) {
  StorageHarness h(ResidencyConfigWith(2048));
  ResidencyManager* rm = h.rs().residency();
  ASSERT_NE(rm, nullptr);

  ActionId a1 = Aid(1);
  for (int i = 0; i < 8; ++i) {
    RecoverableObject* obj =
        h.ctx(a1).CreateAtomic(h.heap(), BigPayload(static_cast<char>('a' + i)));
    ASSERT_TRUE(h.BindStable(a1, "slot" + std::to_string(i), obj).ok());
  }
  ASSERT_TRUE(h.PrepareAndCommit(a1).ok());

  std::mutex mu;
  ResidencyService service(
      rm,
      [&mu](const std::function<void()>& fn) {
        std::lock_guard<std::mutex> l(mu);
        fn();
      },
      ResidencyServiceConfig{});
  service.Start();
  for (int spins = 0; spins < 2000 && service.evictions() == 0; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  service.Stop();
  EXPECT_GT(service.evictions(), 0u);
  {
    std::lock_guard<std::mutex> l(mu);
    EXPECT_LE(rm->resident_bytes(), rm->high_watermark_bytes());
  }
}

}  // namespace
}  // namespace argus
