// Shared helpers for the test suite.

#ifndef TESTS_TEST_SUPPORT_H_
#define TESTS_TEST_SUPPORT_H_

#include <cstdio>
#include <map>
#include <memory>

#include <gtest/gtest.h>

#include "src/object/action_context.h"
#include "src/obs/trace.h"
#include "src/recovery/recovery_system.h"
#include "src/stable/stable_medium.h"

namespace argus {

// Dumps every thread's flight recorder to stderr if the enclosing test has
// failed by the time this guard is destroyed. Property tests with seeded
// randomness put one at the top of the test body: a failing seed then ships
// its last few hundred events with the failure output.
class ScopedFlightRecorderDumpOnFailure {
 public:
  ScopedFlightRecorderDumpOnFailure() = default;
  ~ScopedFlightRecorderDumpOnFailure() {
    if (testing::Test::HasFailure()) {
      std::fputs("test failed; dumping flight recorders\n", stderr);
      obs::DumpFlightRecordersTo(stderr);
    }
  }

  ScopedFlightRecorderDumpOnFailure(const ScopedFlightRecorderDumpOnFailure&) = delete;
  ScopedFlightRecorderDumpOnFailure& operator=(const ScopedFlightRecorderDumpOnFailure&) = delete;
};

inline ActionId Aid(std::uint64_t sequence, std::uint32_t coordinator = 0) {
  return ActionId{GuardianId{coordinator}, sequence};
}

inline std::unique_ptr<StableLog> MakeMemLog() {
  return std::make_unique<StableLog>(std::make_unique<InMemoryStableMedium>());
}

inline RecoverySystemConfig MemConfig(LogMode mode) {
  RecoverySystemConfig config;
  config.mode = mode;
  config.medium_factory = [] { return std::make_unique<InMemoryStableMedium>(); };
  return config;
}

// A single guardian's storage stack without the network: heap + recovery
// system, with crash/restart support for recovery-algorithm tests.
class StorageHarness {
 public:
  explicit StorageHarness(LogMode mode) : StorageHarness(MemConfig(mode)) {}

  // Full-config variant (duplexed media, group commit, ...); the same config
  // rebuilds the stack after CrashAndRecover().
  explicit StorageHarness(RecoverySystemConfig config) : config_(std::move(config)) {
    heap_ = std::make_unique<VolatileHeap>();
    rs_ = std::make_unique<RecoverySystem>(config_, heap_.get());
  }

  VolatileHeap& heap() { return *heap_; }
  RecoverySystem& rs() { return *rs_; }

  ActionContext& ctx(ActionId aid) {
    auto it = contexts_.find(aid);
    if (it == contexts_.end()) {
      it = contexts_.emplace(aid, ActionContext(aid)).first;
    }
    return it->second;
  }

  // Participant-style full commit: prepare + commit, volatile install.
  Status PrepareAndCommit(ActionId aid) {
    Status s = rs_->Prepare(aid, ctx(aid).TakeMos());
    if (!s.ok()) {
      return s;
    }
    s = rs_->Commit(aid);
    if (!s.ok()) {
      return s;
    }
    ctx(aid).CommitVolatile(*heap_);
    contexts_.erase(aid);
    return Status::Ok();
  }

  Status PrepareOnly(ActionId aid) { return rs_->Prepare(aid, ctx(aid).TakeMos()); }

  Status AbortPrepared(ActionId aid) {
    Status s = rs_->Abort(aid);
    if (!s.ok()) {
      return s;
    }
    ctx(aid).AbortVolatile(*heap_);
    contexts_.erase(aid);
    return Status::Ok();
  }

  // Destroys all volatile state and recovers from the surviving log.
  Result<RecoveryInfo> CrashAndRecover() {
    std::unique_ptr<StableLog> log = rs_->TakeLog();
    rs_.reset();
    heap_.reset();
    contexts_.clear();
    heap_ = std::make_unique<VolatileHeap>();
    rs_ = std::make_unique<RecoverySystem>(config_, heap_.get(), std::move(log));
    return rs_->Recover();
  }

  // The committed value of stable variable `name`, or nullptr.
  RecoverableObject* StableVar(const std::string& name) {
    const Value& root = heap_->root()->base_version();
    if (!root.is_record()) {
      return nullptr;
    }
    auto it = root.as_record().find(name);
    if (it == root.as_record().end() || !it->second.is_ref()) {
      return nullptr;
    }
    return it->second.as_ref();
  }

  // Binds stable variable `name` to `obj` within action `aid`.
  Status BindStable(ActionId aid, const std::string& name, RecoverableObject* obj) {
    return ctx(aid).UpdateObject(heap_->root(), [&](Value& record) {
      record.as_record()[name] = Value::Ref(obj);
    });
  }

 private:
  RecoverySystemConfig config_;
  std::unique_ptr<VolatileHeap> heap_;
  std::unique_ptr<RecoverySystem> rs_;
  std::map<ActionId, ActionContext> contexts_;
};

}  // namespace argus

#endif  // TESTS_TEST_SUPPORT_H_
