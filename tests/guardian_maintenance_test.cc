// Tests for guardian-level maintenance: the attached checkpoint policy fires
// during operation, survives crashes, and never disturbs client state.

#include <gtest/gtest.h>

#include "src/tpc/sim_world.h"
#include "tests/test_support.h"

namespace argus {
namespace {

SimWorldConfig MakeConfig() {
  SimWorldConfig config;
  config.guardian_count = 2;
  config.mode = LogMode::kHybrid;
  config.seed = 41;
  return config;
}

void SeedVar(SimWorld& world, GuardianId gid, const std::string& name, std::int64_t value) {
  Result<Guardian::ActionFate> fate =
      world.RunTopAction(gid, [&](SimWorld& w, ActionId aid) -> Status {
        return w.RunAt(aid, gid, [&](Guardian& g, ActionContext& ctx) -> Status {
          RecoverableObject* obj = ctx.CreateAtomic(g.heap(), Value::Int(value));
          return g.SetStableVariable(aid, name, obj);
        });
      });
  ASSERT_TRUE(fate.ok());
  ASSERT_EQ(fate.value(), Guardian::ActionFate::kCommitted);
}

Status Bump(SimWorld& world, ActionId aid, GuardianId gid) {
  return world.RunAt(aid, gid, [&](Guardian& g, ActionContext& ctx) -> Status {
    Result<RecoverableObject*> v = g.GetStableVariable(aid, "x");
    if (!v.ok()) {
      return v.status();
    }
    return ctx.UpdateObject(v.value(), [](Value& b) { b = Value::Int(b.as_int() + 1); });
  });
}

TEST(GuardianMaintenance, PolicyFiresAndBoundsTheLog) {
  SimWorld world(MakeConfig());
  SeedVar(world, GuardianId{1}, "x", 0);
  CheckpointPolicyConfig policy;
  policy.log_growth_bytes = 4096;
  world.guardian(1).ConfigureMaintenance(policy);

  int checkpoints = 0;
  for (int i = 0; i < 100; ++i) {
    Result<Guardian::ActionFate> fate =
        world.RunTopAction(GuardianId{0}, [&](SimWorld& w, ActionId aid) -> Status {
          (void)w;
          return Bump(world, aid, GuardianId{1});
        });
    ASSERT_TRUE(fate.ok());
    ASSERT_EQ(fate.value(), Guardian::ActionFate::kCommitted);
    Result<bool> ran = world.guardian(1).MaintenanceTick();
    ASSERT_TRUE(ran.ok());
    if (ran.value()) {
      ++checkpoints;
    }
  }
  EXPECT_GT(checkpoints, 2);
  // The log stays bounded well below 100 actions' worth of entries.
  EXPECT_LT(world.guardian(1).recovery().log().durable_size(), 12u * 1024u);
  // And the state is right after a crash.
  world.guardian(1).Crash();
  ASSERT_TRUE(world.guardian(1).Restart().ok());
  world.Pump();
  EXPECT_EQ(world.guardian(1).CommittedStableVariable("x")->base_version(), Value::Int(100));
}

TEST(GuardianMaintenance, TickWithoutPolicyIsNoop) {
  SimWorld world(MakeConfig());
  Result<bool> ran = world.guardian(0).MaintenanceTick();
  ASSERT_TRUE(ran.ok());
  EXPECT_FALSE(ran.value());
}

TEST(GuardianMaintenance, PolicySurvivesCrashRestart) {
  SimWorld world(MakeConfig());
  SeedVar(world, GuardianId{1}, "x", 0);
  CheckpointPolicyConfig policy;
  policy.log_growth_bytes = 4096;
  world.guardian(1).ConfigureMaintenance(policy);

  world.guardian(1).Crash();
  ASSERT_TRUE(world.guardian(1).Restart().ok());
  world.Pump();

  // The re-armed policy still fires against the new incarnation's log.
  int checkpoints = 0;
  for (int i = 0; i < 60; ++i) {
    Result<Guardian::ActionFate> fate =
        world.RunTopAction(GuardianId{0}, [&](SimWorld& w, ActionId aid) -> Status {
          (void)w;
          return Bump(world, aid, GuardianId{1});
        });
    ASSERT_TRUE(fate.ok());
    Result<bool> ran = world.guardian(1).MaintenanceTick();
    ASSERT_TRUE(ran.ok());
    if (ran.value()) {
      ++checkpoints;
    }
  }
  EXPECT_GT(checkpoints, 0);
  EXPECT_EQ(world.guardian(1).CommittedStableVariable("x")->base_version(), Value::Int(60));
}

TEST(GuardianMaintenance, TickWhileCrashedIsNoop) {
  SimWorld world(MakeConfig());
  CheckpointPolicyConfig policy;
  policy.log_growth_bytes = 1;
  world.guardian(1).ConfigureMaintenance(policy);
  world.guardian(1).Crash();
  Result<bool> ran = world.guardian(1).MaintenanceTick();
  ASSERT_TRUE(ran.ok());
  EXPECT_FALSE(ran.value());
  ASSERT_TRUE(world.guardian(1).Restart().ok());
}

}  // namespace
}  // namespace argus
