#include <gtest/gtest.h>
TEST(Placeholder_property_test, Pending) { SUCCEED(); }
