// Figure 3-5 end to end: the thesis's motivating example for newly
// accessible objects, driven through the REAL writing algorithm (not a
// hand-built log), then crashed and recovered. Both log organizations must
// land in exactly the Step 8 state:
//
//   1. X→O1, Y→O2 committed (by T1)
//   2. T2 write-locks O1; creates O3; O1's new version points at O3
//   3. T3 write-locks O2; its new version points at O3 too
//   4. T2 modifies O3
//   5. T2 prepares            → O1 current, bc(O3 base), O3 current logged
//   6. T3 prepares            → O2 current logged (O3 already accessible)
//   7. T2 aborts
//   8. T3 commits
//   9. crash
//
// "Even though T2 aborted, object O3 must be recovered after a crash because
// it is needed for T3."

#include <gtest/gtest.h>

#include "tests/test_support.h"

namespace argus {
namespace {

class Figure3_5Test : public testing::TestWithParam<LogMode> {};

INSTANTIATE_TEST_SUITE_P(BothLogs, Figure3_5Test,
                         testing::Values(LogMode::kSimple, LogMode::kHybrid),
                         [](const auto& info) {
                           return info.param == LogMode::kSimple ? "simple" : "hybrid";
                         });

TEST_P(Figure3_5Test, NewlyAccessibleObjectSurvivesCreatorAbort) {
  StorageHarness h(GetParam());

  // Step 1: T1 establishes X→O1, Y→O2, committed.
  ActionId t1 = Aid(1);
  RecoverableObject* o1 = h.ctx(t1).CreateAtomic(h.heap(), Value::Int(100));
  RecoverableObject* o2 = h.ctx(t1).CreateAtomic(h.heap(), Value::Int(200));
  ASSERT_TRUE(h.BindStable(t1, "X", o1).ok());
  ASSERT_TRUE(h.BindStable(t1, "Y", o2).ok());
  ASSERT_TRUE(h.PrepareAndCommit(t1).ok());

  // Step 2: T2 creates O3 (read lock) and re-points O1 at it.
  ActionId t2 = Aid(2);
  RecoverableObject* o3 = h.ctx(t2).CreateAtomic(h.heap(), Value::Int(300));
  ASSERT_TRUE(h.ctx(t2).WriteObject(h.StableVar("X"), Value::Ref(o3)).ok());

  // Step 3: T3 re-points O2 at O3 as well.
  ActionId t3 = Aid(3);
  ASSERT_TRUE(h.ctx(t3).WriteObject(h.StableVar("Y"), Value::Ref(o3)).ok());

  // Step 4: T2 modifies O3 (upgrade: T2 is the sole reader).
  ASSERT_TRUE(h.ctx(t2).WriteObject(o3, Value::Int(333)).ok());

  // Step 5: T2 prepares. Step 6: T3 prepares.
  ASSERT_TRUE(h.PrepareOnly(t2).ok());
  ASSERT_TRUE(h.PrepareOnly(t3).ok());

  // Step 7: T2 aborts. Step 8: T3 commits.
  ASSERT_TRUE(h.AbortPrepared(t2).ok());
  ASSERT_TRUE(h.rs().Commit(t3).ok());
  h.ctx(t3).CommitVolatile(h.heap());

  // Step 9: crash, recover.
  Result<RecoveryInfo> info = h.CrashAndRecover();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.value().pt.at(t2), ParticipantState::kAborted);
  EXPECT_EQ(info.value().pt.at(t3), ParticipantState::kCommitted);

  // X→O1: T2 aborted, so O1 keeps its original committed value.
  RecoverableObject* rx = h.StableVar("X");
  ASSERT_NE(rx, nullptr);
  EXPECT_EQ(rx->base_version(), Value::Int(100));
  EXPECT_FALSE(rx->locked());

  // Y→O2: committed by T3, pointing at O3.
  RecoverableObject* ry = h.StableVar("Y");
  ASSERT_NE(ry, nullptr);
  ASSERT_TRUE(ry->base_version().is_ref());
  RecoverableObject* ro3 = ry->base_version().as_ref();

  // O3 survives with its BASE version: T2's modification (333) aborted with
  // T2; the base (300) is what T3's committed reference needs.
  EXPECT_EQ(ro3->base_version(), Value::Int(300));
  EXPECT_FALSE(ro3->has_current());
  EXPECT_FALSE(ro3->locked());
}

TEST_P(Figure3_5Test, CreatorCommitsInsteadKeepsModifiedValue) {
  // Control history: T2 COMMITS instead of aborting — O3's current version
  // (333) must become its base.
  StorageHarness h(GetParam());
  ActionId t1 = Aid(1);
  RecoverableObject* o1 = h.ctx(t1).CreateAtomic(h.heap(), Value::Int(100));
  RecoverableObject* o2 = h.ctx(t1).CreateAtomic(h.heap(), Value::Int(200));
  ASSERT_TRUE(h.BindStable(t1, "X", o1).ok());
  ASSERT_TRUE(h.BindStable(t1, "Y", o2).ok());
  ASSERT_TRUE(h.PrepareAndCommit(t1).ok());

  ActionId t2 = Aid(2);
  RecoverableObject* o3 = h.ctx(t2).CreateAtomic(h.heap(), Value::Int(300));
  ASSERT_TRUE(h.ctx(t2).WriteObject(h.StableVar("X"), Value::Ref(o3)).ok());
  ActionId t3 = Aid(3);
  ASSERT_TRUE(h.ctx(t3).WriteObject(h.StableVar("Y"), Value::Ref(o3)).ok());
  ASSERT_TRUE(h.ctx(t2).WriteObject(o3, Value::Int(333)).ok());

  ASSERT_TRUE(h.PrepareOnly(t2).ok());
  ASSERT_TRUE(h.PrepareOnly(t3).ok());
  ASSERT_TRUE(h.rs().Commit(t2).ok());
  h.ctx(t2).CommitVolatile(h.heap());
  ASSERT_TRUE(h.rs().Commit(t3).ok());
  h.ctx(t3).CommitVolatile(h.heap());

  ASSERT_TRUE(h.CrashAndRecover().ok());
  RecoverableObject* rx = h.StableVar("X");
  ASSERT_TRUE(rx->base_version().is_ref());
  EXPECT_EQ(rx->base_version().as_ref()->base_version(), Value::Int(333));
  RecoverableObject* ry = h.StableVar("Y");
  ASSERT_TRUE(ry->base_version().is_ref());
  // X and Y share the restored O3 (sharing preserved, §2.4.3).
  EXPECT_EQ(rx->base_version().as_ref(), ry->base_version().as_ref());
}

}  // namespace
}  // namespace argus
