// Tests for incremental accessibility-set trimming (§3.3.3.2) and for
// two-phase commit under random message reordering.

#include <gtest/gtest.h>

#include "src/recovery/as_trimmer.h"
#include "src/tpc/sim_world.h"
#include "tests/test_support.h"

namespace argus {
namespace {

// Builds a chain root -> o0 -> o1 -> ... -> o{n-1} plus `garbage` unlinked
// uids left in the AS.
void BuildChain(StorageHarness& h, int n) {
  ActionId t0 = Aid(1);
  RecoverableObject* prev = nullptr;
  for (int i = n - 1; i >= 0; --i) {
    Value v = prev == nullptr ? Value::Int(i) : Value::Ref(prev);
    prev = h.ctx(t0).CreateAtomic(h.heap(), std::move(v));
  }
  ASSERT_TRUE(h.BindStable(t0, "chain", prev).ok());
  ASSERT_TRUE(h.PrepareAndCommit(t0).ok());
}

TEST(AsTrimmer, CompletesInBoundedSteps) {
  StorageHarness h(LogMode::kHybrid);
  BuildChain(h, 20);
  IncrementalAsTrimmer trimmer(&h.rs().writer(), &h.heap());
  trimmer.Start();
  EXPECT_TRUE(trimmer.running());
  int steps = 0;
  while (!trimmer.Step(3)) {
    ++steps;
    ASSERT_LT(steps, 100);
  }
  EXPECT_FALSE(trimmer.running());
  EXPECT_EQ(trimmer.objects_visited(), 21u);  // chain + root
}

TEST(AsTrimmer, DropsUnreachableUids) {
  StorageHarness h(LogMode::kHybrid);
  BuildChain(h, 5);
  // Make an object stable, then unlink it: its uid lingers in the AS.
  ActionId t1 = Aid(10);
  RecoverableObject* doomed = h.ctx(t1).CreateAtomic(h.heap(), Value::Int(9));
  ASSERT_TRUE(h.BindStable(t1, "doomed", doomed).ok());
  ASSERT_TRUE(h.PrepareAndCommit(t1).ok());
  ActionId t2 = Aid(11);
  ASSERT_TRUE(h.ctx(t2).UpdateObject(h.heap().root(), [](Value& r) {
    r.as_record().erase("doomed");
  }).ok());
  ASSERT_TRUE(h.PrepareAndCommit(t2).ok());
  ASSERT_TRUE(h.rs().writer().accessibility_set().contains(doomed->uid()));

  IncrementalAsTrimmer trimmer(&h.rs().writer(), &h.heap());
  trimmer.Start();
  while (!trimmer.Step(4)) {
  }
  EXPECT_FALSE(h.rs().writer().accessibility_set().contains(doomed->uid()));
  EXPECT_TRUE(h.rs().writer().accessibility_set().contains(Uid::Root()));
}

TEST(AsTrimmer, WritingBetweenStepsStaysCorrect) {
  StorageHarness h(LogMode::kHybrid);
  BuildChain(h, 12);
  IncrementalAsTrimmer trimmer(&h.rs().writer(), &h.heap());
  trimmer.Start();
  std::uint64_t seq = 100;
  // Interleave committed actions that create NEW stable objects while the
  // trimmer crawls; the intersection drops them from the AS, and the next
  // write re-discovers them as newly accessible — redundant but safe.
  while (!trimmer.Step(2)) {
    ActionId t = Aid(seq++);
    RecoverableObject* fresh = h.ctx(t).CreateAtomic(h.heap(), Value::Int(1));
    ASSERT_TRUE(h.BindStable(t, "fresh" + std::to_string(seq), fresh).ok());
    ASSERT_TRUE(h.PrepareAndCommit(t).ok());
  }
  // Everything still recovers.
  ASSERT_TRUE(h.CrashAndRecover().ok());
  EXPECT_NE(h.StableVar("chain"), nullptr);

  // And writing after the trim also works (re-writes what the trim dropped).
  ActionId t = Aid(seq++);
  RecoverableObject* chain = h.StableVar("chain");
  ASSERT_TRUE(h.ctx(t).WriteObject(chain, Value::Int(77)).ok());
  ASSERT_TRUE(h.PrepareAndCommit(t).ok());
  ASSERT_TRUE(h.CrashAndRecover().ok());
  EXPECT_EQ(h.StableVar("chain")->base_version(), Value::Int(77));
}

TEST(ReorderedNetwork, ConcurrentCommitsSurviveReordering) {
  SimWorldConfig config;
  config.guardian_count = 3;
  config.mode = LogMode::kHybrid;
  config.seed = 51;
  SimWorld world(config);
  world.network().set_reorder(true);

  // Seed one slot per future action at G1/G2, so the concurrent actions
  // touch disjoint objects (no lock conflicts, including on the root).
  for (int i = 0; i < 6; ++i) {
    std::uint32_t target = 1 + static_cast<std::uint32_t>(i % 2);
    Result<Guardian::ActionFate> fate =
        world.RunTopAction(GuardianId{target}, [&](SimWorld& w, ActionId aid) -> Status {
          return w.RunAt(aid, GuardianId{target}, [&](Guardian& guard, ActionContext& ctx) {
            RecoverableObject* obj = ctx.CreateAtomic(guard.heap(), Value::Int(-1));
            return guard.SetStableVariable(aid, "result" + std::to_string(i), obj);
          });
        });
    ASSERT_TRUE(fate.ok());
    ASSERT_EQ(fate.value(), Guardian::ActionFate::kCommitted);
  }

  // Launch several independent actions and only then pump: messages of
  // different actions interleave in random order.
  std::vector<ActionId> aids;
  for (int i = 0; i < 6; ++i) {
    Guardian& g0 = world.guardian(0);
    ActionId aid = g0.BeginTopAction();
    std::uint32_t target = 1 + static_cast<std::uint32_t>(i % 2);
    Status s = world.RunAt(aid, GuardianId{target},
                           [&](Guardian& guard, ActionContext& ctx) -> Status {
                             Result<RecoverableObject*> obj = guard.GetStableVariable(
                                 aid, "result" + std::to_string(i));
                             if (!obj.ok()) {
                               return obj.status();
                             }
                             return ctx.UpdateObject(obj.value(), [i](Value& v) {
                               v = Value::Int(i);
                             });
                           });
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE(g0.RequestCommit(aid).ok());
    aids.push_back(aid);
  }
  world.Pump();
  for (ActionId aid : aids) {
    EXPECT_EQ(world.guardian(0).FateOf(aid), Guardian::ActionFate::kCommitted)
        << to_string(aid);
    EXPECT_TRUE(world.guardian(0).TwoPhaseDone(aid));
  }
  // All results visible after a full-world crash.
  for (std::uint32_t g = 0; g < 3; ++g) {
    world.guardian(g).Crash();
  }
  for (std::uint32_t g = 0; g < 3; ++g) {
    ASSERT_TRUE(world.guardian(g).Restart().ok());
  }
  world.Pump();
  for (int i = 0; i < 6; ++i) {
    std::uint32_t target = 1 + static_cast<std::uint32_t>(i % 2);
    RecoverableObject* obj =
        world.guardian(target).CommittedStableVariable("result" + std::to_string(i));
    ASSERT_NE(obj, nullptr) << i;
    EXPECT_EQ(obj->base_version(), Value::Int(i));
  }
}

class ReorderSeedSweep : public testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, ReorderSeedSweep, testing::Range<std::uint64_t>(60, 66));

TEST_P(ReorderSeedSweep, ReorderedProtocolStillAtomic) {
  SimWorldConfig config;
  config.guardian_count = 3;
  config.mode = LogMode::kHybrid;
  config.seed = GetParam();
  SimWorld world(config);
  world.network().set_reorder(true);

  for (std::uint32_t g = 1; g <= 2; ++g) {
    Result<Guardian::ActionFate> fate =
        world.RunTopAction(GuardianId{g}, [&](SimWorld& w, ActionId aid) -> Status {
          return w.RunAt(aid, GuardianId{g}, [&](Guardian& guard, ActionContext& ctx) {
            RecoverableObject* obj = ctx.CreateAtomic(guard.heap(), Value::Int(0));
            return guard.SetStableVariable(aid, "x", obj);
          });
        });
    ASSERT_TRUE(fate.ok());
  }
  // One distributed action touching both, pumped under reordering.
  Result<Guardian::ActionFate> fate =
      world.RunTopAction(GuardianId{0}, [&](SimWorld& w, ActionId aid) -> Status {
        for (std::uint32_t g = 1; g <= 2; ++g) {
          Status s = w.RunAt(aid, GuardianId{g}, [&](Guardian& guard, ActionContext& ctx) {
            Result<RecoverableObject*> v = guard.GetStableVariable(aid, "x");
            if (!v.ok()) {
              return v.status();
            }
            return ctx.UpdateObject(v.value(), [](Value& b) { b = Value::Int(1); });
          });
          if (!s.ok()) {
            return s;
          }
        }
        return Status::Ok();
      });
  ASSERT_TRUE(fate.ok());
  ASSERT_EQ(fate.value(), Guardian::ActionFate::kCommitted);
  std::int64_t x1 = world.guardian(1).CommittedStableVariable("x")->base_version().as_int();
  std::int64_t x2 = world.guardian(2).CommittedStableVariable("x")->base_version().as_int();
  EXPECT_EQ(x1, 1);
  EXPECT_EQ(x2, 1);
}

}  // namespace
}  // namespace argus
