// The N-way replicated page store and its online repair loop.
//
// Three layers:
//   1. Quorum semantics — in-order write-all, fixed-order careful reads, the
//      dirty queue fed by fallback reads, crash-time Repair vs the online
//      RepairPage/ScrubRange pass (which also re-silvers blank replicas).
//   2. ReplicaRepairService — the background thread that drains the dirty
//      queue, advances re-silvers, and scrubs the full range while commits
//      keep flowing.
//   3. The N=2 equivalence oracle — a verbatim transcription of the historical
//      DuplexedStore driven op-for-op against ReplicatedStore(2) over seeded
//      random scripts: every result, every per-disk read/write count, and
//      every final platter byte must match bit for bit.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/stable/duplexed_store.h"
#include "src/stable/replicated_store.h"
#include "tests/test_support.h"

namespace argus {
namespace {

std::vector<std::byte> Page(std::uint8_t fill) {
  return std::vector<std::byte>(kDiskPageSize, std::byte{fill});
}

// ---------------------------------------------------------------------------
// Quorum semantics
// ---------------------------------------------------------------------------

TEST(ReplicatedStore, WriteAllLandsOnEveryReplica) {
  ReplicatedStore store(4, 3, 9);
  ASSERT_TRUE(store.AtomicWrite(1, AsSpan(Page(0x5a))).ok());
  for (std::uint32_t r = 0; r < 3; ++r) {
    const DiskPage& p = store.disk(r).PeekPage(1);
    EXPECT_TRUE(p.ever_written) << "replica " << r;
    EXPECT_TRUE(p.IntactCrc()) << "replica " << r;
    EXPECT_EQ(p.data, Page(0x5a)) << "replica " << r;
  }
  Result<std::vector<std::byte>> back = store.AtomicRead(1);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), Page(0x5a));
  EXPECT_EQ(store.dirty_pages(), 0u);  // replica 0 answered; nothing to heal
}

TEST(ReplicatedStore, QuorumReadFallsPastCorruptReplicasAndQueuesRepair) {
  ReplicatedStore store(4, 3, 10);
  ASSERT_TRUE(store.AtomicWrite(2, AsSpan(Page(0x66))).ok());
  store.disk(0).CorruptPage(2);
  store.disk(1).CorruptPage(2);
  Result<std::vector<std::byte>> back = store.AtomicRead(2);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), Page(0x66));
  // The fallback read queued the page for the online repair loop.
  EXPECT_EQ(store.dirty_pages(), 1u);
}

TEST(ReplicatedStore, AllReplicaLossIsDetectedNotSilent) {
  ReplicatedStore store(4, 3, 11);
  ASSERT_TRUE(store.AtomicWrite(0, AsSpan(Page(0x77))).ok());
  for (std::uint32_t r = 0; r < 3; ++r) {
    store.disk(r).CorruptPage(0);
  }
  Result<std::vector<std::byte>> back = store.AtomicRead(0);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), ErrorCode::kCorruption);
}

TEST(ReplicatedStore, NeverWrittenReadsNotFound) {
  ReplicatedStore store(4, 5, 12);
  Result<std::vector<std::byte>> back = store.AtomicRead(3);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), ErrorCode::kNotFound);
}

TEST(ReplicatedStore, TornWriteMidChainLeavesPrefixAsWinner) {
  ReplicatedStore store(4, 3, 13);
  ASSERT_TRUE(store.AtomicWrite(1, AsSpan(Page(0x01))).ok());
  // Tear the next write on replica 1: the chain is 0=new, 1=garbage, 2=old.
  DiskFaultPlan tear;
  tear.tear_write_at = 0;
  store.SetReplicaFaultPlan(1, tear);
  Status s = store.AtomicWrite(1, AsSpan(Page(0x02)));
  EXPECT_FALSE(s.ok());
  store.SetReplicaFaultPlan(1, DiskFaultPlan{});
  // Replica 0 holds the new value and wins the quorum read: the logical page
  // moved forward atomically even though the chain tore mid-flight.
  Result<std::vector<std::byte>> back = store.AtomicRead(1);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), Page(0x02));
  // Crash-time repair propagates the winner to the torn and stale replicas.
  Result<std::size_t> repaired = store.Repair();
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(repaired.value(), 2u);
  ASSERT_TRUE(store.VerifyConverged().ok());
}

TEST(ReplicatedStore, CrashTimeRepairHealsReplicaBelowWinner) {
  // The winner can sit above a corrupt replica (decay on replica 0, intact
  // copy on replica 1): repair must heal downward too, exactly as the
  // historical duplexed store re-duplexed A from B.
  ReplicatedStore store(4, 3, 14);
  ASSERT_TRUE(store.AtomicWrite(2, AsSpan(Page(0x33))).ok());
  store.disk(0).CorruptPage(2);
  Result<std::size_t> repaired = store.Repair();
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(repaired.value(), 1u);
  EXPECT_FALSE(store.disk(0).PageIsBad(2));
  ASSERT_TRUE(store.VerifyConverged().ok());
}

TEST(ReplicatedStore, CrashTimeRepairReportsPageLostEverywhere) {
  ReplicatedStore store(4, 3, 15);
  ASSERT_TRUE(store.AtomicWrite(1, AsSpan(Page(0x99))).ok());
  for (std::uint32_t r = 0; r < 3; ++r) {
    store.disk(r).CorruptPage(1);
  }
  Result<std::size_t> repaired = store.Repair();
  ASSERT_FALSE(repaired.ok());
  EXPECT_EQ(repaired.status().code(), ErrorCode::kCorruption);
}

TEST(ReplicatedStore, OnlineRepairFillsReplicaThatMissedTheWrite) {
  // Crash-time Repair leaves kNotFound replicas alone (historical semantics);
  // the online pass fills them — the catch-up path for a chain torn before
  // first reaching a replica, and the unit of re-silvering.
  ReplicatedStore store(4, 3, 16);
  ASSERT_TRUE(store.AtomicWrite(3, AsSpan(Page(0x42))).ok());
  store.ReplaceReplica(1, 777);  // whole-disk loss: replica 1 is blank
  EXPECT_TRUE(store.resilver_pending());
  EXPECT_FALSE(store.disk(1).PeekPage(3).ever_written);

  Result<std::size_t> healed = store.ScrubRange(0, store.page_count());
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(healed.value(), 1u);  // one written page to re-silver
  store.FinishResilver();
  EXPECT_FALSE(store.resilver_pending());
  EXPECT_EQ(store.disk(1).PeekPage(3).data, Page(0x42));
  ASSERT_TRUE(store.VerifyConverged().ok());
}

TEST(ReplicatedStore, ScrubKeepsHealingPastLostPages) {
  ReplicatedStore store(4, 2, 17);
  ASSERT_TRUE(store.AtomicWrite(0, AsSpan(Page(0x01))).ok());
  ASSERT_TRUE(store.AtomicWrite(2, AsSpan(Page(0x03))).ok());
  // Page 0: lost on both replicas. Page 2: healable (one corrupt copy).
  store.disk(0).CorruptPage(0);
  store.disk(1).CorruptPage(0);
  store.disk(0).CorruptPage(2);
  Result<std::size_t> r = store.ScrubRange(0, store.page_count());
  // The lost page surfaces as the scan's error...
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kCorruption);
  // ...but the healable page was still healed.
  EXPECT_FALSE(store.disk(0).PageIsBad(2));
}

// ---------------------------------------------------------------------------
// ReplicaRepairService
// ---------------------------------------------------------------------------

TEST(ReplicaRepairService, PassDrainsDirtyQueueAndHeals) {
  ReplicatedStore store(8, 3, 20);
  for (std::size_t p = 0; p < 4; ++p) {
    ASSERT_TRUE(store.AtomicWrite(p, AsSpan(Page(static_cast<std::uint8_t>(p + 1)))).ok());
  }
  store.disk(0).CorruptPage(1);
  // The quorum read survives off replica 1 and queues page 1 as dirty.
  ASSERT_TRUE(store.AtomicRead(1).ok());
  ASSERT_EQ(store.dirty_pages(), 1u);

  ReplicaRepairConfig config;
  config.scrub_pages_per_pass = 0;  // isolate the dirty-queue path
  ReplicaRepairService service(&store, config);
  ASSERT_TRUE(service.RunPass().ok());
  ReplicaRepairStats stats = service.StatsSnapshot();
  EXPECT_EQ(stats.passes, 1u);
  EXPECT_EQ(stats.dirty_pages_drained, 1u);
  EXPECT_EQ(stats.copies_written, 1u);
  EXPECT_EQ(store.dirty_pages(), 0u);
  EXPECT_FALSE(store.disk(0).PageIsBad(1));
  ASSERT_TRUE(store.VerifyConverged().ok());
}

TEST(ReplicaRepairService, ResilverCompletesAcrossPasses) {
  ReplicatedStore store(64, 2, 21);
  for (std::size_t p = 0; p < 64; ++p) {
    ASSERT_TRUE(store.AtomicWrite(p, AsSpan(Page(static_cast<std::uint8_t>(p)))).ok());
  }
  std::uint32_t added = store.AttachReplica(4242);
  EXPECT_EQ(added, 2u);
  EXPECT_TRUE(store.resilver_pending());

  ReplicaRepairConfig config;
  config.scrub_pages_per_pass = 16;  // four passes to cover the range
  ReplicaRepairService service(&store, config);
  int passes = 0;
  while (store.resilver_pending() && passes < 16) {
    ASSERT_TRUE(service.RunPass().ok());
    ++passes;
  }
  EXPECT_FALSE(store.resilver_pending());
  EXPECT_EQ(passes, 4);
  EXPECT_EQ(service.StatsSnapshot().resilvers_completed, 1u);
  // The attached replica now holds every page; the strict all-or-none
  // convergence check applies again.
  for (std::size_t p = 0; p < 64; ++p) {
    EXPECT_EQ(store.disk(added).PeekPage(p).data, Page(static_cast<std::uint8_t>(p)));
  }
  ASSERT_TRUE(store.VerifyConverged().ok());
}

TEST(ReplicaRepairService, BackgroundThreadHealsWhileWritesContinue) {
  // The RADON property in miniature: a mutator thread keeps writing while the
  // repair thread scrubs a decaying replica; after the storm clears, one
  // final scrub converges the store.
  ReplicatedStore store(32, 3, 22);
  for (std::size_t p = 0; p < 32; ++p) {
    ASSERT_TRUE(store.AtomicWrite(p, AsSpan(Page(0xab))).ok());
  }
  DiskFaultPlan decay;
  decay.decay_on_read_probability = 0.05;
  store.SetReplicaFaultPlan(0, decay);

  ReplicaRepairConfig config;
  config.poll_interval = std::chrono::milliseconds(1);
  config.scrub_pages_per_pass = 8;
  ReplicaRepairService service(&store, config);
  service.Start();

  Rng rng(22);
  for (int i = 0; i < 400; ++i) {
    std::size_t page = rng.NextBelow(32);
    if (rng.NextBool(0.5)) {
      ASSERT_TRUE(store.AtomicWrite(page, AsSpan(Page(static_cast<std::uint8_t>(i)))).ok());
    } else {
      Result<std::vector<std::byte>> r = store.AtomicRead(page);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }
  }
  // On a loaded (or single-core) machine the mutator loop can finish before
  // the repair thread ever wakes; wait for at least one pass so the "heals
  // while writes continue" claim is actually exercised.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (service.StatsSnapshot().passes == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  service.Stop();
  EXPECT_GE(service.StatsSnapshot().passes, 1u);

  store.SetReplicaFaultPlan(0, DiskFaultPlan{});
  ASSERT_TRUE(store.ScrubRange(0, store.page_count()).ok());
  ASSERT_TRUE(store.VerifyConverged().ok());
}

// ---------------------------------------------------------------------------
// N=2 equivalence with the historical DuplexedStore
// ---------------------------------------------------------------------------

// Verbatim transcription of the pre-replication DuplexedStore (same careful
// layers, same A-then-B orders, same status taxonomy), minus the obs counters.
// The contract under test: ReplicatedStore(page_count, 2, seed) performs the
// identical sequence of disk operations, so every result and every platter
// byte matches bit for bit — including the fault rng streams, which advance
// once per physical read.
class LegacyDuplexedStore {
 public:
  LegacyDuplexedStore(std::size_t page_count, std::uint64_t seed)
      : page_count_(page_count),
        disk_a_(std::make_unique<SimulatedDisk>(page_count, seed * 2 + 1)),
        disk_b_(std::make_unique<SimulatedDisk>(page_count, seed * 2 + 2)),
        careful_a_(disk_a_.get()),
        careful_b_(disk_b_.get()) {}

  Status AtomicWrite(std::size_t page_index, std::span<const std::byte> data) {
    Status a = careful_a_.CarefulWrite(page_index, data);
    if (!a.ok()) {
      return a;
    }
    return careful_b_.CarefulWrite(page_index, data);
  }

  Result<std::vector<std::byte>> AtomicRead(std::size_t page_index) {
    Result<std::vector<std::byte>> a = careful_a_.CarefulRead(page_index);
    if (a.ok()) {
      return a;
    }
    Result<std::vector<std::byte>> b = careful_b_.CarefulRead(page_index);
    if (b.ok()) {
      return b;
    }
    if (a.status().code() == ErrorCode::kNotFound && b.status().code() == ErrorCode::kNotFound) {
      return Status::NotFound("page never written");
    }
    return Status::Corruption("both replicas unreadable");
  }

  Result<std::size_t> Repair() {
    std::size_t repaired = 0;
    for (std::size_t i = 0; i < page_count_; ++i) {
      Result<std::vector<std::byte>> a = careful_a_.CarefulRead(i);
      Result<std::vector<std::byte>> b = careful_b_.CarefulRead(i);
      if (a.ok() && b.ok()) {
        if (!std::equal(a.value().begin(), a.value().end(), b.value().begin())) {
          Status s = careful_b_.CarefulWrite(i, AsSpan(a.value()));
          if (!s.ok()) {
            return s;
          }
          ++repaired;
        }
        continue;
      }
      if (a.ok() && b.status().code() == ErrorCode::kCorruption) {
        Status s = careful_b_.CarefulWrite(i, AsSpan(a.value()));
        if (!s.ok()) {
          return s;
        }
        ++repaired;
      } else if (b.ok() && a.status().code() == ErrorCode::kCorruption) {
        Status s = careful_a_.CarefulWrite(i, AsSpan(b.value()));
        if (!s.ok()) {
          return s;
        }
        ++repaired;
      } else if (!a.ok() && !b.ok() && a.status().code() == ErrorCode::kCorruption &&
                 b.status().code() == ErrorCode::kCorruption) {
        return Status::Corruption("page lost on both replicas");
      }
    }
    return repaired;
  }

  SimulatedDisk& disk_a() { return *disk_a_; }
  SimulatedDisk& disk_b() { return *disk_b_; }

 private:
  std::size_t page_count_;
  std::unique_ptr<SimulatedDisk> disk_a_;
  std::unique_ptr<SimulatedDisk> disk_b_;
  CarefulDisk careful_a_;
  CarefulDisk careful_b_;
};

void ExpectDisksIdentical(SimulatedDisk& legacy, SimulatedDisk& current, const char* which,
                          std::uint64_t seed) {
  ASSERT_EQ(legacy.page_count(), current.page_count());
  EXPECT_EQ(legacy.reads(), current.reads()) << which << " seed " << seed;
  EXPECT_EQ(legacy.writes(), current.writes()) << which << " seed " << seed;
  for (std::size_t p = 0; p < legacy.page_count(); ++p) {
    const DiskPage& lp = legacy.PeekPage(p);
    const DiskPage& cp = current.PeekPage(p);
    ASSERT_EQ(lp.ever_written, cp.ever_written) << which << " page " << p << " seed " << seed;
    if (!lp.ever_written) {
      continue;
    }
    EXPECT_EQ(lp.stored_crc, cp.stored_crc) << which << " page " << p << " seed " << seed;
    EXPECT_EQ(lp.data, cp.data) << which << " page " << p << " seed " << seed;
  }
}

class DuplexedEquivalenceSweep : public testing::TestWithParam<std::uint64_t> {};

// The seeds the pre-replication suites ran on (stable_storage_test used the
// default seed 0 and 77; media_fault_test pinned 1234 and 88), plus a spread
// of fresh ones.
INSTANTIATE_TEST_SUITE_P(Seeds, DuplexedEquivalenceSweep,
                         testing::Values<std::uint64_t>(0, 77, 88, 1234, 5, 6, 7, 8));

TEST_P(DuplexedEquivalenceSweep, BitIdenticalToLegacyDuplexedStore) {
  const std::uint64_t seed = GetParam();
  constexpr std::size_t kPages = 16;
  LegacyDuplexedStore legacy(kPages, seed);
  DuplexedStore current(kPages, seed);  // = ReplicatedStore(kPages, 2, seed)

  // One script, two stores: writes, reads, deterministic decay, torn writes,
  // probabilistic decay storms, and crash-time repairs, drawn from a seeded
  // rng that is consulted identically for both.
  Rng script(seed * 31 + 7);
  for (int op = 0; op < 300; ++op) {
    std::size_t page = script.NextBelow(kPages);
    std::uint64_t kind = script.NextBelow(100);
    if (kind < 45) {
      std::vector<std::byte> data = Page(static_cast<std::uint8_t>(script.NextBelow(256)));
      Status l = legacy.AtomicWrite(page, AsSpan(data));
      Status c = current.AtomicWrite(page, AsSpan(data));
      ASSERT_EQ(l.code(), c.code()) << "op " << op << " seed " << seed;
    } else if (kind < 80) {
      Result<std::vector<std::byte>> l = legacy.AtomicRead(page);
      Result<std::vector<std::byte>> c = current.AtomicRead(page);
      ASSERT_EQ(l.ok(), c.ok()) << "op " << op << " seed " << seed;
      if (l.ok()) {
        ASSERT_EQ(l.value(), c.value()) << "op " << op << " seed " << seed;
      } else {
        ASSERT_EQ(l.status().code(), c.status().code()) << "op " << op << " seed " << seed;
      }
    } else if (kind < 88) {
      bool on_a = script.NextBool(0.5);
      (on_a ? legacy.disk_a() : legacy.disk_b()).CorruptPage(page);
      (on_a ? current.disk_a() : current.disk_b()).CorruptPage(page);
    } else if (kind < 94) {
      // A short probabilistic storm: identical plans on corresponding disks.
      DiskFaultPlan plan;
      plan.decay_on_read_probability = 0.1;
      plan.transient_read_error_probability = 0.1;
      bool on_a = script.NextBool(0.5);
      (on_a ? legacy.disk_a() : legacy.disk_b()).set_fault_plan(plan);
      (on_a ? current.disk_a() : current.disk_b()).set_fault_plan(plan);
    } else if (kind < 97) {
      legacy.disk_a().set_fault_plan(DiskFaultPlan{});
      legacy.disk_b().set_fault_plan(DiskFaultPlan{});
      current.disk_a().set_fault_plan(DiskFaultPlan{});
      current.disk_b().set_fault_plan(DiskFaultPlan{});
    } else {
      Result<std::size_t> l = legacy.Repair();
      Result<std::size_t> c = current.Repair();
      ASSERT_EQ(l.ok(), c.ok()) << "op " << op << " seed " << seed;
      if (l.ok()) {
        ASSERT_EQ(l.value(), c.value()) << "op " << op << " seed " << seed;
      } else {
        ASSERT_EQ(l.status().code(), c.status().code()) << "op " << op << " seed " << seed;
      }
    }
  }

  // Quiesce: clear plans, run one final repair on both, then compare the
  // platters byte for byte (reads/writes counters included, so the disk-op
  // sequences — not just the outcomes — were identical).
  legacy.disk_a().set_fault_plan(DiskFaultPlan{});
  legacy.disk_b().set_fault_plan(DiskFaultPlan{});
  current.disk_a().set_fault_plan(DiskFaultPlan{});
  current.disk_b().set_fault_plan(DiskFaultPlan{});
  Result<std::size_t> lr = legacy.Repair();
  Result<std::size_t> cr = current.Repair();
  ASSERT_EQ(lr.ok(), cr.ok());
  if (lr.ok()) {
    ASSERT_EQ(lr.value(), cr.value());
  }
  ExpectDisksIdentical(legacy.disk_a(), current.disk_a(), "disk A", seed);
  ExpectDisksIdentical(legacy.disk_b(), current.disk_b(), "disk B", seed);
}

}  // namespace
}  // namespace argus
