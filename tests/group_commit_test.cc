// Group commit under real concurrency: N threads force-writing through one
// FlushCoordinator, and parallel Prepare/Commit/Abort on shared guardians via
// the concurrent workload driver. Run under -DARGUS_SANITIZE=thread to check
// the locking discipline, not just the results.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/log/flush_coordinator.h"
#include "src/tpc/workload.h"
#include "tests/test_support.h"

namespace argus {
namespace {

DataEntry MakeData(std::uint64_t tag) {
  DataEntry e;
  e.kind = ObjectKind::kAtomic;
  e.uid = Uid::Root();
  e.aid = Aid(tag);
  e.value = std::vector<std::byte>(16, std::byte{static_cast<std::uint8_t>(tag & 0xff)});
  return e;
}

TEST(FlushCoordinator, ConcurrentForceWritesAllDurableAndCoalesced) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kEntriesPerThread = 50;

  StableLog log(std::make_unique<InMemoryStableMedium>());
  FlushCoordinatorConfig config;
  config.batch_window = std::chrono::microseconds(500);
  config.max_batch = kThreads;
  FlushCoordinator coordinator(&log, config);

  std::vector<std::vector<LogAddress>> addresses(kThreads);
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::optional<LogAddress> last_top;
      for (std::size_t i = 0; i < kEntriesPerThread; ++i) {
        Result<LogAddress> addr =
            coordinator.ForceWrite(LogEntry(MakeData(t * kEntriesPerThread + i)));
        if (!addr.ok()) {
          failed = true;
          return;
        }
        addresses[t].push_back(addr.value());
        // ForceWrite returned, so the entry is durable: GetTop() must already
        // cover it, and must never regress between this thread's observations.
        std::optional<LogAddress> top = log.GetTop();
        if (!top.has_value() || *top < addr.value() ||
            (last_top.has_value() && *top < *last_top)) {
          failed = true;
          return;
        }
        last_top = top;
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  ASSERT_FALSE(failed.load());

  // Every returned address is durable and readable after the threads drained.
  std::uint64_t durable = log.durable_size();
  for (const auto& per_thread : addresses) {
    ASSERT_EQ(per_thread.size(), kEntriesPerThread);
    for (LogAddress addr : per_thread) {
      EXPECT_LT(addr.offset, durable);
      Result<LogEntry> entry = log.Read(addr);
      ASSERT_TRUE(entry.ok()) << entry.status().ToString();
      EXPECT_TRUE(std::holds_alternative<DataEntry>(entry.value()));
    }
  }

  // Coalescing: far fewer physical forces than entries, and the stats see
  // both the followers and the shared flushes.
  LogStats stats = log.StatsSnapshot();
  EXPECT_EQ(stats.entries_written, kThreads * kEntriesPerThread);
  EXPECT_LT(stats.forces, stats.entries_written);
  EXPECT_GT(stats.entries_per_force(), 2.0) << "forces=" << stats.forces;
  EXPECT_EQ(stats.force_requests, kThreads * kEntriesPerThread);
  EXPECT_GT(stats.coalesced_requests, std::uint64_t{0});
}

TEST(FlushCoordinator, ForceUpToDurableAddressReturnsImmediately) {
  StableLog log(std::make_unique<InMemoryStableMedium>());
  FlushCoordinator coordinator(&log);

  // Forcing an empty log is a no-op.
  EXPECT_TRUE(coordinator.Force().ok());

  Result<LogAddress> addr = coordinator.ForceWrite(LogEntry(MakeData(1)));
  ASSERT_TRUE(addr.ok());
  std::uint64_t forces_before = log.StatsSnapshot().forces;
  // Already durable: no new physical force.
  EXPECT_TRUE(coordinator.ForceUpTo(addr.value()).ok());
  EXPECT_TRUE(coordinator.Force().ok());
  EXPECT_EQ(log.StatsSnapshot().forces, forces_before);
}

TEST(FlushCoordinator, StagedWritersShareOneFlush) {
  // Deterministic single-thread shape: stage K entries, then one ForceUpTo
  // of the last covers all of them (§3.1).
  StableLog log(std::make_unique<InMemoryStableMedium>());
  FlushCoordinator coordinator(&log);
  std::vector<LogAddress> addrs;
  for (std::uint64_t i = 0; i < 5; ++i) {
    addrs.push_back(log.Write(LogEntry(MakeData(i))));
  }
  ASSERT_TRUE(coordinator.ForceUpTo(addrs.back()).ok());
  LogStats stats = log.StatsSnapshot();
  EXPECT_EQ(stats.forces, 1u);
  EXPECT_EQ(stats.max_entries_per_force, 5u);
  for (LogAddress a : addrs) {
    EXPECT_LT(a.offset, log.durable_size());
  }
}

TEST(GroupCommit, ConcurrentWorkloadCommitsAreDurableAndCoalesced) {
  constexpr std::size_t kThreads = 8;

  SimWorldConfig world_config;
  world_config.guardian_count = 2;
  world_config.mode = LogMode::kHybrid;
  world_config.medium = MediumKind::kInMemory;
  world_config.seed = 99;
  FlushCoordinatorConfig gc;
  gc.batch_window = std::chrono::microseconds(300);
  gc.max_batch = kThreads;
  world_config.group_commit = gc;
  SimWorld world(world_config);

  WorkloadConfig config;
  config.seed = 99;
  config.abort_probability = 0.2;
  config.early_prepare_probability = 0.2;
  config.threads = kThreads;
  WorkloadDriver driver(&world, config);
  ASSERT_TRUE(driver.Setup().ok());
  ASSERT_TRUE(driver.Run(400).ok());

  EXPECT_EQ(driver.stats().attempted, 400u);
  EXPECT_GT(driver.stats().committed, 100u);

  std::uint64_t total_forces = 0;
  std::uint64_t total_entries = 0;
  for (std::uint32_t g = 0; g < world.guardian_count(); ++g) {
    LogStats stats = world.guardian(g).recovery().log().StatsSnapshot();
    total_forces += stats.forces;
    total_entries += stats.entries_written;
    EXPECT_GT(stats.coalesced_requests, std::uint64_t{0}) << "guardian " << g;
  }
  EXPECT_LT(total_forces, driver.stats().committed)
      << "group commit must need fewer physical forces than commits";
  EXPECT_GT(static_cast<double>(total_entries) / static_cast<double>(total_forces), 2.0);

  // Everything the model recorded survives full-world crash recovery.
  Result<std::size_t> checked = driver.VerifyAfterCrash();
  ASSERT_TRUE(checked.ok()) << checked.status().ToString();
  EXPECT_GT(checked.value(), 0u);
}

TEST(GroupCommit, ConcurrentWorkloadWithoutCoordinatorStaysCorrect) {
  // The same concurrent driver against plain per-request forces: correctness
  // must not depend on the coordinator being present.
  SimWorldConfig world_config;
  world_config.guardian_count = 2;
  world_config.seed = 7;
  SimWorld world(world_config);

  WorkloadConfig config;
  config.seed = 7;
  config.abort_probability = 0.1;
  config.threads = 4;
  WorkloadDriver driver(&world, config);
  ASSERT_TRUE(driver.Setup().ok());
  ASSERT_TRUE(driver.Run(200).ok());
  Result<std::size_t> checked = driver.VerifyAfterCrash();
  ASSERT_TRUE(checked.ok()) << checked.status().ToString();
}

TEST(GroupCommit, ConcurrentCheckpointsStillRequireGroupCommit) {
  // Crash injection is now supported concurrently (see
  // crash_storm_property_test.cc), but checkpointing still needs the
  // coordinator's epoch check to resolve waits that race a log swap.
  SimWorldConfig world_config;
  world_config.guardian_count = 1;
  SimWorld world(world_config);  // no group commit

  WorkloadConfig config;
  config.threads = 2;
  config.checkpoint = CheckpointPolicyConfig{};
  WorkloadDriver checkpoint_driver(&world, config);
  ASSERT_TRUE(checkpoint_driver.Setup().ok());
  EXPECT_EQ(checkpoint_driver.Run(1).code(), ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace argus
