#include <gtest/gtest.h>
TEST(Placeholder_housekeeping_test, Pending) { SUCCEED(); }
