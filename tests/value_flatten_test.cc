// Tests for the value model and the incremental copying (flatten/unflatten)
// algorithm of §2.4.3 / §3.4.3.

#include <gtest/gtest.h>

#include "src/object/flatten.h"
#include "src/object/heap.h"
#include "tests/test_support.h"

namespace argus {
namespace {

TEST(Value, BasicKindsAndAccessors) {
  EXPECT_TRUE(Value::Nil().is_nil());
  EXPECT_EQ(Value::Int(-5).as_int(), -5);
  EXPECT_EQ(Value::Str("x").as_str(), "x");
  Value list = Value::OfList({Value::Int(1), Value::Int(2)});
  EXPECT_EQ(list.as_list().size(), 2u);
  Value rec = Value::OfRecord({{"a", Value::Int(1)}});
  EXPECT_EQ(rec.as_record().at("a").as_int(), 1);
  EXPECT_EQ(Value::OfUid(Uid{7}).as_uid_ref(), Uid{7});
}

TEST(Value, EqualityIsDeep) {
  Value a = Value::OfRecord({{"k", Value::OfList({Value::Int(1), Value::Str("s")})}});
  Value b = Value::OfRecord({{"k", Value::OfList({Value::Int(1), Value::Str("s")})}});
  EXPECT_EQ(a, b);
  b.as_record()["k"].as_list()[0] = Value::Int(2);
  EXPECT_NE(a, b);
}

TEST(Value, ToStringRendersStructure) {
  Value v = Value::OfRecord({{"n", Value::Int(3)}, {"s", Value::Str("hi")}});
  EXPECT_EQ(v.ToString(), "{n: 3, s: \"hi\"}");
  EXPECT_EQ(Value::OfList({Value::Nil()}).ToString(), "[nil]");
  EXPECT_EQ(Value::OfUid(Uid{4}).ToString(), "uid(O4)");
}

TEST(Value, ApproxBytesCountsHeapPayloads) {
  const std::size_t base = Value::Nil().ApproxBytes();
  EXPECT_GE(base, sizeof(Value));
  EXPECT_EQ(Value::Int(7).ApproxBytes(), base);
  // A short string fits the SSO buffer already counted in sizeof(Value); a
  // large one must charge its heap allocation.
  EXPECT_EQ(Value::Str("hi").ApproxBytes(), base);
  Value big = Value::Str(std::string(4096, 'x'));
  EXPECT_GE(big.ApproxBytes(), base + 4096);
  // Containers recurse into their elements.
  Value list = Value::OfList({big, big});
  EXPECT_GE(list.ApproxBytes(), 2 * big.ApproxBytes());
  Value rec = Value::OfRecord({{"payload", big}});
  EXPECT_GT(rec.ApproxBytes(), big.ApproxBytes());
}

TEST(Value, ApproxBytesGrowsMonotonicallyWithNesting) {
  Value v = Value::Str(std::string(100, 'a'));
  std::size_t prev = v.ApproxBytes();
  for (int depth = 0; depth < 8; ++depth) {
    v = Value::OfRecord({{"inner", std::move(v)}, {"tag", Value::Int(depth)}});
    std::size_t now = v.ApproxBytes();
    EXPECT_GT(now, prev);
    prev = now;
  }
}

TEST(Flatten, ScalarRoundTrip) {
  for (const Value& v : {Value::Nil(), Value::Int(42), Value::Int(-1), Value::Str("abc")}) {
    std::vector<std::byte> flat = FlattenValue(v, nullptr);
    Result<Value> back = UnflattenValue(AsSpan(flat));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), v);
  }
}

TEST(Flatten, NestedStructureRoundTrip) {
  Value v = Value::OfRecord({
      {"name", Value::Str("account")},
      {"history", Value::OfList({Value::Int(10), Value::Int(-3), Value::Int(7)})},
      {"meta", Value::OfRecord({{"open", Value::Int(1)}})},
  });
  Result<Value> back = UnflattenValue(AsSpan(FlattenValue(v, nullptr)));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), v);
}

TEST(Flatten, ReferencesBecomeUidsAndAreReported) {
  VolatileHeap heap;
  ActionId t1 = Aid(1);
  RecoverableObject* target = heap.CreateAtomic(t1, Value::Int(9));
  Value v = Value::OfList({Value::Int(1), Value::Ref(target)});

  std::vector<RecoverableObject*> refs;
  std::vector<std::byte> flat = FlattenValue(v, &refs);
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs[0], target);

  Result<Value> back = UnflattenValue(AsSpan(flat));
  ASSERT_TRUE(back.ok());
  // References come back as uid placeholders.
  const Value& restored_ref = back.value().as_list()[1];
  ASSERT_TRUE(restored_ref.is_uid_ref());
  EXPECT_EQ(restored_ref.as_uid_ref(), target->uid());
}

TEST(Flatten, NestedReferencesInsideRegularObjectsAreReported) {
  // Figure 2-2: copying z copies the regular int but replaces the contained
  // atomic array with a reference.
  VolatileHeap heap;
  ActionId t1 = Aid(1);
  RecoverableObject* y = heap.CreateAtomic(t1, Value::OfList({Value::Int(5)}));
  Value z = Value::OfRecord({{"x", Value::Int(3)}, {"y", Value::Ref(y)}});

  std::vector<RecoverableObject*> refs;
  std::vector<std::byte> flat = FlattenValue(z, &refs);
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs[0], y);

  Result<Value> back = UnflattenValue(AsSpan(flat));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().as_record().at("x").as_int(), 3);
  EXPECT_TRUE(back.value().as_record().at("y").is_uid_ref());
}

TEST(Flatten, ResolveUidRefsPatchesPointers) {
  VolatileHeap heap;
  ActionId t1 = Aid(1);
  RecoverableObject* target = heap.CreateAtomic(t1, Value::Int(1));
  Value v = Value::OfRecord({{"r", Value::OfUid(target->uid())}});
  Status s = ResolveUidRefs(v, [&](Uid uid) { return heap.Get(uid); });
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(v.as_record().at("r").is_ref());
  EXPECT_EQ(v.as_record().at("r").as_ref(), target);
}

TEST(Flatten, ResolveFailsOnDanglingUid) {
  Value v = Value::OfUid(Uid{999});
  Status s = ResolveUidRefs(v, [](Uid) { return nullptr; });
  EXPECT_EQ(s.code(), ErrorCode::kCorruption);
}

TEST(Flatten, UnflattenRejectsGarbage) {
  std::vector<std::byte> garbage = {std::byte{0xee}, std::byte{0x01}};
  EXPECT_FALSE(UnflattenValue(AsSpan(garbage)).ok());
}

TEST(Flatten, UnflattenRejectsTrailingBytes) {
  std::vector<std::byte> flat = FlattenValue(Value::Int(1), nullptr);
  flat.push_back(std::byte{0});
  EXPECT_FALSE(UnflattenValue(AsSpan(flat)).ok());
}

TEST(Flatten, UidRefReflattensToSameUid) {
  Value v = Value::OfUid(Uid{12});
  Result<Value> back = UnflattenValue(AsSpan(FlattenValue(v, nullptr)));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().as_uid_ref(), Uid{12});
}

TEST(CollectRefs, FindsAllDirectReferences) {
  VolatileHeap heap;
  ActionId t1 = Aid(1);
  RecoverableObject* a = heap.CreateAtomic(t1, Value::Int(1));
  RecoverableObject* b = heap.CreateMutex(Value::Int(2));
  Value v = Value::OfList({Value::Ref(a), Value::OfRecord({{"m", Value::Ref(b)}})});
  std::vector<RecoverableObject*> refs;
  CollectRefs(v, refs);
  ASSERT_EQ(refs.size(), 2u);
  EXPECT_EQ(refs[0], a);
  EXPECT_EQ(refs[1], b);
}

TEST(Flatten, DeepNestingRoundTrips) {
  Value v = Value::Int(0);
  for (int i = 0; i < 100; ++i) {
    v = Value::OfList({std::move(v)});
  }
  Result<Value> back = UnflattenValue(AsSpan(FlattenValue(v, nullptr)));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), v);
}

}  // namespace
}  // namespace argus
