// The E16 repair-convergence sweep: 64 seeds of the full stack on N-way
// replicated media (N cycling through 2, 3, 5) with the background
// ReplicaRepairService running the whole time, coherent crashes landing
// mid-traffic, and a decay + transient-read storm armed on every replica but
// the highest-index one for the duration of every post-crash recovery.
//
// Two properties, checked per seed:
//   1. Zero durably-committed loss while >= 1 intact replica per page
//      survives — the driver's reconciliation plus VerifyAfterCrash.
//   2. Repair convergence: once the storm clears and a final scrub quiesces
//      the store, every guardian's replicas are byte-identical on every page
//      (VerifyConverged's non-perturbing platter oracle). A whole-disk
//      replacement then re-silvers online and must converge the same way.
//
// The suite carries the `concurrency` label (TSan in CI: the repair thread
// races commits by design) and the `replicated` label for the dedicated
// 64-seed CI step.

#include <gtest/gtest.h>

#include "src/stable/replicated_medium.h"
#include "src/tpc/workload.h"
#include "tests/test_support.h"

namespace argus {
namespace {

std::uint32_t ReplicasForSeed(std::uint64_t seed) {
  constexpr std::uint32_t kChoices[] = {2, 3, 5};
  return kChoices[seed % 3];
}

ReplicatedStore& StoreOf(SimWorld& world, std::uint32_t guardian) {
  return static_cast<ReplicatedStableMedium&>(
             world.guardian(guardian).recovery().log().medium())
      .store();
}

class ReplicaRepairSeedSweep : public testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, ReplicaRepairSeedSweep,
                         testing::Range<std::uint64_t>(400, 464));

TEST_P(ReplicaRepairSeedSweep, ReplicasConvergeAfterDecayStorm) {
  ScopedFlightRecorderDumpOnFailure dump_guard;
  const std::uint64_t seed = GetParam();
  const std::uint32_t replicas = ReplicasForSeed(seed);

  SimWorldConfig world_config;
  world_config.guardian_count = 2;
  world_config.mode = LogMode::kHybrid;
  world_config.medium = MediumKind::kReplicated;
  world_config.replicas = replicas;
  world_config.repair = ReplicaRepairConfig{};  // background repair always on
  world_config.seed = seed;
  world_config.group_commit = FlushCoordinatorConfig{};
  SimWorld world(world_config);

  WorkloadConfig config;
  config.seed = seed;
  config.threads = 3;
  config.objects_per_guardian = 6;
  config.abort_probability = 0.1;
  config.crash_probability = 0.1;
  // Armed on replicas [0, N-1) during every post-crash recovery; the
  // highest-index replica stays intact, so a quorum winner always exists.
  // Transient probability stays low: CarefulRead retries only 4 times.
  DiskFaultPlan storm;
  storm.decay_on_read_probability = 0.05;
  storm.transient_read_error_probability = 0.01;
  config.recovery_faults = storm;

  WorkloadDriver driver(&world, config);
  ASSERT_TRUE(driver.Setup().ok());
  Status s = driver.Run(60);
  ASSERT_TRUE(s.ok()) << "seed " << seed << " n=" << replicas << ": " << s.ToString();
  EXPECT_GE(driver.stats().crashes, 1u) << "seed " << seed;
  EXPECT_GT(driver.stats().committed, 0u) << "seed " << seed;
  Result<std::size_t> checked = driver.VerifyAfterCrash();
  ASSERT_TRUE(checked.ok()) << "seed " << seed << ": " << checked.status().ToString();

  // Quiesce: clear every fault plan, run one full scrub per guardian, and
  // hold the platters to the byte-identical standard.
  for (std::uint32_t g = 0; g < world.guardian_count(); ++g) {
    ReplicatedStore& store = StoreOf(world, g);
    for (std::uint32_t r = 0; r < store.replica_count(); ++r) {
      store.SetReplicaFaultPlan(r, DiskFaultPlan{});
    }
    Result<std::size_t> scrub = store.ScrubRange(0, store.page_count());
    ASSERT_TRUE(scrub.ok()) << "seed " << seed << " guardian " << g << ": "
                            << scrub.status().ToString();
    Result<std::size_t> converged = store.VerifyConverged();
    ASSERT_TRUE(converged.ok()) << "seed " << seed << " guardian " << g << ": "
                                << converged.status().ToString();
    EXPECT_GT(converged.value(), 0u);
  }

  // Whole-disk loss on guardian 0's replica 0, re-silvered online by the
  // same scrub machinery, must converge back to byte-identical replicas.
  ReplicatedStore& store = StoreOf(world, 0);
  store.ReplaceReplica(0, seed * 7 + 3);
  ASSERT_TRUE(store.ScrubRange(0, store.page_count()).ok()) << "seed " << seed;
  store.FinishResilver();
  Result<std::size_t> resilvered = store.VerifyConverged();
  ASSERT_TRUE(resilvered.ok()) << "seed " << seed << " post-resilver: "
                               << resilvered.status().ToString();
}

}  // namespace
}  // namespace argus
