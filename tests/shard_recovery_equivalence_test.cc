// Recovery-equivalence property test for sharded guardian logs (label:
// concurrency, runs under the TSan CI job).
//
// Properties:
//  1. Determinism: parallel N-shard recovery (a worker pool over the shards)
//     produces OT/PT/CT/MT/AS bit-identical to the serial, inline per-shard
//     recovery of the SAME logs — worker scheduling must not leak into the
//     result.
//  2. Semantic equivalence: the same seeded workload driven against a
//     1-shard guardian and an N-shard guardian recovers to the same logical
//     state (PT, CT, AS, and every object's flattened versions), even though
//     the physical entry layout is completely different.
//  3. Fault isolation and retry: a mid-recovery fault confined to ONE shard
//     (both duplexed replicas transiently unreadable — the moral equivalent
//     of that shard's recovery worker dying) fails the whole recovery with
//     the failing shard's error, and a healed retry from the same surviving
//     logs succeeds with the exact serial-equivalent result. The same
//     heal-and-retry works through Guardian::Restart, which must reclaim the
//     surviving state from a failed incarnation instead of stranding it.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/object/flatten.h"
#include "src/recovery/recovery_algorithms.h"
#include "src/stable/duplexed_medium.h"
#include "src/tpc/sim_world.h"
#include "tests/test_support.h"

namespace argus {
namespace {

// ---- Seeded sharded history builder --------------------------------------

struct ShardHistoryConfig {
  std::uint64_t seed = 1;
  std::uint32_t shards = 4;
  bool duplexed = false;
  std::uint32_t disk_seed = 9100;
  std::size_t steps = 50;
};

RecoverySystemConfig MakeShardedConfig(const ShardHistoryConfig& config) {
  RecoverySystemConfig rs_config;
  rs_config.mode = LogMode::kHybrid;
  if (config.duplexed) {
    std::uint32_t disk_seed = config.disk_seed;
    rs_config.medium_factory = [disk_seed] {
      return std::make_unique<DuplexedStableMedium>(disk_seed);
    };
  } else {
    rs_config.medium_factory = [] { return std::make_unique<InMemoryStableMedium>(); };
  }
  rs_config.log_shards = config.shards;
  rs_config.shard_salt = config.seed;  // distinct seeds exercise distinct routings
  return rs_config;
}

// Runs a deterministic mixed workload (committed, aborted, undecided,
// early-prepared, coordinator entries) against a guardian stack with the
// given shard count. All randomness flows from the seed, so two builders
// with the same seed issue the SAME logical operations regardless of how
// many shards the entries land on.
class ShardedHistoryBuilder {
 public:
  explicit ShardedHistoryBuilder(const ShardHistoryConfig& config)
      : config_(config), harness_(std::make_unique<StorageHarness>(MakeShardedConfig(config))) {}

  RecoverySystem::SurvivingState BuildAndCrash() {
    Rng rng(config_.seed);
    StorageHarness& h = *harness_;

    ActionId t0 = Aid(next_seq_++);
    for (int i = 0; i < 6; ++i) {
      RecoverableObject* a = h.ctx(t0).CreateAtomic(h.heap(), Value::Int(i));
      EXPECT_TRUE(h.BindStable(t0, "a" + std::to_string(i), a).ok());
    }
    EXPECT_TRUE(h.PrepareAndCommit(t0).ok());

    for (std::size_t step = 0; step < config_.steps; ++step) {
      switch (rng.NextBelow(8)) {
        case 0:
        case 1:
        case 2:
          CommitRandomWrites(rng);
          break;
        case 3:
          PrepareUndecided(rng);
          break;
        case 4:
          PrepareThenAbort(rng);
          break;
        case 5:
          CoordinatorActivity(rng);
          break;
        case 6:
          CreateAndCommitObject(rng);
          break;
        case 7:
          EarlyPrepareTrailingData(rng);
          break;
      }
    }
    return h.rs().TakeSurvivingState();
  }

 private:
  RecoverableObject* PickUnlocked(Rng& rng) {
    std::vector<RecoverableObject*> candidates;
    const Value& root = harness_->heap().root()->base_version();
    if (!root.is_record()) {
      return nullptr;
    }
    for (const auto& [name, value] : root.as_record()) {
      if (value.is_ref() && !value.as_ref()->is_mutex() && !value.as_ref()->locked()) {
        candidates.push_back(value.as_ref());
      }
    }
    return candidates.empty() ? nullptr : candidates[rng.NextBelow(candidates.size())];
  }

  void CommitRandomWrites(Rng& rng) {
    StorageHarness& h = *harness_;
    ActionId aid = Aid(next_seq_++);
    std::size_t writes = 1 + rng.NextBelow(3);
    bool wrote = false;
    for (std::size_t i = 0; i < writes; ++i) {
      RecoverableObject* obj = PickUnlocked(rng);
      if (obj != nullptr) {
        wrote |= h.ctx(aid)
                     .WriteObject(obj, Value::Int(static_cast<std::int64_t>(rng.NextU64() % 1000)))
                     .ok();
      }
    }
    if (wrote) {
      EXPECT_TRUE(h.PrepareAndCommit(aid).ok());
    }
  }

  void PrepareUndecided(Rng& rng) {
    StorageHarness& h = *harness_;
    RecoverableObject* obj = PickUnlocked(rng);
    if (obj == nullptr) {
      return;
    }
    ActionId aid = Aid(next_seq_++);
    if (h.ctx(aid).WriteObject(obj, Value::Int(-7)).ok()) {
      EXPECT_TRUE(h.PrepareOnly(aid).ok());  // stays undecided at the crash
    }
  }

  void PrepareThenAbort(Rng& rng) {
    StorageHarness& h = *harness_;
    RecoverableObject* obj = PickUnlocked(rng);
    if (obj == nullptr) {
      return;
    }
    ActionId aid = Aid(next_seq_++);
    if (h.ctx(aid).WriteObject(obj, Value::Int(-13)).ok()) {
      EXPECT_TRUE(h.PrepareOnly(aid).ok());
      EXPECT_TRUE(h.AbortPrepared(aid).ok());
    }
  }

  void CoordinatorActivity(Rng& rng) {
    StorageHarness& h = *harness_;
    ActionId aid = Aid(next_seq_++);
    EXPECT_TRUE(h.rs().Committing(aid, {GuardianId{1}, GuardianId{2}}).ok());
    if (rng.NextBool(0.5)) {
      EXPECT_TRUE(h.rs().Done(aid).ok());
    }
  }

  void CreateAndCommitObject(Rng& rng) {
    StorageHarness& h = *harness_;
    ActionId aid = Aid(next_seq_++);
    std::string name = "x" + std::to_string(next_seq_);
    RecoverableObject* obj = h.ctx(aid).CreateAtomic(
        h.heap(), Value::Int(static_cast<std::int64_t>(rng.NextU64() % 100)));
    EXPECT_TRUE(h.BindStable(aid, name, obj).ok());
    EXPECT_TRUE(h.PrepareAndCommit(aid).ok());
  }

  // Stages data entries without an outcome entry; the crash discards the
  // unforced ones, and the forced ones become trailing data the per-shard
  // head-find must skip.
  void EarlyPrepareTrailingData(Rng& rng) {
    StorageHarness& h = *harness_;
    RecoverableObject* obj = PickUnlocked(rng);
    if (obj == nullptr) {
      return;
    }
    ActionId aid = Aid(next_seq_++);
    if (!h.ctx(aid).WriteObject(obj, Value::Int(-99)).ok()) {
      return;
    }
    Result<ModifiedObjectsSet> leftover = h.rs().WriteEntry(aid, h.ctx(aid).TakeMos());
    EXPECT_TRUE(leftover.ok());
    if (rng.NextBool(0.5)) {
      for (std::uint32_t sh = 0; sh < h.rs().shard_count(); ++sh) {
        EXPECT_TRUE(h.rs().shard_log(sh).Force().ok());
      }
    }
    h.ctx(aid).AbortVolatile(h.heap());
  }

  ShardHistoryConfig config_;
  std::unique_ptr<StorageHarness> harness_;
  std::uint64_t next_seq_ = 1;
};

// ---- Result comparison ----------------------------------------------------

struct ShardedRun {
  std::string label;
  std::unique_ptr<VolatileHeap> heap;
  Result<ShardedRecoveryResult> result = Status::Unavailable("recovery not run");
};

ShardedRun RunSharded(const RecoverySystem::SurvivingState& surviving, const std::string& label,
                      std::size_t workers) {
  ShardedRun run;
  run.label = label;
  run.heap = std::make_unique<VolatileHeap>();
  std::vector<StableLog*> raw;
  for (const auto& log : surviving.logs) {
    raw.push_back(log.get());
  }
  ShardedRecoveryOptions options;
  options.workers = workers;
  run.result = RecoverShardedHybridLog(std::span<StableLog* const>(raw.data(), raw.size()),
                                       *run.heap, options);
  return run;
}

void ExpectObjectEquivalent(Uid uid, const ObjectTableEntry& a, const ObjectTableEntry& b,
                            const std::string& label, bool compare_addresses) {
  EXPECT_EQ(a.state, b.state) << label << " OT state of " << to_string(uid);
  if (compare_addresses) {
    EXPECT_EQ(a.mutex_address, b.mutex_address) << label << " mutex_address of " << to_string(uid);
  }
  ASSERT_NE(a.object, nullptr);
  ASSERT_NE(b.object, nullptr);
  EXPECT_EQ(a.object->kind(), b.object->kind()) << label << " kind of " << to_string(uid);
  EXPECT_EQ(FlattenValue(a.object->base_version(), nullptr),
            FlattenValue(b.object->base_version(), nullptr))
      << label << " base version of " << to_string(uid);
  EXPECT_EQ(a.object->has_current(), b.object->has_current())
      << label << " has_current of " << to_string(uid);
  if (a.object->has_current() && b.object->has_current()) {
    EXPECT_EQ(FlattenValue(a.object->current_version(), nullptr),
              FlattenValue(b.object->current_version(), nullptr))
        << label << " current version of " << to_string(uid);
  }
  EXPECT_EQ(a.object->write_locker(), b.object->write_locker())
      << label << " write locker of " << to_string(uid);
}

// Semantic comparison of two RecoveryResults. With `compare_addresses` it is
// the full bit-identity check (same logs, serial vs parallel); without, it
// compares only layout-independent state (1-shard vs N-shard worlds).
void ExpectEquivalentResults(const RecoveryResult& a, const RecoveryResult& b,
                             const std::string& label, bool compare_addresses) {
  EXPECT_EQ(a.pt, b.pt) << label << " PT differs";
  EXPECT_EQ(a.as, b.as) << label << " AS differs";
  if (compare_addresses) {
    EXPECT_EQ(a.mt, b.mt) << label << " MT differs";
    EXPECT_EQ(a.last_outcome, b.last_outcome) << label;
    EXPECT_EQ(a.entries_examined, b.entries_examined) << label;
    EXPECT_EQ(a.data_entries_read, b.data_entries_read) << label;
  } else {
    ASSERT_EQ(a.mt.size(), b.mt.size()) << label << " MT size";
    for (const auto& [uid, addr] : a.mt) {
      EXPECT_TRUE(b.mt.find(uid) != b.mt.end()) << label << " MT missing " << to_string(uid);
    }
  }
  ASSERT_EQ(a.ct.size(), b.ct.size()) << label << " CT size";
  for (const auto& [aid, entry_a] : a.ct) {
    auto it = b.ct.find(aid);
    ASSERT_NE(it, b.ct.end()) << label << " CT missing " << to_string(aid);
    EXPECT_EQ(entry_a.phase, it->second.phase) << label << " CT phase of " << to_string(aid);
    EXPECT_EQ(entry_a.participants, it->second.participants)
        << label << " CT participants of " << to_string(aid);
  }
  ASSERT_EQ(a.ot.size(), b.ot.size()) << label << " OT size";
  for (const auto& [uid, entry_a] : a.ot) {
    auto it = b.ot.find(uid);
    ASSERT_NE(it, b.ot.end()) << label << " OT missing " << to_string(uid);
    ExpectObjectEquivalent(uid, entry_a, it->second, label, compare_addresses);
  }
}

// ---- Property 1: serial == parallel, bit for bit --------------------------

class ShardDeterminismTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardDeterminismTest, ParallelRecoveryEqualsSerial) {
  ScopedFlightRecorderDumpOnFailure dump_guard;
  for (std::uint32_t shards : {2u, 4u}) {
    ShardHistoryConfig config;
    config.seed = GetParam();
    config.shards = shards;
    config.duplexed = (GetParam() % 2) == 0;
    ShardedHistoryBuilder builder(config);
    RecoverySystem::SurvivingState surviving = builder.BuildAndCrash();
    ASSERT_EQ(surviving.logs.size(), shards);
    for (const auto& log : surviving.logs) {
      ASSERT_TRUE(log->RecoverAfterCrash().ok());
    }

    ShardedRun serial = RunSharded(surviving, "serial", /*workers=*/0);
    ShardedRun parallel = RunSharded(surviving, "parallel", /*workers=*/shards);
    ASSERT_TRUE(serial.result.ok()) << serial.result.status().message();
    ASSERT_TRUE(parallel.result.ok()) << parallel.result.status().message();
    EXPECT_EQ(serial.result.value().shard_last_outcomes,
              parallel.result.value().shard_last_outcomes);
    ExpectEquivalentResults(serial.result.value().merged, parallel.result.value().merged,
                            "serial vs parallel (" + std::to_string(shards) + " shards):",
                            /*compare_addresses=*/true);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ShardDeterminismTest, testing::Range<std::uint64_t>(1, 9));

// ---- Property 2: 1 shard == N shards, semantically ------------------------

class ShardSemanticsTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardSemanticsTest, OneShardEqualsFourShards) {
  ScopedFlightRecorderDumpOnFailure dump_guard;
  ShardHistoryConfig single;
  single.seed = GetParam();
  single.shards = 1;
  ShardHistoryConfig sharded = single;
  sharded.shards = 4;

  RecoverySystem::SurvivingState s1 = ShardedHistoryBuilder(single).BuildAndCrash();
  RecoverySystem::SurvivingState s4 = ShardedHistoryBuilder(sharded).BuildAndCrash();
  ASSERT_EQ(s1.logs.size(), 1u);
  ASSERT_EQ(s4.logs.size(), 4u);
  for (const auto& log : s1.logs) {
    ASSERT_TRUE(log->RecoverAfterCrash().ok());
  }
  for (const auto& log : s4.logs) {
    ASSERT_TRUE(log->RecoverAfterCrash().ok());
  }

  VolatileHeap heap1;
  Result<RecoveryResult> single_result = RecoverHybridLog(*s1.logs[0], heap1);
  ASSERT_TRUE(single_result.ok()) << single_result.status().message();

  ShardedRun parallel = RunSharded(s4, "4-shard", /*workers=*/4);
  ASSERT_TRUE(parallel.result.ok()) << parallel.result.status().message();

  ExpectEquivalentResults(single_result.value(), parallel.result.value().merged,
                          "1 shard vs 4 shards:", /*compare_addresses=*/false);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ShardSemanticsTest, testing::Range<std::uint64_t>(1, 7));

// ---- Property 3: single-shard fault, heal, retry ---------------------------

TEST(ShardFaultTest, MidRecoveryShardFaultFailsThenHealedRetryMatchesSerial) {
  ScopedFlightRecorderDumpOnFailure dump_guard;
  ShardHistoryConfig config;
  config.seed = 42;
  config.shards = 4;
  config.duplexed = true;
  ShardedHistoryBuilder builder(config);
  RecoverySystem::SurvivingState surviving = builder.BuildAndCrash();
  for (const auto& log : surviving.logs) {
    ASSERT_TRUE(log->RecoverAfterCrash().ok());
  }

  // The healthy serial answer, for later comparison.
  ShardedRun reference = RunSharded(surviving, "reference", /*workers=*/0);
  ASSERT_TRUE(reference.result.ok());

  // Kill shard 2's recovery worker mid-flight: BOTH replicas of that shard's
  // duplexed store transiently refuse every read, so its chain scan cannot
  // make progress while the other three shards recover fine.
  auto* medium = dynamic_cast<DuplexedStableMedium*>(&surviving.logs[2]->medium());
  ASSERT_NE(medium, nullptr);
  DiskFaultPlan storm;
  storm.transient_read_error_probability = 1.0;
  medium->store().disk_a().set_fault_plan(storm);
  medium->store().disk_b().set_fault_plan(storm);
  // The reference run warmed shard 2's block cache; drop it so the faulted
  // scan actually reaches the (now unreadable) medium.
  surviving.logs[2]->read_cache().Clear();

  ShardedRun faulted = RunSharded(surviving, "faulted", /*workers=*/4);
  ASSERT_FALSE(faulted.result.ok()) << "a wholly unreadable shard must fail recovery";

  // Heal and retry from the same surviving logs: partial progress from the
  // failed attempt (other shards' scans, cache fills) must not poison the
  // rerun — each retry gets a fresh heap and fresh contexts.
  medium->store().disk_a().set_fault_plan(DiskFaultPlan{});
  medium->store().disk_b().set_fault_plan(DiskFaultPlan{});
  ShardedRun healed = RunSharded(surviving, "healed", /*workers=*/4);
  ASSERT_TRUE(healed.result.ok()) << healed.result.status().message();
  ExpectEquivalentResults(reference.result.value().merged, healed.result.value().merged,
                          "reference vs healed retry:", /*compare_addresses=*/true);
}

TEST(ShardFaultTest, GuardianRestartReclaimsSurvivingStateOnFailedRecovery) {
  ScopedFlightRecorderDumpOnFailure dump_guard;
  SimWorldConfig config;
  config.guardian_count = 1;
  config.mode = LogMode::kHybrid;
  config.medium = MediumKind::kDuplexed;
  config.seed = 7;
  config.log_shards = 4;
  SimWorld world(config);
  Guardian& g = world.guardian(0u);

  // A few committed actions so recovery has real state to rebuild.
  for (int i = 0; i < 3; ++i) {
    Result<Guardian::ActionFate> fate =
        world.RunTopAction(GuardianId{0}, [&](SimWorld& w, ActionId aid) -> Status {
          return w.RunAt(aid, GuardianId{0}, [&](Guardian& guard, ActionContext& ctx) {
            RecoverableObject* obj = ctx.CreateAtomic(guard.heap(), Value::Int(10 + i));
            return guard.SetStableVariable(aid, "v" + std::to_string(i), obj);
          });
        });
    ASSERT_TRUE(fate.ok());
    ASSERT_EQ(fate.value(), Guardian::ActionFate::kCommitted);
  }

  // Grab shard 1's medium before the crash; the object survives inside the
  // surviving state and the fault plans with it.
  auto* medium = dynamic_cast<DuplexedStableMedium*>(&g.recovery().shard_log(1).medium());
  ASSERT_NE(medium, nullptr);

  g.Crash();
  DiskFaultPlan storm;
  storm.transient_read_error_probability = 1.0;
  medium->store().disk_a().set_fault_plan(storm);
  medium->store().disk_b().set_fault_plan(storm);

  Result<RecoveryInfo> failed = g.Restart();
  ASSERT_FALSE(failed.ok()) << "restart through an unreadable shard must fail";
  EXPECT_TRUE(g.crashed());

  // Heal; the SAME guardian must be restartable — a failed recovery must not
  // have stranded the stable state inside the dead incarnation.
  medium->store().disk_a().set_fault_plan(DiskFaultPlan{});
  medium->store().disk_b().set_fault_plan(DiskFaultPlan{});
  Result<RecoveryInfo> healed = g.Restart();
  ASSERT_TRUE(healed.ok()) << healed.status().message();
  for (int i = 0; i < 3; ++i) {
    RecoverableObject* obj = g.CommittedStableVariable("v" + std::to_string(i));
    ASSERT_NE(obj, nullptr) << "v" << i << " lost across the faulted restart";
    EXPECT_EQ(FlattenValue(obj->base_version(), nullptr), FlattenValue(Value::Int(10 + i), nullptr));
  }
}

}  // namespace
}  // namespace argus
