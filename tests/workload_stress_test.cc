// Stress tests: the mixed-workload driver over multiple guardians with
// aborts, early prepares, crashes, and automatic checkpoints. The invariant
// is always the same: after a full-world crash, every guardian's recovered
// committed state equals the model of committed actions.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/tpc/workload.h"
#include "tests/test_support.h"

namespace argus {
namespace {

SimWorldConfig MakeWorldConfig(std::size_t guardians, std::uint64_t seed) {
  SimWorldConfig config;
  config.guardian_count = guardians;
  config.mode = LogMode::kHybrid;
  config.seed = seed;
  return config;
}

TEST(WorkloadStress, CleanWorkloadCommitsEverything) {
  SimWorld world(MakeWorldConfig(3, 1));
  WorkloadConfig config;
  config.seed = 1;
  config.abort_probability = 0.0;
  WorkloadDriver driver(&world, config);
  ASSERT_TRUE(driver.Setup().ok());
  ASSERT_TRUE(driver.Run(100).ok());
  EXPECT_EQ(driver.stats().attempted, 100u);
  // With no requested aborts the only failures are lock conflicts.
  EXPECT_GT(driver.stats().committed, 60u);
  Result<std::size_t> checked = driver.VerifyAfterCrash();
  ASSERT_TRUE(checked.ok()) << checked.status().ToString();
  EXPECT_EQ(checked.value(), 3u * 8u);
}

TEST(WorkloadStress, AbortHeavyWorkloadStaysConsistent) {
  SimWorld world(MakeWorldConfig(3, 2));
  WorkloadConfig config;
  config.seed = 2;
  config.abort_probability = 0.5;
  WorkloadDriver driver(&world, config);
  ASSERT_TRUE(driver.Setup().ok());
  ASSERT_TRUE(driver.Run(150).ok());
  EXPECT_GT(driver.stats().aborted, 40u);
  // Aborts must release their locks: commits keep flowing (regression for
  // the self-abort lock leak).
  EXPECT_GT(driver.stats().committed, 40u);
  Result<std::size_t> checked = driver.VerifyAfterCrash();
  ASSERT_TRUE(checked.ok()) << checked.status().ToString();
}

TEST(WorkloadStress, EarlyPrepareWorkload) {
  SimWorld world(MakeWorldConfig(2, 3));
  WorkloadConfig config;
  config.seed = 3;
  config.early_prepare_probability = 0.8;
  config.abort_probability = 0.1;
  WorkloadDriver driver(&world, config);
  ASSERT_TRUE(driver.Setup().ok());
  ASSERT_TRUE(driver.Run(120).ok());
  Result<std::size_t> checked = driver.VerifyAfterCrash();
  ASSERT_TRUE(checked.ok()) << checked.status().ToString();
}

TEST(WorkloadStress, CrashyWorkloadStaysConsistent) {
  SimWorld world(MakeWorldConfig(3, 4));
  WorkloadConfig config;
  config.seed = 4;
  config.crash_probability = 0.15;
  config.abort_probability = 0.05;
  WorkloadDriver driver(&world, config);
  ASSERT_TRUE(driver.Setup().ok());
  ASSERT_TRUE(driver.Run(120).ok());
  EXPECT_GT(driver.stats().crashes, 5u);
  Result<std::size_t> checked = driver.VerifyAfterCrash();
  ASSERT_TRUE(checked.ok()) << checked.status().ToString();
}

TEST(WorkloadStress, CheckpointsDuringWorkload) {
  SimWorld world(MakeWorldConfig(2, 5));
  WorkloadConfig config;
  config.seed = 5;
  CheckpointPolicyConfig checkpoint;
  checkpoint.log_growth_bytes = 8 * 1024;
  config.checkpoint = checkpoint;
  WorkloadDriver driver(&world, config);
  ASSERT_TRUE(driver.Setup().ok());
  ASSERT_TRUE(driver.Run(200).ok());
  EXPECT_GT(driver.stats().checkpoints, 0u);
  Result<std::size_t> checked = driver.VerifyAfterCrash();
  ASSERT_TRUE(checked.ok()) << checked.status().ToString();
}

TEST(WorkloadStress, EverythingAtOnce) {
  SimWorld world(MakeWorldConfig(4, 6));
  WorkloadConfig config;
  config.seed = 6;
  config.max_participants = 3;
  config.abort_probability = 0.15;
  config.early_prepare_probability = 0.4;
  config.crash_probability = 0.08;
  CheckpointPolicyConfig checkpoint;
  checkpoint.log_growth_bytes = 16 * 1024;
  config.checkpoint = checkpoint;
  WorkloadDriver driver(&world, config);
  ASSERT_TRUE(driver.Setup().ok());
  ASSERT_TRUE(driver.Run(200).ok());
  Result<std::size_t> checked = driver.VerifyAfterCrash();
  ASSERT_TRUE(checked.ok()) << checked.status().ToString();
}

TEST(WorkloadStress, SnapshotLiveStatsSerialDriver) {
  // The serial driver maintains the same live counters the concurrent
  // liveness machinery reads. An action counts once world-wide but at every
  // guardian it touched, so with multi-participant actions the per-guardian
  // sum is at least the world-wide total and at most participants x total.
  SimWorld world(MakeWorldConfig(3, 7));
  WorkloadConfig config;
  config.seed = 7;
  config.abort_probability = 0.1;
  WorkloadDriver driver(&world, config);
  ASSERT_TRUE(driver.Setup().ok());
  EXPECT_EQ(driver.SnapshotLiveStats().size(), 3u);
  EXPECT_EQ(driver.live_committed_total(), 0u);
  ASSERT_TRUE(driver.Run(100).ok());
  EXPECT_EQ(driver.live_committed_total(), driver.stats().committed);
  std::vector<WorkloadDriver::LiveGuardianStats> live = driver.SnapshotLiveStats();
  ASSERT_EQ(live.size(), 3u);
  std::uint64_t sum = 0;
  for (const auto& g : live) {
    EXPECT_LE(g.committed, driver.stats().committed);
    sum += g.committed;
    EXPECT_FALSE(g.crashed);
  }
  EXPECT_GE(sum, driver.stats().committed);
  EXPECT_LE(sum, driver.stats().committed * config.max_participants);
}

TEST(WorkloadStress, SnapshotLiveStatsPolledMidRun) {
  // A polling thread reads the snapshot WHILE the concurrent driver runs —
  // the mid-run observability the partial-crash liveness floor depends on.
  // Counters are monotone, so successive world-wide totals never regress,
  // and per-guardian counts never exceed the final tally.
  SimWorld world(MakeWorldConfig(3, 8));
  WorkloadConfig config;
  config.seed = 8;
  config.threads = 3;
  config.abort_probability = 0.1;
  WorkloadDriver driver(&world, config);
  ASSERT_TRUE(driver.Setup().ok());

  std::atomic<bool> done{false};
  std::uint64_t last_total = 0;
  std::size_t polls = 0;
  bool monotone = true;
  std::thread poller([&] {
    while (!done.load(std::memory_order_acquire)) {
      std::vector<WorkloadDriver::LiveGuardianStats> live = driver.SnapshotLiveStats();
      std::uint64_t total = 0;
      for (const auto& g : live) {
        total += g.committed;
      }
      if (total < last_total) {
        monotone = false;
      }
      last_total = total;
      ++polls;
      std::this_thread::yield();
    }
  });
  Status s = driver.Run(200);
  done.store(true, std::memory_order_release);
  poller.join();
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(monotone) << "live committed total regressed mid-run";
  EXPECT_GT(polls, 0u);
  EXPECT_LE(last_total, driver.stats().committed);
  std::uint64_t final_sum = 0;
  for (const auto& g : driver.SnapshotLiveStats()) {
    final_sum += g.committed;
  }
  EXPECT_EQ(final_sum, driver.stats().committed);
}

class WorkloadSeedSweep : public testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, WorkloadSeedSweep, testing::Range<std::uint64_t>(10, 18));

TEST_P(WorkloadSeedSweep, MixedWorkloadConsistency) {
  SimWorld world(MakeWorldConfig(3, GetParam()));
  WorkloadConfig config;
  config.seed = GetParam();
  config.abort_probability = 0.2;
  config.early_prepare_probability = 0.3;
  config.crash_probability = 0.05;
  WorkloadDriver driver(&world, config);
  ASSERT_TRUE(driver.Setup().ok());
  ASSERT_TRUE(driver.Run(80).ok());
  Result<std::size_t> checked = driver.VerifyAfterCrash();
  ASSERT_TRUE(checked.ok()) << checked.status().ToString();
}

}  // namespace
}  // namespace argus
