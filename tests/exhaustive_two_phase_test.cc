// Exhaustive two-phase-commit exploration.
//
// Instead of sampling random schedules, this test SYSTEMATICALLY enumerates
// message-delivery interleavings (and, in the second suite, crash points) for
// a small distributed action, replaying the deterministic simulation from
// scratch for each schedule. Every terminal state must satisfy the atomicity
// invariants:
//
//   A1  both participants apply the action, or neither does (after all
//       failures are resolved);
//   A2  if the coordinator reports committed, both participants applied it;
//   A3  no participant is left holding locks once the protocol has settled.
//
// The schedule space: at each step with k deliverable messages, branch on
// which one is delivered. A special branch value crashes-and-restarts a
// chosen guardian at that point. Depth-first with replay keeps the state
// space honest (no state cloning shortcuts).

#include <gtest/gtest.h>

#include "src/tpc/sim_world.h"
#include "tests/test_support.h"

namespace argus {
namespace {

struct Outcome {
  bool coordinator_committed = false;
  std::int64_t x = -1;
  std::int64_t y = -1;
  bool locks_clear = false;
};

// Replays one schedule. Each element of `schedule` picks which pending
// message to deliver; kCrash1/kCrash2 crash-and-restart that guardian
// instead. When the schedule is exhausted the run is driven to quiescence
// (pump + requery retries). Returns the branching factor observed at the
// first step past the schedule (0 when the run had already settled), plus
// the terminal outcome.
constexpr int kCrash1 = -1;
constexpr int kCrash2 = -2;

std::pair<Outcome, std::size_t> Replay(const std::vector<int>& schedule) {
  SimWorldConfig config;
  config.guardian_count = 3;
  config.mode = LogMode::kHybrid;
  config.seed = 1;
  SimWorld world(config);

  // Seed x@G1, y@G2.
  for (std::uint32_t g = 1; g <= 2; ++g) {
    Result<Guardian::ActionFate> fate =
        world.RunTopAction(GuardianId{g}, [&](SimWorld& w, ActionId aid) -> Status {
          return w.RunAt(aid, GuardianId{g}, [&](Guardian& guard, ActionContext& ctx) {
            RecoverableObject* obj = ctx.CreateAtomic(guard.heap(), Value::Int(0));
            return guard.SetStableVariable(aid, "v", obj);
          });
        });
    ARGUS_CHECK(fate.ok() && fate.value() == Guardian::ActionFate::kCommitted);
  }

  // The action under test: v+=1 at both G1 and G2, coordinated by G0.
  Guardian& g0 = world.guardian(0);
  ActionId aid = g0.BeginTopAction();
  for (std::uint32_t g = 1; g <= 2; ++g) {
    Status s = world.RunAt(aid, GuardianId{g}, [&](Guardian& guard, ActionContext& ctx) {
      Result<RecoverableObject*> v = guard.GetStableVariable(aid, "v");
      if (!v.ok()) {
        return v.status();
      }
      return ctx.UpdateObject(v.value(), [](Value& b) { b = Value::Int(b.as_int() + 1); });
    });
    ARGUS_CHECK(s.ok());
  }
  ARGUS_CHECK(g0.RequestCommit(aid).ok());

  // Apply the schedule.
  for (int pick : schedule) {
    if (pick == kCrash1 || pick == kCrash2) {
      std::uint32_t victim = pick == kCrash1 ? 1 : 2;
      if (!world.guardian(victim).crashed()) {
        world.guardian(victim).Crash();
        Result<RecoveryInfo> info = world.guardian(victim).Restart();
        ARGUS_CHECK(info.ok());
      }
      continue;
    }
    std::optional<Message> m =
        world.network().DeliverAt(static_cast<std::size_t>(pick) %
                                  std::max<std::size_t>(world.network().pending(), 1));
    if (m.has_value()) {
      world.guardian(m->to).HandleMessage(*m);
    }
  }
  std::size_t branching = world.network().pending();

  // Settle: pump, give the coordinator its timeout decision if still
  // preparing, and let prepared participants requery until quiescent.
  world.Pump();
  if (g0.FateOf(aid) == Guardian::ActionFate::kInProgress) {
    g0.AbortTopAction(aid);  // timeout path
    world.Pump();
  }
  for (int round = 0; round < 4; ++round) {
    world.guardian(1).RequeryOutstanding();
    world.guardian(2).RequeryOutstanding();
    world.Pump();
  }

  Outcome out;
  out.coordinator_committed = g0.FateOf(aid) == Guardian::ActionFate::kCommitted;
  RecoverableObject* x = world.guardian(1).CommittedStableVariable("v");
  RecoverableObject* y = world.guardian(2).CommittedStableVariable("v");
  out.x = x == nullptr ? -1 : x->base_version().as_int();
  out.y = y == nullptr ? -1 : y->base_version().as_int();
  out.locks_clear = x != nullptr && y != nullptr && !x->locked() && !y->locked();
  return {out, branching};
}

void CheckInvariants(const Outcome& out, const std::string& label) {
  ASSERT_EQ(out.x, out.y) << "A1 atomicity violated: " << label;
  if (out.coordinator_committed) {
    EXPECT_EQ(out.x, 1) << "A2 violated: " << label;
  }
  EXPECT_TRUE(out.locks_clear) << "A3 violated: " << label;
}

std::string LabelOf(const std::vector<int>& schedule) {
  std::string label = "[";
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    if (i > 0) {
      label += ",";
    }
    label += std::to_string(schedule[i]);
  }
  return label + "]";
}

TEST(ExhaustiveTwoPhase, AllDeliveryInterleavings) {
  // DFS over delivery choices only (no crashes). The protocol for 2
  // participants has 8 messages; branching is bounded by pending count.
  std::vector<std::vector<int>> frontier = {{}};
  std::size_t explored = 0;
  std::size_t committed_runs = 0;
  while (!frontier.empty()) {
    std::vector<int> schedule = std::move(frontier.back());
    frontier.pop_back();
    auto [outcome, branching] = Replay(schedule);
    ++explored;
    CheckInvariants(outcome, LabelOf(schedule));
    if (outcome.coordinator_committed) {
      ++committed_runs;
    }
    if (schedule.size() < 8 && branching > 0) {
      for (std::size_t pick = 0; pick < branching; ++pick) {
        std::vector<int> next = schedule;
        next.push_back(static_cast<int>(pick));
        frontier.push_back(std::move(next));
      }
    }
    ASSERT_LT(explored, 5000u) << "state space larger than expected";
  }
  // Without failures every interleaving commits.
  EXPECT_EQ(committed_runs, explored);
  EXPECT_GT(explored, 20u);
}

TEST(ExhaustiveTwoPhase, EveryCrashPointOfEachParticipant) {
  // For every prefix length L of the no-crash schedule and each victim,
  // deliver L messages in order, crash the victim, then settle.
  for (int victim : {kCrash1, kCrash2}) {
    for (int prefix = 0; prefix <= 8; ++prefix) {
      std::vector<int> schedule;
      for (int i = 0; i < prefix; ++i) {
        schedule.push_back(0);  // deliver in FIFO order
      }
      schedule.push_back(victim);
      auto [outcome, branching] = Replay(schedule);
      (void)branching;
      CheckInvariants(outcome, LabelOf(schedule));
    }
  }
}

TEST(ExhaustiveTwoPhase, CrashPairsAtEveryPoint) {
  // Both participants crash at (possibly different) points.
  for (int first = 0; first <= 6; ++first) {
    for (int gap = 0; gap <= 3; ++gap) {
      std::vector<int> schedule;
      for (int i = 0; i < first; ++i) {
        schedule.push_back(0);
      }
      schedule.push_back(kCrash1);
      for (int i = 0; i < gap; ++i) {
        schedule.push_back(0);
      }
      schedule.push_back(kCrash2);
      auto [outcome, branching] = Replay(schedule);
      (void)branching;
      CheckInvariants(outcome, LabelOf(schedule));
    }
  }
}

TEST(ExhaustiveTwoPhase, DuplicatedMessagesAreHarmless) {
  // At-least-once delivery: every message duplicated; invariants must hold.
  SimWorldConfig config;
  config.guardian_count = 3;
  config.mode = LogMode::kHybrid;
  config.seed = 2;
  SimWorld world(config);
  world.network().set_duplicate_probability(1.0);

  for (std::uint32_t g = 1; g <= 2; ++g) {
    Result<Guardian::ActionFate> fate =
        world.RunTopAction(GuardianId{g}, [&](SimWorld& w, ActionId aid) -> Status {
          return w.RunAt(aid, GuardianId{g}, [&](Guardian& guard, ActionContext& ctx) {
            RecoverableObject* obj = ctx.CreateAtomic(guard.heap(), Value::Int(0));
            return guard.SetStableVariable(aid, "v", obj);
          });
        });
    ASSERT_TRUE(fate.ok());
    ASSERT_EQ(fate.value(), Guardian::ActionFate::kCommitted);
  }
  Result<Guardian::ActionFate> fate =
      world.RunTopAction(GuardianId{0}, [&](SimWorld& w, ActionId aid) -> Status {
        for (std::uint32_t g = 1; g <= 2; ++g) {
          Status s = w.RunAt(aid, GuardianId{g}, [&](Guardian& guard, ActionContext& ctx) {
            Result<RecoverableObject*> v = guard.GetStableVariable(aid, "v");
            if (!v.ok()) {
              return v.status();
            }
            return ctx.UpdateObject(v.value(),
                                    [](Value& b) { b = Value::Int(b.as_int() + 1); });
          });
          if (!s.ok()) {
            return s;
          }
        }
        return Status::Ok();
      });
  ASSERT_TRUE(fate.ok());
  EXPECT_EQ(fate.value(), Guardian::ActionFate::kCommitted);
  EXPECT_EQ(world.guardian(1).CommittedStableVariable("v")->base_version(), Value::Int(1));
  EXPECT_EQ(world.guardian(2).CommittedStableVariable("v")->base_version(), Value::Int(1));
}

}  // namespace
}  // namespace argus
