// The observability subsystem: registry semantics (counters, gauges,
// histograms, JSON snapshot shape), trace events with logical timestamps,
// the per-thread flight recorder, and the determinism contract — two runs of
// the same seeded workload emit identical event sequences.
//
// Also covers the steady-state MT dereference path (LogWriter::
// ReadMutexVersion) and its cache-hit accounting, which rides on the same
// registry.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/recovery/log_writer.h"
#include "src/tpc/workload.h"
#include "tests/test_support.h"

namespace argus {
namespace {

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(ObsCounter, AddAndResetSemantics) {
  obs::Counter* c = obs::GetCounter("test.counter.basic");
  c->Reset();
  EXPECT_EQ(c->Value(), 0u);
  c->Increment();
  c->Add(41);
  EXPECT_EQ(c->Value(), 42u);
  c->Reset();
  EXPECT_EQ(c->Value(), 0u);
}

TEST(ObsCounter, SameNameSameHandle) {
  obs::Counter* a = obs::GetCounter("test.counter.identity");
  obs::Counter* b = obs::GetCounter("test.counter.identity");
  EXPECT_EQ(a, b);
  // Distinct labels are distinct metrics under the same base name.
  obs::Counter* labeled =
      obs::GetCounter(obs::Labeled("test.counter.identity", {{"g", "0"}}));
  EXPECT_NE(a, labeled);
}

TEST(ObsCounter, RuntimeDisableStopsAccumulation) {
  obs::Counter* c = obs::GetCounter("test.counter.disable");
  c->Reset();
  bool prev = obs::SetEnabled(false);
  c->Add(7);
  EXPECT_EQ(c->Value(), 0u);
  obs::SetEnabled(true);
  c->Add(7);
  EXPECT_EQ(c->Value(), 7u);
  obs::SetEnabled(prev);
}

TEST(ObsGauge, LastWriteWins) {
  obs::Gauge* g = obs::GetGauge("test.gauge.basic");
  g->Set(0.25);
  g->Set(0.75);
  EXPECT_DOUBLE_EQ(g->Value(), 0.75);
  g->Reset();
  EXPECT_DOUBLE_EQ(g->Value(), 0.0);
}

TEST(ObsHistogram, PowerOfTwoBuckets) {
  obs::Histogram* h = obs::GetHistogram("test.hist.buckets");
  h->Reset();
  h->Record(0);     // bucket 0: exactly zero
  h->Record(1);     // bucket 1: [1, 1]
  h->Record(2);     // bucket 2: [2, 3]
  h->Record(3);     // bucket 2
  h->Record(1000);  // bucket 10: [512, 1023]
  EXPECT_EQ(h->Count(), 5u);
  EXPECT_EQ(h->Sum(), 1006u);
  EXPECT_EQ(h->Max(), 1000u);
  EXPECT_EQ(h->BucketCount(0), 1u);
  EXPECT_EQ(h->BucketCount(1), 1u);
  EXPECT_EQ(h->BucketCount(2), 2u);
  EXPECT_EQ(h->BucketCount(10), 1u);
  EXPECT_EQ(obs::Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(obs::Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(obs::Histogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(obs::Histogram::BucketUpperBound(10), 1023u);
}

TEST(ObsHistogram, ApproxPercentileReturnsBucketUpperBounds) {
  obs::Histogram* h = obs::GetHistogram("test.hist.percentile");
  h->Reset();
  EXPECT_EQ(h->ApproxPercentile(50.0), 0u);  // empty
  for (int i = 0; i < 99; ++i) {
    h->Record(1);
  }
  h->Record(1 << 20);
  EXPECT_EQ(h->ApproxPercentile(50.0), 1u);
  // The single outlier owns the very top of the distribution.
  EXPECT_GE(h->ApproxPercentile(99.95), std::uint64_t{1} << 20);
}

TEST(ObsHistogram, OverflowClampsIntoLastBucket) {
  obs::Histogram* h = obs::GetHistogram("test.hist.clamp");
  h->Reset();
  h->Record(~std::uint64_t{0});
  EXPECT_EQ(h->Count(), 1u);
  EXPECT_EQ(h->BucketCount(obs::Histogram::kBuckets - 1), 1u);
}

TEST(ObsRegistry, LabeledNameFormat) {
  EXPECT_EQ(obs::Labeled("log.forces", {{"guardian", "3"}}), "log.forces{guardian=3}");
  EXPECT_EQ(obs::Labeled("x", {{"a", "1"}, {"b", "2"}}), "x{a=1,b=2}");
  EXPECT_EQ(obs::Labeled("bare", {}), "bare");
}

TEST(ObsRegistry, JsonSnapshotShape) {
  obs::GetCounter("test.json.counter")->Reset();
  obs::GetCounter("test.json.counter")->Add(3);
  obs::GetGauge("test.json.gauge")->Set(0.5);
  obs::Histogram* h = obs::GetHistogram("test.json.hist");
  h->Reset();
  h->Record(100);

  std::string doc = obs::Registry::Global().ToJson();
  EXPECT_NE(doc.find("\"schema\":\"argus.metrics.v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(doc.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(doc.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(doc.find("\"test.json.counter\":3"), std::string::npos);
  EXPECT_NE(doc.find("\"test.json.hist\":{\"count\":1"), std::string::npos);
  EXPECT_NE(doc.find("\"buckets\":["), std::string::npos);
  // Instrumented layers register at first touch; the storage stack built by
  // other tests in this binary (and the workload below) guarantees the core
  // names are present in any full-suite snapshot.
}

// ---------------------------------------------------------------------------
// Trace events and the flight recorder
// ---------------------------------------------------------------------------

TEST(ObsTrace, LogicalTimestampsAndFormat) {
  obs::ResetTraceForTest();
  obs::Emit("test.ev", 1, 2, 3);
  obs::EmitBegin("test.span", 9);
  obs::EmitEnd("test.span", 9);
  std::vector<obs::TraceEvent> events = obs::SnapshotFlightRecorders();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_STREQ(events[0].name, "test.ev");
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(events[2].seq, 2u);
  EXPECT_EQ(events[0].kind, obs::EventKind::kInstant);
  EXPECT_EQ(events[1].kind, obs::EventKind::kBegin);
  EXPECT_EQ(events[2].kind, obs::EventKind::kEnd);
  EXPECT_EQ(FormatEvent(events[0]), "t0 #0 I test.ev a=1 b=2 c=3");
  EXPECT_EQ(FormatEvent(events[1]), "t0 #1 B test.span a=9 b=0 c=0");
}

TEST(ObsTrace, DumpGroupsByThread) {
  obs::ResetTraceForTest();
  obs::Emit("test.dump.ev", 5);
  std::string dump = obs::DumpFlightRecorders();
  EXPECT_NE(dump.find("=== flight recorder (1 threads) ==="), std::string::npos);
  EXPECT_NE(dump.find("--- thread 0 ---"), std::string::npos);
  EXPECT_NE(dump.find("test.dump.ev a=5"), std::string::npos);
}

TEST(ObsTrace, RingKeepsOnlyTheLastCapacityEvents) {
  obs::ResetTraceForTest();
  for (std::uint64_t i = 0; i < obs::kFlightRecorderCapacity + 10; ++i) {
    obs::Emit("test.ring.ev", i);
  }
  std::vector<obs::TraceEvent> events = obs::SnapshotFlightRecorders();
  ASSERT_EQ(events.size(), obs::kFlightRecorderCapacity);
  // Oldest first, and the window ends at the most recent emission.
  EXPECT_EQ(events.front().a, 10u);
  EXPECT_EQ(events.back().a, obs::kFlightRecorderCapacity + 9);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
  }
}

TEST(ObsTrace, DisabledEmitsNothing) {
  obs::ResetTraceForTest();
  bool prev = obs::SetEnabled(false);
  obs::Emit("test.disabled.ev");
  obs::SetEnabled(prev);
  // The emit above must not have registered a ring entry.
  EXPECT_TRUE(obs::SnapshotFlightRecorders().empty());
}

// ---------------------------------------------------------------------------
// Trace determinism: same seed, same event sequence
// ---------------------------------------------------------------------------

void CaptureSink(void* ctx, const obs::TraceEvent& e) {
  static_cast<std::vector<std::string>*>(ctx)->push_back(FormatEvent(e));
}

// Runs the serial (single-threaded, network-driven) workload and captures the
// COMPLETE emitted event sequence via the test sink (the ring only keeps a
// window).
std::vector<std::string> SerialWorkloadTrace(std::uint64_t seed) {
  obs::ResetTraceForTest();
  std::vector<std::string> lines;
  obs::SetTraceSink(&CaptureSink, &lines);
  SimWorldConfig wc;
  wc.guardian_count = 2;
  wc.mode = LogMode::kHybrid;
  wc.seed = seed;
  SimWorld world(wc);
  WorkloadConfig config;
  config.seed = seed;
  config.crash_probability = 0.05;
  WorkloadDriver driver(&world, config);
  EXPECT_TRUE(driver.Setup().ok());
  EXPECT_TRUE(driver.Run(40).ok());
  obs::SetTraceSink(nullptr, nullptr);
  return lines;
}

TEST(ObsTraceDeterminism, SameSeedSameEventSequence) {
  std::vector<std::string> first = SerialWorkloadTrace(2026);
  std::vector<std::string> second = SerialWorkloadTrace(2026);
  ASSERT_GT(first.size(), 100u);  // the workload actually traced
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    ASSERT_EQ(first[i], second[i]) << "divergence at event " << i;
  }
  // And a different seed takes a different path (the test is not vacuous).
  std::vector<std::string> other = SerialWorkloadTrace(2027);
  EXPECT_NE(first, other);
}

// ---------------------------------------------------------------------------
// Steady-state MT dereference (LogWriter::ReadMutexVersion)
// ---------------------------------------------------------------------------

TEST(ObsMutexTableReads, ReadsLatestPreparedVersionThroughCache) {
  auto log = MakeMemLog();
  VolatileHeap heap;
  LogWriter writer(LogMode::kSimple, log.get(), &heap);

  ActionId t1 = Aid(1);
  ActionContext ctx(t1);
  RecoverableObject* m = ctx.CreateMutex(heap, Value::Int(42));
  ASSERT_TRUE(ctx.UpdateObject(heap.root(), [&](Value& r) {
    r.as_record()["m"] = Value::Ref(m);
  }).ok());
  ASSERT_TRUE(writer.Prepare(t1, ctx.TakeMos()).ok());
  ASSERT_TRUE(writer.mutex_table().contains(m->uid()));

  obs::Counter* reads = obs::GetCounter("recovery.mt_reads");
  obs::Counter* hits = obs::GetCounter("recovery.mt_read_hits");
  std::uint64_t reads0 = reads->Value();
  std::uint64_t hits0 = hits->Value();

  // First dereference: the frame enters (and validates in) the read cache.
  Result<LogEntry> entry = writer.ReadMutexVersion(m->uid());
  ASSERT_TRUE(entry.ok()) << entry.status().ToString();
  const auto* data = std::get_if<DataEntry>(&entry.value());
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->kind, ObjectKind::kMutex);
  EXPECT_EQ(data->uid, m->uid());

  // Second dereference of the same version: served from the validated
  // residence — no medium read, no re-CRC — and counted as a hit.
  Result<LogEntry> again = writer.ReadMutexVersion(m->uid());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(reads->Value(), reads0 + 2);
  EXPECT_GE(hits->Value(), hits0 + 1);
  EXPECT_GT(obs::GetGauge("recovery.mt_hit_rate")->Value(), 0.0);
}

TEST(ObsMutexTableReads, UnknownUidIsNotFound) {
  auto log = MakeMemLog();
  VolatileHeap heap;
  LogWriter writer(LogMode::kHybrid, log.get(), &heap);
  Result<LogEntry> entry = writer.ReadMutexVersion(Uid{12345});
  ASSERT_FALSE(entry.ok());
  EXPECT_EQ(entry.status().code(), ErrorCode::kNotFound);
}

}  // namespace
}  // namespace argus
