// Guardian-level protocol edge cases: duplicate deliveries, stale messages,
// aborts past the commit point, lossy networks, and partitions.

#include <gtest/gtest.h>

#include "src/obs/metrics.h"
#include "src/tpc/sim_world.h"
#include "tests/test_support.h"

namespace argus {
namespace {

SimWorldConfig MakeConfig(std::size_t guardians, std::uint64_t seed = 17) {
  SimWorldConfig config;
  config.guardian_count = guardians;
  config.mode = LogMode::kHybrid;
  config.seed = seed;
  return config;
}

void SeedVar(SimWorld& world, GuardianId gid, const std::string& name, std::int64_t value) {
  Result<Guardian::ActionFate> fate =
      world.RunTopAction(gid, [&](SimWorld& w, ActionId aid) -> Status {
        return w.RunAt(aid, gid, [&](Guardian& g, ActionContext& ctx) -> Status {
          RecoverableObject* obj = ctx.CreateAtomic(g.heap(), Value::Int(value));
          return g.SetStableVariable(aid, name, obj);
        });
      });
  ASSERT_TRUE(fate.ok());
  ASSERT_EQ(fate.value(), Guardian::ActionFate::kCommitted);
}

std::int64_t ReadVar(SimWorld& world, GuardianId gid, const std::string& name) {
  RecoverableObject* obj = world.guardian(gid).CommittedStableVariable(name);
  return obj == nullptr ? -1 : obj->base_version().as_int();
}

ActionId StartIncrement(SimWorld& world, GuardianId target) {
  Guardian& g0 = world.guardian(0);
  ActionId aid = g0.BeginTopAction();
  Status s = world.RunAt(aid, target, [&](Guardian& g, ActionContext& ctx) -> Status {
    Result<RecoverableObject*> v = g.GetStableVariable(aid, "x");
    if (!v.ok()) {
      return v.status();
    }
    return ctx.UpdateObject(v.value(), [](Value& b) { b = Value::Int(b.as_int() + 1); });
  });
  EXPECT_TRUE(s.ok());
  return aid;
}

TEST(GuardianProtocol, DuplicatePrepareIsIdempotent) {
  SimWorld world(MakeConfig(2));
  SeedVar(world, GuardianId{1}, "x", 0);
  ActionId aid = StartIncrement(world, GuardianId{1});
  ASSERT_TRUE(world.guardian(0).RequestCommit(aid).ok());
  // Inject a duplicate prepare before pumping.
  world.network().Send(Message{GuardianId{0}, GuardianId{1}, MessageType::kPrepare, aid, false});
  world.Pump();
  EXPECT_EQ(world.guardian(0).FateOf(aid), Guardian::ActionFate::kCommitted);
  EXPECT_EQ(ReadVar(world, GuardianId{1}, "x"), 1);
}

TEST(GuardianProtocol, DuplicateCommitIsIdempotent) {
  SimWorld world(MakeConfig(2));
  SeedVar(world, GuardianId{1}, "x", 0);
  ActionId aid = StartIncrement(world, GuardianId{1});
  ASSERT_TRUE(world.guardian(0).RequestCommit(aid).ok());
  world.Pump();
  std::uint64_t forces = world.guardian(1).recovery().log().stats().forces;
  // A stale duplicate commit arrives late.
  world.network().Send(Message{GuardianId{0}, GuardianId{1}, MessageType::kCommit, aid, false});
  world.Pump();
  EXPECT_EQ(ReadVar(world, GuardianId{1}, "x"), 1);
  // No extra committed record was forced.
  EXPECT_EQ(world.guardian(1).recovery().log().stats().forces, forces);
}

TEST(GuardianProtocol, AbortAfterCommitPointIsRefused) {
  SimWorld world(MakeConfig(2));
  SeedVar(world, GuardianId{1}, "x", 0);
  ActionId aid = StartIncrement(world, GuardianId{1});
  ASSERT_TRUE(world.guardian(0).RequestCommit(aid).ok());
  world.Step();  // prepare
  world.Step();  // ack → committing record forced: the commit point
  world.guardian(0).AbortTopAction(aid);  // must be a no-op now
  world.Pump();
  EXPECT_EQ(world.guardian(0).FateOf(aid), Guardian::ActionFate::kCommitted);
  EXPECT_EQ(ReadVar(world, GuardianId{1}, "x"), 1);
}

TEST(GuardianProtocol, StaleQueryAfterDoneGetsCommitReply) {
  SimWorld world(MakeConfig(2));
  SeedVar(world, GuardianId{1}, "x", 0);
  ActionId aid = StartIncrement(world, GuardianId{1});
  ASSERT_TRUE(world.guardian(0).RequestCommit(aid).ok());
  world.Pump();
  ASSERT_TRUE(world.guardian(0).TwoPhaseDone(aid));
  // A participant (pretend it lost its state) queries after done.
  world.network().Send(Message{GuardianId{1}, GuardianId{0}, MessageType::kQuery, aid, false});
  auto reply_probe = [&]() -> bool {
    // Deliver the query; the reply lands in the queue next.
    world.Step();
    std::optional<Message> reply = world.network().NextDelivery();
    EXPECT_TRUE(reply.has_value());
    EXPECT_EQ(reply->type, MessageType::kQueryReply);
    return reply->positive;
  };
  EXPECT_TRUE(reply_probe());
}

TEST(GuardianProtocol, QueryForUnknownActionGetsAbortReply) {
  SimWorld world(MakeConfig(2));
  ActionId phantom{GuardianId{0}, 999};
  world.network().Send(
      Message{GuardianId{1}, GuardianId{0}, MessageType::kQuery, phantom, false});
  world.Step();
  std::optional<Message> reply = world.network().NextDelivery();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, MessageType::kQueryReply);
  EXPECT_FALSE(reply->positive);
}

TEST(GuardianProtocol, LossyNetworkEventuallyCommitsWithRetries) {
  SimWorld world(MakeConfig(2, 23));
  SeedVar(world, GuardianId{1}, "x", 0);
  ActionId aid = StartIncrement(world, GuardianId{1});
  world.network().set_drop_probability(0.4);
  ASSERT_TRUE(world.guardian(0).RequestCommit(aid).ok());
  world.Pump();
  world.network().set_drop_probability(0.0);
  // Drive retries until the protocol settles: prepared participants re-query;
  // a committing coordinator replies commit through QueryReply.
  for (int i = 0; i < 20 && !world.guardian(0).TwoPhaseDone(aid); ++i) {
    world.guardian(1).RequeryOutstanding();
    world.Pump();
    if (world.guardian(0).FateOf(aid) == Guardian::ActionFate::kInProgress) {
      // The prepare itself may have been lost; a real system re-sends it.
      ASSERT_TRUE(world.guardian(0).RequestCommit(aid).ok());
      world.Pump();
    }
  }
  Guardian::ActionFate fate = world.guardian(0).FateOf(aid);
  if (fate == Guardian::ActionFate::kCommitted) {
    EXPECT_EQ(ReadVar(world, GuardianId{1}, "x"), 1);
  } else {
    EXPECT_EQ(ReadVar(world, GuardianId{1}, "x"), 0);
  }
}

TEST(GuardianProtocol, MessagesToCrashedGuardianAreCounted) {
  SimWorld world(MakeConfig(2));
  SeedVar(world, GuardianId{1}, "x", 0);
  ActionId aid = StartIncrement(world, GuardianId{1});
  world.guardian(1).Crash();
  ASSERT_TRUE(world.guardian(0).RequestCommit(aid).ok());
  world.Pump();
  EXPECT_GE(world.guardian(1).messages_dropped_while_crashed(), 1u);
}

TEST(GuardianProtocol, PartitionedParticipantHealsAndCommits) {
  SimWorld world(MakeConfig(2));
  SeedVar(world, GuardianId{1}, "x", 0);
  ActionId aid = StartIncrement(world, GuardianId{1});
  world.network().Partition(GuardianId{1});
  ASSERT_TRUE(world.guardian(0).RequestCommit(aid).ok());
  world.Pump();  // prepare dropped
  EXPECT_EQ(world.guardian(0).FateOf(aid), Guardian::ActionFate::kInProgress);
  world.network().Heal(GuardianId{1});
  // Coordinator re-sends the prepare (retry).
  ASSERT_TRUE(world.guardian(0).RequestCommit(aid).ok());
  world.Pump();
  EXPECT_EQ(world.guardian(0).FateOf(aid), Guardian::ActionFate::kCommitted);
  EXPECT_EQ(ReadVar(world, GuardianId{1}, "x"), 1);
}

TEST(GuardianProtocol, SelfAbortReleasesCoordinatorLocks) {
  // Regression: AbortTopAction records the aborted outcome before the
  // self-addressed abort message is delivered; the handler must still
  // release the coordinator's own locks.
  SimWorld world(MakeConfig(1));
  SeedVar(world, GuardianId{0}, "x", 5);
  Guardian& g0 = world.guardian(0);
  ActionId aid = g0.BeginTopAction();
  ASSERT_TRUE(world.RunAt(aid, GuardianId{0}, [&](Guardian& g, ActionContext& ctx) -> Status {
    Result<RecoverableObject*> v = g.GetStableVariable(aid, "x");
    if (!v.ok()) {
      return v.status();
    }
    return ctx.UpdateObject(v.value(), [](Value& b) { b = Value::Int(6); });
  }).ok());
  g0.AbortTopAction(aid);
  world.Pump();
  RecoverableObject* x = g0.CommittedStableVariable("x");
  EXPECT_FALSE(x->locked());
  EXPECT_EQ(x->base_version(), Value::Int(5));
  // A fresh action can take the lock and commit.
  Result<Guardian::ActionFate> fate =
      world.RunTopAction(GuardianId{0}, [&](SimWorld& w, ActionId next) -> Status {
        return w.RunAt(next, GuardianId{0}, [&](Guardian& g, ActionContext& ctx) -> Status {
          Result<RecoverableObject*> v = g.GetStableVariable(next, "x");
          if (!v.ok()) {
            return v.status();
          }
          return ctx.UpdateObject(v.value(), [](Value& b) { b = Value::Int(7); });
        });
      });
  ASSERT_TRUE(fate.ok());
  EXPECT_EQ(fate.value(), Guardian::ActionFate::kCommitted);
  EXPECT_EQ(ReadVar(world, GuardianId{0}, "x"), 7);
}

TEST(GuardianProtocol, CoordinatorCrashBeforeCommitPointResolvesAsPresumedAbort) {
  // The §2.2.3 presumed-abort end-to-end: the participant prepares and holds
  // its lock; the coordinator crashes BEFORE forcing the committing record.
  // After its restart the coordinator's table has no trace of the action —
  // and that absence IS the abort verdict, delivered via kQuery/kQueryReply.
  SimWorld world(MakeConfig(2, 29));
  SeedVar(world, GuardianId{1}, "x", 0);
  const std::uint64_t presumed_before = obs::GetCounter("tpc.presumed_aborts")->Value();
  ActionId aid = StartIncrement(world, GuardianId{1});
  ASSERT_TRUE(world.guardian(0).RequestCommit(aid).ok());
  world.Step();  // prepare delivered: participant 1 is now prepared, in doubt
  ASSERT_EQ(world.guardian(1).FateOf(aid), Guardian::ActionFate::kInProgress);

  world.guardian(0).Crash();  // the ack (and the commit point) die with it
  world.Pump();
  ASSERT_TRUE(world.guardian(0).Restart().ok());

  // The in-doubt participant re-queries; the restarted coordinator has no
  // job for the aid, so the reply is negative.
  world.guardian(1).RequeryOutstanding();
  world.Pump();
  EXPECT_EQ(world.guardian(1).FateOf(aid), Guardian::ActionFate::kAborted);
  EXPECT_EQ(ReadVar(world, GuardianId{1}, "x"), 0);
  EXPECT_GE(obs::GetCounter("tpc.presumed_aborts")->Value(), presumed_before + 1);

  // The presumed abort released the lock: fresh traffic commits.
  ActionId next = StartIncrement(world, GuardianId{1});
  ASSERT_TRUE(world.guardian(0).RequestCommit(next).ok());
  world.Pump();
  EXPECT_EQ(world.guardian(0).FateOf(next), Guardian::ActionFate::kCommitted);
  EXPECT_EQ(ReadVar(world, GuardianId{1}, "x"), 1);
}

TEST(GuardianProtocol, CoordinatorCrashAfterCommitPointResolvesAsCommit) {
  // The mirror case: the committing record WAS forced before the crash, so
  // the restarted coordinator recovers the decision and the same query path
  // answers commit — the participant applies, not aborts.
  SimWorld world(MakeConfig(2, 31));
  SeedVar(world, GuardianId{1}, "x", 0);
  ActionId aid = StartIncrement(world, GuardianId{1});
  ASSERT_TRUE(world.guardian(0).RequestCommit(aid).ok());
  world.Step();  // prepare → participant prepared
  world.Step();  // ack → committing record forced: the commit point
  world.guardian(0).Crash();  // kCommit messages die with the coordinator
  world.Pump();
  ASSERT_TRUE(world.guardian(0).Restart().ok());

  world.guardian(1).RequeryOutstanding();
  world.Pump();
  EXPECT_EQ(world.guardian(1).FateOf(aid), Guardian::ActionFate::kCommitted);
  EXPECT_EQ(ReadVar(world, GuardianId{1}, "x"), 1);
}

TEST(GuardianProtocol, QueryWhileCoordinatorUndecidedGetsNoVerdict) {
  // While the coordinator is still collecting acks (kPreparing) the outcome
  // is genuinely open, so a query must not conjure a verdict either way: the
  // participant stays in doubt and keeps its lock.
  SimWorld world(MakeConfig(3, 37));
  SeedVar(world, GuardianId{1}, "x", 0);
  SeedVar(world, GuardianId{2}, "y", 0);
  Guardian& g0 = world.guardian(0);
  ActionId aid = g0.BeginTopAction();
  for (std::uint32_t t : {1u, 2u}) {
    const std::string name = t == 1 ? "x" : "y";
    ASSERT_TRUE(world.RunAt(aid, GuardianId{t}, [&](Guardian& g, ActionContext& ctx) -> Status {
      Result<RecoverableObject*> v = g.GetStableVariable(aid, name);
      if (!v.ok()) {
        return v.status();
      }
      return ctx.UpdateObject(v.value(), [](Value& b) { b = Value::Int(b.as_int() + 1); });
    }).ok());
  }
  // Cut guardian 2 off so its prepare never arrives: the coordinator stays
  // kPreparing with guardian 1 prepared and in doubt.
  world.network().Partition(GuardianId{2});
  ASSERT_TRUE(g0.RequestCommit(aid).ok());
  world.Pump();
  ASSERT_EQ(g0.FateOf(aid), Guardian::ActionFate::kInProgress);

  world.guardian(1).RequeryOutstanding();
  world.Pump();
  // No verdict: still in progress on both sides, lock still held.
  EXPECT_EQ(world.guardian(1).FateOf(aid), Guardian::ActionFate::kInProgress);
  EXPECT_TRUE(world.guardian(1).CommittedStableVariable("x")->locked());

  // The partition heals, the prepare is re-sent, and the action commits —
  // proof the undecided query left no scar.
  world.network().Heal(GuardianId{2});
  ASSERT_TRUE(g0.RequestCommit(aid).ok());
  world.Pump();
  EXPECT_EQ(g0.FateOf(aid), Guardian::ActionFate::kCommitted);
  EXPECT_EQ(ReadVar(world, GuardianId{1}, "x"), 1);
  EXPECT_EQ(ReadVar(world, GuardianId{2}, "y"), 1);
}

TEST(GuardianProtocol, HousekeepingBetweenActionsIsInvisibleToClients) {
  SimWorld world(MakeConfig(2));
  SeedVar(world, GuardianId{1}, "x", 0);
  for (int i = 1; i <= 5; ++i) {
    ActionId aid = StartIncrement(world, GuardianId{1});
    ASSERT_TRUE(world.guardian(0).RequestCommit(aid).ok());
    world.Pump();
    ASSERT_TRUE(world.guardian(1).Housekeep(HousekeepingMethod::kSnapshot).ok());
    EXPECT_EQ(ReadVar(world, GuardianId{1}, "x"), i);
  }
  world.guardian(1).Crash();
  ASSERT_TRUE(world.guardian(1).Restart().ok());
  world.Pump();
  EXPECT_EQ(ReadVar(world, GuardianId{1}, "x"), 5);
}

}  // namespace
}  // namespace argus
