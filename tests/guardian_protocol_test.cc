// Guardian-level protocol edge cases: duplicate deliveries, stale messages,
// aborts past the commit point, lossy networks, and partitions.

#include <gtest/gtest.h>

#include "src/tpc/sim_world.h"
#include "tests/test_support.h"

namespace argus {
namespace {

SimWorldConfig MakeConfig(std::size_t guardians, std::uint64_t seed = 17) {
  SimWorldConfig config;
  config.guardian_count = guardians;
  config.mode = LogMode::kHybrid;
  config.seed = seed;
  return config;
}

void SeedVar(SimWorld& world, GuardianId gid, const std::string& name, std::int64_t value) {
  Result<Guardian::ActionFate> fate =
      world.RunTopAction(gid, [&](SimWorld& w, ActionId aid) -> Status {
        return w.RunAt(aid, gid, [&](Guardian& g, ActionContext& ctx) -> Status {
          RecoverableObject* obj = ctx.CreateAtomic(g.heap(), Value::Int(value));
          return g.SetStableVariable(aid, name, obj);
        });
      });
  ASSERT_TRUE(fate.ok());
  ASSERT_EQ(fate.value(), Guardian::ActionFate::kCommitted);
}

std::int64_t ReadVar(SimWorld& world, GuardianId gid, const std::string& name) {
  RecoverableObject* obj = world.guardian(gid).CommittedStableVariable(name);
  return obj == nullptr ? -1 : obj->base_version().as_int();
}

ActionId StartIncrement(SimWorld& world, GuardianId target) {
  Guardian& g0 = world.guardian(0);
  ActionId aid = g0.BeginTopAction();
  Status s = world.RunAt(aid, target, [&](Guardian& g, ActionContext& ctx) -> Status {
    Result<RecoverableObject*> v = g.GetStableVariable(aid, "x");
    if (!v.ok()) {
      return v.status();
    }
    return ctx.UpdateObject(v.value(), [](Value& b) { b = Value::Int(b.as_int() + 1); });
  });
  EXPECT_TRUE(s.ok());
  return aid;
}

TEST(GuardianProtocol, DuplicatePrepareIsIdempotent) {
  SimWorld world(MakeConfig(2));
  SeedVar(world, GuardianId{1}, "x", 0);
  ActionId aid = StartIncrement(world, GuardianId{1});
  ASSERT_TRUE(world.guardian(0).RequestCommit(aid).ok());
  // Inject a duplicate prepare before pumping.
  world.network().Send(Message{GuardianId{0}, GuardianId{1}, MessageType::kPrepare, aid, false});
  world.Pump();
  EXPECT_EQ(world.guardian(0).FateOf(aid), Guardian::ActionFate::kCommitted);
  EXPECT_EQ(ReadVar(world, GuardianId{1}, "x"), 1);
}

TEST(GuardianProtocol, DuplicateCommitIsIdempotent) {
  SimWorld world(MakeConfig(2));
  SeedVar(world, GuardianId{1}, "x", 0);
  ActionId aid = StartIncrement(world, GuardianId{1});
  ASSERT_TRUE(world.guardian(0).RequestCommit(aid).ok());
  world.Pump();
  std::uint64_t forces = world.guardian(1).recovery().log().stats().forces;
  // A stale duplicate commit arrives late.
  world.network().Send(Message{GuardianId{0}, GuardianId{1}, MessageType::kCommit, aid, false});
  world.Pump();
  EXPECT_EQ(ReadVar(world, GuardianId{1}, "x"), 1);
  // No extra committed record was forced.
  EXPECT_EQ(world.guardian(1).recovery().log().stats().forces, forces);
}

TEST(GuardianProtocol, AbortAfterCommitPointIsRefused) {
  SimWorld world(MakeConfig(2));
  SeedVar(world, GuardianId{1}, "x", 0);
  ActionId aid = StartIncrement(world, GuardianId{1});
  ASSERT_TRUE(world.guardian(0).RequestCommit(aid).ok());
  world.Step();  // prepare
  world.Step();  // ack → committing record forced: the commit point
  world.guardian(0).AbortTopAction(aid);  // must be a no-op now
  world.Pump();
  EXPECT_EQ(world.guardian(0).FateOf(aid), Guardian::ActionFate::kCommitted);
  EXPECT_EQ(ReadVar(world, GuardianId{1}, "x"), 1);
}

TEST(GuardianProtocol, StaleQueryAfterDoneGetsCommitReply) {
  SimWorld world(MakeConfig(2));
  SeedVar(world, GuardianId{1}, "x", 0);
  ActionId aid = StartIncrement(world, GuardianId{1});
  ASSERT_TRUE(world.guardian(0).RequestCommit(aid).ok());
  world.Pump();
  ASSERT_TRUE(world.guardian(0).TwoPhaseDone(aid));
  // A participant (pretend it lost its state) queries after done.
  world.network().Send(Message{GuardianId{1}, GuardianId{0}, MessageType::kQuery, aid, false});
  auto reply_probe = [&]() -> bool {
    // Deliver the query; the reply lands in the queue next.
    world.Step();
    std::optional<Message> reply = world.network().NextDelivery();
    EXPECT_TRUE(reply.has_value());
    EXPECT_EQ(reply->type, MessageType::kQueryReply);
    return reply->positive;
  };
  EXPECT_TRUE(reply_probe());
}

TEST(GuardianProtocol, QueryForUnknownActionGetsAbortReply) {
  SimWorld world(MakeConfig(2));
  ActionId phantom{GuardianId{0}, 999};
  world.network().Send(
      Message{GuardianId{1}, GuardianId{0}, MessageType::kQuery, phantom, false});
  world.Step();
  std::optional<Message> reply = world.network().NextDelivery();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, MessageType::kQueryReply);
  EXPECT_FALSE(reply->positive);
}

TEST(GuardianProtocol, LossyNetworkEventuallyCommitsWithRetries) {
  SimWorld world(MakeConfig(2, 23));
  SeedVar(world, GuardianId{1}, "x", 0);
  ActionId aid = StartIncrement(world, GuardianId{1});
  world.network().set_drop_probability(0.4);
  ASSERT_TRUE(world.guardian(0).RequestCommit(aid).ok());
  world.Pump();
  world.network().set_drop_probability(0.0);
  // Drive retries until the protocol settles: prepared participants re-query;
  // a committing coordinator replies commit through QueryReply.
  for (int i = 0; i < 20 && !world.guardian(0).TwoPhaseDone(aid); ++i) {
    world.guardian(1).RequeryOutstanding();
    world.Pump();
    if (world.guardian(0).FateOf(aid) == Guardian::ActionFate::kInProgress) {
      // The prepare itself may have been lost; a real system re-sends it.
      ASSERT_TRUE(world.guardian(0).RequestCommit(aid).ok());
      world.Pump();
    }
  }
  Guardian::ActionFate fate = world.guardian(0).FateOf(aid);
  if (fate == Guardian::ActionFate::kCommitted) {
    EXPECT_EQ(ReadVar(world, GuardianId{1}, "x"), 1);
  } else {
    EXPECT_EQ(ReadVar(world, GuardianId{1}, "x"), 0);
  }
}

TEST(GuardianProtocol, MessagesToCrashedGuardianAreCounted) {
  SimWorld world(MakeConfig(2));
  SeedVar(world, GuardianId{1}, "x", 0);
  ActionId aid = StartIncrement(world, GuardianId{1});
  world.guardian(1).Crash();
  ASSERT_TRUE(world.guardian(0).RequestCommit(aid).ok());
  world.Pump();
  EXPECT_GE(world.guardian(1).messages_dropped_while_crashed(), 1u);
}

TEST(GuardianProtocol, PartitionedParticipantHealsAndCommits) {
  SimWorld world(MakeConfig(2));
  SeedVar(world, GuardianId{1}, "x", 0);
  ActionId aid = StartIncrement(world, GuardianId{1});
  world.network().Partition(GuardianId{1});
  ASSERT_TRUE(world.guardian(0).RequestCommit(aid).ok());
  world.Pump();  // prepare dropped
  EXPECT_EQ(world.guardian(0).FateOf(aid), Guardian::ActionFate::kInProgress);
  world.network().Heal(GuardianId{1});
  // Coordinator re-sends the prepare (retry).
  ASSERT_TRUE(world.guardian(0).RequestCommit(aid).ok());
  world.Pump();
  EXPECT_EQ(world.guardian(0).FateOf(aid), Guardian::ActionFate::kCommitted);
  EXPECT_EQ(ReadVar(world, GuardianId{1}, "x"), 1);
}

TEST(GuardianProtocol, SelfAbortReleasesCoordinatorLocks) {
  // Regression: AbortTopAction records the aborted outcome before the
  // self-addressed abort message is delivered; the handler must still
  // release the coordinator's own locks.
  SimWorld world(MakeConfig(1));
  SeedVar(world, GuardianId{0}, "x", 5);
  Guardian& g0 = world.guardian(0);
  ActionId aid = g0.BeginTopAction();
  ASSERT_TRUE(world.RunAt(aid, GuardianId{0}, [&](Guardian& g, ActionContext& ctx) -> Status {
    Result<RecoverableObject*> v = g.GetStableVariable(aid, "x");
    if (!v.ok()) {
      return v.status();
    }
    return ctx.UpdateObject(v.value(), [](Value& b) { b = Value::Int(6); });
  }).ok());
  g0.AbortTopAction(aid);
  world.Pump();
  RecoverableObject* x = g0.CommittedStableVariable("x");
  EXPECT_FALSE(x->locked());
  EXPECT_EQ(x->base_version(), Value::Int(5));
  // A fresh action can take the lock and commit.
  Result<Guardian::ActionFate> fate =
      world.RunTopAction(GuardianId{0}, [&](SimWorld& w, ActionId next) -> Status {
        return w.RunAt(next, GuardianId{0}, [&](Guardian& g, ActionContext& ctx) -> Status {
          Result<RecoverableObject*> v = g.GetStableVariable(next, "x");
          if (!v.ok()) {
            return v.status();
          }
          return ctx.UpdateObject(v.value(), [](Value& b) { b = Value::Int(7); });
        });
      });
  ASSERT_TRUE(fate.ok());
  EXPECT_EQ(fate.value(), Guardian::ActionFate::kCommitted);
  EXPECT_EQ(ReadVar(world, GuardianId{0}, "x"), 7);
}

TEST(GuardianProtocol, HousekeepingBetweenActionsIsInvisibleToClients) {
  SimWorld world(MakeConfig(2));
  SeedVar(world, GuardianId{1}, "x", 0);
  for (int i = 1; i <= 5; ++i) {
    ActionId aid = StartIncrement(world, GuardianId{1});
    ASSERT_TRUE(world.guardian(0).RequestCommit(aid).ok());
    world.Pump();
    ASSERT_TRUE(world.guardian(1).Housekeep(HousekeepingMethod::kSnapshot).ok());
    EXPECT_EQ(ReadVar(world, GuardianId{1}, "x"), i);
  }
  world.guardian(1).Crash();
  ASSERT_TRUE(world.guardian(1).Restart().ok());
  world.Pump();
  EXPECT_EQ(ReadVar(world, GuardianId{1}, "x"), 5);
}

}  // namespace
}  // namespace argus
