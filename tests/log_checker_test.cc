// Tests for the log integrity checker: clean logs pass; seeded structural
// damage is reported.

#include <gtest/gtest.h>

#include "src/log/log_checker.h"
#include "tests/test_support.h"

namespace argus {
namespace {

void Churn(StorageHarness& h, int actions) {
  ActionId t0 = Aid(1000);
  RecoverableObject* a = h.ctx(t0).CreateAtomic(h.heap(), Value::Int(0));
  RecoverableObject* m = h.ctx(t0).CreateMutex(h.heap(), Value::Int(0));
  ASSERT_TRUE(h.BindStable(t0, "a", a).ok());
  ASSERT_TRUE(h.BindStable(t0, "m", m).ok());
  ASSERT_TRUE(h.PrepareAndCommit(t0).ok());
  for (int i = 1; i <= actions; ++i) {
    ActionId t = Aid(static_cast<std::uint64_t>(i));
    ASSERT_TRUE(h.ctx(t).WriteObject(h.StableVar("a"), Value::Int(i)).ok());
    if (i % 4 == 0) {
      ASSERT_TRUE(h.ctx(t).MutateMutex(h.StableVar("m"),
                                       [i](Value& v) { v = Value::Int(i); }).ok());
    }
    ASSERT_TRUE(h.PrepareOnly(t).ok());
    if (i % 5 == 0) {
      ASSERT_TRUE(h.AbortPrepared(t).ok());
    } else {
      ASSERT_TRUE(h.rs().Commit(t).ok());
      h.ctx(t).CommitVolatile(h.heap());
    }
  }
}

TEST(LogChecker, CleanHybridLogPasses) {
  StorageHarness h(LogMode::kHybrid);
  Churn(h, 20);
  Result<LogCheckReport> report = CheckLog(h.rs().log(), /*hybrid=*/true);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().clean()) << report.value().ToString();
  EXPECT_GT(report.value().chain_length, 20u);
  EXPECT_GT(report.value().data_entries, 10u);
}

TEST(LogChecker, CleanSimpleLogPasses) {
  StorageHarness h(LogMode::kSimple);
  Churn(h, 20);
  Result<LogCheckReport> report = CheckLog(h.rs().log(), /*hybrid=*/false);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().clean()) << report.value().ToString();
  EXPECT_EQ(report.value().chain_length, 0u);  // no chain checks in simple mode
}

TEST(LogChecker, CleanAfterHousekeeping) {
  StorageHarness h(LogMode::kHybrid);
  Churn(h, 30);
  for (HousekeepingMethod method :
       {HousekeepingMethod::kCompaction, HousekeepingMethod::kSnapshot}) {
    ASSERT_TRUE(h.rs().Housekeep(method).ok());
    Result<LogCheckReport> report = CheckLog(h.rs().log(), true);
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report.value().clean()) << report.value().ToString();
  }
}

TEST(LogChecker, CleanAfterCrashRecovery) {
  StorageHarness h(LogMode::kHybrid);
  Churn(h, 15);
  ASSERT_TRUE(h.CrashAndRecover().ok());
  // Post-recovery activity continues the chain; the whole log must verify.
  ActionId t = Aid(500);
  ASSERT_TRUE(h.ctx(t).WriteObject(h.StableVar("a"), Value::Int(7)).ok());
  ASSERT_TRUE(h.PrepareAndCommit(t).ok());
  Result<LogCheckReport> report = CheckLog(h.rs().log(), true);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().clean()) << report.value().ToString();
}

// Hand-builds a structurally broken hybrid log and expects complaints.
TEST(LogChecker, DetectsOrphanOutcomeEntry) {
  auto log = MakeMemLog();
  // Two outcome entries, neither linked to the other: the later one becomes
  // the chain head, the earlier is an orphan.
  log->Write(LogEntry(CommittedEntry{Aid(1), LogAddress::Null()}));
  log->Write(LogEntry(PreparedEntry{Aid(1), {}, LogAddress::Null()}));
  ASSERT_TRUE(log->Force().ok());
  Result<LogCheckReport> report = CheckLog(*log, true);
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report.value().clean());
  bool found = false;
  for (const std::string& p : report.value().problems) {
    found |= p.find("not reachable from the chain head") != std::string::npos;
  }
  EXPECT_TRUE(found) << report.value().ToString();
}

TEST(LogChecker, DetectsCommitWithoutPrepare) {
  auto log = MakeMemLog();
  log->Write(LogEntry(CommittedEntry{Aid(9), LogAddress::Null()}));
  ASSERT_TRUE(log->Force().ok());
  Result<LogCheckReport> report = CheckLog(*log, false);
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report.value().clean());
  EXPECT_NE(report.value().ToString().find("never prepared"), std::string::npos);
}

TEST(LogChecker, DetectsCommittedAndAborted) {
  auto log = MakeMemLog();
  log->Write(LogEntry(PreparedEntry{Aid(3), {}, LogAddress::Null()}));
  log->Write(LogEntry(CommittedEntry{Aid(3), LogAddress::Null()}));
  log->Write(LogEntry(AbortedEntry{Aid(3), LogAddress::Null()}));
  ASSERT_TRUE(log->Force().ok());
  Result<LogCheckReport> report = CheckLog(*log, false);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report.value().ToString().find("both committed and aborted"), std::string::npos);
}

TEST(LogChecker, DetectsForwardPointingPair) {
  auto log = MakeMemLog();
  // A prepared entry whose pair points past itself.
  PreparedEntry prepared;
  prepared.aid = Aid(1);
  prepared.objects = {{Uid{1}, LogAddress{100000}}};
  log->Write(LogEntry(prepared));
  ASSERT_TRUE(log->Force().ok());
  Result<LogCheckReport> report = CheckLog(*log, true);
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report.value().clean());
  EXPECT_NE(report.value().ToString().find("pair"), std::string::npos);
}

TEST(LogChecker, DetectsPairAtNonDataEntry) {
  auto log = MakeMemLog();
  LogAddress first = log->Write(LogEntry(CommittedEntry{Aid(7), LogAddress::Null()}));
  // Unrelated prepared entry whose pair points at the committed entry above.
  // Also give Aid(7) a prepared entry so pass 3 stays quiet.
  LogAddress second =
      log->Write(LogEntry(PreparedEntry{Aid(7), {}, LogAddress::Null()}));
  (void)second;
  PreparedEntry prepared;
  prepared.aid = Aid(8);
  prepared.objects = {{Uid{1}, first}};
  prepared.prev = second;
  log->Write(LogEntry(prepared));
  ASSERT_TRUE(log->Force().ok());
  Result<LogCheckReport> report = CheckLog(*log, true);
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report.value().clean());
  EXPECT_NE(report.value().ToString().find("non-data entry"), std::string::npos);
}

TEST(LogChecker, DetectsDoneWithoutCommitting) {
  auto log = MakeMemLog();
  log->Write(LogEntry(DoneEntry{Aid(4), LogAddress::Null()}));
  ASSERT_TRUE(log->Force().ok());
  Result<LogCheckReport> report = CheckLog(*log, false);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report.value().ToString().find("done without committing"), std::string::npos);
}

TEST(LogChecker, ReportRendering) {
  auto log = MakeMemLog();
  ASSERT_TRUE(log->ForceWrite(LogEntry(PreparedEntry{Aid(1), {}, LogAddress::Null()})).ok());
  Result<LogCheckReport> report = CheckLog(*log, true);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report.value().ToString().find("OK"), std::string::npos);
  EXPECT_NE(report.value().ToString().find("1 entries"), std::string::npos);
}

}  // namespace
}  // namespace argus
