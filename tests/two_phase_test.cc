#include <gtest/gtest.h>
TEST(Placeholder_two_phase_test, Pending) { SUCCEED(); }
