// Recovery-equivalence property test for the pipelined hybrid recovery
// (label: concurrency, runs under the TSan CI job).
//
// Property: for any seeded crash scenario — committed/aborted/undecided
// actions, mutex objects, coordinator entries, early-prepared trailing data,
// housekeeping reorganizations, and decayed duplexed pages — the pipelined
// RecoverHybridLog must produce OT/PT/CT/MT/AS, last_outcome, and the
// entries_examined / data_entries_read counters exactly equal to the serial
// algorithm, with or without the block read cache. And the cache must never
// mask a decayed page a cache-less CarefulRead path would have reported: a
// fully uncached twin log over an identically decayed medium must see the
// same recovery outcome.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/object/flatten.h"
#include "src/recovery/recovery_algorithms.h"
#include "src/stable/duplexed_medium.h"
#include "tests/test_support.h"

namespace argus {
namespace {

// ---- Seeded history builder ---------------------------------------------

struct HistoryConfig {
  std::uint64_t seed = 1;
  bool duplexed = false;
  std::uint32_t disk_seed = 9000;
  bool housekeep = false;
  HousekeepingMethod method = HousekeepingMethod::kSnapshot;
  std::size_t steps = 40;
};

// A guardian stack that runs a deterministic random workload, then crashes
// and hands over the surviving log. Identical configs build bit-identical
// logs (all randomness flows from the seeds), which lets the decay tests
// compare a cached log against an uncached twin.
class HistoryBuilder {
 public:
  explicit HistoryBuilder(const HistoryConfig& config) : config_(config) {
    RecoverySystemConfig rs_config;
    rs_config.mode = LogMode::kHybrid;
    if (config.duplexed) {
      std::uint32_t disk_seed = config.disk_seed;
      rs_config.medium_factory = [disk_seed] {
        return std::make_unique<DuplexedStableMedium>(disk_seed);
      };
    } else {
      rs_config.medium_factory = [] { return std::make_unique<InMemoryStableMedium>(); };
    }
    harness_ = std::make_unique<StorageHarness>(rs_config);
  }

  // Runs the workload; returns the post-crash log (staged tail discarded by
  // the caller via RecoverAfterCrash, as a real restart would).
  std::unique_ptr<StableLog> BuildAndCrash() {
    Rng rng(config_.seed);
    StorageHarness& h = *harness_;

    // A starting population of atomic and mutex objects.
    ActionId t0 = Aid(next_seq_++);
    for (int i = 0; i < 4; ++i) {
      RecoverableObject* a = h.ctx(t0).CreateAtomic(h.heap(), Value::Int(i));
      EXPECT_TRUE(h.BindStable(t0, "a" + std::to_string(i), a).ok());
    }
    for (int i = 0; i < 2; ++i) {
      RecoverableObject* m = h.ctx(t0).CreateMutex(h.heap(), Value::Int(100 + i));
      EXPECT_TRUE(h.BindStable(t0, "m" + std::to_string(i), m).ok());
    }
    EXPECT_TRUE(h.PrepareAndCommit(t0).ok());

    for (std::size_t step = 0; step < config_.steps; ++step) {
      if (config_.housekeep && step == config_.steps / 2) {
        EXPECT_TRUE(h.rs().Housekeep(config_.method).ok());
      }
      switch (rng.NextBelow(10)) {
        case 0:
        case 1:
        case 2:
        case 3:
          CommitRandomWrites(rng);
          break;
        case 4:
          MutateRandomMutex(rng);
          break;
        case 5:
          PrepareUndecided(rng);
          break;
        case 6:
          PrepareThenAbort(rng);
          break;
        case 7:
          CoordinatorActivity(rng);
          break;
        case 8:
          CreateAndCommitObject(rng);
          break;
        case 9:
          EarlyPrepareTrailingData(rng);
          break;
      }
    }
    // Leave some staged-but-unforced writes behind so the crash has a
    // volatile tail to discard.
    if (rng.NextBool(0.5)) {
      EarlyPrepareTrailingData(rng);
    }
    return h.rs().TakeLog();
  }

 private:
  RecoverableObject* PickUnlocked(Rng& rng, bool mutex) {
    std::vector<RecoverableObject*> candidates;
    const Value& root = harness_->heap().root()->base_version();
    if (!root.is_record()) {
      return nullptr;
    }
    for (const auto& [name, value] : root.as_record()) {
      if (!value.is_ref()) {
        continue;
      }
      RecoverableObject* obj = value.as_ref();
      if (obj->is_mutex() == mutex && !obj->locked()) {
        candidates.push_back(obj);
      }
    }
    if (candidates.empty()) {
      return nullptr;
    }
    return candidates[rng.NextBelow(candidates.size())];
  }

  void CommitRandomWrites(Rng& rng) {
    StorageHarness& h = *harness_;
    ActionId aid = Aid(next_seq_++);
    std::size_t writes = 1 + rng.NextBelow(3);
    bool wrote = false;
    for (std::size_t i = 0; i < writes; ++i) {
      RecoverableObject* obj = PickUnlocked(rng, false);
      if (obj == nullptr) {
        continue;
      }
      wrote |= h.ctx(aid)
                   .WriteObject(obj, Value::Int(static_cast<std::int64_t>(rng.NextU64() % 1000)))
                   .ok();
    }
    if (!wrote) {
      return;
    }
    EXPECT_TRUE(h.PrepareAndCommit(aid).ok());
  }

  void MutateRandomMutex(Rng& rng) {
    StorageHarness& h = *harness_;
    RecoverableObject* m = PickUnlocked(rng, true);
    if (m == nullptr) {
      return;
    }
    ActionId aid = Aid(next_seq_++);
    std::int64_t v = static_cast<std::int64_t>(rng.NextU64() % 1000);
    EXPECT_TRUE(h.ctx(aid).MutateMutex(m, [v](Value& value) { value = Value::Int(v); }).ok());
    EXPECT_TRUE(h.PrepareAndCommit(aid).ok());
  }

  void PrepareUndecided(Rng& rng) {
    StorageHarness& h = *harness_;
    RecoverableObject* obj = PickUnlocked(rng, false);
    if (obj == nullptr) {
      return;
    }
    ActionId aid = Aid(next_seq_++);
    if (!h.ctx(aid).WriteObject(obj, Value::Int(-7)).ok()) {
      return;
    }
    EXPECT_TRUE(h.PrepareOnly(aid).ok());  // stays undecided at the crash
  }

  void PrepareThenAbort(Rng& rng) {
    StorageHarness& h = *harness_;
    ActionId aid = Aid(next_seq_++);
    RecoverableObject* obj = PickUnlocked(rng, false);
    RecoverableObject* m = PickUnlocked(rng, true);
    bool any = false;
    if (obj != nullptr) {
      any |= h.ctx(aid).WriteObject(obj, Value::Int(-13)).ok();
    }
    if (m != nullptr && rng.NextBool(0.5)) {
      any |= h.ctx(aid).MutateMutex(m, [](Value& value) { value = Value::Int(-14); }).ok();
    }
    if (!any) {
      return;
    }
    EXPECT_TRUE(h.PrepareOnly(aid).ok());
    EXPECT_TRUE(h.AbortPrepared(aid).ok());
  }

  void CoordinatorActivity(Rng& rng) {
    StorageHarness& h = *harness_;
    ActionId aid = Aid(next_seq_++);
    std::vector<GuardianId> participants{GuardianId{1}, GuardianId{2}};
    EXPECT_TRUE(h.rs().Committing(aid, participants).ok());
    if (rng.NextBool(0.5)) {
      EXPECT_TRUE(h.rs().Done(aid).ok());
    }
  }

  void CreateAndCommitObject(Rng& rng) {
    StorageHarness& h = *harness_;
    ActionId aid = Aid(next_seq_++);
    std::string name = "x" + std::to_string(next_seq_);
    RecoverableObject* obj =
        rng.NextBool(0.3)
            ? h.ctx(aid).CreateMutex(h.heap(), Value::Int(1))
            : h.ctx(aid).CreateAtomic(
                  h.heap(), Value::OfRecord({{"n", Value::Int(static_cast<std::int64_t>(
                                                      rng.NextU64() % 100))}}));
    EXPECT_TRUE(h.BindStable(aid, name, obj).ok());
    EXPECT_TRUE(h.PrepareAndCommit(aid).ok());
  }

  // Stages data entries (early prepare) without an outcome entry; half the
  // time forces them so the chain head has trailing data to skip.
  void EarlyPrepareTrailingData(Rng& rng) {
    StorageHarness& h = *harness_;
    RecoverableObject* obj = PickUnlocked(rng, false);
    if (obj == nullptr) {
      return;
    }
    ActionId aid = Aid(next_seq_++);
    if (!h.ctx(aid).WriteObject(obj, Value::Int(-99)).ok()) {
      return;
    }
    Result<ModifiedObjectsSet> leftover = h.rs().WriteEntry(aid, h.ctx(aid).TakeMos());
    EXPECT_TRUE(leftover.ok());
    if (rng.NextBool(0.5)) {
      EXPECT_TRUE(h.rs().log().Force().ok());
    }
    // Release the volatile locks so later steps can write these objects; the
    // staged entries stay in the log either way.
    h.ctx(aid).AbortVolatile(h.heap());
  }

  HistoryConfig config_;
  std::unique_ptr<StorageHarness> harness_;
  std::uint64_t next_seq_ = 1;
};

// ---- Result comparison ---------------------------------------------------

// One recovery run: its own heap (the OT points into it) plus the result.
struct RecoveryRun {
  std::string label;
  std::unique_ptr<VolatileHeap> heap;
  Result<RecoveryResult> result = Status::Unavailable("recovery not run");
};

RecoveryRun RunRecovery(const StableLog& log, const std::string& label, bool cache_enabled,
                        const HybridRecoveryOptions& options) {
  RecoveryRun run;
  run.label = label;
  run.heap = std::make_unique<VolatileHeap>();
  log.read_cache().SetEnabled(cache_enabled);
  run.result = RecoverHybridLog(log, *run.heap, options);
  return run;
}

void ExpectObjectEquivalent(Uid uid, const ObjectTableEntry& a, const ObjectTableEntry& b,
                            const std::string& label) {
  EXPECT_EQ(a.state, b.state) << label << " OT state of " << to_string(uid);
  EXPECT_EQ(a.mutex_address, b.mutex_address) << label << " mutex_address of " << to_string(uid);
  ASSERT_NE(a.object, nullptr);
  ASSERT_NE(b.object, nullptr);
  EXPECT_EQ(a.object->kind(), b.object->kind()) << label << " kind of " << to_string(uid);
  // Flatten turns references back into uids, so versions compare across
  // heaps byte for byte.
  EXPECT_EQ(FlattenValue(a.object->base_version(), nullptr),
            FlattenValue(b.object->base_version(), nullptr))
      << label << " base version of " << to_string(uid);
  EXPECT_EQ(a.object->has_current(), b.object->has_current())
      << label << " has_current of " << to_string(uid);
  if (a.object->has_current() && b.object->has_current()) {
    EXPECT_EQ(FlattenValue(a.object->current_version(), nullptr),
              FlattenValue(b.object->current_version(), nullptr))
        << label << " current version of " << to_string(uid);
  }
  EXPECT_EQ(a.object->write_locker(), b.object->write_locker())
      << label << " write locker of " << to_string(uid);
}

void ExpectEquivalent(const RecoveryRun& reference, const RecoveryRun& candidate) {
  std::string label = reference.label + " vs " + candidate.label + ":";
  ASSERT_EQ(reference.result.ok(), candidate.result.ok())
      << label << " " << reference.result.status().ToString() << " / "
      << candidate.result.status().ToString();
  if (!reference.result.ok()) {
    EXPECT_EQ(reference.result.status().code(), candidate.result.status().code()) << label;
    EXPECT_EQ(reference.result.status().message(), candidate.result.status().message()) << label;
    return;
  }
  const RecoveryResult& a = reference.result.value();
  const RecoveryResult& b = candidate.result.value();

  EXPECT_EQ(a.last_outcome, b.last_outcome) << label;
  EXPECT_EQ(a.entries_examined, b.entries_examined) << label;
  EXPECT_EQ(a.data_entries_read, b.data_entries_read) << label;
  EXPECT_EQ(a.pt, b.pt) << label << " PT differs";
  EXPECT_EQ(a.mt, b.mt) << label << " MT differs";
  EXPECT_EQ(a.as, b.as) << label << " AS differs";

  ASSERT_EQ(a.ct.size(), b.ct.size()) << label << " CT size";
  for (const auto& [aid, entry_a] : a.ct) {
    auto it = b.ct.find(aid);
    ASSERT_NE(it, b.ct.end()) << label << " CT missing " << to_string(aid);
    EXPECT_EQ(entry_a.phase, it->second.phase) << label << " CT phase of " << to_string(aid);
    EXPECT_EQ(entry_a.participants, it->second.participants)
        << label << " CT participants of " << to_string(aid);
  }

  ASSERT_EQ(a.ot.size(), b.ot.size()) << label << " OT size";
  for (const auto& [uid, entry_a] : a.ot) {
    auto it = b.ot.find(uid);
    ASSERT_NE(it, b.ot.end()) << label << " OT missing " << to_string(uid);
    ExpectObjectEquivalent(uid, entry_a, it->second, label);
  }
}

// ---- The property test ---------------------------------------------------

struct EquivalenceParam {
  std::string name;
  HistoryConfig history;
};

class RecoveryPipelineEquivalenceTest : public ::testing::TestWithParam<EquivalenceParam> {};

TEST_P(RecoveryPipelineEquivalenceTest, PipelinedEqualsSerial) {
  HistoryBuilder builder(GetParam().history);
  std::unique_ptr<StableLog> log = builder.BuildAndCrash();
  Result<std::uint64_t> recovered = log->RecoverAfterCrash();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

  RecoveryRun reference =
      RunRecovery(*log, "serial-uncached", false, HybridRecoveryOptions{.workers = 0});
  ASSERT_TRUE(reference.result.ok()) << reference.result.status().ToString();

  RecoveryRun serial_cached =
      RunRecovery(*log, "serial-cached", true, HybridRecoveryOptions{.workers = 0});
  ExpectEquivalent(reference, serial_cached);

  RecoveryRun pipelined =
      RunRecovery(*log, "pipelined", true, HybridRecoveryOptions{.workers = 3});
  ExpectEquivalent(reference, pipelined);

  // A tiny window forces the walk and the apply stage to interleave tightly.
  RecoveryRun tight = RunRecovery(*log, "pipelined-tight-window", true,
                                  HybridRecoveryOptions{.workers = 2, .window = 2});
  ExpectEquivalent(reference, tight);

  // Re-running pipelined recovery against a now-warm cache must not change
  // anything either.
  RecoveryRun warm = RunRecovery(*log, "pipelined-warm-cache", true,
                                 HybridRecoveryOptions{.workers = 3});
  ExpectEquivalent(reference, warm);
}

std::vector<EquivalenceParam> EquivalenceParams() {
  std::vector<EquivalenceParam> params;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    params.push_back({"mem_seed" + std::to_string(seed), HistoryConfig{.seed = seed}});
  }
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    params.push_back({"duplexed_seed" + std::to_string(seed),
                      HistoryConfig{.seed = 50 + seed, .duplexed = true,
                                    .disk_seed = 9000 + static_cast<std::uint32_t>(seed)}});
  }
  params.push_back({"snapshot_housekept",
                    HistoryConfig{.seed = 77, .housekeep = true,
                                  .method = HousekeepingMethod::kSnapshot, .steps = 50}});
  params.push_back({"compaction_housekept",
                    HistoryConfig{.seed = 78, .housekeep = true,
                                  .method = HousekeepingMethod::kCompaction, .steps = 50}});
  return params;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RecoveryPipelineEquivalenceTest,
                         ::testing::ValuesIn(EquivalenceParams()),
                         [](const ::testing::TestParamInfo<EquivalenceParam>& info) {
                           return info.param.name;
                         });

// ---- Decay profiles ------------------------------------------------------

// Builds the same duplexed history twice (bit-identical media), corrupts the
// same pages on both, and compares a fully UNCACHED serial recovery on twin 1
// against a cached pipelined recovery on twin 2. Whatever CarefulRead
// reports without a cache, the cached pipeline must report too.
void RunDecayProfile(std::uint64_t seed, bool both_replicas, std::size_t pages_to_corrupt) {
  HistoryConfig config{.seed = seed, .duplexed = true,
                       .disk_seed = 4000 + static_cast<std::uint32_t>(seed)};
  std::unique_ptr<StableLog> uncached_log = HistoryBuilder(config).BuildAndCrash();
  std::unique_ptr<StableLog> cached_log = HistoryBuilder(config).BuildAndCrash();
  uncached_log->read_cache().SetEnabled(false);

  Rng rng(seed * 31 + 7);
  auto corrupt = [&](StableLog& log, std::size_t page) {
    auto& medium = static_cast<DuplexedStableMedium&>(log.medium());
    medium.store().disk_a().CorruptPage(page);
    if (both_replicas) {
      medium.store().disk_b().CorruptPage(page);
    }
  };
  std::size_t page_count =
      static_cast<DuplexedStableMedium&>(uncached_log->medium()).store().page_count();
  ASSERT_EQ(page_count,
            static_cast<DuplexedStableMedium&>(cached_log->medium()).store().page_count())
      << "twin histories diverged";
  for (std::size_t i = 0; i < pages_to_corrupt && page_count > 1; ++i) {
    // Deterministic decay profile: the page set depends only on the seed,
    // never on read order (probabilistic decay-on-read would make outcomes
    // depend on how many reads each configuration issues).
    std::size_t page = 1 + rng.NextBelow(page_count - 1);
    corrupt(*uncached_log, page);
    corrupt(*cached_log, page);
  }

  Result<std::uint64_t> r1 = uncached_log->RecoverAfterCrash();
  Result<std::uint64_t> r2 = cached_log->RecoverAfterCrash();
  ASSERT_EQ(r1.ok(), r2.ok()) << r1.status().ToString() << " / " << r2.status().ToString();
  if (!r1.ok()) {
    EXPECT_EQ(r1.status().code(), r2.status().code());
    return;  // both sides report the stable-storage loss: nothing masked
  }
  EXPECT_EQ(r1.value(), r2.value()) << "durable entry counts diverged after decay";

  RecoveryRun reference =
      RunRecovery(*uncached_log, "serial-uncached", false, HybridRecoveryOptions{.workers = 0});
  RecoveryRun pipelined =
      RunRecovery(*cached_log, "pipelined-cached", true, HybridRecoveryOptions{.workers = 3});
  ExpectEquivalent(reference, pipelined);
}

TEST(RecoveryPipelineDecay, SingleReplicaDecayIsHealedIdentically) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    RunDecayProfile(seed, /*both_replicas=*/false, /*pages_to_corrupt=*/4);
  }
}

TEST(RecoveryPipelineDecay, DoubleReplicaDecayIsReportedIdentically) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    RunDecayProfile(seed, /*both_replicas=*/true, /*pages_to_corrupt=*/2);
  }
}

}  // namespace
}  // namespace argus
