#include <gtest/gtest.h>
TEST(Placeholder_recovery_hybrid_test, Pending) { SUCCEED(); }
