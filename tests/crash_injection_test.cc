// Crash-injection tests: guardians crash at every interesting point of
// two-phase commit (§2.2.3) and must converge to a consistent, all-or-nothing
// outcome after restart.

#include <gtest/gtest.h>

#include "src/tpc/sim_world.h"
#include "tests/test_support.h"

namespace argus {
namespace {

SimWorldConfig Config(std::size_t guardians) {
  SimWorldConfig config;
  config.guardian_count = guardians;
  config.mode = LogMode::kHybrid;
  config.seed = 11;
  return config;
}

void SeedVar(SimWorld& world, GuardianId gid, const std::string& name, std::int64_t value) {
  Result<Guardian::ActionFate> fate =
      world.RunTopAction(gid, [&](SimWorld& w, ActionId aid) -> Status {
        return w.RunAt(aid, gid, [&](Guardian& g, ActionContext& ctx) -> Status {
          RecoverableObject* obj = ctx.CreateAtomic(g.heap(), Value::Int(value));
          return g.SetStableVariable(aid, name, obj);
        });
      });
  ASSERT_TRUE(fate.ok());
  ASSERT_EQ(fate.value(), Guardian::ActionFate::kCommitted);
}

std::int64_t ReadVar(SimWorld& world, GuardianId gid, const std::string& name) {
  RecoverableObject* obj = world.guardian(gid).CommittedStableVariable(name);
  if (obj == nullptr) {
    return -1;
  }
  return obj->base_version().as_int();
}

// Starts a transfer action modifying "x" at G1 (and "y" at G2 when present),
// returning the aid; the caller drives the protocol and injects crashes.
ActionId StartIncrement(SimWorld& world, bool touch_g2) {
  Guardian& g0 = world.guardian(0);
  ActionId aid = g0.BeginTopAction();
  Status s = world.RunAt(aid, GuardianId{1}, [&](Guardian& g, ActionContext& ctx) -> Status {
    Result<RecoverableObject*> v = g.GetStableVariable(aid, "x");
    if (!v.ok()) {
      return v.status();
    }
    return ctx.UpdateObject(v.value(), [](Value& b) { b = Value::Int(b.as_int() + 1); });
  });
  EXPECT_TRUE(s.ok()) << s.ToString();
  if (touch_g2) {
    s = world.RunAt(aid, GuardianId{2}, [&](Guardian& g, ActionContext& ctx) -> Status {
      Result<RecoverableObject*> v = g.GetStableVariable(aid, "y");
      if (!v.ok()) {
        return v.status();
      }
      return ctx.UpdateObject(v.value(), [](Value& b) { b = Value::Int(b.as_int() + 1); });
    });
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  return aid;
}

TEST(CrashInjection, ParticipantCrashBeforePrepareAborts) {
  SimWorld world(Config(2));
  SeedVar(world, GuardianId{1}, "x", 0);
  ActionId aid = StartIncrement(world, false);

  // Participant dies before the prepare message arrives.
  world.guardian(1).Crash();
  ASSERT_TRUE(world.guardian(0).RequestCommit(aid).ok());
  world.Pump();  // prepare message is dropped at the dead guardian
  // Coordinator times out and aborts unilaterally (§2.2.1).
  world.guardian(0).AbortTopAction(aid);
  world.Pump();
  EXPECT_EQ(world.guardian(0).FateOf(aid), Guardian::ActionFate::kAborted);

  ASSERT_TRUE(world.guardian(1).Restart().ok());
  world.Pump();
  // "All record of that action is lost, and the action will be aborted."
  EXPECT_EQ(ReadVar(world, GuardianId{1}, "x"), 0);
  EXPECT_FALSE(world.guardian(1).CommittedStableVariable("x")->locked());
}

TEST(CrashInjection, ParticipantCrashAfterPrepareLearnsCommitByQuery) {
  SimWorld world(Config(2));
  SeedVar(world, GuardianId{1}, "x", 0);
  ActionId aid = StartIncrement(world, false);

  // Run the protocol just until the participant has prepared.
  ASSERT_TRUE(world.guardian(0).RequestCommit(aid).ok());
  // Deliver: prepare → participant (writes prepared), ack → coordinator
  // (writes committing, sends commit).
  world.Step();  // prepare at G1
  world.Step();  // prepare-ack at G0 → committing forced, commit sent
  // Participant crashes before the commit message arrives.
  world.guardian(1).Crash();
  world.Pump();  // commit message dropped

  // Restart: the participant finds the prepared record, queries the
  // coordinator, learns commit, installs, and acks.
  ASSERT_TRUE(world.guardian(1).Restart().ok());
  world.Pump();
  EXPECT_EQ(ReadVar(world, GuardianId{1}, "x"), 1);
  EXPECT_TRUE(world.guardian(0).TwoPhaseDone(aid));
}

TEST(CrashInjection, ParticipantCrashAfterPrepareLearnsAbortByQuery) {
  SimWorld world(Config(3));
  SeedVar(world, GuardianId{1}, "x", 0);
  SeedVar(world, GuardianId{2}, "y", 0);
  ActionId aid = StartIncrement(world, true);

  ASSERT_TRUE(world.guardian(0).RequestCommit(aid).ok());
  // G1 prepares, but its ack is lost and G1 crashes right after.
  world.network().set_drop_probability(1.0);
  world.Step();  // prepare at G1: G1 is prepared; ack dropped
  world.network().set_drop_probability(0.0);
  world.guardian(1).Crash();
  world.Pump();  // G2 prepares and acks; the coordinator still waits on G1
  // The coordinator gives up on G1 and aborts unilaterally (§2.2.1).
  world.guardian(0).AbortTopAction(aid);
  world.Pump();
  EXPECT_EQ(ReadVar(world, GuardianId{2}, "y"), 0);

  // G1 restarts prepared, queries, learns abort.
  ASSERT_TRUE(world.guardian(1).Restart().ok());
  world.Pump();
  EXPECT_EQ(ReadVar(world, GuardianId{1}, "x"), 0);
  EXPECT_FALSE(world.guardian(1).CommittedStableVariable("x")->locked());
}

TEST(CrashInjection, CoordinatorCrashBeforeCommittingMeansAbort) {
  SimWorld world(Config(2));
  SeedVar(world, GuardianId{1}, "x", 0);
  ActionId aid = StartIncrement(world, false);

  ASSERT_TRUE(world.guardian(0).RequestCommit(aid).ok());
  world.Step();  // prepare at G1 → G1 prepared
  // Coordinator crashes BEFORE writing committing (the ack is undelivered).
  world.guardian(0).Crash();
  world.Pump();

  ASSERT_TRUE(world.guardian(0).Restart().ok());
  world.Pump();
  // G1 is stuck prepared; its periodic re-query reaches a coordinator that
  // remembers nothing → abort (§2.2.3).
  world.guardian(1).RequeryOutstanding();
  world.Pump();
  EXPECT_EQ(ReadVar(world, GuardianId{1}, "x"), 0);
  EXPECT_FALSE(world.guardian(1).CommittedStableVariable("x")->locked());
}

TEST(CrashInjection, CoordinatorCrashAfterCommittingMustCommit) {
  SimWorld world(Config(2));
  SeedVar(world, GuardianId{1}, "x", 0);
  ActionId aid = StartIncrement(world, false);

  ASSERT_TRUE(world.guardian(0).RequestCommit(aid).ok());
  world.Step();  // prepare at G1
  world.Step();  // ack at G0: committing record forced, commit message sent
  // Coordinator crashes after the committing record but before done.
  world.guardian(0).Crash();
  world.Pump();  // queued commit still reaches G1, which acks into the void

  // Restart: the committing record forces the coordinator to push commit
  // through to completion.
  ASSERT_TRUE(world.guardian(0).Restart().ok());
  world.Pump();
  EXPECT_EQ(ReadVar(world, GuardianId{1}, "x"), 1);
  EXPECT_TRUE(world.guardian(0).TwoPhaseDone(aid));
}

TEST(CrashInjection, BothCrashAfterCommittingStillCommits) {
  SimWorld world(Config(2));
  SeedVar(world, GuardianId{1}, "x", 0);
  ActionId aid = StartIncrement(world, false);

  ASSERT_TRUE(world.guardian(0).RequestCommit(aid).ok());
  world.Step();  // prepare at G1
  world.Step();  // ack → committing forced
  world.guardian(0).Crash();
  world.guardian(1).Crash();
  world.Pump();  // everything in flight is lost

  ASSERT_TRUE(world.guardian(1).Restart().ok());
  ASSERT_TRUE(world.guardian(0).Restart().ok());
  world.Pump();
  EXPECT_EQ(ReadVar(world, GuardianId{1}, "x"), 1);
  EXPECT_TRUE(world.guardian(0).TwoPhaseDone(aid));
}

TEST(CrashInjection, CommittedStateSurvivesBothGuardiansCrashing) {
  SimWorld world(Config(3));
  SeedVar(world, GuardianId{1}, "x", 10);
  SeedVar(world, GuardianId{2}, "y", 20);
  ActionId aid = StartIncrement(world, true);
  ASSERT_TRUE(world.guardian(0).RequestCommit(aid).ok());
  world.Pump();
  EXPECT_EQ(world.guardian(0).FateOf(aid), Guardian::ActionFate::kCommitted);

  world.guardian(0).Crash();
  world.guardian(1).Crash();
  world.guardian(2).Crash();
  ASSERT_TRUE(world.guardian(0).Restart().ok());
  ASSERT_TRUE(world.guardian(1).Restart().ok());
  ASSERT_TRUE(world.guardian(2).Restart().ok());
  world.Pump();
  EXPECT_EQ(ReadVar(world, GuardianId{1}, "x"), 11);
  EXPECT_EQ(ReadVar(world, GuardianId{2}, "y"), 21);
}

TEST(CrashInjection, AtomicityAcrossParticipantsUnderCoordinatorCrash) {
  // All-or-nothing: after a mid-protocol coordinator crash, either both
  // participants apply the action or neither does.
  for (int crash_step = 0; crash_step <= 6; ++crash_step) {
    SimWorld world(Config(3));
    SeedVar(world, GuardianId{1}, "x", 0);
    SeedVar(world, GuardianId{2}, "y", 0);
    ActionId aid = StartIncrement(world, true);
    ASSERT_TRUE(world.guardian(0).RequestCommit(aid).ok());

    for (int i = 0; i < crash_step; ++i) {
      world.Step();
    }
    world.guardian(0).Crash();
    world.Pump();
    ASSERT_TRUE(world.guardian(0).Restart().ok());
    world.Pump();

    // Stuck prepared participants re-query after their own restart.
    for (std::uint32_t g = 1; g <= 2; ++g) {
      world.guardian(g).Crash();
      ASSERT_TRUE(world.guardian(g).Restart().ok());
    }
    world.Pump();

    std::int64_t x = ReadVar(world, GuardianId{1}, "x");
    std::int64_t y = ReadVar(world, GuardianId{2}, "y");
    EXPECT_EQ(x, y) << "atomicity violated at crash_step=" << crash_step;
    EXPECT_FALSE(world.guardian(1).CommittedStableVariable("x")->locked());
    EXPECT_FALSE(world.guardian(2).CommittedStableVariable("y")->locked());
  }
}

TEST(CrashInjection, RepeatedCrashRestartCyclesConverge) {
  SimWorld world(Config(2));
  SeedVar(world, GuardianId{1}, "x", 0);
  for (int round = 0; round < 5; ++round) {
    ActionId aid = StartIncrement(world, false);
    ASSERT_TRUE(world.guardian(0).RequestCommit(aid).ok());
    world.Step();
    world.Step();
    world.guardian(1).Crash();
    world.Pump();
    ASSERT_TRUE(world.guardian(1).Restart().ok());
    world.Pump();
    EXPECT_EQ(ReadVar(world, GuardianId{1}, "x"), round + 1);
  }
}

}  // namespace
}  // namespace argus
