// Unit tests for the byte codec and the log-entry wire format.

#include <gtest/gtest.h>

#include "src/common/codec.h"
#include "src/log/entry_codec.h"
#include "src/object/flatten.h"

namespace argus {
namespace {

TEST(ByteCodec, FixedWidthRoundTrip) {
  ByteWriter w;
  w.PutU8(0xab);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefull);
  ByteReader r(AsSpan(w.bytes()));
  EXPECT_EQ(r.ReadU8().value(), 0xab);
  EXPECT_EQ(r.ReadU32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.ReadU64().value(), 0x0123456789abcdefull);
  EXPECT_TRUE(r.at_end());
}

TEST(ByteCodec, VarintRoundTrip) {
  ByteWriter w;
  std::vector<std::uint64_t> values = {0, 1, 127, 128, 300, 1u << 20,
                                       0xffffffffull, 0xffffffffffffffffull};
  for (std::uint64_t v : values) {
    w.PutVarint(v);
  }
  ByteReader r(AsSpan(w.bytes()));
  for (std::uint64_t v : values) {
    EXPECT_EQ(r.ReadVarint().value(), v);
  }
  EXPECT_TRUE(r.at_end());
}

TEST(ByteCodec, VarintEncodingIsCompactForSmallValues) {
  ByteWriter w;
  w.PutVarint(5);
  EXPECT_EQ(w.size(), 1u);
  ByteWriter w2;
  w2.PutVarint(128);
  EXPECT_EQ(w2.size(), 2u);
}

TEST(ByteCodec, StringAndBlobRoundTrip) {
  ByteWriter w;
  w.PutString("hello argus");
  std::vector<std::byte> blob = {std::byte{1}, std::byte{2}, std::byte{3}};
  w.PutBlob(AsSpan(blob));
  ByteReader r(AsSpan(w.bytes()));
  EXPECT_EQ(r.ReadString().value(), "hello argus");
  EXPECT_EQ(r.ReadBlob().value(), blob);
}

TEST(ByteCodec, TruncatedReadsFail) {
  ByteWriter w;
  w.PutU32(7);
  ByteReader r(AsSpan(w.bytes()));
  ASSERT_TRUE(r.ReadU32().ok());
  EXPECT_FALSE(r.ReadU64().ok());
  EXPECT_EQ(r.ReadU8().status().code(), ErrorCode::kCorruption);
}

TEST(ByteCodec, TruncatedVarintFails) {
  std::vector<std::byte> bytes = {std::byte{0x80}};  // continuation bit, no next byte
  ByteReader r(std::span<const std::byte>(bytes.data(), bytes.size()));
  EXPECT_FALSE(r.ReadVarint().ok());
}

TEST(ByteCodec, IdRoundTrip) {
  ByteWriter w;
  w.PutUid(Uid{42});
  w.PutActionId(ActionId{GuardianId{3}, 99});
  w.PutGuardianId(GuardianId{7});
  w.PutLogAddress(LogAddress{123456});
  w.PutLogAddress(LogAddress::Null());
  ByteReader r(AsSpan(w.bytes()));
  EXPECT_EQ(r.ReadUid().value(), Uid{42});
  EXPECT_EQ(r.ReadActionId().value(), (ActionId{GuardianId{3}, 99}));
  EXPECT_EQ(r.ReadGuardianId().value(), GuardianId{7});
  EXPECT_EQ(r.ReadLogAddress().value(), LogAddress{123456});
  EXPECT_TRUE(r.ReadLogAddress().value().is_null());
}

ActionId Aid() { return ActionId{GuardianId{0}, 1}; }

std::vector<std::byte> Bytes(std::initializer_list<int> values) {
  std::vector<std::byte> out;
  for (int v : values) {
    out.push_back(std::byte{static_cast<unsigned char>(v)});
  }
  return out;
}

TEST(EntryCodec, DataEntryRoundTrip) {
  DataEntry entry;
  entry.uid = Uid{7};
  entry.kind = ObjectKind::kMutex;
  entry.aid = ActionId{GuardianId{1}, 5};
  entry.value = Bytes({1, 2, 3, 4});
  std::vector<std::byte> encoded = EncodeEntry(LogEntry(entry));
  Result<LogEntry> decoded = DecodeEntry(AsSpan(encoded));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(std::get<DataEntry>(decoded.value()), entry);
}

TEST(EntryCodec, AnonymousHybridDataEntryRoundTrip) {
  DataEntry entry;  // uid and aid stay invalid (hybrid shape)
  entry.kind = ObjectKind::kAtomic;
  entry.value = Bytes({9});
  Result<LogEntry> decoded = DecodeEntry(AsSpan(EncodeEntry(LogEntry(entry))));
  ASSERT_TRUE(decoded.ok());
  const auto& d = std::get<DataEntry>(decoded.value());
  EXPECT_FALSE(d.uid.valid());
  EXPECT_FALSE(d.aid.valid());
  EXPECT_EQ(d, entry);
}

TEST(EntryCodec, PreparedEntryRoundTrip) {
  PreparedEntry entry;
  entry.aid = ActionId{GuardianId{2}, 8};
  entry.objects = {{Uid{1}, LogAddress{10}}, {Uid{2}, LogAddress{20}}};
  entry.prev = LogAddress{5};
  Result<LogEntry> decoded = DecodeEntry(AsSpan(EncodeEntry(LogEntry(entry))));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(std::get<PreparedEntry>(decoded.value()), entry);
}

TEST(EntryCodec, OutcomeEntriesRoundTrip) {
  ActionId aid{GuardianId{0}, 3};
  std::vector<LogEntry> entries = {
      LogEntry(CommittedEntry{aid, LogAddress{1}}),
      LogEntry(AbortedEntry{aid, LogAddress{2}}),
      LogEntry(CommittingEntry{aid, {GuardianId{1}, GuardianId{2}}, LogAddress{3}}),
      LogEntry(DoneEntry{aid, LogAddress{4}}),
      LogEntry(BaseCommittedEntry{Uid{9}, Bytes({5, 6}), LogAddress{5}}),
      LogEntry(PreparedDataEntry{Uid{10}, Bytes({7}), aid, LogAddress{6}}),
      LogEntry(CommittedSsEntry{{{Uid{1}, LogAddress{100}}}, LogAddress{7}}),
  };
  for (const LogEntry& entry : entries) {
    Result<LogEntry> decoded = DecodeEntry(AsSpan(EncodeEntry(entry)));
    ASSERT_TRUE(decoded.ok()) << DescribeEntry(entry);
    EXPECT_EQ(decoded.value(), entry) << DescribeEntry(entry);
  }
}

TEST(EntryCodec, PrevPointerAccessor) {
  EXPECT_TRUE(PrevPointer(LogEntry(DataEntry{})).is_null());
  EXPECT_EQ(PrevPointer(LogEntry(DoneEntry{Aid(), LogAddress{77}})), LogAddress{77});
}

TEST(EntryCodec, IsOutcomeEntryClassification) {
  EXPECT_FALSE(IsOutcomeEntry(LogEntry(DataEntry{})));
  EXPECT_TRUE(IsOutcomeEntry(LogEntry(PreparedEntry{Aid(), {}, LogAddress::Null()})));
  EXPECT_TRUE(IsOutcomeEntry(LogEntry(BaseCommittedEntry{Uid{1}, {}, LogAddress::Null()})));
  EXPECT_TRUE(IsOutcomeEntry(LogEntry(CommittedSsEntry{{}, LogAddress::Null()})));
}

TEST(EntryCodec, GarbageFailsToDecode) {
  std::vector<std::byte> garbage = Bytes({0xff, 0x00, 0x13});
  EXPECT_FALSE(DecodeEntry(AsSpan(garbage)).ok());
  std::vector<std::byte> empty;
  EXPECT_FALSE(DecodeEntry(AsSpan(empty)).ok());
}

// Property: a flattened Value of any size — including odd, prime, and
// power-of-two±1 payloads that straddle varint length boundaries and frame
// edges — survives entry encode/decode/unflatten bit-exactly. These are the
// shapes the residency fault path reads back from stubs, where a length
// mis-round would corrupt a rematerialized object.
TEST(EntryCodec, LargeAndOddValuePayloadsRoundTrip) {
  // xorshift64: deterministic payload bytes without seeding global state.
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  auto next = [&x] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  const std::size_t sizes[] = {1, 3, 127, 128, 129, 4095, 4096, 4097, 8191, 65537};
  for (std::size_t n : sizes) {
    std::string payload(n, '\0');
    for (std::size_t i = 0; i < n; ++i) {
      payload[i] = static_cast<char>(next() & 0xff);
    }
    Value v = Value::OfRecord({
        {"blob", Value::Str(payload)},
        {"len", Value::Int(static_cast<std::int64_t>(n))},
    });
    std::vector<std::byte> flat = FlattenValue(v, nullptr);

    DataEntry entry;
    entry.uid = Uid{n};
    entry.kind = ObjectKind::kAtomic;
    entry.value = flat;
    Result<LogEntry> decoded = DecodeEntry(AsSpan(EncodeEntry(LogEntry(entry))));
    ASSERT_TRUE(decoded.ok()) << "n=" << n << ": " << decoded.status().ToString();
    const auto& d = std::get<DataEntry>(decoded.value());
    ASSERT_EQ(d, entry) << "n=" << n;

    Result<Value> back = UnflattenValue(AsSpan(d.value));
    ASSERT_TRUE(back.ok()) << "n=" << n;
    EXPECT_EQ(back.value(), v) << "n=" << n;

    // The chained-base shape takes the same payload through a second wire
    // format (the one recovery and the residency fault path decode).
    BaseCommittedEntry bc{Uid{n}, flat, LogAddress{n}};
    Result<LogEntry> bc_decoded = DecodeEntry(AsSpan(EncodeEntry(LogEntry(bc))));
    ASSERT_TRUE(bc_decoded.ok()) << "n=" << n;
    EXPECT_EQ(std::get<BaseCommittedEntry>(bc_decoded.value()), bc) << "n=" << n;
  }
}

TEST(EntryCodec, TruncatedEntryFailsToDecode) {
  PreparedEntry entry;
  entry.aid = ActionId{GuardianId{2}, 8};
  entry.objects = {{Uid{1}, LogAddress{10}}};
  std::vector<std::byte> encoded = EncodeEntry(LogEntry(entry));
  for (std::size_t cut = 1; cut < encoded.size(); ++cut) {
    std::span<const std::byte> prefix(encoded.data(), encoded.size() - cut);
    EXPECT_FALSE(DecodeEntry(prefix).ok()) << "cut=" << cut;
  }
}

}  // namespace
}  // namespace argus
