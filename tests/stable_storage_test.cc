// Tests for the stable-storage substrate: simulated disk faults, careful
// operations, the duplexed atomic store, and the stable media.

#include <gtest/gtest.h>

#include "src/common/codec.h"
#include "src/stable/careful_disk.h"
#include "src/stable/duplexed_medium.h"
#include "src/stable/duplexed_store.h"
#include "src/stable/file_medium.h"

namespace argus {
namespace {

std::vector<std::byte> Page(std::uint8_t fill) {
  return std::vector<std::byte>(kDiskPageSize, std::byte{fill});
}

TEST(SimulatedDisk, WriteThenRead) {
  SimulatedDisk disk(4);
  ASSERT_TRUE(disk.WritePage(0, AsSpan(Page(0xaa))).ok());
  Result<std::vector<std::byte>> r = disk.ReadPage(0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), Page(0xaa));
}

TEST(SimulatedDisk, NeverWrittenPageIsNotFound) {
  SimulatedDisk disk(4);
  EXPECT_EQ(disk.ReadPage(1).status().code(), ErrorCode::kNotFound);
}

TEST(SimulatedDisk, OutOfRangeRejected) {
  SimulatedDisk disk(2);
  EXPECT_EQ(disk.ReadPage(5).status().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(disk.WritePage(5, AsSpan(Page(1))).code(), ErrorCode::kInvalidArgument);
}

TEST(SimulatedDisk, PartialWriteRejected) {
  SimulatedDisk disk(2);
  std::vector<std::byte> half(kDiskPageSize / 2, std::byte{1});
  EXPECT_EQ(disk.WritePage(0, AsSpan(half)).code(), ErrorCode::kInvalidArgument);
}

TEST(SimulatedDisk, TornWriteLeavesCorruptPage) {
  SimulatedDisk disk(2);
  ASSERT_TRUE(disk.WritePage(0, AsSpan(Page(0x11))).ok());
  DiskFaultPlan plan;
  plan.tear_write_at = 0;
  disk.set_fault_plan(plan);
  Status s = disk.WritePage(0, AsSpan(Page(0x22)));
  EXPECT_EQ(s.code(), ErrorCode::kUnavailable);
  disk.set_fault_plan(DiskFaultPlan{});
  EXPECT_EQ(disk.ReadPage(0).status().code(), ErrorCode::kCorruption);
  EXPECT_TRUE(disk.PageIsBad(0));
}

TEST(SimulatedDisk, CorruptPageHelper) {
  SimulatedDisk disk(2);
  ASSERT_TRUE(disk.WritePage(0, AsSpan(Page(0x33))).ok());
  disk.CorruptPage(0);
  EXPECT_TRUE(disk.PageIsBad(0));
  EXPECT_FALSE(disk.ReadPage(0).ok());
}

TEST(CarefulDisk, MasksTransientReadFaults) {
  SimulatedDisk disk(2, 123);
  ASSERT_TRUE(disk.WritePage(0, AsSpan(Page(0x44))).ok());
  DiskFaultPlan plan;
  plan.transient_read_error_probability = 0.5;
  disk.set_fault_plan(plan);
  CarefulDisk careful(&disk, 16);
  int successes = 0;
  for (int i = 0; i < 20; ++i) {
    if (careful.CarefulRead(0).ok()) {
      ++successes;
    }
  }
  EXPECT_EQ(successes, 20);
}

TEST(CarefulDisk, ReportsGenuineCorruption) {
  SimulatedDisk disk(2);
  ASSERT_TRUE(disk.WritePage(0, AsSpan(Page(0x55))).ok());
  disk.CorruptPage(0);
  CarefulDisk careful(&disk);
  EXPECT_EQ(careful.CarefulRead(0).status().code(), ErrorCode::kCorruption);
}

TEST(DuplexedStore, ReadsPreferIntactReplica) {
  DuplexedStore store(4);
  ASSERT_TRUE(store.AtomicWrite(1, AsSpan(Page(0x66))).ok());
  store.disk_a().CorruptPage(1);
  Result<std::vector<std::byte>> r = store.AtomicRead(1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), Page(0x66));
}

TEST(DuplexedStore, SurvivesTornWriteOnFirstReplica) {
  DuplexedStore store(4);
  ASSERT_TRUE(store.AtomicWrite(0, AsSpan(Page(0x01))).ok());
  // Crash during the write of replica A: B still holds the old value.
  DiskFaultPlan plan;
  plan.tear_write_at = 0;
  store.disk_a().set_fault_plan(plan);
  Status s = store.AtomicWrite(0, AsSpan(Page(0x02)));
  EXPECT_EQ(s.code(), ErrorCode::kUnavailable);
  store.disk_a().set_fault_plan(DiskFaultPlan{});
  // After "restart": repair, then the OLD value must be readable.
  ASSERT_TRUE(store.Repair().ok());
  Result<std::vector<std::byte>> r = store.AtomicRead(0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), Page(0x01));
}

TEST(DuplexedStore, SurvivesTornWriteOnSecondReplica) {
  DuplexedStore store(4);
  ASSERT_TRUE(store.AtomicWrite(0, AsSpan(Page(0x01))).ok());
  DiskFaultPlan plan;
  plan.tear_write_at = 0;
  store.disk_b().set_fault_plan(plan);
  Status s = store.AtomicWrite(0, AsSpan(Page(0x02)));
  EXPECT_EQ(s.code(), ErrorCode::kUnavailable);
  store.disk_b().set_fault_plan(DiskFaultPlan{});
  // A completed: the NEW value wins and repair re-duplexes it.
  Result<std::size_t> repaired = store.Repair();
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(repaired.value(), 1u);
  Result<std::vector<std::byte>> r = store.AtomicRead(0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), Page(0x02));
  // Both replicas agree afterwards.
  EXPECT_EQ(store.disk_b().ReadPage(0).value(), Page(0x02));
}

TEST(DuplexedStore, RepairHealsDecay) {
  DuplexedStore store(4);
  ASSERT_TRUE(store.AtomicWrite(2, AsSpan(Page(0x77))).ok());
  store.disk_b().CorruptPage(2);
  Result<std::size_t> repaired = store.Repair();
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(repaired.value(), 1u);
  EXPECT_EQ(store.disk_b().ReadPage(2).value(), Page(0x77));
}

TEST(DuplexedStore, DoubleFaultIsDetected) {
  DuplexedStore store(4);
  ASSERT_TRUE(store.AtomicWrite(0, AsSpan(Page(0x88))).ok());
  store.disk_a().CorruptPage(0);
  store.disk_b().CorruptPage(0);
  EXPECT_EQ(store.AtomicRead(0).status().code(), ErrorCode::kCorruption);
  EXPECT_EQ(store.Repair().status().code(), ErrorCode::kCorruption);
}

TEST(InMemoryMedium, AppendAndRead) {
  InMemoryStableMedium medium;
  std::vector<std::byte> data = Page(0x12);
  ASSERT_TRUE(medium.Append(AsSpan(data)).ok());
  EXPECT_EQ(medium.durable_size(), kDiskPageSize);
  Result<std::vector<std::byte>> r = medium.Read(0, 16);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), std::vector<std::byte>(16, std::byte{0x12}));
  EXPECT_FALSE(medium.Read(kDiskPageSize - 4, 8).ok());
}

TEST(DuplexedMedium, AppendReadRoundTrip) {
  DuplexedStableMedium medium;
  std::vector<std::byte> a(100, std::byte{0x01});
  std::vector<std::byte> b(500, std::byte{0x02});  // spans pages
  ASSERT_TRUE(medium.Append(AsSpan(a)).ok());
  ASSERT_TRUE(medium.Append(AsSpan(b)).ok());
  EXPECT_EQ(medium.durable_size(), 600u);
  Result<std::vector<std::byte>> r = medium.Read(90, 20);
  ASSERT_TRUE(r.ok());
  std::vector<std::byte> expect(10, std::byte{0x01});
  expect.insert(expect.end(), 10, std::byte{0x02});
  EXPECT_EQ(r.value(), expect);
}

TEST(DuplexedMedium, RecoverAfterCrashKeepsDurableExtent) {
  DuplexedStableMedium medium;
  std::vector<std::byte> a(300, std::byte{0x03});
  ASSERT_TRUE(medium.Append(AsSpan(a)).ok());
  ASSERT_TRUE(medium.RecoverAfterCrash().ok());
  EXPECT_EQ(medium.durable_size(), 300u);
  Result<std::vector<std::byte>> r = medium.Read(0, 300);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), a);
}

TEST(DuplexedMedium, WriteAmplificationIsAtLeastTwofold) {
  DuplexedStableMedium medium;
  std::vector<std::byte> data(1024, std::byte{0x04});
  ASSERT_TRUE(medium.Append(AsSpan(data)).ok());
  EXPECT_GE(medium.physical_bytes_written(), 2 * 1024u);
}

TEST(FileMedium, RoundTripAndReopen) {
  std::string path = testing::TempDir() + "/argus_file_medium_test.log";
  ::remove(path.c_str());
  {
    Result<std::unique_ptr<FileStableMedium>> medium = FileStableMedium::Open(path);
    ASSERT_TRUE(medium.ok()) << medium.status().ToString();
    std::vector<std::byte> data = Page(0x21);
    ASSERT_TRUE(medium.value()->Append(AsSpan(data)).ok());
    EXPECT_EQ(medium.value()->durable_size(), kDiskPageSize);
  }
  {
    Result<std::unique_ptr<FileStableMedium>> medium = FileStableMedium::Open(path);
    ASSERT_TRUE(medium.ok());
    EXPECT_EQ(medium.value()->durable_size(), kDiskPageSize);
    Result<std::vector<std::byte>> r = medium.value()->Read(0, kDiskPageSize);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), Page(0x21));
  }
  ::remove(path.c_str());
}

}  // namespace
}  // namespace argus
