// Replays of the thesis's log-scenario figures, built entry by entry exactly
// as drawn, then recovered; the final PT/CT/OT contents are asserted against
// the tables the thesis prints at "algorithm's end".
//
//   Figure 3-7: simple log, atomic objects (scenario 1)
//   Figure 3-8: simple log, mutex objects (scenario 2)
//   Figure 3-9: simple log, newly accessible objects (scenario 3, fig. 3-5)
//   Figure 3-10: coordinator's log (scenario 4)
//   Figure 4-2: hybrid log after a prepare
//   Figure 4-3: hybrid log with early-prepare interleaving (§4.4)

#include <gtest/gtest.h>

#include "src/object/flatten.h"
#include "src/recovery/recovery_algorithms.h"
#include "tests/test_support.h"

namespace argus {
namespace {

std::vector<std::byte> Flat(const Value& v) { return FlattenValue(v, nullptr); }

// Builds a raw log, maintaining the hybrid backward chain when asked to.
class LogBuilder {
 public:
  explicit LogBuilder(bool chain) : chain_(chain), log_(MakeMemLog()) {}

  LogAddress Data(Uid uid, ObjectKind kind, Value v, ActionId aid) {
    DataEntry e;
    if (!chain_) {
      e.uid = uid;
      e.aid = aid;
    }
    e.kind = kind;
    e.value = Flat(v);
    return log_->Write(LogEntry(std::move(e)));
  }

  LogAddress Outcome(LogEntry entry) {
    if (chain_) {
      std::visit(
          [this](auto& e) {
            using T = std::decay_t<decltype(e)>;
            if constexpr (!std::is_same_v<T, DataEntry>) {
              e.prev = last_;
            }
          },
          entry);
    }
    LogAddress addr = log_->Write(entry);
    last_ = addr;
    return addr;
  }

  StableLog& Finish() {
    Status s = log_->Force();
    ARGUS_CHECK(s.ok());
    return *log_;
  }

 private:
  bool chain_;
  std::unique_ptr<StableLog> log_;
  LogAddress last_ = LogAddress::Null();
};

TEST(Figure3_7, AtomicObjectsScenario) {
  ActionId t1 = Aid(1);
  ActionId t2 = Aid(2);
  Uid o1{1};
  Uid o2{2};

  LogBuilder b(/*chain=*/false);
  b.Outcome(LogEntry(BaseCommittedEntry{o1, Flat(Value::Int(10))}));
  b.Outcome(LogEntry(BaseCommittedEntry{o2, Flat(Value::Int(20))}));
  b.Data(o2, ObjectKind::kAtomic, Value::Int(21), t1);
  b.Outcome(LogEntry(PreparedEntry{t1}));
  b.Outcome(LogEntry(CommittedEntry{t1}));
  b.Data(o1, ObjectKind::kAtomic, Value::Int(11), t2);
  b.Outcome(LogEntry(PreparedEntry{t2}));

  VolatileHeap heap;
  Result<RecoveryResult> r = RecoverSimpleLog(b.Finish(), heap);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  // PT: T1 committed, T2 prepared.
  EXPECT_EQ(r.value().pt.at(t1), ParticipantState::kCommitted);
  EXPECT_EQ(r.value().pt.at(t2), ParticipantState::kPrepared);

  // OT: both restored with volatile addresses.
  ASSERT_EQ(r.value().ot.size(), 2u);
  EXPECT_EQ(r.value().ot.at(o1).state, ObjectRecoveryState::kRestored);
  EXPECT_EQ(r.value().ot.at(o2).state, ObjectRecoveryState::kRestored);

  // O1: base V1, current V2 write-locked by the prepared T2 (step 2/7).
  RecoverableObject* obj1 = r.value().ot.at(o1).object;
  EXPECT_EQ(obj1->base_version(), Value::Int(10));
  EXPECT_EQ(obj1->current_version(), Value::Int(11));
  EXPECT_TRUE(obj1->HoldsWriteLock(t2));
  // O2: the committed current version became the base (step 5).
  RecoverableObject* obj2 = r.value().ot.at(o2).object;
  EXPECT_EQ(obj2->base_version(), Value::Int(21));
  EXPECT_FALSE(obj2->has_current());
  // Stable counter resumes past O2 (step 8).
  EXPECT_GE(heap.next_uid(), 3u);
}

TEST(Figure3_8, MutexObjectsScenario) {
  ActionId t1 = Aid(1);
  ActionId t2 = Aid(2);
  Uid o1{1};
  Uid o2{2};

  LogBuilder b(/*chain=*/false);
  b.Data(o1, ObjectKind::kMutex, Value::Int(101), t1);
  b.Data(o2, ObjectKind::kMutex, Value::Int(201), t1);
  b.Outcome(LogEntry(PreparedEntry{t1}));
  b.Outcome(LogEntry(CommittedEntry{t1}));
  b.Data(o1, ObjectKind::kMutex, Value::Int(102), t2);
  b.Outcome(LogEntry(PreparedEntry{t2}));
  b.Outcome(LogEntry(AbortedEntry{t2}));

  VolatileHeap heap;
  Result<RecoveryResult> r = RecoverSimpleLog(b.Finish(), heap);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  EXPECT_EQ(r.value().pt.at(t1), ParticipantState::kCommitted);
  EXPECT_EQ(r.value().pt.at(t2), ParticipantState::kAborted);

  // O1: the PREPARED T2's version holds even though T2 aborted (step 3).
  EXPECT_EQ(r.value().ot.at(o1).state, ObjectRecoveryState::kRestored);
  EXPECT_EQ(r.value().ot.at(o1).object->mutex_value(), Value::Int(102));
  // O2: T1's committed version.
  EXPECT_EQ(r.value().ot.at(o2).object->mutex_value(), Value::Int(201));
}

TEST(Figure3_9, NewlyAccessibleObjectsScenario) {
  // The log that results from the Figure 3-5 history: T1 committed; T2
  // modified O1 and newly-created O3, prepared, aborted; T3 modified O2 to
  // reference O3, prepared, committed.
  ActionId t1 = Aid(1);
  ActionId t2 = Aid(2);
  ActionId t3 = Aid(3);
  Uid o1{1};
  Uid o2{2};
  Uid o3{3};

  LogBuilder b(/*chain=*/false);
  b.Outcome(LogEntry(BaseCommittedEntry{o1, Flat(Value::Int(10))}));
  b.Outcome(LogEntry(BaseCommittedEntry{o2, Flat(Value::Int(20))}));
  b.Outcome(LogEntry(PreparedEntry{t1}));
  b.Outcome(LogEntry(CommittedEntry{t1}));
  // T2 prepares: current of O1 (→O3), base of newly accessible O3, current
  // of O3.
  b.Data(o1, ObjectKind::kAtomic, Value::OfUid(o3), t2);
  b.Outcome(LogEntry(BaseCommittedEntry{o3, Flat(Value::Int(30))}));
  b.Data(o3, ObjectKind::kAtomic, Value::Int(33), t2);
  b.Outcome(LogEntry(PreparedEntry{t2}));
  // T3 prepares: current of O2 (→O3).
  b.Data(o2, ObjectKind::kAtomic, Value::OfUid(o3), t3);
  b.Outcome(LogEntry(PreparedEntry{t3}));
  b.Outcome(LogEntry(AbortedEntry{t2}));
  b.Outcome(LogEntry(CommittedEntry{t3}));

  VolatileHeap heap;
  Result<RecoveryResult> r = RecoverSimpleLog(b.Finish(), heap);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  // PT: T1 committed, T2 aborted, T3 committed.
  EXPECT_EQ(r.value().pt.at(t1), ParticipantState::kCommitted);
  EXPECT_EQ(r.value().pt.at(t2), ParticipantState::kAborted);
  EXPECT_EQ(r.value().pt.at(t3), ParticipantState::kCommitted);

  // OT: all three restored.
  ASSERT_EQ(r.value().ot.size(), 3u);
  for (Uid uid : {o1, o2, o3}) {
    EXPECT_EQ(r.value().ot.at(uid).state, ObjectRecoveryState::kRestored) << to_string(uid);
  }
  // O1: T2 aborted, so its base V1 stands (step 12).
  EXPECT_EQ(r.value().ot.at(o1).object->base_version(), Value::Int(10));
  // O3: the BASE survives (needed by T3) even though T2 aborted; T2's
  // current (33) is discarded — the point of the example.
  EXPECT_EQ(r.value().ot.at(o3).object->base_version(), Value::Int(30));
  EXPECT_FALSE(r.value().ot.at(o3).object->has_current());
  // O2: committed version references O3, patched to a real pointer.
  const Value& o2_val = r.value().ot.at(o2).object->base_version();
  ASSERT_TRUE(o2_val.is_ref());
  EXPECT_EQ(o2_val.as_ref(), r.value().ot.at(o3).object);
  // Stable counter reset to past O3 (step 13).
  EXPECT_GE(heap.next_uid(), 4u);
}

TEST(Figure3_10, CoordinatorLogScenario) {
  ActionId t1 = Aid(1);
  ActionId t2 = Aid(2);
  Uid o1{1};
  Uid o2{2};
  std::vector<GuardianId> gids = {GuardianId{1}, GuardianId{2}, GuardianId{3}};

  LogBuilder b(/*chain=*/false);
  b.Outcome(LogEntry(BaseCommittedEntry{o1, Flat(Value::Int(10))}));
  b.Data(o1, ObjectKind::kAtomic, Value::Int(11), t1);
  b.Outcome(LogEntry(BaseCommittedEntry{o2, Flat(Value::Int(20))}));
  b.Outcome(LogEntry(PreparedEntry{t1}));
  b.Outcome(LogEntry(CommittedEntry{t1}));
  b.Data(o2, ObjectKind::kAtomic, Value::Int(21), t2);
  b.Outcome(LogEntry(PreparedEntry{t2}));
  b.Outcome(LogEntry(CommittingEntry{t2, gids}));
  b.Outcome(LogEntry(CommittedEntry{t2}));
  b.Outcome(LogEntry(DoneEntry{t2}));

  VolatileHeap heap;
  Result<RecoveryResult> r = RecoverSimpleLog(b.Finish(), heap);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  // PT: both committed. CT: T2 done — "no coordinator needs to be restarted".
  EXPECT_EQ(r.value().pt.at(t1), ParticipantState::kCommitted);
  EXPECT_EQ(r.value().pt.at(t2), ParticipantState::kCommitted);
  ASSERT_EQ(r.value().ct.size(), 1u);
  EXPECT_EQ(r.value().ct.at(t2).phase, CoordinatorPhase::kDone);

  EXPECT_EQ(r.value().ot.at(o1).object->base_version(), Value::Int(11));
  EXPECT_EQ(r.value().ot.at(o2).object->base_version(), Value::Int(21));
}

TEST(Figure4_2, HybridLogAfterPrepareScenario) {
  // O1 atomic, O2 mutex; T1 prepared+committed, T2 prepared (undecided).
  ActionId t1 = Aid(1);
  ActionId t2 = Aid(2);
  Uid o1{1};
  Uid o2{2};

  LogBuilder b(/*chain=*/true);
  b.Outcome(LogEntry(BaseCommittedEntry{o1, Flat(Value::Int(10))}));
  LogAddress l1 = b.Data(o1, ObjectKind::kAtomic, Value::Int(11), t1);
  LogAddress l2 = b.Data(o2, ObjectKind::kMutex, Value::Int(21), t1);
  b.Outcome(LogEntry(PreparedEntry{t1, {{o1, l1}, {o2, l2}}}));
  b.Outcome(LogEntry(CommittedEntry{t1}));
  LogAddress l1b = b.Data(o1, ObjectKind::kAtomic, Value::Int(12), t2);
  LogAddress l2b = b.Data(o2, ObjectKind::kMutex, Value::Int(22), t2);
  b.Outcome(LogEntry(PreparedEntry{t2, {{o1, l1b}, {o2, l2b}}}));

  VolatileHeap heap;
  Result<RecoveryResult> r = RecoverHybridLog(b.Finish(), heap);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  // Tables exactly as printed: O1/O2 restored; T1 committed, T2 prepared.
  EXPECT_EQ(r.value().pt.at(t1), ParticipantState::kCommitted);
  EXPECT_EQ(r.value().pt.at(t2), ParticipantState::kPrepared);
  ASSERT_EQ(r.value().ot.size(), 2u);
  EXPECT_EQ(r.value().ot.at(o1).state, ObjectRecoveryState::kRestored);
  EXPECT_EQ(r.value().ot.at(o2).state, ObjectRecoveryState::kRestored);

  // O1: current = T2's tentative (write-locked), base = T1's committed value.
  RecoverableObject* obj1 = r.value().ot.at(o1).object;
  EXPECT_EQ(obj1->current_version(), Value::Int(12));
  EXPECT_EQ(obj1->base_version(), Value::Int(11));
  EXPECT_TRUE(obj1->HoldsWriteLock(t2));
  // O2: the latest prepared mutex version.
  EXPECT_EQ(r.value().ot.at(o2).object->mutex_value(), Value::Int(22));
}

TEST(Figure4_3, EarlyPrepareInterleavingScenario) {
  // §4.4: T1 early-writes mutex O1 (L1), then T2 writes O1 (L2 > L1) and
  // prepares FIRST; T1 prepares later and commits. Without the address rule,
  // walking the chain backward would install T1's stale O1 version.
  ActionId t1 = Aid(1);
  ActionId t2 = Aid(2);
  Uid o1{1};
  Uid o2{2};
  Uid o3{3};
  Uid o4{4};

  LogBuilder b(/*chain=*/true);
  LogAddress l1 = b.Data(o1, ObjectKind::kMutex, Value::Str("T1-old"), t1);
  LogAddress l2 = b.Data(o1, ObjectKind::kMutex, Value::Str("T2-new"), t2);
  b.Outcome(LogEntry(BaseCommittedEntry{o2, Flat(Value::Int(20))}));
  b.Outcome(LogEntry(BaseCommittedEntry{o3, Flat(Value::Int(30))}));
  LogAddress l3 = b.Data(o2, ObjectKind::kAtomic, Value::Int(21), t2);
  LogAddress l4 = b.Data(o3, ObjectKind::kAtomic, Value::Int(31), t2);
  b.Outcome(LogEntry(PreparedEntry{t2, {{o1, l2}, {o2, l3}, {o3, l4}}}));
  LogAddress l5 = b.Data(o4, ObjectKind::kAtomic, Value::Int(41), t1);
  b.Outcome(LogEntry(BaseCommittedEntry{o4, Flat(Value::Int(40))}));
  b.Outcome(LogEntry(PreparedEntry{t1, {{o1, l1}, {o4, l5}}}));
  b.Outcome(LogEntry(CommittedEntry{t1}));

  VolatileHeap heap;
  Result<RecoveryResult> r = RecoverHybridLog(b.Finish(), heap);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  EXPECT_EQ(r.value().pt.at(t1), ParticipantState::kCommitted);
  EXPECT_EQ(r.value().pt.at(t2), ParticipantState::kPrepared);

  // The LATEST data entry (L2, by address) wins for mutex O1, even though
  // T1's prepared entry sits later in the backward chain.
  EXPECT_EQ(r.value().ot.at(o1).object->mutex_value(), Value::Str("T2-new"));
  EXPECT_EQ(r.value().ot.at(o1).mutex_address, l2);

  // T1 committed: O4 restored to its committed current version.
  EXPECT_EQ(r.value().ot.at(o4).object->base_version(), Value::Int(41));
  // T2 undecided: O2/O3 tentative versions restored under T2's locks.
  EXPECT_TRUE(r.value().ot.at(o2).object->HoldsWriteLock(t2));
  EXPECT_EQ(r.value().ot.at(o2).object->current_version(), Value::Int(21));
  EXPECT_EQ(r.value().ot.at(o2).object->base_version(), Value::Int(20));
  EXPECT_EQ(r.value().ot.at(o3).object->current_version(), Value::Int(31));
}

TEST(Figure4_3, WithoutInterleavingOrderIsStillCorrect) {
  // Control: same history, but prepared entries in write order — both chain
  // order and address order agree, and the result is identical.
  ActionId t1 = Aid(1);
  ActionId t2 = Aid(2);
  Uid o1{1};

  LogBuilder b(/*chain=*/true);
  LogAddress l1 = b.Data(o1, ObjectKind::kMutex, Value::Str("T1-old"), t1);
  b.Outcome(LogEntry(PreparedEntry{t1, {{o1, l1}}}));
  b.Outcome(LogEntry(CommittedEntry{t1}));
  LogAddress l2 = b.Data(o1, ObjectKind::kMutex, Value::Str("T2-new"), t2);
  b.Outcome(LogEntry(PreparedEntry{t2, {{o1, l2}}}));

  VolatileHeap heap;
  Result<RecoveryResult> r = RecoverHybridLog(b.Finish(), heap);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().ot.at(o1).object->mutex_value(), Value::Str("T2-new"));
}

}  // namespace
}  // namespace argus
