// Tests for nested subactions (§2.1): volatile undo, MOS hygiene, nesting,
// mutex semantics, and composition with top-level commit + crash recovery.

#include <gtest/gtest.h>

#include "src/object/subaction.h"
#include "tests/test_support.h"

namespace argus {
namespace {

struct Fixture {
  Fixture() : h(LogMode::kHybrid) {
    ActionId t0 = Aid(100);
    RecoverableObject* a = h.ctx(t0).CreateAtomic(h.heap(), Value::Int(0));
    RecoverableObject* m = h.ctx(t0).CreateMutex(h.heap(), Value::Int(0));
    EXPECT_TRUE(h.BindStable(t0, "a", a).ok());
    EXPECT_TRUE(h.BindStable(t0, "m", m).ok());
    EXPECT_TRUE(h.PrepareAndCommit(t0).ok());
  }
  StorageHarness h;
};

TEST(Subaction, CommittedSubactionEffectsStayWithTop) {
  Fixture f;
  ActionId top = Aid(1);
  ActionContext& ctx = f.h.ctx(top);
  {
    SubactionScope sub(&ctx, &f.h.heap());
    ASSERT_TRUE(sub.WriteObject(f.h.StableVar("a"), Value::Int(5)).ok());
    sub.Commit();
  }
  EXPECT_EQ(f.h.StableVar("a")->current_version(), Value::Int(5));
  EXPECT_TRUE(ctx.InMos(f.h.StableVar("a")->uid()));
  ASSERT_TRUE(f.h.PrepareAndCommit(top).ok());
  ASSERT_TRUE(f.h.CrashAndRecover().ok());
  EXPECT_EQ(f.h.StableVar("a")->base_version(), Value::Int(5));
}

TEST(Subaction, AbortedSubactionRollsBackTentativeValue) {
  Fixture f;
  ActionId top = Aid(1);
  ActionContext& ctx = f.h.ctx(top);
  // Top writes 3; subaction writes 9 then aborts.
  ASSERT_TRUE(ctx.WriteObject(f.h.StableVar("a"), Value::Int(3)).ok());
  {
    SubactionScope sub(&ctx, &f.h.heap());
    ASSERT_TRUE(sub.WriteObject(f.h.StableVar("a"), Value::Int(9)).ok());
    sub.Abort();
  }
  EXPECT_EQ(f.h.StableVar("a")->current_version(), Value::Int(3));
  // Still in the MOS: the top's own write survives.
  EXPECT_TRUE(ctx.InMos(f.h.StableVar("a")->uid()));
  ASSERT_TRUE(f.h.PrepareAndCommit(top).ok());
  EXPECT_EQ(f.h.StableVar("a")->base_version(), Value::Int(3));
}

TEST(Subaction, AbortedFirstWriterLeavesObjectOutOfMos) {
  Fixture f;
  ActionId top = Aid(1);
  ActionContext& ctx = f.h.ctx(top);
  {
    SubactionScope sub(&ctx, &f.h.heap());
    ASSERT_TRUE(sub.WriteObject(f.h.StableVar("a"), Value::Int(9)).ok());
    sub.Abort();
  }
  EXPECT_FALSE(ctx.InMos(f.h.StableVar("a")->uid()));
  EXPECT_EQ(f.h.StableVar("a")->current_version(), Value::Int(0));
  // Committing the (now-empty) top writes nothing for "a".
  ASSERT_TRUE(f.h.PrepareAndCommit(top).ok());
  ASSERT_TRUE(f.h.CrashAndRecover().ok());
  EXPECT_EQ(f.h.StableVar("a")->base_version(), Value::Int(0));
}

TEST(Subaction, DestructorAbortsOpenScope) {
  Fixture f;
  ActionId top = Aid(1);
  ActionContext& ctx = f.h.ctx(top);
  {
    SubactionScope sub(&ctx, &f.h.heap());
    ASSERT_TRUE(sub.WriteObject(f.h.StableVar("a"), Value::Int(42)).ok());
    // No Commit(): the handler reply was lost.
  }
  EXPECT_EQ(f.h.StableVar("a")->current_version(), Value::Int(0));
}

TEST(Subaction, NestedScopesUnwindCorrectly) {
  Fixture f;
  ActionId top = Aid(1);
  ActionContext& ctx = f.h.ctx(top);
  ASSERT_TRUE(ctx.WriteObject(f.h.StableVar("a"), Value::Int(1)).ok());
  {
    SubactionScope outer(&ctx, &f.h.heap());
    ASSERT_TRUE(outer.WriteObject(f.h.StableVar("a"), Value::Int(2)).ok());
    {
      SubactionScope inner(&ctx, &f.h.heap(), &outer);
      ASSERT_TRUE(inner.WriteObject(f.h.StableVar("a"), Value::Int(3)).ok());
      inner.Abort();
    }
    // Inner abort restores outer's value.
    EXPECT_EQ(f.h.StableVar("a")->current_version(), Value::Int(2));
    outer.Commit();
  }
  EXPECT_EQ(f.h.StableVar("a")->current_version(), Value::Int(2));
  ASSERT_TRUE(f.h.PrepareAndCommit(top).ok());
  EXPECT_EQ(f.h.StableVar("a")->base_version(), Value::Int(2));
}

TEST(Subaction, NestedCommitThenOuterAbortUnwindsBoth) {
  // Commit is RELATIVE: the inner subaction committed into the outer one, so
  // the outer's abort unwinds the inner's write too.
  Fixture f;
  ActionId top = Aid(1);
  ActionContext& ctx = f.h.ctx(top);
  {
    SubactionScope outer(&ctx, &f.h.heap());
    {
      SubactionScope inner(&ctx, &f.h.heap(), &outer);
      ASSERT_TRUE(inner.WriteObject(f.h.StableVar("a"), Value::Int(7)).ok());
      inner.Commit();
    }
    EXPECT_EQ(f.h.StableVar("a")->current_version(), Value::Int(7));
    outer.Abort();
  }
  EXPECT_EQ(f.h.StableVar("a")->current_version(), Value::Int(0));
  EXPECT_FALSE(ctx.InMos(f.h.StableVar("a")->uid()));
}

TEST(Subaction, InnerAbortOuterCommitKeepsOuterWrites) {
  Fixture f;
  ActionId top = Aid(1);
  ActionContext& ctx = f.h.ctx(top);
  {
    SubactionScope outer(&ctx, &f.h.heap());
    ASSERT_TRUE(outer.WriteObject(f.h.StableVar("a"), Value::Int(2)).ok());
    {
      SubactionScope inner(&ctx, &f.h.heap(), &outer);
      ASSERT_TRUE(inner.WriteObject(f.h.StableVar("a"), Value::Int(3)).ok());
      inner.Abort();  // back to 2
    }
    outer.Commit();
  }
  ASSERT_TRUE(f.h.PrepareAndCommit(top).ok());
  ASSERT_TRUE(f.h.CrashAndRecover().ok());
  EXPECT_EQ(f.h.StableVar("a")->base_version(), Value::Int(2));
}

TEST(Subaction, TwoSiblingsOlderPreStateWinsOnOuterAbort) {
  Fixture f;
  ActionId top = Aid(1);
  ActionContext& ctx = f.h.ctx(top);
  ASSERT_TRUE(ctx.WriteObject(f.h.StableVar("a"), Value::Int(1)).ok());
  {
    SubactionScope outer(&ctx, &f.h.heap());
    {
      SubactionScope first(&ctx, &f.h.heap(), &outer);
      ASSERT_TRUE(first.WriteObject(f.h.StableVar("a"), Value::Int(3)).ok());
      first.Commit();
    }
    {
      SubactionScope second(&ctx, &f.h.heap(), &outer);
      ASSERT_TRUE(second.WriteObject(f.h.StableVar("a"), Value::Int(5)).ok());
      second.Commit();
    }
    outer.Abort();
  }
  // Both siblings unwind; the top action's own write (1) is what remains.
  EXPECT_EQ(f.h.StableVar("a")->current_version(), Value::Int(1));
  EXPECT_TRUE(ctx.InMos(f.h.StableVar("a")->uid()));
}

TEST(Subaction, MutexMutationSurvivesSubactionAbort) {
  Fixture f;
  ActionId top = Aid(1);
  ActionContext& ctx = f.h.ctx(top);
  {
    SubactionScope sub(&ctx, &f.h.heap());
    ASSERT_TRUE(sub.MutateMutex(f.h.StableVar("m"),
                                [](Value& v) { v = Value::Int(99); }).ok());
    sub.Abort();
  }
  // Mutex discipline: the mutation stands and stays in the MOS.
  EXPECT_EQ(f.h.StableVar("m")->mutex_value(), Value::Int(99));
  EXPECT_TRUE(ctx.InMos(f.h.StableVar("m")->uid()));
}

TEST(Subaction, CreatedObjectForgottenOnAbort) {
  Fixture f;
  ActionId top = Aid(1);
  ActionContext& ctx = f.h.ctx(top);
  Uid created_uid;
  {
    SubactionScope sub(&ctx, &f.h.heap());
    RecoverableObject* fresh = sub.CreateAtomic(Value::Int(123));
    created_uid = fresh->uid();
    ASSERT_TRUE(sub.WriteObject(fresh, Value::Int(124)).ok());
    sub.Abort();
  }
  EXPECT_FALSE(ctx.InMos(created_uid));
  // The top action commits cleanly; the garbage object never hits the log.
  ASSERT_TRUE(f.h.PrepareAndCommit(top).ok());
  ASSERT_TRUE(f.h.CrashAndRecover().ok());
  EXPECT_EQ(f.h.heap().Get(created_uid), nullptr);
}

TEST(Subaction, ReadsSeeEnclosingTentativeState) {
  Fixture f;
  ActionId top = Aid(1);
  ActionContext& ctx = f.h.ctx(top);
  ASSERT_TRUE(ctx.WriteObject(f.h.StableVar("a"), Value::Int(6)).ok());
  SubactionScope sub(&ctx, &f.h.heap());
  Result<Value> v = sub.ReadObject(f.h.StableVar("a"));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), Value::Int(6));
  sub.Commit();
}

TEST(Subaction, CrashDiscardsEverythingUncommittedIncludingSubactions) {
  Fixture f;
  ActionId top = Aid(1);
  ActionContext& ctx = f.h.ctx(top);
  {
    SubactionScope sub(&ctx, &f.h.heap());
    ASSERT_TRUE(sub.WriteObject(f.h.StableVar("a"), Value::Int(31)).ok());
    sub.Commit();
  }
  // The top never prepares; crash.
  ASSERT_TRUE(f.h.CrashAndRecover().ok());
  EXPECT_EQ(f.h.StableVar("a")->base_version(), Value::Int(0));
}

}  // namespace
}  // namespace argus
