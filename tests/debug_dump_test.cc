// Tests for the thesis-style table renderings.

#include <gtest/gtest.h>

#include "src/recovery/debug.h"
#include "tests/test_support.h"

namespace argus {
namespace {

TEST(DebugDump, ParticipantTable) {
  ParticipantTable pt;
  pt[Aid(2)] = ParticipantState::kPrepared;
  pt[Aid(1)] = ParticipantState::kCommitted;
  std::string out = DumpParticipantTable(pt);
  EXPECT_EQ(out, "PT\n  T1@G0  committed\n  T2@G0  prepared\n");
}

TEST(DebugDump, CoordinatorTable) {
  CoordinatorTable ct;
  ct[Aid(1)] = CoordinatorTableEntry{CoordinatorPhase::kCommitting,
                                     {GuardianId{1}, GuardianId{2}}};
  ct[Aid(2)] = CoordinatorTableEntry{CoordinatorPhase::kDone, {}};
  std::string out = DumpCoordinatorTable(ct);
  EXPECT_EQ(out, "CT\n  T1@G0  committing (G1,G2)\n  T2@G0  done\n");
}

TEST(DebugDump, EmptyTables) {
  EXPECT_EQ(DumpParticipantTable({}), "PT\n  (empty)\n");
  EXPECT_EQ(DumpCoordinatorTable({}), "CT\n  (empty)\n");
  EXPECT_EQ(DumpObjectTable({}), "OT\n  (empty)\n");
}

TEST(DebugDump, FullRecoveryInfoAfterScenario) {
  // Run the figure 3-7-like situation through the real system and render it.
  StorageHarness h(LogMode::kHybrid);
  ActionId t1 = Aid(1);
  RecoverableObject* v = h.ctx(t1).CreateAtomic(h.heap(), Value::Int(10));
  ASSERT_TRUE(h.BindStable(t1, "v", v).ok());
  ASSERT_TRUE(h.PrepareAndCommit(t1).ok());
  ActionId t2 = Aid(2);
  ASSERT_TRUE(h.ctx(t2).WriteObject(h.StableVar("v"), Value::Int(11)).ok());
  ASSERT_TRUE(h.PrepareOnly(t2).ok());

  Result<RecoveryInfo> info = h.CrashAndRecover();
  ASSERT_TRUE(info.ok());
  std::string out = DumpRecoveryInfo(info.value());
  // The rendering names both actions with their outcomes...
  EXPECT_NE(out.find("T1@G0  committed"), std::string::npos) << out;
  EXPECT_NE(out.find("T2@G0  prepared"), std::string::npos) << out;
  // ...and shows the object's base + write-locked tentative version.
  EXPECT_NE(out.find("base=10"), std::string::npos) << out;
  EXPECT_NE(out.find("current=11"), std::string::npos) << out;
  EXPECT_NE(out.find("[wlock T2@G0]"), std::string::npos) << out;
  EXPECT_NE(out.find("entries examined:"), std::string::npos) << out;
}

TEST(DebugDump, LogStatsShowsReadSideCounters) {
  // Drive the real read path so the cache/pipeline counters are live.
  StorageHarness h(LogMode::kHybrid);
  ActionId t1 = Aid(1);
  RecoverableObject* v = h.ctx(t1).CreateAtomic(h.heap(), Value::Int(10));
  ASSERT_TRUE(h.BindStable(t1, "v", v).ok());
  ASSERT_TRUE(h.PrepareAndCommit(t1).ok());
  Result<RecoveryInfo> info = h.CrashAndRecover();
  ASSERT_TRUE(info.ok());

  LogStats stats = h.rs().log().StatsSnapshot();
  std::string out = DumpLogStats(stats);
  EXPECT_NE(out.find("LogStats"), std::string::npos) << out;
  EXPECT_NE(out.find("entries_written=" + std::to_string(stats.entries_written)),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("cache_hits="), std::string::npos) << out;
  EXPECT_NE(out.find("cache_hit_rate="), std::string::npos) << out;
  EXPECT_NE(out.find("readahead_blocks="), std::string::npos) << out;
  EXPECT_NE(out.find("pipeline_prefetches="), std::string::npos) << out;
  // Recovery went through the cache, so the medium was actually consulted.
  EXPECT_GT(stats.cache_hits + stats.cache_misses, 0u);
}

TEST(DebugDump, MutexRowShowsAddress) {
  StorageHarness h(LogMode::kHybrid);
  ActionId t1 = Aid(1);
  RecoverableObject* m = h.ctx(t1).CreateMutex(h.heap(), Value::Str("x"));
  ASSERT_TRUE(h.BindStable(t1, "m", m).ok());
  ASSERT_TRUE(h.PrepareAndCommit(t1).ok());
  Result<RecoveryInfo> info = h.CrashAndRecover();
  ASSERT_TRUE(info.ok());
  std::string out = DumpObjectTable(info.value().ot);
  EXPECT_NE(out.find("mutex"), std::string::npos) << out;
  EXPECT_NE(out.find("value=\"x\" @L"), std::string::npos) << out;
}

}  // namespace
}  // namespace argus
