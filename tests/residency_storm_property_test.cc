// The residency eviction storm (experiment E17's correctness half).
//
// Two oracles, swept over 64 seeds:
//   1. Exact equivalence — the serial driver is fully deterministic, so the
//      same seed run twice, once all-resident (budget 0) and once under a
//      starvation budget with inline eviction passes after every action, must
//      commit/abort/crash identically and both reconcile against the model.
//      Eviction is pure mechanism: it may never change an outcome.
//   2. The concurrent storm — worker threads, group commit, coherent world
//      crashes, and background ResidencyService threads demoting objects
//      between actions. The durable-prefix reconciliation must hold exactly
//      as it does for the all-resident E12 storm.
//
// The suite carries the `concurrency` and `residency` ctest labels.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "src/residency/residency_manager.h"
#include "src/tpc/workload.h"
#include "tests/test_support.h"

namespace argus {
namespace {

// Small enough that a guardian's handful of slots always exceeds the high
// watermark: the eviction path runs continuously, not just at the margin.
constexpr std::uint64_t kStarvationBudget = 512;

SimWorldConfig ResidencyWorld(std::uint64_t seed, std::uint64_t budget) {
  SimWorldConfig config;
  config.guardian_count = 2;
  config.mode = LogMode::kHybrid;
  config.medium = MediumKind::kInMemory;
  config.seed = seed;
  config.group_commit = FlushCoordinatorConfig{};
  config.mem_budget_bytes = budget;
  return config;
}

struct SerialOutcome {
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t crashes = 0;
  std::size_t verified = 0;
};

// One deterministic serial run; the caller compares outcomes across budgets.
SerialOutcome RunSerialStorm(std::uint64_t seed, std::uint64_t budget) {
  SimWorld world(ResidencyWorld(seed, budget));
  WorkloadConfig config;
  config.seed = seed;
  config.threads = 0;  // serial: inline eviction passes, no service threads
  config.objects_per_guardian = 6;
  config.abort_probability = 0.1;
  config.crash_probability = 0.15;
  config.mem_budget_bytes = budget;
  WorkloadDriver driver(&world, config);
  EXPECT_TRUE(driver.Setup().ok());
  Status s = driver.Run(80);
  EXPECT_TRUE(s.ok()) << "seed " << seed << " budget " << budget << ": " << s.ToString();
  Result<std::size_t> checked = driver.VerifyAfterCrash();
  EXPECT_TRUE(checked.ok()) << "seed " << seed << " budget " << budget << ": "
                            << checked.status().ToString();
  SerialOutcome out;
  out.committed = driver.stats().committed;
  out.aborted = driver.stats().aborted;
  out.crashes = driver.stats().crashes;
  out.verified = checked.ok() ? checked.value() : 0;
  return out;
}

class ResidencyStormSeedSweep : public testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, ResidencyStormSeedSweep,
                         testing::Range<std::uint64_t>(400, 464));

TEST_P(ResidencyStormSeedSweep, EvictionStormMatchesAllResidentOracle) {
  ScopedFlightRecorderDumpOnFailure dump_guard;
  const std::uint64_t seed = GetParam();

  // Oracle 1: exact outcome equivalence against the all-resident run.
  SerialOutcome resident = RunSerialStorm(seed, 0);
  SerialOutcome evicting = RunSerialStorm(seed, kStarvationBudget);
  EXPECT_EQ(evicting.committed, resident.committed) << "seed " << seed;
  EXPECT_EQ(evicting.aborted, resident.aborted) << "seed " << seed;
  EXPECT_EQ(evicting.crashes, resident.crashes) << "seed " << seed;
  EXPECT_EQ(evicting.verified, resident.verified) << "seed " << seed;
  EXPECT_GT(resident.committed, 0u) << "seed " << seed;

  // Oracle 2: the concurrent storm under the same starvation budget.
  SimWorld world(ResidencyWorld(seed, kStarvationBudget));
  WorkloadConfig config;
  config.seed = seed;
  config.threads = 3;
  config.objects_per_guardian = 6;
  config.abort_probability = 0.1;
  config.crash_probability = 0.1;
  config.mem_budget_bytes = kStarvationBudget;
  WorkloadDriver driver(&world, config);
  ASSERT_TRUE(driver.Setup().ok());
  Status s = driver.Run(60);
  ASSERT_TRUE(s.ok()) << "seed " << seed << ": " << s.ToString();
  EXPECT_GT(driver.stats().committed, 0u) << "seed " << seed;
  Result<std::size_t> checked = driver.VerifyAfterCrash();
  ASSERT_TRUE(checked.ok()) << "seed " << seed << ": " << checked.status().ToString();
}

// Deterministic activity check: under a starvation budget the serial driver
// must actually evict and fault — a storm that silently never demotes would
// pass the equivalence sweep without testing anything.
TEST(ResidencyStorm, SerialStarvationBudgetEvictsAndFaults) {
  const std::uint64_t seed = 4711;
  SimWorld world(ResidencyWorld(seed, kStarvationBudget));
  WorkloadConfig config;
  config.seed = seed;
  config.threads = 0;
  config.objects_per_guardian = 6;
  config.mem_budget_bytes = kStarvationBudget;
  WorkloadDriver driver(&world, config);
  ASSERT_TRUE(driver.Setup().ok());
  Status s = driver.Run(100);
  ASSERT_TRUE(s.ok()) << s.ToString();

  std::uint64_t evictions = 0;
  std::uint64_t faults = 0;
  for (std::uint32_t g = 0; g < world.guardian_count(); ++g) {
    ResidencyManager* rm = world.guardian(g).recovery().residency();
    ASSERT_NE(rm, nullptr) << g;
    evictions += rm->stats().evictions;
    faults += rm->stats().faults;
  }
  EXPECT_GT(evictions, 0u);
  EXPECT_GT(faults, 0u);

  // The live snapshot surfaces per-guardian resident bytes for dashboards.
  std::vector<WorkloadDriver::LiveGuardianStats> live = driver.SnapshotLiveStats();
  ASSERT_EQ(live.size(), world.guardian_count());
  for (const auto& g : live) {
    EXPECT_GT(g.resident_bytes, 0u);
  }

  Result<std::size_t> checked = driver.VerifyAfterCrash();
  ASSERT_TRUE(checked.ok()) << checked.status().ToString();
}

// Online checkpoints racing the eviction service: checkpoint capture must
// rematerialize stubs, the swap wipes every old-log address, and eviction
// resumes against the new log — all while workers commit and crash.
TEST(ResidencyStorm, SurvivesOnlineCheckpointsUnderPressure) {
  const std::uint64_t seed = 4712;
  SimWorld world(ResidencyWorld(seed, kStarvationBudget));
  WorkloadConfig config;
  config.seed = seed;
  config.threads = 3;
  config.objects_per_guardian = 6;
  config.crash_probability = 0.08;
  config.mem_budget_bytes = kStarvationBudget;
  CheckpointPolicyConfig checkpoint;
  checkpoint.log_growth_bytes = 4 * 1024;
  config.checkpoint = checkpoint;
  config.checkpoint_mode = CheckpointMode::kOnline;
  WorkloadDriver driver(&world, config);
  ASSERT_TRUE(driver.Setup().ok());
  Status s = driver.Run(90);
  ASSERT_TRUE(s.ok()) << s.ToString();
  Result<std::size_t> checked = driver.VerifyAfterCrash();
  ASSERT_TRUE(checked.ok()) << checked.status().ToString();
}

// Sharded guardians: the fault path groups stubs per shard and issues one
// ReadMany per shard log.
TEST(ResidencyStorm, ShardedGuardiansFaultAcrossShards) {
  const std::uint64_t seed = 4713;
  SimWorldConfig world_config = ResidencyWorld(seed, kStarvationBudget);
  world_config.log_shards = 4;
  SimWorld world(world_config);
  WorkloadConfig config;
  config.seed = seed;
  config.threads = 3;
  config.objects_per_guardian = 6;
  config.crash_probability = 0.1;
  config.mem_budget_bytes = kStarvationBudget;
  WorkloadDriver driver(&world, config);
  ASSERT_TRUE(driver.Setup().ok());
  Status s = driver.Run(60);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_GT(driver.stats().committed, 0u);
  Result<std::size_t> checked = driver.VerifyAfterCrash();
  ASSERT_TRUE(checked.ok()) << checked.status().ToString();
}

// The workload budget knob is a promise about the world's shape: setting it
// against a world built without residency managers is a configuration error,
// not a silent no-op.
TEST(ResidencyStorm, BudgetWithoutManagersIsRejected) {
  SimWorld world(ResidencyWorld(99, 0));
  WorkloadConfig config;
  config.seed = 99;
  config.threads = 2;
  config.mem_budget_bytes = kStarvationBudget;
  WorkloadDriver driver(&world, config);
  ASSERT_TRUE(driver.Setup().ok());
  EXPECT_EQ(driver.Run(10).code(), ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace argus
