// End-to-end recovery tests for the HYBRID log (chapter 4): the backward
// outcome chain, pair dereferencing, and the efficiency property that
// recovery does not examine every entry.

#include <gtest/gtest.h>

#include "tests/test_support.h"

namespace argus {
namespace {

TEST(HybridRecovery, CommittedObjectSurvivesCrash) {
  StorageHarness h(LogMode::kHybrid);
  ActionId t1 = Aid(1);
  RecoverableObject* acct = h.ctx(t1).CreateAtomic(h.heap(), Value::Int(100));
  ASSERT_TRUE(h.BindStable(t1, "account", acct).ok());
  ASSERT_TRUE(h.PrepareAndCommit(t1).ok());

  Result<RecoveryInfo> info = h.CrashAndRecover();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  RecoverableObject* restored = h.StableVar("account");
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->base_version(), Value::Int(100));
}

TEST(HybridRecovery, PreparedUndecidedRestoredWithLock) {
  StorageHarness h(LogMode::kHybrid);
  ActionId t1 = Aid(1);
  RecoverableObject* acct = h.ctx(t1).CreateAtomic(h.heap(), Value::Int(1));
  ASSERT_TRUE(h.BindStable(t1, "v", acct).ok());
  ASSERT_TRUE(h.PrepareAndCommit(t1).ok());

  ActionId t2 = Aid(2);
  ASSERT_TRUE(h.ctx(t2).WriteObject(h.StableVar("v"), Value::Int(2)).ok());
  ASSERT_TRUE(h.PrepareOnly(t2).ok());

  Result<RecoveryInfo> info = h.CrashAndRecover();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.value().pt.at(t2), ParticipantState::kPrepared);
  RecoverableObject* v = h.StableVar("v");
  EXPECT_EQ(v->base_version(), Value::Int(1));
  EXPECT_EQ(v->current_version(), Value::Int(2));
  EXPECT_TRUE(v->HoldsWriteLock(t2));
}

TEST(HybridRecovery, AbortedAtomicDiscardedMutexKept) {
  StorageHarness h(LogMode::kHybrid);
  ActionId t1 = Aid(1);
  RecoverableObject* a = h.ctx(t1).CreateAtomic(h.heap(), Value::Int(10));
  RecoverableObject* m = h.ctx(t1).CreateMutex(h.heap(), Value::Int(10));
  ASSERT_TRUE(h.BindStable(t1, "a", a).ok());
  ASSERT_TRUE(h.BindStable(t1, "m", m).ok());
  ASSERT_TRUE(h.PrepareAndCommit(t1).ok());

  ActionId t2 = Aid(2);
  ASSERT_TRUE(h.ctx(t2).WriteObject(h.StableVar("a"), Value::Int(20)).ok());
  ASSERT_TRUE(h.ctx(t2).MutateMutex(h.StableVar("m"),
                                    [](Value& v) { v = Value::Int(20); }).ok());
  ASSERT_TRUE(h.PrepareOnly(t2).ok());
  ASSERT_TRUE(h.AbortPrepared(t2).ok());

  ASSERT_TRUE(h.CrashAndRecover().ok());
  EXPECT_EQ(h.StableVar("a")->base_version(), Value::Int(10));   // atomic: rolled back
  EXPECT_EQ(h.StableVar("m")->mutex_value(), Value::Int(20));    // mutex: kept
}

TEST(HybridRecovery, ExaminesOnlyOutcomeChain) {
  // The efficiency claim of 4.1: hybrid recovery reads outcome entries plus
  // the data entries it must copy -- not every log entry.
  StorageHarness h(LogMode::kHybrid);
  ActionId t1 = Aid(1);
  RecoverableObject* v = h.ctx(t1).CreateAtomic(h.heap(), Value::Int(0));
  ASSERT_TRUE(h.BindStable(t1, "v", v).ok());
  ASSERT_TRUE(h.PrepareAndCommit(t1).ok());

  for (std::uint64_t i = 2; i <= 51; ++i) {
    ActionId t = Aid(i);
    ASSERT_TRUE(h.ctx(t).WriteObject(h.StableVar("v"),
                                     Value::Int(static_cast<std::int64_t>(i))).ok());
    ASSERT_TRUE(h.PrepareAndCommit(t).ok());
  }

  Result<RecoveryInfo> info = h.CrashAndRecover();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(h.StableVar("v")->base_version(), Value::Int(51));
  // Only ONE version of v (plus the root and its bc entry) is actually
  // copied out of the ~50 data entries present.
  EXPECT_LE(info.value().data_entries_read, 4u);
}

TEST(HybridRecovery, ChainSkipsTrailingUnforcedData) {
  StorageHarness h(LogMode::kHybrid);
  ActionId t1 = Aid(1);
  RecoverableObject* v = h.ctx(t1).CreateAtomic(h.heap(), Value::Int(5));
  ASSERT_TRUE(h.BindStable(t1, "v", v).ok());
  ASSERT_TRUE(h.PrepareAndCommit(t1).ok());

  // Early-prepare another action and force its data entries WITHOUT an
  // outcome entry, then crash: recovery must skip the trailing data entries.
  ActionId t2 = Aid(2);
  ASSERT_TRUE(h.ctx(t2).WriteObject(h.StableVar("v"), Value::Int(6)).ok());
  Result<ModifiedObjectsSet> leftover = h.rs().WriteEntry(t2, h.ctx(t2).TakeMos());
  ASSERT_TRUE(leftover.ok());
  ASSERT_TRUE(h.rs().log().Force().ok());

  ASSERT_TRUE(h.CrashAndRecover().ok());
  EXPECT_EQ(h.StableVar("v")->base_version(), Value::Int(5));
  EXPECT_FALSE(h.StableVar("v")->locked());
}

TEST(HybridRecovery, SharedStructureAndNestedRefsRebuilt) {
  StorageHarness h(LogMode::kHybrid);
  ActionId t1 = Aid(1);
  RecoverableObject* inner = h.ctx(t1).CreateAtomic(h.heap(), Value::Int(7));
  RecoverableObject* outer = h.ctx(t1).CreateAtomic(
      h.heap(), Value::OfRecord({{"x", Value::Int(3)}, {"inner", Value::Ref(inner)}}));
  ASSERT_TRUE(h.BindStable(t1, "outer", outer).ok());
  ASSERT_TRUE(h.PrepareAndCommit(t1).ok());

  ASSERT_TRUE(h.CrashAndRecover().ok());
  RecoverableObject* o = h.StableVar("outer");
  ASSERT_NE(o, nullptr);
  const Value& rec = o->base_version();
  EXPECT_EQ(rec.as_record().at("x").as_int(), 3);
  ASSERT_TRUE(rec.as_record().at("inner").is_ref());
  EXPECT_EQ(rec.as_record().at("inner").as_ref()->base_version(), Value::Int(7));
}

TEST(HybridRecovery, ManyActionsMixedOutcomes) {
  StorageHarness h(LogMode::kHybrid);
  ActionId t0 = Aid(1000);
  RecoverableObject* a = h.ctx(t0).CreateAtomic(h.heap(), Value::Int(0));
  RecoverableObject* b = h.ctx(t0).CreateAtomic(h.heap(), Value::Int(0));
  ASSERT_TRUE(h.BindStable(t0, "a", a).ok());
  ASSERT_TRUE(h.BindStable(t0, "b", b).ok());
  ASSERT_TRUE(h.PrepareAndCommit(t0).ok());

  std::int64_t committed_a = 0;
  for (std::uint64_t i = 1; i <= 20; ++i) {
    ActionId t = Aid(i);
    ASSERT_TRUE(h.ctx(t).WriteObject(h.StableVar("a"),
                                     Value::Int(static_cast<std::int64_t>(i))).ok());
    ASSERT_TRUE(h.PrepareOnly(t).ok());
    if (i % 3 == 0) {
      ASSERT_TRUE(h.AbortPrepared(t).ok());
    } else {
      ASSERT_TRUE(h.rs().Commit(t).ok());
      h.ctx(t).CommitVolatile(h.heap());
      committed_a = static_cast<std::int64_t>(i);
    }
  }
  ASSERT_TRUE(h.CrashAndRecover().ok());
  EXPECT_EQ(h.StableVar("a")->base_version(), Value::Int(committed_a));
  EXPECT_EQ(h.StableVar("b")->base_version(), Value::Int(0));
}

TEST(HybridRecovery, WriterContinuesChainAfterRecovery) {
  StorageHarness h(LogMode::kHybrid);
  ActionId t1 = Aid(1);
  RecoverableObject* v = h.ctx(t1).CreateAtomic(h.heap(), Value::Int(1));
  ASSERT_TRUE(h.BindStable(t1, "v", v).ok());
  ASSERT_TRUE(h.PrepareAndCommit(t1).ok());
  ASSERT_TRUE(h.CrashAndRecover().ok());

  ActionId t2 = Aid(2);
  ASSERT_TRUE(h.ctx(t2).WriteObject(h.StableVar("v"), Value::Int(2)).ok());
  ASSERT_TRUE(h.PrepareAndCommit(t2).ok());
  ASSERT_TRUE(h.CrashAndRecover().ok());
  EXPECT_EQ(h.StableVar("v")->base_version(), Value::Int(2));
}

TEST(HybridRecovery, PreparedActionsTableRestoredIntoWriter) {
  StorageHarness h(LogMode::kHybrid);
  ActionId t1 = Aid(1);
  RecoverableObject* v = h.ctx(t1).CreateAtomic(h.heap(), Value::Int(1));
  ASSERT_TRUE(h.BindStable(t1, "v", v).ok());
  ASSERT_TRUE(h.PrepareOnly(t1).ok());
  ASSERT_TRUE(h.CrashAndRecover().ok());
  EXPECT_TRUE(h.rs().writer().prepared_actions().contains(t1));
  ASSERT_TRUE(h.rs().Commit(t1).ok());
  EXPECT_FALSE(h.rs().writer().prepared_actions().contains(t1));
}

TEST(HybridRecovery, MutexTableRebuilt) {
  StorageHarness h(LogMode::kHybrid);
  ActionId t1 = Aid(1);
  RecoverableObject* m = h.ctx(t1).CreateMutex(h.heap(), Value::Int(4));
  ASSERT_TRUE(h.BindStable(t1, "m", m).ok());
  ASSERT_TRUE(h.PrepareAndCommit(t1).ok());
  ASSERT_TRUE(h.CrashAndRecover().ok());
  EXPECT_TRUE(h.rs().writer().mutex_table().contains(h.StableVar("m")->uid()));
}

TEST(HybridRecovery, SimpleAndHybridRecoverIdenticalState) {
  // The two organizations must agree on the recovered stable state for the
  // same logical history.
  auto run = [](LogMode mode) {
    StorageHarness h(mode);
    ActionId t1 = Aid(1);
    RecoverableObject* a = h.ctx(t1).CreateAtomic(h.heap(), Value::Int(1));
    RecoverableObject* m = h.ctx(t1).CreateMutex(h.heap(), Value::Str("log"));
    EXPECT_TRUE(h.BindStable(t1, "a", a).ok());
    EXPECT_TRUE(h.BindStable(t1, "m", m).ok());
    EXPECT_TRUE(h.PrepareAndCommit(t1).ok());

    ActionId t2 = Aid(2);
    EXPECT_TRUE(h.ctx(t2).WriteObject(h.StableVar("a"), Value::Int(2)).ok());
    EXPECT_TRUE(h.PrepareAndCommit(t2).ok());

    ActionId t3 = Aid(3);
    EXPECT_TRUE(h.ctx(t3).WriteObject(h.StableVar("a"), Value::Int(99)).ok());
    EXPECT_TRUE(h.PrepareOnly(t3).ok());
    EXPECT_TRUE(h.AbortPrepared(t3).ok());

    EXPECT_TRUE(h.CrashAndRecover().ok());
    return std::make_pair(h.StableVar("a")->base_version(),
                          h.StableVar("m")->mutex_value());
  };
  EXPECT_EQ(run(LogMode::kSimple), run(LogMode::kHybrid));
}

}  // namespace
}  // namespace argus
